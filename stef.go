// Package stef is the top-level API of this reproduction of
// "Sparsity-Aware Tensor Decomposition" (Kurt et al., IPDPS 2022): CPD-ALS
// for sparse tensors built on memoized, load-balanced MTTKRP kernels over a
// single CSF representation, with a data-movement model choosing the
// memoization set and mode layout per tensor.
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// full inventory); this package wires them together behind one call:
//
//	t, _ := stef.LoadTensor("data.tns")
//	res, _ := stef.Decompose(t, stef.Options{Rank: 32, Threads: 8})
//	fmt.Println(res.FinalFit())
//
// Engines other than STeF (the baselines from the paper's evaluation) can
// be selected by name, which makes head-to-head comparisons one flag away.
package stef

import (
	"fmt"

	"stef/internal/baselines"
	"stef/internal/core"
	"stef/internal/cpd"
	"stef/internal/dtree"
	"stef/internal/frostt"
	"stef/internal/reorder"
	"stef/internal/tensor"
)

// Options configures Decompose.
type Options struct {
	// Rank is the number of CP components (default 16).
	Rank int
	// MaxIters bounds ALS iterations (default 50).
	MaxIters int
	// Tol is the fit-change convergence tolerance (default 1e-5;
	// negative runs all iterations).
	Tol float64
	// Threads is the worker count (default 1).
	Threads int
	// Seed seeds the random initial factors.
	Seed int64
	// Engine selects the MTTKRP engine: "stef" (default), "stef2",
	// "splatt-1", "splatt-2", "splatt-all", "adatm", "alto", "taco",
	// "hicoo", "dtree" or "naive".
	Engine string
	// CacheBytes parameterises STeF's data-movement model (0 = default).
	CacheBytes int64
	// Reorder optionally relabels tensor indices before decomposition to
	// improve locality: "" (none), "lexi" (Lexi-Order) or "bfsmcs"
	// (BFS-MCS), both from Li et al. (ICS'19). Factor matrices are
	// mapped back to the original index space before being returned.
	Reorder string
}

// Result re-exports the CPD result type.
type Result = cpd.Result

// Decompose factorises the sparse tensor with CPD-ALS using the selected
// engine and returns the factor matrices, component weights and fit trace.
func Decompose(t *tensor.Tensor, opts Options) (*Result, error) {
	var perms reorder.Perms
	switch opts.Reorder {
	case "":
	case "lexi":
		perms = reorder.LexiOrder(t, 3)
	case "bfsmcs":
		perms = reorder.BFSMCS(t)
	default:
		return nil, fmt.Errorf("stef: unknown reordering %q", opts.Reorder)
	}
	if perms != nil {
		t = reorder.Apply(t, perms)
	}
	eng, err := NewEngine(t, opts)
	if err != nil {
		return nil, err
	}
	res, err := cpd.Run(t.Dims, t.NormFrobenius(), eng, cpd.Options{
		Rank: opts.Rank, MaxIters: opts.MaxIters, Tol: opts.Tol, Seed: opts.Seed,
	})
	if err != nil || perms == nil {
		return res, err
	}
	// Map factor rows back to the original index space: relabeled row
	// perms[m][i] corresponds to original index i.
	for m, f := range res.Factors {
		orig := tensor.NewMatrix(f.Rows, f.Cols)
		for i := 0; i < f.Rows; i++ {
			copy(orig.Row(i), f.Row(int(perms[m][i])))
		}
		res.Factors[m] = orig
	}
	return res, nil
}

// DecomposeBest runs Decompose `restarts` times with different random
// initialisations (seeds opts.Seed, opts.Seed+1, ...) and returns the
// result with the best final fit. CPD-ALS converges to local optima, so a
// handful of restarts is the standard way to stabilise the fit; on exactly
// low-rank data one restart usually suffices.
func DecomposeBest(t *tensor.Tensor, opts Options, restarts int) (*Result, error) {
	if restarts < 1 {
		restarts = 1
	}
	var best *Result
	for i := 0; i < restarts; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)
		res, err := Decompose(t, o)
		if err != nil {
			return nil, err
		}
		if best == nil || res.FinalFit() > best.FinalFit() {
			best = res
		}
	}
	return best, nil
}

// NewEngine constructs the named MTTKRP engine for the tensor. The empty
// name selects STeF.
func NewEngine(t *tensor.Tensor, opts Options) (*cpd.Engine, error) {
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	rank := opts.Rank
	if rank <= 0 {
		rank = 16
	}
	switch opts.Engine {
	case "", "stef":
		eng, _, err := core.NewEngineFor(t, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes})
		return eng, err
	case "stef2":
		eng, _, err := core.NewEngineFor(t, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes, SecondCSF: true})
		return eng, err
	case "splatt-1":
		return baselines.NewSplatt(t, baselines.SplattOptions{Copies: 1, Threads: threads, Rank: rank}), nil
	case "splatt-2":
		return baselines.NewSplatt(t, baselines.SplattOptions{Copies: 2, Threads: threads, Rank: rank}), nil
	case "splatt-all":
		return baselines.NewSplatt(t, baselines.SplattOptions{Copies: -1, Threads: threads, Rank: rank}), nil
	case "adatm":
		return baselines.NewAdaTM(t, baselines.AdaTMOptions{Threads: threads, Rank: rank}), nil
	case "alto":
		return baselines.NewALTO(t, baselines.ALTOOptions{Threads: threads, Rank: rank})
	case "taco":
		return baselines.NewTACO(t, baselines.TACOOptions{Threads: threads, Rank: rank}), nil
	case "hicoo":
		return baselines.NewHiCOO(t, baselines.HiCOOOptions{Threads: threads, Rank: rank})
	case "dtree":
		return dtree.NewEngine(t, dtree.Options{Rank: rank, Threads: threads})
	case "naive":
		return cpd.NaiveEngine(t), nil
	}
	return nil, fmt.Errorf("stef: unknown engine %q", opts.Engine)
}

// Plan exposes STeF's planning decisions (chosen layout, memoization set,
// modeled cost, Table II byte accounting) without running a decomposition.
func Plan(t *tensor.Tensor, opts Options) (*core.Plan, error) {
	rank := opts.Rank
	if rank <= 0 {
		rank = 16
	}
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	return core.NewPlan(t, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes, SecondCSF: opts.Engine == "stef2"})
}

// LoadTensor reads a FROSTT .tns file.
func LoadTensor(path string) (*tensor.Tensor, error) {
	return frostt.ReadFile(path, nil)
}

// Benchmark generates one of the named synthetic benchmark tensors
// reproducing Table I's suite (see stef/internal/tensor.ProfileNames).
func Benchmark(name string) (*tensor.Tensor, error) {
	p, err := tensor.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(), nil
}

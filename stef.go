// Package stef is the top-level API of this reproduction of
// "Sparsity-Aware Tensor Decomposition" (Kurt et al., IPDPS 2022): CPD-ALS
// for sparse tensors built on memoized, load-balanced MTTKRP kernels over a
// single CSF representation, with a data-movement model choosing the
// memoization set and mode layout per tensor.
//
// The heavy lifting lives in the internal packages (see DESIGN.md for the
// full inventory); this package wires them together behind one call:
//
//	t, _ := stef.LoadTensor("data.tns")
//	res, _ := stef.Decompose(t, stef.Options{Rank: 32, Threads: 8})
//	fmt.Println(res.FinalFit())
//
// When the same tensor is factorised repeatedly — restarts, rank sweeps,
// hyper-parameter searches — Compile splits the work: all preprocessing
// (reordering, CSF construction, the data-movement model search) runs once,
// and the returned handle solves many times, concurrently if desired, from
// a pool of recycled workspaces:
//
//	c, _ := stef.Compile(t, stef.Options{Rank: 32, Threads: 8})
//	best, _ := c.DecomposeBest(8) // 8 restarts, one plan
//
// Engines other than STeF (the baselines from the paper's evaluation) can
// be selected by name, which makes head-to-head comparisons one flag away.
package stef

import (
	"fmt"
	"math"

	"stef/internal/baselines"
	"stef/internal/core"
	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/dtree"
	"stef/internal/frostt"
	"stef/internal/par"
	"stef/internal/reorder"
	"stef/internal/tensor"
)

// Options configures Decompose.
type Options struct {
	// Rank is the number of CP components (default 16).
	Rank int
	// MaxIters bounds ALS iterations (default 50).
	MaxIters int
	// Tol is the fit-change convergence tolerance (default 1e-5;
	// negative runs all iterations).
	Tol float64
	// Threads is the worker count (default 1).
	Threads int
	// Seed seeds the random initial factors.
	Seed int64
	// Engine selects the MTTKRP engine: "stef" (default), "stef2",
	// "splatt-1", "splatt-2", "splatt-all", "adatm", "alto", "taco",
	// "hicoo", "dtree" or "naive".
	Engine string
	// CacheBytes parameterises STeF's data-movement model (0 = default).
	CacheBytes int64
	// MaxPrivElems bounds per-thread output privatization in the MTTKRP
	// buffers (0 = engine default).
	MaxPrivElems int64
	// Accum forces the non-root output accumulation strategy for the
	// stef/stef2 engines: "" or "auto" (model choice), "priv", "hybrid"
	// or "atomic".
	Accum string
	// Remap controls the census-driven factor-row locality remap for the
	// stef/stef2 engines: "" or "auto" (model choice, per level), "on"
	// (force on every level with a census) or "off".
	Remap string
	// Reorder optionally relabels tensor indices before decomposition to
	// improve locality: "" (none), "lexi" (Lexi-Order) or "bfsmcs"
	// (BFS-MCS), both from Li et al. (ICS'19). Factor matrices are
	// mapped back to the original index space before being returned.
	Reorder string
}

// Result re-exports the CPD result type.
type Result = cpd.Result

// Compiled is a compile-once/solve-many handle: the immutable plan (index
// reordering, CSF trees, partitions, memoization config) built once by
// Compile, plus a pool of solve workspaces. All methods are safe to call
// concurrently; simultaneous solves share the plan and draw distinct
// workspaces from the pool.
type Compiled struct {
	opts   Options
	dims   []int
	normX  float64
	perms  reorder.Perms
	solver *cpd.Solver
	plan   *core.Plan // nil unless the engine is stef/stef2
}

// Compile runs every per-tensor preprocessing step — optional index
// reordering, CSF construction and the data-movement model search — and
// returns a handle whose Decompose variants reuse that work across solves.
func Compile(t *tensor.Tensor, opts Options) (*Compiled, error) {
	var perms reorder.Perms
	switch opts.Reorder {
	case "":
	case "lexi":
		perms = reorder.LexiOrder(t, 3)
	case "bfsmcs":
		perms = reorder.BFSMCS(t)
	default:
		return nil, fmt.Errorf("stef: unknown reordering %q", opts.Reorder)
	}
	if perms != nil {
		t = reorder.Apply(t, perms)
	}
	eng, plan, err := buildEngine(t, opts)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		opts:   opts,
		dims:   append([]int(nil), t.Dims...),
		normX:  t.NormFrobenius(),
		perms:  perms,
		solver: cpd.NewSolver(eng),
		plan:   plan,
	}, nil
}

// CompileTree builds a compile-once/solve-many handle from a pre-built CSF
// tree — typically one opened zero-copy from an arena file:
//
//	tree, _ := stef.OpenArena("tensor.stef")
//	defer tree.Close()
//	c, _ := stef.CompileTree(tree, stef.Options{Rank: 32, Threads: 8})
//
// The reorder and CSF-build preprocessing is skipped (it was paid when the
// arena was packed), so compilation costs only the memoization search and
// the work-distribution census — an arena-backed 100M+-nnz tensor reaches
// its first solve without the non-zeros ever being copied to the heap.
//
// Only the stef engine is supported: baselines and stef2 build their own
// representations from the COO tensor, which a pre-built tree no longer
// has (for the same reason Options.Reorder must be empty). The caller
// keeps ownership of the tree: close its backing only after the handle's
// last solve.
func CompileTree(tree *csf.Tree, opts Options) (*Compiled, error) {
	if opts.Engine != "" && opts.Engine != "stef" {
		return nil, fmt.Errorf("stef: engine %q cannot run from a pre-built tree (needs the COO tensor); use engine \"stef\"", opts.Engine)
	}
	if opts.Reorder != "" {
		return nil, fmt.Errorf("stef: reordering %q needs the COO tensor; reorder before packing the arena instead", opts.Reorder)
	}
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	rank := opts.Rank
	if rank <= 0 {
		rank = 16
	}
	accum, err := accumRule(opts.Accum)
	if err != nil {
		return nil, err
	}
	remap, err := remapRule(opts.Remap)
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlanFromTree(tree, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes, MaxPrivElems: opts.MaxPrivElems, AccumRule: accum, RemapRule: remap})
	if err != nil {
		return nil, err
	}
	// The solver works in original mode order; undo the tree's level
	// permutation for the dims and stream the values once for ||X||_F.
	dims := make([]int, tree.Order())
	for l, m := range tree.Perm() {
		dims[m] = tree.Dim(l)
	}
	var sq float64
	for _, v := range tree.ValsLevel() {
		sq += v * v
	}
	return &Compiled{
		opts:   opts,
		dims:   dims,
		normX:  math.Sqrt(sq),
		solver: cpd.NewSolver(core.NewEngine(plan)),
		plan:   plan,
	}, nil
}

// OpenArena opens a CSF arena file written by SaveArena (or csf.WriteArena)
// — on linux a zero-copy, O(rank)-latency mmap of the level arrays. Close
// the returned tree when done; see csf.OpenArena.
//
// life: return owned
func OpenArena(path string) (*csf.Tree, error) { return csf.OpenArena(path) }

// SaveArena packs the tensor into a CSF arena file: the CSF is built in
// the length-sorted heuristic order (the STeF default layout) and written
// crash-safely. The one-time build cost here is what OpenArena avoids on
// every subsequent run.
func SaveArena(t *tensor.Tensor, path string) error {
	return csf.Build(t, nil).WriteArena(path)
}

// Engine returns the compiled MTTKRP engine.
func (c *Compiled) Engine() cpd.Engine { return c.solver.Engine() }

// Plan returns STeF's planning diagnostics — the chosen layout and
// memoization set, the full configuration search trace (AllConfigs), the
// Table II byte accounting and preprocessing times. It is nil for engines
// other than "stef" and "stef2", which do not plan.
func (c *Compiled) Plan() *core.Plan { return c.plan }

// Decompose runs one CPD-ALS solve with the compiled plan, seeded by
// Options.Seed.
func (c *Compiled) Decompose() (*Result, error) { return c.DecomposeSeed(c.opts.Seed) }

// DecomposeSeed runs one CPD-ALS solve from the random initialisation of
// the given seed. It is safe to call from many goroutines at once: the plan
// is shared read-only and each call checks a workspace out of the pool.
func (c *Compiled) DecomposeSeed(seed int64) (*Result, error) {
	res, err := c.solver.Run(c.dims, c.normX, cpd.Options{
		Rank: c.opts.Rank, MaxIters: c.opts.MaxIters, Tol: c.opts.Tol, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	c.unpermute(res)
	return res, nil
}

// DecomposeBest runs `restarts` solves with seeds Seed, Seed+1, ... in
// parallel — they share the one compiled plan — and returns the result with
// the best final fit. Ties (and the pick among equal fits) are resolved
// deterministically in seed order.
func (c *Compiled) DecomposeBest(restarts int) (*Result, error) {
	if restarts < 1 {
		restarts = 1
	}
	results := make([]*Result, restarts)
	errs := make([]error, restarts)
	par.Do(restarts, func(i int) {
		results[i], errs[i] = c.DecomposeSeed(c.opts.Seed + int64(i))
	})
	var best *Result
	for i, res := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if best == nil || res.FinalFit() > best.FinalFit() {
			best = res
		}
	}
	return best, nil
}

// unpermute maps factor rows back to the original index space when the
// tensor was reordered: relabeled row perms[m][i] corresponds to original
// index i.
func (c *Compiled) unpermute(res *Result) {
	if c.perms == nil {
		return
	}
	for m, f := range res.Factors {
		orig := tensor.NewMatrix(f.Rows, f.Cols)
		for i := 0; i < f.Rows; i++ {
			copy(orig.Row(i), f.Row(int(c.perms[m][i])))
		}
		res.Factors[m] = orig
	}
}

// Decompose factorises the sparse tensor with CPD-ALS using the selected
// engine and returns the factor matrices, component weights and fit trace.
func Decompose(t *tensor.Tensor, opts Options) (*Result, error) {
	c, err := Compile(t, opts)
	if err != nil {
		return nil, err
	}
	return c.Decompose()
}

// DecomposeBest compiles once, then runs `restarts` solves in parallel with
// different random initialisations (seeds opts.Seed, opts.Seed+1, ...) and
// returns the result with the best final fit. CPD-ALS converges to local
// optima, so a handful of restarts is the standard way to stabilise the
// fit; on exactly low-rank data one restart usually suffices. The
// preprocessing (reordering, CSF build, model search) is shared across all
// restarts.
func DecomposeBest(t *tensor.Tensor, opts Options, restarts int) (*Result, error) {
	c, err := Compile(t, opts)
	if err != nil {
		return nil, err
	}
	return c.DecomposeBest(restarts)
}

// NewEngine constructs the named MTTKRP engine for the tensor. The empty
// name selects STeF.
func NewEngine(t *tensor.Tensor, opts Options) (cpd.Engine, error) {
	eng, _, err := buildEngine(t, opts)
	return eng, err
}

// buildEngine constructs the named engine plus, for stef/stef2, its plan.
func buildEngine(t *tensor.Tensor, opts Options) (cpd.Engine, *core.Plan, error) {
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	rank := opts.Rank
	if rank <= 0 {
		rank = 16
	}
	accum, err := accumRule(opts.Accum)
	if err != nil {
		return nil, nil, err
	}
	remap, err := remapRule(opts.Remap)
	if err != nil {
		return nil, nil, err
	}
	switch opts.Engine {
	case "", "stef":
		eng, plan, err := core.NewEngineFor(t, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes, MaxPrivElems: opts.MaxPrivElems, AccumRule: accum, RemapRule: remap})
		return eng, plan, err
	case "stef2":
		eng, plan, err := core.NewEngineFor(t, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes, MaxPrivElems: opts.MaxPrivElems, AccumRule: accum, RemapRule: remap, SecondCSF: true})
		return eng, plan, err
	case "splatt-1":
		return baselines.NewSplatt(t, baselines.SplattOptions{Copies: 1, Threads: threads, Rank: rank, MaxPrivElems: opts.MaxPrivElems}), nil, nil
	case "splatt-2":
		return baselines.NewSplatt(t, baselines.SplattOptions{Copies: 2, Threads: threads, Rank: rank, MaxPrivElems: opts.MaxPrivElems}), nil, nil
	case "splatt-all":
		return baselines.NewSplatt(t, baselines.SplattOptions{Copies: -1, Threads: threads, Rank: rank, MaxPrivElems: opts.MaxPrivElems}), nil, nil
	case "adatm":
		return baselines.NewAdaTM(t, baselines.AdaTMOptions{Threads: threads, Rank: rank, MaxPrivElems: opts.MaxPrivElems}), nil, nil
	case "alto":
		eng, err := baselines.NewALTO(t, baselines.ALTOOptions{Threads: threads, Rank: rank, MaxPrivElems: opts.MaxPrivElems})
		return eng, nil, err
	case "taco":
		return baselines.NewTACO(t, baselines.TACOOptions{Threads: threads, Rank: rank}), nil, nil
	case "hicoo":
		eng, err := baselines.NewHiCOO(t, baselines.HiCOOOptions{Threads: threads, Rank: rank, MaxPrivElems: opts.MaxPrivElems})
		return eng, nil, err
	case "dtree":
		eng, err := dtree.NewEngine(t, dtree.Options{Rank: rank, Threads: threads})
		return eng, nil, err
	case "naive":
		return cpd.NaiveEngine(t), nil, nil
	}
	return nil, nil, fmt.Errorf("stef: unknown engine %q", opts.Engine)
}

// Plan exposes STeF's planning decisions (chosen layout, memoization set,
// modeled cost, Table II byte accounting) without running a decomposition.
func Plan(t *tensor.Tensor, opts Options) (*core.Plan, error) {
	rank := opts.Rank
	if rank <= 0 {
		rank = 16
	}
	threads := opts.Threads
	if threads < 1 {
		threads = 1
	}
	accum, err := accumRule(opts.Accum)
	if err != nil {
		return nil, err
	}
	remap, err := remapRule(opts.Remap)
	if err != nil {
		return nil, err
	}
	return core.NewPlan(t, core.Options{Rank: rank, Threads: threads, CacheBytes: opts.CacheBytes, MaxPrivElems: opts.MaxPrivElems, AccumRule: accum, RemapRule: remap, SecondCSF: opts.Engine == "stef2"})
}

// accumRule parses Options.Accum.
func accumRule(s string) (core.AccumRule, error) {
	switch s {
	case "", "auto":
		return core.AccumModel, nil
	case "priv":
		return core.AccumPriv, nil
	case "hybrid":
		return core.AccumHybrid, nil
	case "atomic":
		return core.AccumAtomic, nil
	}
	return core.AccumModel, fmt.Errorf("stef: unknown accumulation strategy %q (want auto, priv, hybrid or atomic)", s)
}

// remapRule parses Options.Remap.
func remapRule(s string) (core.RemapRule, error) {
	switch s {
	case "", "auto":
		return core.RemapModel, nil
	case "on":
		return core.RemapOn, nil
	case "off":
		return core.RemapOff, nil
	}
	return core.RemapModel, fmt.Errorf("stef: unknown remap rule %q (want auto, on or off)", s)
}

// LoadTensor reads a FROSTT .tns file.
func LoadTensor(path string) (*tensor.Tensor, error) {
	return frostt.ReadFile(path, nil)
}

// Benchmark generates one of the named synthetic benchmark tensors
// reproducing Table I's suite (see stef/internal/tensor.ProfileNames).
func Benchmark(name string) (*tensor.Tensor, error) {
	p, err := tensor.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(), nil
}

// Command steflint runs the repo-native static analyzers over the module:
//
//	hotpath-alloc  no allocations inside for loops of the hot packages
//	par-safety     par.Blocks/par.Do callbacks write only thread-indexed state
//	panic-prefix   panic messages in internal/... start with the package name
//	no-deps        imports resolve to the stdlib or stef/... only
//
// Usage:
//
//	steflint [-run a,b] [-list] [packages]
//
// With no arguments (or "./...") every package in the module is analyzed.
// Arguments name package directories relative to the working directory.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"stef/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("steflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *runNames != "" {
		var err error
		analyzers, err = lint.ByName(*runNames)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}

	var pkgs []*lint.Package
	patterns := fs.Args()
	wholeModule := len(patterns) == 0
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			wholeModule = true
		}
	}
	if wholeModule {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, "steflint:", err)
			return 2
		}
	} else {
		for _, p := range patterns {
			pkg, err := loader.LoadDir(p)
			if err != nil {
				fmt.Fprintln(stderr, "steflint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "steflint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// Command steflint runs the repo-native static analyzers over the module:
//
//	hotpath-alloc   no allocations inside for loops of the hot packages
//	write-disjoint  stores reachable from par.Do/par.Blocks callbacks are
//	                provably thread-disjoint (interprocedural dataflow)
//	idx-width       index/offset arithmetic is evaluated at a width that
//	                holds its scale class (//idx: annotations, interprocedural)
//	lifetime        releasable resources (mmap-backed trees, pooled solver
//	                workspaces, csf level views) are never used after
//	                release, never escape their Acquire→Release window,
//	                and never leak on error paths (//life: annotations,
//	                interprocedural)
//	engine-purity   Engine Compute implementations mutate only their Workspace
//	panic-prefix    panic messages in internal/... start with the package name
//	no-deps         imports resolve to the stdlib or stef/... only
//	stale-allow     //lint:allow, //gate:allow, //idx: and //life:
//	                directives must suppress or declare something and spell
//	                their analyzer/gate-kind/facet/lifetime vocabulary
//	                correctly
//
// With -gates it instead runs the compiler-diagnostic performance gates
// (internal/lint/gates): the hot packages are rebuilt with escape-analysis,
// bounds-check and assembly (-S) diagnostics enabled in one compile; the
// manifest's hot functions must stay free of in-loop escapes and bounds
// checks, the manifest's shape assertions certify the emitted machine code
// (call/bounds/FP-multiply/frame-reload budgets per function), and
// everything else is ratcheted against the committed baseline, which
// carries a toolchain stamp so counts are never compared across compilers.
//
// Usage:
//
//	steflint [-run a,b] [-list] [-json] [packages]
//	steflint -gates [-write-baseline]
//
// With no arguments (or "./...") every package in the module is analyzed.
// Arguments name package directories relative to the working directory.
// With -json, findings are emitted to stdout as a JSON array of
// {file, line, analyzer, message} objects with module-root-relative file
// paths, for machine consumption (e.g. CI annotations).
//
// Exit status: 0 clean, 1 findings, 2 usage error, load failure, or a
// package that failed to typecheck (reported as an analyzer="typecheck"
// pseudo-finding so -json consumers see it too).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"stef/internal/lint"
	"stef/internal/lint/gates"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("steflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array of {file, line, analyzer, message}")
	runNames := fs.String("run", "", "comma-separated analyzers to run (default: all)")
	gatesMode := fs.Bool("gates", false, "run the compiler-diagnostic performance gates")
	writeBaseline := fs.Bool("write-baseline", false, "with -gates: rewrite the committed baseline to the observed counts")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && !*gatesMode {
		fmt.Fprintln(stderr, "steflint: -write-baseline requires -gates")
		return 2
	}
	if *gatesMode {
		return runGates(*writeBaseline, stdout, stderr)
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All()
	if *runNames != "" {
		var err error
		analyzers, err = lint.ByName(*runNames)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}

	var pkgs []*lint.Package
	patterns := fs.Args()
	wholeModule := len(patterns) == 0
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			wholeModule = true
		}
	}
	if wholeModule {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, "steflint:", err)
			return 2
		}
	} else {
		for _, p := range patterns {
			pkg, err := loader.LoadDir(p)
			if err != nil {
				fmt.Fprintln(stderr, "steflint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	findings := lint.Run(pkgs, analyzers)
	if *jsonOut {
		root, _, rootErr := gates.FindModuleRoot(cwd)
		if rootErr != nil {
			root = "" // fall back to the loader's absolute paths
		}
		if err := writeJSON(stdout, root, findings); err != nil {
			fmt.Fprintln(stderr, "steflint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	typeErrs := 0
	for _, f := range findings {
		if f.Analyzer == "typecheck" {
			typeErrs++
		}
	}
	if typeErrs > 0 {
		fmt.Fprintf(stderr, "steflint: %d package(s) failed to typecheck\n", typeErrs)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "steflint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape emitted by -json.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits findings as a JSON array (always an array, [] when
// clean) with file paths relative to the module root where possible.
func writeJSON(stdout *os.File, root string, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPath rewrites file as a slash-separated path relative to root when it
// lies inside it; paths outside the module (or an empty root) pass through.
func relPath(root, file string) string {
	if root == "" || file == "" {
		return file
	}
	r, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(r, "..") {
		return file
	}
	return filepath.ToSlash(r)
}

// runGates executes the compiler-diagnostic gates over the module
// containing the working directory.
func runGates(writeBaseline bool, stdout, stderr *os.File) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}
	root, _, err := gates.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}
	basePath := filepath.Join(root, filepath.FromSlash(gates.BaselineFile))
	var baseline *gates.Baseline
	if !writeBaseline {
		baseline, err = gates.LoadBaseline(basePath)
		if err != nil {
			fmt.Fprintf(stderr, "steflint: %v (run `steflint -gates -write-baseline` to create the baseline)\n", err)
			return 2
		}
	}
	res, err := gates.Check(root, gates.Default(), baseline)
	if err != nil {
		fmt.Fprintln(stderr, "steflint:", err)
		return 2
	}
	if writeBaseline {
		if err := os.WriteFile(basePath, gates.FormatBaseline(res.Toolchain, res.Counts), 0o644); err != nil {
			fmt.Fprintln(stderr, "steflint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "steflint: wrote %s (%d baseline entries, toolchain %s)\n", gates.BaselineFile, len(res.Counts), res.Toolchain)
	}
	for _, v := range res.Violations {
		fmt.Fprintln(stdout, v)
	}
	for _, v := range res.ShapeViolations {
		fmt.Fprintln(stdout, v)
	}
	for _, s := range res.Stale {
		fmt.Fprintln(stdout, s)
	}
	toolchainStale := !writeBaseline && res.ToolchainStale()
	if toolchainStale {
		was := res.BaselineToolchain
		if was == "" {
			was = "unstamped"
		}
		fmt.Fprintf(stdout, "baseline stale: toolchain changed (baseline %s, current %s); diagnostic counts are incomparable across compilers — review and run `steflint -gates -write-baseline`\n",
			was, res.Toolchain)
	}
	if !writeBaseline {
		for _, d := range res.Regressions {
			fmt.Fprintf(stdout, "regression vs baseline: %s\n", d)
		}
		for _, d := range res.Improvements {
			fmt.Fprintf(stdout, "improvement vs baseline: %s (tighten with -gates -write-baseline)\n", d)
		}
	}
	nfail := len(res.Violations) + len(res.ShapeViolations) + len(res.Stale)
	if !writeBaseline {
		nfail += len(res.Regressions)
	}
	if toolchainStale {
		nfail++
	}
	if nfail > 0 {
		fmt.Fprintf(stderr, "steflint: gates failed: %d violation(s), %d shape violation(s), %d stale allow(s), %d regression(s), toolchain stale: %v\n",
			len(res.Violations), len(res.ShapeViolations), len(res.Stale), len(res.Regressions), toolchainStale)
		return 1
	}
	return 0
}

// Command tensorinfo prints the structural statistics of a sparse tensor
// that drive STeF's decisions: per-level fiber counts under the
// length-sorted CSF order, average fiber lengths, the Algorithm 9 swapped
// fiber count, root-slice imbalance, the chosen plan and the per-mode
// data-movement breakdown.
//
//	tensorinfo -tensor vast-2015-mc1-3d -rank 32 -threads 8
//	tensorinfo -file data.tns
package main

import (
	"os"

	"stef/internal/cli"
)

func main() {
	os.Exit(cli.RunTensorInfo(os.Args[1:], os.Stdout, os.Stderr))
}

// Command stef-sweep sweeps one parameter — rank, threads, or the
// data-movement model's cache size — over a tensor for a set of engines
// and emits per-iteration MTTKRP times as CSV, ready for plotting.
//
//	stef-sweep -tensor nell-2 -param rank -values 8,16,32,64
//	stef-sweep -tensor uber -param cache -engines stef
package main

import (
	"os"

	"stef/internal/cli"
)

func main() {
	os.Exit(cli.RunSweep(os.Args[1:], os.Stdout, os.Stderr))
}

// Command stef-cpd runs CPD-ALS on a sparse tensor — from a FROSTT .tns
// file or a named synthetic benchmark — with any of the implemented MTTKRP
// engines, and reports per-iteration fit and timing.
//
//	stef-cpd -tensor uber -rank 32 -iters 10 -engine stef2 -threads 4
//	stef-cpd -file data.tns -rank 16 -engine splatt-all -export factors.txt
package main

import (
	"os"

	"stef/internal/cli"
)

func main() {
	os.Exit(cli.RunStefCPD(os.Args[1:], os.Stdout, os.Stderr))
}

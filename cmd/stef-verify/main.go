// Command stef-verify cross-checks every MTTKRP engine against the naive
// COO reference on a given tensor: each engine computes all d MTTKRPs on
// identical factor matrices and the maximum relative deviation is reported.
// Use it to validate the build on new data before trusting benchmark runs.
//
//	stef-verify -tensor nips -threads 8 -rank 16
//	stef-verify -file data.tns
//
// -idx switches to the index-width debugging view: it runs the same
// interprocedural scale-class inference as `steflint`'s idx-width
// analyzer and prints the class (rank, dim/fid, nnz, bytes) inferred at
// every assignment, index expression and conversion in one function.
//
//	stef-verify -idx internal/csf:Tree.Bytes
//	stef-verify -idx stef/internal/tensor:Tensor.SortLex
package main

import (
	"os"

	"stef/internal/cli"
)

func main() {
	os.Exit(cli.RunVerify(os.Args[1:], os.Stdout, os.Stderr))
}

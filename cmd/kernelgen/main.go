// Command kernelgen emits generated kernel sources. The unrolled non-root
// MTTKRP kernels for one tensor order, the R-blocked rank-vector
// specializations, and their code-shape certificates are produced by:
//
//	go run ./cmd/kernelgen -d 5 > internal/kernels/modes5_gen.go
//	go run ./cmd/kernelgen -vec > internal/kernels/vec_gen.go
//	go run ./cmd/kernelgen -shape > internal/lint/gates/shape_gen.go
//
// -vec and -shape must be regenerated together: the shape rules assert
// the machine code of exactly the specializations -vec emits.
package main

import (
	"flag"
	"fmt"
	"os"

	"stef/internal/kernelgen"
)

func main() {
	d := flag.Int("d", 5, "tensor order to generate mode kernels for")
	vec := flag.Bool("vec", false, "emit the R-blocked rank-vector primitives (internal/kernels/vec_gen.go)")
	shape := flag.Bool("shape", false, "emit the shape rules certifying -vec's output (internal/lint/gates/shape_gen.go)")
	flag.Parse()
	var (
		src []byte
		err error
	)
	switch {
	case *vec && *shape:
		err = fmt.Errorf("-vec and -shape emit different files; pass one at a time")
	case *vec:
		src, err = kernelgen.GenerateVec()
	case *shape:
		src, err = kernelgen.GenerateShapeRules()
	default:
		src, err = kernelgen.Generate(*d)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelgen:", err)
		os.Exit(2)
	}
	os.Stdout.Write(src)
}

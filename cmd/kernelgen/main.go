// Command kernelgen emits the unrolled non-root MTTKRP kernels for a given
// tensor order. The order-5 kernels in internal/kernels/modes5_gen.go are
// produced by:
//
//	go run ./cmd/kernelgen -d 5 > internal/kernels/modes5_gen.go
package main

import (
	"flag"
	"fmt"
	"os"

	"stef/internal/kernelgen"
)

func main() {
	d := flag.Int("d", 5, "tensor order to generate kernels for")
	flag.Parse()
	src, err := kernelgen.Generate(*d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelgen:", err)
		os.Exit(2)
	}
	os.Stdout.Write(src)
}

// Command stef-bench regenerates the paper's evaluation tables and figures
// on the synthetic benchmark suite.
//
//	stef-bench -all                  # everything (Table I/II, Fig 3-6)
//	stef-bench -fig3 -ranks 32       # measured+modeled speedups, R=32
//	stef-bench -fig6 -tensors uber,nell-2
//
// Figures 3 and 4 are produced twice: wall-clock on this host (whose core
// count limits what load balancing can show) and a modeled-makespan variant
// at the paper's 18- and 64-thread machine sizes, which is exact and
// machine-independent.
package main

import (
	"os"

	"stef/internal/cli"
)

func main() {
	os.Exit(cli.RunBench(os.Args[1:], os.Stdout, os.Stderr))
}

// Command tensorgen materialises synthetic benchmark tensors (or custom
// random tensors) as FROSTT .tns files (gzip-compressed when the output
// path ends in .gz).
//
//	tensorgen -tensor uber -o uber.tns
//	tensorgen -dims 100x200x300 -nnz 50000 -skew 1.5,0,0 -o custom.tns.gz
//	tensorgen -hugedims -nnz 4096 -o boundary.tns
//
// -hugedims emits the int32-boundary stress tensor: two modes just under
// 2^31 with non-zeros pinned at the extreme corners, the fixture behind
// the idx-width overflow-soundness work (see ARCHITECTURE.md).
package main

import (
	"os"

	"stef/internal/cli"
)

func main() {
	os.Exit(cli.RunTensorGen(os.Args[1:], os.Stdout, os.Stderr))
}

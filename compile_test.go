package stef_test

import (
	"math"
	"sync"
	"testing"

	"stef"
	"stef/internal/tensor"
)

// TestCompileExposesDiagnostics pins the satellite fix: the compiled handle
// must surface the plan's Table II accounting and configuration search
// trace, which the old NewEngine discarded.
func TestCompileExposesDiagnostics(t *testing.T) {
	tt := tensor.Random([]int{8, 40, 60}, 1200, nil, 3)
	c, err := stef.Compile(tt, stef.Options{Rank: 8, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := c.Plan()
	if plan == nil {
		t.Fatal("stef engine compiled without a plan")
	}
	if len(plan.AllConfigs) == 0 {
		t.Fatal("plan lost its configuration search trace")
	}
	if plan.CSFBytes <= 0 || plan.FactorBytes <= 0 {
		t.Fatalf("plan lost Table II accounting: csf=%d factors=%d", plan.CSFBytes, plan.FactorBytes)
	}
	if c.Engine().Name() != "stef" {
		t.Fatalf("engine name %q", c.Engine().Name())
	}
	// Baseline engines do not plan; the handle must say so rather than lie.
	b, err := stef.Compile(tt, stef.Options{Rank: 8, Engine: "splatt-all"})
	if err != nil {
		t.Fatal(err)
	}
	if b.Plan() != nil {
		t.Fatal("splatt-all reported a STeF plan")
	}
}

// TestCompiledConcurrentDecompose drives one compiled handle from many
// goroutines at once (run under -race in scripts/check.sh). Same-seed solves
// must be bit-identical — proof the shared plan is read-only and every solve
// got its own workspace.
func TestCompiledConcurrentDecompose(t *testing.T) {
	tt := tensor.Random([]int{14, 18, 22}, 900, nil, 7)
	for _, engine := range []string{"stef", "stef2", "splatt-all", "adatm", "dtree"} {
		t.Run(engine, func(t *testing.T) {
			c, err := stef.Compile(tt, stef.Options{Rank: 4, MaxIters: 5, Tol: -1, Threads: 2, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			const workers = 8
			results := make([]*stef.Result, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			wg.Add(workers)
			for i := 0; i < workers; i++ {
				go func(i int) {
					defer wg.Done()
					// Workers i and i+4 share a seed; the pairs must agree.
					results[i], errs[i] = c.DecomposeSeed(int64(i % 4))
				}(i)
			}
			wg.Wait()
			for i := 0; i < workers; i++ {
				if errs[i] != nil {
					t.Fatalf("worker %d: %v", i, errs[i])
				}
			}
			for i := 0; i < 4; i++ {
				a, b := results[i], results[i+4]
				if a.FinalFit() != b.FinalFit() {
					t.Fatalf("seed %d: concurrent solves diverged: fit %.12f vs %.12f", i, a.FinalFit(), b.FinalFit())
				}
				for m := range a.Factors {
					if diff := a.Factors[m].MaxAbsDiff(b.Factors[m]); diff != 0 {
						t.Fatalf("seed %d mode %d: factors differ by %g", i, m, diff)
					}
				}
			}
		})
	}
}

// TestCompiledDecomposeBestDeterministic checks DecomposeBest picks exactly
// the best sequential result even though restarts run in parallel.
func TestCompiledDecomposeBestDeterministic(t *testing.T) {
	tt := tensor.Random([]int{10, 12, 14}, 600, nil, 11)
	c, err := stef.Compile(tt, stef.Options{Rank: 3, MaxIters: 6, Tol: -1, Seed: 30, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	const restarts = 4
	wantFit := math.Inf(-1)
	for i := 0; i < restarts; i++ {
		res, err := c.DecomposeSeed(30 + int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalFit() > wantFit {
			wantFit = res.FinalFit()
		}
	}
	best, err := c.DecomposeBest(restarts)
	if err != nil {
		t.Fatal(err)
	}
	if best.FinalFit() != wantFit {
		t.Fatalf("DecomposeBest fit %.12f, want best sequential fit %.12f", best.FinalFit(), wantFit)
	}
}

// TestCompileWithReorderUnpermutes verifies each solve of a reordered
// compile maps its factors back to the original index space.
func TestCompileWithReorderUnpermutes(t *testing.T) {
	tt := tensor.Random([]int{10, 12, 14}, 700, []float64{1.5, 0, 0}, 6)
	plain, err := stef.Decompose(tt, stef.Options{Rank: 4, MaxIters: 8, Tol: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := stef.Compile(tt, stef.Options{Rank: 4, MaxIters: 8, Tol: -1, Seed: 5, Reorder: "lexi"})
	if err != nil {
		t.Fatal(err)
	}
	re, err := c.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(re.FinalFit()-plain.FinalFit()) > 0.05 {
		t.Errorf("reordered fit %.4f vs plain %.4f", re.FinalFit(), plain.FinalFit())
	}
	for m, f := range re.Factors {
		if f.Rows != tt.Dims[m] {
			t.Fatalf("factor %d has %d rows, want %d", m, f.Rows, tt.Dims[m])
		}
	}
}

package stef

// Benchmarks for the subsystems beyond the paper's evaluation: reordering,
// the dimension-tree and HiCOO engines, CSF serialisation and Algorithm 9.

import (
	"bytes"
	"testing"

	"stef/internal/baselines"
	"stef/internal/csf"
	"stef/internal/dtree"
	"stef/internal/reorder"
	"stef/internal/tensor"
)

func BenchmarkExtensions(b *testing.B) {
	tt := benchTensor(b, "nell-2")
	const rank = 16

	b.Run("reorder/lexi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reorder.LexiOrder(tt, 1)
		}
	})
	b.Run("reorder/bfsmcs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			reorder.BFSMCS(tt)
		}
	})

	factors := tensor.RandomFactors(tt.Dims, rank, 1)
	d := tt.Order()

	b.Run("engine/dtree-iteration", func(b *testing.B) {
		eng, err := dtree.NewEngine(tt, dtree.Options{Rank: rank, Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		order := eng.UpdateOrder()
		outs := make([]*tensor.Matrix, d)
		for pos := 0; pos < d; pos++ {
			outs[pos] = tensor.NewMatrix(tt.Dims[order[pos]], rank)
		}
		ws := eng.NewWorkspace()
		ws.Reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for pos := 0; pos < d; pos++ {
				eng.Compute(ws, pos, factors, outs[pos])
			}
		}
	})
	b.Run("engine/hicoo-iteration", func(b *testing.B) {
		eng, err := baselines.NewHiCOO(tt, baselines.HiCOOOptions{Rank: rank, Threads: 4})
		if err != nil {
			b.Fatal(err)
		}
		order := eng.UpdateOrder()
		outs := make([]*tensor.Matrix, d)
		for pos := 0; pos < d; pos++ {
			outs[pos] = tensor.NewMatrix(tt.Dims[order[pos]], rank)
		}
		ws := eng.NewWorkspace()
		ws.Reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for pos := 0; pos < d; pos++ {
				eng.Compute(ws, pos, factors, outs[pos])
			}
		}
	})

	tree := csf.Build(tt, nil)
	b.Run("csf/serialize", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if _, err := tree.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csf/deserialize", func(b *testing.B) {
		var buf bytes.Buffer
		if _, err := tree.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := csf.ReadFrom(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

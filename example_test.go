package stef_test

import (
	"fmt"

	"stef"
	"stef/internal/tensor"
)

// ExampleDecompose shows the one-call API on a small synthetic tensor.
func ExampleDecompose() {
	t := tensor.Random([]int{30, 40, 50}, 2000, nil, 1)
	res, err := stef.Decompose(t, stef.Options{Rank: 4, MaxIters: 5, Tol: -1, Threads: 2, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("iterations:", res.Iters)
	fmt.Println("factor shapes:", res.Factors[0].Rows, res.Factors[1].Rows, res.Factors[2].Rows)
	// Output:
	// iterations: 5
	// factor shapes: 30 40 50
}

// ExamplePlan shows how to inspect STeF's configuration decision without
// running a decomposition.
func ExamplePlan() {
	t := tensor.Random([]int{10, 200, 3000}, 5000, nil, 2)
	plan, err := stef.Plan(t, stef.Options{Rank: 16, Threads: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("configurations evaluated:", len(plan.AllConfigs))
	fmt.Println("csf levels:", len(plan.Tree.Dims()))
	// Output:
	// configurations evaluated: 4
	// csf levels: 3
}

// ExampleNewEngine runs a single MTTKRP through a baseline engine.
func ExampleNewEngine() {
	t := tensor.Random([]int{5, 6, 7}, 60, nil, 3)
	eng, err := stef.NewEngine(t, stef.Options{Rank: 4, Threads: 1, Engine: "splatt-all"})
	if err != nil {
		panic(err)
	}
	fmt.Println(eng.Name(), eng.UpdateOrder())
	// Output:
	// splatt-all [0 1 2]
}

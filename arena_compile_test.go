package stef_test

import (
	"math"
	"path/filepath"
	"testing"

	"stef"
	"stef/internal/csf"
	"stef/internal/tensor"
)

// TestCompileTreeArenaParity drives the arena lifecycle end to end: pack a
// tensor's CSF into an arena, reopen it (zero-copy on linux), compile and
// solve from both the heap-built tree and the arena view, and require
// bit-identical factor matrices and weights. The two handles share every
// plan decision — only the storage backing differs — so any divergence
// means a kernel observed the backing, which the seam forbids.
func TestCompileTreeArenaParity(t *testing.T) {
	tt := tensor.Random([]int{30, 40, 50}, 3000, []float64{1.5, 0, 1.2}, 3)
	path := filepath.Join(t.TempDir(), "parity.stef")
	if err := stef.SaveArena(tt, path); err != nil {
		t.Fatalf("SaveArena: %v", err)
	}
	opened, err := stef.OpenArena(path)
	if err != nil {
		t.Fatalf("OpenArena: %v", err)
	}
	defer opened.Close()

	heapTree := csf.Build(tt, nil)
	if !csf.Equal(heapTree, opened) {
		t.Fatal("arena tree differs from the heap build it was packed from")
	}

	opts := stef.Options{Rank: 4, MaxIters: 6, Tol: -1, Threads: 3, Seed: 9}
	solve := func(tr *csf.Tree) *stef.Result {
		t.Helper()
		c, err := stef.CompileTree(tr, opts)
		if err != nil {
			t.Fatalf("CompileTree: %v", err)
		}
		res, err := c.Decompose()
		if err != nil {
			t.Fatalf("Decompose: %v", err)
		}
		return res
	}
	a, b := solve(heapTree), solve(opened)

	if a.FinalFit() != b.FinalFit() {
		t.Fatalf("final fit diverged: heap %v, arena %v", a.FinalFit(), b.FinalFit())
	}
	for j := range a.Lambda {
		if a.Lambda[j] != b.Lambda[j] {
			t.Fatalf("lambda[%d] diverged: %v vs %v", j, a.Lambda[j], b.Lambda[j])
		}
	}
	for m := range a.Factors {
		fa, fb := a.Factors[m], b.Factors[m]
		for i := 0; i < fa.Rows; i++ {
			ra, rb := fa.Row(i), fb.Row(i)
			for j := range ra {
				if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
					t.Fatalf("factor %d row %d col %d diverged: %v vs %v", m, i, j, ra[j], rb[j])
				}
			}
		}
	}
	// The fit must also agree with a plain Compile solve on the same
	// tensor up to the layout difference: sanity-check it is a real fit.
	if !(a.FinalFit() > 0) {
		t.Fatalf("degenerate final fit %v", a.FinalFit())
	}
}

// TestCompileTreeRejections pins the documented constraints: engines other
// than stef, and reordering, need the COO tensor and must be refused.
func TestCompileTreeRejections(t *testing.T) {
	tr := csf.Build(tensor.Random([]int{10, 11, 12}, 200, nil, 1), nil)
	if _, err := stef.CompileTree(tr, stef.Options{Engine: "splatt-1"}); err == nil {
		t.Fatal("CompileTree accepted a baseline engine")
	}
	if _, err := stef.CompileTree(tr, stef.Options{Engine: "stef2"}); err == nil {
		t.Fatal("CompileTree accepted stef2")
	}
	if _, err := stef.CompileTree(tr, stef.Options{Reorder: "lexi"}); err == nil {
		t.Fatal("CompileTree accepted a reordering")
	}
}

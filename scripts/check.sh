#!/usr/bin/env bash
# Repo verification gate: build, vet, steflint, tests, and the race
# detector on the parallel packages. CI (.github/workflows/ci.yml) runs
# these same steps; run this locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> steflint (incl. idx-width and lifetime interprocedural certification)"
go run ./cmd/steflint ./...

echo "==> steflint -gates (compiler-diagnostic perf gates + asm shape assertions)"
go run ./cmd/steflint -gates

echo "==> go test ./..."
go test ./...

echo "==> go test -race (parallel packages + shared-plan concurrency + int32-boundary dims)"
go test -race . ./internal/par/ ./internal/sched/ ./internal/kernels/ ./internal/cpd/ ./internal/core/

echo "==> arena storage seam (mmap round trip, corrupt-header fuzz seeds, heap-vs-arena solve parity, csf-backing self-check)"
go test -race -run 'Arena|CSFBacking' . ./internal/csf/ ./internal/lint/

echo "==> go test -race -tags shadowtrace (dynamic write-disjointness oracle)"
go test -race -tags shadowtrace ./internal/kernels/ ./internal/cpd/

echo "==> go test -race -tags lifetrace (dynamic lifetime oracle: PROT_NONE quarantine, workspace poisoning)"
go test -race -tags lifetrace ./...

echo "==> stef-bench -remapbench smoke (factor-row remap off-vs-model, one skewed tensor)"
go run ./cmd/stef-bench -remapbench -tensors vast-2015-mc1-3d -ranks 32 -accumthreads 1,2 -reps 1 > /dev/null

echo "All checks passed."

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"stef/internal/tensor"
)

// tinySuite runs the harness on heavily scaled-down tensors so the full
// pipeline is exercised in unit-test time.
func tinySuite(out *bytes.Buffer, tensors ...string) *Suite {
	return NewSuite(Options{
		Ranks:   []int{8},
		Threads: 2,
		Reps:    1,
		Scale:   0.02, // ~2k-6k nnz per tensor
		Tensors: tensors,
		Out:     out,
	})
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "uber", "vast-2015-mc1-3d")
	if err := s.Table1(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"uber", "vast-2015-mc1-3d", "rootslices"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig34MeasuredAndModeled(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "uber", "nips")
	rows, err := s.Fig34("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, row := range rows {
		if sp := row.Speedups["splatt-all"]; sp != 1.0 {
			t.Errorf("%s: splatt-all speedup vs itself = %g", row.Tensor, sp)
		}
		for name, sp := range row.Speedups {
			if sp <= 0 {
				t.Errorf("%s/%s: non-positive speedup %g", row.Tensor, name, sp)
			}
		}
	}
	mrows, err := s.Fig34Modeled("test-modeled", 18)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range mrows {
		if sp := row.Speedups["splatt-all"]; sp != 1.0 {
			t.Errorf("modeled %s: splatt-all speedup vs itself = %g", row.Tensor, sp)
		}
	}
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("output missing geomean row")
	}
}

func TestFig5(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "uber")
	rows, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Preprocess <= 0 || rows[0].Iteration <= 0 {
		t.Errorf("non-positive timings: %+v", rows[0])
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "uber", "nell-2")
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (2 tensors × 1 rank)", len(rows))
	}
	for _, r := range rows {
		if r.CSFPlusFactorsBytes <= 0 {
			t.Errorf("%s: no base bytes", r.Tensor)
		}
		if r.MemoBytes < 0 || r.Ratio < 0 {
			t.Errorf("%s: negative accounting", r.Tensor)
		}
	}
}

func TestFig6(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "vast-2015-mc1-3d")
	rows, err := s.Fig6(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 4 variants × 1 tensor
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Pct <= 0 {
			t.Errorf("variant %s: non-positive pct %g", r.Variant, r.Pct)
		}
	}
}

func TestWorkDistReport(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "vast-2015-mc1-3d")
	if err := s.WorkDistReport(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "balanced-imb%") {
		t.Error("work distribution report incomplete")
	}
}

func TestModeledMakespanAllEngines(t *testing.T) {
	tt := tensor.Random([]int{5, 40, 60, 8}, 2000, []float64{1.5, 0, 0, 0}, 3)
	for _, name := range []string{"splatt-1", "splatt-2", "splatt-all", "adatm", "alto", "taco", "stef", "stef2"} {
		ms, err := ModeledMakespan(name, tt, 16, 16, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ms <= 0 {
			t.Errorf("%s: non-positive makespan %d", name, ms)
		}
	}
	if _, err := ModeledMakespan("bogus", tt, 4, 8, 0); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestModeledMakespanBalancedBeatsSliceOnVast asserts the load-balancing
// claim itself: on a 2-root-slice tensor, STeF's modeled makespan must be
// far below splatt-all's at high thread counts.
func TestModeledMakespanBalancedBeatsSliceOnVast(t *testing.T) {
	p, err := tensor.ProfileByName("vast-2015-mc1-3d")
	if err != nil {
		t.Fatal(err)
	}
	p.NNZ = 20000
	tt := p.Generate()
	splatt, err := ModeledMakespan("splatt-all", tt, 18, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	stef, err := ModeledMakespan("stef", tt, 18, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(stef) > 0.5*float64(splatt) {
		t.Errorf("stef makespan %d not well below splatt-all %d on the 2-slice tensor", stef, splatt)
	}
}

func TestThreadScaling(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "vast-2015-mc1-3d")
	if err := s.ThreadScaling(nil, []int{1, 4, 16}, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "strong scaling") || !strings.Contains(out, "stef") {
		t.Fatalf("scaling output incomplete:\n%s", out)
	}
	// The 2-root-slice tensor must show slice-based saturation well below
	// balanced scaling at T=16.
	if err := s.ThreadScaling([]string{"bogus"}, []int{1}, 8); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestCPDCheck(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "uber")
	rows, err := s.CPDCheck(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 8 engines × 1 tensor
		t.Fatalf("%d rows", len(rows))
	}
	base := rows[0].Fit
	for _, r := range rows {
		if r.Fit <= 0 {
			t.Errorf("%s: non-positive fit %g", r.Engine, r.Fit)
		}
		if r.Fit < base-0.05 || r.Fit > base+0.05 {
			t.Errorf("%s: fit %g far from %s's %g", r.Engine, r.Fit, rows[0].Engine, base)
		}
	}
}

func TestModelAccuracy(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf, "uber")
	rows, err := s.ModelAccuracy(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.Configs != 8 { // 4D: 4 save subsets × 2 layouts
		t.Errorf("configs %d, want 8", r.Configs)
	}
	if r.Tau < -1 || r.Tau > 1 {
		t.Errorf("tau %g out of range", r.Tau)
	}
	if r.RegretPct < 0 {
		t.Errorf("negative regret %g", r.RegretPct)
	}
	if !strings.Contains(buf.String(), "kendall-tau") {
		t.Error("missing output table")
	}
}

func TestTimeIterationPositive(t *testing.T) {
	tt := tensor.Random([]int{10, 12, 14}, 600, nil, 5)
	specs := AllEngines()
	eng, err := specs[len(specs)-2].Build(tt, 2, 8, 0) // stef
	if err != nil {
		t.Fatal(err)
	}
	if el := TimeIteration(eng, tt.Dims, 8, 2); el <= 0 {
		t.Errorf("non-positive iteration time %v", el)
	}
}

func TestSuiteTensorCaching(t *testing.T) {
	s := tinySuite(&bytes.Buffer{}, "uber")
	a, err := s.Tensor("uber")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Tensor("uber")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("tensor not cached")
	}
	if _, err := s.Tensor("bogus"); err == nil {
		t.Error("unknown tensor accepted")
	}
}

func TestEngineFilter(t *testing.T) {
	s := NewSuite(Options{Engines: []string{"stef", "alto"}})
	got := engineNames(s.engines())
	if len(got) != 2 || got[0] != "alto" || got[1] != "stef" {
		t.Errorf("filtered engines %v", got)
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark suite: Table I (tensor
// inventory), Figures 3/4 (engine speedups relative to splatt-all at R=32
// and 64), Figure 5 (preprocessing overhead of the mode-order decision),
// Table II (memoization storage) and Figure 6 (ablations of the three
// optimizations). Both cmd/stef-bench and the repository-level Go
// benchmarks drive this package.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"stef/internal/baselines"
	"stef/internal/core"
	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/dtree"
	"stef/internal/sched"
	"stef/internal/stats"
	"stef/internal/tensor"
)

// Options configures a benchmark run.
type Options struct {
	// Ranks to evaluate (default {32, 64}).
	Ranks []int
	// Threads used by every engine (default GOMAXPROCS).
	Threads int
	// Reps is the number of timing repetitions; the minimum is reported
	// (default 3).
	Reps int
	// Tensors selects benchmark tensors by name (default: all profiles).
	Tensors []string
	// Scale multiplies each profile's non-zero count (default 1.0) so
	// quick runs can use smaller instances.
	Scale float64
	// CacheBytes parameterises STeF's data-movement model.
	CacheBytes int64
	// Engines restricts the engine set by name (default: all).
	Engines []string
	// Accum forces the output-accumulation strategy of the stef/stef2
	// engines (default core.AccumModel: the model chooses per mode).
	Accum core.AccumRule
	// Out receives the rendered tables (default discards).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if len(o.Ranks) == 0 {
		o.Ranks = []int{32, 64}
	}
	if o.Threads < 1 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.Reps < 1 {
		o.Reps = 3
	}
	if len(o.Tensors) == 0 {
		o.Tensors = tensor.ProfileNames()
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Suite caches generated tensors across experiments.
type Suite struct {
	Opts    Options
	tensors map[string]*tensor.Tensor
}

// NewSuite creates a suite with defaults applied.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts.withDefaults(), tensors: map[string]*tensor.Tensor{}}
}

// Tensor generates (or returns the cached) benchmark tensor by name.
func (s *Suite) Tensor(name string) (*tensor.Tensor, error) {
	if tt, ok := s.tensors[name]; ok {
		return tt, nil
	}
	p, err := tensor.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if s.Opts.Scale != 1.0 {
		p.NNZ = int(float64(p.NNZ) * s.Opts.Scale)
		if p.NNZ < 1000 {
			p.NNZ = 1000
		}
	}
	tt := p.Generate()
	s.tensors[name] = tt
	return tt, nil
}

// EngineSpec names an engine construction.
type EngineSpec struct {
	Name  string
	Build func(tt *tensor.Tensor, threads, rank int, cacheBytes int64) (cpd.Engine, error)
}

// AllEngines returns the full engine roster in the paper's comparison
// order: the five baselines, then STeF and STeF2.
func AllEngines() []EngineSpec {
	return []EngineSpec{
		{"splatt-1", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewSplatt(tt, baselines.SplattOptions{Copies: 1, Threads: t, Rank: r}), nil
		}},
		{"splatt-2", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewSplatt(tt, baselines.SplattOptions{Copies: 2, Threads: t, Rank: r}), nil
		}},
		{"splatt-all", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewSplatt(tt, baselines.SplattOptions{Copies: -1, Threads: t, Rank: r}), nil
		}},
		{"adatm", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewAdaTM(tt, baselines.AdaTMOptions{Threads: t, Rank: r}), nil
		}},
		{"alto", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewALTO(tt, baselines.ALTOOptions{Threads: t, Rank: r})
		}},
		{"taco", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewTACO(tt, baselines.TACOOptions{Threads: t, Rank: r}), nil
		}},
		{"stef", func(tt *tensor.Tensor, t, r int, cache int64) (cpd.Engine, error) {
			eng, _, err := core.NewEngineFor(tt, core.Options{Rank: r, Threads: t, CacheBytes: cache})
			return eng, err
		}},
		{"stef2", func(tt *tensor.Tensor, t, r int, cache int64) (cpd.Engine, error) {
			eng, _, err := core.NewEngineFor(tt, core.Options{Rank: r, Threads: t, CacheBytes: cache, SecondCSF: true})
			return eng, err
		}},
	}
}

// ExtraEngines returns engines beyond the paper's comparison set (selected
// only when named explicitly via Options.Engines).
func ExtraEngines() []EngineSpec {
	return []EngineSpec{
		{"hicoo", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return baselines.NewHiCOO(tt, baselines.HiCOOOptions{Threads: t, Rank: r})
		}},
		{"dtree", func(tt *tensor.Tensor, t, r int, _ int64) (cpd.Engine, error) {
			return dtree.NewEngine(tt, dtree.Options{Threads: t, Rank: r})
		}},
	}
}

func (s *Suite) engines() []EngineSpec {
	all := AllEngines()
	if rule := s.Opts.Accum; rule != core.AccumModel {
		// Rebind the stef builders with the forced accumulation rule; the
		// baselines have no OutBuf and are unaffected.
		for i, e := range all {
			switch e.Name {
			case "stef":
				all[i].Build = func(tt *tensor.Tensor, t, r int, cache int64) (cpd.Engine, error) {
					eng, _, err := core.NewEngineFor(tt, core.Options{Rank: r, Threads: t, CacheBytes: cache, AccumRule: rule})
					return eng, err
				}
			case "stef2":
				all[i].Build = func(tt *tensor.Tensor, t, r int, cache int64) (cpd.Engine, error) {
					eng, _, err := core.NewEngineFor(tt, core.Options{Rank: r, Threads: t, CacheBytes: cache, SecondCSF: true, AccumRule: rule})
					return eng, err
				}
			}
		}
	}
	if len(s.Opts.Engines) == 0 {
		return all
	}
	all = append(all, ExtraEngines()...)
	want := map[string]bool{}
	for _, n := range s.Opts.Engines {
		want[n] = true
	}
	var out []EngineSpec
	for _, e := range all {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

// TimeIteration measures the wall time of one full MTTKRP sequence (all d
// modes in the engine's update order) with fixed factor matrices,
// returning the minimum over reps repetitions — the quantity the paper
// reports per CPD iteration.
func TimeIteration(eng cpd.Engine, dims []int, rank, reps int) time.Duration {
	d := len(dims)
	factors := tensor.RandomFactors(dims, rank, 7)
	order := eng.UpdateOrder()
	outs := make([]*tensor.Matrix, d)
	for pos := 0; pos < d; pos++ {
		outs[pos] = tensor.NewMatrix(dims[order[pos]], rank)
	}
	// The workspace is created (and its buffers allocated) outside the
	// timed region: steady-state MTTKRP cost is what the paper reports.
	ws := eng.NewWorkspace()
	ws.Reset()
	best := time.Duration(1<<62 - 1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for pos := 0; pos < d; pos++ {
			eng.Compute(ws, pos, factors, outs[pos])
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}

// SpeedupRow holds one tensor's relative performance for Figures 3/4.
type SpeedupRow struct {
	Tensor   string
	Rank     int
	Times    map[string]time.Duration
	Speedups map[string]float64 // relative to splatt-all (higher is better)
}

// Fig34 runs the Figure 3/4 comparison: every engine on every tensor at
// every rank, reporting speedup relative to splatt-all. label distinguishes
// machine profiles ("fig3-intel18", "fig4-amd64") in the output.
func (s *Suite) Fig34(label string) ([]SpeedupRow, error) {
	var rows []SpeedupRow
	engines := s.engines()
	for _, rank := range s.Opts.Ranks {
		for _, name := range s.Opts.Tensors {
			tt, err := s.Tensor(name)
			if err != nil {
				return nil, err
			}
			row := SpeedupRow{Tensor: name, Rank: rank, Times: map[string]time.Duration{}, Speedups: map[string]float64{}}
			for _, spec := range engines {
				eng, err := spec.Build(tt, s.Opts.Threads, rank, s.Opts.CacheBytes)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", spec.Name, name, err)
				}
				row.Times[spec.Name] = TimeIteration(eng, tt.Dims, rank, s.Opts.Reps)
				eng = nil
				runtime.GC()
			}
			base, ok := row.Times["splatt-all"]
			if !ok {
				base = row.Times[engines[0].Name]
			}
			for n, t := range row.Times {
				row.Speedups[n] = float64(base) / float64(t)
			}
			rows = append(rows, row)
		}
	}
	s.renderFig34(label, rows)
	return rows, nil
}

func (s *Suite) renderFig34(label string, rows []SpeedupRow) {
	w := s.Opts.Out
	names := engineNames(s.engines())
	for _, rank := range s.Opts.Ranks {
		fmt.Fprintf(w, "\n== %s: speedup over splatt-all, R=%d, T=%d (higher is better) ==\n", label, rank, s.Opts.Threads)
		tab := stats.NewTable(append([]string{"tensor"}, names...)...)
		perEngine := map[string][]float64{}
		for _, row := range rows {
			if row.Rank != rank {
				continue
			}
			cells := []interface{}{row.Tensor}
			for _, n := range names {
				cells = append(cells, fmt.Sprintf("%.2f", row.Speedups[n]))
				perEngine[n] = append(perEngine[n], row.Speedups[n])
			}
			tab.AddRow(cells...)
		}
		gm := []interface{}{"geomean"}
		for _, n := range names {
			gm = append(gm, fmt.Sprintf("%.2f", stats.GeoMean(perEngine[n])))
		}
		tab.AddRow(gm...)
		tab.Render(w)
	}
}

func engineNames(specs []EngineSpec) []string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// sortedTensorNames is a helper for deterministic map iteration.
func sortedTensorNames(m map[string]*tensor.Tensor) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table1 prints the generated benchmark suite: the analogue of the paper's
// Table I, with the scaled dimensions and realised non-zero counts, plus
// the structural statistics (root slices, average fiber lengths) the
// engines' behaviour depends on.
func (s *Suite) Table1() error {
	w := s.Opts.Out
	fmt.Fprintf(w, "\n== Table I: benchmark tensors (scaled synthetic reproductions) ==\n")
	tab := stats.NewTable("tensor", "dims", "nnz", "rootslices", "avgfib(d-2)", "swapfib(d-2)")
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return err
		}
		tree := csf.Build(tt, nil)
		d := tree.Order()
		dims := ""
		for i, n := range tt.Dims {
			if i > 0 {
				dims += "x"
			}
			dims += fmt.Sprint(n)
		}
		swap := tree.CountSwappedFibers(s.Opts.Threads)
		tab.AddRow(name, dims, tt.NNZ(), tree.NumFibers(0),
			fmt.Sprintf("%.2f", float64(tree.NNZ())/float64(tree.NumFibers(d-2))),
			swap)
	}
	tab.Render(w)
	return nil
}

// Fig5Row holds one preprocessing-overhead measurement.
type Fig5Row struct {
	Tensor     string
	Rank       int
	Preprocess time.Duration
	Iteration  time.Duration
	Pct        float64
}

// Fig5 measures the Algorithm 9 + model-search preprocessing time as a
// percentage of one CPD iteration's MTTKRP time (the paper's Figure 5).
func (s *Suite) Fig5() ([]Fig5Row, error) {
	w := s.Opts.Out
	var rows []Fig5Row
	for _, rank := range s.Opts.Ranks {
		fmt.Fprintf(w, "\n== Fig 5: preprocessing overhead (%% of one iteration), R=%d ==\n", rank)
		tab := stats.NewTable("tensor", "preprocess", "iteration", "overhead%")
		var pcts []float64
		for _, name := range s.Opts.Tensors {
			tt, err := s.Tensor(name)
			if err != nil {
				return nil, err
			}
			eng, plan, err := core.NewEngineFor(tt, core.Options{Rank: rank, Threads: s.Opts.Threads, CacheBytes: s.Opts.CacheBytes})
			if err != nil {
				return nil, err
			}
			iter := TimeIteration(eng, tt.Dims, rank, s.Opts.Reps)
			pct := 100 * float64(plan.PreprocessTime) / float64(iter)
			rows = append(rows, Fig5Row{name, rank, plan.PreprocessTime, iter, pct})
			pcts = append(pcts, pct)
			tab.AddRow(name, plan.PreprocessTime.String(), iter.String(), fmt.Sprintf("%.1f", pct))
		}
		tab.AddRow("average", "", "", fmt.Sprintf("%.1f", stats.Mean(pcts)))
		tab.Render(w)
	}
	return rows, nil
}

// Table2Row holds one memoization-storage measurement.
type Table2Row struct {
	Tensor                         string
	Rank                           int
	MemoBytes, CSFPlusFactorsBytes int64
	Ratio                          float64
}

// Table2 reports the storage cost of the model-selected memoized partial
// results relative to the CSF structure plus factor matrices (Table II).
func (s *Suite) Table2() ([]Table2Row, error) {
	w := s.Opts.Out
	var rows []Table2Row
	fmt.Fprintf(w, "\n== Table II: memoized partial-result storage ==\n")
	header := []string{"tensor"}
	for _, r := range s.Opts.Ranks {
		header = append(header, fmt.Sprintf("memoMB(R=%d)", r), fmt.Sprintf("baseMB(R=%d)", r), fmt.Sprintf("ratio(R=%d)", r))
	}
	tab := stats.NewTable(header...)
	sums := make([]float64, len(s.Opts.Ranks))
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return nil, err
		}
		cells := []interface{}{name}
		for ri, rank := range s.Opts.Ranks {
			plan, err := core.NewPlan(tt, core.Options{Rank: rank, Threads: s.Opts.Threads, CacheBytes: s.Opts.CacheBytes})
			if err != nil {
				return nil, err
			}
			base := plan.CSFBytes + plan.FactorBytes
			rows = append(rows, Table2Row{name, rank, plan.MemoBytes, base, plan.Ratio()})
			cells = append(cells,
				fmt.Sprintf("%.2f", float64(plan.MemoBytes)/(1<<20)),
				fmt.Sprintf("%.2f", float64(base)/(1<<20)),
				fmt.Sprintf("%.2f", plan.Ratio()))
			sums[ri] += plan.Ratio()
		}
		tab.AddRow(cells...)
	}
	avg := []interface{}{"average"}
	for ri := range s.Opts.Ranks {
		avg = append(avg, "", "", fmt.Sprintf("%.2f", sums[ri]/float64(len(s.Opts.Tensors))))
	}
	tab.AddRow(avg...)
	tab.Render(w)
	return rows, nil
}

// Fig6Row holds one ablation measurement: performance of a variant
// normalised to the model-chosen configuration (100% = same speed).
type Fig6Row struct {
	Tensor  string
	Variant string
	Pct     float64
}

// Fig6 runs the ablation study: the model-chosen STeF configuration versus
// (1) slice-based work distribution, (2) save-all and save-none
// memoization, and (3) the opposite last-two-mode layout. Values are
// normalised performance (model-chosen time / variant time × 100; below
// 100 means the variant is slower), matching Figure 6.
func (s *Suite) Fig6(rank int) ([]Fig6Row, error) {
	w := s.Opts.Out
	variants := []struct {
		name string
		opts core.Options
	}{
		{"slice-sched", core.Options{SliceSched: true}},
		{"save-all", core.Options{SaveRule: core.SaveAll}},
		{"save-none", core.Options{SaveRule: core.SaveNone}},
		{"swap-opposite", core.Options{SwapRule: core.SwapOpposite}},
	}
	fmt.Fprintf(w, "\n== Fig 6: ablations, normalised to model-chosen config (100%% = equal; lower = slower), R=%d ==\n", rank)
	header := []string{"tensor"}
	for _, v := range variants {
		header = append(header, v.name)
	}
	tab := stats.NewTable(header...)
	var rows []Fig6Row
	perVariant := map[string][]float64{}
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return nil, err
		}
		baseEng, _, err := core.NewEngineFor(tt, core.Options{Rank: rank, Threads: s.Opts.Threads, CacheBytes: s.Opts.CacheBytes})
		if err != nil {
			return nil, err
		}
		baseTime := TimeIteration(baseEng, tt.Dims, rank, s.Opts.Reps)
		cells := []interface{}{name}
		for _, v := range variants {
			o := v.opts
			o.Rank = rank
			o.Threads = s.Opts.Threads
			o.CacheBytes = s.Opts.CacheBytes
			eng, _, err := core.NewEngineFor(tt, o)
			if err != nil {
				return nil, err
			}
			vt := TimeIteration(eng, tt.Dims, rank, s.Opts.Reps)
			pct := 100 * float64(baseTime) / float64(vt)
			rows = append(rows, Fig6Row{name, v.name, pct})
			perVariant[v.name] = append(perVariant[v.name], pct)
			cells = append(cells, fmt.Sprintf("%.0f", pct))
		}
		tab.AddRow(cells...)
	}
	avg := []interface{}{"geomean"}
	for _, v := range variants {
		avg = append(avg, fmt.Sprintf("%.0f", stats.GeoMean(perVariant[v.name])))
	}
	tab.AddRow(avg...)
	tab.Render(w)
	return rows, nil
}

// WorkDistReport prints the modeled load-balance comparison underpinning
// Fig. 6's work-distribution ablation: per-thread non-zero loads and
// imbalance under slice-based versus non-zero-balanced partitioning. These
// counts are exact and machine-independent.
func (s *Suite) WorkDistReport() error {
	w := s.Opts.Out
	fmt.Fprintf(w, "\n== Work distribution: leaf-load imbalance (T=%d) ==\n", s.Opts.Threads)
	tab := stats.NewTable("tensor", "rootslices", "slice-imb%", "balanced-imb%")
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return err
		}
		tree := csf.Build(tt, nil)
		sp := sched.NewSlicePartitionNNZ(tree, s.Opts.Threads)
		bp := sched.NewPartition(tree, s.Opts.Threads)
		tab.AddRow(name, tree.NumFibers(0),
			fmt.Sprintf("%.1f", sched.ImbalancePct(sp.SliceLoads(tree))),
			fmt.Sprintf("%.1f", sched.ImbalancePct(bp.Loads())))
	}
	tab.Render(w)
	return nil
}

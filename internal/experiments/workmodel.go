package experiments

import (
	"fmt"

	"stef/internal/core"
	"stef/internal/csf"
	"stef/internal/model"
	"stef/internal/sched"
	"stef/internal/stats"
	"stef/internal/tensor"
)

// This file implements the *modeled* version of Figures 3/4: instead of
// wall-clock time (which on a small host cannot expose load-balancing
// effects), it counts the exact number of node visits each thread performs
// for every MTTKRP of a CPD iteration and reports the makespan (the maximum
// per-thread work, summed over the d modes). Node visits are the unit of
// work because every visit costs one rank-R vector operation regardless of
// level. The counts are exact properties of the algorithms, so this
// reproduces the paper's 18-core and 64-core comparisons deterministically
// on any host.

// srcLevel mirrors kernels.Partials.SourceLevel for a plain save vector.
func srcLevel(save []bool, u int) int {
	d := len(save)
	if u >= d-1 {
		return d - 1
	}
	for l := u; l <= d-2; l++ {
		if save[l] {
			return l
		}
	}
	return d - 1
}

// partWork returns each thread's touched-node count over levels 0..src of
// the partition (the exact loop trip counts of the kernels).
func partWork(tree *csf.Tree, part *sched.Partition, src int) []int64 {
	w := make([]int64, part.T)
	for th := 0; th < part.T; th++ {
		for l := 0; l <= src; l++ {
			hi := part.Own[th+1][l]
			lo := part.Start[th][l]
			if l == src {
				lo = part.Own[th][l]
			}
			if hi > lo {
				w[th] += hi - lo
			}
		}
	}
	return w
}

// makespan returns the maximum element.
func makespan(w []int64) int64 {
	var m int64
	for _, x := range w {
		if x > m {
			m = x
		}
	}
	return m
}

// treeIterationMakespan sums per-mode makespans for a memoized CSF engine.
func treeIterationMakespan(tree *csf.Tree, part *sched.Partition, save []bool) int64 {
	d := tree.Order()
	total := makespan(partWork(tree, part, d-1)) // mode 0: full traversal
	for u := 1; u < d; u++ {
		total += makespan(partWork(tree, part, srcLevel(save, u)))
	}
	return total
}

// sliceNodePrefix returns prefix[s]: total node visits (all levels) in root
// slices before s — the per-slice work profile used for the TACO chunk
// simulation.
func sliceNodePrefix(tree *csf.Tree) []int64 {
	d := tree.Order()
	slices := tree.NumFibers(0)
	prefix := make([]int64, slices+1)
	for s := 0; s < slices; s++ {
		// Nodes in slice s: 1 (the slice) plus subtree sizes at each
		// deeper level, found by chasing the boundary pointers.
		loNode, hiNode := int64(s), int64(s+1)
		nodes := int64(1)
		for l := 0; l < d-1; l++ {
			loNode = tree.PtrLevel(l)[loNode]
			hiNode = tree.PtrLevel(l)[hiNode]
			nodes += hiNode - loNode
		}
		prefix[s+1] = prefix[s] + nodes
	}
	return prefix
}

// greedyChunkMakespan simulates dynamic chunk scheduling: chunks of `chunk`
// slices are handed to the least-loaded worker in order, per mode.
func greedyChunkMakespan(tree *csf.Tree, threads, chunk int) int64 {
	prefix := sliceNodePrefix(tree)
	slices := tree.NumFibers(0)
	loads := make([]int64, threads)
	for lo := 0; lo < slices; lo += chunk {
		hi := lo + chunk
		if hi > slices {
			hi = slices
		}
		// least-loaded worker takes the next chunk (a faithful-enough
		// model of work stealing at chunk granularity).
		minW := 0
		for wkr := 1; wkr < threads; wkr++ {
			if loads[wkr] < loads[minW] {
				minW = wkr
			}
		}
		loads[minW] += prefix[hi] - prefix[lo]
	}
	return makespan(loads)
}

// ModeledMakespan computes the per-iteration makespan (work units) of the
// named engine at the given thread count.
func ModeledMakespan(name string, tt *tensor.Tensor, threads, rank int, cacheBytes int64) (int64, error) {
	d := tt.Order()
	basePerm := tensor.LengthSortedPerm(tt.Dims)
	base := csf.Build(tt, basePerm)
	noSave := make([]bool, d)

	slicePart := func(tr *csf.Tree) *sched.Partition {
		return sched.NewSlicePartitionNNZ(tr, threads).ToPartition(tr)
	}

	switch name {
	case "splatt-1":
		return treeIterationMakespan(base, slicePart(base), noSave), nil
	case "splatt-2":
		perm2 := append([]int{basePerm[d-1]}, basePerm[:d-1]...)
		tree2 := csf.Build(tt, perm2)
		total := makespan(partWork(base, slicePart(base), d-1)) // root of base
		for u := 1; u < d-1; u++ {
			total += makespan(partWork(base, slicePart(base), d-1))
		}
		total += makespan(partWork(tree2, slicePart(tree2), d-1)) // leaf mode as tree2 root
		return total, nil
	case "splatt-all":
		var total int64
		for m := 0; m < d; m++ {
			tr := csf.Build(tt, permRootedAtModeled(tt.Dims, m))
			total += makespan(partWork(tr, slicePart(tr), d-1))
		}
		return total, nil
	case "adatm":
		params := model.ParamsForCache(base.Dims(), base.FiberCounts(), rank, cacheBytes)
		cfg := model.SearchOpCount(params)
		return treeIterationMakespan(base, slicePart(base), cfg.Save), nil
	case "alto":
		// Non-zero-parallel recompute: each mode costs d units per
		// non-zero, split evenly.
		per := (int64(tt.NNZ()) + int64(threads) - 1) / int64(threads)
		return int64(d) * per * int64(d), nil
	case "taco":
		// TACO auto-tunes its chunk size; model that by taking the
		// best candidate, as the real engine's tuner would.
		best := int64(1<<62 - 1)
		for _, chunk := range []int{1, 4, 16, 64} {
			if ms := greedyChunkMakespan(base, threads, chunk); ms < best {
				best = ms
			}
		}
		return int64(d) * best, nil
	case "stef", "stef2":
		plan, err := core.NewPlan(tt, core.Options{Rank: rank, Threads: threads, CacheBytes: cacheBytes, SecondCSF: name == "stef2"})
		if err != nil {
			return 0, err
		}
		tree := plan.Tree
		save := plan.Config.Save
		total := makespan(partWork(tree, plan.Part, d-1))
		last := d - 1
		if name == "stef2" {
			last = d - 2 // leaf mode handled by tree2 below
		}
		for u := 1; u <= last; u++ {
			total += makespan(partWork(tree, plan.Part, srcLevel(save, u)))
		}
		if name == "stef2" {
			total += makespan(partWork(plan.Tree2, plan.Part2, d-1))
		}
		return total, nil
	}
	return 0, fmt.Errorf("experiments: unknown engine %q", name)
}

func permRootedAtModeled(dims []int, m int) []int {
	sorted := tensor.LengthSortedPerm(dims)
	perm := []int{m}
	for _, mm := range sorted {
		if mm != m {
			perm = append(perm, mm)
		}
	}
	return perm
}

// Fig34Modeled renders the modeled speedup table at an arbitrary thread
// count — e.g. 18 for the paper's Intel machine (Fig. 3) and 64 for the AMD
// machine (Fig. 4) — independent of the host's core count.
func (s *Suite) Fig34Modeled(label string, threads int) ([]SpeedupRow, error) {
	w := s.Opts.Out
	names := engineNames(s.engines())
	var rows []SpeedupRow
	for _, rank := range s.Opts.Ranks {
		fmt.Fprintf(w, "\n== %s (modeled makespan): speedup over splatt-all, R=%d, T=%d ==\n", label, rank, threads)
		tab := stats.NewTable(append([]string{"tensor"}, names...)...)
		perEngine := map[string][]float64{}
		for _, name := range s.Opts.Tensors {
			tt, err := s.Tensor(name)
			if err != nil {
				return nil, err
			}
			spans := map[string]int64{}
			for _, en := range names {
				ms, err := ModeledMakespan(en, tt, threads, rank, s.Opts.CacheBytes)
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", en, name, err)
				}
				spans[en] = ms
			}
			base := spans["splatt-all"]
			if base == 0 {
				base = spans[names[0]]
			}
			row := SpeedupRow{Tensor: name, Rank: rank, Speedups: map[string]float64{}}
			cells := []interface{}{name}
			for _, en := range names {
				sp := float64(base) / float64(spans[en])
				row.Speedups[en] = sp
				perEngine[en] = append(perEngine[en], sp)
				cells = append(cells, fmt.Sprintf("%.2f", sp))
			}
			rows = append(rows, row)
			tab.AddRow(cells...)
		}
		gm := []interface{}{"geomean"}
		for _, en := range names {
			gm = append(gm, fmt.Sprintf("%.2f", stats.GeoMean(perEngine[en])))
		}
		tab.AddRow(gm...)
		tab.Render(w)
	}
	return rows, nil
}

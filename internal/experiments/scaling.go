package experiments

import (
	"fmt"

	"stef/internal/stats"
)

// ThreadScaling prints a modeled strong-scaling study (an extension beyond
// the paper's fixed 18/64-thread figures): for each tensor and engine, the
// speedup of the modeled makespan at T threads over the same engine at
// T=1. Perfect scaling doubles per row; slice-granular engines flatten as
// soon as heavy slices dominate, while STeF stays near-linear until the
// per-thread work reaches single fibers.
func (s *Suite) ThreadScaling(engines []string, threadCounts []int, rank int) error {
	w := s.Opts.Out
	if len(engines) == 0 {
		engines = []string{"splatt-all", "alto", "stef"}
	}
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n== Modeled strong scaling on %s (speedup vs same engine at T=1), R=%d ==\n", name, rank)
		header := []string{"T"}
		header = append(header, engines...)
		tab := stats.NewTable(header...)
		base := map[string]int64{}
		for _, en := range engines {
			ms, err := ModeledMakespan(en, tt, 1, rank, s.Opts.CacheBytes)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", en, name, err)
			}
			base[en] = ms
		}
		for _, t := range threadCounts {
			cells := []interface{}{t}
			for _, en := range engines {
				ms, err := ModeledMakespan(en, tt, t, rank, s.Opts.CacheBytes)
				if err != nil {
					return fmt.Errorf("%s on %s: %w", en, name, err)
				}
				cells = append(cells, fmt.Sprintf("%.2f", float64(base[en])/float64(ms)))
			}
			tab.AddRow(cells...)
		}
		tab.Render(w)
	}
	return nil
}

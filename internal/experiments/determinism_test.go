package experiments

import (
	"bytes"
	"testing"
)

// TestModeledFiguresDeterministic: the modeled makespans are exact counts,
// so repeated runs must produce byte-identical tables — the property that
// lets EXPERIMENTS.md quote them as reproducible on any host.
func TestModeledFiguresDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		s := tinySuite(&buf, "uber", "vast-2015-mc1-3d")
		if _, err := s.Fig34Modeled("det", 18); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("modeled figure not deterministic:\n%s\n---\n%s", a, b)
	}
}

package experiments

import (
	"fmt"

	"stef/internal/cpd"
	"stef/internal/stats"
)

// CPDCheckRow holds one engine's end-to-end decomposition outcome.
type CPDCheckRow struct {
	Tensor  string
	Engine  string
	Fit     float64
	Iters   int
	Seconds float64
}

// CPDCheck runs complete CPD-ALS to a fixed iteration count with every
// engine on every tensor and reports final fits — an end-to-end sanity
// experiment showing all engines optimise the same objective (fits agree up
// to ALS-trajectory noise from their different update orders).
func (s *Suite) CPDCheck(rank, iters int) ([]CPDCheckRow, error) {
	w := s.Opts.Out
	fmt.Fprintf(w, "\n== CPD end-to-end: final fit after %d iterations, R=%d ==\n", iters, rank)
	names := engineNames(s.engines())
	tab := stats.NewTable(append([]string{"tensor"}, names...)...)
	var rows []CPDCheckRow
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return nil, err
		}
		normX := tt.NormFrobenius()
		cells := []interface{}{name}
		for _, spec := range s.engines() {
			eng, err := spec.Build(tt, s.Opts.Threads, rank, s.Opts.CacheBytes)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", spec.Name, name, err)
			}
			res, err := cpd.Run(tt.Dims, normX, eng, cpd.Options{Rank: rank, MaxIters: iters, Tol: -1, Seed: 99})
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", spec.Name, name, err)
			}
			rows = append(rows, CPDCheckRow{name, spec.Name, res.FinalFit(), res.Iters, res.MTTKRPTime.Seconds()})
			cells = append(cells, fmt.Sprintf("%.4f", res.FinalFit()))
		}
		tab.AddRow(cells...)
	}
	tab.Render(w)
	return rows, nil
}

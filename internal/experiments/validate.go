package experiments

import (
	"fmt"

	"stef/internal/core"
	"stef/internal/stats"
)

// ModelAccuracyRow summarises how well the Section IV data-movement model
// predicted real configuration performance on one tensor.
type ModelAccuracyRow struct {
	Tensor string
	Rank   int
	// Tau is the Kendall rank correlation between modeled cost and
	// measured time over all configurations (1 = perfect ranking).
	Tau float64
	// RegretPct is how much slower the model's pick is than the fastest
	// measured configuration (0 = model picked the fastest).
	RegretPct float64
	// Configs is the number of configurations evaluated.
	Configs int
}

// ModelAccuracy measures every configuration of every tensor and compares
// the model's predicted ordering with reality. This validation experiment
// goes beyond the paper's ablation (which only compares the model's choice
// with the extremes): it quantifies the full ranking quality and the
// regret of the model's pick on this host.
func (s *Suite) ModelAccuracy(rank int) ([]ModelAccuracyRow, error) {
	w := s.Opts.Out
	fmt.Fprintf(w, "\n== Model validation: predicted vs measured over all configurations, R=%d ==\n", rank)
	tab := stats.NewTable("tensor", "configs", "kendall-tau", "regret%")
	var rows []ModelAccuracyRow
	var taus, regrets []float64
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return nil, err
		}
		plan, err := core.NewPlan(tt, core.Options{Rank: rank, Threads: s.Opts.Threads, CacheBytes: s.Opts.CacheBytes})
		if err != nil {
			return nil, err
		}
		var predicted, measured []float64
		bestMeasured := -1.0
		pickMeasured := -1.0
		for _, cfg := range plan.AllConfigs {
			opts := core.Options{Rank: rank, Threads: s.Opts.Threads, CacheBytes: s.Opts.CacheBytes}
			if cfg.Swap {
				opts.SwapRule = core.SwapAlways
			} else {
				opts.SwapRule = core.SwapNever
			}
			variant, err := core.NewPlan(tt, opts)
			if err != nil {
				return nil, err
			}
			variant.Config.Save = cfg.Save
			eng := core.NewEngine(variant)
			el := TimeIteration(eng, tt.Dims, rank, s.Opts.Reps).Seconds()
			predicted = append(predicted, float64(cfg.Cost.Total()))
			measured = append(measured, el)
			if bestMeasured < 0 || el < bestMeasured {
				bestMeasured = el
			}
			if cfg.Swap == plan.Config.Swap && saveEq(cfg.Save, plan.Config.Save) {
				pickMeasured = el
			}
		}
		tau := stats.KendallTau(predicted, measured)
		regret := 0.0
		if pickMeasured > 0 && bestMeasured > 0 {
			regret = 100 * (pickMeasured/bestMeasured - 1)
		}
		rows = append(rows, ModelAccuracyRow{name, rank, tau, regret, len(predicted)})
		taus = append(taus, tau)
		regrets = append(regrets, regret)
		tab.AddRow(name, len(predicted), fmt.Sprintf("%.2f", tau), fmt.Sprintf("%.1f", regret))
	}
	tab.AddRow("average", "", fmt.Sprintf("%.2f", stats.Mean(taus)), fmt.Sprintf("%.1f", stats.Mean(regrets)))
	tab.Render(w)
	return rows, nil
}

func saveEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

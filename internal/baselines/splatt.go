// Package baselines re-implements the algorithmic cores of the systems the
// paper compares against — SPLATT (one, two, or d CSF copies), AdaTM
// (op-count-driven memoization), ALTO (linearized storage, full recompute)
// and TACO (chunk-autotuned CSF) — behind the same cpd.Engine interface as
// STeF, so every engine runs the identical CPD-ALS driver and the
// comparison isolates the MTTKRP strategy.
package baselines

import (
	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// SplattOptions configures the SPLATT-style engines.
type SplattOptions struct {
	// Copies is the number of CSF representations: 1, 2 or -1 for
	// "all" (one per mode).
	Copies int
	// Threads is the worker count.
	Threads int
	// Rank is the decomposition rank.
	Rank int
	// MaxPrivElems bounds output privatization.
	MaxPrivElems int64
}

// permRootedAt returns a mode permutation with root mode m first and the
// remaining modes in increasing length order — SPLATT's tiling heuristic.
func permRootedAt(dims []int, m int) []int {
	sorted := tensor.LengthSortedPerm(dims)
	perm := []int{m}
	for _, mm := range sorted {
		if mm != m {
			perm = append(perm, mm)
		}
	}
	return perm
}

// NewSplatt builds a SPLATT-style engine: slice-granular parallelism over
// the root mode, no memoization. With one copy, non-root modes run the
// generic CSF kernel; with d copies ("splatt-all"), every mode is the root
// of its own CSF; with two copies, the second CSF is rooted at the base
// CSF's leaf mode.
func NewSplatt(t *tensor.Tensor, opts SplattOptions) *cpd.Engine {
	d := t.Order()
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	basePerm := tensor.LengthSortedPerm(t.Dims)
	base := csf.Build(t, basePerm)
	basePart := sched.NewSlicePartitionNNZ(base, opts.Threads).ToPartition(base)
	noMemo := kernels.NoPartials(d)

	name := "splatt-1"
	var tree2 *csf.Tree
	var part2 *sched.Partition
	trees := map[int]*csf.Tree{} // mode -> tree rooted at mode (splatt-all)
	parts := map[int]*sched.Partition{}
	switch {
	case opts.Copies < 0 || opts.Copies >= d:
		name = "splatt-all"
		for m := 0; m < d; m++ {
			tr := csf.Build(t, permRootedAt(t.Dims, m))
			trees[m] = tr
			parts[m] = sched.NewSlicePartitionNNZ(tr, opts.Threads).ToPartition(tr)
		}
	case opts.Copies == 2:
		name = "splatt-2"
		perm2 := append([]int{basePerm[d-1]}, basePerm[:d-1]...)
		tree2 = csf.Build(t, perm2)
		part2 = sched.NewSlicePartitionNNZ(tree2, opts.Threads).ToPartition(tree2)
	}

	bufs := make([]*kernels.OutBuf, d)
	for u := 1; u < d; u++ {
		bufs[u] = kernels.NewOutBuf(base.Dims[u], opts.Rank, opts.Threads, opts.MaxPrivElems)
	}

	return &cpd.Engine{
		Name:        name,
		UpdateOrder: append([]int(nil), basePerm...),
		Compute: func(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
			mode := basePerm[pos]
			if tr, ok := trees[mode]; ok {
				lf := kernels.LevelFactors(factors, tr.Perm)
				kernels.RootMTTKRP(tr, lf, out, kernels.NoPartials(d), parts[mode])
				return
			}
			if pos == d-1 && tree2 != nil {
				lf := kernels.LevelFactors(factors, tree2.Perm)
				kernels.RootMTTKRP(tree2, lf, out, kernels.NoPartials(d), part2)
				return
			}
			lf := kernels.LevelFactors(factors, base.Perm)
			if pos == 0 {
				kernels.RootMTTKRP(base, lf, out, noMemo, basePart)
				return
			}
			buf := bufs[pos]
			buf.Reset()
			kernels.ModeMTTKRP(base, lf, pos, noMemo, buf, basePart)
			buf.Reduce(out)
		},
	}
}

// Package baselines re-implements the algorithmic cores of the systems the
// paper compares against — SPLATT (one, two, or d CSF copies), AdaTM
// (op-count-driven memoization), ALTO (linearized storage, full recompute)
// and TACO (chunk-autotuned CSF) — behind the same cpd.Engine interface as
// STeF, so every engine runs the identical CPD-ALS driver and the
// comparison isolates the MTTKRP strategy. Every engine here is immutable
// after construction; all mutable solve state lives in the workspace its
// NewWorkspace manufactures.
package baselines

import (
	"fmt"

	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// SplattOptions configures the SPLATT-style engines.
type SplattOptions struct {
	// Copies is the number of CSF representations: 1, 2 or -1 for
	// "all" (one per mode).
	Copies int
	// Threads is the worker count.
	Threads int
	// Rank is the decomposition rank.
	Rank int
	// MaxPrivElems bounds output privatization.
	MaxPrivElems int64
}

// permRootedAt returns a mode permutation with root mode m first and the
// remaining modes in increasing length order — SPLATT's tiling heuristic.
func permRootedAt(dims []int, m int) []int {
	sorted := tensor.LengthSortedPerm(dims)
	perm := []int{m}
	for _, mm := range sorted {
		if mm != m {
			perm = append(perm, mm)
		}
	}
	return perm
}

// splattEngine is the immutable state of a SPLATT-style engine: the CSF
// copies, their partitions and a no-memoization Partials (read-only, safe
// to share across concurrent solves since nothing is ever saved into it).
type splattEngine struct {
	name     string
	d        int
	rank     int
	threads  int
	maxPriv  int64
	order    []int
	base     *csf.Tree
	basePart *sched.Partition
	tree2    *csf.Tree
	part2    *sched.Partition
	trees    map[int]*csf.Tree // mode -> tree rooted at mode (splatt-all)
	parts    map[int]*sched.Partition
	noMemo   *kernels.Partials
}

// splattWorkspace carries the per-solve buffers of a SPLATT engine.
type splattWorkspace struct {
	bufs    []*kernels.OutBuf
	lf      []*tensor.Matrix
	scratch *kernels.Scratch
}

// Reset is a no-op: every buffer is Reset or overwritten inside Compute.
func (w *splattWorkspace) Reset() {}

func (e *splattEngine) Name() string { return e.name }

func (e *splattEngine) UpdateOrder() []int { return e.order }

func (e *splattEngine) NewWorkspace() cpd.Workspace {
	w := &splattWorkspace{
		bufs:    make([]*kernels.OutBuf, e.d),
		lf:      make([]*tensor.Matrix, e.d),
		scratch: kernels.NewScratch(e.d, e.rank, e.threads),
	}
	for u := 1; u < e.d; u++ {
		w.bufs[u] = kernels.NewOutBuf(e.base.Dim(u), e.rank, e.threads, e.maxPriv)
	}
	return w
}

func (e *splattEngine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*splattWorkspace)
	if !ok {
		panic(fmt.Sprintf("baselines: splatt Compute got workspace type %T", ws))
	}
	mode := e.order[pos]
	if tr, found := e.trees[mode]; found {
		kernels.LevelFactorsInto(w.lf, factors, tr.Perm())
		kernels.RootMTTKRPWith(tr, w.lf, out, e.noMemo, e.parts[mode], w.scratch)
		return
	}
	if pos == e.d-1 && e.tree2 != nil {
		kernels.LevelFactorsInto(w.lf, factors, e.tree2.Perm())
		kernels.RootMTTKRPWith(e.tree2, w.lf, out, e.noMemo, e.part2, w.scratch)
		return
	}
	kernels.LevelFactorsInto(w.lf, factors, e.base.Perm())
	if pos == 0 {
		kernels.RootMTTKRPWith(e.base, w.lf, out, e.noMemo, e.basePart, w.scratch)
		return
	}
	buf := w.bufs[pos]
	buf.Reset()
	kernels.ModeMTTKRPWith(e.base, w.lf, pos, e.noMemo, buf, e.basePart, w.scratch)
	buf.Reduce(out)
}

// NewSplatt builds a SPLATT-style engine: slice-granular parallelism over
// the root mode, no memoization. With one copy, non-root modes run the
// generic CSF kernel; with d copies ("splatt-all"), every mode is the root
// of its own CSF; with two copies, the second CSF is rooted at the base
// CSF's leaf mode.
func NewSplatt(t *tensor.Tensor, opts SplattOptions) cpd.Engine {
	d := t.Order()
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	basePerm := tensor.LengthSortedPerm(t.Dims)
	base := csf.Build(t, basePerm)

	e := &splattEngine{
		name:     "splatt-1",
		d:        d,
		rank:     opts.Rank,
		threads:  opts.Threads,
		maxPriv:  opts.MaxPrivElems,
		order:    append([]int(nil), basePerm...),
		base:     base,
		basePart: sched.NewSlicePartitionNNZ(base, opts.Threads).ToPartition(base),
		trees:    map[int]*csf.Tree{},
		parts:    map[int]*sched.Partition{},
		noMemo:   kernels.NoPartials(d),
	}
	switch {
	case opts.Copies < 0 || opts.Copies >= d:
		e.name = "splatt-all"
		for m := 0; m < d; m++ {
			tr := csf.Build(t, permRootedAt(t.Dims, m))
			e.trees[m] = tr
			e.parts[m] = sched.NewSlicePartitionNNZ(tr, opts.Threads).ToPartition(tr)
		}
	case opts.Copies == 2:
		e.name = "splatt-2"
		perm2 := append([]int{basePerm[d-1]}, basePerm[:d-1]...)
		e.tree2 = csf.Build(t, perm2)
		e.part2 = sched.NewSlicePartitionNNZ(e.tree2, opts.Threads).ToPartition(e.tree2)
	}
	return e
}

package baselines

import (
	"testing"

	"stef/internal/kernels"
	"stef/internal/tensor"
)

func TestHiCOOFormatInvariants(t *testing.T) {
	tt := tensor.Random([]int{300, 400, 500}, 2000, []float64{1.5, 0, 0}, 11)
	h, err := newHiCOO(tt, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := tt.Order()
	if h.blockPtr[len(h.blockPtr)-1] != int64(tt.NNZ()) {
		t.Fatalf("block pointers do not cover nnz")
	}
	if h.numBlocks() == 0 || h.numBlocks() > tt.NNZ() {
		t.Fatalf("implausible block count %d", h.numBlocks())
	}
	// Every reconstructed coordinate is in range and block-aligned.
	for b := 0; b < h.numBlocks(); b++ {
		base := h.blockBase[b]
		for m := 0; m < d; m++ {
			if base[m]&(1<<7-1) != 0 {
				t.Fatalf("block %d base %v not aligned", b, base)
			}
		}
		for k := h.blockPtr[b]; k < h.blockPtr[b+1]; k++ {
			for m := 0; m < d; m++ {
				c := base[m] + int32(h.offsets[k*int64(d)+int64(m)])
				if c < 0 || int(c) >= tt.Dims[m] {
					t.Fatalf("block %d nnz %d mode %d coordinate %d out of range", b, k, m, c)
				}
			}
		}
	}
	// Compression: HiCOO index storage must not exceed plain COO's.
	cooBytes := int64(tt.NNZ()) * int64(d) * 4
	hicooIdxBytes := h.bytes() - int64(tt.NNZ())*8
	if hicooIdxBytes > cooBytes {
		t.Errorf("hicoo index bytes %d exceed COO %d", hicooIdxBytes, cooBytes)
	}
}

func TestHiCOOValueConservation(t *testing.T) {
	tt := tensor.Random([]int{50, 60, 70, 20}, 1500, nil, 4)
	h, err := newHiCOO(tt, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sumIn, sumOut float64
	for _, v := range tt.Vals {
		sumIn += v
	}
	for _, v := range h.vals {
		sumOut += v
	}
	if diff := sumIn - sumOut; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("value sum changed: %g vs %g", sumIn, sumOut)
	}
}

func TestHiCOOBadBits(t *testing.T) {
	tt := tensor.Random([]int{4, 4, 4}, 10, nil, 1)
	if _, err := newHiCOO(tt, 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := newHiCOO(tt, 9); err == nil {
		t.Fatal("bits=9 accepted")
	}
}

func TestHiCOOEngineMatchesReference(t *testing.T) {
	tt := tensor.Random([]int{40, 300, 25, 8}, 1200, []float64{1.4, 0, 0, 0}, 6)
	const rank = 4
	factors := tensor.RandomFactors(tt.Dims, rank, 2)
	for _, threads := range []int{1, 4} {
		eng, err := NewHiCOO(tt, HiCOOOptions{Threads: threads, Rank: rank, BlockBits: 5})
		if err != nil {
			t.Fatal(err)
		}
		ws := eng.NewWorkspace()
		ws.Reset()
		order := eng.UpdateOrder()
		for pos := 0; pos < tt.Order(); pos++ {
			m := order[pos]
			got := tensor.NewMatrix(tt.Dims[m], rank)
			eng.Compute(ws, pos, factors, got)
			want := kernels.Reference(tt, factors, m)
			if diff := got.MaxAbsDiff(want); diff > 1e-9*(1+want.NormFrobenius()) {
				t.Errorf("T=%d mode %d: max diff %g", threads, m, diff)
			}
		}
	}
}

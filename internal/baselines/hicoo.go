package baselines

import (
	"fmt"
	"sort"

	"stef/internal/cpd"
	"stef/internal/kernels"
	"stef/internal/par"
	"stef/internal/tensor"
)

// hicooFormat is a HiCOO-style blocked sparse layout (Li et al., SC'18):
// non-zeros are grouped into aligned 2^bits-per-side hyper-blocks; each
// block stores its base coordinates once at full width, and every non-zero
// inside the block stores only byte-wide offsets. This compresses index
// storage and gives block-level locality for MTTKRP without favouring any
// particular mode. It is included as an extension baseline beyond the
// paper's comparison set.
type hicooFormat struct {
	dims      []int
	bits      uint // log2 of the block side
	blockPtr  []int64
	blockBase [][]int32 // base coordinate per block (d per block)
	offsets   []uint8   // d per non-zero
	vals      []float64
}

// newHiCOO builds the blocked layout with 2^bits block sides.
func newHiCOO(t *tensor.Tensor, bits uint) (*hicooFormat, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("baselines: hicoo: block bits %d outside 1..8", bits)
	}
	d := t.Order()
	nnz := t.NNZ()
	h := &hicooFormat{dims: append([]int(nil), t.Dims...), bits: bits}

	// Sort non-zeros by block coordinate (lexicographic over modes).
	idx := make([]int, nnz)
	for i := range idx {
		idx[i] = i
	}
	blockOf := func(k, m int) int32 { return t.Coord(k)[m] >> bits }
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := idx[a], idx[b]
		for m := 0; m < d; m++ {
			ba, bb := blockOf(ka, m), blockOf(kb, m)
			if ba != bb {
				return ba < bb
			}
		}
		// Within a block, keep coordinate order for locality.
		ca, cb := t.Coord(ka), t.Coord(kb)
		for m := 0; m < d; m++ {
			if ca[m] != cb[m] {
				return ca[m] < cb[m]
			}
		}
		return false
	})

	h.offsets = make([]uint8, nnz*d)
	h.vals = make([]float64, nnz)
	mask := int32(1<<bits - 1)
	var prev []int32
	for i, k := range idx {
		c := t.Coord(k)
		newBlock := prev == nil
		if !newBlock {
			for m := 0; m < d; m++ {
				if c[m]>>bits != prev[m]>>bits {
					newBlock = true
					break
				}
			}
		}
		if newBlock {
			base := make([]int32, d)
			for m := 0; m < d; m++ {
				base[m] = (c[m] >> bits) << bits
			}
			h.blockBase = append(h.blockBase, base)
			h.blockPtr = append(h.blockPtr, int64(i))
		}
		for m := 0; m < d; m++ {
			h.offsets[i*d+m] = uint8(c[m] & mask)
		}
		h.vals[i] = t.Vals[k]
		prev = c
	}
	h.blockPtr = append(h.blockPtr, int64(nnz))
	return h, nil
}

// numBlocks returns the block count.
func (h *hicooFormat) numBlocks() int { return len(h.blockBase) }

// bytes returns the index-storage footprint: the compression HiCOO exists
// for (d int32 per block + d uint8 per non-zero, versus d int32 per
// non-zero in COO).
func (h *hicooFormat) bytes() int64 {
	d := len(h.dims)
	return int64(h.numBlocks())*int64(d)*4 + int64(len(h.blockPtr))*8 +
		int64(len(h.offsets)) + int64(len(h.vals))*8
}

// HiCOOOptions configures the HiCOO-style engine.
type HiCOOOptions struct {
	Threads      int
	Rank         int
	BlockBits    uint // log2 block side (default 7, i.e. 128)
	MaxPrivElems int64
}

// hicooEngine is the immutable blocked layout plus the nnz-balanced thread
// block ranges.
type hicooEngine struct {
	h       *hicooFormat
	d       int
	rank    int
	threads int
	maxPriv int64
	order   []int
	dims    []int
	bounds  []int
}

// hicooWorkspace holds one solve's output buffers.
type hicooWorkspace struct {
	bufs []*kernels.OutBuf
}

// Reset is a no-op: every buffer is Reset inside Compute before use.
func (w *hicooWorkspace) Reset() {}

func (e *hicooEngine) Name() string { return "hicoo" }

func (e *hicooEngine) UpdateOrder() []int { return e.order }

func (e *hicooEngine) NewWorkspace() cpd.Workspace {
	w := &hicooWorkspace{bufs: make([]*kernels.OutBuf, e.d)}
	for m := 0; m < e.d; m++ {
		w.bufs[m] = kernels.NewOutBuf(e.dims[m], e.rank, e.threads, e.maxPriv)
	}
	return w
}

func (e *hicooEngine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*hicooWorkspace)
	if !ok {
		panic(fmt.Sprintf("baselines: hicoo Compute got workspace type %T", ws))
	}
	u := pos
	buf := w.bufs[u]
	buf.Reset()
	h, d, r, bounds := e.h, e.d, e.rank, e.bounds
	par.Do(e.threads, func(th int) {
		row := make([]float64, r)
		coord := make([]int32, d)
		for b := bounds[th]; b < bounds[th+1]; b++ {
			base := h.blockBase[b]
			for k := h.blockPtr[b]; k < h.blockPtr[b+1]; k++ {
				for m := 0; m < d; m++ {
					coord[m] = base[m] + int32(h.offsets[k*int64(d)+int64(m)])
				}
				for j := range row {
					row[j] = h.vals[k]
				}
				for m := 0; m < d; m++ {
					if m == u {
						continue
					}
					f := factors[m].Row(int(coord[m]))
					for j := range row {
						row[j] *= f[j]
					}
				}
				buf.AddScaled(th, int(coord[u]), 1, row)
			}
		}
	})
	buf.Reduce(out)
}

// NewHiCOO builds the HiCOO-style engine: block-parallel MTTKRP that
// recomputes every mode from the blocked layout. Blocks are distributed
// across threads in contiguous runs balanced by non-zero count.
func NewHiCOO(t *tensor.Tensor, opts HiCOOOptions) (cpd.Engine, error) {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.BlockBits == 0 {
		opts.BlockBits = 7
	}
	h, err := newHiCOO(t, opts.BlockBits)
	if err != nil {
		return nil, err
	}
	d := t.Order()
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	// Thread block ranges balanced by non-zeros.
	nb := h.numBlocks()
	bounds := make([]int, opts.Threads+1)
	nnz := int64(t.NNZ())
	for th := 1; th < opts.Threads; th++ {
		target := int64(th) * nnz / int64(opts.Threads)
		s := sort.Search(nb, func(i int) bool { return h.blockPtr[i] >= target })
		if s < bounds[th-1] {
			s = bounds[th-1]
		}
		bounds[th] = s
	}
	bounds[opts.Threads] = nb

	return &hicooEngine{
		h:       h,
		d:       d,
		rank:    opts.Rank,
		threads: opts.Threads,
		maxPriv: opts.MaxPrivElems,
		order:   order,
		dims:    append([]int(nil), t.Dims...),
		bounds:  bounds,
	}, nil
}

package baselines

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

// TACOOptions configures the TACO-style engine.
type TACOOptions struct {
	Threads int
	Rank    int
	// ChunkSizes lists the candidate chunk sizes auto-tuned over at
	// engine construction; nil selects {1, 4, 16, 64}.
	ChunkSizes []int
}

// tacoEngine is immutable: the CSF, the shared no-memoization Partials
// (never written, since nothing is saved) and the auto-tuned chunk size.
type tacoEngine struct {
	d       int
	rank    int
	threads int
	order   []int
	tree    *csf.Tree
	noMemo  *kernels.Partials
	chunk   int
}

// tacoWorkspace carries each worker's private output scratch, grown lazily
// to the largest non-root mode actually computed, plus releveled factors.
type tacoWorkspace struct {
	priv [][]float64
	lf   []*tensor.Matrix
}

// Reset is a no-op: private scratch is zeroed at the start of every mode
// that uses it.
func (w *tacoWorkspace) Reset() {}

func (e *tacoEngine) Name() string { return "taco" }

func (e *tacoEngine) UpdateOrder() []int { return e.order }

func (e *tacoEngine) NewWorkspace() cpd.Workspace {
	return &tacoWorkspace{
		priv: make([][]float64, e.threads),
		lf:   make([]*tensor.Matrix, e.d),
	}
}

func (e *tacoEngine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*tacoWorkspace)
	if !ok {
		panic(fmt.Sprintf("baselines: taco Compute got workspace type %T", ws))
	}
	e.runMode(w, pos, factors, out, e.chunk)
}

// runMode executes one MTTKRP with dynamic chunk scheduling.
func (e *tacoEngine) runMode(w *tacoWorkspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix, chunk int) {
	kernels.LevelFactorsInto(w.lf, factors, e.tree.Perm())
	lf := w.lf
	tree, rank := e.tree, e.rank
	slices := int64(tree.NumFibers(0))
	var next int64
	out.Zero()
	var wg sync.WaitGroup
	wg.Add(e.threads)
	for wk := 0; wk < e.threads; wk++ {
		go func(wk int) {
			defer wg.Done()
			var mine *tensor.Matrix
			if pos != 0 {
				need := out.Rows * rank
				if cap(w.priv[wk]) < need {
					w.priv[wk] = make([]float64, need)
				}
				mine = &tensor.Matrix{Rows: out.Rows, Cols: rank, Data: w.priv[wk][:need]}
				mine.Zero()
			}
			for {
				lo := atomic.AddInt64(&next, int64(chunk)) - int64(chunk)
				if lo >= slices {
					return
				}
				hi := lo + int64(chunk)
				if hi > slices {
					hi = slices
				}
				if pos == 0 {
					// Root rows are disjoint across
					// slices, so workers write out
					// directly.
					kernels.RootMTTKRPSubtrees(tree, lf, out, e.noMemo, lo, hi)
				} else {
					kernels.ModeMTTKRPSubtrees(tree, lf, pos, e.noMemo, mine, lo, hi)
				}
			}
		}(wk)
	}
	wg.Wait()
	if pos != 0 {
		for wk := 0; wk < e.threads; wk++ {
			if cap(w.priv[wk]) < out.Rows*rank {
				continue // worker never ran this mode
			}
			src := w.priv[wk][:out.Rows*rank]
			for i, v := range src {
				if v != 0 {
					out.Data[i] += v
				}
			}
		}
	}
}

// NewTACO builds a TACO-style engine: a single CSF, no memoization, and
// dynamic chunk-of-slices scheduling whose chunk size is auto-tuned when
// the engine is built — mirroring the paper's description of the scheduling
// TACO baseline ("auto-tuning across various chunk sizes and selecting the
// best, paying a small preprocessing overhead for faster run time").
// Dynamic chunking load-balances better than static slice blocks but still
// degrades when very few root slices carry most non-zeros.
func NewTACO(t *tensor.Tensor, opts TACOOptions) cpd.Engine {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if len(opts.ChunkSizes) == 0 {
		opts.ChunkSizes = []int{1, 4, 16, 64}
	}
	d := t.Order()
	perm := tensor.LengthSortedPerm(t.Dims)
	tree := csf.Build(t, perm)

	e := &tacoEngine{
		d:       d,
		rank:    opts.Rank,
		threads: opts.Threads,
		order:   append([]int(nil), perm...),
		tree:    tree,
		noMemo:  kernels.NoPartials(d),
		chunk:   opts.ChunkSizes[0],
	}

	// Auto-tune the chunk size on a throwaway mode-0 run with a temporary
	// workspace; this is the one place runMode is called before the engine
	// is published, so it cannot race with concurrent solves.
	if len(opts.ChunkSizes) > 1 {
		tw := e.NewWorkspace().(*tacoWorkspace)
		factors := tensor.RandomFactors(t.Dims, e.rank, 1)
		scratch := tensor.NewMatrix(tree.Dims()[0], e.rank)
		bestT := time.Duration(1<<62 - 1)
		for _, c := range opts.ChunkSizes {
			start := time.Now()
			e.runMode(tw, 0, factors, scratch, c)
			if el := time.Since(start); el < bestT {
				bestT, e.chunk = el, c
			}
		}
	}
	return e
}

package baselines

import (
	"sync"
	"sync/atomic"
	"time"

	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

// TACOOptions configures the TACO-style engine.
type TACOOptions struct {
	Threads int
	Rank    int
	// ChunkSizes lists the candidate chunk sizes auto-tuned over at
	// engine construction; nil selects {1, 4, 16, 64}.
	ChunkSizes []int
}

// NewTACO builds a TACO-style engine: a single CSF, no memoization, and
// dynamic chunk-of-slices scheduling whose chunk size is auto-tuned when
// the engine is built — mirroring the paper's description of the scheduling
// TACO baseline ("auto-tuning across various chunk sizes and selecting the
// best, paying a small preprocessing overhead for faster run time").
// Dynamic chunking load-balances better than static slice blocks but still
// degrades when very few root slices carry most non-zeros.
func NewTACO(t *tensor.Tensor, opts TACOOptions) *cpd.Engine {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if len(opts.ChunkSizes) == 0 {
		opts.ChunkSizes = []int{1, 4, 16, 64}
	}
	d := t.Order()
	perm := tensor.LengthSortedPerm(t.Dims)
	tree := csf.Build(t, perm)
	noMemo := kernels.NoPartials(d)
	rank := opts.Rank

	// priv[w] is worker w's private output scratch, grown lazily to the
	// largest non-root mode actually computed.
	priv := make([][]float64, opts.Threads)

	// runMode executes one MTTKRP with dynamic chunk scheduling.
	runMode := func(pos int, factors []*tensor.Matrix, out *tensor.Matrix, chunk int) {
		lf := kernels.LevelFactors(factors, tree.Perm)
		slices := int64(tree.NumFibers(0))
		var next int64
		out.Zero()
		var wg sync.WaitGroup
		wg.Add(opts.Threads)
		for w := 0; w < opts.Threads; w++ {
			go func(w int) {
				defer wg.Done()
				var mine *tensor.Matrix
				if pos != 0 {
					need := out.Rows * rank
					if cap(priv[w]) < need {
						priv[w] = make([]float64, need)
					}
					mine = &tensor.Matrix{Rows: out.Rows, Cols: rank, Data: priv[w][:need]}
					mine.Zero()
				}
				for {
					lo := atomic.AddInt64(&next, int64(chunk)) - int64(chunk)
					if lo >= slices {
						return
					}
					hi := lo + int64(chunk)
					if hi > slices {
						hi = slices
					}
					if pos == 0 {
						// Root rows are disjoint across
						// slices, so workers write out
						// directly.
						kernels.RootMTTKRPSubtrees(tree, lf, out, noMemo, lo, hi)
					} else {
						kernels.ModeMTTKRPSubtrees(tree, lf, pos, noMemo, mine, lo, hi)
					}
				}
			}(w)
		}
		wg.Wait()
		if pos != 0 {
			for w := 0; w < opts.Threads; w++ {
				if cap(priv[w]) < out.Rows*rank {
					continue // worker never ran this mode
				}
				src := priv[w][:out.Rows*rank]
				for i, v := range src {
					if v != 0 {
						out.Data[i] += v
					}
				}
			}
		}
	}

	// Auto-tune the chunk size on a throwaway mode-0 run.
	chunk := opts.ChunkSizes[0]
	if len(opts.ChunkSizes) > 1 {
		factors := tensor.RandomFactors(t.Dims, rank, 1)
		scratch := tensor.NewMatrix(tree.Dims[0], rank)
		bestT := time.Duration(1<<62 - 1)
		for _, c := range opts.ChunkSizes {
			start := time.Now()
			runMode(0, factors, scratch, c)
			if el := time.Since(start); el < bestT {
				bestT, chunk = el, c
			}
		}
	}

	return &cpd.Engine{
		Name:        "taco",
		UpdateOrder: append([]int(nil), perm...),
		Compute: func(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
			runMode(pos, factors, out, chunk)
		},
	}
}

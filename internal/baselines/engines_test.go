package baselines_test

import (
	"fmt"
	"math"
	"testing"

	"stef/internal/baselines"
	"stef/internal/core"
	"stef/internal/cpd"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

// allEngines builds every engine for the given tensor and thread count.
func allEngines(t *testing.T, tt *tensor.Tensor, threads, rank int) []cpd.Engine {
	t.Helper()
	var engines []cpd.Engine
	for _, copies := range []int{1, 2, -1} {
		engines = append(engines, baselines.NewSplatt(tt, baselines.SplattOptions{Copies: copies, Threads: threads, Rank: rank}))
	}
	engines = append(engines, baselines.NewAdaTM(tt, baselines.AdaTMOptions{Threads: threads, Rank: rank}))
	alto, err := baselines.NewALTO(tt, baselines.ALTOOptions{Threads: threads, Rank: rank})
	if err != nil {
		t.Fatalf("alto: %v", err)
	}
	engines = append(engines, alto)
	engines = append(engines, baselines.NewTACO(tt, baselines.TACOOptions{Threads: threads, Rank: rank, ChunkSizes: []int{2}}))

	stef, _, err := core.NewEngineFor(tt, core.Options{Rank: rank, Threads: threads})
	if err != nil {
		t.Fatalf("stef: %v", err)
	}
	engines = append(engines, stef)
	stef2, _, err := core.NewEngineFor(tt, core.Options{Rank: rank, Threads: threads, SecondCSF: true})
	if err != nil {
		t.Fatalf("stef2: %v", err)
	}
	engines = append(engines, stef2)
	// Ablation variants must be correct too.
	for _, o := range []core.Options{
		{Rank: rank, Threads: threads, SaveRule: core.SaveAll},
		{Rank: rank, Threads: threads, SaveRule: core.SaveNone},
		{Rank: rank, Threads: threads, SwapRule: core.SwapAlways},
		{Rank: rank, Threads: threads, SwapRule: core.SwapOpposite},
		{Rank: rank, Threads: threads, SliceSched: true},
	} {
		e, _, err := core.NewEngineFor(tt, o)
		if err != nil {
			t.Fatalf("stef variant: %v", err)
		}
		engines = append(engines, e)
	}
	return engines
}

// TestEnginesMatchReference checks every engine's per-mode MTTKRP against
// the COO reference on fixed factors.
func TestEnginesMatchReference(t *testing.T) {
	shapes := []struct {
		dims []int
		skew []float64
	}{
		{[]int{9, 14, 20}, nil},
		{[]int{6, 8, 10, 7}, nil},
		{[]int{2, 60, 40}, []float64{3, 0, 0}},
		{[]int{5, 6, 7, 4, 3}, nil},
	}
	const rank = 4
	for _, sh := range shapes {
		tt := tensor.Random(sh.dims, 350, sh.skew, 77)
		d := tt.Order()
		factors := tensor.RandomFactors(tt.Dims, rank, 5)
		want := make([]*tensor.Matrix, d)
		for m := 0; m < d; m++ {
			want[m] = kernels.Reference(tt, factors, m)
		}
		for _, threads := range []int{1, 3} {
			for _, eng := range allEngines(t, tt, threads, rank) {
				ws := eng.NewWorkspace()
				ws.Reset()
				order := eng.UpdateOrder()
				for pos := 0; pos < d; pos++ {
					m := order[pos]
					got := tensor.NewMatrix(tt.Dims[m], rank)
					eng.Compute(ws, pos, factors, got)
					scale := want[m].NormFrobenius()
					if scale == 0 {
						scale = 1
					}
					if diff := got.MaxAbsDiff(want[m]); diff > 1e-9*scale {
						t.Errorf("dims=%v T=%d engine=%s mode=%d: max diff %g", sh.dims, threads, eng.Name(), m, diff)
					}
				}
			}
		}
	}
}

// TestEnginesSequenceWithUpdates simulates the in-iteration factor updates:
// after each mode's MTTKRP the corresponding factor changes, which is when
// stale memoized partials would show up.
func TestEnginesSequenceWithUpdates(t *testing.T) {
	tt := tensor.Random([]int{8, 10, 12, 6}, 400, nil, 13)
	d := tt.Order()
	const rank = 3
	for _, threads := range []int{1, 4} {
		for _, eng := range allEngines(t, tt, threads, rank) {
			factors := tensor.RandomFactors(tt.Dims, rank, 99)
			shadow := make([]*tensor.Matrix, d)
			for m := range shadow {
				shadow[m] = factors[m].Clone()
			}
			ws := eng.NewWorkspace()
			ws.Reset()
			order := eng.UpdateOrder()
			for pos := 0; pos < d; pos++ {
				m := order[pos]
				got := tensor.NewMatrix(tt.Dims[m], rank)
				eng.Compute(ws, pos, factors, got)
				want := kernels.Reference(tt, shadow, m)
				scale := want.NormFrobenius()
				if diff := got.MaxAbsDiff(want); diff > 1e-9*(1+scale) {
					t.Fatalf("T=%d engine=%s pos=%d mode=%d: max diff %g", threads, eng.Name(), pos, m, diff)
				}
				// "Update" the factor like ALS would: perturb it
				// deterministically.
				for i := range factors[m].Data {
					factors[m].Data[i] = math.Mod(factors[m].Data[i]*1.7+0.3, 1.0)
				}
				shadow[m].CopyFrom(factors[m])
			}
		}
	}
}

// TestFullCPDAllEngines runs complete CPD-ALS with every engine on the same
// tensor and demands comparable final fits (identical update orders give
// identical trajectories; different orders still converge to similar fit).
func TestFullCPDAllEngines(t *testing.T) {
	tt := tensor.Random([]int{10, 15, 20}, 500, nil, 3)
	normX := tt.NormFrobenius()
	opts := cpd.Options{Rank: 4, MaxIters: 8, Tol: -1, Seed: 42}
	naive, err := cpd.Run(tt.Dims, normX, cpd.NaiveEngine(tt), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range allEngines(t, tt, 2, 4) {
		res, err := cpd.Run(tt.Dims, normX, eng, opts)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if math.Abs(res.FinalFit()-naive.FinalFit()) > 0.05 {
			t.Errorf("%s: final fit %.4f vs naive %.4f", eng.Name(), res.FinalFit(), naive.FinalFit())
		}
		for i := 1; i < len(res.Fits); i++ {
			if res.Fits[i] < res.Fits[i-1]-1e-6 {
				t.Errorf("%s: fit decreased at iter %d: %v", eng.Name(), i, res.Fits)
				break
			}
		}
	}
}

func TestEngineNamesDistinct(t *testing.T) {
	tt := tensor.Random([]int{5, 6, 7}, 100, nil, 1)
	names := map[string]bool{}
	for _, eng := range allEngines(t, tt, 1, 2)[:7] {
		if names[eng.Name()] {
			t.Errorf("duplicate engine name %q", eng.Name())
		}
		names[eng.Name()] = true
	}
	for _, want := range []string{"splatt-1", "splatt-2", "splatt-all", "adatm", "alto", "taco", "stef"} {
		if !names[want] {
			t.Errorf("missing engine %q (have %v)", want, names)
		}
	}
}

func ExampleNewSplatt() {
	tt := tensor.Random([]int{4, 5, 6}, 30, nil, 2)
	eng := baselines.NewSplatt(tt, baselines.SplattOptions{Copies: -1, Threads: 2, Rank: 3})
	fmt.Println(eng.Name())
	// Output: splatt-all
}

package baselines

import (
	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/model"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// AdaTMOptions configures the AdaTM-style engine.
type AdaTMOptions struct {
	Threads      int
	Rank         int
	MaxPrivElems int64
}

// NewAdaTM builds an engine that, like Li et al.'s AdaTM, memoizes partial
// MTTKRP results chosen by an operation-count model: memoization is applied
// whenever it removes recomputation FLOPs, regardless of the extra data
// movement it induces. Work is distributed at slice granularity, and the
// last-two-mode layout is never reconsidered. Those three deltas — the
// decision objective, the work distribution and the layout switch — are
// exactly what the paper credits for STeF's advantage over AdaTM.
func NewAdaTM(t *tensor.Tensor, opts AdaTMOptions) *cpd.Engine {
	d := t.Order()
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	perm := tensor.LengthSortedPerm(t.Dims)
	tree := csf.Build(t, perm)
	part := sched.NewSlicePartitionNNZ(tree, opts.Threads).ToPartition(tree)

	params := model.ParamsForCache(tree.Dims, tree.FiberCounts(), opts.Rank, 0)
	cfg := model.SearchOpCount(params)
	partials := kernels.NewPartials(tree, opts.Rank, cfg.Save)

	bufs := make([]*kernels.OutBuf, d)
	for u := 1; u < d; u++ {
		bufs[u] = kernels.NewOutBuf(tree.Dims[u], opts.Rank, opts.Threads, opts.MaxPrivElems)
	}
	return &cpd.Engine{
		Name:        "adatm",
		UpdateOrder: append([]int(nil), perm...),
		Compute: func(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
			lf := kernels.LevelFactors(factors, tree.Perm)
			if pos == 0 {
				kernels.RootMTTKRP(tree, lf, out, partials, part)
				return
			}
			buf := bufs[pos]
			buf.Reset()
			kernels.ModeMTTKRP(tree, lf, pos, partials, buf, part)
			buf.Reduce(out)
		},
	}
}

package baselines

import (
	"fmt"

	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/model"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// AdaTMOptions configures the AdaTM-style engine.
type AdaTMOptions struct {
	Threads      int
	Rank         int
	MaxPrivElems int64
}

// adatmEngine is immutable: the CSF, partition and the op-count-chosen memo
// configuration. The memoized partials themselves are per-solve state.
type adatmEngine struct {
	d       int
	rank    int
	threads int
	maxPriv int64
	order   []int
	tree    *csf.Tree
	part    *sched.Partition
	save    []bool
}

// adatmWorkspace holds one solve's memoized partials and output buffers.
type adatmWorkspace struct {
	partials *kernels.Partials
	bufs     []*kernels.OutBuf
	lf       []*tensor.Matrix
	scratch  *kernels.Scratch
}

// Reset is a no-op: the pos-0 Compute call rewrites the memoized partials
// before any later mode reads them, and output buffers are Reset in Compute.
func (w *adatmWorkspace) Reset() {}

func (e *adatmEngine) Name() string { return "adatm" }

func (e *adatmEngine) UpdateOrder() []int { return e.order }

func (e *adatmEngine) NewWorkspace() cpd.Workspace {
	w := &adatmWorkspace{
		partials: kernels.NewPartials(e.tree, e.rank, e.save),
		bufs:     make([]*kernels.OutBuf, e.d),
		lf:       make([]*tensor.Matrix, e.d),
		scratch:  kernels.NewScratch(e.d, e.rank, e.threads),
	}
	for u := 1; u < e.d; u++ {
		w.bufs[u] = kernels.NewOutBuf(e.tree.Dim(u), e.rank, e.threads, e.maxPriv)
	}
	return w
}

func (e *adatmEngine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*adatmWorkspace)
	if !ok {
		panic(fmt.Sprintf("baselines: adatm Compute got workspace type %T", ws))
	}
	kernels.LevelFactorsInto(w.lf, factors, e.tree.Perm())
	if pos == 0 {
		kernels.RootMTTKRPWith(e.tree, w.lf, out, w.partials, e.part, w.scratch)
		return
	}
	buf := w.bufs[pos]
	buf.Reset()
	kernels.ModeMTTKRPWith(e.tree, w.lf, pos, w.partials, buf, e.part, w.scratch)
	buf.Reduce(out)
}

// NewAdaTM builds an engine that, like Li et al.'s AdaTM, memoizes partial
// MTTKRP results chosen by an operation-count model: memoization is applied
// whenever it removes recomputation FLOPs, regardless of the extra data
// movement it induces. Work is distributed at slice granularity, and the
// last-two-mode layout is never reconsidered. Those three deltas — the
// decision objective, the work distribution and the layout switch — are
// exactly what the paper credits for STeF's advantage over AdaTM.
func NewAdaTM(t *tensor.Tensor, opts AdaTMOptions) cpd.Engine {
	d := t.Order()
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	perm := tensor.LengthSortedPerm(t.Dims)
	tree := csf.Build(t, perm)

	params := model.ParamsForCache(tree.Dims(), tree.FiberCounts(), opts.Rank, 0)
	cfg := model.SearchOpCount(params)

	return &adatmEngine{
		d:       d,
		rank:    opts.Rank,
		threads: opts.Threads,
		maxPriv: opts.MaxPrivElems,
		order:   append([]int(nil), perm...),
		tree:    tree,
		part:    sched.NewSlicePartitionNNZ(tree, opts.Threads).ToPartition(tree),
		save:    cfg.Save,
	}
}

package baselines

import (
	"fmt"
	"sort"

	"stef/internal/cpd"
	"stef/internal/kernels"
	"stef/internal/par"
	"stef/internal/tensor"
)

// altoFormat is a linearized sparse-tensor layout in the spirit of ALTO
// (Helal et al., ICS'21): every non-zero carries a single compact key built
// by interleaving the bits of its mode coordinates, and the non-zeros are
// sorted by that key. Bit interleaving gives space-filling-curve locality
// across *all* modes simultaneously, so one layout serves every MTTKRP
// without re-sorting; the cost is that each mode is recomputed from scratch.
type altoFormat struct {
	dims   []int
	bits   []int // bits needed per mode
	keys   []uint64
	vals   []float64
	coords []int32 // nnz*d, sorted by key
}

// newALTO linearizes t. All benchmark profiles fit the total bit budget of
// 64; tensors that do not are rejected (the real ALTO falls back to 128-bit
// indices, which the paper also evaluates — here the coordinate payload is
// retained alongside the key, so correctness never depends on the key
// width and the 64-bit limit only gates the locality sort).
func newALTO(t *tensor.Tensor) (*altoFormat, error) {
	d := t.Order()
	a := &altoFormat{dims: append([]int(nil), t.Dims...), bits: make([]int, d)}
	total := 0
	for m, n := range t.Dims {
		b := 0
		for 1<<b < n {
			b++
		}
		a.bits[m] = b
		total += b
	}
	if total > 64 {
		return nil, fmt.Errorf("baselines: alto: %d index bits exceed 64", total)
	}
	nnz := t.NNZ()
	a.keys = make([]uint64, nnz)
	a.vals = make([]float64, nnz)
	a.coords = make([]int32, nnz*d)
	for k := 0; k < nnz; k++ {
		a.keys[k] = a.interleave(t.Coord(k))
	}
	// Sort by key while carrying values and coordinates.
	idx := make([]int, nnz)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return a.keys[idx[i]] < a.keys[idx[j]] })
	sortedKeys := make([]uint64, nnz)
	for i, p := range idx {
		sortedKeys[i] = a.keys[p]
		a.vals[i] = t.Vals[p]
		copy(a.coords[i*d:(i+1)*d], t.Coord(p))
	}
	a.keys = sortedKeys
	return a, nil
}

// interleave packs the coordinates into one key, round-robin over modes
// from least-significant bit upward (modes with exhausted bit budgets drop
// out), which is ALTO's adaptive bit layout in simplified form.
func (a *altoFormat) interleave(coord []int32) uint64 {
	var key uint64
	out := 0
	for b := 0; b < 32; b++ {
		for m := range a.bits {
			if b < a.bits[m] {
				key |= uint64(coord[m]>>b&1) << out
				out++
			}
		}
	}
	return key
}

// ALTOOptions configures the ALTO-style engine.
type ALTOOptions struct {
	Threads      int
	Rank         int
	MaxPrivElems int64
}

// altoEngine is the immutable linearized layout plus scheduling constants.
type altoEngine struct {
	a       *altoFormat
	d       int
	nnz     int
	rank    int
	threads int
	maxPriv int64
	order   []int
	dims    []int
}

// altoWorkspace holds one solve's output buffers.
type altoWorkspace struct {
	bufs []*kernels.OutBuf
}

// Reset is a no-op: every buffer is Reset inside Compute before use.
func (w *altoWorkspace) Reset() {}

func (e *altoEngine) Name() string { return "alto" }

func (e *altoEngine) UpdateOrder() []int { return e.order }

func (e *altoEngine) NewWorkspace() cpd.Workspace {
	w := &altoWorkspace{bufs: make([]*kernels.OutBuf, e.d)}
	for m := 0; m < e.d; m++ {
		w.bufs[m] = kernels.NewOutBuf(e.dims[m], e.rank, e.threads, e.maxPriv)
	}
	return w
}

func (e *altoEngine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*altoWorkspace)
	if !ok {
		panic(fmt.Sprintf("baselines: alto Compute got workspace type %T", ws))
	}
	u := pos
	buf := w.bufs[u]
	buf.Reset()
	a, d, r := e.a, e.d, e.rank
	par.Blocks(e.nnz, e.threads, func(th, lo, hi int) {
		row := make([]float64, r)
		for k := lo; k < hi; k++ {
			c := a.coords[k*d : (k+1)*d]
			for j := range row {
				row[j] = a.vals[k]
			}
			for m := 0; m < d; m++ {
				if m == u {
					continue
				}
				f := factors[m].Row(int(c[m]))
				for j := range row {
					row[j] *= f[j]
				}
			}
			buf.AddScaled(th, int(c[u]), 1, row)
		}
	})
	buf.Reduce(out)
}

// NewALTO builds the ALTO-style engine: non-zero-parallel MTTKRP directly
// on the linearized layout, recomputing every mode from scratch. Like the
// original, it is naturally load-balanced (non-zeros split evenly) and
// needs no per-mode tensor copies, but performs the full FLOP count for
// every mode.
func NewALTO(t *tensor.Tensor, opts ALTOOptions) (cpd.Engine, error) {
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	a, err := newALTO(t)
	if err != nil {
		return nil, err
	}
	d := t.Order()
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	return &altoEngine{
		a:       a,
		d:       d,
		nnz:     t.NNZ(),
		rank:    opts.Rank,
		threads: opts.Threads,
		maxPriv: opts.MaxPrivElems,
		order:   order,
		dims:    append([]int(nil), t.Dims...),
	}, nil
}

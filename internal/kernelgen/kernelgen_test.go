package kernelgen

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

func TestGenerateParses(t *testing.T) {
	for d := 3; d <= 6; d++ {
		src, err := Generate(d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
			t.Fatalf("d=%d: generated code does not parse: %v", d, err)
		}
	}
}

func TestGenerateRejectsBadOrder(t *testing.T) {
	for _, d := range []int{2, 9, -1} {
		if _, err := Generate(d); err == nil {
			t.Errorf("order %d accepted", d)
		}
	}
}

// TestCheckedInFilesAreCurrent guards against the generated kernels
// drifting from the generator: regenerating must reproduce the repository
// files byte for byte.
func TestCheckedInFilesAreCurrent(t *testing.T) {
	for _, d := range []int{3, 4, 5} {
		path := "../kernels/modes" + string(rune('0'+d)) + "_gen.go"
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read checked-in file: %v", err)
		}
		got, err := Generate(d)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s is stale; regenerate with: go generate ./internal/kernels", path)
		}
	}
}

func TestGeneratedKernelShapes(t *testing.T) {
	src, err := Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	s := string(src)
	// Every valid (u, src) pair must have a kernel: u=1 has 4 sources?
	// For d=4: u=1 src∈{1,2,3}, u=2 src∈{2,3}, u=3 src=3.
	for _, fn := range []string{"mode4u1src1", "mode4u1src2", "mode4u1src3", "mode4u2src2", "mode4u2src3", "mode4u3src3"} {
		if !strings.Contains(s, "func "+fn+"(") {
			t.Errorf("missing kernel %s", fn)
		}
	}
	if strings.Contains(s, "mode4u3src2") {
		t.Error("leaf mode with non-leaf source should not be generated")
	}
}

// TestVecFilesAreCurrent extends the currency guard to the R-blocked
// specializations and their shape rules: -vec and -shape outputs must
// match the checked-in files byte for byte.
func TestVecFilesAreCurrent(t *testing.T) {
	cases := []struct {
		path string
		gen  func() ([]byte, error)
	}{
		{"../kernels/vec_gen.go", GenerateVec},
		{"../lint/gates/shape_gen.go", GenerateShapeRules},
	}
	for _, c := range cases {
		want, err := os.ReadFile(c.path)
		if err != nil {
			t.Fatalf("read checked-in file: %v", err)
		}
		got, err := c.gen()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s is stale; regenerate with: go generate ./internal/kernels", c.path)
		}
	}
}

// TestGenerateVecShapes pins structural properties of the emitted
// specializations: every width gets all four primitives plus a shape rule,
// and the entry re-slices that make prove delete the per-element checks
// are present.
func TestGenerateVecShapes(t *testing.T) {
	src, err := GenerateVec()
	if err != nil {
		t.Fatal(err)
	}
	s := string(src)
	rules, err := GenerateShapeRules()
	if err != nil {
		t.Fatal(err)
	}
	rs := string(rules)
	for _, w := range VecWidths {
		for _, prim := range []string{"zero", "addScaled", "hadamardAccum", "hadamardInto"} {
			fn := fmt.Sprintf("%s%d", prim, w)
			if !strings.Contains(s, "func "+fn+"(") {
				t.Errorf("vec_gen.go lacks %s", fn)
			}
			if !strings.Contains(rs, fmt.Sprintf("kernels.%s", fn)) {
				t.Errorf("shape_gen.go lacks a rule for kernels.%s", fn)
			}
		}
		if !strings.Contains(s, fmt.Sprintf("[:%d:%d]", w, w)) {
			t.Errorf("vec_gen.go lacks the [:%d:%d] entry re-slice", w, w)
		}
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "vec_gen.go", src, 0); err != nil {
		t.Fatalf("generated vec code does not parse: %v", err)
	}
	if _, err := parser.ParseFile(fset, "shape_gen.go", rules, 0); err != nil {
		t.Fatalf("generated shape rules do not parse: %v", err)
	}
}

package kernels

import (
	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// root5 is the order-5 specialisation of the balanced root-mode MTTKRP
// (see root3.go for the scheme). Three of the sixteen benchmark tensors
// are 5-way, so the unrolled form pays for itself.
func root5(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, bound []*tensor.Matrix) {
	r := factors[0].Cols
	f1, f2, f3, f4 := factors[1], factors[2], factors[3], factors[4]
	save1, save2, save3 := partials.Save[1], partials.Save[2], partials.Save[3]

	store := func(th int, level int, n int64, ownLo []int64, t []float64) {
		if n >= ownLo[level] {
			copy(partials.P[level].Row(int(n)), t)
		} else {
			copy(bound[level].Row(th), t)
		}
	}

	run := func(th int) {
		s := part.Start[th]
		e := part.Own[th+1]
		ownLo := part.Own[th]
		if s[0] >= e[0] {
			return
		}
		t0 := make([]float64, r)
		t1 := make([]float64, r)
		t2 := make([]float64, r)
		t3 := make([]float64, r)
		for n0 := s[0]; n0 < e[0]; n0++ {
			zero(t0)
			c1Lo := maxI64(tree.Ptr[0][n0], s[1])
			c1Hi := minI64(tree.Ptr[0][n0+1], e[1])
			for n1 := c1Lo; n1 < c1Hi; n1++ {
				zero(t1)
				c2Lo := maxI64(tree.Ptr[1][n1], s[2])
				c2Hi := minI64(tree.Ptr[1][n1+1], e[2])
				for n2 := c2Lo; n2 < c2Hi; n2++ {
					zero(t2)
					c3Lo := maxI64(tree.Ptr[2][n2], s[3])
					c3Hi := minI64(tree.Ptr[2][n2+1], e[3])
					for n3 := c3Lo; n3 < c3Hi; n3++ {
						zero(t3)
						c4Lo := maxI64(tree.Ptr[3][n3], s[4])
						c4Hi := minI64(tree.Ptr[3][n3+1], e[4])
						for k := c4Lo; k < c4Hi; k++ {
							addScaled(t3, tree.Vals[k], f4.Row(int(tree.Fids[4][k])))
						}
						if save3 {
							store(th, 3, n3, ownLo, t3)
						}
						hadamardAccum(t2, t3, f3.Row(int(tree.Fids[3][n3])))
					}
					if save2 {
						store(th, 2, n2, ownLo, t2)
					}
					hadamardAccum(t1, t2, f2.Row(int(tree.Fids[2][n2])))
				}
				if save1 {
					store(th, 1, n1, ownLo, t1)
				}
				hadamardAccum(t0, t1, f1.Row(int(tree.Fids[1][n1])))
			}
			if n0 >= ownLo[0] {
				copy(out.Row(int(tree.Fids[0][n0])), t0)
			} else {
				copy(bound[0].Row(th), t0)
			}
		}
	}
	runThreads(part.T, run)
}

package kernels

import (
	"stef/internal/csf"
	"stef/internal/par"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// root5 dispatches the order-5 specialisation of the balanced root-mode
// MTTKRP (see root3.go for the scheme, including the hoisted level slices
// and the T==1 closure-free path). Three of the sixteen benchmark tensors
// are 5-way, so the unrolled form pays for itself.
func root5(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	if part.T == 1 {
		root5Thread(0, tree, factors, out, partials, part, sc)
		return
	}
	par.Do(part.T, func(th int) { //gate:allow escape multi-threaded launch; the T==1 path above stays allocation-free
		root5Thread(th, tree, factors, out, partials, part, sc)
	})
}

// root5Thread is thread th's share of the order-5 root-mode MTTKRP.
func root5Thread(th int, tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	f1, f2, f3, f4 := factors[1], factors[2], factors[3], factors[4]
	save1, save2, save3 := partials.Save[1], partials.Save[2], partials.Save[3]
	ptr0, ptr1, ptr2, ptr3 := tree.PtrLevel(0), tree.PtrLevel(1), tree.PtrLevel(2), tree.PtrLevel(3)
	fids0, fids1, fids2, fids3, fids4 := tree.FidLevel(0), tree.FidLevel(1), tree.FidLevel(2), tree.FidLevel(3), tree.FidLevel(4)
	vals := tree.ValsLevel()

	store := func(level int, n int64, ownLo []int64, t []float64) {
		if n >= ownLo[level] {
			sc.shadow.own(th, level, n)
			copy(partials.P[level].Row(int(n)), t)
		} else {
			sc.shadow.boundary(th, level, n)
			copy(sc.bound[level].Row(th), t)
		}
	}

	s := part.Start[th]
	e := part.Own[th+1]
	ownLo := part.Own[th]
	if s[0] >= e[0] {
		return
	}
	s1, s2, s3, s4 := s[1], s[2], s[3], s[4]
	e1, e2, e3, e4 := e[1], e[2], e[3], e[4]
	own0 := ownLo[0]
	bnd0 := sc.bound[0].Row(th)
	t0 := sc.vec(th, 0)
	t1 := sc.vec(th, 1)
	t2 := sc.vec(th, 2)
	t3 := sc.vec(th, 3)
	// Rebind the rank-vector primitives to the scratch's R-specialized set
	// (vec.go); the names shadow the generic package functions on purpose.
	zero, addScaled, hadamardAccum := sc.ops.zero, sc.ops.addScaled, sc.ops.hadamardAccum
	for n0 := s[0]; n0 < e[0]; n0++ {
		zero(t0)
		c1Lo := maxI64(ptr0[n0], s1)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
		c1Hi := minI64(ptr0[n0+1], e1) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
		for n1 := c1Lo; n1 < c1Hi; n1++ {
			zero(t1)
			c2Lo := maxI64(ptr1[n1], s2)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
			c2Hi := minI64(ptr1[n1+1], e2) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
			for n2 := c2Lo; n2 < c2Hi; n2++ {
				zero(t2)
				c3Lo := maxI64(ptr2[n2], s3)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
				c3Hi := minI64(ptr2[n2+1], e3) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
				for n3 := c3Lo; n3 < c3Hi; n3++ {
					zero(t3)
					c4Lo := maxI64(ptr3[n3], s4)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
					c4Hi := minI64(ptr3[n3+1], e4) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
					for k := c4Lo; k < c4Hi; k++ {
						addScaled(t3, vals[k], f4.Row(int(fids4[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
					}
					if save3 {
						store(3, n3, ownLo, t3) //gate:allow bounds memo row vs boundary replica chosen by a data-dependent owner test
					}
					hadamardAccum(t2, t3, f3.Row(int(fids3[n3]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
				}
				if save2 {
					store(2, n2, ownLo, t2) //gate:allow bounds memo row vs boundary replica chosen by a data-dependent owner test
				}
				hadamardAccum(t1, t2, f2.Row(int(fids2[n2]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
			if save1 {
				store(1, n1, ownLo, t1) //gate:allow bounds memo row vs boundary replica chosen by a data-dependent owner test
			}
			hadamardAccum(t0, t1, f1.Row(int(fids1[n1]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
		}
		if n0 >= own0 {
			sc.shadow.own(th, 0, n0)
			copy(out.Row(int(fids0[n0])), t0) //gate:allow bounds output row addressed by stored fiber id, data-dependent
		} else {
			sc.shadow.boundary(th, 0, n0)
			copy(bnd0, t0)
		}
	}
}

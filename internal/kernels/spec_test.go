package kernels

import (
	"fmt"
	"testing"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// TestSpecializedMatchesGeneric cross-checks the unrolled 3D/4D root
// kernels against the generic recursive kernel bit for bit (same
// floating-point evaluation order), across thread counts and memo subsets.
func TestSpecializedMatchesGeneric(t *testing.T) {
	shapes := [][]int{
		{7, 9, 11},
		{2, 300, 5},
		{6, 5, 9, 8},
		{3, 4, 200, 2},
		{4, 5, 6, 7, 8},
		{2, 100, 3, 4, 5},
	}
	for _, dims := range shapes {
		tt := tensor.Random(dims, 500, nil, 31)
		d := len(dims)
		tree := csf.Build(tt, nil)
		factors := tensor.RandomFactors(tt.Dims, 5, 3)
		lf := LevelFactors(factors, tree.Perm())
		for _, threads := range []int{1, 2, 5, 9} {
			part := sched.NewPartition(tree, threads)
			for _, save := range memoSubsets(d) {
				ctx := fmt.Sprintf("dims=%v T=%d save=%v", dims, threads, save)

				pGen := NewPartials(tree, 5, save)
				outGen := tensor.NewMatrix(tree.Dim(0), 5)
				scGen := NewScratch(d, 5, threads)
				rootGeneric(tree, lf, outGen, pGen, part, scGen)
				mergeBoundaries(tree, outGen, pGen, part, scGen.bound)

				pSpec := NewPartials(tree, 5, save)
				outSpec := tensor.NewMatrix(tree.Dim(0), 5)
				scSpec := NewScratch(d, 5, threads)
				switch d {
				case 3:
					root3(tree, lf, outSpec, pSpec, part, scSpec)
				case 4:
					root4(tree, lf, outSpec, pSpec, part, scSpec)
				case 5:
					root5(tree, lf, outSpec, pSpec, part, scSpec)
				}
				mergeBoundaries(tree, outSpec, pSpec, part, scSpec.bound)

				if diff := outSpec.MaxAbsDiff(outGen); diff != 0 {
					t.Fatalf("%s: output differs by %g", ctx, diff)
				}
				for l := 1; l <= d-2; l++ {
					if !save[l] {
						continue
					}
					if diff := pSpec.P[l].MaxAbsDiff(pGen.P[l]); diff != 0 {
						t.Fatalf("%s: memoized level %d differs by %g", ctx, l, diff)
					}
				}
			}
		}
	}
}

// TestModeSpecializedMatchesGeneric cross-checks every specialised
// non-root kernel against the generic recursion bit for bit.
func TestModeSpecializedMatchesGeneric(t *testing.T) {
	for _, dims := range [][]int{{7, 9, 11}, {2, 300, 5}, {6, 5, 9, 8}, {3, 4, 200, 2}, {4, 5, 6, 7, 8}, {2, 100, 3, 4, 5}} {
		tt := tensor.Random(dims, 500, nil, 77)
		d := len(dims)
		tree := csf.Build(tt, nil)
		factors := tensor.RandomFactors(tt.Dims, 5, 3)
		lf := LevelFactors(factors, tree.Perm())
		for _, threads := range []int{1, 3, 8} {
			part := sched.NewPartition(tree, threads)
			for _, save := range memoSubsets(d) {
				partials := NewPartials(tree, 5, save)
				out0 := tensor.NewMatrix(tree.Dim(0), 5)
				RootMTTKRP(tree, lf, out0, partials, part)
				for u := 1; u < d; u++ {
					ctx := fmt.Sprintf("dims=%v T=%d save=%v u=%d", dims, threads, save, u)
					src := partials.SourceLevel(u)

					bufSpec := NewOutBuf(tree.Dim(u), 5, threads, 1<<40)
					bufSpec.Reset()
					ModeMTTKRP(tree, lf, u, partials, bufSpec, part)
					gotSpec := tensor.NewMatrix(tree.Dim(u), 5)
					bufSpec.Reduce(gotSpec)

					bufGen := NewOutBuf(tree.Dim(u), 5, threads, 1<<40)
					bufGen.Reset()
					modeGeneric(tree, lf, u, src, partials, bufGen, part, NewScratch(d, 5, threads))
					gotGen := tensor.NewMatrix(tree.Dim(u), 5)
					bufGen.Reduce(gotGen)

					if diff := gotSpec.MaxAbsDiff(gotGen); diff != 0 {
						t.Fatalf("%s: specialised differs from generic by %g", ctx, diff)
					}
				}
			}
		}
	}
}

// TestDispatchUsesSpecialized pins the dispatch: orders 3 and 4 must not
// regress to the generic path (this is a behavioural check via the public
// API — results must stay correct — plus a direct call check above; here we
// simply exercise the public entry on both orders).
func TestDispatchUsesSpecialized(t *testing.T) {
	for _, dims := range [][]int{{6, 7, 8}, {4, 5, 6, 7}} {
		tt := tensor.Random(dims, 300, nil, 9)
		tree := csf.Build(tt, nil)
		part := sched.NewPartition(tree, 3)
		factors := tensor.RandomFactors(tt.Dims, 4, 1)
		lf := LevelFactors(factors, tree.Perm())
		save := make([]bool, len(dims))
		save[1] = true
		partials := NewPartials(tree, 4, save)
		out := tensor.NewMatrix(tree.Dim(0), 4)
		RootMTTKRP(tree, lf, out, partials, part)
		want := Reference(tt, factors, tree.Perm()[0])
		if diff := out.MaxAbsDiff(want); diff > 1e-9*(1+want.NormFrobenius()) {
			t.Fatalf("dims %v: dispatch result differs from reference by %g", dims, diff)
		}
	}
}

package kernels

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/csf"
	"stef/internal/par"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// censusFor runs the write census for every (mode, source) pair the save
// vector induces, mirroring core's planner.
func censusFor(tree *csf.Tree, part *sched.Partition, save []bool, u int) *RowWrites {
	d := tree.Order()
	src := d - 1
	if u < d-1 {
		for l := u; l <= d-2; l++ {
			if save[l] {
				src = l
				break
			}
		}
	}
	return CountRowWrites(tree, part, u, src)
}

// TestCountRowWritesInvariants cross-checks the census' three views of the
// same walk — counts, writer classification, and per-thread journals —
// against each other on skewed tensors.
func TestCountRowWritesInvariants(t *testing.T) {
	tt := tensor.Random([]int{9, 40, 300}, 1200, []float64{2, 1.5, 0}, 71)
	tree := csf.Build(tt, nil)
	for _, threads := range []int{1, 2, 4, 7} {
		part := sched.NewPartition(tree, threads)
		for _, save := range memoSubsets(3) {
			for u := 1; u < 3; u++ {
				rw := censusFor(tree, part, save, u)
				var sum int64
				journals := make(map[int32][]int)
				for th, rows := range rw.PerThread {
					for i, r := range rows {
						if i > 0 && rows[i-1] >= r {
							t.Fatalf("T=%d u=%d: journal %d not strictly ascending at %d", threads, u, th, i)
						}
						journals[r] = append(journals[r], th)
					}
				}
				for r, c := range rw.Counts {
					sum += c
					w := rw.Writer[r]
					ths := journals[int32(r)]
					switch {
					case c == 0:
						if w != RemapUntouched || len(ths) != 0 {
							t.Fatalf("T=%d u=%d row %d: count 0 but writer %d, journals %v", threads, u, r, w, ths)
						}
					case len(ths) == 1:
						if w != int32(ths[0]) {
							t.Fatalf("T=%d u=%d row %d: one journal (thread %d) but writer %d", threads, u, r, ths[0], w)
						}
					default:
						if w != RemapColdCAS {
							t.Fatalf("T=%d u=%d row %d: %d journal threads but writer %d", threads, u, r, len(ths), w)
						}
					}
				}
				if sum != rw.Writes {
					t.Fatalf("T=%d u=%d: counts sum %d, Writes %d", threads, u, sum, rw.Writes)
				}
				if threads == 1 {
					for r, w := range rw.Writer {
						if w != RemapUntouched && w != 0 {
							t.Fatalf("u=%d row %d: writer %d on a single-thread census", u, r, w)
						}
					}
				}
			}
		}
	}
}

// TestCountRowWritesLeafHistogram pins the leaf-mode census at T=1 to the
// directly computable answer: one write per non-zero, bucketed by leaf fid.
func TestCountRowWritesLeafHistogram(t *testing.T) {
	tt := tensor.Random([]int{5, 7, 30}, 200, []float64{0, 0, 2}, 13)
	tree := csf.Build(tt, nil)
	part := sched.NewPartition(tree, 1)
	rw := CountRowWrites(tree, part, 2, 2)
	d := tree.Order()
	want := make([]int64, tree.Dim(d-1))
	for _, f := range tree.FidLevel(d-1) {
		want[f]++
	}
	for r, c := range rw.Counts {
		if c != want[r] {
			t.Fatalf("leaf row %d: census count %d, histogram %d", r, c, want[r])
		}
	}
}

// TestPlanAccumInvariants checks the classification every strategy's plan
// must satisfy: remap totality, journal/cold/touched consistency, hot-set
// admission rules and the footprint budget.
func TestPlanAccumInvariants(t *testing.T) {
	tt := tensor.Random([]int{8, 60, 400}, 2500, []float64{2, 2, 1.5}, 99)
	tree := csf.Build(tt, nil)
	const cols, threads = 8, 4
	part := sched.NewPartition(tree, threads)
	for u := 1; u < 3; u++ {
		rw := censusFor(tree, part, []bool{false, false, false}, u)
		for _, budget := range []int64{1, int64(2 * threads * cols), 1 << 20} {
			ap := PlanAccum(rw, cols, threads, AccumHybrid, budget)
			if got := int64(ap.HotK() * threads * cols); got > budget {
				t.Fatalf("u=%d budget %d: hot footprint %d over budget", u, budget, got)
			}
			if ap.CASRows+ap.DirectRows != len(ap.Cold) {
				t.Fatalf("u=%d: CAS %d + direct %d != cold %d", u, ap.CASRows, ap.DirectRows, len(ap.Cold))
			}
			if len(ap.HotIDs)+len(ap.Cold) != len(ap.Touched) {
				t.Fatalf("u=%d: hot %d + cold %d != touched %d", u, len(ap.HotIDs), len(ap.Cold), len(ap.Touched))
			}
			var hotWrites int64
			for slot, r := range ap.HotIDs {
				if ap.Remap[r] != int32(slot) {
					t.Fatalf("u=%d: hot row %d remaps to %d, want slot %d", u, r, ap.Remap[r], slot)
				}
				if rw.Writer[r] != RemapColdCAS {
					t.Fatalf("u=%d: hot row %d is not multi-writer in the census", u, r)
				}
				if rw.Counts[r] < int64(hotWriteFactor*threads) {
					t.Fatalf("u=%d: hot row %d has %d writes, below the admission threshold", u, r, rw.Counts[r])
				}
				hotWrites += rw.Counts[r]
			}
			if hotWrites != ap.HotWrites {
				t.Fatalf("u=%d: HotWrites %d, want %d", u, ap.HotWrites, hotWrites)
			}
			for _, r := range ap.Cold {
				if w := ap.Remap[r]; w != RemapColdDirect && w != RemapColdCAS {
					t.Fatalf("u=%d: cold row %d remaps to %d", u, r, w)
				}
				if (ap.Remap[r] == RemapColdDirect) != (rw.Writer[r] >= 0) {
					t.Fatalf("u=%d: cold row %d direct/CAS split disagrees with census writer %d", u, r, rw.Writer[r])
				}
			}
			for r, w := range ap.Remap {
				if w == RemapUntouched && rw.Counts[r] != 0 {
					t.Fatalf("u=%d: row %d marked untouched with %d census writes", u, r, rw.Counts[r])
				}
			}
		}
		priv := PlanAccum(rw, cols, threads, AccumPriv, 0)
		for r, w := range priv.Remap {
			if w != rw.Writer[r] {
				t.Fatalf("u=%d: priv remap[%d] = %d, census writer %d", u, r, w, rw.Writer[r])
			}
		}
		atom := PlanAccum(rw, cols, threads, AccumAtomic, 0)
		for _, r := range atom.Touched {
			if atom.Remap[r] != RemapColdCAS {
				t.Fatalf("u=%d: atomic touched row %d remaps to %d", u, r, atom.Remap[r])
			}
		}
	}
}

// runAllModesPlanned mirrors runAllModes but accumulates through planned
// buffers with the given strategy and hot budget, so every strategy's
// output is checked against the COO reference.
func runAllModesPlanned(t *testing.T, tt *tensor.Tensor, tree *csf.Tree, part *sched.Partition, save []bool, rank int, strat AccumStrategy, budget int64, ctx string) {
	t.Helper()
	d := tt.Order()
	factors := tensor.RandomFactors(tt.Dims, rank, 4242)
	lf := LevelFactors(factors, tree.Perm())
	partials := NewPartials(tree, rank, save)
	out0 := tensor.NewMatrix(tree.Dim(0), rank)
	RootMTTKRP(tree, lf, out0, partials, part)
	for u := 1; u < d; u++ {
		rw := censusFor(tree, part, save, u)
		ap := PlanAccum(rw, rank, part.T, strat, budget)
		buf := NewOutBufPlanned(ap)
		buf.Reset()
		ModeMTTKRP(tree, lf, u, partials, buf, part)
		got := tensor.NewMatrix(tree.Dim(u), rank)
		buf.Reduce(got)
		want := Reference(tt, factors, tree.Perm()[u])
		relClose(t, got, want, fmt.Sprintf("%s mode(level%d) %v budget=%d", ctx, u, strat, budget))

		// Reset must return the buffer to a reusable state: a second
		// launch has to reproduce the same output.
		buf.Reset()
		ModeMTTKRP(tree, lf, u, partials, buf, part)
		again := tensor.NewMatrix(tree.Dim(u), rank)
		buf.Reduce(again)
		relClose(t, again, want, fmt.Sprintf("%s mode(level%d) %v relaunch", ctx, u, strat))
	}
}

// TestPlannedStrategiesMatchReference drives every accumulation strategy
// over skewed tensors and thread counts, with budgets forcing empty,
// partial and saturated hot sets.
func TestPlannedStrategiesMatchReference(t *testing.T) {
	cases := []struct {
		dims []int
		nnz  int
		skew []float64
	}{
		{[]int{7, 9, 11}, 400, nil},
		{[]int{3, 5, 700}, 900, []float64{3, 2, 0}},   // hot leaf boundary splits
		{[]int{2, 300, 5}, 700, []float64{0, 2, 0}},   // two root slices, shared rows
		{[]int{6, 5, 9, 8}, 500, []float64{1.5, 0, 2, 0}},
	}
	for _, cs := range cases {
		tt := tensor.Random(cs.dims, cs.nnz, cs.skew, int64(len(cs.dims))*31)
		tree := csf.Build(tt, nil)
		d := len(cs.dims)
		for _, threads := range []int{1, 2, 5} {
			part := sched.NewPartition(tree, threads)
			save := memoSubsets(d)[1%len(memoSubsets(d))]
			ctx := fmt.Sprintf("dims=%v T=%d", cs.dims, threads)
			for _, strat := range []AccumStrategy{AccumPriv, AccumHybrid, AccumAtomic} {
				for _, budget := range []int64{1, int64(3 * threads * 4), 1 << 20} {
					runAllModesPlanned(t, tt, tree, part, save, 4, strat, budget, ctx)
				}
			}
		}
	}
}

// TestPlannedQuick property-tests the planned strategies against the
// privatized reference on random skewed shapes.
func TestPlannedQuick(t *testing.T) {
	f := func(seed int64, tRaw, sRaw, bRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{2 + rng.Intn(8), 2 + rng.Intn(30), 2 + rng.Intn(80)}
		skew := []float64{0, []float64{0, 1.5, 2.5}[rng.Intn(3)], []float64{0, 2}[rng.Intn(2)]}
		nnz := 80 + rng.Intn(300)
		if space := dims[0] * dims[1] * dims[2]; nnz > space/2 {
			nnz = space / 2
		}
		tt := tensor.Random(dims, nnz, skew, seed)
		tree := csf.Build(tt, nil)
		threads := 1 + int(tRaw)%6
		part := sched.NewPartition(tree, threads)
		strat := []AccumStrategy{AccumPriv, AccumHybrid, AccumAtomic}[int(sRaw)%3]
		budget := []int64{1, 64, 1 << 18}[int(bRaw)%3]

		rank := 3
		factors := tensor.RandomFactors(tt.Dims, rank, seed+1)
		lf := LevelFactors(factors, tree.Perm())
		save := []bool{false, true, false}
		partials := NewPartials(tree, rank, save)
		out0 := tensor.NewMatrix(tree.Dim(0), rank)
		RootMTTKRP(tree, lf, out0, partials, part)
		for u := 1; u < 3; u++ {
			rw := censusFor(tree, part, save, u)
			buf := NewOutBufPlanned(PlanAccum(rw, rank, threads, strat, budget))
			buf.Reset()
			ModeMTTKRP(tree, lf, u, partials, buf, part)
			got := tensor.NewMatrix(tree.Dim(u), rank)
			buf.Reduce(got)
			want := Reference(tt, factors, tree.Perm()[u])
			if got.MaxAbsDiff(want) > tol*(1+want.NormFrobenius()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// stressCensus hand-builds a census whose plan exercises every write path
// at once: hot replicas (rows 0..3), cold CAS pairs (4..19), single-writer
// direct rows (20..19+T) and an untouched tail.
func stressCensus(threads int) *RowWrites {
	const rows = 48
	rw := &RowWrites{
		Counts:    make([]int64, rows),
		Writer:    make([]int32, rows),
		PerThread: make([][]int32, threads),
	}
	for r := range rw.Writer {
		rw.Writer[r] = RemapUntouched
	}
	touch := func(r, th int, c int64) {
		rw.Counts[r] += c
		rw.Writes += c
		switch w := rw.Writer[r]; {
		case w == RemapUntouched:
			rw.Writer[r] = int32(th)
		case w != int32(th):
			rw.Writer[r] = RemapColdCAS
		}
		rw.PerThread[th] = append(rw.PerThread[th], int32(r))
	}
	for r := 0; r < 4; r++ { // hot: every thread, far above the 2T threshold
		for th := 0; th < threads; th++ {
			touch(r, th, int64(4*hotWriteFactor*threads))
		}
	}
	for r := 4; r < 20; r++ { // cold CAS: two writers, below the threshold
		touch(r, r%threads, 1)
		touch(r, (r+1)%threads, 1)
	}
	for r := 20; r < 20+threads; r++ { // direct: one writer each
		touch(r, r-20, 2)
	}
	return rw
}

// TestOutBufPlannedStress hammers every accumulation path from T real
// goroutines across repeated Reset/launch/Reduce cycles and checks the
// reduced values exactly. Run with -race this doubles as the data-race
// proof for atomicAddFloat, the hot slabs and the direct stores.
func TestOutBufPlannedStress(t *testing.T) {
	const threads, cols, iters, launches = 8, 8, 25, 12
	rw := stressCensus(threads)
	src := make([]float64, cols)
	for i := range src {
		src[i] = float64(i + 1)
	}
	for _, strat := range []AccumStrategy{AccumPriv, AccumHybrid, AccumAtomic} {
		ap := PlanAccum(rw, cols, threads, strat, int64(4*threads*cols))
		if strat == AccumHybrid && ap.HotK() != 4 {
			t.Fatalf("stress fixture: hot set %d, want 4", ap.HotK())
		}
		buf := NewOutBufPlanned(ap)
		out := tensor.NewMatrix(48, cols)
		for launch := 0; launch < launches; launch++ {
			buf.Reset()
			par.Do(threads, func(th int) {
				o := buf.Thread(th)
				for it := 0; it < iters; it++ {
					for _, r := range rw.PerThread[th] {
						o.AddScaled(int(r), 1, src)
					}
				}
			})
			buf.Reduce(out)
			for r := 0; r < 48; r++ {
				writers := 0
				for th := 0; th < threads; th++ {
					for _, jr := range rw.PerThread[th] {
						if int(jr) == r {
							writers++
						}
					}
				}
				want := float64(writers * iters)
				for c := 0; c < cols; c++ {
					if got := out.At(r, c); got != want*src[c] {
						t.Fatalf("%v launch %d row %d col %d: got %g, want %g", strat, launch, r, c, got, want*src[c])
					}
				}
			}
		}
	}
}

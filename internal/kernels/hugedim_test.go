package kernels

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// TestHugeDimBoundary drives a huge-dimension/small-nnz tensor — two modes
// just under 2^31, fiber ids at exactly dims[m]-1 — through CSF build,
// serialization round trip, partitioning and a full MTTKRP sweep, pinning
// that row indexing and OutBuf sizing survive int32-boundary dims.
//
// The dense per-mode state (factor matrices, accumulation buffers) is
// allocated at its full near-2^31-row extent but only the handful of rows
// the non-zeros reference is ever written, so the footprint is virtual:
// Go's large fresh allocations are lazily backed and the test touches a
// few pages of each. For the same reason the test never runs a dense
// full-matrix scan — Reset, Reduce and Reference would each stream tens
// of gigabytes — and instead reads the touched rows out of the buffers
// directly and compares them against a sparse per-row reference.
func TestHugeDimBoundary(t *testing.T) {
	const (
		nnz  = 96
		rank = 2
		T    = 2
	)
	dims := tensor.HugeDims()
	tt := tensor.HugeBoundary(dims, nnz, 7)
	if err := tt.Validate(true); err != nil {
		t.Fatalf("boundary tensor invalid: %v", err)
	}
	maxCoord := int32(0)
	for k := 0; k < tt.NNZ(); k++ {
		for _, c := range tt.Coord(k) {
			if c > maxCoord {
				maxCoord = c
			}
		}
	}
	if want := int32(1<<31 - 4); maxCoord != want {
		t.Fatalf("max coordinate %d, want the boundary %d", maxCoord, want)
	}

	tree := csf.Build(tt, nil)
	if err := tree.Validate(); err != nil {
		t.Fatalf("CSF of boundary tensor invalid: %v", err)
	}
	tree.WriteStats(io.Discard)

	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	back, err := csf.ReadFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped tree invalid: %v", err)
	}
	if !csf.Equal(back, tree) {
		t.Fatal("round trip changed the tree")
	}

	// Arena round trip at the int32 boundary: near-2^31 dims and fiber ids
	// survive the pack/open cycle, and the sweep below runs on the
	// arena-backed tree, so every kernel reads the boundary fids out of the
	// mapped (or heap-fallback) storage rather than the heap build.
	arenaPath := filepath.Join(t.TempDir(), "huge.stef")
	if err := tree.WriteArena(arenaPath); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	atree, err := csf.OpenArena(arenaPath)
	if err != nil {
		t.Fatalf("OpenArena: %v", err)
	}
	defer atree.Close()
	if err := atree.Validate(); err != nil {
		t.Fatalf("arena tree invalid: %v", err)
	}
	if !csf.Equal(atree, tree) {
		t.Fatal("arena round trip changed the tree")
	}
	tree = atree

	// Factor matrices at full extent, filled only on referenced rows.
	d := tt.Order()
	factors := make([]*tensor.Matrix, d)
	for m := 0; m < d; m++ {
		factors[m] = tensor.NewMatrix(tt.Dims[m], rank)
	}
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < tt.NNZ(); k++ {
		c := tt.Coord(k)
		for m := 0; m < d; m++ {
			row := factors[m].Row(int(c[m]))
			if row[0] == 0 {
				for j := range row {
					row[j] = 0.5 + rng.Float64()
				}
			}
		}
	}
	lf := LevelFactors(factors, tree.Perm())
	part := sched.NewPartition(tree, T)
	partials := NewPartials(tree, rank, make([]bool, d))

	// Root level: the length-sorted heuristic puts the small mode at the
	// root, so its dense output is genuinely allocatable.
	out0 := tensor.NewMatrix(tree.Dim(0), rank)
	RootMTTKRP(tree, lf, out0, partials, part)
	checkSparseRows(t, tt, factors, tree.Perm()[0], out0.Row, "root")

	// One shared accumulation buffer, sized for the largest level, serves
	// every huge mode: the kernels index output rows by fiber id without
	// consulting the buffer's nominal row count, and allocating a second
	// near-2^31-row buffer after freeing the first would land on a reused
	// span, forcing the runtime to memclr the full tens-of-gigabytes
	// extent (fresh virtual memory is handed out already zero, so the
	// one-time allocation costs nothing). A fresh buffer is also already
	// zeroed; Reset would be the same full-extent clear.
	maxRows := 0
	for _, n := range tree.Dims() {
		if n > maxRows {
			maxRows = n
		}
	}
	ob := NewOutBuf(maxRows, rank, T, 0)
	for u := 1; u < d; u++ {
		ModeMTTKRP(tree, lf, u, partials, ob, part)
		checkSparseRows(t, tt, factors, tree.Perm()[u], func(row int) []float64 {
			return outBufRow(ob, row)
		}, "level")
		// Zero only the rows this level touched so the next level starts
		// from a clean buffer without a dense clear. Row sets of
		// different modes may overlap (the corners share fiber id 0 and
		// near-2^31 ids), so this cannot be skipped.
		for k := 0; k < tt.NNZ(); k++ {
			base := int(tt.Coord(k)[tree.Perm()[u]]) * rank
			for j := 0; j < rank; j++ {
				ob.shared[base+j] = 0
			}
		}
	}
}

// outBufRow reads one reduced output row straight out of the buffer's
// accumulation state, summing private replicas or decoding the shared
// bit-pattern region, without the full-matrix Reduce.
func outBufRow(b *OutBuf, row int) []float64 {
	out := make([]float64, b.cols)
	if b.priv != nil {
		copy(out, b.priv[0].Row(row))
		for th := 1; th < b.t; th++ {
			src := b.priv[th].Row(row)
			for j := range out {
				out[j] += src[j]
			}
		}
		return out
	}
	base := row * b.cols
	for j := range out {
		out[j] = math.Float64frombits(b.shared[base+j])
	}
	return out
}

// checkSparseRows compares the MTTKRP rows actually touched by tt's
// non-zeros for original mode m against a sparse COO reference, plus one
// untouched row that must have stayed zero.
func checkSparseRows(t *testing.T, tt *tensor.Tensor, factors []*tensor.Matrix, m int, rowOf func(int) []float64, ctx string) {
	t.Helper()
	d := tt.Order()
	r := factors[0].Cols
	want := make(map[int32][]float64)
	prod := make([]float64, r)
	for k := 0; k < tt.NNZ(); k++ {
		c := tt.Coord(k)
		for j := range prod {
			prod[j] = tt.Vals[k]
		}
		for mm := 0; mm < d; mm++ {
			if mm == m {
				continue
			}
			f := factors[mm].Row(int(c[mm]))
			for j := range prod {
				prod[j] *= f[j]
			}
		}
		dst := want[c[m]]
		if dst == nil {
			dst = make([]float64, r)
			want[c[m]] = dst
		}
		for j := range dst {
			dst[j] += prod[j]
		}
	}
	for fid, w := range want {
		got := rowOf(int(fid))
		for j := range w {
			scale := math.Abs(w[j])
			if scale < 1 {
				scale = 1
			}
			if math.Abs(got[j]-w[j]) > 1e-9*scale {
				t.Fatalf("%s mode %d row %d col %d: got %g, want %g", ctx, m, fid, j, got[j], w[j])
			}
		}
	}
	// A row no non-zero references must be untouched.
	probe := int32(tt.Dims[m] / 2)
	for {
		if _, hit := want[probe]; !hit {
			break
		}
		probe++
	}
	for j, v := range rowOf(int(probe)) {
		if v != 0 {
			t.Fatalf("%s mode %d untouched row %d col %d = %g, want 0", ctx, m, probe, j, v)
		}
	}
}

package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// refOps are the plainest possible loops: the semantic ground truth both
// the unrolled generic primitives and the R-blocked specializations must
// reproduce bit for bit (every element is one independent multiply-add, so
// no reassociation can change the rounding).
func refZero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

func refAddScaled(dst []float64, s float64, src []float64) {
	for i := range dst {
		dst[i] += s * src[i]
	}
}

func refHadamardAccum(dst, a, b []float64) {
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

func refHadamardInto(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// randVec fills a length-n vector with normal variates.
func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestBlockedBitIdenticalToScalar pins every R-blocked specialization
// bit-identical to the scalar reference at its width, for R ∈ {8,16,32,64}.
// R=8 has no specialization: the dispatch must fall back to the generic
// set, which is held to the same bit-identity standard.
func TestBlockedBitIdenticalToScalar(t *testing.T) {
	for _, r := range []int{8, 16, 32, 64} {
		ops, ok := vecOpsFor(r)
		if r == 8 {
			if ok {
				t.Fatalf("R=8 unexpectedly has a specialization; update this test's dispatch expectations")
			}
			ops = genericVecOps
		} else if !ok {
			t.Fatalf("R=%d has no specialization", r)
		}
		for seed := int64(0); seed < 20; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(r)))
			s := rng.NormFloat64()
			dst := randVec(rng, r)
			a := randVec(rng, r)
			b := randVec(rng, r)

			got := append([]float64(nil), dst...)
			want := append([]float64(nil), dst...)
			ops.addScaled(got, s, a)
			refAddScaled(want, s, a)
			ctx := fmt.Sprintf("R=%d seed=%d", r, seed)
			bitEqual(t, got, want, ctx+" addScaled")

			ops.hadamardAccum(got, a, b)
			refHadamardAccum(want, a, b)
			bitEqual(t, got, want, ctx+" hadamardAccum")

			ops.hadamardInto(got, a, b)
			refHadamardInto(want, a, b)
			bitEqual(t, got, want, ctx+" hadamardInto")

			ops.zero(got)
			refZero(want)
			bitEqual(t, got, want, ctx+" zero")
		}
	}
}

// TestBlockedTouchesExactlyR verifies the specializations' contract: on a
// longer backing slice they read and write exactly the first R elements,
// matching the generic first-min(len) behaviour for equal-length rank
// vectors while never straying into adjacent memory.
func TestBlockedTouchesExactlyR(t *testing.T) {
	const pad = 5
	for _, r := range []int{16, 32, 64} {
		ops, ok := vecOpsFor(r)
		if !ok {
			t.Fatalf("R=%d has no specialization", r)
		}
		rng := rand.New(rand.NewSource(int64(r)))
		dst := randVec(rng, r+pad)
		a := randVec(rng, r+pad)
		b := randVec(rng, r+pad)
		s := rng.NormFloat64()

		got := append([]float64(nil), dst...)
		want := append([]float64(nil), dst...)
		ops.addScaled(got, s, a)
		refAddScaled(want[:r], s, a[:r])
		bitEqual(t, got, want, fmt.Sprintf("R=%d padded addScaled", r))

		ops.hadamardAccum(got, a, b)
		refHadamardAccum(want[:r], a[:r], b[:r])
		bitEqual(t, got, want, fmt.Sprintf("R=%d padded hadamardAccum", r))

		ops.zero(got)
		refZero(want[:r])
		bitEqual(t, got, want, fmt.Sprintf("R=%d padded zero", r))
	}
}

// TestGenericUnalignedLengths holds the generic fallback to the reference
// at short and unaligned lengths (the ranks opsFor sends to it).
func TestGenericUnalignedLengths(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7, 9, 13, 31, 63, 65} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := rng.NormFloat64()
		dst := randVec(rng, n)
		a := randVec(rng, n)
		b := randVec(rng, n)

		got := append([]float64(nil), dst...)
		want := append([]float64(nil), dst...)
		addScaled(got, s, a)
		refAddScaled(want, s, a)
		bitEqual(t, got, want, fmt.Sprintf("n=%d addScaled", n))

		hadamardAccum(got, a, b)
		refHadamardAccum(want, a, b)
		bitEqual(t, got, want, fmt.Sprintf("n=%d hadamardAccum", n))

		hadamardInto(got, a, b)
		refHadamardInto(want, a, b)
		bitEqual(t, got, want, fmt.Sprintf("n=%d hadamardInto", n))
	}
}

func bitEqual(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %x, want %x", ctx, i, got[i], want[i])
		}
	}
}

// TestOpsForDispatch pins the construction-time dispatch: blocked ranks
// get their specialization, everything else (and everything when
// BlockedVec is off) gets the generic set.
func TestOpsForDispatch(t *testing.T) {
	defer func(old bool) { BlockedVec = old }(BlockedVec)

	BlockedVec = true
	for _, r := range []int{16, 32, 64} {
		want, ok := vecOpsFor(r)
		if !ok {
			t.Fatalf("R=%d has no specialization", r)
		}
		if got := opsFor(r); fmt.Sprintf("%p", got.addScaled) != fmt.Sprintf("%p", want.addScaled) {
			t.Errorf("opsFor(%d) did not select the specialization", r)
		}
	}
	for _, r := range []int{1, 8, 17, 33, 128} {
		if got := opsFor(r); fmt.Sprintf("%p", got.addScaled) != fmt.Sprintf("%p", genericVecOps.addScaled) {
			t.Errorf("opsFor(%d) did not fall back to the generic set", r)
		}
	}

	BlockedVec = false
	if got := opsFor(32); fmt.Sprintf("%p", got.addScaled) != fmt.Sprintf("%p", genericVecOps.addScaled) {
		t.Error("opsFor(32) with BlockedVec off did not return the generic set")
	}
}

// TestBlockedEndToEndBitIdentical runs full root- and non-root MTTKRPs at a
// blocked rank with both primitive sets and requires bit-identical output:
// the specializations perform exactly the same multiply-adds in exactly the
// same order as the generic loops, so even parallel runs (deterministic
// per-thread ranges, deterministic reduction order) must agree to the last
// bit. Running under -race (scripts/check.sh does) also exercises the
// dispatch and rebind paths for data races.
func TestBlockedEndToEndBitIdentical(t *testing.T) {
	defer func(old bool) { BlockedVec = old }(BlockedVec)

	for _, rank := range []int{16, 32} {
		tt := tensor.Random([]int{6, 9, 11, 7}, 500, nil, int64(rank))
		tree := csf.Build(tt, nil)
		part := sched.NewPartition(tree, 4)
		save := []bool{false, true, true, false}
		factors := tensor.RandomFactors(tt.Dims, rank, 777)
		lf := LevelFactors(factors, tree.Perm())

		run := func() []*tensor.Matrix {
			partials := NewPartials(tree, rank, save)
			var outs []*tensor.Matrix
			out0 := tensor.NewMatrix(tree.Dim(0), rank)
			RootMTTKRP(tree, lf, out0, partials, part)
			outs = append(outs, out0)
			for u := 1; u < tt.Order(); u++ {
				buf := NewOutBuf(tree.Dim(u), rank, part.T, 0)
				buf.Reset()
				ModeMTTKRP(tree, lf, u, partials, buf, part)
				got := tensor.NewMatrix(tree.Dim(u), rank)
				buf.Reduce(got)
				outs = append(outs, got)
			}
			return outs
		}

		BlockedVec = true
		blocked := run()
		BlockedVec = false
		scalar := run()

		for u := range blocked {
			bitEqual(t, blocked[u].Data, scalar[u].Data, fmt.Sprintf("rank=%d mode(level%d)", rank, u))
		}
	}
}

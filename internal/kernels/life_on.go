//go:build lifetrace

package kernels

import (
	"math"
	"sync/atomic"

	"stef/internal/csf"
	"stef/internal/tensor"
)

// lifeScratchState is the recording form of the workspace-lifetime oracle:
// Solver.Release stamps the scratch poisoned (via core's LifePoison) and
// every kernel entry re-checks the stamp and the tree's closed flag, so a
// solve racing a Release or an arena eviction dies with a diagnosis
// instead of corrupting factors with recycled or NaN data.
type lifeScratchState struct {
	poisoned atomic.Bool
}

// LifeSetPoisoned stamps the scratch released (true) or back in service
// (false) and fills its accumulators accordingly: NaN on poison, so any
// read that slips past the entry checks propagates visibly into results;
// zero on revival, the freshly-constructed state the kernels assume.
func (s *Scratch) LifeSetPoisoned(p bool) {
	s.life.poisoned.Store(p)
	fill := 0.0
	if p {
		fill = math.NaN()
	}
	for i := range s.vecs {
		s.vecs[i] = fill
	}
	for _, m := range s.bound {
		lifeFillMatrix(m, fill)
	}
}

// LifeFill overwrites every accumulation cell of the buffer with v. The
// cpd lifetrace registry poisons released workspaces with NaN and restores
// zero (the freshly-constructed state the Reset journals assume) when a
// workspace is re-acquired from the pool.
func (b *OutBuf) LifeFill(v float64) {
	for _, m := range b.priv {
		lifeFillMatrix(m, v)
	}
	bits := math.Float64bits(v)
	for i := range b.shared {
		b.shared[i] = bits
	}
	for i := range b.hot {
		b.hot[i] = v
	}
}

func lifeFillMatrix(m *tensor.Matrix, v float64) {
	if m == nil {
		return
	}
	for i := range m.Data {
		m.Data[i] = v
	}
}

// lifeEnter is the kernel-entry lifetime check.
func lifeEnter(tree *csf.Tree, sc *Scratch) {
	if tree.Closed() {
		panic("kernels: lifetrace: kernel entered with a closed tree; its level views are invalid")
	}
	if sc.life.poisoned.Load() {
		panic("kernels: lifetrace: kernel entered with a released (poisoned) workspace")
	}
}

// Package kernels implements the MTTKRP kernels at the core of STeF: the
// root-mode downward pass with selective memoization (Algorithms 4 and 5 of
// the paper), the memoized and recomputing kernels for non-root modes
// (Algorithms 6–8), and a dense reference implementation used for testing.
//
// All kernels are parameterised by a sched.Partition, so the same code runs
// under STeF's non-zero-balanced distribution (with boundary-replica
// merging) and under the slice-aligned distribution used by the baselines
// and the ablation study.
package kernels

// zero clears v.
func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// The rank-vector primitives below are unrolled 4-wide: R is almost always
// a multiple of 4 (the paper evaluates 32 and 64), the independent chains
// give the superscalar core ILP that a simple range loop lacks, and the
// slice re-slicing hoists the bounds checks out of the loop body.

// addScaled computes dst += s*src.
func addScaled(dst []float64, s float64, src []float64) {
	n := len(src)
	dst = dst[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		v := src[i : i+4 : i+4]
		d[0] += s * v[0]
		d[1] += s * v[1]
		d[2] += s * v[2]
		d[3] += s * v[3]
	}
	for ; i < n; i++ {
		dst[i] += s * src[i]
	}
}

// hadamardAccum computes dst += a ⊙ b.
func hadamardAccum(dst, a, b []float64) {
	n := len(a)
	dst = dst[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		d[0] += x[0] * y[0]
		d[1] += x[1] * y[1]
		d[2] += x[2] * y[2]
		d[3] += x[3] * y[3]
	}
	for ; i < n; i++ {
		dst[i] += a[i] * b[i]
	}
}

// hadamardInto computes dst = a ⊙ b.
func hadamardInto(dst, a, b []float64) {
	n := len(a)
	dst = dst[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d := dst[i : i+4 : i+4]
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		d[0] = x[0] * y[0]
		d[1] = x[1] * y[1]
		d[2] = x[2] * y[2]
		d[3] = x[3] * y[3]
	}
	for ; i < n; i++ {
		dst[i] = a[i] * b[i]
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

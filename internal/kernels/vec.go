// Package kernels implements the MTTKRP kernels at the core of STeF: the
// root-mode downward pass with selective memoization (Algorithms 4 and 5 of
// the paper), the memoized and recomputing kernels for non-root modes
// (Algorithms 6–8), and a dense reference implementation used for testing.
//
// All kernels are parameterised by a sched.Partition, so the same code runs
// under STeF's non-zero-balanced distribution (with boundary-replica
// merging) and under the slice-aligned distribution used by the baselines
// and the ablation study.
package kernels

// zero clears v. The range-over-slice form is recognised by the compiler
// and lowered to a memclr, with no per-element bounds checks.
func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// The rank-vector primitives below are unrolled 8-wide: R is almost always
// a multiple of 8 (the paper evaluates 32 and 64), and the independent
// chains give the superscalar core ILP that a simple range loop lacks.
//
// Bounds-check story (enforced by `steflint -gates`): every operand is
// re-sliced to s[:n:n] with n = min of the lengths, pinning len and cap to
// the same SSA value, so the compiler's prove pass eliminates all but the
// first checked access per loop — the surviving check on the first slice of
// the 8-wide block dominates the remaining seven elements of all operands.
// prove cannot remove that first check because the `i+8 <= n` loop
// condition bounds the expression i+8 rather than the induction variable i
// itself, leaving i's non-negativity unproven until one unsigned bounds
// check has executed; those irreducible sites carry //gate:allow below.
// Net cost: one check per 8 elements plus one per tail element, measured
// faster than the previous 4-wide form (see EXPERIMENTS.md).
//
// All primitives operate on the first min(len...) elements of their
// operands; the kernels always pass equal-length rank-R vectors.

// addScaled computes dst += s*src.
func addScaled(dst []float64, s float64, src []float64) {
	n := min(len(dst), len(src))
	d, v := dst[:n:n], src[:n:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dp := d[i : i+8 : i+8] //gate:allow bounds first access eats the block's one irreducible check; dominates vp and dp[0..7]
		vp := v[i : i+8 : i+8]
		dp[0] += s * vp[0]
		dp[1] += s * vp[1]
		dp[2] += s * vp[2]
		dp[3] += s * vp[3]
		dp[4] += s * vp[4]
		dp[5] += s * vp[5]
		dp[6] += s * vp[6]
		dp[7] += s * vp[7]
	}
	for ; i < n; i++ {
		d[i] += s * v[i] //gate:allow bounds tail loop, at most 7 iterations; i's sign is unprovable past the unrolled loop
	}
}

// hadamardAccum computes dst += a ⊙ b.
func hadamardAccum(dst, a, b []float64) {
	n := min(len(dst), len(a), len(b))
	d, x, y := dst[:n:n], a[:n:n], b[:n:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dp := d[i : i+8 : i+8] //gate:allow bounds first access eats the block's one irreducible check; dominates xp, yp and dp[0..7]
		xp := x[i : i+8 : i+8]
		yp := y[i : i+8 : i+8]
		dp[0] += xp[0] * yp[0]
		dp[1] += xp[1] * yp[1]
		dp[2] += xp[2] * yp[2]
		dp[3] += xp[3] * yp[3]
		dp[4] += xp[4] * yp[4]
		dp[5] += xp[5] * yp[5]
		dp[6] += xp[6] * yp[6]
		dp[7] += xp[7] * yp[7]
	}
	for ; i < n; i++ {
		d[i] += x[i] * y[i] //gate:allow bounds tail loop, at most 7 iterations; i's sign is unprovable past the unrolled loop
	}
}

// hadamardInto computes dst = a ⊙ b.
func hadamardInto(dst, a, b []float64) {
	n := min(len(dst), len(a), len(b))
	d, x, y := dst[:n:n], a[:n:n], b[:n:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		dp := d[i : i+8 : i+8] //gate:allow bounds first access eats the block's one irreducible check; dominates xp, yp and dp[0..7]
		xp := x[i : i+8 : i+8]
		yp := y[i : i+8 : i+8]
		dp[0] = xp[0] * yp[0]
		dp[1] = xp[1] * yp[1]
		dp[2] = xp[2] * yp[2]
		dp[3] = xp[3] * yp[3]
		dp[4] = xp[4] * yp[4]
		dp[5] = xp[5] * yp[5]
		dp[6] = xp[6] * yp[6]
		dp[7] = xp[7] * yp[7]
	}
	for ; i < n; i++ {
		d[i] = x[i] * y[i] //gate:allow bounds tail loop, at most 7 iterations; i's sign is unprovable past the unrolled loop
	}
}

// vecOps bundles the four rank-vector primitives. The generic set above
// handles any length; cmd/kernelgen -vec emits straight-line R-blocked
// specializations (vec_gen.go) whose compile-time-constant trip counts let
// the prove pass delete every per-element bounds check and whose machine
// code is certified by the shape gate (internal/lint/gates). A Scratch or
// OutBuf picks its set once at construction via opsFor; kernels rebind the
// primitive names to the chosen set at the top of each thread body, so the
// per-nonzero path pays one indirect call either way and the R dispatch
// never appears in a loop.
type vecOps struct {
	zero          func(v []float64)
	addScaled     func(dst []float64, s float64, src []float64)
	hadamardAccum func(dst, a, b []float64)
	hadamardInto  func(dst, a, b []float64)
}

// genericVecOps is the any-length fallback set.
var genericVecOps = vecOps{
	zero:          zero,
	addScaled:     addScaled,
	hadamardAccum: hadamardAccum,
	hadamardInto:  hadamardInto,
}

// BlockedVec enables the R-blocked specializations for ranks that have
// one. It exists for the scalar-versus-blocked benchmark sweep
// (stef-bench -vecbench) and for debugging; it is read at Scratch/OutBuf
// construction time only, so flip it before building workspaces, never
// during a solve.
var BlockedVec = true

// opsFor selects the primitive set for rank-r vectors. The specializations
// operate on exactly the first r elements, matching the generic
// first-min(len) contract for the equal-length rank vectors the kernels
// pass.
func opsFor(r int) vecOps {
	if BlockedVec {
		if ops, ok := vecOpsFor(r); ok {
			return ops
		}
	}
	return genericVecOps
}

// HasBlockedOps reports whether rank r has an R-blocked specialization set
// (cmd/kernelgen -vec), independent of the BlockedVec toggle. The
// vectorization benchmark uses it to annotate dispatch outcomes.
func HasBlockedOps(r int) bool {
	_, ok := vecOpsFor(r)
	return ok
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

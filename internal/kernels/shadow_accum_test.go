//go:build shadowtrace

package kernels

import (
	"testing"
)

// TestShadowFlagsCorruptedRemapDirect injects the bug class the accumulation
// oracle exists to catch: a row the census proved multi-writer that the plan
// nonetheless classifies cold-direct. The kernel then plain-stores it from
// two threads — a real data race — and the oracle must panic on the second
// writer. The write census cannot be wrong about this on an honest plan, so
// the corruption stands in for a future planner bug.
func TestShadowFlagsCorruptedRemapDirect(t *testing.T) {
	const threads, cols = 4, 3
	rw := stressCensus(threads)
	ap := PlanAccum(rw, cols, threads, AccumHybrid, int64(4*threads*cols))
	var victim int32 = -1
	for _, r := range ap.Cold {
		if ap.Remap[r] == RemapColdCAS {
			victim = r
			break
		}
	}
	if victim < 0 {
		t.Fatal("stress fixture produced no cold CAS row to corrupt")
	}
	ap.Remap[victim] = RemapColdDirect

	buf := NewOutBufPlanned(ap)
	buf.Reset() // arms the oracle
	src := make([]float64, cols)
	defer expectShadowPanic(t)
	// Two distinct threads plain-store the corrupted row. par.Do would not
	// forward the panic to the test goroutine, so drive the handles directly.
	o0, o1 := buf.Thread(0), buf.Thread(1)
	o0.AddScaled(int(victim), 1, src)
	o1.AddScaled(int(victim), 1, src)
}

// TestShadowFlagsHotWriteOnNonHybrid exercises the oracle's strategy check:
// a hot-replica claim against a buffer whose plan has no hot set is a
// planner/kernel disagreement and must panic.
func TestShadowFlagsHotWriteOnNonHybrid(t *testing.T) {
	const threads, cols = 4, 3
	rw := stressCensus(threads)
	buf := NewOutBufPlanned(PlanAccum(rw, cols, threads, AccumPriv, 0))
	buf.Reset()
	defer expectShadowPanic(t)
	buf.shadowHot(0, 0, 0)
}

// TestShadowFlagsHotRemapMismatch exercises the oracle's remap check: a
// hot-replica claim for a row whose remap entry names a different slot (here
// a cold CAS row) must panic.
func TestShadowFlagsHotRemapMismatch(t *testing.T) {
	const threads, cols = 4, 3
	rw := stressCensus(threads)
	ap := PlanAccum(rw, cols, threads, AccumHybrid, int64(4*threads*cols))
	var cas int32 = -1
	for _, r := range ap.Cold {
		if ap.Remap[r] == RemapColdCAS {
			cas = r
			break
		}
	}
	if cas < 0 {
		t.Fatal("stress fixture produced no cold CAS row")
	}
	buf := NewOutBufPlanned(ap)
	buf.Reset()
	defer expectShadowPanic(t)
	buf.shadowHot(0, int(cas), 0)
}

// TestShadowFlagsDirectClaimOnCASRow exercises the oracle's classification
// check: a plain-store claim for a row the plan routes through CAS must
// panic even from a single thread.
func TestShadowFlagsDirectClaimOnCASRow(t *testing.T) {
	const threads, cols = 4, 3
	rw := stressCensus(threads)
	ap := PlanAccum(rw, cols, threads, AccumHybrid, int64(4*threads*cols))
	var cas int32 = -1
	for _, r := range ap.Cold {
		if ap.Remap[r] == RemapColdCAS {
			cas = r
			break
		}
	}
	if cas < 0 {
		t.Fatal("stress fixture produced no cold CAS row")
	}
	buf := NewOutBufPlanned(ap)
	buf.Reset()
	defer expectShadowPanic(t)
	buf.shadowDirect(0, int(cas))
}

// TestShadowDisarmedOnLegacyBuffer pins that legacy (unplanned) buffers never
// arm the accumulation oracle: the hooks are no-ops, not panics.
func TestShadowDisarmedOnLegacyBuffer(t *testing.T) {
	buf := NewOutBuf(8, 3, 2, 1<<20)
	buf.Reset()
	buf.shadowHot(0, 0, 0)
	buf.shadowDirect(0, 0)
}

package kernels

import (
	"fmt"

	"stef/internal/tensor"
)

// Reference computes the mode-m MTTKRP straight from the COO tensor, one
// non-zero at a time, with no memoization, no CSF and no parallelism. It is
// the ground truth every optimised kernel is tested against. m indexes the
// tensor's original modes and factors are in original mode order.
func Reference(t *tensor.Tensor, factors []*tensor.Matrix, m int) *tensor.Matrix {
	d := t.Order()
	if len(factors) != d {
		panic(fmt.Sprintf("kernels: %d factors for order-%d tensor", len(factors), d))
	}
	if m < 0 || m >= d {
		panic(fmt.Sprintf("kernels: mode %d out of range", m))
	}
	r := factors[0].Cols
	out := tensor.NewMatrix(t.Dims[m], r)
	row := make([]float64, r)
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		c := t.Coord(k)
		for j := range row {
			row[j] = t.Vals[k]
		}
		for mm := 0; mm < d; mm++ {
			if mm == m {
				continue
			}
			f := factors[mm].Row(int(c[mm]))
			for j := range row {
				row[j] *= f[j]
			}
		}
		dst := out.Row(int(c[m]))
		for j := range dst {
			dst[j] += row[j]
		}
	}
	return out
}

// LevelFactors reorders mode-indexed factor matrices into CSF level order:
// result[l] = factors[perm[l]]. The returned slice shares the underlying
// matrices.
func LevelFactors(factors []*tensor.Matrix, perm []int) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(perm))
	LevelFactorsInto(out, factors, perm)
	return out
}

// LevelFactorsInto is LevelFactors writing into a caller-provided slice of
// length len(perm), for workspaces that relevel factors on every Compute
// call without allocating.
func LevelFactorsInto(dst []*tensor.Matrix, factors []*tensor.Matrix, perm []int) {
	if len(dst) != len(perm) {
		panic(fmt.Sprintf("kernels: LevelFactorsInto dst length %d, want %d", len(dst), len(perm)))
	}
	for l, m := range perm {
		dst[l] = factors[m]
	}
}

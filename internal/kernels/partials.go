package kernels

import (
	"fmt"

	"stef/internal/csf"
	"stef/internal/tensor"
)

// Partials holds the memoized partial MTTKRP results P^(l) for one CSF
// tree: one R-vector per fiber at every saved level. Saved levels are
// restricted to 1..d-2 — P^(0) is the mode-0 MTTKRP output itself and
// P^(d-1) is the tensor.
type Partials struct {
	// Save[l] reports whether P^(l) is materialised.
	Save []bool
	// P[l] is a NumFibers(l)×R matrix when Save[l], nil otherwise.
	P []*tensor.Matrix
}

// NewPartials allocates storage for the saved levels given by save (indexed
// by CSF level; entries outside 1..d-2 must be false).
func NewPartials(tree *csf.Tree, rank int, save []bool) *Partials {
	d := tree.Order()
	if len(save) != d {
		panic(fmt.Sprintf("kernels: save length %d, want %d", len(save), d))
	}
	p := &Partials{Save: append([]bool(nil), save...), P: make([]*tensor.Matrix, d)}
	for l, s := range save {
		if !s {
			continue
		}
		if l < 1 || l > d-2 {
			//lint:allow hotpath-alloc cold validation panic, once per Partials construction
			panic(fmt.Sprintf("kernels: level %d cannot be memoized (order %d)", l, d))
		}
		p.P[l] = tensor.NewMatrix(tree.NumFibers(l), rank)
	}
	return p
}

// NoPartials returns a Partials that saves nothing, for engines that always
// recompute.
func NoPartials(order int) *Partials {
	return &Partials{Save: make([]bool, order), P: make([]*tensor.Matrix, order)}
}

// SourceLevel returns the level the mode-u MTTKRP should read from: the
// smallest saved level >= u, or d-1 (the tensor itself) when no saved level
// helps. For u == d-1 only the tensor can serve as the source.
func (p *Partials) SourceLevel(u int) int {
	d := len(p.Save)
	if u >= d-1 {
		return d - 1
	}
	for l := u; l <= d-2; l++ {
		if p.Save[l] {
			return l
		}
	}
	return d - 1
}

// Bytes returns the memory footprint of all saved partial results, the
// quantity reported in Table II of the paper.
func (p *Partials) Bytes() int64 {
	var b int64
	for _, m := range p.P {
		if m != nil {
			b += int64(len(m.Data)) * 8
		}
	}
	return b
}

package kernels

import (
	"fmt"
	"testing"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// Benchmarks comparing the generated unrolled kernels against the generic
// recursion — the ablation for the code-generation design choice.
func BenchmarkSpecializedVsGeneric(b *testing.B) {
	for _, dims := range [][]int{{200, 4000, 9000}, {150, 800, 3000, 400}} {
		tt := tensor.Random(dims, 60000, []float64{1.2, 0, 0, 0}[:len(dims)], 3)
		d := len(dims)
		tree := csf.Build(tt, nil)
		const rank = 32
		factors := tensor.RandomFactors(tt.Dims, rank, 1)
		lf := LevelFactors(factors, tree.Perm())
		part := sched.NewPartition(tree, 4)
		save := make([]bool, d)
		save[1] = true
		partials := NewPartials(tree, rank, save)
		out0 := tensor.NewMatrix(tree.Dim(0), rank)
		RootMTTKRP(tree, lf, out0, partials, part)

		for u := 1; u < d; u++ {
			src := partials.SourceLevel(u)
			buf := NewOutBuf(tree.Dim(u), rank, 4, 0)
			sc := NewScratch(d, rank, 4)
			b.Run(fmt.Sprintf("d%d/mode%d/specialized", d, u), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					buf.Reset()
					ModeMTTKRPWith(tree, lf, u, partials, buf, part, sc)
				}
			})
			b.Run(fmt.Sprintf("d%d/mode%d/generic", d, u), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					buf.Reset()
					modeGeneric(tree, lf, u, src, partials, buf, part, sc)
				}
			})
		}
	}
}

//go:generate sh -c "go run stef/cmd/kernelgen -d 3 > modes3_gen.go"
//go:generate sh -c "go run stef/cmd/kernelgen -d 4 > modes4_gen.go"
//go:generate sh -c "go run stef/cmd/kernelgen -d 5 > modes5_gen.go"
//go:generate sh -c "go run stef/cmd/kernelgen -vec > vec_gen.go"
//go:generate sh -c "go run stef/cmd/kernelgen -shape > ../lint/gates/shape_gen.go"

package kernels

import (
	"fmt"

	"stef/internal/csf"
	"stef/internal/par"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// ModeMTTKRP computes the non-root MTTKRP with a freshly allocated scratch;
// see ModeMTTKRPWith. It is the convenient form for one-shot callers and
// tests; engines on the repeated-solve path pass a pooled scratch instead.
func ModeMTTKRP(tree *csf.Tree, factors []*tensor.Matrix, u int, partials *Partials, buf *OutBuf, part *sched.Partition) {
	ModeMTTKRPWith(tree, factors, u, partials, buf, part, NewScratch(tree.Order(), factors[0].Cols, part.T))
}

// ModeMTTKRPWith computes the MTTKRP for CSF level u (0 < u <= d-1) into
// buf, reading the deepest useful source: the memoized P^(src) when
// src = partials.SourceLevel(u) < d-1, or the tensor leaves otherwise.
// This is Algorithm 4/5 of the paper for u > 0, covering Algorithms 6
// (src == u), 7 (u < src < d-1) and 8 (src == d-1) as special cases.
// sc supplies the per-thread accumulators; it must satisfy
// NewScratch(tree.Order(), R, part.T) or larger.
//
// The Khatri-Rao row k_{u-1} is built going down levels 0..u-1; below
// level u, partial results t_l are accumulated upward from the source
// level. Work is partitioned by the tree's source-level fibers: each
// thread processes exactly the source fibers it owns, so no contribution
// is duplicated; scattered output rows are combined through buf (private
// copies or atomic adds). The caller must Reset buf beforehand and Reduce
// it afterwards.
func ModeMTTKRPWith(tree *csf.Tree, factors []*tensor.Matrix, u int, partials *Partials, buf *OutBuf, part *sched.Partition, sc *Scratch) {
	lifeEnter(tree, sc)
	d := tree.Order()
	if u <= 0 || u >= d {
		panic(fmt.Sprintf("kernels: ModeMTTKRP mode %d out of range (order %d); use RootMTTKRP for mode 0", u, d))
	}
	sc.check(d, factors[0].Cols, part.T)
	src := partials.SourceLevel(u)

	// Dispatch to the unrolled specialisations for the common orders;
	// the generic recursion below is the semantic reference and handles
	// every other case.
	sc.shadow.begin(part)
	switch {
	case d == 3 && mode3Dispatch(tree, factors, u, src, partials, buf, part, sc):
	case d == 4 && mode4Dispatch(tree, factors, u, src, partials, buf, part, sc):
	case d == 5 && mode5Dispatch(tree, factors, u, src, partials, buf, part, sc):
	default:
		modeGeneric(tree, factors, u, src, partials, buf, part, sc)
	}
	sc.shadow.end()
}

// modeGeneric is the order-agnostic recursive kernel behind ModeMTTKRP; it
// is kept callable directly so tests can cross-check the specialisations.
func modeGeneric(tree *csf.Tree, factors []*tensor.Matrix, u, src int, partials *Partials, buf *OutBuf, part *sched.Partition, sc *Scratch) {
	d := tree.Order()
	par.Do(part.T, func(th int) {
		s := part.Start[th]
		e := part.Own[th+1]
		oLo, oHi := part.OwnedRange(th, src)
		if oLo >= oHi {
			return
		}
		// Resolve the output handle once: the per-thread hot slab / remap /
		// replica indirection stays out of the emission loops.
		ob := buf.Thread(th)
		// kv[l] holds k_l for the current path (levels 1..u-1; k_0
		// aliases a factor row). tmp[l] accumulates t_l for levels
		// u..src-1. Both draw their rank vectors from the scratch; the
		// slot ranges never overlap.
		kv := make([][]float64, u)
		for l := 1; l < u; l++ {
			kv[l] = sc.vec(th, l) //gate:allow bounds scratch slots are sized to the order
		}
		tmp := make([][]float64, src)
		for l := u; l < src; l++ {
			tmp[l] = sc.vec(th, l) //gate:allow bounds scratch slots are sized to the order
		}
		// Rebind the rank-vector primitives to the scratch's R-specialized
		// set (vec.go); the names shadow the generic package functions on
		// purpose.
		zero, addScaled, hadamardAccum, hadamardInto := sc.ops.zero, sc.ops.addScaled, sc.ops.hadamardAccum, sc.ops.hadamardInto

		// down computes t_l for node n at level l (u <= l < src) by
		// contracting everything below it down to the source level.
		var down func(l int, n int64) []float64
		down = func(l int, n int64) []float64 {
			tl := tmp[l]
			zero(tl)
			var cLo, cHi int64
			if l+1 == src {
				cLo = maxI64(tree.PtrLevel(l)[n], oLo)
				cHi = minI64(tree.PtrLevel(l)[n+1], oHi)
			} else {
				cLo = maxI64(tree.PtrLevel(l)[n], s[l+1])
				cHi = minI64(tree.PtrLevel(l)[n+1], e[l+1])
			}
			switch {
			case l+1 == src && src == d-1:
				for k := cLo; k < cHi; k++ {
					sc.shadow.own(th, d-1, k)
					addScaled(tl, tree.ValsLevel()[k], factors[d-1].Row(int(tree.FidLevel(d-1)[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
				}
			case l+1 == src:
				for c := cLo; c < cHi; c++ {
					sc.shadow.own(th, src, c)
					hadamardAccum(tl, partials.P[src].Row(int(c)), factors[src].Row(int(tree.FidLevel(src)[c]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
				}
			default:
				for c := cLo; c < cHi; c++ {
					hadamardAccum(tl, down(l+1, c), factors[l+1].Row(int(tree.FidLevel(l+1)[c]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
				}
			}
			return tl
		}

		// walk descends levels 0..u-1 building the KRP row, then emits
		// output contributions at level u.
		var walk func(l int, n int64, kprev []float64)
		walk = func(l int, n int64, kprev []float64) {
			fid := int(tree.FidLevel(l)[n])
			var kcur []float64
			if l == 0 {
				kcur = factors[0].Row(fid)
			} else {
				kcur = kv[l]
				hadamardInto(kcur, kprev, factors[l].Row(fid))
			}
			var cLo, cHi int64
			if l+1 == src {
				cLo = maxI64(tree.PtrLevel(l)[n], oLo)
				cHi = minI64(tree.PtrLevel(l)[n+1], oHi)
			} else {
				cLo = maxI64(tree.PtrLevel(l)[n], s[l+1])
				cHi = minI64(tree.PtrLevel(l)[n+1], e[l+1])
			}
			switch {
			case l+1 < u:
				for c := cLo; c < cHi; c++ {
					walk(l+1, c, kcur)
				}
			case u == d-1:
				// Leaf mode: pure Khatri-Rao push-down; l+1 is
				// the leaf level (src == d-1 here).
				for k := cLo; k < cHi; k++ {
					sc.shadow.own(th, d-1, k)
					ob.AddScaled(int(tree.FidLevel(d-1)[k]), tree.ValsLevel()[k], kcur) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
				}
			case u == src:
				// Memoized at exactly level u: one MTTV per
				// owned fiber (Algorithm 6).
				for c := cLo; c < cHi; c++ {
					sc.shadow.own(th, src, c)
					ob.AddHadamard(int(tree.FidLevel(u)[c]), kcur, partials.P[u].Row(int(c))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
				}
			default:
				// Recompute t_u below level u from the source
				// (Algorithms 7 and 8).
				for c := cLo; c < cHi; c++ {
					ob.AddHadamard(int(tree.FidLevel(u)[c]), kcur, down(u, c)) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
				}
			}
		}

		rLo := s[0]
		rHi := minI64(int64(tree.NumFibers(0)), e[0])
		for n := rLo; n < rHi; n++ {
			walk(0, n, nil)
		}
	})
}

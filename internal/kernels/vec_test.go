package kernels

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"stef/internal/tensor"
)

func TestVecOps(t *testing.T) {
	dst := []float64{1, 2, 3}
	addScaled(dst, 2, []float64{10, 20, 30})
	for i, want := range []float64{21, 42, 63} {
		if dst[i] != want {
			t.Fatalf("addScaled[%d] = %g, want %g", i, dst[i], want)
		}
	}
	hadamardAccum(dst, []float64{1, 1, 1}, []float64{1, 2, 3})
	for i, want := range []float64{22, 44, 66} {
		if dst[i] != want {
			t.Fatalf("hadamardAccum[%d] = %g, want %g", i, dst[i], want)
		}
	}
	hadamardInto(dst, []float64{2, 2, 2}, []float64{3, 4, 5})
	for i, want := range []float64{6, 8, 10} {
		if dst[i] != want {
			t.Fatalf("hadamardInto[%d] = %g, want %g", i, dst[i], want)
		}
	}
	zero(dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("zero left dst[%d] = %g", i, v)
		}
	}
}

func TestVecOpsQuick(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(n8)%32
		a := make([]float64, n)
		b := make([]float64, n)
		dst := make([]float64, n)
		want := make([]float64, n)
		s := rng.NormFloat64()
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			dst[i] = rng.NormFloat64()
			want[i] = dst[i] + s*a[i] + a[i]*b[i]
		}
		addScaled(dst, s, a)
		hadamardAccum(dst, a, b)
		for i := range dst {
			if math.Abs(dst[i]-want[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicAddFloatConcurrent hammers one OutBuf cell from many goroutines
// and checks nothing is lost — the property that makes the CAS scatter path
// safe without locks.
func TestAtomicAddFloatConcurrent(t *testing.T) {
	const (
		workers = 8
		adds    = 5000
	)
	b := NewOutBuf(1, 2, workers, 1) // force atomic path
	if b.Privatized() {
		t.Fatal("expected atomic buffer")
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				b.AddScaled(w, 0, 1, []float64{1, 0.5})
			}
		}(w)
	}
	wg.Wait()
	out := tensor.NewMatrix(1, 2)
	b.Reduce(out)
	if out.At(0, 0) != workers*adds {
		t.Fatalf("lost updates: %g, want %d", out.At(0, 0), workers*adds)
	}
	if out.At(0, 1) != workers*adds/2 {
		t.Fatalf("lost updates in col 1: %g", out.At(0, 1))
	}
}

func TestAtomicAddSkipsZero(t *testing.T) {
	b := NewOutBuf(1, 1, 2, 1)
	b.AddScaled(0, 0, 0, []float64{123}) // scale 0: contributes nothing
	b.AddHadamard(1, 0, []float64{0}, []float64{5})
	out := tensor.NewMatrix(1, 1)
	b.Reduce(out)
	if out.At(0, 0) != 0 {
		t.Fatalf("zero adds changed the cell: %g", out.At(0, 0))
	}
}

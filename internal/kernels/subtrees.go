package kernels

import (
	"stef/internal/csf"
	"stef/internal/tensor"
)

// RootMTTKRPSubtrees sequentially accumulates the mode-0 MTTKRP
// contributions of root slices [lo, hi) into out (which is NOT zeroed) and
// stores memoized partials for those subtrees. It is the building block for
// chunk-scheduled engines (e.g. the TACO-style baseline), where a dynamic
// scheduler hands out disjoint slice ranges to workers: root rows are
// disjoint across slices, so concurrent calls on disjoint ranges are safe.
func RootMTTKRPSubtrees(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, lo, hi int64) {
	d := tree.Order()
	r := factors[0].Cols
	tmp := make([][]float64, d-1)
	for l := range tmp {
		//gate:allow escape,bounds per-call accumulator setup, once per subtree range, not per-nnz
		tmp[l] = make([]float64, r) //lint:allow hotpath-alloc per-call setup, once per subtree range
	}
	// Rebind the rank-vector primitives to the R-specialized set (vec.go);
	// the names shadow the generic package functions on purpose.
	ops := opsFor(r)
	zero, addScaled, hadamardAccum := ops.zero, ops.addScaled, ops.hadamardAccum
	var rec func(l int, n int64)
	rec = func(l int, n int64) {
		tl := tmp[l]
		zero(tl)
		cLo, cHi := tree.PtrLevel(l)[n], tree.PtrLevel(l)[n+1]
		if l+1 == d-1 {
			for k := cLo; k < cHi; k++ {
				addScaled(tl, tree.ValsLevel()[k], factors[d-1].Row(int(tree.FidLevel(d-1)[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
			}
			return
		}
		for c := cLo; c < cHi; c++ {
			rec(l+1, c)
			child := tmp[l+1]       //gate:allow bounds level arrays are indexed by the recursion depth, sized to the order
			if partials.Save[l+1] { //gate:allow bounds level arrays are indexed by the recursion depth, sized to the order
				copy(partials.P[l+1].Row(int(c)), child) //gate:allow bounds memoized partial row addressed by node id, data-dependent
			}
			hadamardAccum(tl, child, factors[l+1].Row(int(tree.FidLevel(l+1)[c]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
		}
	}
	for n := lo; n < hi; n++ {
		rec(0, n)
		dst := out.Row(int(tree.FidLevel(0)[n])) //gate:allow bounds output row addressed by stored fiber id, data-dependent
		for j := range dst {
			dst[j] += tmp[0][j] //gate:allow bounds accumulator and output rows share rank length, unprovable across slices
		}
	}
}

// ModeMTTKRPSubtrees sequentially accumulates the level-u MTTKRP
// contributions of root slices [lo, hi) into out (NOT zeroed; the caller
// privatizes or serialises writes). It reads partials.SourceLevel(u) like
// ModeMTTKRP.
func ModeMTTKRPSubtrees(tree *csf.Tree, factors []*tensor.Matrix, u int, partials *Partials, out *tensor.Matrix, lo, hi int64) {
	d := tree.Order()
	src := partials.SourceLevel(u)
	r := factors[0].Cols
	kv := make([][]float64, u)
	for l := 1; l < u; l++ {
		//gate:allow escape,bounds per-call accumulator setup, once per subtree range, not per-nnz
		kv[l] = make([]float64, r) //lint:allow hotpath-alloc per-call setup, once per subtree range
	}
	tmp := make([][]float64, src)
	for l := u; l < src; l++ {
		//gate:allow escape,bounds per-call accumulator setup, once per subtree range, not per-nnz
		tmp[l] = make([]float64, r) //lint:allow hotpath-alloc per-call setup, once per subtree range
	}
	// Rebind the rank-vector primitives to the R-specialized set (vec.go);
	// the names shadow the generic package functions on purpose.
	ops := opsFor(r)
	zero, addScaled, hadamardAccum, hadamardInto := ops.zero, ops.addScaled, ops.hadamardAccum, ops.hadamardInto
	var down func(l int, n int64) []float64
	down = func(l int, n int64) []float64 {
		tl := tmp[l]
		zero(tl)
		cLo, cHi := tree.PtrLevel(l)[n], tree.PtrLevel(l)[n+1]
		switch {
		case l+1 == src && src == d-1:
			for k := cLo; k < cHi; k++ {
				addScaled(tl, tree.ValsLevel()[k], factors[d-1].Row(int(tree.FidLevel(d-1)[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
			}
		case l+1 == src:
			for c := cLo; c < cHi; c++ {
				hadamardAccum(tl, partials.P[src].Row(int(c)), factors[src].Row(int(tree.FidLevel(src)[c]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
		default:
			for c := cLo; c < cHi; c++ {
				hadamardAccum(tl, down(l+1, c), factors[l+1].Row(int(tree.FidLevel(l+1)[c]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
		}
		return tl
	}
	var walk func(l int, n int64, kprev []float64)
	walk = func(l int, n int64, kprev []float64) {
		fid := int(tree.FidLevel(l)[n])
		var kcur []float64
		if l == 0 {
			kcur = factors[0].Row(fid)
		} else {
			kcur = kv[l]
			hadamardInto(kcur, kprev, factors[l].Row(fid))
		}
		cLo, cHi := tree.PtrLevel(l)[n], tree.PtrLevel(l)[n+1]
		switch {
		case l+1 < u:
			for c := cLo; c < cHi; c++ {
				walk(l+1, c, kcur)
			}
		case u == d-1:
			for k := cLo; k < cHi; k++ {
				addScaled(out.Row(int(tree.FidLevel(d-1)[k])), tree.ValsLevel()[k], kcur) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
			}
		case u == src:
			for c := cLo; c < cHi; c++ {
				hadamardAccum(out.Row(int(tree.FidLevel(u)[c])), kcur, partials.P[u].Row(int(c))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
		default:
			for c := cLo; c < cHi; c++ {
				hadamardAccum(out.Row(int(tree.FidLevel(u)[c])), kcur, down(u, c)) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
		}
	}
	for n := lo; n < hi; n++ {
		walk(0, n, nil)
	}
}

package kernels

import (
	"fmt"
	"math"
	"sync/atomic"

	"stef/internal/par"
	"stef/internal/tensor"
)

// DefaultPrivatizeMaxElems bounds the total element count (rows×cols×T) up
// to which non-root MTTKRP outputs are privatized per thread. Above the
// bound, threads scatter with lock-free compare-and-swap adds instead —
// the paper's "either atomic updates are needed, or each thread needs to
// hold its own copy" (Section III-B), with the choice made by footprint.
const DefaultPrivatizeMaxElems = 1 << 24

// OutBuf accumulates a scattered MTTKRP output matrix from T threads. It
// either holds one private copy per thread (reduced at the end) or a shared
// atomic accumulation buffer, depending on the footprint bound.
type OutBuf struct {
	rows, cols int
	t          int
	priv       []*tensor.Matrix
	shared     []uint64 // float64 bit patterns, used when priv == nil
}

// NewOutBuf returns an accumulation buffer for a rows×cols output shared by
// t threads. maxPrivElems <= 0 selects DefaultPrivatizeMaxElems.
func NewOutBuf(rows, cols, t int, maxPrivElems int64) *OutBuf {
	if maxPrivElems <= 0 {
		maxPrivElems = DefaultPrivatizeMaxElems
	}
	b := &OutBuf{rows: rows, cols: cols, t: t}
	if t == 1 || int64(rows)*int64(cols)*int64(t) <= maxPrivElems {
		b.priv = make([]*tensor.Matrix, t)
		for th := range b.priv {
			b.priv[th] = tensor.NewMatrix(rows, cols)
		}
	} else {
		b.shared = make([]uint64, rows*cols)
	}
	return b
}

// Privatized reports whether the buffer holds per-thread copies.
func (b *OutBuf) Privatized() bool { return b.priv != nil }

// Reset zeroes the buffer for reuse.
func (b *OutBuf) Reset() {
	if b.priv != nil {
		for _, m := range b.priv {
			m.Zero()
		}
		return
	}
	for i := range b.shared {
		b.shared[i] = 0
	}
}

// AddHadamard accumulates a ⊙ bv into row `row` on behalf of thread th.
func (b *OutBuf) AddHadamard(th, row int, a, bv []float64) {
	if b.priv != nil {
		hadamardAccum(b.priv[th].Row(row), a, bv)
		return
	}
	base := row * b.cols
	for j := range a {
		atomicAddFloat(&b.shared[base+j], a[j]*bv[j])
	}
}

// AddScaled accumulates s*src into row `row` on behalf of thread th.
func (b *OutBuf) AddScaled(th, row int, s float64, src []float64) {
	if b.priv != nil {
		addScaled(b.priv[th].Row(row), s, src)
		return
	}
	base := row * b.cols
	for j, v := range src {
		atomicAddFloat(&b.shared[base+j], s*v)
	}
}

// Reduce sums the per-thread state into out, overwriting it. The reduction
// itself runs with t goroutines over row blocks; the single-threaded case
// avoids constructing the par.Blocks closure entirely (a closure passed to
// par escapes even when run inline), keeping pooled solves allocation-free.
func (b *OutBuf) Reduce(out *tensor.Matrix) {
	if out.Rows != b.rows || out.Cols != b.cols {
		panic(fmt.Sprintf("kernels: Reduce into %dx%d, want %dx%d", out.Rows, out.Cols, b.rows, b.cols))
	}
	if b.t == 1 {
		if b.priv != nil {
			out.CopyFrom(b.priv[0])
			return
		}
		for i := range b.shared {
			out.Data[i] = math.Float64frombits(b.shared[i])
		}
		return
	}
	if b.priv != nil {
		par.Blocks(b.rows, b.t, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				dst := out.Row(i)
				copy(dst, b.priv[0].Row(i))
				for th := 1; th < b.t; th++ {
					src := b.priv[th].Row(i)
					for j := range dst {
						dst[j] += src[j]
					}
				}
			}
		})
		return
	}
	par.Blocks(len(b.shared), b.t, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = math.Float64frombits(b.shared[i])
		}
	})
}

// atomicAddFloat adds v to the float64 stored as bits in *p with a CAS
// loop. Adding zero is skipped, which matters for very sparse scatters.
func atomicAddFloat(p *uint64, v float64) {
	if v == 0 {
		return
	}
	for {
		old := atomic.LoadUint64(p)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}

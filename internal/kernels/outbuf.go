package kernels

import (
	"fmt"
	"math"
	"sync/atomic"

	"stef/internal/par"
	"stef/internal/tensor"
)

// DefaultPrivatizeMaxElems bounds the total element count (rows×cols×T) up
// to which the legacy footprint rule privatizes non-root MTTKRP outputs per
// thread. Above the bound, threads scatter with lock-free compare-and-swap
// adds instead — the paper's "either atomic updates are needed, or each
// thread needs to hold its own copy" (Section III-B). Planned buffers
// (NewOutBufPlanned) replace this blunt binary with the sparsity-aware
// hybrid strategy chosen by the data-movement model.
const DefaultPrivatizeMaxElems = 1 << 24

// AccumStrategy selects how an OutBuf combines the scattered row
// contributions of T threads.
type AccumStrategy uint8

const (
	// AccumPriv gives every thread a full private copy of the output,
	// reduced at the end (the paper's privatization extreme).
	AccumPriv AccumStrategy = iota
	// AccumHybrid privatizes only the hot rows (dense per-thread replicas
	// indexed through a compact remap); the cold tail goes straight to the
	// shared buffer — plain stores where the partition proves a single
	// writer, CAS adds otherwise.
	AccumHybrid
	// AccumAtomic scatters every row into one shared buffer with CAS adds
	// (the paper's atomic extreme).
	AccumAtomic
)

func (s AccumStrategy) String() string {
	switch s {
	case AccumPriv:
		return "priv"
	case AccumHybrid:
		return "hybrid"
	case AccumAtomic:
		return "atomic"
	}
	return fmt.Sprintf("accum(%d)", uint8(s))
}

// Remap sentinels. Non-negative entries are strategy-specific indices: the
// hot-row slot under AccumHybrid, the single writing thread under
// AccumPriv.
const (
	// RemapColdDirect marks a touched row with exactly one writing thread:
	// plain (non-atomic) stores into the shared buffer are safe.
	RemapColdDirect int32 = -1
	// RemapColdCAS marks a touched row with two or more writing threads
	// outside the hot set: adds must go through the CAS loop. Under
	// AccumPriv the same value marks a multi-writer row whose reduction
	// must sum every replica.
	RemapColdCAS int32 = -2
	// RemapUntouched marks a row no thread ever writes.
	RemapUntouched int32 = -3
)

// OutBuf accumulates a scattered MTTKRP output matrix from T threads. A
// buffer is either *planned* — built from an AccumPlan whose counting pass
// fixed the per-row mechanics (hot replicas, direct stores, CAS) and whose
// touched-row journals make Reset and Reduce proportional to the rows
// actually written — or *legacy*, using the binary footprint rule
// (full privatization below DefaultPrivatizeMaxElems, CAS above), which the
// baseline engines keep.
type OutBuf struct {
	rows, cols int
	t          int
	plan       *AccumPlan       // nil for legacy footprint-rule buffers
	priv       []*tensor.Matrix // AccumPriv / legacy privatized
	shared     []uint64         // float64 bit patterns: atomic + hybrid cold rows
	hot        []float64        // AccumHybrid: T contiguous k×cols replicas
	hotK       int              // hot rows per replica
	ops        vecOps           // rank-vector primitives, R-specialized when cols matches
	shadow     outbufShadow     // write-ownership oracle (-tags shadowtrace)
}

// NewOutBuf returns a legacy accumulation buffer for a rows×cols output
// shared by t threads, privatized iff rows·cols·t fits maxPrivElems
// (<= 0 selects DefaultPrivatizeMaxElems). The footprint is computed in
// int64 so huge outputs cannot overflow the check on 32-bit platforms.
func NewOutBuf(rows, cols, t int, maxPrivElems int64) *OutBuf {
	if maxPrivElems <= 0 {
		maxPrivElems = DefaultPrivatizeMaxElems
	}
	if rows < 0 || cols < 0 || t < 1 {
		panic(fmt.Sprintf("kernels: NewOutBuf(rows=%d, cols=%d, t=%d)", rows, cols, t))
	}
	b := &OutBuf{rows: rows, cols: cols, t: t, ops: opsFor(cols)}
	elems := int64(rows) * int64(cols)
	if t == 1 || elems*int64(t) <= maxPrivElems {
		b.priv = make([]*tensor.Matrix, t)
		for th := range b.priv {
			b.priv[th] = tensor.NewMatrix(rows, cols)
		}
		return b
	}
	b.shared = makeShared(rows, cols)
	return b
}

// NewOutBufPlanned returns an accumulation buffer executing the given plan.
// The plan is shared, read-only; the buffer holds the mutable slabs, so one
// plan serves any number of concurrent workspaces.
func NewOutBufPlanned(ap *AccumPlan) *OutBuf {
	b := &OutBuf{rows: ap.Rows, cols: ap.Cols, t: ap.T, plan: ap, ops: opsFor(ap.Cols)}
	switch ap.Strategy {
	case AccumPriv:
		b.priv = make([]*tensor.Matrix, ap.T)
		for th := range b.priv {
			b.priv[th] = tensor.NewMatrix(ap.Rows, ap.Cols)
		}
	case AccumHybrid:
		b.shared = makeShared(ap.Rows, ap.Cols)
		b.hotK = ap.HotK()
		b.hot = make([]float64, ap.T*b.hotK*ap.Cols)
	case AccumAtomic:
		b.shared = makeShared(ap.Rows, ap.Cols)
	default:
		panic(fmt.Sprintf("kernels: NewOutBufPlanned: unknown strategy %v", ap.Strategy))
	}
	return b
}

// makeShared allocates the shared bit-pattern buffer, checking the int64
// footprint before converting to a length.
func makeShared(rows, cols int) []uint64 {
	elems := int64(rows) * int64(cols)
	if int64(int(elems)) != elems || elems < 0 {
		panic(fmt.Sprintf("kernels: output buffer %dx%d overflows the address space", rows, cols))
	}
	return make([]uint64, int(elems))
}

// Plan returns the accumulation plan the buffer executes (nil for legacy
// footprint-rule buffers).
func (b *OutBuf) Plan() *AccumPlan { return b.plan }

// Privatized reports whether the buffer holds full per-thread copies.
func (b *OutBuf) Privatized() bool { return b.priv != nil }

// Strategy returns the buffer's accumulation strategy. Legacy buffers
// report the binary choice they were built with.
func (b *OutBuf) Strategy() AccumStrategy {
	if b.plan != nil {
		return b.plan.Strategy
	}
	if b.priv != nil {
		return AccumPriv
	}
	return AccumAtomic
}

// OutBufThread is thread th's write handle on an OutBuf: the per-thread
// indirection (private replica base, hot slab, remap) is resolved once at
// kernel-launch time so the per-nonzero AddScaled/AddHadamard calls stay
// branch-light. The handle is a small value; kernels hoist it out of their
// fiber loops.
type OutBufThread struct {
	b      *OutBuf
	th     int
	cols   int
	ops    vecOps    // R-specialized primitives, resolved at construction
	priv   []float64 // private replica backing (AccumPriv / legacy)
	hot    []float64 // thread's hot-row slab (AccumHybrid; may be empty)
	remap  []int32   // row classification (AccumHybrid only)
	shared []uint64
}

// Thread returns the write handle for thread th.
func (b *OutBuf) Thread(th int) OutBufThread {
	o := OutBufThread{b: b, th: th, cols: b.cols, ops: b.ops, shared: b.shared}
	if b.priv != nil {
		o.priv = b.priv[th].Data
		return o
	}
	if b.plan != nil && b.plan.Strategy == AccumHybrid {
		o.remap = b.plan.Remap
		if b.hotK > 0 {
			n := b.hotK * b.cols
			o.hot = b.hot[th*n : (th+1)*n]
		}
	}
	return o
}

// AddScaled accumulates s*src into row `row`.
func (o *OutBufThread) AddScaled(row int, s float64, src []float64) {
	if o.priv != nil {
		base := row * o.cols
		o.ops.addScaled(o.priv[base:base+o.cols], s, src) //gate:allow bounds row index is a stored fiber id, data-dependent
		return
	}
	if o.remap != nil {
		slot := o.remap[row] //gate:allow bounds row index is a stored fiber id, data-dependent
		if slot >= 0 {
			o.b.shadowHot(o.th, row, slot)
			base := int(slot) * o.cols
			o.ops.addScaled(o.hot[base:base+o.cols], s, src) //gate:allow bounds hot slot from the remap, bounded by the plan's hot count
			return
		}
		if slot == RemapColdDirect {
			o.b.shadowDirect(o.th, row)
			base := row * o.cols
			directAddScaled(o.shared[base:base+o.cols], s, src) //gate:allow bounds row index is a stored fiber id, data-dependent
			return
		}
	}
	base := row * o.cols
	atomicAddScaled(o.shared[base:base+o.cols], s, src) //gate:allow bounds row index is a stored fiber id, data-dependent
}

// AddHadamard accumulates a ⊙ bv into row `row`.
func (o *OutBufThread) AddHadamard(row int, a, bv []float64) {
	if o.priv != nil {
		base := row * o.cols
		o.ops.hadamardAccum(o.priv[base:base+o.cols], a, bv) //gate:allow bounds row index is a stored fiber id, data-dependent
		return
	}
	if o.remap != nil {
		slot := o.remap[row] //gate:allow bounds row index is a stored fiber id, data-dependent
		if slot >= 0 {
			o.b.shadowHot(o.th, row, slot)
			base := int(slot) * o.cols
			o.ops.hadamardAccum(o.hot[base:base+o.cols], a, bv) //gate:allow bounds hot slot from the remap, bounded by the plan's hot count
			return
		}
		if slot == RemapColdDirect {
			o.b.shadowDirect(o.th, row)
			base := row * o.cols
			directAddHadamard(o.shared[base:base+o.cols], a, bv) //gate:allow bounds row index is a stored fiber id, data-dependent
			return
		}
	}
	base := row * o.cols
	atomicAddHadamard(o.shared[base:base+o.cols], a, bv) //gate:allow bounds row index is a stored fiber id, data-dependent
}

// AddHadamard accumulates a ⊙ bv into row `row` on behalf of thread th.
// Engines with per-call scatter (the COO baselines) use this form; the CSF
// kernels hoist a Thread handle instead.
func (b *OutBuf) AddHadamard(th, row int, a, bv []float64) {
	o := b.Thread(th)
	o.AddHadamard(row, a, bv)
}

// AddScaled accumulates s*src into row `row` on behalf of thread th.
func (b *OutBuf) AddScaled(th, row int, s float64, src []float64) {
	o := b.Thread(th)
	o.AddScaled(row, s, src)
}

// Reset zeroes the buffer for reuse. Planned buffers clear only the rows
// their journals say were written — per-thread journals for private
// replicas, the cold touched list for the hybrid's shared region — instead
// of the full rows×cols×T footprint; the work runs on T threads.
func (b *OutBuf) Reset() {
	b.shadowReset()
	if b.plan == nil {
		b.resetLegacy()
		return
	}
	switch b.plan.Strategy {
	case AccumPriv:
		if b.t == 1 {
			b.resetPriv(0)
			return
		}
		par.Do(b.t, func(th int) { b.resetPriv(th) })
	case AccumHybrid:
		if b.t == 1 {
			clear(b.hot)
			b.resetCold(0, len(b.plan.Cold))
			return
		}
		par.Do(b.t, func(th int) {
			n := b.hotK * b.cols
			clear(b.hot[th*n : (th+1)*n])
			lo := th * len(b.plan.Cold) / b.t
			hi := (th + 1) * len(b.plan.Cold) / b.t
			b.resetCold(lo, hi)
		})
	case AccumAtomic:
		if b.t == 1 {
			b.resetTouched(0, len(b.plan.Touched))
			return
		}
		par.Blocks(len(b.plan.Touched), b.t, func(_, lo, hi int) { b.resetTouched(lo, hi) })
	}
}

// resetLegacy zeroes a footprint-rule buffer in full, on T threads.
func (b *OutBuf) resetLegacy() {
	if b.priv != nil {
		if b.t == 1 {
			clear(b.priv[0].Data)
			return
		}
		par.Do(b.t, func(th int) { clear(b.priv[th].Data) })
		return
	}
	clear(b.shared)
}

// resetPriv clears thread th's replica along its touched-row journal.
func (b *OutBuf) resetPriv(th int) {
	data := b.priv[th].Data
	for _, r := range b.plan.PerThread[th] {
		base := int(r) * b.cols
		clear(data[base : base+b.cols]) //gate:allow bounds journal rows are data-dependent
	}
}

// resetCold clears the journalled cold rows Cold[lo:hi] of the shared
// region.
func (b *OutBuf) resetCold(lo, hi int) {
	for _, r := range b.plan.Cold[lo:hi] {
		base := int(r) * b.cols
		clear(b.shared[base : base+b.cols]) //gate:allow bounds journal rows are data-dependent
	}
}

// resetTouched clears the journalled rows Touched[lo:hi] of the shared
// region.
func (b *OutBuf) resetTouched(lo, hi int) {
	for _, r := range b.plan.Touched[lo:hi] {
		base := int(r) * b.cols
		clear(b.shared[base : base+b.cols]) //gate:allow bounds journal rows are data-dependent
	}
}

// Reduce sums the per-thread state into out, overwriting it, on T threads.
// Planned buffers read only the rows the plan proves touched: single-writer
// rows copy exactly one replica, hot rows are folded with a parallel tree
// combine, cold rows stream out of the shared region, untouched rows are
// zeroed. Call Reduce once per kernel launch — the hot-slab tree combine
// folds replicas in place.
func (b *OutBuf) Reduce(out *tensor.Matrix) {
	if out.Rows != b.rows || out.Cols != b.cols {
		panic(fmt.Sprintf("kernels: Reduce into %dx%d, want %dx%d", out.Rows, out.Cols, b.rows, b.cols))
	}
	if b.plan == nil {
		b.reduceLegacy(out)
		return
	}
	switch b.plan.Strategy {
	case AccumPriv:
		if b.t == 1 {
			b.reducePrivRows(out, 0, b.rows)
			return
		}
		par.Blocks(b.rows, b.t, func(_, lo, hi int) { b.reducePrivRows(out, lo, hi) })
	case AccumHybrid:
		b.combineHot()
		if b.t == 1 {
			b.reduceHybridRows(out, 0, b.rows)
			return
		}
		par.Blocks(b.rows, b.t, func(_, lo, hi int) { b.reduceHybridRows(out, lo, hi) })
	case AccumAtomic:
		if b.t == 1 {
			b.reduceAtomicRows(out, 0, b.rows)
			return
		}
		par.Blocks(b.rows, b.t, func(_, lo, hi int) { b.reduceAtomicRows(out, lo, hi) })
	}
}

// layoutInv returns the packed→original row map when the plan executes
// under a factor-row remap, nil otherwise.
func (b *OutBuf) layoutInv() []int32 {
	if b.plan != nil && b.plan.Layout != nil {
		return b.plan.Layout.Inv
	}
	return nil
}

// outRow maps buffer row r to its output row: identity without a layout,
// the remap's inverse with one. The inverse is a bijection, so parallel
// reducers over disjoint packed-row blocks still write disjoint output
// rows.
func outRow(inv []int32, r int) int {
	if inv == nil {
		return r
	}
	return int(inv[r]) //gate:allow bounds layout inverse is a bijection over the row space
}

// combineHot folds the T hot-row replicas into replica 0 with a parallel
// tree combine: log2(T) rounds of pairwise slab adds, each round's pairs
// running under par.Do.
func (b *OutBuf) combineHot() {
	n := b.hotK * b.cols
	if n == 0 || b.t == 1 {
		return
	}
	for stride := 1; stride < b.t; stride <<= 1 {
		pairs := 0
		for i := 0; i+stride < b.t; i += 2 * stride {
			pairs++
		}
		step := 2 * stride
		src := stride
		par.Do(pairs, func(p int) { //gate:allow escape log2(T) pairwise-combine launches per solve
			i := p * step
			addScaled(b.hot[i*n:i*n+n], 1, b.hot[(i+src)*n:(i+src)*n+n]) //gate:allow bounds slab offsets bounded by the replica count
		})
	}
}

// reducePrivRows reduces private replicas into out rows [lo, hi): untouched
// rows are zeroed, single-writer rows copy that writer's replica row, and
// multi-writer rows sum every replica.
func (b *OutBuf) reducePrivRows(out *tensor.Matrix, lo, hi int) {
	remap := b.plan.Remap
	inv := b.layoutInv()
	for i, w := range remap[lo:hi] { //gate:allow bounds row block bounds from par.Blocks
		r := lo + i
		dst := out.Row(outRow(inv, r)) //gate:allow bounds row index within the par.Blocks block, layout inverse is a bijection
		switch {
		case w == RemapUntouched:
			clear(dst)
		case w >= 0:
			copy(dst, b.priv[w].Row(r)) //gate:allow bounds writer thread id from the census, bounded by T
		default:
			copy(dst, b.priv[0].Row(r)) //gate:allow bounds replica row addressed within the block
			for th := 1; th < b.t; th++ {
				b.ops.addScaled(dst, 1, b.priv[th].Row(r)) //gate:allow bounds replica index bounded by the thread loop
			}
		}
	}
}

// reduceHybridRows reduces the hybrid state into out rows [lo, hi): hot
// rows read the (already tree-combined) replica 0 slab, cold rows stream
// out of the shared bit buffer, untouched rows are zeroed.
func (b *OutBuf) reduceHybridRows(out *tensor.Matrix, lo, hi int) {
	remap := b.plan.Remap
	inv := b.layoutInv()
	for i, slot := range remap[lo:hi] { //gate:allow bounds row block bounds from par.Blocks
		r := lo + i
		dst := out.Row(outRow(inv, r)) //gate:allow bounds row index within the par.Blocks block, layout inverse is a bijection
		switch {
		case slot >= 0:
			base := int(slot) * b.cols
			copy(dst, b.hot[base:base+b.cols]) //gate:allow bounds hot slot from the remap, bounded by the plan's hot count
		case slot == RemapUntouched:
			clear(dst)
		default:
			base := r * b.cols
			bitsToFloats(dst, b.shared[base:base+b.cols]) //gate:allow bounds row base bounded by the remap length
		}
	}
}

// reduceAtomicRows converts the shared bit buffer into out rows [lo, hi),
// zeroing untouched rows.
func (b *OutBuf) reduceAtomicRows(out *tensor.Matrix, lo, hi int) {
	remap := b.plan.Remap
	inv := b.layoutInv()
	for i, w := range remap[lo:hi] { //gate:allow bounds row block bounds from par.Blocks
		r := lo + i
		dst := out.Row(outRow(inv, r)) //gate:allow bounds row index within the par.Blocks block, layout inverse is a bijection
		if w == RemapUntouched {
			clear(dst)
			continue
		}
		base := r * b.cols
		bitsToFloats(dst, b.shared[base:base+b.cols]) //gate:allow bounds row base bounded by the remap length
	}
}

// reduceLegacy reduces a footprint-rule buffer in full. The single-threaded
// case avoids constructing the par.Blocks closure entirely (a closure
// passed to par escapes even when run inline), keeping pooled solves
// allocation-free.
func (b *OutBuf) reduceLegacy(out *tensor.Matrix) {
	if b.t == 1 {
		if b.priv != nil {
			out.CopyFrom(b.priv[0])
			return
		}
		bitsToFloats(out.Data, b.shared)
		return
	}
	if b.priv != nil {
		par.Blocks(b.rows, b.t, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				dst := out.Row(i)
				copy(dst, b.priv[0].Row(i))
				for th := 1; th < b.t; th++ {
					b.ops.addScaled(dst, 1, b.priv[th].Row(i))
				}
			}
		})
		return
	}
	par.Blocks(len(b.shared), b.t, func(_, lo, hi int) {
		bitsToFloats(out.Data[lo:hi], b.shared[lo:hi])
	})
}

// bitsToFloats converts float64 bit patterns into dst.
func bitsToFloats(dst []float64, src []uint64) {
	n := min(len(dst), len(src))
	d, v := dst[:n:n], src[:n:n]
	for i := range d {
		d[i] = math.Float64frombits(v[i])
	}
}

// directAddScaled computes dst += s*src on float64 bit patterns with plain
// stores; safe only on rows the plan proves single-writer.
func directAddScaled(dst []uint64, s float64, src []float64) {
	n := min(len(dst), len(src))
	d, v := dst[:n:n], src[:n:n]
	for i := range d {
		d[i] = math.Float64bits(math.Float64frombits(d[i]) + s*v[i])
	}
}

// directAddHadamard computes dst += a ⊙ bv on float64 bit patterns with
// plain stores; safe only on rows the plan proves single-writer.
func directAddHadamard(dst []uint64, a, bv []float64) {
	n := min(len(dst), len(a), len(bv))
	d, x, y := dst[:n:n], a[:n:n], bv[:n:n]
	for i := range d {
		d[i] = math.Float64bits(math.Float64frombits(d[i]) + x[i]*y[i])
	}
}

// atomicAddScaled computes dst += s*src with CAS adds.
func atomicAddScaled(dst []uint64, s float64, src []float64) {
	n := min(len(dst), len(src))
	d, v := dst[:n:n], src[:n:n]
	for i := range d {
		atomicAddFloat(&d[i], s*v[i])
	}
}

// atomicAddHadamard computes dst += a ⊙ bv with CAS adds.
func atomicAddHadamard(dst []uint64, a, bv []float64) {
	n := min(len(dst), len(a), len(bv))
	d, x, y := dst[:n:n], a[:n:n], bv[:n:n]
	for i := range d {
		atomicAddFloat(&d[i], x[i]*y[i])
	}
}

// atomicAddFloat adds v to the float64 stored as bits in *p with a CAS
// loop. Adding zero is skipped, which matters for very sparse scatters.
func atomicAddFloat(p *uint64, v float64) {
	if v == 0 {
		return
	}
	for {
		old := atomic.LoadUint64(p)
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(p, old, nw) {
			return
		}
	}
}

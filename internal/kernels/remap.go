package kernels

import (
	"fmt"
	"sort"

	"stef/internal/par"
	"stef/internal/tensor"
)

// RowRemap is a planned permutation of one mode's factor-row space: the
// most-touched rows are packed into a dense prefix (Dynasor-style
// frequency packing, arXiv:2309.09131) so the kernels' random factor
// gathers concentrate on a cache-resident region, while the long cold
// tail keeps its original relative order. A remap is built once per
// (plan, level) from the write census and is immutable afterwards; the
// engine applies it by rewriting the CSF level's fiber ids and packing
// the factor matrix, and undoes it on the output side inside
// OutBuf.Reduce — callers of the engine never observe packed row order.
type RowRemap struct {
	// Fwd[r] is the packed position of original row r.
	Fwd []int32
	// Inv[p] is the original row stored at packed position p. Fwd and Inv
	// are mutually inverse bijections over [0, Rows()).
	Inv []int32
	// Hot is the length of the packed hot prefix: positions 0..Hot-1 hold
	// the most-written rows in descending touch count.
	Hot int
}

// Rows returns the size of the permuted row space.
func (m *RowRemap) Rows() int { return len(m.Fwd) }

// String renders the remap for Describe output.
func (m *RowRemap) String() string {
	return fmt.Sprintf("remap(hot=%d/%d)", m.Hot, len(m.Fwd))
}

// BuildRowRemap builds the packing permutation from a per-row touch
// histogram: rows with at least two touches are hot candidates, sorted by
// descending count (ties by ascending row id) into the packed prefix,
// capped at maxHot rows; every other row — cold and untouched alike —
// follows in its original ascending order. Degenerate censuses return
// nil: an empty hot set (all-cold, single-row, or maxHot <= 0) would make
// the permutation the identity, and the planner treats nil as "no remap"
// rather than paying the pack for nothing.
//
//lint:allow hotpath-alloc plan-time construction, runs once per (plan, level)
func BuildRowRemap(counts []int64, maxHot int) *RowRemap {
	rows := len(counts)
	if rows < 2 || maxHot <= 0 {
		return nil
	}
	var hot []int32
	for r, c := range counts {
		if c >= 2 {
			hot = append(hot, int32(r))
		}
	}
	if len(hot) == 0 {
		return nil
	}
	sort.Slice(hot, func(i, j int) bool {
		ci, cj := counts[hot[i]], counts[hot[j]]
		if ci != cj {
			return ci > cj
		}
		return hot[i] < hot[j]
	})
	if len(hot) > maxHot {
		hot = hot[:maxHot]
	}
	m := &RowRemap{
		Fwd: make([]int32, rows),
		Inv: make([]int32, rows),
		Hot: len(hot),
	}
	for i := range m.Fwd {
		m.Fwd[i] = -1 //gate:allow bounds plan-time fill over the row space
	}
	for p, r := range hot {
		m.Fwd[r] = int32(p) //gate:allow bounds hot rows come from the census, in [0, rows)
		m.Inv[p] = r        //gate:allow bounds packed prefix position, bounded by the hot count
	}
	p := int32(len(hot))
	for r := range m.Fwd {
		if m.Fwd[r] < 0 { //gate:allow bounds plan-time scan over the row space
			m.Fwd[r] = p
			m.Inv[p] = int32(r) //gate:allow bounds one packed slot per unplaced row, p < rows by bijection
			p++
		}
	}
	return m
}

// Pack gathers src's rows into dst in packed order: dst row p receives
// src row Inv[p], so the hot prefix becomes a dense, sequentially-written
// slab. Both matrices must be Rows()×cols with equal shapes. The copy
// runs on t threads over disjoint packed-row blocks; reads gather, writes
// stream.
func (m *RowRemap) Pack(dst, src *tensor.Matrix, t int) {
	rows := m.Rows()
	if dst.Rows != rows || src.Rows != rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("kernels: Pack %dx%d from %dx%d through a %d-row remap",
			dst.Rows, dst.Cols, src.Rows, src.Cols, rows))
	}
	inv := m.Inv
	if t <= 1 {
		for p := 0; p < rows; p++ {
			copy(dst.Row(p), src.Row(int(inv[p]))) //gate:allow bounds inverse map is a bijection over the row space
		}
		return
	}
	par.Blocks(rows, t, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			copy(dst.Row(p), src.Row(int(inv[p]))) //gate:allow bounds inverse map is a bijection over the row space
		}
	})
}

// Unpack scatters src's packed rows back to original order: dst row
// Inv[p] receives src row p — the inverse of Pack. Reductions normally
// undo the remap inside OutBuf.Reduce for free; Unpack exists for tests
// and for callers holding a packed matrix outside a reduction.
func (m *RowRemap) Unpack(dst, src *tensor.Matrix, t int) {
	rows := m.Rows()
	if dst.Rows != rows || src.Rows != rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("kernels: Unpack %dx%d from %dx%d through a %d-row remap",
			dst.Rows, dst.Cols, src.Rows, src.Cols, rows))
	}
	inv := m.Inv
	if t <= 1 {
		for p := 0; p < rows; p++ {
			copy(dst.Row(int(inv[p])), src.Row(p)) //gate:allow bounds inverse map is a bijection over the row space
		}
		return
	}
	par.Blocks(rows, t, func(_, lo, hi int) {
		for p := lo; p < hi; p++ {
			copy(dst.Row(int(inv[p])), src.Row(p)) //gate:allow bounds inverse map is a bijection over the row space
		}
	})
}

// Remapped permutes the write census into the packed row space: counts
// and writer classifications move to their packed positions and the
// per-thread journals are relabeled and re-sorted. The result is
// equivalent to re-running CountRowWrites on the remapped tree — the
// remap is a bijection, so every per-row quantity transports — at
// O(rows + journal) instead of a second O(nnz) pass.
//
//lint:allow hotpath-alloc plan-time construction, runs once per (plan, level)
func (rw *RowWrites) Remapped(m *RowRemap) *RowWrites {
	if m == nil {
		return rw
	}
	if m.Rows() != len(rw.Counts) {
		panic(fmt.Sprintf("kernels: Remapped census of %d rows through a %d-row remap", len(rw.Counts), m.Rows()))
	}
	out := &RowWrites{
		Counts:    make([]int64, len(rw.Counts)),
		Writer:    make([]int32, len(rw.Writer)),
		PerThread: make([][]int32, len(rw.PerThread)),
		Writes:    rw.Writes,
	}
	for r, c := range rw.Counts {
		out.Counts[m.Fwd[r]] = c //gate:allow bounds forward map is a bijection over the row space
	}
	for r, w := range rw.Writer {
		out.Writer[m.Fwd[r]] = w //gate:allow bounds forward map is a bijection over the row space
	}
	for th, journal := range rw.PerThread {
		mapped := make([]int32, len(journal)) //gate:allow escape plan-time journal copy, once per thread
		for i, r := range journal {
			mapped[i] = m.Fwd[r] //gate:allow bounds journal rows are census-proven in range
		}
		sort.Slice(mapped, func(i, j int) bool { return mapped[i] < mapped[j] }) //gate:allow escape,bounds plan-time sort of the relabeled journal, once per thread
		out.PerThread[th] = mapped                                              //gate:allow bounds per-thread journal slot
	}
	return out
}

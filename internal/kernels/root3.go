package kernels

import (
	"stef/internal/csf"
	"stef/internal/par"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// This file contains hand-specialised root-mode kernels for 3- and 4-way
// tensors — the overwhelmingly common cases in the benchmark suite. They
// are loop-for-loop identical to the generic recursive kernel (root.go)
// with the recursion unrolled, which removes call overhead and lets the
// compiler keep the accumulator rows in registers across the innermost
// rank loop. RootMTTKRPWith dispatches to them automatically; the generic
// path remains the reference for all other orders and is cross-checked
// against these in the tests.
//
// Each kernel is split into a dispatcher and a top-level per-thread body
// (root3Thread etc.). At T == 1 the dispatcher calls the body directly: a
// closure passed to par.Do always escapes (escape analysis is not
// path-sensitive about the goroutine branch), so constructing it only on
// the multi-threaded branch keeps the single-threaded steady state free of
// heap allocation.
//
// The CSF level arrays (Ptr, Fids, Vals) and the per-thread partition
// bounds are hoisted into locals ahead of the loop nests: the slice
// headers live behind pointers the compiler must assume any store could
// alias, so without the hoist every Ptr[l][n] pays a double bounds check
// per iteration. The checks that survive hoisting are on indices read from
// the tensor itself (fiber ids, pointer ranges) — no compiler can prove
// those, and they carry //gate:allow with that justification.

// root3 dispatches the order-3 specialisation of the balanced root-mode
// MTTKRP.
func root3(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	if part.T == 1 {
		root3Thread(0, tree, factors, out, partials, part, sc)
		return
	}
	par.Do(part.T, func(th int) { //gate:allow escape multi-threaded launch; the T==1 path above stays allocation-free
		root3Thread(th, tree, factors, out, partials, part, sc)
	})
}

// root3Thread is thread th's share of the order-3 root-mode MTTKRP.
func root3Thread(th int, tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	f1, f2 := factors[1], factors[2]
	save1 := partials.Save[1]
	ptr0, ptr1 := tree.PtrLevel(0), tree.PtrLevel(1)
	fids0, fids1, fids2 := tree.FidLevel(0), tree.FidLevel(1), tree.FidLevel(2)
	vals := tree.ValsLevel()

	s := part.Start[th]
	e := part.Own[th+1]
	ownLo := part.Own[th]
	if s[0] >= e[0] {
		return
	}
	s1, s2 := s[1], s[2]
	e1, e2 := e[1], e[2]
	own0, own1 := ownLo[0], ownLo[1]
	bnd0 := sc.bound[0].Row(th)
	var bnd1 []float64
	if save1 {
		bnd1 = sc.bound[1].Row(th)
	}
	t0 := sc.vec(th, 0)
	t1 := sc.vec(th, 1)
	// Rebind the rank-vector primitives to the scratch's R-specialized set
	// (vec.go); the names shadow the generic package functions on purpose.
	zero, addScaled, hadamardAccum := sc.ops.zero, sc.ops.addScaled, sc.ops.hadamardAccum
	for n0 := s[0]; n0 < e[0]; n0++ {
		zero(t0)
		c1Lo := maxI64(ptr0[n0], s1)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
		c1Hi := minI64(ptr0[n0+1], e1) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
		for n1 := c1Lo; n1 < c1Hi; n1++ {
			zero(t1)
			c2Lo := maxI64(ptr1[n1], s2)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
			c2Hi := minI64(ptr1[n1+1], e2) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
			for k := c2Lo; k < c2Hi; k++ {
				addScaled(t1, vals[k], f2.Row(int(fids2[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
			}
			if save1 {
				if n1 >= own1 {
					sc.shadow.own(th, 1, n1)
					copy(partials.P[1].Row(int(n1)), t1) //gate:allow bounds memoized partial row addressed by node id, data-dependent
				} else {
					sc.shadow.boundary(th, 1, n1)
					copy(bnd1, t1)
				}
			}
			hadamardAccum(t0, t1, f1.Row(int(fids1[n1]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
		}
		if n0 >= own0 {
			sc.shadow.own(th, 0, n0)
			copy(out.Row(int(fids0[n0])), t0) //gate:allow bounds output row addressed by stored fiber id, data-dependent
		} else {
			sc.shadow.boundary(th, 0, n0)
			copy(bnd0, t0)
		}
	}
}

// root4 dispatches the order-4 specialisation of the balanced root-mode
// MTTKRP.
func root4(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	if part.T == 1 {
		root4Thread(0, tree, factors, out, partials, part, sc)
		return
	}
	par.Do(part.T, func(th int) { //gate:allow escape multi-threaded launch; the T==1 path above stays allocation-free
		root4Thread(th, tree, factors, out, partials, part, sc)
	})
}

// root4Thread is thread th's share of the order-4 root-mode MTTKRP.
func root4Thread(th int, tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	f1, f2, f3 := factors[1], factors[2], factors[3]
	save1, save2 := partials.Save[1], partials.Save[2]
	ptr0, ptr1, ptr2 := tree.PtrLevel(0), tree.PtrLevel(1), tree.PtrLevel(2)
	fids0, fids1, fids2, fids3 := tree.FidLevel(0), tree.FidLevel(1), tree.FidLevel(2), tree.FidLevel(3)
	vals := tree.ValsLevel()

	s := part.Start[th]
	e := part.Own[th+1]
	ownLo := part.Own[th]
	if s[0] >= e[0] {
		return
	}
	s1, s2, s3 := s[1], s[2], s[3]
	e1, e2, e3 := e[1], e[2], e[3]
	own0, own1, own2 := ownLo[0], ownLo[1], ownLo[2]
	bnd0 := sc.bound[0].Row(th)
	var bnd1, bnd2 []float64
	if save1 {
		bnd1 = sc.bound[1].Row(th)
	}
	if save2 {
		bnd2 = sc.bound[2].Row(th)
	}
	t0 := sc.vec(th, 0)
	t1 := sc.vec(th, 1)
	t2 := sc.vec(th, 2)
	// Rebind the rank-vector primitives to the scratch's R-specialized set
	// (vec.go); the names shadow the generic package functions on purpose.
	zero, addScaled, hadamardAccum := sc.ops.zero, sc.ops.addScaled, sc.ops.hadamardAccum
	for n0 := s[0]; n0 < e[0]; n0++ {
		zero(t0)
		c1Lo := maxI64(ptr0[n0], s1)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
		c1Hi := minI64(ptr0[n0+1], e1) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
		for n1 := c1Lo; n1 < c1Hi; n1++ {
			zero(t1)
			c2Lo := maxI64(ptr1[n1], s2)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
			c2Hi := minI64(ptr1[n1+1], e2) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
			for n2 := c2Lo; n2 < c2Hi; n2++ {
				zero(t2)
				c3Lo := maxI64(ptr2[n2], s3)   //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
				c3Hi := minI64(ptr2[n2+1], e3) //gate:allow bounds fiber pointer indexed by a partition-clamped node id, data-dependent
				for k := c3Lo; k < c3Hi; k++ {
					addScaled(t2, vals[k], f3.Row(int(fids3[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
				}
				if save2 {
					if n2 >= own2 {
						sc.shadow.own(th, 2, n2)
						copy(partials.P[2].Row(int(n2)), t2) //gate:allow bounds memoized partial row addressed by node id, data-dependent
					} else {
						sc.shadow.boundary(th, 2, n2)
						copy(bnd2, t2)
					}
				}
				hadamardAccum(t1, t2, f2.Row(int(fids2[n2]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
			if save1 {
				if n1 >= own1 {
					sc.shadow.own(th, 1, n1)
					copy(partials.P[1].Row(int(n1)), t1) //gate:allow bounds memoized partial row addressed by node id, data-dependent
				} else {
					sc.shadow.boundary(th, 1, n1)
					copy(bnd1, t1)
				}
			}
			hadamardAccum(t0, t1, f1.Row(int(fids1[n1]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
		}
		if n0 >= own0 {
			sc.shadow.own(th, 0, n0)
			copy(out.Row(int(fids0[n0])), t0) //gate:allow bounds output row addressed by stored fiber id, data-dependent
		} else {
			sc.shadow.boundary(th, 0, n0)
			copy(bnd0, t0)
		}
	}
}

package kernels

import (
	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// This file contains hand-specialised root-mode kernels for 3- and 4-way
// tensors — the overwhelmingly common cases in the benchmark suite. They
// are loop-for-loop identical to the generic recursive kernel (root.go)
// with the recursion unrolled, which removes call overhead and lets the
// compiler keep the accumulator rows in registers across the innermost
// rank loop. RootMTTKRP dispatches to them automatically; the generic path
// remains the reference for all other orders and is cross-checked against
// these in the tests.

// root3 is the order-3 specialisation of the balanced root-mode MTTKRP.
func root3(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, bound []*tensor.Matrix) {
	r := factors[0].Cols
	f1, f2 := factors[1], factors[2]
	save1 := partials.Save[1]

	run := func(th int) {
		s := part.Start[th]
		e := part.Own[th+1]
		ownLo := part.Own[th]
		if s[0] >= e[0] {
			return
		}
		t0 := make([]float64, r)
		t1 := make([]float64, r)
		for n0 := s[0]; n0 < e[0]; n0++ {
			zero(t0)
			c1Lo := maxI64(tree.Ptr[0][n0], s[1])
			c1Hi := minI64(tree.Ptr[0][n0+1], e[1])
			for n1 := c1Lo; n1 < c1Hi; n1++ {
				zero(t1)
				c2Lo := maxI64(tree.Ptr[1][n1], s[2])
				c2Hi := minI64(tree.Ptr[1][n1+1], e[2])
				for k := c2Lo; k < c2Hi; k++ {
					addScaled(t1, tree.Vals[k], f2.Row(int(tree.Fids[2][k])))
				}
				if save1 {
					if n1 >= ownLo[1] {
						copy(partials.P[1].Row(int(n1)), t1)
					} else {
						copy(bound[1].Row(th), t1)
					}
				}
				hadamardAccum(t0, t1, f1.Row(int(tree.Fids[1][n1])))
			}
			if n0 >= ownLo[0] {
				copy(out.Row(int(tree.Fids[0][n0])), t0)
			} else {
				copy(bound[0].Row(th), t0)
			}
		}
	}
	runThreads(part.T, run)
}

// root4 is the order-4 specialisation of the balanced root-mode MTTKRP.
func root4(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, bound []*tensor.Matrix) {
	r := factors[0].Cols
	f1, f2, f3 := factors[1], factors[2], factors[3]
	save1, save2 := partials.Save[1], partials.Save[2]

	run := func(th int) {
		s := part.Start[th]
		e := part.Own[th+1]
		ownLo := part.Own[th]
		if s[0] >= e[0] {
			return
		}
		t0 := make([]float64, r)
		t1 := make([]float64, r)
		t2 := make([]float64, r)
		for n0 := s[0]; n0 < e[0]; n0++ {
			zero(t0)
			c1Lo := maxI64(tree.Ptr[0][n0], s[1])
			c1Hi := minI64(tree.Ptr[0][n0+1], e[1])
			for n1 := c1Lo; n1 < c1Hi; n1++ {
				zero(t1)
				c2Lo := maxI64(tree.Ptr[1][n1], s[2])
				c2Hi := minI64(tree.Ptr[1][n1+1], e[2])
				for n2 := c2Lo; n2 < c2Hi; n2++ {
					zero(t2)
					c3Lo := maxI64(tree.Ptr[2][n2], s[3])
					c3Hi := minI64(tree.Ptr[2][n2+1], e[3])
					for k := c3Lo; k < c3Hi; k++ {
						addScaled(t2, tree.Vals[k], f3.Row(int(tree.Fids[3][k])))
					}
					if save2 {
						if n2 >= ownLo[2] {
							copy(partials.P[2].Row(int(n2)), t2)
						} else {
							copy(bound[2].Row(th), t2)
						}
					}
					hadamardAccum(t1, t2, f2.Row(int(tree.Fids[2][n2])))
				}
				if save1 {
					if n1 >= ownLo[1] {
						copy(partials.P[1].Row(int(n1)), t1)
					} else {
						copy(bound[1].Row(th), t1)
					}
				}
				hadamardAccum(t0, t1, f1.Row(int(tree.Fids[1][n1])))
			}
			if n0 >= ownLo[0] {
				copy(out.Row(int(tree.Fids[0][n0])), t0)
			} else {
				copy(bound[0].Row(th), t0)
			}
		}
	}
	runThreads(part.T, run)
}

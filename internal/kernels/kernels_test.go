package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

const tol = 1e-9

// relClose compares matrices with a relative tolerance scaled by magnitude.
func relClose(t *testing.T, got, want *tensor.Matrix, ctx string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", ctx, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	scale := want.NormFrobenius()
	if scale == 0 {
		scale = 1
	}
	for i, v := range got.Data {
		if math.Abs(v-want.Data[i]) > tol*scale {
			t.Fatalf("%s: element %d = %g, want %g (scale %g)", ctx, i, v, want.Data[i], scale)
		}
	}
}

// memoSubsets enumerates all valid Save vectors for an order-d tree
// (levels 1..d-2 free, others false).
func memoSubsets(d int) [][]bool {
	free := d - 2 // levels 1..d-2
	var out [][]bool
	for mask := 0; mask < 1<<free; mask++ {
		save := make([]bool, d)
		for b := 0; b < free; b++ {
			if mask&(1<<b) != 0 {
				save[1+b] = true
			}
		}
		out = append(out, save)
	}
	return out
}

// runAllModes computes every mode's MTTKRP with the given tree/partition/
// memo configuration and compares against the COO reference. Factor
// matrices are fixed; the root pass runs first so memoized partials exist
// for the later modes, mirroring a CPD iteration's structure.
func runAllModes(t *testing.T, tt *tensor.Tensor, tree *csf.Tree, part *sched.Partition, save []bool, rank int, ctx string) {
	t.Helper()
	d := tt.Order()
	factors := tensor.RandomFactors(tt.Dims, rank, 12345)
	lf := LevelFactors(factors, tree.Perm())
	partials := NewPartials(tree, rank, save)

	out0 := tensor.NewMatrix(tree.Dim(0), rank)
	RootMTTKRP(tree, lf, out0, partials, part)
	want0 := Reference(tt, factors, tree.Perm()[0])
	relClose(t, out0, want0, ctx+" mode(level0)")

	for u := 1; u < d; u++ {
		buf := NewOutBuf(tree.Dim(u), rank, part.T, 0)
		buf.Reset()
		ModeMTTKRP(tree, lf, u, partials, buf, part)
		got := tensor.NewMatrix(tree.Dim(u), rank)
		buf.Reduce(got)
		want := Reference(tt, factors, tree.Perm()[u])
		relClose(t, got, want, fmt.Sprintf("%s mode(level%d) src=%d", ctx, u, partials.SourceLevel(u)))
	}
}

func TestMTTKRPAgainstReference(t *testing.T) {
	shapes := [][]int{
		{7, 9, 11},
		{4, 25, 6},
		{6, 5, 9, 8},
		{3, 4, 5, 6, 4},
		{2, 300, 5}, // two root slices: heavy boundary sharing
	}
	for _, dims := range shapes {
		tt := tensor.Random(dims, 400, nil, int64(len(dims))*7)
		d := len(dims)
		tree := csf.Build(tt, nil)
		for _, threads := range []int{1, 2, 3, 8} {
			part := sched.NewPartition(tree, threads)
			for _, save := range memoSubsets(d) {
				ctx := fmt.Sprintf("dims=%v T=%d save=%v", dims, threads, save)
				runAllModes(t, tt, tree, part, save, 5, ctx)
			}
		}
	}
}

func TestMTTKRPSlicePartition(t *testing.T) {
	tt := tensor.Random([]int{8, 12, 20, 9}, 500, []float64{1.5, 0, 0, 0}, 21)
	tree := csf.Build(tt, nil)
	for _, threads := range []int{1, 3, 6} {
		part := sched.NewSlicePartitionNNZ(tree, threads).ToPartition(tree)
		for _, save := range memoSubsets(4) {
			ctx := fmt.Sprintf("slice T=%d save=%v", threads, save)
			runAllModes(t, tt, tree, part, save, 4, ctx)
		}
	}
}

func TestMTTKRPSkewedBoundaries(t *testing.T) {
	// Heavy skew concentrates non-zeros in few fibers so thread
	// boundaries repeatedly split fibers at every level.
	tt := tensor.Random([]int{3, 5, 700}, 900, []float64{3, 2, 0}, 33)
	tree := csf.Build(tt, nil)
	for _, threads := range []int{2, 5, 13} {
		part := sched.NewPartition(tree, threads)
		for _, save := range memoSubsets(3) {
			ctx := fmt.Sprintf("skew T=%d save=%v", threads, save)
			runAllModes(t, tt, tree, part, save, 3, ctx)
		}
	}
}

func TestMTTKRPMoreThreadsThanNNZ(t *testing.T) {
	tt := tensor.Random([]int{4, 5, 6}, 7, nil, 3)
	tree := csf.Build(tt, nil)
	part := sched.NewPartition(tree, 16)
	runAllModes(t, tt, tree, part, []bool{false, true, false}, 3, "tiny")
}

func TestMTTKRPAllPerms(t *testing.T) {
	tt := tensor.Random([]int{5, 6, 7}, 90, nil, 44)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		tree := csf.Build(tt, perm)
		part := sched.NewPartition(tree, 4)
		runAllModes(t, tt, tree, part, []bool{false, true, false}, 4, fmt.Sprintf("perm=%v", perm))
	}
}

func TestOutBufAtomicMatchesPrivatized(t *testing.T) {
	tt := tensor.Random([]int{6, 40, 50}, 600, nil, 55)
	tree := csf.Build(tt, nil)
	part := sched.NewPartition(tree, 4)
	factors := tensor.RandomFactors(tt.Dims, 4, 9)
	lf := LevelFactors(factors, tree.Perm())
	partials := NewPartials(tree, 4, []bool{false, true, false})
	out0 := tensor.NewMatrix(tree.Dim(0), 4)
	RootMTTKRP(tree, lf, out0, partials, part)

	for u := 1; u < 3; u++ {
		priv := NewOutBuf(tree.Dim(u), 4, part.T, 1<<40) // force privatized
		priv.Reset()
		ModeMTTKRP(tree, lf, u, partials, priv, part)
		gotPriv := tensor.NewMatrix(tree.Dim(u), 4)
		priv.Reduce(gotPriv)
		if !priv.Privatized() {
			t.Fatalf("expected privatized buffer")
		}

		atom := NewOutBuf(tree.Dim(u), 4, part.T, 1) // force atomic
		atom.Reset()
		ModeMTTKRP(tree, lf, u, partials, atom, part)
		gotAtom := tensor.NewMatrix(tree.Dim(u), 4)
		atom.Reduce(gotAtom)
		if atom.Privatized() {
			t.Fatalf("expected atomic buffer")
		}
		relClose(t, gotAtom, gotPriv, fmt.Sprintf("atomic vs privatized mode %d", u))
	}
}

func TestOutBufResetReuse(t *testing.T) {
	b := NewOutBuf(3, 2, 2, 0)
	b.AddScaled(0, 1, 2.0, []float64{1, 1})
	out := tensor.NewMatrix(3, 2)
	b.Reduce(out)
	if out.At(1, 0) != 2 {
		t.Fatalf("AddScaled lost: %v", out.Data)
	}
	b.Reset()
	b.Reduce(out)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatalf("Reset did not clear buffer: %v", out.Data)
		}
	}
}

func TestReferenceSmallKnown(t *testing.T) {
	// 2x2x2 tensor with a single non-zero at (1,0,1) value 3.
	tt := tensor.New([]int{2, 2, 2}, 1)
	tt.Append([]int32{1, 0, 1}, 3)
	factors := []*tensor.Matrix{
		tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 2), tensor.NewMatrix(2, 2),
	}
	for _, f := range factors {
		for i := range f.Data {
			f.Data[i] = float64(i + 1)
		}
	}
	// Mode-0 MTTKRP: out[1,r] = 3 * B[0,r] * C[1,r].
	out := Reference(tt, factors, 0)
	for r := 0; r < 2; r++ {
		want := 3 * factors[1].At(0, r) * factors[2].At(1, r)
		if out.At(1, r) != want {
			t.Errorf("out[1,%d] = %g, want %g", r, out.At(1, r), want)
		}
		if out.At(0, r) != 0 {
			t.Errorf("out[0,%d] = %g, want 0", r, out.At(0, r))
		}
	}
}

// TestMTTKRPQuick property-tests the full kernel stack on random shapes,
// thread counts and memo subsets.
func TestMTTKRPQuick(t *testing.T) {
	f := func(seed int64, dRaw, tRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + int(dRaw)%2
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + rng.Intn(10)
		}
		space := 1
		for _, n := range dims {
			space *= n
		}
		nnz := 60 + rng.Intn(100)
		if nnz > space {
			nnz = space
		}
		tt := tensor.Random(dims, nnz, nil, seed)
		tree := csf.Build(tt, nil)
		threads := 1 + int(tRaw)%6
		part := sched.NewPartition(tree, threads)
		subsets := memoSubsets(d)
		save := subsets[int(mRaw)%len(subsets)]

		rank := 3
		factors := tensor.RandomFactors(tt.Dims, rank, seed+1)
		lf := LevelFactors(factors, tree.Perm())
		partials := NewPartials(tree, rank, save)
		out0 := tensor.NewMatrix(tree.Dim(0), rank)
		RootMTTKRP(tree, lf, out0, partials, part)
		want0 := Reference(tt, factors, tree.Perm()[0])
		if out0.MaxAbsDiff(want0) > tol*(1+want0.NormFrobenius()) {
			return false
		}
		for u := 1; u < d; u++ {
			buf := NewOutBuf(tree.Dim(u), rank, threads, 0)
			buf.Reset()
			ModeMTTKRP(tree, lf, u, partials, buf, part)
			got := tensor.NewMatrix(tree.Dim(u), rank)
			buf.Reduce(got)
			want := Reference(tt, factors, tree.Perm()[u])
			if got.MaxAbsDiff(want) > tol*(1+want.NormFrobenius()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

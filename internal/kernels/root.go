package kernels

import (
	"fmt"

	"stef/internal/csf"
	"stef/internal/par"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// RootMTTKRP computes the mode-0 MTTKRP with a freshly allocated scratch;
// see RootMTTKRPWith. It is the convenient form for one-shot callers and
// tests; engines on the repeated-solve path pass a pooled scratch instead.
func RootMTTKRP(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition) {
	RootMTTKRPWith(tree, factors, out, partials, part, NewScratch(tree.Order(), factors[0].Cols, part.T))
}

// RootMTTKRPWith computes the mode-0 MTTKRP of the CSF tree (the mode
// stored at the tree's root level) into out, memoizing P^(l) for every
// level with partials.Save[l] set, in a single downward pass (Algorithm 4/5
// with u = 0). factors are indexed by CSF level, i.e. factors[l]
// corresponds to tree level l, and out receives the result for the root
// level's mode. sc supplies the per-thread accumulators and boundary rows;
// it must satisfy NewScratch(tree.Order(), R, part.T) or larger.
//
// Parallelism follows the partition: each thread processes its leaf range;
// fibers whose leaves span a thread boundary are accumulated into boundary
// replica rows and merged afterwards, so no atomics and no full output
// privatization are needed (Section III-A). Orders 3 and 4 dispatch to
// unrolled specialisations (root3.go); other orders use the generic
// recursive kernel, which is the semantic reference.
func RootMTTKRPWith(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	lifeEnter(tree, sc)
	d := tree.Order()
	if len(factors) != d {
		panic(fmt.Sprintf("kernels: %d factors for order-%d tensor", len(factors), d))
	}
	r := factors[0].Cols
	if out.Rows != tree.Dim(0) || out.Cols != r {
		panic(fmt.Sprintf("kernels: output shape %dx%d, want %dx%d", out.Rows, out.Cols, tree.Dim(0), r))
	}
	sc.check(d, r, part.T)
	out.Zero()

	// Boundary replica rows: one per (thread, level), used both for saved
	// partial levels and, at level 0, for the output. A pooled scratch
	// carries stale rows from the previous launch; the merge below assumes
	// unwritten rows are zero, so clear the levels it will read.
	for l := 0; l < d-1; l++ {
		if l == 0 || partials.Save[l] { //gate:allow bounds Save is sized to the order; l ranges over levels
			sc.bound[l].Zero()
		}
	}

	sc.shadow.begin(part)
	switch d {
	case 3:
		root3(tree, factors, out, partials, part, sc)
	case 4:
		root4(tree, factors, out, partials, part, sc)
	case 5:
		root5(tree, factors, out, partials, part, sc)
	default:
		rootGeneric(tree, factors, out, partials, part, sc)
	}

	mergeBoundaries(tree, out, partials, part, sc.bound)
	sc.shadow.end()
}

// rootGeneric is the order-agnostic recursive root kernel.
func rootGeneric(tree *csf.Tree, factors []*tensor.Matrix, out *tensor.Matrix, partials *Partials, part *sched.Partition, sc *Scratch) {
	d := tree.Order()
	bound := sc.bound
	par.Do(part.T, func(th int) {
		s := part.Start[th]
		e := part.Own[th+1] // exclusive end of touched nodes per level
		ownLo := part.Own[th]
		if s[0] >= e[0] {
			return // thread has no leaves
		}
		// One accumulator per level, reused depth-first.
		tmp := make([][]float64, d-1)
		for l := range tmp {
			tmp[l] = sc.vec(th, l) //gate:allow bounds scratch slots are sized to the order
		}
		// Rebind the rank-vector primitives to the scratch's R-specialized
		// set (vec.go); the names shadow the generic package functions on
		// purpose.
		zero, addScaled, hadamardAccum := sc.ops.zero, sc.ops.addScaled, sc.ops.hadamardAccum
		var rec func(l int, n int64)
		rec = func(l int, n int64) {
			tl := tmp[l]
			zero(tl)
			cLo := maxI64(tree.PtrLevel(l)[n], s[l+1])
			cHi := minI64(tree.PtrLevel(l)[n+1], e[l+1])
			if l+1 == d-1 {
				for k := cLo; k < cHi; k++ {
					addScaled(tl, tree.ValsLevel()[k], factors[d-1].Row(int(tree.FidLevel(d-1)[k]))) //gate:allow bounds leaf values and factor rows are addressed by stored fiber ids, data-dependent
				}
				return
			}
			for c := cLo; c < cHi; c++ {
				rec(l+1, c)
				child := tmp[l+1]       //gate:allow bounds level arrays are indexed by the recursion depth, sized to the order
				if partials.Save[l+1] { //gate:allow bounds level arrays are indexed by the recursion depth, sized to the order
					if c >= ownLo[l+1] { //gate:allow bounds level arrays are indexed by the recursion depth, sized to the order
						sc.shadow.own(th, l+1, c)
						copy(partials.P[l+1].Row(int(c)), child) //gate:allow bounds memoized partial row addressed by node id, data-dependent
					} else {
						sc.shadow.boundary(th, l+1, c)
						copy(bound[l+1].Row(th), child) //gate:allow bounds boundary replica row per level, sized to the order
					}
				}
				hadamardAccum(tl, child, factors[l+1].Row(int(tree.FidLevel(l+1)[c]))) //gate:allow bounds factor row addressed by stored fiber id, data-dependent
			}
		}
		for n := s[0]; n < e[0]; n++ {
			rec(0, n)
			if n >= ownLo[0] { //gate:allow bounds ownLo is sized to the order; constant level index
				sc.shadow.own(th, 0, n)
				copy(out.Row(int(tree.FidLevel(0)[n])), tmp[0]) //gate:allow bounds output row addressed by stored fiber id, data-dependent
			} else {
				sc.shadow.boundary(th, 0, n)
				copy(bound[0].Row(th), tmp[0]) //gate:allow bounds boundary replica row, one per thread
			}
		}
	})
}

// mergeBoundaries folds the per-thread boundary replica rows into the
// canonical rows. Only a thread's first touched node per level can be
// non-owned, so each (thread, level) contributes at most one row; threads
// with no leaves never write their replica row, which RootMTTKRPWith
// zeroed, so merging unconditionally is safe. Levels with no saved partial
// are skipped: their replica rows are never written (and never cleared).
func mergeBoundaries(tree *csf.Tree, out *tensor.Matrix, partials *Partials, part *sched.Partition, bound []*tensor.Matrix) {
	d := tree.Order()
	for th := 1; th < part.T; th++ {
		for l := 0; l < d-1; l++ {
			if l > 0 && !partials.Save[l] {
				continue
			}
			if bound[l] == nil || !part.SharedStart(th, l) {
				continue
			}
			nd := part.Start[th][l]
			src := bound[l].Row(th)
			var dst []float64
			if l == 0 {
				dst = out.Row(int(tree.FidLevel(0)[nd]))
			} else {
				dst = partials.P[l].Row(int(nd))
			}
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
}

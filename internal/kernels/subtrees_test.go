package kernels

import (
	"fmt"
	"testing"

	"stef/internal/csf"
	"stef/internal/tensor"
)

// TestSubtreeKernelsCoverWholeTree checks that running the sequential
// subtree kernels over consecutive slice ranges reproduces the full MTTKRP
// for every mode and memo subset.
func TestSubtreeKernelsCoverWholeTree(t *testing.T) {
	tt := tensor.Random([]int{9, 12, 15, 7}, 450, []float64{1.4, 0, 0, 0}, 17)
	d := tt.Order()
	tree := csf.Build(tt, nil)
	const rank = 4
	factors := tensor.RandomFactors(tt.Dims, rank, 5)
	lf := LevelFactors(factors, tree.Perm())

	for _, save := range memoSubsets(d) {
		partials := NewPartials(tree, rank, save)
		out0 := tensor.NewMatrix(tree.Dim(0), rank)
		// Root pass in three chunks.
		slices := int64(tree.NumFibers(0))
		for lo := int64(0); lo < slices; lo += 3 {
			hi := lo + 3
			if hi > slices {
				hi = slices
			}
			RootMTTKRPSubtrees(tree, lf, out0, partials, lo, hi)
		}
		want0 := Reference(tt, factors, tree.Perm()[0])
		if diff := out0.MaxAbsDiff(want0); diff > 1e-9*(1+want0.NormFrobenius()) {
			t.Fatalf("save=%v: chunked root diff %g", save, diff)
		}
		for u := 1; u < d; u++ {
			got := tensor.NewMatrix(tree.Dim(u), rank)
			for lo := int64(0); lo < slices; lo += 5 {
				hi := lo + 5
				if hi > slices {
					hi = slices
				}
				ModeMTTKRPSubtrees(tree, lf, u, partials, got, lo, hi)
			}
			want := Reference(tt, factors, tree.Perm()[u])
			if diff := got.MaxAbsDiff(want); diff > 1e-9*(1+want.NormFrobenius()) {
				t.Fatalf("save=%v mode %d: chunked diff %g (src=%d)", save, u, diff, partials.SourceLevel(u))
			}
		}
	}
}

// TestSubtreeRootDisjointRows verifies the property the TACO engine relies
// on: disjoint slice ranges write disjoint output rows in the root pass.
func TestSubtreeRootDisjointRows(t *testing.T) {
	tt := tensor.Random([]int{8, 10, 12}, 300, nil, 9)
	tree := csf.Build(tt, nil)
	const rank = 3
	lf := LevelFactors(tensor.RandomFactors(tt.Dims, rank, 2), tree.Perm())
	noMemo := NoPartials(3)

	full := tensor.NewMatrix(tree.Dim(0), rank)
	RootMTTKRPSubtrees(tree, lf, full, noMemo, 0, int64(tree.NumFibers(0)))

	half := int64(tree.NumFibers(0)) / 2
	a := tensor.NewMatrix(tree.Dim(0), rank)
	b := tensor.NewMatrix(tree.Dim(0), rank)
	RootMTTKRPSubtrees(tree, lf, a, noMemo, 0, half)
	RootMTTKRPSubtrees(tree, lf, b, noMemo, half, int64(tree.NumFibers(0)))
	for i := range full.Data {
		if a.Data[i] != 0 && b.Data[i] != 0 {
			t.Fatalf("element %d written by both halves", i)
		}
		if got := a.Data[i] + b.Data[i]; got != full.Data[i] {
			t.Fatalf("element %d: %g + %g != %g", i, a.Data[i], b.Data[i], full.Data[i])
		}
	}
}

func BenchmarkVecOps(b *testing.B) {
	for _, r := range []int{8, 32, 64} {
		dst := make([]float64, r)
		x := make([]float64, r)
		y := make([]float64, r)
		for i := range x {
			x[i] = float64(i + 1)
			y[i] = 1.5
		}
		b.Run(fmt.Sprintf("hadamardAccum/R%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hadamardAccum(dst, x, y)
			}
		})
		b.Run(fmt.Sprintf("addScaled/R%d", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				addScaled(dst, 1.1, x)
			}
		})
	}
}

package kernels

import (
	"testing"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// TestDegenerateTensors drives the whole kernel stack over edge-case
// inputs: empty tensors, a single non-zero, singleton dimensions, and one
// giant fiber — all with more threads than work.
func TestDegenerateTensors(t *testing.T) {
	cases := []struct {
		name string
		make func() *tensor.Tensor
	}{
		{"empty", func() *tensor.Tensor { return tensor.New([]int{4, 5, 6}, 0) }},
		{"single-nnz", func() *tensor.Tensor {
			tt := tensor.New([]int{4, 5, 6}, 1)
			tt.Append([]int32{3, 4, 5}, 2.5)
			return tt
		}},
		{"all-ones-dims", func() *tensor.Tensor {
			tt := tensor.New([]int{1, 1, 1}, 1)
			tt.Append([]int32{0, 0, 0}, 7)
			return tt
		}},
		{"one-giant-fiber", func() *tensor.Tensor {
			tt := tensor.New([]int{1, 1, 500}, 0)
			for i := int32(0); i < 500; i++ {
				tt.Append([]int32{0, 0, i}, float64(i))
			}
			return tt
		}},
		{"diagonal", func() *tensor.Tensor {
			tt := tensor.New([]int{64, 64, 64}, 0)
			for i := int32(0); i < 64; i++ {
				tt.Append([]int32{i, i, i}, 1)
			}
			return tt
		}},
	}
	const rank = 3
	for _, c := range cases {
		tt := c.make()
		d := tt.Order()
		tree := csf.Build(tt, nil)
		if err := tree.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		factors := tensor.RandomFactors(tt.Dims, rank, 1)
		lf := LevelFactors(factors, tree.Perm())
		for _, threads := range []int{1, 7} {
			part := sched.NewPartition(tree, threads)
			if err := part.Validate(tree); err != nil {
				t.Fatalf("%s T=%d: %v", c.name, threads, err)
			}
			for _, save := range memoSubsets(d) {
				partials := NewPartials(tree, rank, save)
				out0 := tensor.NewMatrix(tree.Dim(0), rank)
				RootMTTKRP(tree, lf, out0, partials, part)
				want0 := Reference(tt, factors, tree.Perm()[0])
				if diff := out0.MaxAbsDiff(want0); diff > 1e-9*(1+want0.NormFrobenius()) {
					t.Fatalf("%s T=%d save=%v root: diff %g", c.name, threads, save, diff)
				}
				for u := 1; u < d; u++ {
					buf := NewOutBuf(tree.Dim(u), rank, threads, 0)
					buf.Reset()
					ModeMTTKRP(tree, lf, u, partials, buf, part)
					got := tensor.NewMatrix(tree.Dim(u), rank)
					buf.Reduce(got)
					want := Reference(tt, factors, tree.Perm()[u])
					if diff := got.MaxAbsDiff(want); diff > 1e-9*(1+want.NormFrobenius()) {
						t.Fatalf("%s T=%d save=%v mode %d: diff %g", c.name, threads, save, u, diff)
					}
				}
			}
		}
	}
}

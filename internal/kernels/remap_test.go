package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// TestBuildRowRemapBijectionAndOrdering property-checks the permutation
// contract on random histograms: Fwd/Inv are mutual inverses, the hot
// prefix holds the highest counts in descending order (ties by ascending
// row id), and the cold tail preserves original relative order.
func TestBuildRowRemapBijectionAndOrdering(t *testing.T) {
	f := func(seed int64, maxHotRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 2 + rng.Intn(200)
		counts := make([]int64, rows)
		for r := range counts {
			counts[r] = int64(rng.Intn(6)) // plenty of 0/1 (cold) and ties
		}
		maxHot := 1 + int(maxHotRaw)%rows
		m := BuildRowRemap(counts, maxHot)
		if m == nil {
			// Legal only when no row qualifies.
			for _, c := range counts {
				if c >= 2 {
					return false
				}
			}
			return true
		}
		if m.Rows() != rows || m.Hot < 1 || m.Hot > maxHot {
			return false
		}
		// Bijection.
		for r, p := range m.Fwd {
			if p < 0 || int(p) >= rows || int(m.Inv[p]) != r {
				return false
			}
		}
		// Hot prefix: qualified, descending counts, ties by ascending id.
		for p := 0; p < m.Hot; p++ {
			r := m.Inv[p]
			if counts[r] < 2 {
				return false
			}
			if p > 0 {
				prev := m.Inv[p-1]
				if counts[prev] < counts[r] || (counts[prev] == counts[r] && prev > r) {
					return false
				}
			}
		}
		// No unpacked row may outrank the weakest hot row (the cap keeps
		// only the top maxHot candidates).
		weakest := counts[m.Inv[m.Hot-1]]
		for p := m.Hot; p < rows; p++ {
			if counts[m.Inv[p]] > weakest {
				return false
			}
		}
		// Cold tail keeps original ascending order.
		for p := m.Hot + 1; p < rows; p++ {
			if m.Inv[p-1] >= m.Inv[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildRowRemapDegenerate pins the nil returns: packing an all-cold,
// single-row or zero-budget census would be the identity permutation, and
// the planner treats nil as "no remap".
func TestBuildRowRemapDegenerate(t *testing.T) {
	if m := BuildRowRemap([]int64{1, 1, 0, 1}, 8); m != nil {
		t.Errorf("all-cold census built %v", m)
	}
	if m := BuildRowRemap([]int64{100}, 8); m != nil {
		t.Errorf("single-row census built %v", m)
	}
	if m := BuildRowRemap([]int64{5, 5, 5}, 0); m != nil {
		t.Errorf("zero hot budget built %v", m)
	}
	if m := BuildRowRemap(nil, 8); m != nil {
		t.Errorf("empty census built %v", m)
	}
}

// TestBuildRowRemapAllHot checks the saturated case: when every row
// qualifies, the hot prefix is the whole space (or the cap).
func TestBuildRowRemapAllHot(t *testing.T) {
	counts := []int64{2, 9, 4, 7}
	m := BuildRowRemap(counts, 16)
	if m == nil || m.Hot != 4 {
		t.Fatalf("all-hot census: %v", m)
	}
	for p, want := range []int32{1, 3, 2, 0} { // 9, 7, 4, 2
		if m.Inv[p] != want {
			t.Fatalf("packed position %d holds row %d, want %d", p, m.Inv[p], want)
		}
	}
	capped := BuildRowRemap(counts, 2)
	if capped == nil || capped.Hot != 2 {
		t.Fatalf("capped census: %v", capped)
	}
	if capped.Inv[0] != 1 || capped.Inv[1] != 3 {
		t.Fatalf("capped prefix %v", capped.Inv[:2])
	}
	// Rows 0 and 2 fall to the cold tail in original order.
	if capped.Inv[2] != 0 || capped.Inv[3] != 2 {
		t.Fatalf("capped tail %v", capped.Inv[2:])
	}
}

// TestPackUnpackRoundTrip checks Pack/Unpack are inverse gathers on both
// the serial and the parallel path.
func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	counts := make([]int64, 37)
	for r := range counts {
		counts[r] = int64(rng.Intn(5))
	}
	m := BuildRowRemap(counts, 16)
	if m == nil {
		t.Fatal("fixture census built no remap")
	}
	src := tensor.NewMatrix(37, 6)
	src.Randomize(rng)
	for _, threads := range []int{1, 4} {
		packed := tensor.NewMatrix(37, 6)
		back := tensor.NewMatrix(37, 6)
		m.Pack(packed, src, threads)
		for p := 0; p < 37; p++ {
			if got, want := packed.Row(p)[0], src.Row(int(m.Inv[p]))[0]; got != want {
				t.Fatalf("T=%d packed row %d holds %g, want row %d's %g", threads, p, got, m.Inv[p], want)
			}
		}
		m.Unpack(back, packed, threads)
		if d := back.MaxAbsDiff(src); d != 0 {
			t.Fatalf("T=%d round trip differs by %g", threads, d)
		}
	}
}

// TestRemappedCensusMatchesRecount is the transport proof: permuting a
// census through Remapped must equal re-running CountRowWrites on the
// RemapFids view of the tree.
func TestRemappedCensusMatchesRecount(t *testing.T) {
	tt := tensor.Random([]int{9, 40, 300}, 1500, []float64{2, 1.5, 2}, 29)
	tree := csf.Build(tt, nil)
	d := tree.Order()
	for _, threads := range []int{1, 4} {
		part := sched.NewPartition(tree, threads)
		for u := 1; u < d; u++ {
			rw := CountRowWrites(tree, part, u, d-1)
			m := BuildRowRemap(rw.Counts, 64)
			if m == nil {
				t.Fatalf("T=%d u=%d: skewed census built no remap", threads, u)
			}
			got := rw.Remapped(m)
			fwd := make([][]int32, d)
			fwd[u] = m.Fwd
			recount := CountRowWrites(tree.RemapFids(fwd), part, u, d-1)
			if got.Writes != recount.Writes {
				t.Fatalf("T=%d u=%d: Writes %d, recount %d", threads, u, got.Writes, recount.Writes)
			}
			for p := range got.Counts {
				if got.Counts[p] != recount.Counts[p] {
					t.Fatalf("T=%d u=%d packed row %d: count %d, recount %d", threads, u, p, got.Counts[p], recount.Counts[p])
				}
				if got.Writer[p] != recount.Writer[p] {
					t.Fatalf("T=%d u=%d packed row %d: writer %d, recount %d", threads, u, p, got.Writer[p], recount.Writer[p])
				}
			}
			for th := range got.PerThread {
				a, b := got.PerThread[th], recount.PerThread[th]
				if len(a) != len(b) {
					t.Fatalf("T=%d u=%d thread %d: journal %d rows, recount %d", threads, u, th, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("T=%d u=%d thread %d journal[%d]: %d, recount %d", threads, u, th, i, a[i], b[i])
					}
				}
			}
		}
	}
}

//go:build !lifetrace

package kernels

import "stef/internal/csf"

// lifeScratchState is the disabled form of the workspace-lifetime oracle:
// the hooks below inline to nothing, so the kernel-entry checks cost zero
// in normal builds. Build with -tags lifetrace for the recording
// implementation (life_on.go), which stamps released scratches, NaN-fills
// their accumulators, and panics when a kernel is entered with a closed
// tree or a released workspace.
type lifeScratchState struct{}

// LifeSetPoisoned stamps the scratch released (true) or back in service
// (false); a no-op in normal builds.
func (s *Scratch) LifeSetPoisoned(bool) {}

// lifeEnter is the kernel-entry lifetime check; a no-op in normal builds.
func lifeEnter(tree *csf.Tree, sc *Scratch) {}

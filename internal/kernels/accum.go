package kernels

import (
	"fmt"
	"sort"

	"stef/internal/csf"
	"stef/internal/sched"
)

// DefaultHotBudgetElems bounds the per-strategy hot-row footprint
// (T·k·cols elements) when the caller does not supply a budget: half of the
// default 2 MiB cache model, in float64 elements.
const DefaultHotBudgetElems = 1 << 17

// hotWriteFactor is the minimum write count, in multiples of the thread
// count, for a multi-writer row to be worth a dense per-thread replica: a
// replica costs T row clears + T row reads per solve, so a row written
// fewer than ~2T times is cheaper left in the shared buffer.
const hotWriteFactor = 2

// RowWrites is the write census of one non-root MTTKRP output: the result
// of the O(nnz) counting pass that walks the same partition-clamped node
// spans as the kernel itself.
type RowWrites struct {
	// Counts[r] is the number of Add calls targeting row r, summed over
	// threads. The census walks each thread's full clamped span, so counts
	// are exact for u >= src and a per-thread superset for u < src (where
	// the kernel may skip span prefixes with no live ancestor) — writer
	// classification errs only toward more sharing, never less.
	Counts []int64
	// Writer[r] is the single writing thread, RemapColdCAS when two or
	// more threads write r, or RemapUntouched.
	Writer []int32
	// PerThread[th] lists the rows thread th writes, ascending.
	PerThread [][]int32
	// Writes is the total Add-call count (sum of Counts).
	Writes int64
}

// CountRowWrites runs the counting pass for the mode-u MTTKRP reading its
// partial products from CSF level src, under the given partition. The spans
// mirror the kernel loops exactly: leaf rows come from the per-thread leaf
// ranges, rows at the source level from the owned ranges, and rows above
// the source level from the touched ranges (those kernels emit into every
// touched node of their clamped span, including zero contributions, so
// single-writer classification must count by touch, not ownership).
//
//lint:allow hotpath-alloc plan-time census, runs once per (plan, mode)
func CountRowWrites(tree *csf.Tree, part *sched.Partition, u, src int) *RowWrites {
	d := tree.Order()
	if u < 1 || u >= d || src < u || src >= d {
		panic(fmt.Sprintf("kernels: CountRowWrites(u=%d, src=%d) on an order-%d tree", u, src, d))
	}
	rows := tree.Dim(u)
	rw := &RowWrites{
		Counts:    make([]int64, rows),
		Writer:    make([]int32, rows),
		PerThread: make([][]int32, part.T),
	}
	counts := rw.Counts
	writer := rw.Writer
	for i := range writer {
		writer[i] = RemapUntouched
	}
	stamp := make([]int32, rows)
	for i := range stamp {
		stamp[i] = -1
	}
	fids := tree.FidLevel(u)
	for th := 0; th < part.T; th++ {
		var lo, hi int64
		switch {
		case u == d-1:
			lo, hi = part.LeafRange(th) //gate:allow bounds per-thread span lookup, T iterations
		case u == src:
			lo, hi = part.OwnedRange(th, u) //gate:allow bounds per-thread span lookup, T iterations
		default:
			lo = part.Start[th][u]                           //gate:allow bounds per-thread span lookup, T iterations
			hi = minI64(part.Own[th+1][u], int64(len(fids))) //gate:allow bounds per-thread span lookup, T iterations
		}
		t32 := int32(th)
		var journal []int32
		for c := lo; c < hi; c++ {
			r := fids[c]                             //gate:allow bounds partition-clamped span over the fiber-id column
			counts[r]++                              //gate:allow bounds row addressed by stored fiber id, data-dependent
			if w := writer[r]; w == RemapUntouched { //gate:allow bounds row addressed by stored fiber id, data-dependent
				writer[r] = t32
			} else if w != t32 && w >= 0 {
				writer[r] = RemapColdCAS
			}
			if stamp[r] != t32 { //gate:allow bounds row addressed by stored fiber id, data-dependent
				stamp[r] = t32
				journal = append(journal, r)
			}
		}
		rw.Writes += hi - lo
		sort.Slice(journal, func(i, j int) bool { return journal[i] < journal[j] }) //gate:allow escape,bounds plan-time sort of the touched-row journal, once per thread
		rw.PerThread[th] = journal                                                  //gate:allow bounds per-thread journal slot
	}
	return rw
}

// MultiWriterMass returns the write mass landing on rows the census proved
// are written by more than one thread — the model's exact MultiMass input
// for the final layout.
func (rw *RowWrites) MultiWriterMass() int64 {
	var mass int64
	for r, w := range rw.Writer {
		if w == RemapColdCAS {
			mass += rw.Counts[r]
		}
	}
	return mass
}

// AccumPlan fixes, for one non-root MTTKRP output, how the scattered row
// contributions of T threads are combined: the strategy, the row remap, the
// hot-row set, and the touched-row journals that make Reset and Reduce
// proportional to the rows actually written. A plan is built once (per
// core.Plan, per mode) from the write census and is immutable afterwards;
// every workspace's OutBuf shares it.
type AccumPlan struct {
	Rows, Cols, T int
	Strategy      AccumStrategy
	// Remap classifies every output row. Under AccumHybrid a non-negative
	// entry is the row's hot slot; under AccumPriv it is the row's single
	// writing thread. Negative entries are the Remap* sentinels.
	Remap []int32
	// HotIDs maps hot slot -> row (AccumHybrid).
	HotIDs []int32
	// Cold lists the touched non-hot rows, ascending (hybrid Reset).
	Cold []int32
	// Touched lists every written row, ascending.
	Touched []int32
	// Layout, when non-nil, is the factor-row remap the kernels execute
	// under: Rows, Remap, HotIDs, Cold, Touched and PerThread are all in
	// *packed* row space (the plan was built from a Remapped census), and
	// Reduce routes packed row p to original row Layout.Inv[p] so the
	// caller's output matrix stays in original order.
	Layout *RowRemap
	// PerThread[th] is thread th's touched-row journal (AccumPriv Reset).
	PerThread [][]int32
	// Diagnostics: total Add calls, Add calls landing in the hot set, and
	// the cold-row split between CAS and single-writer direct stores.
	Writes     int64
	HotWrites  int64
	CASRows    int
	DirectRows int
}

// HotK returns the number of hot rows (replica rows per thread).
func (p *AccumPlan) HotK() int { return len(p.HotIDs) }

// String renders the plan for Describe output, e.g.
// "hybrid(hot=24, direct=16384, cas=3)".
func (p *AccumPlan) String() string {
	switch p.Strategy {
	case AccumPriv:
		return fmt.Sprintf("priv(touched=%d)", len(p.Touched))
	case AccumHybrid:
		return fmt.Sprintf("hybrid(hot=%d, direct=%d, cas=%d)", len(p.HotIDs), p.DirectRows, p.CASRows)
	default:
		return fmt.Sprintf("atomic(touched=%d)", len(p.Touched))
	}
}

// PlanAccum resolves the accumulation mechanics for one output from its
// write census. Under AccumHybrid the hot set is the most-written
// multi-writer rows — k capped so the T dense replicas (T·k·cols elements)
// fit hotBudgetElems (<= 0 selects DefaultHotBudgetElems) — and the cold
// tail is split into single-writer rows (plain stores) and shared rows
// (CAS). Under AccumPriv the census writers become the reduction remap:
// single-writer rows copy one replica, shared rows sum all T.
//
//lint:allow hotpath-alloc plan-time construction, runs once per (plan, mode)
func PlanAccum(rw *RowWrites, cols, t int, strat AccumStrategy, hotBudgetElems int64) *AccumPlan {
	if cols <= 0 || t <= 0 {
		panic(fmt.Sprintf("kernels: PlanAccum(cols=%d, t=%d)", cols, t))
	}
	if hotBudgetElems <= 0 {
		hotBudgetElems = DefaultHotBudgetElems
	}
	rows := len(rw.Counts)
	ap := &AccumPlan{
		Rows:      rows,
		Cols:      cols,
		T:         t,
		Strategy:  strat,
		PerThread: rw.PerThread,
		Writes:    rw.Writes,
	}
	for r, w := range rw.Writer {
		if w != RemapUntouched {
			ap.Touched = append(ap.Touched, int32(r))
		}
	}
	switch strat {
	case AccumPriv:
		ap.Remap = rw.Writer
		return ap
	case AccumAtomic:
		ap.Remap = make([]int32, rows)
		for r, w := range rw.Writer {
			if w == RemapUntouched {
				ap.Remap[r] = RemapUntouched
			} else {
				ap.Remap[r] = RemapColdCAS
			}
		}
		return ap
	case AccumHybrid:
		// Hot candidates: shared rows written often enough to amortise a
		// replica, most-written first, capped by the footprint budget.
		var cand []int32
		for r, w := range rw.Writer {
			if w == RemapColdCAS && rw.Counts[r] >= int64(hotWriteFactor*t) {
				cand = append(cand, int32(r))
			}
		}
		sort.Slice(cand, func(i, j int) bool {
			ci, cj := rw.Counts[cand[i]], rw.Counts[cand[j]]
			if ci != cj {
				return ci > cj
			}
			return cand[i] < cand[j]
		})
		k := len(cand)
		if maxK := hotBudgetElems / int64(t*cols); int64(k) > maxK {
			k = int(maxK)
		}
		ap.HotIDs = append([]int32(nil), cand[:k]...)
		ap.Remap = make([]int32, rows)
		for r := range ap.Remap {
			ap.Remap[r] = RemapUntouched
		}
		for slot, r := range ap.HotIDs {
			ap.Remap[r] = int32(slot)
			ap.HotWrites += rw.Counts[r]
		}
		for r, w := range rw.Writer {
			if w == RemapUntouched || ap.Remap[r] >= 0 {
				continue
			}
			if w >= 0 {
				ap.Remap[r] = RemapColdDirect
				ap.DirectRows++
			} else {
				ap.Remap[r] = RemapColdCAS
				ap.CASRows++
			}
			ap.Cold = append(ap.Cold, int32(r))
		}
		return ap
	default:
		panic(fmt.Sprintf("kernels: PlanAccum: unknown strategy %v", strat))
	}
}

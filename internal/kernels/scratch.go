package kernels

import (
	"fmt"

	"stef/internal/tensor"
)

// Scratch holds the per-thread temporary state of the MTTKRP kernels: the
// per-level rank-vector accumulators and the boundary replica rows of the
// no-atomics merge scheme. One Scratch serves every kernel of one engine
// (root and non-root, both CSF trees): the slot layout is indexed by CSF
// level, and boundary rows are dead after each root call returns. A Scratch
// belongs to exactly one in-flight MTTKRP at a time; workspaces pool them
// so steady-state solves allocate nothing.
type Scratch struct {
	threads int
	rank    int
	stride  int // padded rank, keeps threads off shared cache lines
	slots   int // accumulator slots per thread, one per CSF level 0..d-2
	vecs    []float64
	// bound[l] holds one boundary replica row per thread for level l
	// (level 0 stands in for the root output). Kernels must zero the rows
	// they merge before writing: pooled reuse leaves stale data behind.
	bound []*tensor.Matrix
	// ops is the rank-vector primitive set, R-specialized when the rank
	// has a blocked form (vec.go / vec_gen.go). Kernels rebind the
	// primitive names from here at the top of each thread body.
	ops vecOps
	// shadow is the write-disjointness oracle; a no-op unless built with
	// -tags shadowtrace (see shadow_off.go / shadow_on.go).
	shadow shadowState
	// life is the workspace-lifetime oracle; a no-op unless built with
	// -tags lifetrace (see life_off.go / life_on.go).
	life lifeScratchState
}

// NewScratch sizes a scratch for order-d trees at the given rank and thread
// count.
func NewScratch(d, rank, threads int) *Scratch {
	if d < 2 || rank <= 0 || threads <= 0 {
		panic(fmt.Sprintf("kernels: NewScratch(d=%d, rank=%d, threads=%d)", d, rank, threads))
	}
	s := &Scratch{
		threads: threads,
		rank:    rank,
		stride:  (rank + 7) &^ 7,
		slots:   d - 1,
		bound:   make([]*tensor.Matrix, d-1),
		ops:     opsFor(rank),
	}
	s.vecs = make([]float64, threads*s.slots*s.stride)
	for l := range s.bound {
		s.bound[l] = tensor.NewMatrix(threads, rank)
	}
	return s
}

// vec returns thread th's accumulator for the given slot (CSF level), with
// capacity clamped to rank so appends can never bleed into a neighbour.
func (s *Scratch) vec(th, slot int) []float64 {
	base := (th*s.slots + slot) * s.stride
	return s.vecs[base : base+s.rank : base+s.rank]
}

// check panics unless the scratch fits an order-d kernel launch at the
// given rank and partition width.
func (s *Scratch) check(d, rank, threads int) {
	if s.rank != rank || s.threads < threads || s.slots < d-1 {
		panic(fmt.Sprintf("kernels: scratch sized for rank=%d threads=%d slots=%d, kernel needs rank=%d threads=%d order=%d",
			s.rank, s.threads, s.slots, rank, threads, d))
	}
}

//go:build !shadowtrace

package kernels

import "stef/internal/sched"

// shadowState is the disabled form of the shadow-write oracle: every hook
// is an empty method the compiler inlines to nothing, so instrumented
// kernels cost zero in normal builds. Build with -tags shadowtrace to get
// the recording implementation (shadow_on.go), which panics when two
// threads claim the same output row or a boundary replica write falls
// outside the partition's declared boundary set.
type shadowState struct{}

func (*shadowState) begin(*sched.Partition)       {}
func (*shadowState) end()                         {}
func (*shadowState) own(th, level int, id int64)  {}
func (*shadowState) boundary(th, l int, id int64) {}

// outbufShadow is the disabled form of the accumulation-plan oracle: in
// normal builds the OutBuf hooks below inline to nothing. With
// -tags shadowtrace the recording implementation checks every hot-replica
// and cold-direct store against the plan's census (shadow_on.go).
type outbufShadow struct{}

func (b *OutBuf) shadowReset()                       {}
func (b *OutBuf) shadowHot(th, row int, slot int32)  {}
func (b *OutBuf) shadowDirect(th, row int)           {}

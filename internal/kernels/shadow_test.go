//go:build shadowtrace

package kernels

import (
	"fmt"
	"strings"
	"testing"

	"stef/internal/csf"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// allSaves returns the Save vector memoizing every interior level.
func allSaves(d int) []bool {
	save := make([]bool, d)
	for l := 1; l <= d-2; l++ {
		save[l] = true
	}
	return save
}

// expectShadowPanic fails the test unless the calling function panics with a
// shadow-oracle message.
func expectShadowPanic(t *testing.T) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatal("write-disjointness violation escaped the shadow oracle")
	}
	msg, ok := r.(string)
	if !ok || !strings.HasPrefix(msg, "kernels: shadow: ") {
		t.Fatalf("panic %v, want a kernels: shadow: message", r)
	}
	t.Logf("oracle: %s", msg)
}

// TestShadowCleanRuns drives the full kernel suite (root and every non-root
// mode, specialised and generic orders, heavy boundary sharing) under the
// armed oracle: a clean Algorithm 3 implementation must never trip it, and
// the outputs must still match the COO reference.
func TestShadowCleanRuns(t *testing.T) {
	shapes := [][]int{
		{7, 9, 11},
		{6, 5, 9, 8},
		{3, 4, 5, 6, 4},
		{2, 300, 5},        // two root slices: heavy boundary sharing
		{3, 5, 6, 4, 3, 4}, // order 6: generic kernels
	}
	for _, dims := range shapes {
		tt := tensor.Random(dims, 400, nil, int64(len(dims))*7)
		tree := csf.Build(tt, nil)
		for _, threads := range []int{1, 2, 4} {
			part := sched.NewPartition(tree, threads)
			ctx := fmt.Sprintf("shadow dims=%v T=%d", dims, threads)
			runAllModes(t, tt, tree, part, allSaves(len(dims)), 5, ctx)
		}
	}
}

// TestShadowFlagsCorruptedPartition injects the bug class the oracle exists
// to catch: a partition whose Start bound disagrees with the leaf split, so
// one thread emits boundary-replica writes for nodes the partition never
// declared shared. The static analyzer cannot see this — the store indices
// are still partition-derived — but the dynamic oracle must panic.
func TestShadowFlagsCorruptedPartition(t *testing.T) {
	tt := tensor.Random([]int{300, 9, 4}, 900, nil, 33)
	tree := csf.Build(tt, nil)
	part := sched.NewPartition(tree, 2)
	if part.Start[1][0] < 2 {
		t.Fatalf("fixture partition has Start[1][0]=%d; need >= 2 to corrupt", part.Start[1][0])
	}
	// Shift thread 1's declared start two nodes early. Its loop now covers
	// nodes it does not own beyond its single admitted replica write.
	part.Start[1][0] -= 2

	rank := 4
	factors := tensor.RandomFactors(tt.Dims, rank, 99)
	lf := LevelFactors(factors, tree.Perm())
	partials := NewPartials(tree, rank, allSaves(3))
	out := tensor.NewMatrix(tree.Dim(0), rank)
	sc := NewScratch(3, rank, 2)
	for l := range sc.bound {
		sc.bound[l].Zero()
	}

	// par.Do does not forward goroutine panics, so arm the oracle by hand
	// and run the offending thread body on this goroutine.
	sc.shadow.begin(part)
	defer expectShadowPanic(t)
	root3Thread(1, tree, lf, out, partials, part, sc)
	t.Fatal("root3Thread returned; oracle never fired")
}

// TestShadowCrossThreadClaim checks the ownership half of the oracle
// directly: two threads claiming the same (level, node) canonical row.
func TestShadowCrossThreadClaim(t *testing.T) {
	tree := csf.Build(tensor.Random([]int{4, 5, 6}, 60, nil, 5), nil)
	var s shadowState
	s.begin(sched.NewPartition(tree, 2))
	s.own(0, 1, 42)
	s.own(0, 1, 43) // distinct node: fine
	s.own(0, 1, 42) // re-claim by the same thread: fine
	defer expectShadowPanic(t)
	s.own(1, 1, 42)
}

// TestShadowDisarmed checks that the oracle stays silent outside
// begin/end — tests call *Thread bodies directly without a launch.
func TestShadowDisarmed(t *testing.T) {
	var s shadowState
	s.own(0, 0, 7)
	s.own(1, 0, 7)
	s.boundary(1, 0, 7)
}

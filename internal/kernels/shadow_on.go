//go:build shadowtrace

package kernels

import (
	"fmt"
	"sync"

	"stef/internal/sched"
)

// shadowState is the dynamic half of the write-disjointness verification:
// while a kernel launch is active it records which thread claimed each
// (level, node) store and panics the moment Algorithm 3's ownership
// discipline is violated — two threads writing the same canonical row, a
// boundary replica write for a node the partition never declared shared,
// or a thread emitting more than one replica write per level. The static
// write-disjoint analyzer proves stores are *indexed* disjointly; this
// oracle checks the partition actually *delivers* disjoint indices, so the
// two verifications cover each other's blind spot.
//
// The mutex serialises claims, which deliberately destroys kernel
// performance; this build tag exists only for tests (-tags shadowtrace).
type shadowState struct {
	mu      sync.Mutex
	part    *sched.Partition
	owner   map[shadowKey]int  // (level, node) -> claiming thread
	replica map[[2]int]int64   // (thread, level) -> node of its replica write
}

type shadowKey struct {
	level int
	id    int64
}

// begin arms the oracle for one kernel launch over the given partition.
func (s *shadowState) begin(p *sched.Partition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.part = p
	if s.owner == nil {
		s.owner = make(map[shadowKey]int)
		s.replica = make(map[[2]int]int64)
	}
	clear(s.owner)
	clear(s.replica)
}

// end disarms the oracle.
func (s *shadowState) end() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.part = nil
}

// own records a canonical (owned) store of level-l node id by thread th.
func (s *shadowState) own(th, level int, id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.part == nil {
		return // kernel invoked outside begin/end (direct *Thread call in tests)
	}
	key := shadowKey{level, id}
	if prev, claimed := s.owner[key]; claimed && prev != th {
		panic(fmt.Sprintf("kernels: shadow: level %d node %d written by thread %d and thread %d outside the boundary set",
			level, id, prev, th))
	}
	s.owner[key] = th
}

// boundary records a store of level-l node id through thread th's boundary
// replica row and checks it against the partition's declaration.
func (s *shadowState) boundary(th, l int, id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.part == nil {
		return
	}
	declared, ok := s.part.DeclaredBoundary(th, l)
	if !ok {
		panic(fmt.Sprintf("kernels: shadow: thread %d wrote a boundary replica at level %d, but the partition declares no shared start there",
			th, l))
	}
	if id != declared {
		panic(fmt.Sprintf("kernels: shadow: thread %d replica write at level %d hit node %d, declared boundary is node %d",
			th, l, id, declared))
	}
	rk := [2]int{th, l}
	if prev, seen := s.replica[rk]; seen && prev != id {
		panic(fmt.Sprintf("kernels: shadow: thread %d emitted replica writes for nodes %d and %d at level %d; Algorithm 3 admits one",
			th, prev, id, l))
	}
	s.replica[rk] = id
}

//go:build shadowtrace

package kernels

import (
	"fmt"
	"sync"

	"stef/internal/sched"
)

// shadowState is the dynamic half of the write-disjointness verification:
// while a kernel launch is active it records which thread claimed each
// (level, node) store and panics the moment Algorithm 3's ownership
// discipline is violated — two threads writing the same canonical row, a
// boundary replica write for a node the partition never declared shared,
// or a thread emitting more than one replica write per level. The static
// write-disjoint analyzer proves stores are *indexed* disjointly; this
// oracle checks the partition actually *delivers* disjoint indices, so the
// two verifications cover each other's blind spot.
//
// The mutex serialises claims, which deliberately destroys kernel
// performance; this build tag exists only for tests (-tags shadowtrace).
type shadowState struct {
	mu      sync.Mutex
	part    *sched.Partition
	owner   map[shadowKey]int  // (level, node) -> claiming thread
	replica map[[2]int]int64   // (thread, level) -> node of its replica write
}

type shadowKey struct {
	level int
	id    int64
}

// begin arms the oracle for one kernel launch over the given partition.
func (s *shadowState) begin(p *sched.Partition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.part = p
	if s.owner == nil {
		s.owner = make(map[shadowKey]int)
		s.replica = make(map[[2]int]int64)
	}
	clear(s.owner)
	clear(s.replica)
}

// end disarms the oracle.
func (s *shadowState) end() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.part = nil
}

// own records a canonical (owned) store of level-l node id by thread th.
func (s *shadowState) own(th, level int, id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.part == nil {
		return // kernel invoked outside begin/end (direct *Thread call in tests)
	}
	key := shadowKey{level, id}
	if prev, claimed := s.owner[key]; claimed && prev != th {
		panic(fmt.Sprintf("kernels: shadow: level %d node %d written by thread %d and thread %d outside the boundary set",
			level, id, prev, th))
	}
	s.owner[key] = th
}

// boundary records a store of level-l node id through thread th's boundary
// replica row and checks it against the partition's declaration.
func (s *shadowState) boundary(th, l int, id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.part == nil {
		return
	}
	declared, ok := s.part.DeclaredBoundary(th, l)
	if !ok {
		panic(fmt.Sprintf("kernels: shadow: thread %d wrote a boundary replica at level %d, but the partition declares no shared start there",
			th, l))
	}
	if id != declared {
		panic(fmt.Sprintf("kernels: shadow: thread %d replica write at level %d hit node %d, declared boundary is node %d",
			th, l, id, declared))
	}
	rk := [2]int{th, l}
	if prev, seen := s.replica[rk]; seen && prev != id {
		panic(fmt.Sprintf("kernels: shadow: thread %d emitted replica writes for nodes %d and %d at level %d; Algorithm 3 admits one",
			th, prev, id, l))
	}
	s.replica[rk] = id
}

// outbufShadow is the dynamic oracle for planned accumulation buffers: it
// checks every hot-replica and cold-direct store against the plan's write
// census, panicking when a store uses a slot the remap does not declare for
// its row, or when a second thread direct-writes a row the census proved
// single-writer. Armed by Reset (planned buffers only); like shadowState,
// the mutex deliberately serialises claims — shadowtrace builds exist only
// for tests.
type outbufShadow struct {
	mu     sync.Mutex
	armed  bool
	direct map[int]int // row -> thread that direct-wrote it this launch
}

// shadowReset arms the oracle for the next kernel launch and forgets the
// previous launch's direct-write claims. When the plan executes under a
// factor-row remap, the layout is re-verified to be a bijection over the
// buffer's row space: every per-row claim below is in *packed* space, and
// Reduce's inverse routing (and its parallel write-disjointness) is only
// sound when Fwd and Inv are mutual inverses.
func (b *OutBuf) shadowReset() {
	s := &b.shadow
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = b.plan != nil
	if s.armed {
		if m := b.plan.Layout; m != nil {
			if m.Rows() != b.rows || len(m.Inv) != b.rows {
				panic(fmt.Sprintf("kernels: shadow: %d-row layout on a %d-row buffer", m.Rows(), b.rows))
			}
			for r, p := range m.Fwd {
				if p < 0 || int(p) >= b.rows || int(m.Inv[p]) != r {
					panic(fmt.Sprintf("kernels: shadow: layout is not a bijection: Fwd[%d]=%d, Inv[%d]=%d",
						r, p, p, m.Inv[p]))
				}
			}
			if m.Hot < 0 || m.Hot > b.rows {
				panic(fmt.Sprintf("kernels: shadow: layout hot prefix %d outside [0, %d]", m.Hot, b.rows))
			}
		}
	}
	if s.direct == nil {
		s.direct = make(map[int]int)
	}
	clear(s.direct)
}

// shadowHot records a hot-replica store of `row` through `slot` by thread
// th and checks it against the plan's remap.
func (b *OutBuf) shadowHot(th, row int, slot int32) {
	s := &b.shadow
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return
	}
	ap := b.plan
	if ap.Strategy != AccumHybrid {
		panic(fmt.Sprintf("kernels: shadow: hot-replica write on a %v buffer", ap.Strategy))
	}
	if row < 0 || row >= len(ap.Remap) {
		panic(fmt.Sprintf("kernels: shadow: thread %d hot-replica write for out-of-range row %d", th, row))
	}
	if ap.Remap[row] != slot {
		panic(fmt.Sprintf("kernels: shadow: thread %d hot-replica write for row %d through slot %d; the plan's remap declares %d",
			th, row, slot, ap.Remap[row]))
	}
}

// shadowDirect records a plain (non-atomic) shared-buffer store of `row` by
// thread th; a second thread storing the same row this launch means the
// single-writer proof was wrong and the store races.
func (b *OutBuf) shadowDirect(th, row int) {
	s := &b.shadow
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return
	}
	ap := b.plan
	if row < 0 || row >= len(ap.Remap) || ap.Remap[row] != RemapColdDirect {
		panic(fmt.Sprintf("kernels: shadow: thread %d plain store to row %d, which the plan's remap does not declare cold-direct",
			th, row))
	}
	if prev, seen := s.direct[row]; seen && prev != th {
		panic(fmt.Sprintf("kernels: shadow: row %d direct-written by thread %d and thread %d; the census declared a single writer",
			row, prev, th))
	}
	s.direct[row] = th
}

package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/csf"
	"stef/internal/tensor"
)

func buildTree(t *testing.T, dims []int, nnz int, seed int64, skew []float64) *csf.Tree {
	t.Helper()
	tt := tensor.Random(dims, nnz, skew, seed)
	tr := csf.Build(tt, nil)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPartitionValidates(t *testing.T) {
	tree := buildTree(t, []int{10, 20, 30}, 500, 1, nil)
	for _, threads := range []int{1, 2, 3, 4, 7, 16, 600} {
		p := NewPartition(tree, threads)
		if err := p.Validate(tree); err != nil {
			t.Errorf("T=%d: %v", threads, err)
		}
	}
}

func TestPartitionLeafBalance(t *testing.T) {
	tree := buildTree(t, []int{4, 50, 60}, 999, 2, []float64{2.5, 0, 0})
	for _, threads := range []int{2, 3, 5, 8} {
		p := NewPartition(tree, threads)
		loads := p.Loads()
		var lo, hi int64 = 1 << 62, 0
		for _, l := range loads {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if hi-lo > 1 {
			t.Errorf("T=%d: leaf loads %v differ by more than 1", threads, loads)
		}
	}
}

// TestOwnershipExact verifies that Own ranges partition each level and that
// Own[th][l] is exactly the first node whose subtree starts at or after the
// thread's first leaf.
func TestOwnershipExact(t *testing.T) {
	tree := buildTree(t, []int{6, 7, 8, 9}, 700, 3, nil)
	d := tree.Order()
	// leafBegin[l][n] is the first leaf of node n's subtree, computed by
	// descending the pointer chains.
	leafBegin := make([][]int64, d)
	for l := range leafBegin {
		leafBegin[l] = make([]int64, tree.NumFibers(l))
	}
	for l := 0; l < d; l++ {
		for n := 0; n < tree.NumFibers(l); n++ {
			leaf := int64(n)
			for ll := l; ll < d-1; ll++ {
				leaf = tree.PtrLevel(ll)[leaf]
			}
			leafBegin[l][n] = leaf
		}
	}
	for _, threads := range []int{1, 2, 3, 5, 9} {
		p := NewPartition(tree, threads)
		for th := 0; th <= threads; th++ {
			for l := 0; l < d; l++ {
				want := int64(tree.NumFibers(l))
				for n := 0; n < tree.NumFibers(l); n++ {
					if leafBegin[l][n] >= p.LeafStart[th] {
						want = int64(n)
						break
					}
				}
				if p.Own[th][l] != want {
					t.Errorf("T=%d th=%d level %d: Own=%d, want %d", threads, th, l, p.Own[th][l], want)
				}
			}
		}
	}
}

func TestSharedStartConsistency(t *testing.T) {
	tree := buildTree(t, []int{3, 100, 40}, 800, 4, []float64{3, 0, 0})
	p := NewPartition(tree, 6)
	for th := 1; th < 6; th++ {
		for l := 0; l < tree.Order(); l++ {
			if p.SharedStart(th, l) != (p.Own[th][l] == p.Start[th][l]+1) {
				t.Errorf("th=%d l=%d: SharedStart inconsistent", th, l)
			}
		}
	}
}

func TestDeclaredBoundary(t *testing.T) {
	tree := buildTree(t, []int{3, 100, 40}, 800, 4, []float64{3, 0, 0})
	p := NewPartition(tree, 6)
	var declared int
	for th := 1; th < p.T; th++ {
		for l := 0; l < tree.Order(); l++ {
			nd, ok := p.DeclaredBoundary(th, l)
			if ok != p.SharedStart(th, l) {
				t.Errorf("th=%d l=%d: DeclaredBoundary ok=%v, SharedStart=%v", th, l, ok, p.SharedStart(th, l))
			}
			if ok {
				declared++
				if nd != p.Start[th][l] {
					t.Errorf("th=%d l=%d: declared node %d, Start is %d", th, l, nd, p.Start[th][l])
				}
			}
		}
	}
	if declared == 0 {
		t.Fatal("fixture partition declares no boundaries; test exercises nothing")
	}
	// Thread 0 and out-of-range coordinates never declare a boundary.
	for _, c := range [][2]int{{0, 0}, {p.T, 0}, {-1, 0}, {2, -1}, {2, tree.Order()}} {
		if _, ok := p.DeclaredBoundary(c[0], c[1]); ok {
			t.Errorf("DeclaredBoundary(%d, %d) ok, want none", c[0], c[1])
		}
	}
}

func TestSlicePartitionEqual(t *testing.T) {
	tree := buildTree(t, []int{9, 20, 30}, 400, 5, nil)
	sp := NewSlicePartitionEqual(tree, 4)
	if sp.Boundaries[0] != 0 || sp.Boundaries[4] != int64(tree.NumFibers(0)) {
		t.Fatalf("boundaries %v do not cover slices", sp.Boundaries)
	}
	for th := 0; th < 4; th++ {
		if sp.Boundaries[th] > sp.Boundaries[th+1] {
			t.Fatalf("boundaries %v not monotone", sp.Boundaries)
		}
	}
}

func TestSlicePartitionNNZCoversAll(t *testing.T) {
	tree := buildTree(t, []int{9, 20, 30}, 400, 6, []float64{2, 0, 0})
	sp := NewSlicePartitionNNZ(tree, 3)
	loads := sp.SliceLoads(tree)
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != int64(tree.NNZ()) {
		t.Fatalf("slice loads %v sum to %d, want %d", loads, sum, tree.NNZ())
	}
}

// TestSlicePartitionFewSlices reproduces the paper's motivating case: with
// fewer root slices than threads, slice partitioning leaves threads idle
// while the balanced partition does not.
func TestSlicePartitionFewSlices(t *testing.T) {
	// Mode of length 2 becomes the root under length-sorted ordering.
	tt := tensor.Random([]int{400, 300, 2}, 2000, []float64{0, 0, 4}, 7)
	tree := csf.Build(tt, nil)
	if tree.NumFibers(0) != 2 {
		t.Skipf("generator produced %d root slices, want 2", tree.NumFibers(0))
	}
	const threads = 5
	sp := NewSlicePartitionNNZ(tree, threads)
	idle := 0
	for _, l := range sp.SliceLoads(tree) {
		if l == 0 {
			idle++
		}
	}
	if idle < threads-2 {
		t.Errorf("expected at least %d idle threads under slice partitioning, got %d", threads-2, idle)
	}
	p := NewPartition(tree, threads)
	for th, l := range p.Loads() {
		if l == 0 {
			t.Errorf("balanced partition left thread %d idle", th)
		}
	}
	if ImbalancePct(p.Loads()) > 1 {
		t.Errorf("balanced partition imbalance %.2f%% too high", ImbalancePct(p.Loads()))
	}
	if ImbalancePct(sp.SliceLoads(tree)) < 100 {
		t.Errorf("slice partition imbalance %.2f%% unexpectedly low", ImbalancePct(sp.SliceLoads(tree)))
	}
}

func TestToPartitionAligned(t *testing.T) {
	tree := buildTree(t, []int{8, 10, 12, 6}, 600, 8, nil)
	for _, threads := range []int{1, 2, 4, 9} {
		sp := NewSlicePartitionNNZ(tree, threads)
		p := sp.ToPartition(tree)
		if err := p.Validate(tree); err != nil {
			t.Errorf("T=%d: %v", threads, err)
		}
		for th := 0; th <= threads; th++ {
			for l := 0; l < tree.Order(); l++ {
				if p.Own[th][l] != p.Start[th][l] {
					t.Errorf("T=%d th=%d l=%d: slice partition should be aligned", threads, th, l)
				}
			}
		}
	}
}

func TestImbalancePct(t *testing.T) {
	if got := ImbalancePct([]int64{10, 10, 10}); got != 0 {
		t.Errorf("uniform loads imbalance %g, want 0", got)
	}
	if got := ImbalancePct([]int64{30, 0, 0}); got != 200 {
		t.Errorf("all-on-one imbalance %g, want 200", got)
	}
	if got := ImbalancePct(nil); got != 0 {
		t.Errorf("empty imbalance %g, want 0", got)
	}
}

func TestPartitionQuick(t *testing.T) {
	f := func(seed int64, tRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + int(dRaw)%3
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 1 + rng.Intn(15)
		}
		space := 1
		for _, n := range dims {
			space *= n
		}
		nnz := 1 + rng.Intn(minInt(300, space))
		tt := tensor.Random(dims, nnz, nil, seed)
		tree := csf.Build(tt, nil)
		threads := 1 + int(tRaw)%12
		p := NewPartition(tree, threads)
		return p.Validate(tree) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package sched implements STeF's fine-grained, non-zero-balanced work
// distribution (Algorithm 3 of the paper) and the slice-based partitioning
// used by prior work, together with load-imbalance metrics.
//
// STeF splits the leaf non-zeros evenly across T threads and derives, for
// every CSF level, the node at which each thread starts (the parent chain
// of its first leaf). A node whose leaves span a thread boundary is shared:
// each later thread accumulates its partial result for that node into a
// per-thread boundary replica row instead of the canonical row, and the
// replicas are merged after the parallel section. This avoids both atomics
// and full privatization, exactly as Section III-A describes (the paper
// phrases the same mechanism as "shifting the write location by the thread
// id").
package sched

import (
	"fmt"
	"sort"

	"stef/internal/csf"
)

// Partition holds the per-thread, per-level start positions of a
// non-zero-balanced work distribution over a CSF tree.
type Partition struct {
	// T is the number of threads.
	T int
	// LeafStart[th] is the first leaf (non-zero) of thread th;
	// LeafStart[T] == nnz.
	//idx: len=dim elem=nnz
	LeafStart []int64
	// Start[th][l] is the node index at level l that contains leaf
	// LeafStart[th] (== NumFibers(l) when LeafStart[th] == nnz). Thread
	// th touches nodes Start[th][l] .. Start[th+1][l] inclusive, clamped
	// to its leaf range.
	//idx: len=dim,rank elem=nnz
	Start [][]int64
	// Own[th][l] is the first node at level l owned by thread th: the
	// first node whose subtree begins at or after LeafStart[th]. Thread
	// th owns nodes [Own[th][l], Own[th+1][l]). A thread's first touched
	// node is shared with the previous thread exactly when
	// Own[th][l] == Start[th][l]+1.
	//idx: len=dim,rank elem=nnz
	Own [][]int64
}

// NewPartition computes the Algorithm 3 work distribution for tree with t
// threads. t must be at least 1.
func NewPartition(tree *csf.Tree, t int) *Partition {
	if t < 1 {
		panic(fmt.Sprintf("sched: invalid thread count %d", t))
	}
	d := tree.Order()
	nnz := tree.NNZ64()
	// Build into locals rather than through the struct: the outer slices
	// are local makes of known length t+1, so the th-indexed stores are
	// bounds-check free, and the per-thread start/own rows stay in
	// registers for the level walk.
	leafStart := make([]int64, t+1)
	starts := make([][]int64, t+1)
	owns := make([][]int64, t+1)
	for th := range leafStart {
		leafStart[th] = int64(th) * nnz / int64(t)
		//lint:allow hotpath-alloc partition construction runs once per plan, T+1 small slices
		start := make([]int64, d) //gate:allow escape partition construction runs once per plan, T+1 small slices
		//gate:allow escape partition construction runs once per plan, T+1 small slices
		own := make([]int64, d) //lint:allow hotpath-alloc partition construction runs once per plan
		// Walk the parent chain of the thread's first leaf
		// (find_parent_CSF in Algorithm 3).
		node := leafStart[th]
		start[d-1] = node //gate:allow bounds start/own are sized to the order; d-1 is the leaf level
		own[d-1] = node
		// aligned records whether the boundary leaf is the very first
		// leaf of the subtree rooted at node; only then does the next
		// parent's subtree also start at the boundary.
		aligned := true
		for l := d - 2; l >= 0; l-- {
			if node >= int64(tree.NumFibers(l+1)) { //gate:allow bounds fiber-count lookup indexed by level, sized to the order
				start[l] = int64(tree.NumFibers(l)) //gate:allow bounds fiber-count lookup indexed by level, sized to the order
				node = int64(tree.NumFibers(l))     //gate:allow bounds fiber-count lookup indexed by level, sized to the order
				own[l] = node
				continue
			}
			parent := parentOf(tree.PtrLevel(l), node) //gate:allow bounds pointer level array has order-1 entries; l ranges over internal levels
			start[l] = parent
			// The parent is owned by this thread only if its whole
			// subtree starts exactly at the boundary leaf.
			if aligned && tree.PtrLevel(l)[parent] == node { //gate:allow bounds parent index from binary search over the fiber pointers, data-dependent
				own[l] = parent
			} else {
				own[l] = parent + 1
				aligned = false
			}
			node = parent
		}
		starts[th] = start
		owns[th] = own
	}
	return &Partition{T: t, LeafStart: leafStart, Start: starts, Own: owns}
}

// parentOf returns the index p such that ptr[p] <= child < ptr[p+1].
func parentOf(ptr []int64, child int64) int64 {
	// sort.Search finds the first p with ptr[p+1] > child.
	n := len(ptr) - 1
	p := sort.Search(n, func(i int) bool { return ptr[i+1] > child })
	return int64(p)
}

// SharedStart reports whether thread th's first touched node at level l is
// shared with an earlier thread, i.e. whether its partial result must go to
// the thread's boundary replica row rather than the canonical row.
func (p *Partition) SharedStart(th, l int) bool {
	return p.Own[th][l] != p.Start[th][l]
}

// DeclaredBoundary returns the node id at level l that thread th is
// allowed to accumulate through its boundary replica row, and whether such
// a node exists. Algorithm 3 admits at most one: the thread's first
// touched node, exactly when it is shared with an earlier thread
// (SharedStart). Thread 0 starts every level at node 0 and never shares.
// The shadowtrace oracle in internal/kernels checks every replica write
// against this declaration.
func (p *Partition) DeclaredBoundary(th, l int) (int64, bool) {
	if th <= 0 || th >= p.T || l < 0 || l >= len(p.Start[th]) { //gate:allow bounds cold oracle helper, called once per replica write under shadowtrace only
		return 0, false
	}
	if !p.SharedStart(th, l) { //gate:allow bounds cold oracle helper, called once per replica write under shadowtrace only
		return 0, false
	}
	return p.Start[th][l], true
}

// OwnedRange returns the half-open node range [lo, hi) at level l owned by
// thread th. Every node is owned by exactly one thread.
func (p *Partition) OwnedRange(th, l int) (lo, hi int64) {
	return p.Own[th][l], p.Own[th+1][l]
}

// LeafRange returns the half-open leaf range of thread th.
func (p *Partition) LeafRange(th int) (lo, hi int64) {
	return p.LeafStart[th], p.LeafStart[th+1]
}

// Validate checks the partition invariants against the tree.
//
//lint:allow hotpath-alloc diagnostic validation, error formatting only
func (p *Partition) Validate(tree *csf.Tree) error {
	d := tree.Order()
	for th := 0; th <= p.T; th++ {
		if len(p.Start[th]) != d || len(p.Own[th]) != d {
			return fmt.Errorf("sched: thread %d has wrong level count", th)
		}
		for l := 0; l < d; l++ {
			if p.Start[th][l] < 0 || p.Start[th][l] > int64(tree.NumFibers(l)) {
				return fmt.Errorf("sched: thread %d level %d start %d out of range", th, l, p.Start[th][l])
			}
			if p.Own[th][l] < p.Start[th][l] || p.Own[th][l] > p.Start[th][l]+1 {
				return fmt.Errorf("sched: thread %d level %d own %d inconsistent with start %d", th, l, p.Own[th][l], p.Start[th][l])
			}
			if th > 0 && p.Own[th][l] < p.Own[th-1][l] {
				return fmt.Errorf("sched: owned ranges not monotone at thread %d level %d", th, l)
			}
		}
	}
	if p.LeafStart[p.T] != tree.NNZ64() {
		return fmt.Errorf("sched: last leaf start %d != nnz %d", p.LeafStart[p.T], tree.NNZ())
	}
	for l := 0; l < d; l++ {
		if p.Own[p.T][l] != int64(tree.NumFibers(l)) {
			return fmt.Errorf("sched: level %d owned ranges do not cover all %d nodes (end %d)", l, tree.NumFibers(l), p.Own[p.T][l])
		}
	}
	return nil
}

// SlicePartition is the slice-granular work distribution used by SPLATT and
// AdaTM: each thread gets a contiguous run of root slices. Boundaries[th]
// is the first slice of thread th; Boundaries[T] == number of slices.
type SlicePartition struct {
	T          int
	Boundaries []int64
}

// NewSlicePartitionEqual splits root slices into T runs of (nearly) equal
// slice count, ignoring the non-zero distribution — Figure 2a's scheme.
func NewSlicePartitionEqual(tree *csf.Tree, t int) *SlicePartition {
	if t < 1 {
		panic(fmt.Sprintf("sched: invalid thread count %d", t))
	}
	slices := int64(tree.NumFibers(0))
	b := make([]int64, t+1)
	for th := 0; th <= t; th++ {
		b[th] = int64(th) * slices / int64(t)
	}
	return &SlicePartition{T: t, Boundaries: b}
}

// NewSlicePartitionNNZ splits root slices into T contiguous runs whose
// non-zero counts are as even as slice granularity allows (each boundary is
// placed at the slice whose prefix non-zero count first reaches the ideal
// split). This is the stronger slice-based baseline: it still cannot help
// when there are fewer heavy slices than threads.
func NewSlicePartitionNNZ(tree *csf.Tree, t int) *SlicePartition {
	if t < 1 {
		panic(fmt.Sprintf("sched: invalid thread count %d", t))
	}
	slices := tree.NumFibers(0)
	prefix := sliceNNZPrefix(tree)
	nnz := prefix[slices]
	b := make([]int64, t+1)
	b[t] = int64(slices)
	for th := 1; th < t; th++ {
		target := int64(th) * nnz / int64(t)
		// First boundary s whose preceding slices already hold the
		// ideal share, kept monotone.
		s := sort.Search(slices+1, func(i int) bool { return prefix[i] >= target })
		b[th] = maxI64(int64(s), b[th-1])
	}
	return &SlicePartition{T: t, Boundaries: b}
}

// sliceNNZPrefix returns prefix sums of per-root-slice non-zero counts:
// prefix[s] is the number of leaves before slice s.
func sliceNNZPrefix(tree *csf.Tree) []int64 {
	d := tree.Order()
	slices := tree.NumFibers(0)
	prefix := make([]int64, slices+1)
	for s := 0; s < slices; s++ {
		// Descend the pointer chain to the leaf level to find the
		// slice's leaf extent.
		end := tree.PtrLevel(0)[s+1]
		for l := 1; l < d-1; l++ {
			end = tree.PtrLevel(l)[end]
		}
		prefix[s+1] = end
	}
	return prefix
}

// ToPartition converts the slice partition into the general Partition form
// consumed by the kernels. Slice boundaries are subtree-aligned, so no node
// is shared between threads and Own == Start at every level — the kernels'
// boundary machinery becomes a no-op, which is exactly the semantics of the
// prior work's distribution.
func (sp *SlicePartition) ToPartition(tree *csf.Tree) *Partition {
	d := tree.Order()
	p := &Partition{
		T:         sp.T,
		LeafStart: make([]int64, sp.T+1),
		Start:     make([][]int64, sp.T+1),
		Own:       make([][]int64, sp.T+1),
	}
	for th := 0; th <= sp.T; th++ {
		//lint:allow hotpath-alloc partition conversion runs once per plan
		p.Start[th] = make([]int64, d)
		node := sp.Boundaries[th]
		p.Start[th][0] = node
		for l := 1; l < d; l++ {
			if node >= int64(tree.NumFibers(l-1)) {
				node = int64(tree.NumFibers(l))
			} else {
				node = tree.PtrLevel(l-1)[node]
			}
			p.Start[th][l] = node
		}
		p.Own[th] = p.Start[th] // aligned: every touched node is owned
		p.LeafStart[th] = p.Start[th][d-1]
	}
	return p
}

// SliceLoads returns the per-thread non-zero counts under the slice
// partition.
func (sp *SlicePartition) SliceLoads(tree *csf.Tree) []int64 {
	prefix := sliceNNZPrefix(tree)
	loads := make([]int64, sp.T)
	for th := 0; th < sp.T; th++ {
		loads[th] = prefix[sp.Boundaries[th+1]] - prefix[sp.Boundaries[th]]
	}
	return loads
}

// Loads returns the per-thread leaf counts of the balanced partition (they
// differ by at most one).
func (p *Partition) Loads() []int64 {
	loads := make([]int64, p.T)
	for th := 0; th < p.T; th++ {
		loads[th] = p.LeafStart[th+1] - p.LeafStart[th]
	}
	return loads
}

// ImbalancePct returns the percentage load imbalance of the given
// per-thread loads: (max/mean - 1) * 100. Zero loads yield 0.
func ImbalancePct(loads []int64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum, max int64
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return (float64(max)/mean - 1) * 100
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

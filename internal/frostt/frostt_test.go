package frostt

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stef/internal/tensor"
)

func TestReadBasic(t *testing.T) {
	in := `# comment line
1 1 1 1.5

2 3 4 -2.25
`
	tt, err := Read(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Order() != 3 || tt.NNZ() != 2 {
		t.Fatalf("order=%d nnz=%d", tt.Order(), tt.NNZ())
	}
	if c := tt.Coord(0); c[0] != 0 || c[1] != 0 || c[2] != 0 {
		t.Fatalf("coord %v (should be 0-based)", c)
	}
	if tt.Dims[0] != 2 || tt.Dims[1] != 3 || tt.Dims[2] != 4 {
		t.Fatalf("inferred dims %v", tt.Dims)
	}
	if tt.Vals[1] != -2.25 {
		t.Fatalf("val %g", tt.Vals[1])
	}
}

func TestReadWithDims(t *testing.T) {
	in := "1 1 2\n"
	tt, err := Read(strings.NewReader(in), []int{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Dims[0] != 5 || tt.Dims[1] != 9 {
		t.Fatalf("dims %v", tt.Dims)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		dims []int
	}{
		{"empty", "", nil},
		{"ragged", "1 1 1 1.0\n1 1 1.0\n", nil},
		{"zero-based", "0 1 1.0\n", nil},
		{"bad value", "1 1 x\n", nil},
		{"bad coord", "a 1 1.0\n", nil},
		{"dims too small", "7 1 1.0\n", []int{3, 3}},
		{"dims wrong order", "1 1 1.0\n", []int{3, 3, 3}},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in), c.dims); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := tensor.Random([]int{6, 7, 8, 9}, 120, nil, 3)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, orig.Dims)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatalf("nnz %d, want %d", back.NNZ(), orig.NNZ())
	}
	for k := 0; k < orig.NNZ(); k++ {
		a, b := orig.Coord(k), back.Coord(k)
		for m := range a {
			if a[m] != b[m] {
				t.Fatalf("coord mismatch at %d", k)
			}
		}
		if orig.Vals[k] != back.Vals[k] {
			t.Fatalf("value mismatch at %d: %g vs %g", k, orig.Vals[k], back.Vals[k])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tns")
	orig := tensor.Random([]int{4, 5, 6}, 40, nil, 8)
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatalf("nnz %d, want %d", back.NNZ(), orig.NNZ())
	}
}

func TestGzipFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tns.gz")
	orig := tensor.Random([]int{8, 9, 10}, 70, nil, 12)
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatalf("nnz %d, want %d", back.NNZ(), orig.NNZ())
	}
	for k := 0; k < orig.NNZ(); k++ {
		if orig.Vals[k] != back.Vals[k] {
			t.Fatalf("value mismatch at %d", k)
		}
	}
	// The .gz file must actually be compressed (magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip-compressed")
	}
}

func TestReadFileBadGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.tns.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, nil); err == nil {
		t.Fatal("expected gzip error")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/path.tns", nil); err == nil {
		t.Fatal("expected error")
	}
}

// Package frostt reads and writes sparse tensors in the FROSTT .tns text
// format: one non-zero per line, d whitespace-separated 1-based coordinates
// followed by a value. Lines starting with '#' and blank lines are ignored.
package frostt

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"stef/internal/tensor"
)

// Read parses a .tns stream. The tensor order is inferred from the first
// data line; mode lengths are the maxima of the observed coordinates unless
// dims is non-nil, in which case dims is used and validated.
func Read(r io.Reader, dims []int) (*tensor.Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var (
		inds  []int32
		vals  []float64
		order int
		maxes []int32
		line  int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if order == 0 {
			order = len(fields) - 1
			if order < 1 {
				return nil, fmt.Errorf("frostt: line %d: need at least one coordinate and a value", line)
			}
			maxes = make([]int32, order)
		}
		if len(fields) != order+1 {
			return nil, fmt.Errorf("frostt: line %d: got %d fields, want %d", line, len(fields), order+1)
		}
		for m := 0; m < order; m++ {
			c, err := strconv.ParseInt(fields[m], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("frostt: line %d: bad coordinate %q: %v", line, fields[m], err)
			}
			if c < 1 {
				return nil, fmt.Errorf("frostt: line %d: coordinate %d is not 1-based", line, c)
			}
			ci := int32(c - 1)
			if ci > maxes[m] {
				maxes[m] = ci
			}
			inds = append(inds, ci)
		}
		v, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("frostt: line %d: bad value %q: %v", line, fields[order], err)
		}
		vals = append(vals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("frostt: scan: %w", err)
	}
	if order == 0 {
		return nil, fmt.Errorf("frostt: empty input")
	}
	if dims == nil {
		dims = make([]int, order)
		for m := range dims {
			dims[m] = int(maxes[m]) + 1
		}
	} else if len(dims) != order {
		return nil, fmt.Errorf("frostt: provided dims order %d does not match data order %d", len(dims), order)
	} else {
		for m := range dims {
			if int(maxes[m]) >= dims[m] {
				return nil, fmt.Errorf("frostt: coordinate %d exceeds provided mode-%d length %d", maxes[m]+1, m, dims[m])
			}
		}
	}
	t := &tensor.Tensor{Dims: dims, Inds: inds, Vals: vals}
	if err := t.Validate(false); err != nil {
		return nil, fmt.Errorf("frostt: %w", err)
	}
	return t, nil
}

// ReadFile reads a .tns file from disk; files ending in ".gz" (the format
// FROSTT distributes) are transparently decompressed. See Read.
func ReadFile(path string, dims []int) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = bufio.NewReaderSize(f, 1<<20)
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("frostt: gzip: %w", err)
		}
		defer gz.Close()
		r = bufio.NewReaderSize(gz, 1<<20)
	}
	return Read(r, dims)
}

// Write emits the tensor in .tns format with 1-based coordinates.
func Write(w io.Writer, t *tensor.Tensor) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	d := t.Order()
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		c := t.Coord(k)
		for m := 0; m < d; m++ {
			if _, err := fmt.Fprintf(bw, "%d ", int64(c[m])+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%g\n", t.Vals[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the tensor to path in .tns format, gzip-compressed when
// path ends in ".gz".
func WriteFile(path string, t *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := Write(w, t); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

package frostt

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary text to the .tns parser; it must never panic,
// and whatever it accepts must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("1 1 1 1.0\n")
	f.Add("# comment\n2 3 4 -5.5\n1 1 1 0\n")
	f.Add("")
	f.Add("1 1\n")
	f.Add("0 0 0 0\n")
	f.Add("9999999999999 1 1\n")
	f.Add("1 1 nan\n")
	f.Fuzz(func(t *testing.T, in string) {
		tt, err := Read(strings.NewReader(in), nil)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tt); err != nil {
			t.Fatalf("write of accepted tensor failed: %v", err)
		}
		back, err := Read(&buf, tt.Dims)
		if err != nil {
			t.Fatalf("round trip of accepted tensor failed: %v", err)
		}
		if back.NNZ() != tt.NNZ() {
			t.Fatalf("round trip changed nnz %d -> %d", tt.NNZ(), back.NNZ())
		}
	})
}

package model

import (
	"fmt"
	"io"

	"stef/internal/stats"
)

// Explain writes a per-mode breakdown of the data-movement estimate for one
// configuration — the view of Section IV's model that tensorinfo and the
// model-explorer example present to users deciding whether to trust a
// memoization choice.
func (p Params) Explain(w io.Writer, save []bool) {
	d := len(p.Dims)
	tab := stats.NewTable("mode(level)", "source", "reads", "writes", "total")
	var sum Cost
	for u := 0; u < d; u++ {
		c := p.ModeCost(save, u)
		sum = sum.Add(c)
		src := "traversal"
		if u > 0 {
			if s := sourceLevel(save, u); s < d-1 {
				src = fmt.Sprintf("P^(%d)", s)
			} else {
				src = "tensor"
			}
		}
		tab.AddRow(u, src, c.Reads, c.Writes, c.Total())
	}
	tab.AddRow("all", "", sum.Reads, sum.Writes, sum.Total())
	tab.Render(w)
	fmt.Fprintf(w, "memoized-partials storage: %d bytes\n", p.MemoBytes(save))
}

// Package model implements STeF's sparsity-aware data-movement model
// (Section IV of the paper) and the exhaustive configuration search over
// memoization subsets and the last-two-mode swap.
//
// The model works in units of matrix/tensor elements (8-byte float64 or
// index words): for each of the d MTTKRP operations in one CPD iteration it
// estimates the volume of reads and writes to memory, given the per-level
// fiber counts of the CSF, the mode lengths, the rank R and a cache
// capacity. Factor-matrix traffic uses the paper's DM_factor rule: a factor
// that fits in cache is read at most once (cold misses only); one that does
// not is read on every access without reuse.
//
// The paper's Section IV formulas are reproduced with one clarification:
// the memoized read cost charges the partial-result read m_k·R at the
// source level k once per consuming MTTKRP (the printed formula folds the
// m_i·R term into the level sum; charging it at the source level is the
// coherent reading and matches the paper's worked uber/vast numbers in
// spirit — what matters to the search is that memoization trades m_k·R
// reads plus a one-time m_k·R write against re-traversing every level
// below k).
package model

import (
	"fmt"
)

// DefaultCacheBytes is the assumed last-level cache capacity. The
// benchmark tensors in this reproduction are scaled ~40x down from the
// paper's, so the default cache is scaled similarly from the ~25 MB LLC of
// the paper's Intel machine.
const DefaultCacheBytes = 2 << 20

// Params carries everything the model needs about one CSF layout.
type Params struct {
	// R is the decomposition rank.
	R int
	// CacheElems is the cache capacity in 8-byte elements.
	CacheElems int64
	// Dims[l] is the mode length at CSF level l.
	Dims []int
	// Fibers[l] is the fiber (node) count at CSF level l; Fibers[d-1]
	// is the non-zero count.
	Fibers []int64

	// T, Accum and PrivCap arm the accumulation-cost extension (see
	// AttachAccum in accum.go); zero values leave the base Section IV
	// model unchanged.
	T       int
	Accum   []RowStats
	PrivCap int64

	// Memoized per-level strategy resolution; nil until AttachAccum.
	accumStrat []AccumStrategy
	accumCost  []Cost

	// Per-level factor-row remap resolution; nil until AttachRemap
	// (remap.go). remapOn[l] routes dmFactor through the packed-layout
	// volume with a remapHot[l]-row hot prefix.
	remapOn  []bool
	remapHot []int64
}

// ParamsForCache builds Params from level dims and fiber counts with a
// cache size in bytes (<= 0 selects DefaultCacheBytes).
func ParamsForCache(dims []int, fibers []int64, r int, cacheBytes int64) Params {
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	return Params{R: r, CacheElems: cacheBytes / 8, Dims: dims, Fibers: fibers}
}

// Cost is a data-movement estimate in elements.
type Cost struct {
	Reads  int64
	Writes int64
}

// Total returns reads plus writes.
func (c Cost) Total() int64 { return c.Reads + c.Writes }

// Add returns the elementwise sum.
func (c Cost) Add(o Cost) Cost { return Cost{c.Reads + o.Reads, c.Writes + o.Writes} }

func (c Cost) String() string {
	return fmt.Sprintf("reads=%d writes=%d", c.Reads, c.Writes)
}

// dmFactor implements DM_factor_i(x): the traffic for x row accesses to the
// level-l factor matrix (N_l × R).
func (p Params) dmFactor(l int, x int64) int64 {
	foot := int64(p.Dims[l]) * int64(p.R)
	vol := x * int64(p.R)
	if foot > p.CacheElems {
		if p.remapOn != nil && p.remapOn[l] {
			// Factor-row remap (remap.go): the hot prefix is resident, the
			// tail streams, and each kernel call pays the pack.
			return p.remapVolumeAt(l, x, p.remapHot[l])
		}
		return vol
	}
	if foot < vol {
		return foot
	}
	return vol
}

// SourceLevel returns the level mode u reads from under save: the smallest
// saved level >= u, or d-1. Planners use it to parameterise the write
// census with the same source the kernels will read.
func SourceLevel(save []bool, u int) int { return sourceLevel(save, u) }

// sourceLevel returns the level mode u reads from under save: the smallest
// saved level >= u, or d-1.
func sourceLevel(save []bool, u int) int {
	d := len(save)
	if u >= d-1 {
		return d - 1
	}
	for l := u; l <= d-2; l++ {
		if save[l] {
			return l
		}
	}
	return d - 1
}

// ModeCost estimates the data movement of the MTTKRP for CSF level u under
// the memoization vector save (save[l] true means P^(l) is stored during
// the mode-0 pass).
func (p Params) ModeCost(save []bool, u int) Cost {
	d := len(p.Dims)
	if len(save) != d {
		panic(fmt.Sprintf("model: save length %d, want %d", len(save), d))
	}
	var c Cost
	if u == 0 {
		// Full downward traversal: index structure and factor rows at
		// every level below the root, plus writes of the output and
		// of every memoized partial result.
		for l := 0; l < d; l++ {
			c.Reads += 2 * p.Fibers[l]
			if l > 0 {
				c.Reads += p.dmFactor(l, p.Fibers[l])
			}
		}
		c.Writes += int64(p.Dims[0]) * int64(p.R)
		for l := 1; l <= d-2; l++ {
			if save[l] {
				c.Writes += p.Fibers[l] * int64(p.R)
			}
		}
		return c
	}
	src := sourceLevel(save, u)
	// Traverse the index structure down to the source level.
	for l := 0; l <= src; l++ {
		c.Reads += 2 * p.Fibers[l]
	}
	// Factor rows: levels 0..u-1 feed the Khatri-Rao row; levels
	// u+1..src feed the upward contraction. Level u's factor is the
	// output, not an input.
	for l := 0; l <= src; l++ {
		if l == u {
			continue
		}
		c.Reads += p.dmFactor(l, p.Fibers[l])
	}
	// Memoized partial rows at the source level (the tensor's values are
	// already counted in the 2*m_{d-1} index/value term when src==d-1).
	if src < d-1 {
		c.Reads += p.Fibers[src] * int64(p.R)
	}
	// Output accumulation: the flat DM_factor write approximation, or —
	// when row-write stats are attached — the resolved strategy's
	// scatter + Reset/Reduce term (see accum.go).
	if p.accumCost != nil && u < len(p.accumCost) {
		c = c.Add(p.accumCost[u])
	} else {
		c.Writes += p.dmFactor(u, p.Fibers[u])
	}
	return c
}

// IterationCost sums ModeCost over every mode of one CPD iteration.
func (p Params) IterationCost(save []bool) Cost {
	var c Cost
	for u := 0; u < len(p.Dims); u++ {
		c = c.Add(p.ModeCost(save, u))
	}
	return c
}

// OpCount estimates the floating-point multiply-add count of one CPD
// iteration under save, ignoring data movement. This is the AdaTM-style
// objective used as a baseline decision rule: it always favours memoization
// that removes recomputation, even when the extra traffic is not worth it.
func (p Params) OpCount(save []bool) int64 {
	d := len(p.Dims)
	var ops int64
	// Mode 0: one Hadamard/scale per node per level.
	for l := 1; l < d; l++ {
		ops += p.Fibers[l] * int64(p.R)
	}
	for u := 1; u < d; u++ {
		src := sourceLevel(save, u)
		for l := 1; l <= src; l++ {
			ops += p.Fibers[l] * int64(p.R)
		}
	}
	return ops
}

// MemoBytes returns the storage cost in bytes of the partial results
// selected by save (Table II's numerator).
func (p Params) MemoBytes(save []bool) int64 {
	var b int64
	for l := 1; l <= len(p.Dims)-2; l++ {
		if save[l] {
			b += p.Fibers[l] * int64(p.R) * 8
		}
	}
	return b
}

package model

import (
	"fmt"
	"sort"
)

// This file extends the Section IV data-movement model with an output
// *accumulation* cost term. The base model charges every non-root MTTKRP a
// flat DM_factor write for its scattered output; in reality that cost is
// strategy-dependent — full per-thread privatization pays O(T·rows·R)
// Reset/Reduce even when few rows are touched, while a shared atomic buffer
// serializes on the hot rows that skewed tensors guarantee. Given the
// per-level row-write histogram (an O(nnz) census), the model scores
// {priv, hybrid(k), atomic} per level and the configuration search picks
// the cheapest jointly with memoization and the last-two-mode swap.

// AccumStrategy is the model's view of an output accumulation strategy;
// internal/kernels carries the executable twin (core maps between them).
type AccumStrategy int

const (
	// AccumPriv: every thread holds a full private output copy.
	AccumPriv AccumStrategy = iota
	// AccumHybrid: dense per-thread replicas for the hottest rows, shared
	// writes (plain or CAS) for the cold tail.
	AccumHybrid
	// AccumAtomic: one shared output, every add a CAS.
	AccumAtomic
)

// AccumStrategies enumerates the strategies in preference order (ties in
// the score keep the earlier, simpler strategy).
func AccumStrategies() []AccumStrategy {
	return []AccumStrategy{AccumPriv, AccumHybrid, AccumAtomic}
}

func (s AccumStrategy) String() string {
	switch s {
	case AccumPriv:
		return "priv"
	case AccumHybrid:
		return "hybrid"
	case AccumAtomic:
		return "atomic"
	}
	return fmt.Sprintf("accum(%d)", int(s))
}

// DefaultPrivCapElems mirrors kernels.DefaultPrivatizeMaxElems: the
// rows·R·T element budget above which full privatization is off the table.
const DefaultPrivCapElems = 1 << 24

// casOverhead is the modeled extra cost, in element-moves per element, of a
// CAS add relative to a plain store: the locked read-modify-write cycle,
// retries, and cache-line ping-pong between colliding cores. Calibrated
// against the dev host, where forced-atomic MTTKRP kernels measure 6-9x
// the privatized ones; every atomic add pays it, contended or not.
const casOverhead = 6

// RowStats condenses the row-write histogram of one CSF level's MTTKRP
// output to what the cost formulas need: the total write count, the
// touched-row count, and the mass concentration of the hottest rows.
type RowStats struct {
	// Writes is the total number of row-vector adds (Σ counts).
	Writes int64
	// Touched is the number of rows with at least one write.
	Touched int64
	// TopMass[i] is the combined write count of the min(2^i, Touched)
	// most-written rows; the last entry equals Writes. Power-of-two
	// resolution keeps the stats O(log rows) while still exposing the
	// skew the hybrid strategy exploits.
	TopMass []int64
	// Mass2 and Touched2 cover the rows with at least two writes — the
	// candidates for cross-thread sharing. NewRowStats fills them from the
	// histogram alone.
	Mass2    int64
	Touched2 int64
	// MultiMass is the write mass landing on rows proven to be written by
	// more than one thread. It is exact only when MultiExact is set (the
	// planner back-fills it from the write census for the final layout);
	// otherwise the cost formulas estimate it from Mass2.
	MultiMass  int64
	MultiExact bool
}

// NewRowStats condenses a per-row write-count histogram.
func NewRowStats(counts []int64) RowStats {
	var s RowStats
	nz := make([]int64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			nz = append(nz, c)
			s.Writes += c
			if c >= 2 {
				s.Mass2 += c
				s.Touched2++
			}
		}
	}
	s.Touched = int64(len(nz))
	if s.Touched == 0 {
		return s
	}
	sort.Slice(nz, func(i, j int) bool { return nz[i] > nz[j] })
	var mass int64
	next := int64(1)
	for i, c := range nz {
		mass += c
		if int64(i+1) == next {
			s.TopMass = append(s.TopMass, mass)
			next <<= 1
		}
	}
	if next>>1 != int64(len(nz)) {
		s.TopMass = append(s.TopMass, mass)
	}
	return s
}

// multiMass returns the write mass on rows shared between threads: the
// exact census figure when available, otherwise an estimate from the
// histogram. Rows with c >= 2 writes spread over T contiguous chunks are
// single-writer with probability ~T^(1-c) under random placement, so the
// bulk of Mass2 is cross-thread; (T-1)/T scales out the c=2 same-chunk
// case.
func (s RowStats) multiMass(t int64) int64 {
	if s.MultiExact {
		return s.MultiMass
	}
	if t <= 1 {
		return 0
	}
	return s.Mass2 * (t - 1) / t
}

// topMass returns the write mass of (approximately) the k hottest rows:
// the recorded prefix at the largest power of two <= k.
func (s RowStats) topMass(k int64) int64 {
	if k <= 0 || len(s.TopMass) == 0 {
		return 0
	}
	i := 0
	for int64(1)<<(i+1) <= k && i+1 < len(s.TopMass) {
		i++
	}
	return s.TopMass[i]
}

// AttachAccum arms the accumulation-cost extension: stats[u] is the
// row-write histogram summary for CSF level u (u >= 1; stats[0] is
// ignored — the root mode accumulates through boundary replicas, not an
// OutBuf). The best strategy per level is resolved once and memoized;
// ModeCost then charges the resolved term instead of the flat write
// approximation. privCap <= 0 selects DefaultPrivCapElems.
//
// The resolved strategies are save-independent: for u < d-1 the output is
// written once per level-u fiber whether the kernel reads memoized partials
// or recomputes from the leaves, and the leaf mode always scatters once per
// non-zero — so one resolution serves every point of the search.
func (p *Params) AttachAccum(stats []RowStats, threads int, privCap int64) {
	if privCap <= 0 {
		privCap = DefaultPrivCapElems
	}
	p.T = threads
	p.Accum = stats
	p.PrivCap = privCap
	d := len(p.Dims)
	p.accumStrat = make([]AccumStrategy, d)
	p.accumCost = make([]Cost, d)
	for u := 1; u < d; u++ {
		best := AccumPriv
		bestC := p.AccumCost(u, AccumPriv)
		if threads > 1 {
			cands := []AccumStrategy{AccumHybrid, AccumAtomic}
			if !p.privFits(u) {
				// Over the privatization budget: hybrid and atomic only.
				best = AccumHybrid
				bestC = p.AccumCost(u, AccumHybrid)
				cands = cands[1:]
			}
			for _, s := range cands {
				if c := p.AccumCost(u, s); c.Total() < bestC.Total() {
					best, bestC = s, c
				}
			}
		}
		p.accumStrat[u] = best
		p.accumCost[u] = bestC
	}
}

// AccumAttached reports whether AttachAccum has armed the extension.
func (p Params) AccumAttached() bool { return p.accumCost != nil }

// AccumChoice returns the resolved strategy for level u (AccumPriv when
// the extension is not attached).
func (p Params) AccumChoice(u int) AccumStrategy {
	if p.accumStrat == nil || u < 0 || u >= len(p.accumStrat) {
		return AccumPriv
	}
	return p.accumStrat[u]
}

// AccumChoices returns the resolved per-level strategies (nil when the
// extension is not attached).
func (p Params) AccumChoices() []AccumStrategy { return p.accumStrat }

// privFits reports whether full privatization of level u's output is
// within the footprint budget.
func (p Params) privFits(u int) bool {
	return int64(p.Dims[u])*int64(p.R)*int64(p.T) <= p.PrivCap
}

// hotBudgetElems is the footprint budget for the hybrid strategy's dense
// replicas: half the cache, leaving room for the streams flowing past it.
func (p Params) hotBudgetElems() int64 { return p.CacheElems / 2 }

// HotPick sizes the hybrid hot set for level u: the power-of-two row count
// (0, 1, 2, ...) minimizing the modeled hybrid cost, subject to the T dense
// replicas fitting the footprint budget. Returns the chosen k.
func (p Params) HotPick(u int) int64 {
	if p.Accum == nil || u < 1 || u >= len(p.Accum) || p.T <= 1 {
		return 0
	}
	st := p.Accum[u]
	maxK := p.hotBudgetElems() / (int64(p.T) * int64(p.R))
	bestK, bestC := int64(0), p.hybridCostAt(u, 0).Total()
	for k := int64(1); k <= maxK && k <= st.Touched; k <<= 1 {
		if c := p.hybridCostAt(u, k).Total(); c < bestC {
			bestK, bestC = k, c
		}
	}
	return bestK
}

// dmOut returns the one-directional traffic of x row accesses to the
// shared rows×R output region, of which at most touched rows are live:
// cache-resident regions pay cold misses only.
func (p Params) dmOut(u int, touched, x int64) int64 {
	foot := int64(p.Dims[u]) * int64(p.R)
	vol := x * int64(p.R)
	if foot > p.CacheElems {
		return vol
	}
	cold := touched * int64(p.R)
	if cold < vol {
		return cold
	}
	return vol
}

// AccumCost estimates the per-iteration data movement of accumulating
// level u's MTTKRP output under the given strategy: the scatter-phase
// traffic, the contention penalty, and the journal-guided Reset/Reduce.
// Requires AttachAccum's inputs (T, Accum) to be populated.
func (p Params) AccumCost(u int, s AccumStrategy) Cost {
	if p.Accum == nil || u < 1 || u >= len(p.Dims) || u >= len(p.Accum) || p.T < 1 {
		return Cost{}
	}
	st := p.Accum[u]
	R := int64(p.R)
	T := int64(p.T)
	rows := int64(p.Dims[u])
	W := st.Writes
	// perThreadTouched bounds Σ_th |rows thread th touches|: at most every
	// write lands on a fresh row, at most every thread touches every
	// touched row.
	perThreadTouched := T * st.Touched
	if W < perThreadTouched {
		perThreadTouched = W
	}
	var c Cost
	switch s {
	case AccumPriv:
		if rows*R*T > p.CacheElems {
			// Replicas spill. The CSF traversal clusters writes by row, so
			// a spilled replica row costs one read-modify-write round trip
			// per thread that touches it, not one per add.
			c.Reads += perThreadTouched * R
			c.Writes += perThreadTouched * R
		} else {
			// Cache-resident replicas: cold misses on the touched rows.
			c.Writes += perThreadTouched * R
		}
		c.Writes += perThreadTouched * R // Reset: journal-guided clears
		c.Reads += perThreadTouched * R  // Reduce: one live replica row per touch
		c.Writes += rows * R             // Reduce: the output matrix
	case AccumHybrid:
		return p.hybridCostAt(u, p.HotPick(u))
	case AccumAtomic:
		vol := p.dmOut(u, st.Touched, W)
		c.Reads += vol // CAS load
		c.Writes += vol
		// Every add is a locked RMW, contended or not.
		c.Reads += casOverhead * W * R
		c.Writes += st.Touched * R // Reset
		c.Reads += st.Touched * R  // Reduce
		c.Writes += rows * R       // Reduce: the output matrix
	}
	return c
}

// hybridCostAt is the hybrid strategy's cost with a hot set of exactly k
// rows: remap lookups, hot-slab traffic, cold-tail scatter, the CAS
// premium on multi-writer mass the hot set did not absorb, and the
// journal-guided Reset/Reduce.
func (p Params) hybridCostAt(u int, k int64) Cost {
	st := p.Accum[u]
	R := int64(p.R)
	T := int64(p.T)
	rows := int64(p.Dims[u])
	covered := st.topMass(k)
	coldW := st.Writes - covered
	coldTouched := st.Touched - k
	if coldTouched < 0 {
		coldTouched = 0
	}
	var c Cost
	c.Reads += st.Writes // remap lookup + branch: ~one element per add
	c.Writes += T * k * R // hot slabs: cache-resident by budget, cold misses only
	cold := p.dmOut(u, coldTouched, coldW)
	c.Reads += cold
	c.Writes += cold
	// Cold multi-writer rows fall back to CAS. The hot set is drawn from
	// the multi-writer rows, so its covered mass comes out of multiMass
	// first; whatever is left pays the locked-RMW premium.
	if cas := st.multiMass(T) - covered; cas > 0 {
		c.Reads += casOverhead * cas * R
	}
	c.Writes += (T*k + coldTouched) * R // Reset
	c.Reads += (T*k + coldTouched) * R  // Reduce: hot slabs + cold rows
	c.Writes += rows * R                // Reduce: the output matrix
	return c
}

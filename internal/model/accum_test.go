package model

import "testing"

// histStats builds RowStats from a literal histogram, as the search-time
// (pre-census) path does.
func histStats(counts []int64) RowStats { return NewRowStats(counts) }

func TestNewRowStats(t *testing.T) {
	s := NewRowStats([]int64{0, 7, 1, 0, 4, 1, 2, 0})
	if s.Writes != 15 || s.Touched != 5 {
		t.Fatalf("Writes=%d Touched=%d, want 15/5", s.Writes, s.Touched)
	}
	if s.Mass2 != 13 || s.Touched2 != 3 {
		t.Fatalf("Mass2=%d Touched2=%d, want 13/3 (rows with >= 2 writes)", s.Mass2, s.Touched2)
	}
	// TopMass prefixes at 1, 2, 4 rows plus the full tail.
	want := []int64{7, 11, 14, 15}
	if len(s.TopMass) != len(want) {
		t.Fatalf("TopMass=%v, want %v", s.TopMass, want)
	}
	for i, m := range want {
		if s.TopMass[i] != m {
			t.Fatalf("TopMass=%v, want %v", s.TopMass, want)
		}
	}
	if got := s.topMass(1 << 30); got != s.Writes {
		t.Fatalf("topMass(all)=%d, want Writes=%d", got, s.Writes)
	}
	if got := s.topMass(0); got != 0 {
		t.Fatalf("topMass(0)=%d, want 0", got)
	}
	for k := int64(1); k <= 8; k <<= 1 {
		if s.topMass(k) > s.topMass(k<<1) {
			t.Fatalf("topMass not monotone at k=%d", k)
		}
	}
	if z := NewRowStats(nil); z.Writes != 0 || z.TopMass != nil {
		t.Fatalf("empty histogram: %+v", z)
	}
}

func TestMultiMassEstimateVsExact(t *testing.T) {
	s := histStats([]int64{10, 10, 1, 1})
	if got := s.multiMass(1); got != 0 {
		t.Fatalf("multiMass(T=1)=%d, want 0: one thread cannot share rows", got)
	}
	if got, want := s.multiMass(4), int64(20*3/4); got != want {
		t.Fatalf("multiMass estimate=%d, want %d", got, want)
	}
	s.MultiMass = 3
	s.MultiExact = true
	if got := s.multiMass(4); got != 3 {
		t.Fatalf("multiMass with exact census=%d, want 3", got)
	}
}

// attached builds an armed Params over a synthetic 3-level profile.
func attached(dims []int, r, threads int, stats []RowStats, privCap int64) Params {
	fibers := make([]int64, len(dims))
	for l := range fibers {
		fibers[l] = int64(dims[l]) * 4
	}
	p := ParamsForCache(dims, fibers, r, 0)
	p.AttachAccum(stats, threads, privCap)
	return p
}

func TestAttachAccumSingleThreadIsPriv(t *testing.T) {
	stats := []RowStats{{}, histStats([]int64{5, 3, 2}), histStats([]int64{9, 1})}
	p := attached([]int{100, 3, 2}, 8, 1, stats, 0)
	for u := 1; u < 3; u++ {
		if got := p.AccumChoice(u); got != AccumPriv {
			t.Fatalf("T=1 level %d resolved %v, want priv: one thread never pays reduction", u, got)
		}
	}
	if !p.AccumAttached() {
		t.Fatal("AccumAttached false after AttachAccum")
	}
}

func TestAttachAccumPrivCapExcludesPriv(t *testing.T) {
	// A huge sparse mode: rows*R*T far over the cap, few rows touched.
	counts := make([]int64, 1_000_000)
	for i := 0; i < 1000; i++ {
		counts[i*997] = 100
	}
	stats := []RowStats{{}, NewRowStats(counts)}
	p := attached([]int{50, 1_000_000}, 16, 8, stats, 0)
	if p.privFits(1) {
		t.Fatal("fixture fits the privatization cap; enlarge it")
	}
	if got := p.AccumChoice(1); got == AccumPriv {
		t.Fatal("priv chosen for a level over the privatization cap")
	}
}

func TestAttachAccumMemoizesMinimum(t *testing.T) {
	counts := make([]int64, 40_000)
	for i := range counts {
		counts[i] = 1
	}
	counts[0], counts[1], counts[2] = 5000, 4000, 3000
	stats := []RowStats{{}, NewRowStats(counts), histStats([]int64{6, 6, 6, 6})}
	p := attached([]int{30, 40_000, 4}, 16, 8, stats, 0)
	for u := 1; u < 3; u++ {
		choice := p.AccumChoice(u)
		chosen := p.AccumCost(u, choice).Total()
		for _, s := range AccumStrategies() {
			if s == AccumPriv && !p.privFits(u) {
				continue
			}
			if c := p.AccumCost(u, s).Total(); c < chosen {
				t.Fatalf("level %d resolved %v (%d) but %v costs %d", u, choice, chosen, s, c)
			}
		}
	}
}

// TestAccumCostOrdering pins the qualitative shape the calibration encodes.
func TestAccumCostOrdering(t *testing.T) {
	// Skewed multi-writer mass: atomic pays the casOverhead premium on every
	// add and must lose to both privatized strategies.
	counts := make([]int64, 10_000)
	for i := range counts {
		counts[i] = 10
	}
	stats := []RowStats{{}, NewRowStats(counts)}
	p := attached([]int{40, 10_000}, 16, 8, stats, 0)
	priv := p.AccumCost(1, AccumPriv).Total()
	hyb := p.AccumCost(1, AccumHybrid).Total()
	atom := p.AccumCost(1, AccumAtomic).Total()
	if atom <= priv || atom <= hyb {
		t.Fatalf("atomic (%d) not dominated by priv (%d) / hybrid (%d) under uniform multi-writer mass", atom, priv, hyb)
	}

	// A huge mode with concentrated mass: full privatization pays spilled
	// replicas plus a rows-proportional Reduce; hybrid's hot set absorbs the
	// skew and must win.
	big := make([]int64, 2_000_000)
	for i := 0; i < 64; i++ {
		big[i*31_249] = 10_000
	}
	for i := 0; i < 100_000; i++ {
		r := (i*7 + 3) % len(big)
		if big[r] == 0 {
			big[r] = 1
		}
	}
	bst := []RowStats{{}, NewRowStats(big)}
	bp := attached([]int{40, 2_000_000}, 8, 8, bst, 1<<40) // cap lifted: compare all three
	bpriv := bp.AccumCost(1, AccumPriv).Total()
	bhyb := bp.AccumCost(1, AccumHybrid).Total()
	if bhyb >= bpriv {
		t.Fatalf("hybrid (%d) not under priv (%d) on a huge skewed mode", bhyb, bpriv)
	}
}

func TestHotPickRespectsBudget(t *testing.T) {
	counts := make([]int64, 100_000)
	for i := range counts {
		counts[i] = 50
	}
	stats := []RowStats{{}, NewRowStats(counts)}
	p := attached([]int{40, 100_000}, 32, 8, stats, 1<<40)
	k := p.HotPick(1)
	if maxK := p.hotBudgetElems() / int64(p.T*p.R); k > maxK {
		t.Fatalf("HotPick k=%d over footprint budget %d", k, maxK)
	}
	if p2 := attached([]int{40, 4}, 32, 1, []RowStats{{}, histStats([]int64{9, 9, 9, 9})}, 0); p2.HotPick(1) != 0 {
		t.Fatal("HotPick nonzero at T=1")
	}
}

func TestModeCostUsesAccumTerm(t *testing.T) {
	dims := []int{50, 60, 70}
	fibers := []int64{50, 300, 2000}
	base := ParamsForCache(dims, fibers, 8, 0)
	save := []bool{false, true, false}
	before := make([]Cost, 3)
	for u := 0; u < 3; u++ {
		before[u] = base.ModeCost(save, u)
	}
	stats := make([]RowStats, 3)
	for u := 1; u < 3; u++ {
		counts := make([]int64, dims[u])
		for i := range counts {
			counts[i] = fibers[u] / int64(dims[u])
		}
		stats[u] = NewRowStats(counts)
	}
	base.AttachAccum(stats, 4, 0)
	if got := base.ModeCost(save, 0); got != before[0] {
		t.Fatalf("root ModeCost changed by AttachAccum: %v -> %v", before[0], got)
	}
	for u := 1; u < 3; u++ {
		want := before[u]
		want.Writes -= base.dmFactor(u, fibers[u])
		want = want.Add(base.AccumCost(u, base.AccumChoice(u)))
		if got := base.ModeCost(save, u); got != want {
			t.Fatalf("level %d ModeCost=%v, want flat term swapped for accum term %v", u, got, want)
		}
	}
}

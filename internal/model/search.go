package model

// Config is one point in STeF's configuration space: whether the CSF's last
// two modes are swapped, and which levels' partial MTTKRP results are
// memoized during the mode-0 pass.
type Config struct {
	// Swap selects the CSF layout with the last two modes exchanged.
	Swap bool
	// Save[l] selects memoization of P^(l); only levels 1..d-2 may be
	// set.
	Save []bool
	// Cost is the model's data-movement estimate for one CPD iteration
	// under this configuration.
	Cost Cost
	// Accum[u] is the resolved accumulation strategy for the non-root
	// mode at CSF level u (nil when the Params carried no row-write
	// stats). Strategies are save-independent, so every configuration of
	// one layout shares the same vector.
	Accum []AccumStrategy
	// Remap[l] selects the factor-row locality remap for level l (nil
	// when the Params carried no remap resolution). Like Accum, the
	// decision is save-independent and shared across one layout's
	// configurations.
	Remap []bool
}

// EnumerateSaves yields every valid memoization vector for an order-d
// tensor (2^(d-2) subsets of levels 1..d-2).
func EnumerateSaves(d int) [][]bool {
	free := d - 2
	out := make([][]bool, 0, 1<<free)
	for mask := 0; mask < 1<<free; mask++ {
		save := make([]bool, d)
		for b := 0; b < free; b++ {
			if mask&(1<<b) != 0 {
				save[1+b] = true
			}
		}
		out = append(out, save)
	}
	return out
}

// Search exhaustively evaluates every configuration — memoization subset ×
// layout — and returns them sorted implicitly by enumeration order together
// with the index of the cheapest. base describes the unswapped CSF;
// swapped describes the same tensor with the last two modes exchanged
// (identical fiber counts except at level d-2, which Algorithm 9 provides
// without a rebuild). Pass swapped.Fibers == nil to restrict the search to
// the base layout.
func Search(base, swapped Params) (best Config, all []Config) {
	d := len(base.Dims)
	for _, save := range EnumerateSaves(d) {
		all = append(all, Config{Swap: false, Save: save, Cost: base.IterationCost(save), Accum: base.AccumChoices(), Remap: base.RemapChoices()})
		if swapped.Fibers != nil {
			all = append(all, Config{Swap: true, Save: save, Cost: swapped.IterationCost(save), Accum: swapped.AccumChoices(), Remap: swapped.RemapChoices()})
		}
	}
	best = all[0]
	for _, c := range all[1:] {
		if c.Cost.Total() < best.Cost.Total() {
			best = c
		}
	}
	return best, all
}

// SearchOpCount mirrors Search with the AdaTM-style operation-count
// objective (no swap consideration — AdaTM reorders modes up front).
func SearchOpCount(base Params) Config {
	d := len(base.Dims)
	var best Config
	first := true
	for _, save := range EnumerateSaves(d) {
		ops := base.OpCount(save)
		c := Config{Save: save, Cost: Cost{Reads: ops}}
		if first || ops < best.Cost.Reads {
			best = c
			first = false
		}
	}
	return best
}

// SwappedParams derives the Params of the swapped layout from the base
// layout and the Algorithm 9 fiber count at level d-2. Mode lengths at the
// last two levels are exchanged; all other levels are unchanged.
func SwappedParams(base Params, swappedFibersD2 int64) Params {
	d := len(base.Dims)
	dims := append([]int(nil), base.Dims...)
	dims[d-2], dims[d-1] = dims[d-1], dims[d-2]
	fibers := append([]int64(nil), base.Fibers...)
	fibers[d-2] = swappedFibersD2
	return Params{R: base.R, CacheElems: base.CacheElems, Dims: dims, Fibers: fibers}
}

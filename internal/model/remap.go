package model

// This file extends the Section IV model with a factor-row *locality*
// term: the Dynasor-style observation (PAPERS.md, arXiv:2309.09131) that
// on skewed tensors a handful of factor rows absorb most of the kernel's
// random row accesses, so packing those rows into a dense cache-resident
// prefix turns a streaming miss per access into a cold miss per hot row.
// The row-access histogram is the same per-level write census AttachAccum
// consumes — a level's fiber-id column addresses the factor both when it
// is read (other modes' MTTKRPs) and written (its own) — so the layout
// decision reuses the stats that are already paid for.
//
// The remapped DM_factor for x accesses to the level-l factor with an
// h-row hot prefix is
//
//	(x - covered(h))·R  +  covered(h)·R·3/5  +  h·R  +  2·N_l·R
//
// where covered(h) scales the census's top-h mass to x. The covered
// accesses are NOT credited a full miss: packing a hot row does not
// shrink its byte footprint (a row spans whole cache lines at R ≥ 8),
// so the hardware's LRU keeps the same hot rows resident whether or not
// they are contiguous, and what packing actually buys is the page-level
// share of each access — TLB reach, prefetcher friendliness, less
// pollution of neighbouring sets. The model charges covered accesses
// 3/5 of a miss under the packed layout, crediting only the remaining
// 2/5 as the locality win; h·R is the slab's own cold misses and the
// final term is the per-kernel-call pack — one gathered read plus one
// sequential write of the full factor. Together the resident charge and
// the pack confine remap wins to levels with x ≳ 13·N_l under a
// decisively concentrated census: the DRAM-bound regime where the
// covered accesses would genuinely miss without packing. Everywhere
// else — in particular whenever the factor fits the machine's last-level
// cache — the model declines, which matches measurement (forcing the
// remap on LLC-resident factors loses: the pack is pure overhead).

// AttachRemap arms the locality extension: for every non-root level whose
// factor overflows the cache, pick the hot-prefix size h minimizing the
// remapped DM_factor at the census's own access mass, and enable the
// remap only where that beats the streaming baseline. Requires
// AttachAccum to have run (the census stats double as the access
// histogram); levels without stats, or whose factors already fit in
// cache, are left unremapped — dmFactor's resident branch is what a
// packed layout would achieve anyway.
func (p *Params) AttachRemap() {
	d := len(p.Dims)
	p.remapOn = make([]bool, d)
	p.remapHot = make([]int64, d)
	if p.Accum == nil {
		return
	}
	for l := 1; l < d && l < len(p.Accum); l++ {
		h, ok := p.remapPick(l)
		if ok {
			p.remapOn[l] = true
			p.remapHot[l] = h
		}
	}
}

// RemapAttached reports whether AttachRemap has armed the extension.
func (p Params) RemapAttached() bool { return p.remapOn != nil }

// RemapChoices returns the per-level remap decisions (nil when the
// extension is not attached). The slice is the Params' own storage.
func (p Params) RemapChoices() []bool { return p.remapOn }

// RemapHot returns the modeled hot-prefix row count for level l (0 when
// the level is not remapped).
func (p Params) RemapHot(l int) int64 {
	if p.remapHot == nil || l < 0 || l >= len(p.remapHot) {
		return 0
	}
	return p.remapHot[l]
}

// DisableRemap clears the remap decision for level l. Core uses it for
// constraints the model cannot see — the second CSF's root writes its
// output directly by fiber id, so the base leaf level must stay in
// original order under SecondCSF.
func (p *Params) DisableRemap(l int) {
	if p.remapOn == nil || l < 0 || l >= len(p.remapOn) {
		return
	}
	p.remapOn[l] = false
	p.remapHot[l] = 0
}

// remapPick sizes the hot prefix for level l: the power-of-two row count
// minimizing the remapped volume at x = Writes (the census's own access
// mass), subject to the h×R slab fitting the hot footprint budget. The
// remap is taken only when the minimum undercuts the streaming baseline
// Writes·R by at least 25%: with covered accesses charged the resident
// fraction (remapVolumeAt), clearing the margin requires both a census
// concentrated enough that the creditable share is large and an access
// mass that amortizes the per-launch pack many times over.
func (p Params) remapPick(l int) (int64, bool) {
	foot := int64(p.Dims[l]) * int64(p.R)
	if foot <= p.CacheElems {
		return 0, false
	}
	st := p.Accum[l]
	if st.Writes <= 0 || st.Touched2 == 0 {
		return 0, false
	}
	maxH := p.hotBudgetElems() / int64(p.R)
	base := st.Writes * int64(p.R)
	bestH, bestC := int64(0), base
	for h := int64(1); h <= maxH && h <= st.Touched; h <<= 1 {
		if c := p.remapVolumeAt(l, st.Writes, h); c < bestC {
			bestH, bestC = h, c
		}
	}
	if bestH == 0 || bestC*4 > base*3 {
		return 0, false
	}
	return bestH, true
}

// remapResidentNum/remapResidentDen is the fraction of a full miss a
// covered access still pays under the packed layout. LRU keeps hot rows
// resident in whatever cache level holds them regardless of contiguity,
// so packing recovers only the page-level share of each access (TLB
// reach, prefetch, set pollution) — the other 3/5 is charged either way.
const (
	remapResidentNum = 3
	remapResidentDen = 5
)

// remapVolumeAt is the remapped DM_factor for x accesses to level l's
// factor with an h-row hot prefix: streamed tail + the resident charge
// on covered accesses + slab cold misses + the per-call pack of the
// full factor.
func (p Params) remapVolumeAt(l int, x, h int64) int64 {
	st := p.Accum[l]
	R := int64(p.R)
	covered := int64(0)
	if st.Writes > 0 {
		covered = st.topMass(h) * x / st.Writes
	}
	if covered > x {
		covered = x
	}
	resident := covered * remapResidentNum / remapResidentDen
	return (x-covered)*R + resident*R + h*R + 2*int64(p.Dims[l])*R
}

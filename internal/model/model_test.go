package model

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func params3() Params {
	return Params{
		R:          32,
		CacheElems: 1 << 15,
		Dims:       []int{100, 5000, 20000},
		Fibers:     []int64{100, 40000, 300000},
	}
}

func TestDMFactorCacheRule(t *testing.T) {
	p := params3()
	// Level 0: footprint 100*32 = 3200 elems < cache: capped at footprint.
	if got := p.dmFactor(0, 1_000_000); got != 3200 {
		t.Errorf("cached factor traffic %d, want footprint 3200", got)
	}
	if got := p.dmFactor(0, 10); got != 320 {
		t.Errorf("few accesses traffic %d, want 320", got)
	}
	// Level 2: footprint 20000*32 = 640000 > 32768: every access pays.
	if got := p.dmFactor(2, 1000); got != 32000 {
		t.Errorf("uncached factor traffic %d, want 32000", got)
	}
}

func TestSourceLevel(t *testing.T) {
	save := []bool{false, true, false, true, false} // d=5; levels 1,3 saved
	cases := []struct{ u, want int }{
		{1, 1}, {2, 3}, {3, 3}, {4, 4},
	}
	for _, c := range cases {
		if got := sourceLevel(save, c.u); got != c.want {
			t.Errorf("sourceLevel(u=%d) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestSaveNoneIsBaselineIdentity(t *testing.T) {
	p := params3()
	none := make([]bool, 3)
	c := p.IterationCost(none)
	// With no memoization mode 1 and 2 must traverse to the leaves:
	// their read cost includes the full 2*nnz index term.
	mc := p.ModeCost(none, 1)
	if mc.Reads < 2*p.Fibers[2] {
		t.Errorf("no-memo mode-1 read %d below leaf traversal floor %d", mc.Reads, 2*p.Fibers[2])
	}
	if c.Total() <= 0 {
		t.Errorf("non-positive total cost %v", c)
	}
}

func TestMemoizationTradeoff(t *testing.T) {
	p := params3()
	save := []bool{false, true, false}
	memo := p.IterationCost(save)
	none := p.IterationCost(make([]bool, 3))
	// Memoizing level 1 (40k fibers vs 300k nnz) must reduce mode-1's
	// read volume...
	if p.ModeCost(save, 1).Reads >= p.ModeCost(make([]bool, 3), 1).Reads {
		t.Error("memoization did not reduce mode-1 reads")
	}
	// ...and add write volume to mode 0.
	if p.ModeCost(save, 0).Writes <= p.ModeCost(make([]bool, 3), 0).Writes {
		t.Error("memoization did not add mode-0 writes")
	}
	_ = memo
	_ = none
}

func TestMonotoneInR(t *testing.T) {
	f := func(seed int64) bool {
		p := params3()
		save := []bool{false, true, false}
		p.R = 16
		c16 := p.IterationCost(save).Total()
		p.R = 32
		c32 := p.IterationCost(save).Total()
		p.R = 64
		c64 := p.IterationCost(save).Total()
		return c16 <= c32 && c32 <= c64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateSaves(t *testing.T) {
	for d := 3; d <= 6; d++ {
		subs := EnumerateSaves(d)
		if len(subs) != 1<<(d-2) {
			t.Errorf("d=%d: %d subsets, want %d", d, len(subs), 1<<(d-2))
		}
		for _, s := range subs {
			if s[0] || s[d-1] {
				t.Errorf("d=%d: subset %v memoizes level 0 or leaf", d, s)
			}
		}
	}
}

func TestSearchPicksCheapest(t *testing.T) {
	base := params3()
	swapped := SwappedParams(base, 150000) // swap halves the level-1... level d-2 fibers
	best, all := Search(base, swapped)
	if len(all) != 2*2 { // d=3: 2 subsets × 2 layouts
		t.Fatalf("%d configs, want 4", len(all))
	}
	for _, c := range all {
		if c.Cost.Total() < best.Cost.Total() {
			t.Errorf("config %+v cheaper than chosen best %+v", c, best)
		}
	}
}

func TestSearchNoSwap(t *testing.T) {
	base := params3()
	best, all := Search(base, Params{})
	if len(all) != 2 {
		t.Fatalf("%d configs without swap, want 2", len(all))
	}
	if best.Swap {
		t.Fatal("swap chosen despite being excluded")
	}
}

func TestSwappedParams(t *testing.T) {
	base := params3()
	sw := SwappedParams(base, 12345)
	if sw.Dims[1] != base.Dims[2] || sw.Dims[2] != base.Dims[1] {
		t.Errorf("dims not exchanged: %v", sw.Dims)
	}
	if sw.Fibers[1] != 12345 {
		t.Errorf("level d-2 fibers %d, want 12345", sw.Fibers[1])
	}
	if sw.Fibers[2] != base.Fibers[2] {
		t.Errorf("leaf count changed: %d", sw.Fibers[2])
	}
	if sw.Fibers[0] != base.Fibers[0] {
		t.Errorf("root count changed: %d", sw.Fibers[0])
	}
}

func TestOpCountPrefersMemoization(t *testing.T) {
	p := params3()
	cfg := SearchOpCount(p)
	// With 40k level-1 fibers versus 300k leaves, memoizing level 1
	// strictly reduces FLOPs, so the op-count rule must take it.
	if !cfg.Save[1] {
		t.Errorf("op-count search skipped beneficial memoization: %+v", cfg)
	}
	all := p.OpCount([]bool{false, true, false})
	none := p.OpCount([]bool{false, false, false})
	if all >= none {
		t.Errorf("memoized op count %d not below %d", all, none)
	}
}

func TestMemoBytes(t *testing.T) {
	p := params3()
	if got := p.MemoBytes([]bool{false, true, false}); got != p.Fibers[1]*32*8 {
		t.Errorf("MemoBytes = %d, want %d", got, p.Fibers[1]*32*8)
	}
	if got := p.MemoBytes(make([]bool, 3)); got != 0 {
		t.Errorf("empty MemoBytes = %d", got)
	}
}

func TestCostHelpers(t *testing.T) {
	c := Cost{Reads: 3, Writes: 4}
	if c.Total() != 7 {
		t.Errorf("Total = %d", c.Total())
	}
	s := c.Add(Cost{Reads: 1, Writes: 2})
	if s.Reads != 4 || s.Writes != 6 {
		t.Errorf("Add = %+v", s)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestExplain(t *testing.T) {
	p := params3()
	var buf bytes.Buffer
	p.Explain(&buf, []bool{false, true, false})
	out := buf.String()
	for _, want := range []string{"mode(level)", "P^(1)", "traversal", "memoized-partials storage"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

func TestParamsForCacheDefault(t *testing.T) {
	p := ParamsForCache([]int{2, 3, 4}, []int64{1, 2, 3}, 8, 0)
	if p.CacheElems != DefaultCacheBytes/8 {
		t.Errorf("default cache %d", p.CacheElems)
	}
}

// Package reorder implements the two sparse-tensor reordering heuristics of
// Li et al. (ICS'19), "Efficient and effective sparse tensor reordering" —
// Lexi-Order and BFS-MCS. The paper reproduced here cites them as
// complementary to STeF: relabeling the indices of each mode clusters
// non-zeros, which shortens fibers' spans, reduces CSF fiber counts and
// improves factor-row locality. They are exposed as an optional
// preprocessing step (see cmd/stef-cpd's -reorder flag).
//
// Both heuristics return one relabeling permutation per mode
// (perm[m][old] = new); Apply produces the relabeled tensor. Relabeling is
// a similarity transformation of the CPD problem: decomposing the
// relabeled tensor and un-permuting the factor rows recovers the original
// decomposition, which the tests verify.
package reorder

import (
	"container/heap"
	"fmt"
	"sort"

	"stef/internal/tensor"
)

// Perms holds one relabeling permutation per mode: Perms[m][old] = new.
type Perms [][]int32

// Identity returns the identity relabeling for the tensor's dims.
func Identity(dims []int) Perms {
	p := make(Perms, len(dims))
	for m, n := range dims {
		p[m] = make([]int32, n)
		for i := range p[m] {
			p[m][i] = int32(i)
		}
	}
	return p
}

// Validate checks that each per-mode slice is a permutation.
func (p Perms) Validate(dims []int) error {
	if len(p) != len(dims) {
		return fmt.Errorf("reorder: %d perms for %d modes", len(p), len(dims))
	}
	for m, pm := range p {
		if len(pm) != dims[m] {
			return fmt.Errorf("reorder: mode %d perm length %d, want %d", m, len(pm), dims[m])
		}
		seen := make([]bool, len(pm))
		for _, v := range pm {
			if v < 0 || int(v) >= len(pm) || seen[v] {
				return fmt.Errorf("reorder: mode %d not a permutation", m)
			}
			seen[v] = true
		}
	}
	return nil
}

// Apply returns a new tensor with every coordinate relabeled:
// new coord[m] = perms[m][old coord[m]]. The result is sorted.
func Apply(t *tensor.Tensor, perms Perms) *tensor.Tensor {
	if err := perms.Validate(t.Dims); err != nil {
		panic("reorder: " + err.Error())
	}
	out := t.Clone()
	d := t.Order()
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		c := out.Inds[k*d : (k+1)*d]
		for m := 0; m < d; m++ {
			c[m] = perms[m][c[m]]
		}
	}
	out.SortLex()
	return out
}

// columnIDs assigns a dense id to every distinct combination of the
// non-m coordinates, in lexicographic order of those coordinates, and
// returns per-non-zero column ids. Column keys are packed into uint64
// (every benchmark profile fits; larger tensors fall back to string keys).
func columnIDs(t *tensor.Tensor, m int) []int64 {
	d := t.Order()
	nnz := t.NNZ()
	ids := make([]int64, nnz)
	strides := make([]uint64, d)
	s := uint64(1)
	fits := true
	for mm := d - 1; mm >= 0; mm-- {
		if mm == m {
			continue
		}
		strides[mm] = s
		hi := s * uint64(t.Dims[mm])
		if hi < s {
			fits = false
			break
		}
		s = hi
	}
	if fits {
		seen := make(map[uint64]int64, nnz)
		for k := 0; k < nnz; k++ {
			c := t.Coord(k)
			key := uint64(0)
			for mm := 0; mm < d; mm++ {
				if mm != m {
					key += strides[mm] * uint64(c[mm])
				}
			}
			id, ok := seen[key]
			if !ok {
				id = int64(len(seen))
				seen[key] = id
			}
			ids[k] = id
		}
		return ids
	}
	seen := make(map[string]int64, nnz)
	buf := make([]byte, 0, 4*d)
	for k := 0; k < nnz; k++ {
		c := t.Coord(k)
		buf = buf[:0]
		for mm := 0; mm < d; mm++ {
			if mm == m {
				continue
			}
			v := c[mm]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		id, ok := seen[string(buf)]
		if !ok {
			id = int64(len(seen))
			seen[string(buf)] = id
		}
		ids[k] = id
	}
	return ids
}

// lexiOrderMode computes the Lexi-Order relabeling of mode m: rows (mode-m
// indices) are sorted in non-increasing lexicographic order of their sorted
// column-id sets, which packs rows with similar sparsity patterns next to
// each other. Rows with no non-zeros keep their relative order at the end.
func lexiOrderMode(t *tensor.Tensor, m int) []int32 {
	n := t.Dims[m]
	cols := columnIDs(t, m)
	rowCols := make([][]int64, n)
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		r := t.Coord(k)[m]
		rowCols[r] = append(rowCols[r], cols[k])
	}
	for _, rc := range rowCols {
		sort.Slice(rc, func(a, b int) bool { return rc[a] < rc[b] })
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := rowCols[order[a]], rowCols[order[b]]
		for i := 0; i < len(ra) && i < len(rb); i++ {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return len(ra) > len(rb) // longer prefix-equal rows first
	})
	// Empty rows sort to the front under "shorter is larger"; push them
	// to the back instead while keeping non-empty order.
	perm := make([]int32, n)
	next := int32(0)
	for _, old := range order {
		if len(rowCols[old]) > 0 {
			perm[old] = next
			next++
		}
	}
	for _, old := range order {
		if len(rowCols[old]) == 0 {
			perm[old] = next
			next++
		}
	}
	return perm
}

// LexiOrder runs `rounds` passes of per-mode lexicographic relabeling over
// all modes (Li et al. report convergence within a handful of rounds; the
// default used by callers is 3). It returns the composed relabelings.
func LexiOrder(t *tensor.Tensor, rounds int) Perms {
	if rounds < 1 {
		rounds = 1
	}
	cur := t.Clone()
	total := Identity(t.Dims)
	d := t.Order()
	for round := 0; round < rounds; round++ {
		for m := 0; m < d; m++ {
			perm := lexiOrderMode(cur, m)
			// Compose into the running total and apply to cur.
			for old := range total[m] {
				total[m][old] = perm[total[m][old]]
			}
			one := Identity(cur.Dims)
			one[m] = perm
			cur = Apply(cur, one)
		}
	}
	return total
}

// bfsHeap is a max-heap of (score, insertion-seq, row) with lazy updates.
type bfsItem struct {
	score int64
	seq   int64
	row   int32
}
type bfsHeap []bfsItem

func (h bfsHeap) Len() int { return len(h) }
func (h bfsHeap) Less(a, b int) bool {
	if h[a].score != h[b].score {
		return h[a].score > h[b].score
	}
	return h[a].seq < h[b].seq
}
func (h bfsHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *bfsHeap) Push(x interface{}) { *h = append(*h, x.(bfsItem)) }
func (h *bfsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// bfsMCSMode computes the BFS-MCS relabeling of mode m: starting from the
// highest-degree row, repeatedly emit the unvisited row with the most
// non-zeros in already-visited columns (maximum cardinality search on the
// row-column bipartite graph), which clusters overlapping rows.
func bfsMCSMode(t *tensor.Tensor, m int) []int32 {
	n := t.Dims[m]
	cols := columnIDs(t, m)
	numCols := int64(0)
	for _, c := range cols {
		if c >= numCols {
			numCols = c + 1
		}
	}
	nnz := t.NNZ()
	rowCols := make([][]int64, n)
	colRows := make([][]int32, numCols)
	for k := 0; k < nnz; k++ {
		r := t.Coord(k)[m]
		rowCols[r] = append(rowCols[r], cols[k])
		colRows[cols[k]] = append(colRows[cols[k]], r)
	}
	score := make([]int64, n)
	placed := make([]bool, n)
	colVisited := make([]bool, numCols)
	h := &bfsHeap{}
	seq := int64(0)
	// Seed with degrees so the search starts at the densest row.
	for r := 0; r < n; r++ {
		if len(rowCols[r]) > 0 {
			score[r] = int64(len(rowCols[r]))
			heap.Push(h, bfsItem{score[r], seq, int32(r)})
			seq++
		}
	}
	perm := make([]int32, n)
	next := int32(0)
	for h.Len() > 0 {
		it := heap.Pop(h).(bfsItem)
		r := it.row
		if placed[r] || it.score != score[r] {
			continue // stale entry
		}
		placed[r] = true
		perm[r] = next
		next++
		for _, c := range rowCols[r] {
			if colVisited[c] {
				continue
			}
			colVisited[c] = true
			for _, r2 := range colRows[c] {
				if !placed[r2] {
					score[r2]++
					heap.Push(h, bfsItem{score[r2], seq, r2})
					seq++
				}
			}
		}
	}
	// Empty rows go last in original order.
	for r := 0; r < n; r++ {
		if len(rowCols[r]) == 0 {
			perm[r] = next
			next++
		}
	}
	return perm
}

// BFSMCS computes the BFS-MCS relabeling for every mode independently.
func BFSMCS(t *tensor.Tensor) Perms {
	d := t.Order()
	perms := make(Perms, d)
	for m := 0; m < d; m++ {
		perms[m] = bfsMCSMode(t, m)
	}
	return perms
}

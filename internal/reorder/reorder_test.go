package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

func TestIdentityApplyIsNoop(t *testing.T) {
	tt := tensor.Random([]int{6, 7, 8}, 100, nil, 1)
	out := Apply(tt, Identity(tt.Dims))
	if out.NNZ() != tt.NNZ() {
		t.Fatal("nnz changed")
	}
	for k := 0; k < tt.NNZ(); k++ {
		a, b := tt.Coord(k), out.Coord(k)
		for m := range a {
			if a[m] != b[m] {
				t.Fatalf("identity relabeling moved coordinate %d", k)
			}
		}
	}
}

func TestPermsValidate(t *testing.T) {
	dims := []int{3, 4}
	good := Identity(dims)
	if err := good.Validate(dims); err != nil {
		t.Fatal(err)
	}
	bad := Identity(dims)
	bad[0][0] = 2
	bad[0][2] = 2
	if err := bad.Validate(dims); err == nil {
		t.Fatal("duplicate label accepted")
	}
	short := Perms{[]int32{0}}
	if err := short.Validate(dims); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestLexiOrderValidPerms(t *testing.T) {
	tt := tensor.Random([]int{15, 20, 25}, 400, []float64{1.5, 0, 0}, 2)
	perms := LexiOrder(tt, 3)
	if err := perms.Validate(tt.Dims); err != nil {
		t.Fatal(err)
	}
	out := Apply(tt, perms)
	if out.NNZ() != tt.NNZ() {
		t.Fatal("nnz changed")
	}
	if err := out.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestBFSMCSValidPerms(t *testing.T) {
	tt := tensor.Random([]int{15, 20, 25, 5}, 500, nil, 3)
	perms := BFSMCS(tt)
	if err := perms.Validate(tt.Dims); err != nil {
		t.Fatal(err)
	}
	out := Apply(tt, perms)
	if out.NNZ() != tt.NNZ() {
		t.Fatal("nnz changed")
	}
}

// TestRelabelingIsSimilarityTransform: the MTTKRP of the relabeled tensor
// with relabeled factor rows equals the relabeled MTTKRP of the original —
// i.e. reordering changes nothing about the decomposition problem.
func TestRelabelingIsSimilarityTransform(t *testing.T) {
	tt := tensor.Random([]int{8, 9, 10}, 200, nil, 4)
	perms := LexiOrder(tt, 2)
	relabeled := Apply(tt, perms)

	const rank = 3
	factors := tensor.RandomFactors(tt.Dims, rank, 5)
	// Relabeled factors: row perms[m][i] of the new factor = row i of
	// the old factor.
	relFactors := make([]*tensor.Matrix, len(factors))
	for m, f := range factors {
		rf := tensor.NewMatrix(f.Rows, f.Cols)
		for i := 0; i < f.Rows; i++ {
			copy(rf.Row(int(perms[m][i])), f.Row(i))
		}
		relFactors[m] = rf
	}
	for m := 0; m < tt.Order(); m++ {
		orig := kernels.Reference(tt, factors, m)
		rel := kernels.Reference(relabeled, relFactors, m)
		// rel row perms[m][i] must equal orig row i.
		for i := 0; i < orig.Rows; i++ {
			oi := orig.Row(i)
			ri := rel.Row(int(perms[m][i]))
			for j := range oi {
				if diff := oi[j] - ri[j]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("mode %d row %d differs after relabeling", m, i)
				}
			}
		}
	}
}

// TestLexiOrderClustersBlocks: on a tensor whose non-zeros live in two
// scrambled blocks, Lexi-Order must reduce (or at least not increase) the
// CSF fiber count, since rows of the same block become adjacent.
func TestLexiOrderClustersBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tt := tensor.New([]int{40, 40, 40}, 0)
	// Two 20x20x20 blocks on scrambled labels.
	labels := rng.Perm(40)
	seen := map[[3]int32]bool{}
	for len(tt.Vals) < 600 {
		b := rng.Intn(2)
		c := [3]int32{
			int32(labels[b*20+rng.Intn(20)]),
			int32(labels[b*20+rng.Intn(20)]),
			int32(labels[b*20+rng.Intn(20)]),
		}
		if seen[c] {
			continue
		}
		seen[c] = true
		tt.Append(c[:], 1)
	}
	tt.SortLex()

	fibersBefore := csf.Build(tt, []int{0, 1, 2}).NumFibers(1)
	re := Apply(tt, LexiOrder(tt, 3))
	fibersAfter := csf.Build(re, []int{0, 1, 2}).NumFibers(1)
	if fibersAfter > fibersBefore {
		t.Errorf("Lexi-Order increased level-1 fibers: %d -> %d", fibersBefore, fibersAfter)
	}
}

func TestReorderQuick(t *testing.T) {
	f := func(seed int64, which bool) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{2 + rng.Intn(10), 2 + rng.Intn(10), 2 + rng.Intn(10)}
		space := dims[0] * dims[1] * dims[2]
		nnz := 1 + rng.Intn(minInt(80, space))
		tt := tensor.Random(dims, nnz, nil, seed)
		var perms Perms
		if which {
			perms = LexiOrder(tt, 2)
		} else {
			perms = BFSMCS(tt)
		}
		if perms.Validate(tt.Dims) != nil {
			return false
		}
		out := Apply(tt, perms)
		return out.Validate(true) == nil && out.NNZ() == tt.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

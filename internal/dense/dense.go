// Package dense provides the small dense linear-algebra kernels CPD-ALS
// needs around the sparse MTTKRP: Gram matrices, Hadamard products,
// symmetric positive-definite solves and column normalisation. All matrices
// are tensor.Matrix values (row-major).
package dense

import (
	"fmt"
	"math"

	"stef/internal/tensor"
)

// Gram computes A'A into out (R×R where R = A.Cols). If out is nil a new
// matrix is allocated. It returns out.
func Gram(a *tensor.Matrix, out *tensor.Matrix) *tensor.Matrix {
	r := a.Cols
	if out == nil {
		out = tensor.NewMatrix(r, r)
	}
	if out.Rows != r || out.Cols != r {
		panic(fmt.Sprintf("dense: Gram output shape %dx%d, want %dx%d", out.Rows, out.Cols, r, r))
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < r; p++ {
			vp := row[p]
			if vp == 0 {
				continue
			}
			orow := out.Row(p)
			for q := p; q < r; q++ {
				orow[q] += vp * row[q]
			}
		}
	}
	// Mirror the upper triangle.
	for p := 0; p < r; p++ {
		for q := p + 1; q < r; q++ {
			out.Set(q, p, out.At(p, q))
		}
	}
	return out
}

// HadamardInto multiplies dst elementwise by src. Shapes must match.
func HadamardInto(dst, src *tensor.Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("dense: Hadamard shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] *= src.Data[i]
	}
}

// Ones returns an n×n matrix of ones, the identity element of the Hadamard
// product used when accumulating Gram matrices across modes.
func Ones(n int) *tensor.Matrix {
	m := tensor.NewMatrix(n, n)
	OnesInto(m)
	return m
}

// OnesInto fills m with ones, the allocation-free form of Ones for reusable
// Hadamard accumulators.
func OnesInto(m *tensor.Matrix) {
	for i := range m.Data {
		m.Data[i] = 1
	}
}

// MatMul computes C = A·B with fresh allocation; used by tests and by the
// CPD fit computation. Shapes: (m×k)·(k×n) → m×n.
func MatMul(a, b *tensor.Matrix) *tensor.Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	c := tensor.NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < a.Cols; k++ {
			v := arow[k]
			if v == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range crow {
				crow[j] += v * brow[j]
			}
		}
	}
	return c
}

// Cholesky holds the lower-triangular factor of a symmetric
// positive-definite matrix, for repeated right-hand-side solves.
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle (full storage)
}

// NewCholesky factors the symmetric matrix v, adding an escalating diagonal
// jitter if v is only positive semi-definite (which happens in CPD when
// factor columns become linearly dependent). It fails only if v contains
// non-finite entries or jitter escalation exhausts its budget.
func NewCholesky(v *tensor.Matrix) (*Cholesky, error) {
	var c Cholesky
	if err := c.Refactor(v); err != nil {
		return nil, err
	}
	return &c, nil
}

// Refactor factors v into c, reusing c's buffer when the dimension matches
// so that repeated factorisations (one per ALS mode update) allocate
// nothing. The factorisation only ever reads lower-triangle entries written
// earlier in the same attempt, so stale contents need no clearing.
func (c *Cholesky) Refactor(v *tensor.Matrix) error {
	if v.Rows != v.Cols {
		return fmt.Errorf("dense: Cholesky of non-square %dx%d", v.Rows, v.Cols)
	}
	n := v.Rows
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(v.At(i, i))
		if math.IsNaN(d) || math.IsInf(d, 0) {
			//lint:allow hotpath-alloc cold error path
			return fmt.Errorf("dense: Cholesky input has non-finite diagonal")
		}
		if d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		maxDiag = 1
	}
	if c.n != n || len(c.l) != n*n {
		c.n = n
		c.l = make([]float64, n*n)
	}
	l := c.l
	jitter := 0.0
	for attempt := 0; attempt < 40; attempt++ {
		ok := true
	factor:
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				sum := v.At(i, j)
				if i == j {
					sum += jitter
				}
				for k := 0; k < j; k++ {
					sum -= l[i*n+k] * l[j*n+k]
				}
				if i == j {
					if sum <= 0 || math.IsNaN(sum) {
						ok = false
						break factor
					}
					l[i*n+i] = math.Sqrt(sum)
				} else {
					l[i*n+j] = sum / l[j*n+j]
				}
			}
		}
		if ok {
			return nil
		}
		if jitter == 0 {
			jitter = 1e-12 * maxDiag
		} else {
			jitter *= 10
		}
	}
	return fmt.Errorf("dense: Cholesky failed even with jitter")
}

// SolveVec solves V·x = b in place (b becomes x). len(b) must equal the
// factored dimension.
func (c *Cholesky) SolveVec(b []float64) {
	if len(b) != c.n {
		panic(fmt.Sprintf("dense: SolveVec length %d, want %d", len(b), c.n))
	}
	n, l := c.n, c.l
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * b[k]
		}
		b[i] = sum / l[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * b[k]
		}
		b[i] = sum / l[i*n+i]
	}
}

// SolveRowsInPlace overwrites each row b of m with the solution x of
// V·x = b, i.e. computes M·V⁻¹ for symmetric V. This is the factor-matrix
// update step of CPD-ALS (Algorithm 2, lines 3/6/9/12).
func (c *Cholesky) SolveRowsInPlace(m *tensor.Matrix) {
	if m.Cols != c.n {
		panic(fmt.Sprintf("dense: SolveRowsInPlace cols %d, want %d", m.Cols, c.n))
	}
	for i := 0; i < m.Rows; i++ {
		c.SolveVec(m.Row(i))
	}
}

// NormalizeColumns scales each column of a to unit 2-norm and returns the
// norms. Zero columns get norm 1 and are left untouched, which keeps the
// ALS iteration well-defined when a factor column dies.
func NormalizeColumns(a *tensor.Matrix) []float64 {
	norms := make([]float64, a.Cols)
	NormalizeColumnsInto(a, norms)
	return norms
}

// NormalizeColumnsInto is NormalizeColumns writing the norms into a
// caller-provided slice of length a.Cols.
func NormalizeColumnsInto(a *tensor.Matrix, norms []float64) {
	if len(norms) != a.Cols {
		panic(fmt.Sprintf("dense: NormalizeColumnsInto norms length %d, want %d", len(norms), a.Cols))
	}
	for j := range norms {
		norms[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	for j := range norms {
		norms[j] = math.Sqrt(norms[j])
		if norms[j] == 0 {
			norms[j] = 1
		}
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] /= norms[j]
		}
	}
}

// NormalizeColumnsMax scales each column by its max absolute value when that
// value exceeds 1 (the SPLATT convention for iterations after the first,
// which avoids shrinking factors toward zero). Returns the scaling factors.
func NormalizeColumnsMax(a *tensor.Matrix) []float64 {
	norms := make([]float64, a.Cols)
	NormalizeColumnsMaxInto(a, norms)
	return norms
}

// NormalizeColumnsMaxInto is NormalizeColumnsMax writing the scaling
// factors into a caller-provided slice of length a.Cols.
func NormalizeColumnsMaxInto(a *tensor.Matrix, norms []float64) {
	if len(norms) != a.Cols {
		panic(fmt.Sprintf("dense: NormalizeColumnsMaxInto norms length %d, want %d", len(norms), a.Cols))
	}
	for j := range norms {
		norms[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			if av := math.Abs(v); av > norms[j] {
				norms[j] = av
			}
		}
	}
	for j := range norms {
		if norms[j] < 1 {
			norms[j] = 1
		}
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := range row {
			row[j] /= norms[j]
		}
	}
}

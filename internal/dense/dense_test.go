package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stef/internal/tensor"
)

func randMatrix(rows, cols int, seed int64) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	m.Randomize(rand.New(rand.NewSource(seed)))
	return m
}

func TestGramMatchesMatMul(t *testing.T) {
	a := randMatrix(13, 5, 1)
	g := Gram(a, nil)
	// Brute force AᵀA.
	want := tensor.NewMatrix(5, 5)
	for p := 0; p < 5; p++ {
		for q := 0; q < 5; q++ {
			s := 0.0
			for i := 0; i < 13; i++ {
				s += a.At(i, p) * a.At(i, q)
			}
			want.Set(p, q, s)
		}
	}
	if d := g.MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("Gram differs from brute force by %g", d)
	}
	// Symmetry.
	for p := 0; p < 5; p++ {
		for q := 0; q < 5; q++ {
			if g.At(p, q) != g.At(q, p) {
				t.Fatalf("Gram not symmetric at (%d,%d)", p, q)
			}
		}
	}
}

func TestGramReuseOutput(t *testing.T) {
	a := randMatrix(7, 3, 2)
	out := tensor.NewMatrix(3, 3)
	out.Data[0] = 1e9 // stale garbage must be overwritten
	Gram(a, out)
	fresh := Gram(a, nil)
	if d := out.MaxAbsDiff(fresh); d != 0 {
		t.Fatalf("reused output differs by %g", d)
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	v := tensor.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		v.Set(i, i, 1)
	}
	c, err := NewCholesky(v)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4}
	c.SolveVec(b)
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(b[i]-want) > 1e-14 {
			t.Fatalf("identity solve changed b: %v", b)
		}
	}
}

func TestCholeskySolveRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		// Build SPD V = AᵀA + I.
		a := tensor.NewMatrix(n+3, n)
		a.Randomize(rng)
		v := Gram(a, nil)
		for i := 0; i < n; i++ {
			v.Set(i, i, v.At(i, i)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// b = V·x
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += v.At(i, j) * x[j]
			}
		}
		c, err := NewCholesky(v)
		if err != nil {
			return false
		}
		c.SolveVec(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySingularGetsJitter(t *testing.T) {
	// Rank-1 V: positive semi-definite, singular.
	v := tensor.NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v.Set(i, j, float64((i+1)*(j+1)))
		}
	}
	c, err := NewCholesky(v)
	if err != nil {
		t.Fatalf("jittered Cholesky failed: %v", err)
	}
	b := []float64{1, 2, 3}
	c.SolveVec(b) // must not NaN
	for _, x := range b {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("solve produced non-finite %v", b)
		}
	}
}

func TestCholeskyRejectsNaN(t *testing.T) {
	v := tensor.NewMatrix(2, 2)
	v.Set(0, 0, math.NaN())
	if _, err := NewCholesky(v); err == nil {
		t.Fatal("expected error on NaN input")
	}
}

func TestSolveRowsInPlace(t *testing.T) {
	a := randMatrix(9, 4, 3)
	v := Gram(a, nil)
	for i := 0; i < 4; i++ {
		v.Set(i, i, v.At(i, i)+0.5)
	}
	c, err := NewCholesky(v)
	if err != nil {
		t.Fatal(err)
	}
	b := randMatrix(6, 4, 4)
	want := make([][]float64, 6)
	for i := range want {
		want[i] = append([]float64(nil), b.Row(i)...)
		c.SolveVec(want[i])
	}
	c2, _ := NewCholesky(v)
	c2.SolveRowsInPlace(b)
	for i := range want {
		for j := range want[i] {
			if math.Abs(b.At(i, j)-want[i][j]) > 1e-12 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestNormalizeColumns(t *testing.T) {
	a := randMatrix(10, 3, 5)
	orig := a.Clone()
	norms := NormalizeColumns(a)
	for j := 0; j < 3; j++ {
		s := 0.0
		for i := 0; i < 10; i++ {
			s += a.At(i, j) * a.At(i, j)
		}
		if math.Abs(math.Sqrt(s)-1) > 1e-12 {
			t.Errorf("column %d norm %g after normalisation", j, math.Sqrt(s))
		}
		// Reconstruction: a[:,j]*norm == orig[:,j].
		for i := 0; i < 10; i++ {
			if math.Abs(a.At(i, j)*norms[j]-orig.At(i, j)) > 1e-12 {
				t.Fatalf("normalisation lost information at (%d,%d)", i, j)
			}
		}
	}
}

func TestNormalizeColumnsZeroColumn(t *testing.T) {
	a := tensor.NewMatrix(4, 2)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, float64(i))
	}
	norms := NormalizeColumns(a)
	if norms[1] != 1 {
		t.Errorf("zero column norm %g, want 1", norms[1])
	}
	for i := 0; i < 4; i++ {
		if a.At(i, 1) != 0 {
			t.Errorf("zero column modified")
		}
	}
}

func TestNormalizeColumnsMax(t *testing.T) {
	a := tensor.NewMatrix(3, 2)
	a.Set(0, 0, -4)
	a.Set(1, 0, 2)
	a.Set(0, 1, 0.5) // max < 1: must not scale up
	norms := NormalizeColumnsMax(a)
	if norms[0] != 4 {
		t.Errorf("col 0 scale %g, want 4", norms[0])
	}
	if norms[1] != 1 {
		t.Errorf("col 1 scale %g, want 1 (never scale up)", norms[1])
	}
	if a.At(0, 0) != -1 {
		t.Errorf("col 0 not scaled: %g", a.At(0, 0))
	}
	if a.At(0, 1) != 0.5 {
		t.Errorf("col 1 changed: %g", a.At(0, 1))
	}
}

func TestMatMulKnown(t *testing.T) {
	a := tensor.NewMatrix(2, 3)
	b := tensor.NewMatrix(3, 2)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestHadamardIntoAndOnes(t *testing.T) {
	a := Ones(3)
	b := tensor.NewMatrix(3, 3)
	for i := range b.Data {
		b.Data[i] = float64(i)
	}
	HadamardInto(a, b)
	if d := a.MaxAbsDiff(b); d != 0 {
		t.Fatalf("Ones ⊙ b != b (diff %g)", d)
	}
}

package cli

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"stef/internal/core"
	"stef/internal/experiments"
)

// RunSweep implements cmd/stef-sweep: sweep one parameter (rank, threads or
// the model's cache size) over a tensor for a set of engines and emit a CSV
// of per-iteration MTTKRP times — the raw material for scaling plots.
func RunSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stef-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file    = fs.String("file", "", "path to a FROSTT .tns tensor file")
		name    = fs.String("tensor", "uber", "named benchmark profile")
		param   = fs.String("param", "rank", "swept parameter: rank, threads or cache")
		values  = fs.String("values", "", "comma-separated parameter values (defaults per parameter)")
		engines = fs.String("engines", "splatt-all,stef,stef2", "comma-separated engine names")
		rank    = fs.Int("rank", 32, "fixed rank when sweeping another parameter")
		threads = fs.Int("threads", runtime.GOMAXPROCS(0), "fixed threads when sweeping another parameter")
		reps    = fs.Int("reps", 2, "timing repetitions (min taken)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *file == "" && *name == "" {
		return fail(stderr, "stef-sweep", fmt.Errorf("specify -file or -tensor"))
	}
	tt, err := loadTensor(*file, *name)
	if err != nil {
		return fail(stderr, "stef-sweep", err)
	}

	vals, err := sweepValues(*param, *values)
	if err != nil {
		return fail(stderr, "stef-sweep", err)
	}
	engList := strings.Split(*engines, ",")
	specs := map[string]experiments.EngineSpec{}
	for _, s := range append(experiments.AllEngines(), experiments.ExtraEngines()...) {
		specs[s.Name] = s
	}

	cw := csv.NewWriter(stdout)
	defer cw.Flush()
	if err := cw.Write([]string{"tensor", "engine", "param", "value", "rank", "threads", "iter_seconds"}); err != nil {
		return fail(stderr, "stef-sweep", err)
	}
	for _, v := range vals {
		r, t, cache := *rank, *threads, int64(0)
		switch *param {
		case "rank":
			r = int(v)
		case "threads":
			t = int(v)
		case "cache":
			cache = v
		}
		for _, en := range engList {
			spec, ok := specs[en]
			if !ok {
				return fail(stderr, "stef-sweep", fmt.Errorf("unknown engine %q", en))
			}
			eng, err := spec.Build(tt, t, r, cache)
			if err != nil {
				return fail(stderr, "stef-sweep", err)
			}
			el := experiments.TimeIteration(eng, tt.Dims, r, *reps)
			rec := []string{
				tensorLabel(*file, *name),
				en,
				*param,
				strconv.FormatInt(v, 10),
				strconv.Itoa(r),
				strconv.Itoa(t),
				strconv.FormatFloat(el.Seconds(), 'g', 8, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fail(stderr, "stef-sweep", err)
			}
		}
	}
	// Cache sweeps also change the planner's decision; surface it.
	if *param == "cache" {
		fmt.Fprintln(stderr, "cache sweep plan decisions:")
		for _, v := range vals {
			plan, err := core.NewPlan(tt, core.Options{Rank: *rank, Threads: *threads, CacheBytes: v})
			if err != nil {
				return fail(stderr, "stef-sweep", err)
			}
			fmt.Fprintf(stderr, "  cache=%-12d swap=%-5v save=%v\n", v, plan.Config.Swap, plan.Config.Save)
		}
	}
	return 0
}

func sweepValues(param, values string) ([]int64, error) {
	if values != "" {
		var out []int64
		for _, p := range strings.Split(values, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad value %q", p)
			}
			out = append(out, v)
		}
		return out, nil
	}
	switch param {
	case "rank":
		return []int64{8, 16, 32, 64}, nil
	case "threads":
		return []int64{1, 2, 4, 8}, nil
	case "cache":
		return []int64{1 << 16, 1 << 19, 1 << 22, 1 << 25}, nil
	}
	return nil, fmt.Errorf("unknown parameter %q (want rank, threads or cache)", param)
}

func tensorLabel(file, name string) string {
	if file != "" {
		return file
	}
	return name
}

package cli

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stef/internal/core"
	"stef/internal/csf"
	"stef/internal/frostt"
	"stef/internal/model"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// RunTensorGen implements cmd/tensorgen: materialise benchmark or custom
// random tensors as .tns files.
func RunTensorGen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tensorgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("tensor", "", "named benchmark profile (see -list)")
		list  = fs.Bool("list", false, "list profiles and exit")
		dims  = fs.String("dims", "", "custom mode lengths, e.g. 100x200x300")
		nnz   = fs.Int("nnz", 10000, "custom non-zero count")
		skew  = fs.String("skew", "", "comma-separated Zipf exponents per mode (0 = uniform)")
		seed  = fs.Int64("seed", 1, "generation seed")
		out   = fs.String("o", "", "output path (default stdout; .gz compresses)")
		huge  = fs.Bool("hugedims", false, "generate the int32-boundary stress tensor (two modes just under 2^31; -nnz and -seed apply)")
		arena = fs.String("arena", "", "also pack the tensor's CSF into an arena file at this path (opened zero-copy by tensorinfo/stef-cpd -arena)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		listProfiles(stdout)
		return 0
	}
	var tt *tensor.Tensor
	switch {
	case *huge:
		if *name != "" || *dims != "" {
			return fail(stderr, "tensorgen", fmt.Errorf("-hugedims is exclusive with -tensor and -dims"))
		}
		tt = tensor.HugeBoundary(tensor.HugeDims(), *nnz, *seed)
	case *name != "":
		p, err := tensor.ProfileByName(*name)
		if err != nil {
			return fail(stderr, "tensorgen", err)
		}
		tt = p.Generate()
	case *dims != "":
		d, err := ParseDims(*dims)
		if err != nil {
			return fail(stderr, "tensorgen", err)
		}
		var sk []float64
		if *skew != "" {
			sk, err = ParseSkew(*skew, len(d))
			if err != nil {
				return fail(stderr, "tensorgen", err)
			}
		}
		tt = tensor.Random(d, *nnz, sk, *seed)
	default:
		return fail(stderr, "tensorgen", fmt.Errorf("specify -tensor, -dims or -hugedims (or -list)"))
	}

	fmt.Fprintf(stderr, "generated %v\n", tt)
	if *arena != "" {
		tree := csf.Build(tt, nil)
		if err := tree.WriteArena(*arena); err != nil {
			return fail(stderr, "tensorgen", err)
		}
		fmt.Fprintf(stderr, "packed CSF arena %s (%d bytes CSF)\n", *arena, tree.Bytes())
		if *out == "" {
			// -arena alone: the arena is the artifact; don't dump the .tns
			// stream to stdout as well.
			return 0
		}
	}
	if *out == "" {
		if err := frostt.Write(stdout, tt); err != nil {
			return fail(stderr, "tensorgen", err)
		}
		return 0
	}
	if err := frostt.WriteFile(*out, tt); err != nil {
		return fail(stderr, "tensorgen", err)
	}
	return 0
}

// RunTensorInfo implements cmd/tensorinfo: print the structural statistics
// that drive STeF's decisions.
func RunTensorInfo(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tensorinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file    = fs.String("file", "", "path to a FROSTT .tns tensor file")
		name    = fs.String("tensor", "", "named benchmark profile")
		arena   = fs.String("arena", "", "path to a CSF arena file (opened zero-copy; exclusive with -file/-tensor)")
		rank    = fs.Int("rank", 32, "rank used for the model's decision")
		threads = fs.Int("threads", runtime.GOMAXPROCS(0), "threads for partition statistics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var (
		tree *csf.Tree
		tt   *tensor.Tensor
	)
	if *arena != "" {
		if *file != "" || *name != "" {
			return fail(stderr, "tensorinfo", fmt.Errorf("-arena is exclusive with -file and -tensor"))
		}
		start := time.Now()
		opened, err := csf.OpenArena(*arena)
		if err != nil {
			return fail(stderr, "tensorinfo", err)
		}
		defer opened.Close()
		tree = opened
		fmt.Fprintf(stdout, "arena %s: order %d, nnz %d, backing %s, opened in %v\n",
			*arena, tree.Order(), tree.NNZ(), tree.Backing().Kind(), time.Since(start))
	} else {
		var err error
		tt, err = loadTensor(*file, *name)
		if err != nil {
			return fail(stderr, "tensorinfo", err)
		}
		fmt.Fprintf(stdout, "%v\n", tt)
		tree = csf.Build(tt, nil)
	}
	d := tree.Order()
	fmt.Fprintf(stdout, "CSF mode order (original mode index per level): %v\n", tree.Perm())
	fmt.Fprintf(stdout, "CSF bytes: %d\n", tree.Bytes())
	tree.WriteStats(stdout)
	fmt.Fprintf(stdout, "swapped-order fibers at level %d (Alg. 9): %d\n", d-2, tree.CountSwappedFibers(*threads))

	sp := sched.NewSlicePartitionNNZ(tree, *threads)
	bp := sched.NewPartition(tree, *threads)
	fmt.Fprintf(stdout, "slice-partition imbalance:    %.1f%%\n", sched.ImbalancePct(sp.SliceLoads(tree)))
	fmt.Fprintf(stdout, "balanced-partition imbalance: %.1f%%\n", sched.ImbalancePct(bp.Loads()))

	// An arena tree keeps its packed layout, so plan over the tree itself;
	// a freshly loaded tensor gets the full planner (including the swap
	// decision, which needs the COO).
	var (
		plan *core.Plan
		err  error
	)
	if tt != nil {
		plan, err = core.NewPlan(tt, core.Options{Rank: *rank, Threads: *threads})
	} else {
		plan, err = core.NewPlanFromTree(tree, core.Options{Rank: *rank, Threads: *threads})
	}
	if err != nil {
		return fail(stderr, "tensorinfo", err)
	}
	plan.Describe(stdout)

	fmt.Fprintln(stdout, "\nper-mode data-movement breakdown (chosen configuration):")
	params := model.ParamsForCache(plan.Tree.Dims(), plan.Tree.FiberCounts(), *rank, 0)
	params.Explain(stdout, plan.Config.Save)
	return 0
}

// ParseDims parses "100x200x300" into mode lengths.
func ParseDims(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("need at least 2 modes")
	}
	return dims, nil
}

// ParseSkew parses a comma-separated Zipf exponent list of arity d.
func ParseSkew(s string, d int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("skew has %d entries for %d modes", len(parts), d)
	}
	sk := make([]float64, d)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad skew %q", p)
		}
		sk[i] = v
	}
	return sk, nil
}

package cli

import (
	"fmt"
	"io"
	"strings"
	"time"

	"stef/internal/core"
	"stef/internal/experiments"
)

// RemapBenchRow is one (tensor, rank, threads) cell of the factor-row
// remap benchmark: the full MTTKRP iteration (root pass plus every
// non-root mode) timed through the engine three ways — remap forced off,
// under the model's choice, and forced on — min over reps. Speedup is
// Off/On; cells where the model declines every level execute identical
// plans on the off and model sides and report ~1 there, while the forced
// column shows what the packing would have cost had the model accepted.
type RemapBenchRow struct {
	Tensor  string `json:"tensor"`
	Rank    int    `json:"rank"`
	Threads int    `json:"threads"`
	// Levels lists the remaps the model accepted, one entry per remapped
	// CSF level (e.g. "L2=remap(hot=4096/163840)"); empty when declined
	// everywhere.
	Levels  []string      `json:"levels,omitempty"`
	Off     time.Duration `json:"off_ns"`
	On      time.Duration `json:"on_ns"`
	Speedup float64       `json:"speedup"`
	// Forced times the same iteration with every eligible level remapped
	// regardless of the model (core.RemapOn); ForcedSpeedup is
	// Off/Forced. ForcedLevels lists what RemapOn packed.
	Forced        time.Duration `json:"forced_ns"`
	ForcedSpeedup float64       `json:"forced_speedup"`
	ForcedLevels  []string      `json:"forced_levels,omitempty"`
}

// remapBench sweeps the remap-off/remap-model axis over every (tensor,
// rank, threads) point. Timing goes through the engine's Compute path, so
// the per-call factor packing is charged honestly against the locality
// win — exactly what a solver caller would pay.
func remapBench(s *experiments.Suite, ranks, threadList []int, reps int, out io.Writer) ([]RemapBenchRow, error) {
	fmt.Fprintf(out, "\n== remapbench: factor-row remap off vs model vs forced (reps=%d, min taken) ==\n", reps)
	fmt.Fprintf(out, "%-18s %4s %2s %12s %12s %8s %12s %8s  %s\n",
		"tensor", "R", "T", "off", "model", "speedup", "forced", "fspeedup", "levels")
	var rows []RemapBenchRow
	err := forEachBenchCell(s, ranks, threadList, func(c benchCell) error {
		row, err := remapBenchCell(c, reps, s.Opts.CacheBytes)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		levels := strings.Join(row.Levels, " ")
		if levels == "" {
			levels = "(model declined; forced: " + strings.Join(row.ForcedLevels, " ") + ")"
		}
		fmt.Fprintf(out, "%-18s %4d %2d %12s %12s %7.2fx %12s %7.2fx  %s\n", c.Name, c.Rank, c.Threads,
			row.Off.Round(time.Microsecond), row.On.Round(time.Microsecond), row.Speedup,
			row.Forced.Round(time.Microsecond), row.ForcedSpeedup, levels)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// remapBenchCell times one cell through three independently compiled
// engines: RemapOff pins the original row order, RemapModel lets the
// locality term accept whatever packing the write census supports, and
// RemapOn forces every eligible level so the measured cost of the pack
// is on record even where the model declines.
func remapBenchCell(c benchCell, reps int, cacheBytes int64) (RemapBenchRow, error) {
	offEng, _, err := core.NewEngineFor(c.Tensor, core.Options{
		Rank: c.Rank, Threads: c.Threads, CacheBytes: cacheBytes, RemapRule: core.RemapOff,
	})
	if err != nil {
		return RemapBenchRow{}, err
	}
	onEng, onPlan, err := core.NewEngineFor(c.Tensor, core.Options{
		Rank: c.Rank, Threads: c.Threads, CacheBytes: cacheBytes, RemapRule: core.RemapModel,
	})
	if err != nil {
		return RemapBenchRow{}, err
	}
	forcedEng, forcedPlan, err := core.NewEngineFor(c.Tensor, core.Options{
		Rank: c.Rank, Threads: c.Threads, CacheBytes: cacheBytes, RemapRule: core.RemapOn,
	})
	if err != nil {
		return RemapBenchRow{}, err
	}
	row := RemapBenchRow{Tensor: c.Name, Rank: c.Rank, Threads: c.Threads}
	row.Levels = remapLevels(onPlan)
	row.ForcedLevels = remapLevels(forcedPlan)
	row.Off = experiments.TimeIteration(offEng, c.Tensor.Dims, c.Rank, reps)
	row.On = experiments.TimeIteration(onEng, c.Tensor.Dims, c.Rank, reps)
	row.Forced = experiments.TimeIteration(forcedEng, c.Tensor.Dims, c.Rank, reps)
	if row.On > 0 {
		row.Speedup = float64(row.Off) / float64(row.On)
	}
	if row.Forced > 0 {
		row.ForcedSpeedup = float64(row.Off) / float64(row.Forced)
	}
	return row, nil
}

// remapLevels renders a plan's non-nil per-level remaps for display.
func remapLevels(p *core.Plan) []string {
	var out []string
	for l, m := range p.Remap {
		if m != nil {
			out = append(out, fmt.Sprintf("L%d=%s", l, m))
		}
	}
	return out
}

package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"stef/internal/core"
	"stef/internal/experiments"
)

// benchReport is the machine-readable shape of one stef-bench run, emitted
// by -json: run parameters plus one field per executed step that produces
// rows. Steps that only render prose (table1, workdist, scaling) have no
// JSON form.
type benchReport struct {
	Ranks        []int                          `json:"ranks"`
	Threads      int                            `json:"threads"`
	Reps         int                            `json:"reps"`
	Scale        float64                        `json:"scale"`
	Tensors      []string                       `json:"tensors"`
	Fig3Measured []experiments.SpeedupRow       `json:"fig3_measured,omitempty"`
	Fig3Modeled  []experiments.SpeedupRow       `json:"fig3_modeled,omitempty"`
	Fig4Modeled  []experiments.SpeedupRow       `json:"fig4_modeled,omitempty"`
	Fig5         []experiments.Fig5Row          `json:"fig5,omitempty"`
	Table2       []experiments.Table2Row        `json:"table2,omitempty"`
	Fig6         []fig6Group                    `json:"fig6,omitempty"`
	ModelCheck   []experiments.ModelAccuracyRow `json:"modelcheck,omitempty"`
	CPDCheck     []experiments.CPDCheckRow      `json:"cpdcheck,omitempty"`
	SolveBench   []SolveBenchRow                `json:"solvebench,omitempty"`
	AccumBench   []AccumBenchRow                `json:"accumbench,omitempty"`
	VecBench     []VecBenchRow                  `json:"vecbench,omitempty"`
	RemapBench   []RemapBenchRow                `json:"remapbench,omitempty"`
	ArenaBench   []ArenaBenchRow                `json:"arenabench,omitempty"`
}

type fig6Group struct {
	Rank int                   `json:"rank"`
	Rows []experiments.Fig6Row `json:"rows"`
}

// RunBench implements cmd/stef-bench: regenerate the paper's evaluation
// tables and figures.
func RunBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stef-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all     = fs.Bool("all", false, "run every experiment")
		table1  = fs.Bool("table1", false, "Table I: benchmark tensor inventory")
		table2  = fs.Bool("table2", false, "Table II: memoization storage")
		fig3    = fs.Bool("fig3", false, "Fig 3: speedups (measured on host + modeled at T=18)")
		fig4    = fs.Bool("fig4", false, "Fig 4: speedups (modeled at T=64)")
		fig5    = fs.Bool("fig5", false, "Fig 5: preprocessing overhead")
		fig6    = fs.Bool("fig6", false, "Fig 6: ablation study")
		wd      = fs.Bool("workdist", false, "work-distribution imbalance report")
		mcheck  = fs.Bool("modelcheck", false, "model validation: predicted vs measured over all configurations")
		ccheck  = fs.Bool("cpdcheck", false, "end-to-end CPD fit parity across engines")
		scaling = fs.Bool("scaling", false, "modeled strong-scaling study (extension)")
		sbench  = fs.Bool("solvebench", false, "compile-once/solve-many vs per-call planning throughput")
		abench  = fs.Bool("accumbench", false, "output-accumulation strategy sweep (auto/priv/hybrid/atomic)")
		vbench  = fs.Bool("vecbench", false, "generic vs R-blocked rank-primitive sweep")
		rmbench = fs.Bool("remapbench", false, "factor-row remap off-vs-model locality sweep")
		arbench = fs.Bool("arenabench", false, "arena vs CSF1-stream open latency + heap/mmap solve parity")
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON results on stdout (tables go to stderr)")
		ranks   = fs.String("ranks", "32,64", "comma-separated ranks")
		tensors = fs.String("tensors", "", "comma-separated tensor names (default: all)")
		engines = fs.String("engines", "", "comma-separated engine names (default: all)")
		threads = fs.Int("threads", runtime.GOMAXPROCS(0), "host worker threads for measured runs")
		reps    = fs.Int("reps", 2, "timing repetitions (min taken)")
		scale   = fs.Float64("scale", 1.0, "non-zero count scale factor")
		solves  = fs.Int("solves", 6, "with -solvebench: ALS restarts timed per path")
		iters   = fs.Int("iters", 10, "with -solvebench: ALS iterations per solve")
		accum   = fs.String("accum", "auto", "output accumulation strategy for stef engines: auto, priv, hybrid or atomic")
		athr    = fs.String("accumthreads", "1,2,4,8", "with -accumbench/-vecbench/-remapbench: comma-separated thread counts to sweep")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !(*all || *table1 || *table2 || *fig3 || *fig4 || *fig5 || *fig6 || *wd || *mcheck || *ccheck || *scaling || *sbench || *abench || *vbench || *rmbench || *arbench) {
		fs.Usage()
		return 2
	}

	rankList, err := parseIntList(*ranks)
	if err != nil {
		return fail(stderr, "stef-bench", err)
	}
	accumRule, err := parseAccumRule(*accum)
	if err != nil {
		return fail(stderr, "stef-bench", err)
	}
	opts := experiments.Options{
		Ranks:   rankList,
		Threads: *threads,
		Reps:    *reps,
		Scale:   *scale,
		Accum:   accumRule,
		Out:     stdout,
	}
	if *jsonOut {
		// Keep stdout pure JSON; the human-readable tables move to stderr.
		opts.Out = stderr
	}
	if *tensors != "" {
		opts.Tensors = strings.Split(*tensors, ",")
	}
	if *engines != "" {
		opts.Engines = strings.Split(*engines, ",")
	}
	s := experiments.NewSuite(opts)
	report := &benchReport{
		Ranks:   rankList,
		Threads: s.Opts.Threads,
		Reps:    s.Opts.Reps,
		Scale:   s.Opts.Scale,
		Tensors: s.Opts.Tensors,
	}

	type step struct {
		enabled bool
		name    string
		run     func() error
	}
	steps := []step{
		{*all || *table1, "table1", s.Table1},
		{*all || *wd, "workdist", s.WorkDistReport},
		{*all || *fig3, "fig3-measured", func() error {
			r, err := s.Fig34("fig3 measured on host")
			report.Fig3Measured = r
			return err
		}},
		{*all || *fig3, "fig3-modeled", func() error {
			r, err := s.Fig34Modeled("fig3 Intel-18", 18)
			report.Fig3Modeled = r
			return err
		}},
		{*all || *fig4, "fig4-modeled", func() error {
			r, err := s.Fig34Modeled("fig4 AMD-64", 64)
			report.Fig4Modeled = r
			return err
		}},
		{*all || *fig5, "fig5", func() error {
			r, err := s.Fig5()
			report.Fig5 = r
			return err
		}},
		{*all || *table2, "table2", func() error {
			r, err := s.Table2()
			report.Table2 = r
			return err
		}},
	}
	if *all || *fig6 {
		for _, r := range rankList {
			r := r
			steps = append(steps, step{true, "fig6", func() error {
				rows, err := s.Fig6(r)
				if err == nil {
					report.Fig6 = append(report.Fig6, fig6Group{Rank: r, Rows: rows})
				}
				return err
			}})
		}
	}
	if *all || *mcheck {
		steps = append(steps, step{true, "modelcheck", func() error {
			r, err := s.ModelAccuracy(rankList[0])
			report.ModelCheck = r
			return err
		}})
	}
	if *ccheck {
		steps = append(steps, step{true, "cpdcheck", func() error {
			r, err := s.CPDCheck(rankList[0], 5)
			report.CPDCheck = r
			return err
		}})
	}
	if *scaling {
		steps = append(steps, step{true, "scaling", func() error {
			var engs []string
			if *engines != "" {
				engs = strings.Split(*engines, ",")
			}
			return s.ThreadScaling(engs, nil, rankList[0])
		}})
	}
	if *sbench {
		steps = append(steps, step{true, "solvebench", func() error {
			r, err := solveBench(s, rankList[0], *iters, *solves, s.Opts.Out)
			report.SolveBench = r
			return err
		}})
	}
	if *abench {
		steps = append(steps, step{true, "accumbench", func() error {
			threadList, err := parseIntList(*athr)
			if err != nil {
				return err
			}
			r, err := accumBench(s, rankList, threadList, s.Opts.Reps, s.Opts.Out)
			report.AccumBench = r
			return err
		}})
	}
	if *arbench {
		steps = append(steps, step{true, "arenabench", func() error {
			r, err := arenaBench(s, rankList[0], *iters, s.Opts.Reps, s.Opts.Out)
			report.ArenaBench = r
			return err
		}})
	}
	if *vbench {
		steps = append(steps, step{true, "vecbench", func() error {
			threadList, err := parseIntList(*athr)
			if err != nil {
				return err
			}
			r, err := vecBench(s, rankList, threadList, s.Opts.Reps, s.Opts.Out)
			report.VecBench = r
			return err
		}})
	}
	if *rmbench {
		steps = append(steps, step{true, "remapbench", func() error {
			threadList, err := parseIntList(*athr)
			if err != nil {
				return err
			}
			r, err := remapBench(s, rankList, threadList, s.Opts.Reps, s.Opts.Out)
			report.RemapBench = r
			return err
		}})
	}
	for _, st := range steps {
		if !st.enabled {
			continue
		}
		if err := st.run(); err != nil {
			return fail(stderr, "stef-bench("+st.name+")", err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return fail(stderr, "stef-bench(json)", err)
		}
	}
	return 0
}

// parseAccumRule maps the -accum flag onto core's forcing rule.
func parseAccumRule(s string) (core.AccumRule, error) {
	switch s {
	case "", "auto":
		return core.AccumModel, nil
	case "priv":
		return core.AccumPriv, nil
	case "hybrid":
		return core.AccumHybrid, nil
	case "atomic":
		return core.AccumAtomic, nil
	}
	return core.AccumModel, fmt.Errorf("unknown accumulation strategy %q (want auto, priv, hybrid or atomic)", s)
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list")
	}
	return out, nil
}

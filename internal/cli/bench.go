package cli

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"stef/internal/experiments"
)

// RunBench implements cmd/stef-bench: regenerate the paper's evaluation
// tables and figures.
func RunBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stef-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all     = fs.Bool("all", false, "run every experiment")
		table1  = fs.Bool("table1", false, "Table I: benchmark tensor inventory")
		table2  = fs.Bool("table2", false, "Table II: memoization storage")
		fig3    = fs.Bool("fig3", false, "Fig 3: speedups (measured on host + modeled at T=18)")
		fig4    = fs.Bool("fig4", false, "Fig 4: speedups (modeled at T=64)")
		fig5    = fs.Bool("fig5", false, "Fig 5: preprocessing overhead")
		fig6    = fs.Bool("fig6", false, "Fig 6: ablation study")
		wd      = fs.Bool("workdist", false, "work-distribution imbalance report")
		mcheck  = fs.Bool("modelcheck", false, "model validation: predicted vs measured over all configurations")
		ccheck  = fs.Bool("cpdcheck", false, "end-to-end CPD fit parity across engines")
		scaling = fs.Bool("scaling", false, "modeled strong-scaling study (extension)")
		ranks   = fs.String("ranks", "32,64", "comma-separated ranks")
		tensors = fs.String("tensors", "", "comma-separated tensor names (default: all)")
		engines = fs.String("engines", "", "comma-separated engine names (default: all)")
		threads = fs.Int("threads", runtime.GOMAXPROCS(0), "host worker threads for measured runs")
		reps    = fs.Int("reps", 2, "timing repetitions (min taken)")
		scale   = fs.Float64("scale", 1.0, "non-zero count scale factor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !(*all || *table1 || *table2 || *fig3 || *fig4 || *fig5 || *fig6 || *wd || *mcheck || *ccheck || *scaling) {
		fs.Usage()
		return 2
	}

	rankList, err := parseIntList(*ranks)
	if err != nil {
		return fail(stderr, "stef-bench", err)
	}
	opts := experiments.Options{
		Ranks:   rankList,
		Threads: *threads,
		Reps:    *reps,
		Scale:   *scale,
		Out:     stdout,
	}
	if *tensors != "" {
		opts.Tensors = strings.Split(*tensors, ",")
	}
	if *engines != "" {
		opts.Engines = strings.Split(*engines, ",")
	}
	s := experiments.NewSuite(opts)

	type step struct {
		enabled bool
		name    string
		run     func() error
	}
	steps := []step{
		{*all || *table1, "table1", s.Table1},
		{*all || *wd, "workdist", s.WorkDistReport},
		{*all || *fig3, "fig3-measured", func() error { _, err := s.Fig34("fig3 measured on host"); return err }},
		{*all || *fig3, "fig3-modeled", func() error { _, err := s.Fig34Modeled("fig3 Intel-18", 18); return err }},
		{*all || *fig4, "fig4-modeled", func() error { _, err := s.Fig34Modeled("fig4 AMD-64", 64); return err }},
		{*all || *fig5, "fig5", func() error { _, err := s.Fig5(); return err }},
		{*all || *table2, "table2", func() error { _, err := s.Table2(); return err }},
	}
	if *all || *fig6 {
		for _, r := range rankList {
			r := r
			steps = append(steps, step{true, "fig6", func() error { _, err := s.Fig6(r); return err }})
		}
	}
	if *all || *mcheck {
		steps = append(steps, step{true, "modelcheck", func() error { _, err := s.ModelAccuracy(rankList[0]); return err }})
	}
	if *ccheck {
		steps = append(steps, step{true, "cpdcheck", func() error { _, err := s.CPDCheck(rankList[0], 5); return err }})
	}
	if *scaling {
		steps = append(steps, step{true, "scaling", func() error {
			var engs []string
			if *engines != "" {
				engs = strings.Split(*engines, ",")
			}
			return s.ThreadScaling(engs, nil, rankList[0])
		}})
	}
	for _, st := range steps {
		if !st.enabled {
			continue
		}
		if err := st.run(); err != nil {
			return fail(stderr, "stef-bench("+st.name+")", err)
		}
	}
	return 0
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty integer list")
	}
	return out, nil
}

package cli

import (
	"fmt"
	"io"
	"strings"
	"time"

	"stef/internal/core"
	"stef/internal/experiments"
	"stef/internal/kernels"
	"stef/internal/model"
	"stef/internal/tensor"
)

// AccumModeRow reports one non-root mode's accumulation behaviour inside an
// AccumBenchRow: the strategy the plan resolved, the census classification
// (hot / direct / CAS / touched rows), the measured phase times (min over
// reps), and the model's predicted cost for all three strategies so the
// prediction can be checked against the measured ranking.
type AccumModeRow struct {
	Level      int    `json:"level"`
	Strategy   string `json:"strategy"`
	HotRows    int    `json:"hot_rows"`
	DirectRows int    `json:"direct_rows"`
	CASRows    int    `json:"cas_rows"`
	Touched    int    `json:"touched_rows"`
	// Reset, Kernel and Reduce are the per-call phase times (min over reps).
	Reset  time.Duration `json:"reset_ns"`
	Kernel time.Duration `json:"mttkrp_ns"`
	Reduce time.Duration `json:"reduce_ns"`
	// ModelPriv/Hybrid/Atomic are the model's element-move estimates for
	// this level under each strategy (AccumCost totals).
	ModelPriv   int64 `json:"model_cost_priv"`
	ModelHybrid int64 `json:"model_cost_hybrid"`
	ModelAtomic int64 `json:"model_cost_atomic"`
}

// AccumBenchRow is one (tensor, rank, threads, forced-strategy) cell of the
// accumulation benchmark: the full non-root MTTKRP sequence timed with the
// given strategy forced on every mode ("auto" lets the model choose
// per mode). Durations marshal as nanoseconds under -json.
type AccumBenchRow struct {
	Tensor  string `json:"tensor"`
	Rank    int    `json:"rank"`
	Threads int    `json:"threads"`
	Force   string `json:"force"`
	// PerIter is the min-over-reps time of one full non-root sequence
	// (Reset + kernel + Reduce for every non-root mode).
	PerIter time.Duration  `json:"per_iter_ns"`
	Modes   []AccumModeRow `json:"modes"`
}

// accumForces enumerates the benchmark's forcing axis: the model's choice
// first, then each strategy pinned on every mode.
var accumForces = []struct {
	name string
	rule core.AccumRule
}{
	{"auto", core.AccumModel},
	{"priv", core.AccumPriv},
	{"hybrid", core.AccumHybrid},
	{"atomic", core.AccumAtomic},
}

// accumBench times the non-root MTTKRP sequence under every accumulation
// strategy for every (tensor, rank, threads) point. It drives the kernels
// directly rather than through cpd so Reset, scatter and Reduce can be
// timed separately.
func accumBench(s *experiments.Suite, ranks, threadList []int, reps int, out io.Writer) ([]AccumBenchRow, error) {
	fmt.Fprintf(out, "\n== accumbench: output accumulation strategies (reps=%d, min taken) ==\n", reps)
	fmt.Fprintf(out, "%-18s %4s %2s %-7s %12s  %s\n", "tensor", "R", "T", "force", "per-iter", "modes")
	var rows []AccumBenchRow
	err := forEachBenchCell(s, ranks, threadList, func(c benchCell) error {
		for _, force := range accumForces {
			row, err := accumBenchCell(c.Tensor, c.Name, c.Rank, c.Threads, reps, s.Opts.CacheBytes, force.name, force.rule)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			var modes []string
			for _, m := range row.Modes {
				modes = append(modes, fmt.Sprintf("L%d=%s(hot=%d red=%s)",
					m.Level, m.Strategy, m.HotRows, m.Reduce.Round(time.Microsecond)))
			}
			fmt.Fprintf(out, "%-18s %4d %2d %-7s %12s  %s\n", c.Name, c.Rank, c.Threads, force.name,
				row.PerIter.Round(time.Microsecond), strings.Join(modes, " "))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// accumBenchCell builds one plan with the strategy forced and times every
// non-root mode's Reset / scatter kernel / Reduce phases.
func accumBenchCell(tt *tensor.Tensor, name string, rank, threads, reps int, cacheBytes int64, forceName string, rule core.AccumRule) (AccumBenchRow, error) {
	// RemapOff: the cell drives raw kernels against plan.Tree with
	// original-order factors, so the plan must not be built in packed row
	// space (plan.Accum and plan.Tree would disagree on row identity).
	plan, err := core.NewPlan(tt, core.Options{
		Rank: rank, Threads: threads, CacheBytes: cacheBytes, AccumRule: rule,
		RemapRule: core.RemapOff,
	})
	if err != nil {
		return AccumBenchRow{}, err
	}
	tree := plan.Tree
	d := tree.Order()
	factors := tensor.RandomFactors(tt.Dims, rank, 7)
	lf := make([]*tensor.Matrix, d)
	kernels.LevelFactorsInto(lf, factors, tree.Perm())
	partials := kernels.NewPartials(tree, rank, plan.Config.Save)
	scratch := kernels.NewScratch(d, rank, threads)
	// One root pass populates the memoized partials the non-root kernels
	// read; the root mode itself has no OutBuf and is out of scope here.
	rootOut := tensor.NewMatrix(tree.Dim(0), rank)
	kernels.RootMTTKRPWith(tree, lf, rootOut, partials, plan.Part, scratch)

	row := AccumBenchRow{Tensor: name, Rank: rank, Threads: threads, Force: forceName}
	bufs := make([]*kernels.OutBuf, d)
	outs := make([]*tensor.Matrix, d)
	for u := 1; u < d; u++ {
		ap := plan.Accum[u]
		bufs[u] = kernels.NewOutBufPlanned(ap)
		outs[u] = tensor.NewMatrix(tree.Dim(u), rank)
		row.Modes = append(row.Modes, AccumModeRow{
			Level:      u,
			Strategy:   ap.Strategy.String(),
			HotRows:    ap.HotK(),
			DirectRows: ap.DirectRows,
			CASRows:    ap.CASRows,
			Touched:    len(ap.Touched),
			Reset:      1<<62 - 1,
			Kernel:     1<<62 - 1,
			Reduce:     1<<62 - 1,
			// Model costs come from the plan's Params (stats attached for
			// the final layout), independent of the forced strategy.
			ModelPriv:   plan.Params.AccumCost(u, model.AccumPriv).Total(),
			ModelHybrid: plan.Params.AccumCost(u, model.AccumHybrid).Total(),
			ModelAtomic: plan.Params.AccumCost(u, model.AccumAtomic).Total(),
		})
	}
	row.PerIter = 1<<62 - 1
	for rep := 0; rep < reps; rep++ {
		var total time.Duration
		for u := 1; u < d; u++ {
			m := &row.Modes[u-1]
			start := time.Now()
			bufs[u].Reset()
			reset := time.Since(start)
			start = time.Now()
			kernels.ModeMTTKRPWith(tree, lf, u, partials, bufs[u], plan.Part, scratch)
			kern := time.Since(start)
			start = time.Now()
			bufs[u].Reduce(outs[u])
			reduce := time.Since(start)
			if reset < m.Reset {
				m.Reset = reset
			}
			if kern < m.Kernel {
				m.Kernel = kern
			}
			if reduce < m.Reduce {
				m.Reduce = reduce
			}
			total += reset + kern + reduce
		}
		if total < row.PerIter {
			row.PerIter = total
		}
	}
	return row, nil
}

package cli

import (
	"fmt"
	"io"
	"time"

	"stef"
	"stef/internal/experiments"
)

// SolveBenchRow compares per-call planning against compile-once/solve-many
// for one benchmark tensor: the same ALS solves run once through the
// top-level stef.Decompose (CSF construction + model search on every call)
// and once through a shared stef.Compile handle that pays those costs a
// single time. Durations marshal as nanoseconds under -json.
type SolveBenchRow struct {
	Tensor string `json:"tensor"`
	Rank   int    `json:"rank"`
	// Threads used by the MTTKRP kernels inside each solve.
	Threads int `json:"threads"`
	// Solves is the number of restarts timed on each path.
	Solves int `json:"solves"`
	// Compile is the one-time stef.Compile cost (reorder + CSF + model search).
	Compile time.Duration `json:"compile_ns"`
	// PerSolveShared is the mean per-solve time on the shared compiled handle.
	PerSolveShared time.Duration `json:"per_solve_compiled_ns"`
	// PerSolvePlanned is the mean per-solve time when every call replans.
	PerSolvePlanned time.Duration `json:"per_solve_per_call_ns"`
	// Speedup is PerSolvePlanned / PerSolveShared.
	Speedup float64 `json:"speedup"`
}

// solveBench measures both solve paths over every suite tensor.
func solveBench(s *experiments.Suite, rank, iters, solves int, out io.Writer) ([]SolveBenchRow, error) {
	fmt.Fprintf(out, "\n== solvebench: per-call planning vs compile-once/solve-many (R=%d, %d solves x %d iters, T=%d) ==\n",
		rank, solves, iters, s.Opts.Threads)
	fmt.Fprintf(out, "%-18s %12s %15s %15s %8s\n", "tensor", "compile", "solve(shared)", "solve(percall)", "speedup")
	rows := make([]SolveBenchRow, 0, len(s.Opts.Tensors))
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return nil, err
		}
		opts := stef.Options{Rank: rank, Threads: s.Opts.Threads, MaxIters: iters, Tol: -1}
		start := time.Now()
		c, err := stef.Compile(tt, opts)
		if err != nil {
			return nil, err
		}
		compile := time.Since(start)
		start = time.Now()
		for i := 0; i < solves; i++ {
			if _, err := c.DecomposeSeed(int64(i)); err != nil {
				return nil, err
			}
		}
		shared := time.Since(start) / time.Duration(solves)
		start = time.Now()
		for i := 0; i < solves; i++ {
			o := opts
			o.Seed = int64(i)
			if _, err := stef.Decompose(tt, o); err != nil {
				return nil, err
			}
		}
		planned := time.Since(start) / time.Duration(solves)
		row := SolveBenchRow{
			Tensor: name, Rank: rank, Threads: s.Opts.Threads, Solves: solves,
			Compile: compile, PerSolveShared: shared, PerSolvePlanned: planned,
			Speedup: float64(planned) / float64(shared),
		}
		rows = append(rows, row)
		fmt.Fprintf(out, "%-18s %12s %15s %15s %7.2fx\n", name,
			compile.Round(time.Microsecond), shared.Round(time.Microsecond),
			planned.Round(time.Microsecond), row.Speedup)
	}
	return rows, nil
}

package cli

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"time"

	"stef"
	"stef/internal/cpd"
)

// RunStefCPD implements cmd/stef-cpd: run CPD-ALS on a tensor with any
// engine and report per-iteration fit and timing.
func RunStefCPD(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stef-cpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file    = fs.String("file", "", "path to a FROSTT .tns tensor file")
		name    = fs.String("tensor", "", "name of a synthetic benchmark tensor (see -list)")
		arena   = fs.String("arena", "", "path to a CSF arena file (opened zero-copy, no reorder/rebuild; stef engine only)")
		list    = fs.Bool("list", false, "list available synthetic tensors and exit")
		engine  = fs.String("engine", "stef", "engine: stef, stef2, splatt-1, splatt-2, splatt-all, adatm, alto, taco, hicoo, dtree, naive")
		rank    = fs.Int("rank", 32, "decomposition rank R")
		iters   = fs.Int("iters", 20, "maximum ALS iterations")
		tol     = fs.Float64("tol", 1e-5, "fit-change convergence tolerance (negative: run all iterations)")
		threads = fs.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
		seed    = fs.Int64("seed", 42, "random seed for initial factors")
		remap   = fs.String("remap", "auto", "factor-row locality remap for stef engines: auto, on or off")
		reorder = fs.String("reorder", "", "optional index reordering: lexi or bfsmcs")
		export  = fs.String("export", "", "write the resulting factors/lambda to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		listProfiles(stdout)
		return 0
	}
	opts := stef.Options{
		Rank: *rank, MaxIters: *iters, Tol: *tol, Seed: *seed,
		Threads: *threads, Engine: *engine, Reorder: *reorder, Remap: *remap,
	}
	var (
		res   *stef.Result
		start time.Time
	)
	if *arena != "" {
		if *file != "" || *name != "" {
			return fail(stderr, "stef-cpd", fmt.Errorf("-arena is exclusive with -file and -tensor"))
		}
		openStart := time.Now()
		tree, err := stef.OpenArena(*arena)
		if err != nil {
			return fail(stderr, "stef-cpd", err)
		}
		defer tree.Close()
		fmt.Fprintf(stdout, "opened arena %s: order %d, nnz %d, backing %s, %v\n",
			*arena, tree.Order(), tree.NNZ(), tree.Backing().Kind(), time.Since(openStart))
		start = time.Now()
		c, err := stef.CompileTree(tree, opts)
		if err != nil {
			return fail(stderr, "stef-cpd", err)
		}
		if res, err = c.Decompose(); err != nil {
			return fail(stderr, "stef-cpd", err)
		}
	} else {
		tt, err := loadTensor(*file, *name)
		if err != nil {
			return fail(stderr, "stef-cpd", err)
		}
		fmt.Fprintf(stdout, "loaded %v\n", tt)
		start = time.Now()
		if res, err = stef.Decompose(tt, opts); err != nil {
			return fail(stderr, "stef-cpd", err)
		}
	}
	total := time.Since(start)

	for i, fit := range res.Fits {
		fmt.Fprintf(stdout, "iter %3d  fit %.6f\n", i+1, fit)
	}
	fmt.Fprintf(stdout, "engine=%s converged=%v iters=%d finalFit=%.6f\n", *engine, res.Converged, res.Iters, res.FinalFit())
	fmt.Fprintf(stdout, "total %v, MTTKRP %v (%.1f%%)\n", total.Round(time.Millisecond), res.MTTKRPTime.Round(time.Millisecond),
		100*float64(res.MTTKRPTime)/float64(total))
	if *export != "" {
		if err := cpd.SaveKruskal(*export, res); err != nil {
			return fail(stderr, "stef-cpd", err)
		}
		fmt.Fprintf(stdout, "factors written to %s\n", *export)
	}
	return 0
}

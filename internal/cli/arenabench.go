package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"stef"
	"stef/internal/csf"
	"stef/internal/experiments"
)

// ArenaBenchRow is one tensor's arena-vs-stream open comparison: the time
// to get from a cached on-disk CSF to a solvable tree via the CSF1 stream
// (ReadFrom: decode and copy every element to the heap) against the arena
// path (OpenArena: map the file and validate O(rank) geometry), plus a
// solve-parity check that the two storage backings produce bit-identical
// factor matrices.
type ArenaBenchRow struct {
	Tensor       string  `json:"tensor"`
	NNZ          int     `json:"nnz"`
	StreamOpenMS float64 `json:"stream_open_ms"`
	ArenaOpenMS  float64 `json:"arena_open_ms"`
	OpenSpeedup  float64 `json:"open_speedup"`
	Backing      string  `json:"backing"`
	SolveParity  bool    `json:"solve_parity"`
}

// arenaBench packs each suite tensor's CSF both ways, times the two open
// paths and verifies heap/arena solve parity.
func arenaBench(s *experiments.Suite, rank, iters, reps int, out io.Writer) ([]ArenaBenchRow, error) {
	fmt.Fprintf(out, "\n== arenabench: CSF1 stream open vs arena open (R=%d, %d iters, T=%d) ==\n",
		rank, iters, s.Opts.Threads)
	fmt.Fprintf(out, "%-18s %12s %12s %12s %9s %12s %7s\n", "tensor", "nnz", "stream", "arena", "speedup", "backing", "parity")

	dir, err := os.MkdirTemp("", "stef-arenabench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	rows := make([]ArenaBenchRow, 0, len(s.Opts.Tensors))
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return nil, err
		}
		tree := csf.Build(tt, nil)
		streamPath := filepath.Join(dir, name+".csf")
		arenaPath := filepath.Join(dir, name+".stef")
		if err := tree.SaveFile(streamPath); err != nil {
			return nil, err
		}
		if err := tree.WriteArena(arenaPath); err != nil {
			return nil, err
		}

		stream := minDuration(reps, func() error {
			t, err := csf.LoadFile(streamPath)
			if err == nil {
				err = t.Close()
			}
			return err
		})
		arena := minDuration(reps, func() error {
			t, err := csf.OpenArena(arenaPath)
			if err == nil {
				err = t.Close()
			}
			return err
		})
		if stream < 0 || arena < 0 {
			return nil, fmt.Errorf("arenabench: open timing failed for %s", name)
		}

		opened, err := csf.OpenArena(arenaPath)
		if err != nil {
			return nil, err
		}
		parity, err := solveParity(tree, opened, rank, iters, s.Opts.Threads)
		kind := opened.Backing().Kind()
		cerr := opened.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}

		row := ArenaBenchRow{
			Tensor:       name,
			NNZ:          tt.NNZ(),
			StreamOpenMS: float64(stream) / float64(time.Millisecond),
			ArenaOpenMS:  float64(arena) / float64(time.Millisecond),
			Backing:      kind,
			SolveParity:  parity,
		}
		if arena > 0 {
			row.OpenSpeedup = float64(stream) / float64(arena)
		}
		rows = append(rows, row)
		fmt.Fprintf(out, "%-18s %12d %10.2fms %10.3fms %8.1fx %12s %7v\n",
			name, row.NNZ, row.StreamOpenMS, row.ArenaOpenMS, row.OpenSpeedup, row.Backing, row.SolveParity)
		if !parity {
			return rows, fmt.Errorf("arenabench: heap and arena solves diverged on %s", name)
		}
	}
	return rows, nil
}

// minDuration runs fn reps times and returns the fastest, or -1 on error.
func minDuration(reps int, fn func() error) time.Duration {
	best := time.Duration(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// solveParity runs the same seeded solve over a heap-built tree and an
// arena-backed tree of the same tensor and reports whether every factor
// matrix is bit-identical. Both solves go through CompileTree, so the plan
// decisions are shared and the only difference is where the level arrays
// live.
func solveParity(heap, arena *csf.Tree, rank, iters, threads int) (bool, error) {
	opts := stef.Options{Rank: rank, Threads: threads, MaxIters: iters, Tol: -1, Seed: 1}
	run := func(tr *csf.Tree) (*stef.Result, error) {
		c, err := stef.CompileTree(tr, opts)
		if err != nil {
			return nil, err
		}
		return c.Decompose()
	}
	a, err := run(heap)
	if err != nil {
		return false, err
	}
	b, err := run(arena)
	if err != nil {
		return false, err
	}
	if len(a.Factors) != len(b.Factors) {
		return false, nil
	}
	for m := range a.Factors {
		fa, fb := a.Factors[m], b.Factors[m]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			return false, nil
		}
		for i := 0; i < fa.Rows; i++ {
			ra, rb := fa.Row(i), fb.Row(i)
			for j := range ra {
				if ra[j] != rb[j] {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

package cli

import (
	"fmt"
	"io"
	"time"

	"stef/internal/core"
	"stef/internal/experiments"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

// VecBenchRow is one (tensor, rank, threads) cell of the vectorization
// benchmark: the full MTTKRP iteration (root pass plus every non-root
// mode's Reset/kernel/Reduce) timed with the generic any-length rank
// primitives and again with the R-blocked specializations, min over reps.
// Speedup is Scalar/Blocked; ranks without a specialization run the same
// code twice and report ~1.
type VecBenchRow struct {
	Tensor  string `json:"tensor"`
	Rank    int    `json:"rank"`
	Threads int    `json:"threads"`
	// Blocked reports whether a specialization exists for this rank (the
	// dispatch falls back to the generic set otherwise).
	HasBlocked bool          `json:"has_blocked"`
	Scalar     time.Duration `json:"scalar_ns"`
	Blocked    time.Duration `json:"blocked_ns"`
	Speedup    float64       `json:"speedup"`
}

// vecBench sweeps the scalar-versus-R-blocked axis over every (tensor,
// rank, threads) point. Workspaces are rebuilt per variant because the
// primitive set is chosen at Scratch/OutBuf construction time.
func vecBench(s *experiments.Suite, ranks, threadList []int, reps int, out io.Writer) ([]VecBenchRow, error) {
	fmt.Fprintf(out, "\n== vecbench: generic vs R-blocked rank primitives (reps=%d, min taken) ==\n", reps)
	fmt.Fprintf(out, "%-18s %4s %2s %12s %12s %8s\n", "tensor", "R", "T", "scalar", "blocked", "speedup")
	var rows []VecBenchRow
	err := forEachBenchCell(s, ranks, threadList, func(c benchCell) error {
		row, err := vecBenchCell(c.Tensor, c.Name, c.Rank, c.Threads, reps, s.Opts.CacheBytes)
		if err != nil {
			return err
		}
		rows = append(rows, row)
		fmt.Fprintf(out, "%-18s %4d %2d %12s %12s %7.2fx\n", c.Name, c.Rank, c.Threads,
			row.Scalar.Round(time.Microsecond), row.Blocked.Round(time.Microsecond), row.Speedup)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// vecBenchCell times one full MTTKRP iteration under both primitive sets.
// The plan, factors and partials layout are shared; only the workspaces
// (whose construction snapshots kernels.BlockedVec) differ.
func vecBenchCell(tt *tensor.Tensor, name string, rank, threads, reps int, cacheBytes int64) (VecBenchRow, error) {
	// RemapOff: the cell drives raw kernels against plan.Tree with
	// original-order factors, so the plan must not be built in packed row
	// space (plan.Accum and plan.Tree would disagree on row identity).
	plan, err := core.NewPlan(tt, core.Options{
		Rank: rank, Threads: threads, CacheBytes: cacheBytes,
		RemapRule: core.RemapOff,
	})
	if err != nil {
		return VecBenchRow{}, err
	}
	tree := plan.Tree
	d := tree.Order()
	factors := tensor.RandomFactors(tt.Dims, rank, 7)
	lf := make([]*tensor.Matrix, d)
	kernels.LevelFactorsInto(lf, factors, tree.Perm())

	run := func(blocked bool) time.Duration {
		defer func(old bool) { kernels.BlockedVec = old }(kernels.BlockedVec)
		kernels.BlockedVec = blocked
		partials := kernels.NewPartials(tree, rank, plan.Config.Save)
		scratch := kernels.NewScratch(d, rank, threads)
		rootOut := tensor.NewMatrix(tree.Dim(0), rank)
		bufs := make([]*kernels.OutBuf, d)
		outs := make([]*tensor.Matrix, d)
		for u := 1; u < d; u++ {
			bufs[u] = kernels.NewOutBufPlanned(plan.Accum[u])
			outs[u] = tensor.NewMatrix(tree.Dim(u), rank)
		}
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			kernels.RootMTTKRPWith(tree, lf, rootOut, partials, plan.Part, scratch)
			for u := 1; u < d; u++ {
				bufs[u].Reset()
				kernels.ModeMTTKRPWith(tree, lf, u, partials, bufs[u], plan.Part, scratch)
				bufs[u].Reduce(outs[u])
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	row := VecBenchRow{
		Tensor:     name,
		Rank:       rank,
		Threads:    threads,
		HasBlocked: kernels.HasBlockedOps(rank),
		Scalar:     run(false),
		Blocked:    run(true),
	}
	if row.Blocked > 0 {
		row.Speedup = float64(row.Scalar) / float64(row.Blocked)
	}
	return row, nil
}

package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"stef/internal/experiments"
	"stef/internal/kernels"
	"stef/internal/lint"
	"stef/internal/tensor"
)

// RunVerify implements cmd/stef-verify: cross-check every engine against
// the naive COO reference on one tensor.
func RunVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stef-verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		file    = fs.String("file", "", "path to a FROSTT .tns tensor file")
		name    = fs.String("tensor", "", "named benchmark profile (default nips)")
		rank    = fs.Int("rank", 16, "decomposition rank")
		threads = fs.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
		tol     = fs.Float64("tol", 1e-9, "relative tolerance")
		idxSpec = fs.String("idx", "", "print inferred index-width scale classes for <package>:<Func> (or <package>:<Recv.Func>) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *idxSpec != "" {
		return runIdxDump(*idxSpec, stdout, stderr)
	}
	if *file == "" && *name == "" {
		*name = "nips"
	}
	tt, err := loadTensor(*file, *name)
	if err != nil {
		return fail(stderr, "stef-verify", err)
	}
	fmt.Fprintf(stdout, "verifying engines on %v with T=%d R=%d\n", tt, *threads, *rank)

	d := tt.Order()
	factors := tensor.RandomFactors(tt.Dims, *rank, 424242)
	want := make([]*tensor.Matrix, d)
	scale := make([]float64, d)
	for m := 0; m < d; m++ {
		want[m] = kernels.Reference(tt, factors, m)
		scale[m] = 1 + want[m].NormFrobenius()
	}

	specs := append(experiments.AllEngines(), experiments.ExtraEngines()...)
	failed := false
	for _, spec := range specs {
		eng, err := spec.Build(tt, *threads, *rank, 0)
		if err != nil {
			fmt.Fprintf(stdout, "  %-11s SKIP (%v)\n", spec.Name, err)
			continue
		}
		worst := 0.0
		ws := eng.NewWorkspace()
		ws.Reset()
		order := eng.UpdateOrder()
		for pos := 0; pos < d; pos++ {
			m := order[pos]
			got := tensor.NewMatrix(tt.Dims[m], *rank)
			eng.Compute(ws, pos, factors, got)
			if dev := got.MaxAbsDiff(want[m]) / scale[m]; dev > worst {
				worst = dev
			}
		}
		status := "PASS"
		if worst > *tol {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(stdout, "  %-11s %s  max relative deviation %.2e\n", spec.Name, status, worst)
	}
	if failed {
		return 1
	}
	return 0
}

// runIdxDump implements `stef-verify -idx pkg:Func`: it runs the same
// interprocedural width inference the idx-width analyzer applies and
// prints the scale class inferred at every assignment target, index
// expression and conversion in the named function. The package path may
// be module-relative ("internal/csf") or fully qualified.
func runIdxDump(spec string, stdout, stderr io.Writer) int {
	pkgPath, fn, ok := strings.Cut(spec, ":")
	if !ok || pkgPath == "" || fn == "" {
		return fail(stderr, "stef-verify", fmt.Errorf("-idx wants <package>:<Func> or <package>:<Recv.Func>, e.g. internal/csf:Tree.SliceFibers"))
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fail(stderr, "stef-verify", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return fail(stderr, "stef-verify", err)
	}
	if pkgPath != loader.ModPath() && !strings.HasPrefix(pkgPath, loader.ModPath()+"/") {
		pkgPath = loader.ModPath() + "/" + strings.TrimPrefix(pkgPath, "./")
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return fail(stderr, "stef-verify", err)
	}
	pass := &lint.Pass{Fset: loader.Fset, All: pkgs, Cache: make(map[string]interface{})}
	obs, err := lint.WidthProgramFor(pass).Dump(pkgPath, fn)
	if err != nil {
		return fail(stderr, "stef-verify", err)
	}
	for _, o := range obs {
		pos := loader.Fset.Position(o.Pos)
		file := pos.Filename
		if rel, found := strings.CutPrefix(file, loader.Root()+string(os.PathSeparator)); found {
			file = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s\n", file, pos.Line, pos.Column, o.Message)
	}
	return 0
}

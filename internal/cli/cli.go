// Package cli implements the logic of every command-line tool in cmd/ as
// testable Run functions: each takes an argument vector and output writers
// and returns a process exit code. The main packages are one-line wrappers,
// so the complete CLI surface is covered by unit tests.
package cli

import (
	"fmt"
	"io"

	"stef/internal/frostt"
	"stef/internal/tensor"
)

// loadTensor resolves the shared -file/-tensor flag pair.
func loadTensor(file, name string) (*tensor.Tensor, error) {
	switch {
	case file != "" && name != "":
		return nil, fmt.Errorf("specify only one of -file and -tensor")
	case file != "":
		return frostt.ReadFile(file, nil)
	case name != "":
		p, err := tensor.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		return p.Generate(), nil
	default:
		return nil, fmt.Errorf("specify -file or -tensor (or -list)")
	}
}

// listProfiles prints the benchmark profile names.
func listProfiles(w io.Writer) {
	for _, n := range tensor.ProfileNames() {
		fmt.Fprintln(w, n)
	}
}

// fail prints a prefixed error and returns exit code 1.
func fail(stderr io.Writer, tool string, err error) int {
	fmt.Fprintf(stderr, "%s: %v\n", tool, err)
	return 1
}

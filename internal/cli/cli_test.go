package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stef/internal/frostt"
	"stef/internal/tensor"
)

// run executes a CLI entry point and returns (exit, stdout, stderr).
func run(t *testing.T, f func([]string, *bytes.Buffer, *bytes.Buffer) int, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := f(args, &out, &errb)
	return code, out.String(), errb.String()
}

func cpdEntry(args []string, out, errb *bytes.Buffer) int    { return RunStefCPD(args, out, errb) }
func genEntry(args []string, out, errb *bytes.Buffer) int    { return RunTensorGen(args, out, errb) }
func infoEntry(args []string, out, errb *bytes.Buffer) int   { return RunTensorInfo(args, out, errb) }
func verifyEntry(args []string, out, errb *bytes.Buffer) int { return RunVerify(args, out, errb) }
func benchEntry(args []string, out, errb *bytes.Buffer) int  { return RunBench(args, out, errb) }

// smallTNS writes a small random tensor to a temp .tns file.
func smallTNS(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "small.tns")
	tt := tensor.Random([]int{12, 15, 18}, 600, nil, 7)
	if err := frostt.WriteFile(path, tt); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStefCPDList(t *testing.T) {
	code, out, _ := run(t, cpdEntry, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "uber") || !strings.Contains(out, "vast-2015-mc1-3d") {
		t.Fatalf("profile list incomplete:\n%s", out)
	}
}

func TestStefCPDOnFile(t *testing.T) {
	path := smallTNS(t)
	export := filepath.Join(t.TempDir(), "factors.txt")
	code, out, errb := run(t, cpdEntry,
		"-file", path, "-rank", "3", "-iters", "3", "-tol", "-1", "-engine", "stef", "-export", export)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, want := range []string{"loaded tensor", "iter   3", "finalFit", "factors written"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(export); err != nil {
		t.Fatalf("export file missing: %v", err)
	}
}

func TestStefCPDErrors(t *testing.T) {
	if code, _, _ := run(t, cpdEntry); code == 0 {
		t.Error("no tensor specified should fail")
	}
	if code, _, _ := run(t, cpdEntry, "-tensor", "bogus"); code == 0 {
		t.Error("unknown tensor should fail")
	}
	if code, _, _ := run(t, cpdEntry, "-tensor", "uber", "-engine", "bogus"); code == 0 {
		t.Error("unknown engine should fail")
	}
	if code, _, _ := run(t, cpdEntry, "-badflag"); code != 2 {
		t.Error("bad flag should exit 2")
	}
	if code, _, _ := run(t, cpdEntry, "-file", "x", "-tensor", "y"); code == 0 {
		t.Error("both -file and -tensor should fail")
	}
}

func TestTensorGenCustomAndReadBack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "custom.tns")
	code, _, errb := run(t, genEntry, "-dims", "10x20x30", "-nnz", "200", "-skew", "1.5,0,0", "-o", out)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	tt, err := frostt.ReadFile(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tt.NNZ() != 200 || tt.Order() != 3 {
		t.Fatalf("generated %v", tt)
	}
}

func TestTensorGenToStdout(t *testing.T) {
	code, out, _ := run(t, genEntry, "-dims", "4x5", "-nnz", "6", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 6 {
		t.Fatalf("expected 6 lines:\n%s", out)
	}
}

func TestTensorGenErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-dims", "10"},
		{"-dims", "0x5"},
		{"-dims", "axb"},
		{"-dims", "10x10", "-skew", "1"},
		{"-dims", "10x10", "-skew", "a,b"},
		{"-tensor", "bogus"},
	}
	for _, args := range cases {
		if code, _, _ := run(t, genEntry, args...); code == 0 {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestTensorInfo(t *testing.T) {
	code, out, errb := run(t, infoEntry, "-tensor", "uber", "-rank", "8", "-threads", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"CSF mode order", "Alg. 9", "balanced-partition imbalance", "STeF plan", "data-movement breakdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestTensorInfoOnFile(t *testing.T) {
	path := smallTNS(t)
	code, _, errb := run(t, infoEntry, "-file", path, "-rank", "4", "-threads", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
}

func TestVerifyPasses(t *testing.T) {
	path := smallTNS(t)
	code, out, errb := run(t, verifyEntry, "-file", path, "-rank", "3", "-threads", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errb, out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("verification failed:\n%s", out)
	}
	if c := strings.Count(out, "PASS"); c != 10 {
		t.Fatalf("%d engines passed, want 10:\n%s", c, out)
	}
}

func TestBenchRequiresSelection(t *testing.T) {
	if code, _, _ := run(t, benchEntry); code != 2 {
		t.Error("no selection should exit 2")
	}
}

func TestBenchSmallRun(t *testing.T) {
	code, out, errb := run(t, benchEntry,
		"-table1", "-table2", "-workdist",
		"-tensors", "uber", "-ranks", "8", "-scale", "0.02", "-threads", "2", "-reps", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, want := range []string{"Table I", "Table II", "Work distribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestBenchBadRanks(t *testing.T) {
	if code, _, _ := run(t, benchEntry, "-table1", "-ranks", "x"); code == 0 {
		t.Error("bad ranks should fail")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseDims("3x4x5"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSkew("1,0,2.5", 3); err != nil {
		t.Error(err)
	}
	if _, err := parseIntList(" 32 , 64 "); err != nil {
		t.Error(err)
	}
	if _, err := parseIntList(","); err == nil {
		t.Error("empty list accepted")
	}
}

func TestSweepRankCSV(t *testing.T) {
	code, out, errb := run(t, func(a []string, o, e *bytes.Buffer) int { return RunSweep(a, o, e) },
		"-tensor", "uber", "-param", "rank", "-values", "4,8", "-engines", "stef", "-reps", "1", "-threads", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 values × 1 engine
		t.Fatalf("got %d CSV lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "tensor,engine,param,value") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "uber,stef,rank,4,") {
		t.Fatalf("bad record %q", lines[1])
	}
}

func TestSweepCacheShowsPlans(t *testing.T) {
	code, _, errb := run(t, func(a []string, o, e *bytes.Buffer) int { return RunSweep(a, o, e) },
		"-tensor", "uber", "-param", "cache", "-values", "65536,4194304", "-engines", "stef", "-reps", "1", "-threads", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(errb, "plan decisions") {
		t.Fatalf("missing plan decisions on stderr:\n%s", errb)
	}
}

func TestSweepErrors(t *testing.T) {
	sweep := func(a []string, o, e *bytes.Buffer) int { return RunSweep(a, o, e) }
	for _, args := range [][]string{
		{"-tensor", "uber", "-param", "bogus"},
		{"-tensor", "uber", "-values", "x"},
		{"-tensor", "uber", "-engines", "bogus", "-values", "4"},
		{"-tensor", "bogus"},
	} {
		if code, _, _ := run(t, sweep, args...); code == 0 {
			t.Errorf("args %v should fail", args)
		}
	}
}

package cli

import (
	"stef/internal/experiments"
	"stef/internal/tensor"
)

// benchCell is one (tensor, rank, threads) point of a sweep grid — the
// cross product every kernel-level stef-bench sweep (-accumbench,
// -vecbench, -remapbench) enumerates before adding its own comparison
// axis.
type benchCell struct {
	Name    string
	Tensor  *tensor.Tensor
	Rank    int
	Threads int
}

// forEachBenchCell walks the suite's tensors × ranks × threadList grid in
// deterministic order — tensors outermost, so each is generated (and
// cached by the suite) exactly once — invoking fn per cell. The first
// error aborts the sweep.
func forEachBenchCell(s *experiments.Suite, ranks, threadList []int, fn func(c benchCell) error) error {
	for _, name := range s.Opts.Tensors {
		tt, err := s.Tensor(name)
		if err != nil {
			return err
		}
		for _, rank := range ranks {
			for _, t := range threadList {
				if err := fn(benchCell{Name: name, Tensor: tt, Rank: rank, Threads: t}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

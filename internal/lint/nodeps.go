package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// NoDeps guards the module's zero-dependency invariant (README: "Go
// standard library only"): every import must resolve to the standard
// library or to a module-local "stef/..." package. It runs purely
// syntactically — including over _test.go files and over packages that
// fail to typecheck (a forbidden import usually breaks typechecking
// first).
var NoDeps = &Analyzer{
	Name: "no-deps",
	Doc:  "imports must be standard library or module-local",
	Run:  runNoDeps,
}

// modulePath is the module's import-path prefix. The analyzer derives the
// allowed prefix from the analyzed package's own path when possible and
// falls back to this.
const modulePath = "stef"

func runNoDeps(pass *Pass) {
	for _, f := range append(append([]*ast.File(nil), pass.Files...), pass.TestFiles...) {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !allowedImport(path) {
				pass.Reportf(imp.Pos(), "import %q is neither standard library nor module-local; the module must stay dependency-free", path)
			}
		}
	}
}

// allowedImport reports whether path is standard library or module-local.
// Stdlib detection uses the gc rule: a standard-library path's first
// segment never contains a dot, while any external module path starts
// with a (dotted) domain. Cgo ("C") counts as a dependency: it breaks the
// pure-Go build the README promises.
func allowedImport(path string) bool {
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		return true
	}
	if path == "C" {
		return false
	}
	first, _, _ := strings.Cut(path, "/")
	return first != "" && !strings.Contains(first, ".")
}

// Package csf seeds csf-backing self-check violations: exported storage
// fields on the Tree struct. The fixture is typechecked under the real
// stef/internal/csf import path, where the analyzer runs its in-seam rule.
package csf

// Tree mirrors the real CSF tree with two fields wrongly re-exported.
type Tree struct {
	dims []int
	Fids [][]int32 // want "exports storage field"
	ptr  [][]int64
	Vals []float64 // want "exports storage field"
}

// FidLevel is a legitimate accessor; in-seam field access is fine.
func (t *Tree) FidLevel(l int) []int32 { return t.Fids[l] }

// Package consumer seeds csf-backing violations from outside the seam: it
// imports the real stef/internal/csf and constructs a Tree by composite
// literal instead of Build/ReadFrom/OpenArena. (Direct storage-field
// selectors cannot be seeded here — the fields are unexported, so they no
// longer typecheck; that shape is covered by the synthetic-package test.)
package consumer

import "stef/internal/csf"

func emptyTree() *csf.Tree {
	return &csf.Tree{} // want "composite literal outside internal/csf"
}

// viaAccessors is the sanctioned shape: reads go through the accessor
// layer and must not be flagged.
func viaAccessors(t *csf.Tree) int64 {
	var total int64
	for l := 0; l < t.Order(); l++ {
		total += t.NumFibers64(l)
	}
	total += t.NNZ64() + int64(len(t.ValsLevel()))
	total += int64(t.Dim(0) + t.PermLevel(0) + len(t.Dims()) + len(t.Perm()))
	if p := t.PtrLevel(0); p != nil {
		total += p[0]
	}
	if f := t.FidLevel(0); f != nil {
		total += int64(f[0])
	}
	return total
}

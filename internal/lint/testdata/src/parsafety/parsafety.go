// Package parfix seeds par-safety violations: writes to captured state
// inside par.Blocks / par.Do callbacks (and a runThreads-style wrapper)
// that are not indexed by a thread-local value — the class of race the
// paper's boundary-replica scheme exists to prevent.
package parfix

import "stef/internal/par"

func runThreads(t int, fn func(th int)) { par.Do(t, fn) }

func stores(n, t int, out []int, loads []int64, grid [][]float64) {
	total := 0
	par.Do(t, func(th int) {
		total += th // want "assignment to captured variable"
		out[th] = th
		out[0] = 1 // want "not indexed by any value derived"
		k := 3
		out[k] = 2 // want "not indexed by any value derived"
		lo := th * 2
		out[lo] = 3
		grid[th][0] = 1 // ok: outer index is the thread id
		local := 0
		local++ // ok: callback-local
		_ = local
	})
	_ = total
}

func blocks(n, t int, out []int, loads []int64) {
	sum := int64(0)
	par.Blocks(n, t, func(th, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i // ok: index derived from block bounds
		}
		loads[th]++
		sum++ // want "assignment to captured variable"
	})
	_ = sum
}

func wrapped(t int, out []int) {
	runThreads(t, func(th int) {
		out[2] = th // want "not indexed by any value derived"
	})
}

func flagCapture(t int) {
	done := false
	par.Do(t, func(th int) {
		done = true // want "assignment to captured variable"
	})
	_ = done
}

func rangeTaint(t int, rows [][]float64, sums []float64) {
	par.Do(t, func(th int) {
		mine := rows[th]
		s := 0.0
		for _, v := range mine {
			s += v // ok: callback-local accumulator
		}
		sums[th] = s // ok: thread-indexed slot
	})
}

func escaped(t int, out []int) {
	par.Do(t, func(th int) {
		//lint:allow par-safety single-threaded by construction in this test
		out[0] = th
	})
}

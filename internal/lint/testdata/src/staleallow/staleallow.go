// Package stalefix seeds allow directives in every state the stale-allow
// analyzer distinguishes. It is analyzed under the package path
// "stef/internal/kernels" so hotpath-alloc actually runs (hot package) and
// //gate:allow placement is legitimate (gated package).
package stalefix

// setup's per-call allocation is genuinely suppressed: the directive must
// NOT be reported as stale.
func setup(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n) //lint:allow hotpath-alloc once per call
	}
	return out
}

func staleLine(dst []float64, s float64) {
	for i := range dst {
		dst[i] += s //lint:allow hotpath-alloc nothing allocates here // want "suppresses no finding"
	}
}

//lint:allow hotpath-alloc whole function, but it never allocates // want "suppresses no finding"
func staleDoc(dst []float64, s float64) {
	for i := range dst {
		dst[i] *= s
	}
}

//lint:allow hotpath-allok misspelled analyzer name // want "unknown analyzer"
func typo(n int) []float64 {
	return make([]float64, n)
}

// gated is fine: //gate:allow directives in a gated package belong to the
// gates harness, which checks their staleness itself.
func gated(dst []float64, idx []int) {
	for i := range idx {
		dst[idx[i]]++ //gate:allow bounds data-dependent index
	}
}

// kindList is fine: a comma-joined first word naming only real kinds.
func kindList(dst []float64, idx []int) {
	for i := range idx {
		dst[idx[i]]++ //gate:allow escape,bounds data-dependent index
	}
}

// kindTypo misspells "bounds" in its kind list. The gates parser reads the
// whole first word as reason text, silently widening the directive to all
// kinds, so stale-allow must catch the typo.
func kindTypo(dst []float64, idx []int) {
	for i := range idx {
		dst[idx[i]]++ //gate:allow escape,bonds data-dependent index // want "unknown gate kind"
	}
}

// shapeKind is fine: "shape" is a real kind, the rest is reason text.
//
//gate:allow shape certified elsewhere
func shapeKind(dst []float64, s float64) {
	for i := range dst {
		dst[i] += s
	}
}

// shapeNearMiss drops the final letter of "shape". Even with reason text
// following, a first word one edit from a real kind is a typo, not a
// reason: the gates parser would widen the directive to every kind.
//
//gate:allow shap waiving the machine-code certification // want "unknown gate kind"
func shapeNearMiss(dst []float64, s float64) {
	for i := range dst {
		dst[i] += s
	}
}

// idxTypos seeds //idx: annotations whose facets misspell the closed
// vocabulary. The //idx: parser deliberately skips unknown tokens (a typo
// degrades to "no information"), so stale-allow is where each becomes
// visible. idxOK is the control: a well-formed annotation stays silent.
type idxTypos struct {
	//idx: len=rank,nzz elem=fid // want "unknown scale class"
	fids [][]int32
	//idx: lem=fid // want "unknown facet key"
	writer []int32
	//idx: nzz // want "unknown scale class"
	writes int64
	//idx: nnz
	idxOK int64
}

// lifeKindTypo misspells the lifecycle kind: the //life: binder skips
// lines it does not recognize, so the ownership contract would silently
// vanish without this check.
//
//life: return ownd // want "unknown //life: word"
func lifeKindTypo() *idxTypos { return nil }

// lifeReleaseTypo misspells "releases"; same silent-drop failure mode.
//
//life: w releses // want "unknown //life: word"
func lifeReleaseTypo(w *idxTypos) {}

// lifeOK is the control: a well-formed annotation stays silent.
//
//life: return owned
func lifeOK() *idxTypos { return nil }

// Package gatefix is analyzed under a package path the gates manifest does
// not compile, so its //gate:allow directive can never take effect.
package gatefix

func walk(dst []float64, idx []int) {
	for i := range idx {
		dst[idx[i]]++ //gate:allow bounds misplaced // want "does not compile"
	}
}

// Package depfix seeds no-deps violations: external module imports that
// would break the repo's zero-dependency invariant. This file is parsed
// but never typechecked (the imports do not resolve, by design).
package depfix

import (
	"fmt"
	"go/ast"

	"github.com/external/dep"        // want "neither standard library nor module-local"
	"golang.org/x/tools/go/analysis" // want "neither standard library nor module-local"

	"stef/internal/par"
)

var _ = fmt.Sprint
var _ = ast.IsExported
var _ = dep.Thing
var _ = analysis.Analyzer{}
var _ = par.Do

// Package enginefix seeds engine-purity violations: Compute implementations
// that keep per-call state on the shared engine (or in globals) instead of
// the Workspace, and Compute hooks that capture mutable slices/maps at
// construction time.
package enginefix

// Workspace mirrors cpd.Workspace.
type Workspace interface{ Reset() }

var hits []int

type engine struct {
	calls int
	buf   []float64
	dims  []int
}

type scratch struct{ vec []float64 }

func (s *scratch) Reset() {}

func (e *engine) Compute(ws Workspace, pos int) {
	w := ws.(*scratch)
	e.calls++                // want "mutates engine state"
	e.buf[pos] = 1           // want "mutates engine state"
	hits = append(hits, pos) // want "mutates engine state"
	w.vec[pos] = float64(e.dims[pos])
	local := 0
	local++ // ok: call-local
	_ = local
}

// Helper shares the method name but not the Engine contract; a receiver
// store here is fine.
type tally struct{ n int }

func (t *tally) Compute(delta int) { t.n += delta }

type funcEngine struct {
	Compute func(ws Workspace, pos int)
}

func build(rows [][]float64, cache map[int][]float64, n int) *funcEngine {
	fe := &funcEngine{}
	total := 0
	fe.Compute = func(ws Workspace, pos int) {
		_ = rows[pos]  // want "captures mutable slice"
		_ = cache[pos] // want "captures mutable map"
		total += pos   // ok: rule B covers slices/maps; scalars race too but are write-disjoint's beat
		_ = n
	}
	return fe
}

func buildLit(out []float64) funcEngine {
	return funcEngine{
		Compute: func(ws Workspace, pos int) {
			out[pos] = 1 // want "captures mutable slice"
			out[0] = 2   // ok: deduped, one finding per captured variable
		},
	}
}

// Package panicfix seeds panic-prefix violations, including the exact
// class of the bug fixed at internal/reorder/reorder.go:63 —
// panic(err.Error()) without the package-name prefix.
package panicfix

import (
	"errors"
	"fmt"
)

const prefixed = "panicfix: constant message"

func bad(err error) {
	panic("wrong: other package's prefix") // want "does not start with"
}

func badDynamic(err error) {
	panic(err.Error()) // want "cannot be statically verified"
}

func badSprintf(d int) {
	panic(fmt.Sprintf("order-%d tensor unsupported", d)) // want "does not start with"
}

func badWrapped(err error) {
	panic(errors.New("panicfix: opaque to the analyzer")) // want "cannot be statically verified"
}

func good(err error, d int) {
	if d == 1 {
		panic("panicfix: boom")
	}
	if d == 2 {
		panic("panicfix: " + err.Error())
	}
	if d == 3 {
		panic(fmt.Sprintf("panicfix: bad order %d", d))
	}
	if d == 4 {
		panic(prefixed)
	}
	if d == 5 {
		//lint:allow panic-prefix re-panic of a recovered value
		panic(err)
	}
}

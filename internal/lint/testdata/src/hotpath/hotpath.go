// Package hotfix seeds hotpath-alloc violations: every construct the
// analyzer must flag inside a for loop, plus the escape-comment forms it
// must honour. The test harness analyzes this file under a hot package
// path (stef/internal/kernels) and under a cold one (expecting silence).
package hotfix

import "fmt"

func sink(v interface{}) { _ = v }

func setupLoop(n int) [][]float64 {
	buf := make([][]float64, n) // ok: outside any loop
	for i := range buf {
		buf[i] = make([]float64, 8) // want "make inside a hot loop"
	}
	return buf
}

func hotLoop(n int) {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i) // want "append inside a hot loop"
		m := map[int]int{}   // want "map literal inside a hot loop"
		_ = m
		s := []int{i} // want "slice literal inside a hot loop"
		_ = s
		fmt.Println(i) // want "fmt.Println inside a hot loop"
		sink(i)        // want "boxed into interface parameter"
		var box interface{}
		box = i // want "boxes a concrete value into interface"
		_ = box
		_ = any(i) // want "conversion to interface type"
	}
	_ = acc
}

func rangeLoop(xs []int) {
	for _, x := range xs {
		fmt.Print(x) // want "fmt.Print inside a hot loop"
	}
}

func closureInLoop(n int) {
	for i := 0; i < n; i++ {
		f := func() []int { return make([]int, 1) } // want "make inside a hot loop"
		_ = f()
	}
}

func interfacePassThrough(n int, vs []interface{}) {
	for i := 0; i < n; i++ {
		sink(vs[i])        // ok: already an interface, no new boxing
		fmt.Println(vs...) // want "fmt.Println inside a hot loop"
	}
}

func lineEscapes(n int) {
	for i := 0; i < n; i++ {
		scratch := make([]int, 4) //lint:allow hotpath-alloc seeded escape on the same line
		_ = scratch
		//lint:allow hotpath-alloc seeded escape on the line above
		scratch2 := make([]int, 4)
		_ = scratch2
	}
}

// funcEscape is cold serialisation-style code; the directive below exempts
// the whole function.
//
//lint:allow hotpath-alloc whole-function escape
func funcEscape(n int) {
	for i := 0; i < n; i++ {
		fmt.Println(make([]int, i))
	}
}

// Package wdfix seeds write-disjoint violations: stores reachable from
// par.Do / par.Blocks callbacks — directly, through captured aliases, or
// through helper calls several frames deep — whose target is shared memory
// and whose index is not derived from the thread id or partition bounds.
// The safe variants next to each violation pin down the analyzer's
// precision: thread-indexed slots, partition-bounded loops, disjoint
// row views, and per-thread scratch must stay silent.
package wdfix

import "stef/internal/par"

// runT forwards its callback to par.Do; the analyzer must discover this
// from the callgraph, not from a name list.
func runT(t int, fn func(th int)) { par.Do(t, fn) }

// poke is the bottom of a two-call-deep store chain.
func poke(dst []float64, i int) {
	dst[i] = 1 // want "index not derived from thread id or partition bounds"
}

// stash forwards to poke; callers with an underived index are violations.
func stash(dst []float64, i int) { poke(dst, i) }

// fill stores through its own parameters; safe when the caller passes a
// thread-derived index.
func fill(dst []float64, i int, v float64) { dst[i] = v }

type mat struct {
	data   []float64
	stride int
}

func (m *mat) row(i int) []float64 { return m.data[i*m.stride : (i+1)*m.stride] }

func direct(t int, out []float64, counts map[string]int) {
	total := 0.0
	par.Do(t, func(th int) {
		total += float64(th) // want "store to shared memory inside parallel callback"
		out[th] = 1
		out[0] = 1 // want "index not derived from thread id or partition bounds"
		alias := out
		alias[2] = 1 // want "index not derived from thread id or partition bounds"
		counts["hits"] = th // want "store to shared map inside parallel callback"
		local := make([]float64, 4)
		local[0] = 1 // ok: freshly allocated, private to this callback
		_ = local
	})
	_ = total
}

func loopCapture(t, n int, out []float64) {
	for i := 0; i < n; i++ {
		i := i
		par.Do(t, func(th int) {
			out[i] = float64(th) // want "index not derived from thread id or partition bounds"
		})
	}
}

func twoDeep(t, k int, out []float64) {
	par.Do(t, func(th int) {
		stash(out, th) // ok: index is the thread id, two calls down
		stash(out, k)  // the violation reports at poke's store site
		fill(out, th, 2)
	})
}

func rowViews(t, j int, m *mat, v []float64) {
	par.Do(t, func(th int) {
		copy(m.row(th), v) // ok: row view offset derived from thread id
		m.row(j)[0] = 1    // want "index not derived from thread id or partition bounds"
	})
}

func wrapped(t int, out []float64) {
	runT(t, func(th int) {
		out[5] = float64(th) // want "index not derived from thread id or partition bounds"
	})
}

func blocks(n, t int, out []float64, bounds []int) {
	par.Blocks(n, t, func(th, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) // ok: index derived from block bounds
		}
		blk := out[lo:hi]
		blk[0] = 1 // ok: store inside a thread-disjoint window
	})
	par.Do(t, func(th int) {
		lo, hi := bounds[th], bounds[th+1]
		for i := lo; i < hi; i++ {
			out[i] = 0 // ok: index derived from partition bounds
		}
	})
}

func escaped(t int, out []float64) {
	par.Do(t, func(th int) {
		//lint:allow write-disjoint single-threaded by construction in this test
		out[0] = float64(th)
	})
}

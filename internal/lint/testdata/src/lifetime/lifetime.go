// Package lifefix seeds one violation of every lifetime finding class —
// L1 use-after-release (direct, through a helper, and via a derived
// view), L2 pooled-value escapes (returned, stored in a global, captured
// by a goroutine), L3 leak on a return path, and an unbound //life:
// directive — each next to a clean twin that must stay silent: the
// analyzer's value is exactly this contrast, same resource flow with the
// obligation discharged.
package lifefix

import "stef/internal/csf"

// lifeErr is a dependency-free error value for the seeded error paths.
type lifeErr struct{}

func (lifeErr) Error() string { return "lifefix: boom" }

// res is a releasable resource: a module type with `Close() error` is
// tracked by the intrinsic, no annotation needed.
type res struct {
	data []byte
}

// Close releases the resource's backing.
func (r *res) Close() error { return nil }

// openRes acquires a resource; callers own it on every path.
//
//life: return owned
func openRes() (*res, error) { return &res{data: make([]byte, 8)}, nil }

// window returns a view into the resource's backing; it dies with r.
//
//life: return view
func (r *res) window() []byte { return r.data }

// closeBoth releases both resources; callers of closeBoth inherit the
// release through its interprocedural summary, with no annotation.
func closeBoth(a, b *res) {
	_ = a.Close()
	_ = b.Close()
}

// UseAfterClose reads the backing after releasing it (L1).
func UseAfterClose() byte {
	r, err := openRes()
	if err != nil {
		return 0
	}
	_ = r.Close()
	return r.data[0] // want "use of r after release"
}

// ReadThenClose is the clean twin: the deferred Close covers every path.
func ReadThenClose() (byte, error) {
	r, err := openRes()
	if err != nil {
		return 0, err
	}
	defer r.Close()
	return r.data[0], nil
}

// UseAfterHelperClose releases through a helper composed at the call
// site; the summary machinery must see through it (L1, interprocedural).
func UseAfterHelperClose() byte {
	a, _ := openRes()
	b, _ := openRes()
	closeBoth(a, b)
	return b.data[0] // want "use of b after release"
}

// ViewAfterClose reads a derived view after its backing died (L1).
func ViewAfterClose() byte {
	r, _ := openRes()
	v := r.window()
	_ = r.Close()
	return v[0] // want "after release of its backing"
}

// ViewBeforeClose is the clean twin: the view is consumed inside the
// resource's lifetime.
func ViewBeforeClose() byte {
	r, _ := openRes()
	v := r.window()
	defer r.Close()
	return v[0]
}

// TreeUseAfterClose exercises the Close intrinsic on the real csf
// accessor seam: no //life: annotation is in scope for csf here, the
// module `Close() error` method alone marks the release (L1).
func TreeUseAfterClose(t *csf.Tree) int64 {
	_ = t.Close()
	return t.NNZ64() // want "use of t after release"
}

// LeakOnError acquires and then returns on an error path without
// releasing (L3). The err-guard path for openRes's own error is exempt:
// on that path the resource was never acquired.
func LeakOnError(n int) (*res, error) {
	r, err := openRes()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, lifeErr{} // want "may leak"
	}
	return r, nil
}

// NoLeakOnError is the clean twin: the early path releases explicitly,
// the success path transfers ownership out.
func NoLeakOnError(n int) (*res, error) {
	r, err := openRes()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		_ = r.Close()
		return nil, lifeErr{}
	}
	return r, nil
}

// ws is a pooled workspace; its internals must not outlive the
// acquire→release window.
type ws struct {
	buf []float64
}

// pool hands out reusable workspaces.
type pool struct{}

// acquire draws a workspace from the pool.
//
//life: return pooled
func (p *pool) acquire() *ws { return &ws{buf: make([]float64, 4)} }

// release hands w back to the pool.
//
//life: w releases
func (p *pool) release(w *ws) {}

// sink is the escape target for the global-store case.
var sink *ws

// EscapeReturn hands a pooled workspace to the caller (L2).
func EscapeReturn(p *pool) *ws {
	w := p.acquire()
	return w // want "escapes"
}

// EscapeGlobal parks a pooled workspace in a package-level variable (L2).
func EscapeGlobal(p *pool) {
	w := p.acquire()
	sink = w // want "escapes"
	p.release(w)
}

// EscapeGoroutine captures a pooled workspace in a goroutine that may
// outlive the window (L2).
func EscapeGoroutine(p *pool) {
	w := p.acquire()
	go func() { _ = w.buf[0] }() // want "captured by a goroutine"
	p.release(w)
}

// EscapeViewReturn returns a slice of pooled internals; the view escapes
// even though the workspace itself is released (L2).
func EscapeViewReturn(p *pool) []float64 {
	w := p.acquire()
	b := w.buf
	defer p.release(w)
	return b // want "escapes"
}

// UsePooled is the clean twin: all workspace traffic stays inside the
// window and release is deferred unconditionally.
func UsePooled(p *pool) float64 {
	w := p.acquire()
	defer p.release(w)
	w.buf[0] = 1
	return w.buf[0]
}

// UseAfterRelease touches the workspace after handing it back (L1 over
// the pooled vocabulary).
func UseAfterRelease(p *pool) float64 {
	w := p.acquire()
	p.release(w)
	return w.buf[0] // want "use of w after release"
}

//life: return owned // want "binds nothing"
var unboundTarget int

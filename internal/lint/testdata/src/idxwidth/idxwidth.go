// Package idxfix seeds one violation of every idx-width finding class,
// next to a guarded twin that must stay silent: the analyzer's value is
// exactly this contrast — same arithmetic, one provably safe form.
package idxfix

import "stef/internal/idx"

// tree mirrors the CSF boundary shapes and their scale classes.
type tree struct {
	//idx: len=rank,nnz elem=fid
	fids [][]int32
	//idx: len=rank,nnz elem=nnz
	ptr [][]int64
	//idx: len=nnz
	vals []float64
	//idx: len=rank elem=dim
	dims []int
}

// Narrow packs an nnz-scale count into 32 bits without a guard.
//
//idx: k nnz
func Narrow(k int64) int32 {
	return int32(k) // want "narrowing conversion"
}

// NarrowGuarded routes the same pack through the checked guard: silent.
//
//idx: k nnz
func NarrowGuarded(k int64) int32 {
	return idx.Must32(k)
}

// Product multiplies two nnz-scale counts; 2^80 cannot fit int64.
//
//idx: a nnz
//idx: b nnz
func Product(a, b int64) int64 {
	return a * b // want "cannot fit int64"
}

// ProductGuarded performs the same multiply behind the overflow guard.
//
//idx: a nnz
//idx: b nnz
func ProductGuarded(a, b int64) int64 {
	return idx.Mul(a, b)
}

// LoopNarrow narrows a loop counter whose condition bound is nnz-scale.
//
//idx: n nnz
func LoopNarrow(n int64) int32 {
	var last int32
	for i := int64(0); i < n; i++ {
		last = int32(i) // want "narrowing conversion"
	}
	return last
}

// LeafCount reads the count out of an annotated container length.
func (t *tree) LeafCount() int32 {
	nnz := len(t.vals)
	return int32(nnz) // want "narrowing conversion"
}

// FidSum adds two fiber ids at the width they are stored at: the sum of
// two int32-bounded values needs 33 bits.
func (t *tree) FidSum(i int) int32 {
	f := t.fids[0][i]
	return f + f // want "under-width sum"
}

// Index performs 32-bit arithmetic in slice-index position with no
// provable bound.
func Index(s []float64, a, b int32) float64 {
	return s[a+b] // want "32-bit index arithmetic"
}

// IndexWide computes the same index at 64-bit width: silent.
func IndexWide(s []float64, a, b int32) float64 {
	return s[int(a)+int(b)]
}

// Unbound's directive names a parameter that does not exist.
//
//idx: missing nnz // want "binds nothing"
func Unbound(x int64) int64 {
	return x
}

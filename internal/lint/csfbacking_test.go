package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"strings"
	"testing"
)

func TestCSFBackingSelfCheckFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/csfbacking/csfbacking.go", csfPkgPath, true)
	checkFixture(t, pkg, CSFBacking)
}

func TestCSFBackingConsumerFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/csfbacking/consumer.go", "stef/internal/kernels", true)
	checkFixture(t, pkg, CSFBacking)
}

// TestCSFBackingRepoClean is the zero-finding repo self-check: no package
// in the module touches csf.Tree storage outside the seam, and the seam
// itself exports no storage fields.
func TestCSFBackingRepoClean(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	for _, f := range Run(pkgs, []*Analyzer{CSFBacking}) {
		t.Errorf("repo self-check: %s", f)
	}
}

// TestCSFBackingExportedFieldAccess covers the selector rule, which cannot
// be seeded against the real csf package (its fields no longer compile
// from outside): a synthetic csf with a re-exported field stands in, and a
// consumer reading the field must be flagged while accessor calls pass.
func TestCSFBackingExportedFieldAccess(t *testing.T) {
	l := sharedLoader(t)
	fset := l.Fset
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}

	csfFile := parse("fake_csf.go", `package csf
type Tree struct {
	Fids [][]int32
	vals []float64
}
func (t *Tree) FidLevel(l int) []int32 { return t.Fids[l] }
`)
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	fakeCSF, err := conf.Check(csfPkgPath, fset, []*ast.File{csfFile}, nil)
	if err != nil {
		t.Fatalf("typecheck fake csf: %v", err)
	}

	userFile := parse("user.go", `package user
import "stef/internal/csf"
func direct(t *csf.Tree) [][]int32 { return t.Fids }
func indexed(t *csf.Tree) []int32  { return t.Fids[0] }
func sanctioned(t *csf.Tree) []int32 { return t.FidLevel(0) }
`)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	userConf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if path == csfPkgPath {
			return fakeCSF, nil
		}
		return l.importPkg(path)
	})}
	userPkg, err := userConf.Check("stef/internal/user", fset, []*ast.File{userFile}, info)
	if err != nil {
		t.Fatalf("typecheck user: %v", err)
	}

	pass := &Pass{
		Analyzer: CSFBacking,
		Fset:     fset,
		Files:    []*ast.File{userFile},
		PkgPath:  "stef/internal/user",
		Pkg:      userPkg,
		Info:     info,
	}
	CSFBacking.Run(pass)
	if len(pass.findings) != 2 {
		t.Fatalf("got %d findings, want 2 (direct + indexed): %v", len(pass.findings), pass.findings)
	}
	for _, f := range pass.findings {
		if !strings.Contains(f.Message, `storage field "Fids"`) {
			t.Errorf("finding %q does not name the field", f.Message)
		}
	}
}

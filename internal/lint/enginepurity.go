package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EnginePurity enforces the Plan/Workspace split that makes compiled engines
// safe to share across concurrent solves: a Compute implementation may read
// the engine (the immutable plan) and write only through its Workspace
// argument and output parameters. Two shapes are flagged:
//
//   - a Compute method that stores through its receiver or a package-level
//     variable — per-call state smuggled into the shared engine, a data race
//     the moment two solves run on one compiled handle;
//   - a function literal installed as a Compute field/hook that captures a
//     slice- or map-typed variable from the enclosing scope — mutable state
//     bound at construction instead of carried by the Workspace.
var EnginePurity = &Analyzer{
	Name:      "engine-purity",
	Doc:       "flag Engine Compute implementations that mutate engine/global state or capture mutable slices/maps instead of using the Workspace",
	NeedTypes: true,
	Run:       runEnginePurity,
}

func runEnginePurity(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv != nil && fd.Name.Name == "Compute" && fd.Body != nil && firstParamIsWorkspace(pass, fd) {
				checkComputeMethod(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, l := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok && sel.Sel.Name == "Compute" {
						if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
							checkComputeLit(pass, lit)
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok && id.Name == "Compute" {
					if lit, ok := ast.Unparen(n.Value).(*ast.FuncLit); ok {
						checkComputeLit(pass, lit)
					}
				}
			}
			return true
		})
	}
}

// firstParamIsWorkspace reports whether fd's first parameter is of an
// interface type named Workspace (cpd.Workspace or a package-local mirror),
// i.e. whether fd implements the Engine Compute contract rather than being an
// unrelated method that happens to share the name.
func firstParamIsWorkspace(pass *Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[params.List[0].Type]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Workspace" {
		return false
	}
	_, ok = named.Underlying().(*types.Interface)
	return ok
}

// checkComputeMethod flags stores whose root is the method's receiver or a
// package-level variable — anywhere in the body, including closures launched
// from it.
func checkComputeMethod(pass *Pass, fd *ast.FuncDecl) {
	var recv types.Object
	if names := fd.Recv.List[0].Names; len(names) > 0 {
		recv = pass.Info.Defs[names[0]]
	}
	check := func(target ast.Expr) {
		root, _ := storeRoot(target)
		if root == nil {
			return
		}
		obj := objOf(pass, root)
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		switch {
		case recv != nil && obj == recv:
			pass.Reportf(target.Pos(), "Compute mutates engine state through receiver %q; engines are shared by concurrent solves — move this state into the Workspace", root.Name)
		case pass.Pkg != nil && v.Parent() == pass.Pkg.Scope():
			pass.Reportf(target.Pos(), "Compute mutates engine state via package-level %q; move this state into the Workspace", root.Name)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, l := range n.Lhs {
				check(l)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}

// checkComputeLit flags slice- or map-typed variables a Compute function
// literal captures from its enclosing scope, once per variable.
func checkComputeLit(pass *Pass, lit *ast.FuncLit) {
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := objOf(pass, id).(*types.Var)
		if !ok || v.IsField() || isLocal(lit, v) || seen[v] {
			return true
		}
		var kind string
		switch v.Type().Underlying().(type) {
		case *types.Slice:
			kind = "slice"
		case *types.Map:
			kind = "map"
		default:
			return true
		}
		seen[v] = true
		pass.Reportf(id.Pos(), "Compute captures mutable %s %q from the enclosing scope; take it via the Workspace so concurrent solves do not share it", kind, v.Name())
		return true
	})
}

// storeRoot unwraps an assignment target to its root identifier and
// collects the index expressions along the chain (a[i].f[j] -> a, [i, j]).
func storeRoot(e ast.Expr) (*ast.Ident, []ast.Expr) {
	var indices []ast.Expr
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t, indices
		case *ast.IndexExpr:
			indices = append(indices, t.Index)
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil, nil
		}
	}
}

// objOf resolves an identifier to its object (use or definition).
func objOf(pass *Pass, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// isLocal reports whether obj is declared inside the function literal
// (parameters included); such variables are private to one callback
// invocation.
func isLocal(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

package lint

import (
	"fmt"
	"go/token"
	"strings"

	"stef/internal/lint/flow"
	"stef/internal/lint/gates"
)

// StaleAllow flags escape comments that suppress nothing, so justifications
// rot visibly instead of silently outliving the code they excused:
//
//   - a //lint:allow whose named analyzer ran over the package and reported
//     no finding on the covered lines (or function, for doc-comment
//     directives);
//   - a //lint:allow naming an analyzer that does not exist (usually a typo
//     — the directive never matched anything);
//   - a //gate:allow in a package the gates manifest does not compile, or
//     in a _test.go file, where the gates harness (internal/lint/gates) can
//     never see it. Staleness of well-placed //gate:allow directives is
//     checked by `steflint -gates` itself, which knows the compiler's
//     actual diagnostics;
//   - a //gate:allow whose kind list misspells a kind ("escape,bonds"):
//     the gates parser reads any first word that is not a pure kind list
//     as reason text, so the typo silently widens the directive to all
//     kinds;
//   - an //idx: annotation in a _test.go file, where idx-width (which only
//     analyzes typechecked non-test files) can never bind it;
//   - an //idx: annotation naming a facet key or scale class that does not
//     exist ("len=rnak", "val=nzz"): the //idx: parser deliberately skips
//     unknown tokens so a typo degrades to "no information", and this check
//     is where the typo becomes visible instead;
//   - a //life: annotation in a _test.go file (same reasoning as //idx:),
//     or one misspelling a vocabulary word ("return ownd", "w releses"):
//     the //life: binder skips lines it does not recognize, so a typo
//     silently drops the lifecycle contract.
//
// The analyzer runs as a framework post-pass: it needs to observe which
// findings the other selected analyzers produced, so directives naming
// analyzers that were not selected (or were skipped on a typecheck failure)
// are not judged.
var StaleAllow = &Analyzer{
	Name: "stale-allow",
	Doc:  "flag //lint:allow, //gate:allow, //idx: and //life: directives that suppress or declare nothing",
	// Run is a no-op: Run() evaluates staleness after the other analyzers
	// have reported, via staleAllowFindings.
	Run: func(*Pass) {},
}

// gateAllowBody reports whether a comment is a //gate:allow directive and
// returns its trimmed body. The syntax is owned by internal/lint/gates;
// this mirrors its prefix rule.
func gateAllowBody(text string) (string, bool) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "gate:allow")
	if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// gateKindTypo inspects a //gate:allow body's first word and returns the
// misspelled kind, if any. A comma-joined first word is unambiguously
// meant as a kind list, so every part must be valid; a plain word is
// suspect when it is the entire body (a one-word "reason" is no reason) or
// when it is one edit away from a real kind ("shap fixture: ..." was
// almost certainly meant to name the shape kind, but the gates parser
// reads it as reason text and widens the directive to every kind).
func gateKindTypo(body string) (string, bool) {
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return "", false
	}
	first := fields[0]
	if strings.Contains(first, ",") {
		for _, k := range strings.Split(first, ",") {
			if !gates.ValidKind(k) {
				return k, true
			}
		}
		return "", false
	}
	if gates.ValidKind(first) {
		return "", false
	}
	if len(fields) == 1 || nearKind(first) {
		return first, true
	}
	return "", false
}

// nearKind reports whether s is within one edit (insertion, deletion, or
// substitution) of some valid gate kind.
func nearKind(s string) bool {
	for _, k := range gates.AllKinds() {
		if editDistanceAtMostOne(s, string(k)) {
			return true
		}
	}
	return false
}

// editDistanceAtMostOne reports whether a and b differ by at most one
// character edit. Linear scan: after the first mismatch the remainders
// must match under exactly one of skip-a, skip-b, or skip-both.
func editDistanceAtMostOne(a, b string) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b)-len(a) > 1 {
		return false
	}
	for i := 0; i < len(a); i++ {
		if a[i] == b[i] {
			continue
		}
		if len(a) == len(b) {
			return a[i+1:] == b[i+1:] // substitution
		}
		return a[i:] == b[i+1:] // insertion into a
	}
	return true // equal, or b has one trailing extra character
}

// kindList renders the valid gate kinds for error messages.
func kindList() string {
	names := make([]string, 0, 3)
	for _, k := range gates.AllKinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

// idxFacetTypos scans an //idx: directive body for misspelled facet keys
// and scale classes. The grammar is ambiguous in one place: a bare first
// token is a value class in the field/var form but a parameter name in the
// function-doc form, so it is only judged when it is the directive's sole
// token (the doc form needs at least two). Every other position has a
// closed vocabulary and is checked outright.
func idxFacetTypos(body string) []string {
	var bad []string
	badClass := func(c string) {
		bad = append(bad, fmt.Sprintf("unknown scale class %q (classes: %s)", c, strings.Join(flow.IdxClassNames(), ", ")))
	}
	toks := strings.Fields(body)
	for i, t := range toks {
		// A token starting with "//" ends the directive, mirroring the
		// //idx: parser; truncate *before* judging so the sole-token
		// heuristic below counts directive tokens, not trailing comment.
		if strings.HasPrefix(t, "//") {
			toks = toks[:i]
			break
		}
	}
	for i, t := range toks {
		k, v, hasEq := strings.Cut(t, "=")
		if !hasEq {
			if flow.ValidIdxClass(t) || t == "return" {
				continue
			}
			if i == 0 && len(toks) > 1 {
				continue // parameter name in the function-doc form
			}
			if i == 0 && !nearIdxClass(t) {
				continue // sole unknown token: reported as unbound by idx-width
			}
			badClass(t)
			continue
		}
		validKey := false
		for _, key := range flow.IdxFacetKeys() {
			if k == key {
				validKey = true
			}
		}
		if !validKey {
			bad = append(bad, fmt.Sprintf("unknown facet key %q (keys: %s)", k, strings.Join(flow.IdxFacetKeys(), ", ")))
			continue
		}
		for _, c := range strings.Split(v, ",") {
			if !flow.ValidIdxClass(c) {
				badClass(c)
			}
		}
	}
	return bad
}

// lifeWordTypos scans a //life: directive body for misspelled vocabulary
// words. The binder only reads the first two tokens (`return <kind>` or
// `<param> releases`), so only those positions are judged: the second is a
// closed vocabulary, while the first may be an arbitrary parameter name
// and is only suspect when it sits one edit away from a vocabulary word
// ("retrun owned" was almost certainly meant to declare a return kind, but
// the binder silently skips it).
func lifeWordTypos(body string) []string {
	toks := strings.Fields(body)
	for i, t := range toks {
		if strings.HasPrefix(t, "//") {
			toks = toks[:i]
			break
		}
	}
	var bad []string
	flag := func(w string) {
		bad = append(bad, fmt.Sprintf("unknown //life: word %q (words: %s)", w, strings.Join(flow.LifeWords(), ", ")))
	}
	for i, t := range toks {
		if i > 1 {
			break
		}
		if flow.ValidLifeWord(t) {
			continue
		}
		if i == 0 {
			if nearLifeWord(t) {
				flag(t)
			}
			continue
		}
		flag(t)
	}
	return bad
}

// nearLifeWord reports whether s is within one edit of a //life: word.
func nearLifeWord(s string) bool {
	for _, w := range flow.LifeWords() {
		if editDistanceAtMostOne(s, w) {
			return true
		}
	}
	return false
}

// nearIdxClass reports whether s is within one edit of a scale class.
func nearIdxClass(s string) bool {
	for _, c := range flow.IdxClassNames() {
		if editDistanceAtMostOne(s, c) {
			return true
		}
	}
	return false
}

// staleAllowFindings is the post-pass behind StaleAllow. ran holds the
// names of analyzers that actually executed over pkg.
func staleAllowFindings(idx *allowIndex, ran map[string]bool, pkg *Package) []Finding {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	report := func(pos token.Position, format string, args ...interface{}) Finding {
		return Finding{Pos: pos, Analyzer: StaleAllow.Name, Message: fmt.Sprintf(format, args...)}
	}
	var out []Finding
	for _, rec := range idx.records {
		switch {
		case !known[rec.analyzer]:
			out = append(out, report(rec.pos, "//lint:allow names unknown analyzer %q", rec.analyzer))
		case ran[rec.analyzer] && !rec.used:
			out = append(out, report(rec.pos, "//lint:allow %s suppresses no finding (stale)", rec.analyzer))
		}
	}
	for _, ix := range idx.idxs {
		if ix.inTest {
			out = append(out, report(ix.pos, "//idx: in a _test.go file; idx-width only analyzes typechecked non-test files, so the annotation can never bind"))
			continue
		}
		for _, msg := range idxFacetTypos(ix.body) {
			out = append(out, report(ix.pos, "//idx: names %s", msg))
		}
	}
	for _, lf := range idx.lifes {
		if lf.inTest {
			out = append(out, report(lf.pos, "//life: in a _test.go file; lifetime only analyzes typechecked non-test files, so the annotation can never bind"))
			continue
		}
		for _, msg := range lifeWordTypos(lf.body) {
			out = append(out, report(lf.pos, "//life: names %s", msg))
		}
	}
	for _, g := range idx.gates {
		switch {
		case g.inTest:
			out = append(out, report(g.pos, "//gate:allow in a _test.go file; the gates harness only compiles non-test files, so it can never take effect"))
		case !gates.IsGatedPackage(pkg.Path):
			out = append(out, report(g.pos, "//gate:allow in package %s, which the gates manifest does not compile; it can never take effect", pkg.Path))
		default:
			if k, bad := gateKindTypo(g.body); bad {
				out = append(out, report(g.pos, "//gate:allow names unknown gate kind %q (kinds: %s)", k, kindList()))
			}
		}
	}
	return out
}

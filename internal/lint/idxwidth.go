package lint

import (
	"stef/internal/lint/flow"
)

// idxPkgPath is the import path of the checked-narrowing guard helpers.
const idxPkgPath = "stef/internal/idx"

// widthCacheKey is the Pass.Cache slot holding the shared
// flow.WidthProgram.
const widthCacheKey = "flow.WidthProgram"

// IdxWidth is the index-width / overflow-soundness pass: every integer
// expression is assigned a scale class (rank / dim / fid / nnz / bytes)
// inferred from //idx: annotations on exported boundaries, len() of
// annotated containers, loop bounds and interprocedural summaries, and
// the analyzer flags narrowing conversions of wide classes, sums and
// products evaluated at a width that cannot hold the result class, and
// 32-bit arithmetic reaching slice-index position without a checked
// guard (idx.Must32). This is the machine-checked discipline that lets
// 100M+-nnz offset arithmetic (mmap arenas, sharded CSF) land without a
// new class of silent corruption.
var IdxWidth = &Analyzer{
	Name:      "idx-width",
	Doc:       "prove index/offset arithmetic is evaluated at a width that holds its scale class (interprocedural)",
	NeedTypes: true,
	Run:       runIdxWidth,
}

func runIdxWidth(pass *Pass) {
	prog := WidthProgramFor(pass)
	for _, f := range prog.CheckPackage(pass.PkgPath) {
		pass.Reportf(f.Pos, "%s", f.Message)
	}
}

// WidthProgramFor builds (or reuses, via Pass.Cache) the cross-package
// width program for one Run invocation. Exported for the `stef-verify
// -idx` debugging mode, which shares the loader and wants the same
// inference the analyzer applies.
func WidthProgramFor(pass *Pass) *flow.WidthProgram {
	if prog, ok := pass.Cache[widthCacheKey].(*flow.WidthProgram); ok {
		return prog
	}
	var fps []*flow.Package
	for _, pkg := range pass.All {
		if pkg.Types == nil || pkg.Info == nil {
			continue
		}
		fps = append(fps, &flow.Package{
			Path:  pkg.Path,
			Files: pkg.Files,
			Types: pkg.Types,
			Info:  pkg.Info,
		})
	}
	prog := flow.NewWidthProgram(pass.Fset, fps, flow.WidthConfig{GuardPath: idxPkgPath})
	pass.Cache[widthCacheKey] = prog
	return prog
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotPackages are the import-path suffixes of the packages whose loop
// bodies must stay allocation-free: the MTTKRP kernels themselves, the
// dense ALS kernels around them, the Algorithm-3 scheduler, and the ALS
// driver. Everything else (I/O, planning, experiments) allocates freely.
var hotPackages = []string{
	"internal/kernels",
	"internal/dense",
	"internal/sched",
	"internal/cpd",
}

func isHotPackage(path string) bool {
	for _, suffix := range hotPackages {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// HotPathAlloc flags allocation sites and allocation-prone constructs
// inside for-loop bodies of the hot packages: append, make, map and slice
// literals, fmt.* calls, and implicit interface conversions (each boxes
// its operand on the heap). STeF's kernels hoist every buffer out of the
// nnz-proportional loops; this analyzer keeps it that way. Legitimate
// once-per-call setup allocations are escaped with //lint:allow
// hotpath-alloc comments.
var HotPathAlloc = &Analyzer{
	Name:      "hotpath-alloc",
	Doc:       "flag allocations (append/make/literals/fmt/interface boxing) inside for loops of hot packages",
	NeedTypes: true,
	Run:       runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) {
	if !isHotPackage(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		v := &hotPathVisitor{pass: pass}
		ast.Walk(v, f)
	}
}

// hotPathVisitor walks a file tracking for-loop nesting depth. Loop depth
// is NOT reset inside function literals: a closure created inside a loop
// is virtually always invoked inside it too (sort.Search predicates,
// recursive kernel helpers), so its body counts as loop code.
type hotPathVisitor struct {
	pass      *Pass
	loopDepth int
}

func (v *hotPathVisitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.ForStmt:
		// The init statement runs once; cond, post and body repeat.
		if n.Init != nil {
			ast.Walk(v, n.Init)
		}
		inner := &hotPathVisitor{pass: v.pass, loopDepth: v.loopDepth + 1}
		if n.Cond != nil {
			ast.Walk(inner, n.Cond)
		}
		if n.Post != nil {
			ast.Walk(inner, n.Post)
		}
		ast.Walk(inner, n.Body)
		return nil
	case *ast.RangeStmt:
		if n.X != nil {
			ast.Walk(v, n.X)
		}
		inner := &hotPathVisitor{pass: v.pass, loopDepth: v.loopDepth + 1}
		ast.Walk(inner, n.Body)
		return nil
	}
	if v.loopDepth == 0 {
		return v
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		v.checkCall(n)
	case *ast.CompositeLit:
		v.checkCompositeLit(n)
	case *ast.AssignStmt:
		v.checkAssignConversions(n)
	}
	return v
}

// checkCall flags append, make, fmt.* and interface-boxing arguments of
// calls inside loops.
func (v *hotPathVisitor) checkCall(call *ast.CallExpr) {
	pass := v.pass
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append inside a hot loop grows a slice per iteration; hoist the buffer out of the loop")
			case "make":
				pass.Reportf(call.Pos(), "make inside a hot loop allocates per iteration; hoist the buffer out of the loop")
			}
			// Other builtins (panic, copy, len, ...) take no boxing hit
			// worth flagging here.
			return
		}
	case *ast.SelectorExpr:
		if pkg, ok := pass.Info.Uses[identOf(fun.X)].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s inside a hot loop allocates (formatting and boxing); move it out of the loop or use //lint:allow hotpath-alloc on a cold error path", fun.Sel.Name)
			return // don't double-report its ...interface{} arguments
		}
	}
	// Explicit conversion to an interface type: T(x) where T is an
	// interface boxes x.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceOrNil(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface type %s inside a hot loop boxes its operand", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	// Implicit interface conversions at call boundaries: a concrete
	// argument passed as an interface parameter escapes to the heap.
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && !isInterfaceOrNil(pass, arg) {
			pass.Reportf(arg.Pos(), "argument boxed into interface parameter %s inside a hot loop", types.TypeString(pt, types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkCompositeLit flags map and slice literals (both allocate).
func (v *hotPathVisitor) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := v.pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		v.pass.Reportf(lit.Pos(), "slice literal inside a hot loop allocates per iteration")
	case *types.Map:
		v.pass.Reportf(lit.Pos(), "map literal inside a hot loop allocates per iteration")
	}
}

// checkAssignConversions flags assignments that box a concrete value into
// an interface-typed variable.
func (v *hotPathVisitor) checkAssignConversions(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	pass := v.pass
	for i, lhs := range assign.Lhs {
		lt, ok := pass.Info.Types[lhs]
		if !ok || !types.IsInterface(lt.Type) {
			continue
		}
		if !isInterfaceOrNil(pass, assign.Rhs[i]) {
			pass.Reportf(assign.Rhs[i].Pos(), "assignment boxes a concrete value into interface %s inside a hot loop", types.TypeString(lt.Type, types.RelativeTo(pass.Pkg)))
		}
	}
}

// calleeSignature resolves the static signature of a call, or reports
// false for builtins, conversions and unresolvable callees.
func calleeSignature(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// isInterfaceOrNil reports whether arg is already an interface value (no
// new boxing) or the untyped nil.
func isInterfaceOrNil(pass *Pass, arg ast.Expr) bool {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return true // be conservative: don't flag what we can't see
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return types.IsInterface(tv.Type)
}

// identOf unwraps parens and returns the identifier of e, or nil.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

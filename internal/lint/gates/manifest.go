package gates

// Manifest declares which packages are compiled with diagnostics enabled
// and which of their functions are hot: inside a hot function, any escape
// or bounds-check diagnostic positioned in a loop body is a violation
// unless a //gate:allow directive covers it. Diagnostics anywhere else in
// the gated packages are baseline-ratcheted instead.
type Manifest struct {
	// Packages are the import paths built with -m=1 -d=ssa/check_bce.
	Packages []string
	// Rules lists the hot functions by qualified short name
	// ("pkgname.Func" or "pkgname.Type.Method").
	Rules []Rule
	// Shapes lists per-function machine-code assertions checked against
	// the -S listing (shape.go).
	Shapes []ShapeRule
}

// Rule marks one function as hot.
type Rule struct {
	// Func is the qualified short name, e.g. "kernels.rootGeneric".
	Func string
	// Note records why the function is on the manifest; it is echoed in
	// failure messages so a gate trip explains itself.
	Note string
}

func (m *Manifest) ruleFor(fn string) (Rule, bool) {
	for _, r := range m.Rules {
		if r.Func == fn {
			return r, true
		}
	}
	return Rule{}, false
}

// IsGatedPackage reports whether the default manifest compiles pkgPath
// with diagnostics — i.e. whether //gate:allow directives in that package
// can ever take effect.
func IsGatedPackage(pkgPath string) bool {
	for _, p := range Default().Packages {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// Default is the repository's manifest: the per-nnz MTTKRP path from the
// paper's Algorithms 2–9 plus the thread-launch and partition machinery it
// runs under. The stated notes mirror the paper's cost model — these
// functions execute O(nnz) (or O(fibers)) times per CPD iteration, so a
// single stray allocation or check multiplies across the whole tensor.
func Default() *Manifest {
	return &Manifest{
		Packages: []string{
			"stef/internal/kernels",
			"stef/internal/par",
			"stef/internal/sched",
			"stef/internal/dense",
		},
		Rules: []Rule{
			{Func: "kernels.RootMTTKRPWith", Note: "root-mode dispatch (Alg. 4/5), runs once per iteration but owns the boundary-replica setup loop"},
			{Func: "kernels.rootGeneric", Note: "order-agnostic recursive root kernel; the semantic reference per-nnz path"},
			{Func: "kernels.root3Thread", Note: "order-3 unrolled root kernel (per-thread body), dominant benchmark path"},
			{Func: "kernels.root4Thread", Note: "order-4 unrolled root kernel (per-thread body)"},
			{Func: "kernels.root5Thread", Note: "order-5 unrolled root kernel (per-thread body)"},
			{Func: "kernels.RootMTTKRPSubtrees", Note: "subtree-parallel root kernel (ablation path), per-nnz"},
			{Func: "kernels.ModeMTTKRPSubtrees", Note: "subtree-parallel non-root kernel, per-nnz"},
			{Func: "kernels.ModeMTTKRPWith", Note: "non-root dispatch (Alg. 6-8)"},
			{Func: "kernels.modeGeneric", Note: "order-agnostic recursive non-root kernel, per-nnz"},
			{Func: "kernels.zero", Note: "rank-vector clear inside every fiber visit; must lower to memclr"},
			{Func: "kernels.addScaled", Note: "leaf-level axpy, executed once per nonzero"},
			{Func: "kernels.OutBufThread.AddScaled", Note: "per-add output scatter: hot-replica / direct / CAS dispatch, once per leaf write"},
			{Func: "kernels.OutBufThread.AddHadamard", Note: "per-add output scatter (Hadamard form), once per internal-node write"},
			{Func: "kernels.OutBuf.Reduce", Note: "touched-row reduction driver, O(touched·R) per mode solve"},
			{Func: "kernels.OutBuf.reducePrivRows", Note: "journal-guided privatized reduction loop, per touched row"},
			{Func: "kernels.OutBuf.reduceHybridRows", Note: "hot-slab combine + cold-row copy loop, per touched row"},
			{Func: "kernels.OutBuf.reduceAtomicRows", Note: "shared-buffer copy-out loop, per touched row"},
			{Func: "kernels.OutBuf.combineHot", Note: "log-T tree combine of the hot replica slabs"},
			{Func: "kernels.CountRowWrites", Note: "O(nnz) write census behind every accumulation plan"},
			{Func: "kernels.RowRemap.Pack", Note: "per-launch factor gather into the packed row layout, O(rows·R) on every remapped kernel call"},
			{Func: "kernels.RowRemap.Unpack", Note: "packed-to-original factor scatter, the inverse of Pack"},
			{Func: "kernels.BuildRowRemap", Note: "plan-time hot-prefix sort and permutation build from the write census"},
			{Func: "kernels.RowWrites.Remapped", Note: "plan-time census transport into packed row space, O(rows + journal)"},
			{Func: "kernels.hadamardAccum", Note: "fiber fold-up, executed once per internal CSF node"},
			{Func: "kernels.hadamardInto", Note: "downward Khatri-Rao product, executed once per internal CSF node"},
			{Func: "par.Blocks", Note: "thread launcher wrapping every parallel kernel"},
			{Func: "par.Do", Note: "thread launcher wrapping every parallel kernel"},
			{Func: "sched.NewPartition", Note: "nnz-balanced partition walk (Alg. 3), O(nnz) leaf scan at build time"},
		},
		// Hand-written shape rules for the variable-length scalar
		// primitives; vecShapeRules() adds one per generated R-blocked
		// specialization (internal/kernels/vec_gen.go), so every emitted
		// kernel is born certified.
		Shapes: append([]ShapeRule{
			{
				Func: "kernels.addScaled", Note: "8-wide unrolled axpy: call-free, >=8 FP muls per iteration",
				MaxCalls: 0, MaxLoopCalls: 0, MaxBounds: Unchecked, MinFPMul: 8, MaxLoopFrameLoads: 0,
			},
			{
				Func: "kernels.hadamardAccum", Note: "8-wide unrolled fused multiply-accumulate fold",
				MaxCalls: 0, MaxLoopCalls: 0, MaxBounds: Unchecked, MinFPMul: 8, MaxLoopFrameLoads: 0,
			},
			{
				Func: "kernels.hadamardInto", Note: "8-wide unrolled elementwise product",
				MaxCalls: 0, MaxLoopCalls: 0, MaxBounds: Unchecked, MinFPMul: 8, MaxLoopFrameLoads: 0,
			},
		}, vecShapeRules()...),
	}
}

package gates

// Assembly-listing parser behind the code-shape gate. The gates compile
// already runs with -S, so the compiler's stderr interleaves the escape/BCE
// diagnostics with a per-function instruction listing:
//
//	stef/internal/kernels.addScaled STEXT nosplit size=302 args=0x38 ...
//		0x0000 00000 (/root/repo/internal/kernels/vec.go:40)	TEXT	...
//		0x0025 00037 (/root/repo/internal/kernels/vec.go:47)	MOVSD	(DI)(CX*8), X1
//		0x00e5 00229 (/root/repo/internal/kernels/vec.go:45)	JLS	37
//
// This file turns that listing into per-function instruction streams with
// just enough structure for shape assertions: loop spans (backward
// branches), CALL classification (real call / runtime.panic* bounds block /
// runtime.morestack* prologue), floating-point multiply counts, and named
// stack-frame loads (a re-loaded slice header or spilled base pointer).
// shape.go evaluates the manifest's ShapeRules against it.

import (
	"regexp"
	"strconv"
	"strings"
	"unicode"
)

// Insn is one decoded machine instruction from a -S listing.
type Insn struct {
	// Off is the decimal instruction offset -S prints (branch operands
	// reference these, not byte addresses).
	Off  int
	File string
	Line int
	Op   string
	Args string
}

// insnSpan is an [From, To] offset range of instructions.
type insnSpan struct{ From, To int }

// AsmFunc is one compiled function's instruction stream.
type AsmFunc struct {
	// Sym is the full link symbol, e.g. "stef/internal/kernels.addScaled16".
	Sym string
	// Name is the manifest-style qualified short name the symbol maps to,
	// e.g. "kernels.addScaled16" or "kernels.OutBufThread.AddScaled".
	Name  string
	Insns []Insn
	loops []insnSpan
}

// asmHeader matches a function header line: "<sym> STEXT ...".
var asmHeader = regexp.MustCompile(`^(\S+)\s+STEXT\b`)

// asmInsn matches an instruction line: "\t0x00e5 00229 (file:line)\tOP\targs".
var asmInsn = regexp.MustCompile(`^\s+0x[0-9a-f]+\s+(\d+)\s+\((.*):(\d+)\)\s+(\S+)\s*(.*)$`)

// pseudoOps are assembler directives carrying no machine instruction.
var pseudoOps = map[string]bool{
	"TEXT": true, "FUNCDATA": true, "PCDATA": true, "NOP": true,
}

// ParseAsm extracts every function's instruction stream from compiler
// output produced with -S. Lines that are not part of a listing (escape
// and BCE diagnostics, the trailing hex dumps) are ignored, so the same
// stderr capture feeds ParseDiagnostics and ParseAsm.
func ParseAsm(out []byte) map[string]*AsmFunc {
	funcs := make(map[string]*AsmFunc)
	var cur *AsmFunc
	for _, line := range strings.Split(string(out), "\n") {
		if m := asmHeader.FindStringSubmatch(line); m != nil {
			cur = &AsmFunc{Sym: m[1], Name: shortSymName(m[1])}
			// The compiler re-lists a function once per build unit; keep the
			// first listing (they are identical).
			if _, dup := funcs[cur.Name]; !dup {
				funcs[cur.Name] = cur
			} else {
				cur = nil
			}
			continue
		}
		if cur == nil {
			continue
		}
		m := asmInsn.FindStringSubmatch(line)
		if m == nil {
			// Hex dump or unrelated diagnostic: a blank line or a new header
			// ends the listing, anything else inside it is skipped.
			if strings.TrimSpace(line) == "" {
				cur = nil
			}
			continue
		}
		off, err1 := strconv.Atoi(m[1])
		ln, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil || pseudoOps[m[4]] {
			continue
		}
		cur.Insns = append(cur.Insns, Insn{Off: off, File: m[2], Line: ln, Op: m[4], Args: strings.TrimSpace(m[5])})
	}
	for _, f := range funcs {
		f.computeLoops()
	}
	return funcs
}

// shortSymName maps a link symbol to the manifest's qualified short form:
// the import path is dropped and pointer-receiver decoration removed, so
// "stef/internal/kernels.(*OutBuf).Reduce" becomes "kernels.OutBuf.Reduce".
func shortSymName(sym string) string {
	s := sym
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	s = strings.ReplaceAll(s, "(*", "")
	s = strings.ReplaceAll(s, ")", "")
	return s
}

// computeLoops records the [target, branch] span of every backward branch.
// The stack-growth epilogue ends in an unconditional jump back to offset 0
// right after its CALL runtime.morestack*; that retreat is not a loop and
// is excluded, as is everything inside the epilogue itself.
func (f *AsmFunc) computeLoops() {
	for i, in := range f.Insns {
		tgt, ok := branchTarget(in)
		if !ok || tgt > in.Off {
			continue
		}
		if i > 0 && isMorestackCall(f.Insns[i-1]) {
			continue
		}
		f.loops = append(f.loops, insnSpan{From: tgt, To: in.Off})
	}
}

// branchTarget decodes a branch instruction's numeric target offset. Both
// amd64 (JMP/Jcc) and arm64 (JMP/Bcc/CBZ/TBZ) spellings are recognised;
// branches to symbols (tail calls) report false.
func branchTarget(in Insn) (int, bool) {
	op := in.Op
	if !strings.HasPrefix(op, "J") && !strings.HasPrefix(op, "B") &&
		!strings.HasPrefix(op, "CB") && !strings.HasPrefix(op, "TB") {
		return 0, false
	}
	arg := in.Args
	if i := strings.LastIndexAny(arg, ", "); i >= 0 {
		arg = arg[i+1:]
	}
	n, err := strconv.Atoi(arg)
	if err != nil {
		return 0, false
	}
	return n, true
}

// inLoop reports whether the instruction offset lies inside a loop body.
func (f *AsmFunc) inLoop(off int) bool {
	for _, sp := range f.loops {
		if sp.From <= off && off <= sp.To {
			return true
		}
	}
	return false
}

func isMorestackCall(in Insn) bool {
	return in.Op == "CALL" && strings.Contains(in.Args, "runtime.morestack")
}

// isPanicCall reports a call into a runtime panic helper — the target block
// of a bounds/slice check, not steady-state code.
func isPanicCall(in Insn) bool {
	return in.Op == "CALL" &&
		(strings.Contains(in.Args, "runtime.panic") || strings.Contains(in.Args, "runtime.goPanic"))
}

// isRealCall reports a CALL that executes on the non-panicking path.
func isRealCall(in Insn) bool {
	return in.Op == "CALL" && !isMorestackCall(in) && !isPanicCall(in)
}

// isFPMul reports a floating-point multiply or fused multiply-add — the
// instruction the rank-vector inner blocks must be made of. Covers the
// scalar, packed, and fused spellings on amd64 (MULSD/VMUL*/VFMADD*) and
// arm64 (FMUL*/FMADD*/FNMADD*), so the assertion survives both a toolchain
// that emits SSE scalars and one that vectorises or fuses.
func isFPMul(op string) bool {
	return strings.HasPrefix(op, "MULS") ||
		strings.HasPrefix(op, "VMUL") ||
		strings.HasPrefix(op, "VFMADD") || strings.HasPrefix(op, "VFNMADD") ||
		strings.HasPrefix(op, "FMUL") ||
		strings.HasPrefix(op, "FMADD") || strings.HasPrefix(op, "FNMADD")
}

// isNamedFrameLoad reports a MOV-family instruction whose source operand is
// a *named* stack-frame slot — sym+off(SP) or sym(FP) — i.e. a re-loaded
// slice header, argument, or spilled base. Unnamed scratch spills like
// "16(SP)" do not count: only named slots correspond to Go-level values the
// kernel was supposed to keep hoisted in registers.
func isNamedFrameLoad(in Insn) bool {
	if !strings.HasPrefix(in.Op, "MOV") {
		return false
	}
	src, _, ok := strings.Cut(in.Args, ",")
	if !ok {
		return false
	}
	src = strings.TrimSpace(src)
	var base string
	switch {
	case strings.HasSuffix(src, "(SP)"):
		base = strings.TrimSuffix(src, "(SP)")
	case strings.HasSuffix(src, "(FP)"):
		base = strings.TrimSuffix(src, "(FP)")
	default:
		return false
	}
	for _, r := range base {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

package gates

import (
	"path/filepath"
	"strings"
	"testing"
)

// synthetic -S listing: one looping function with a panic block, a
// morestack epilogue, FP multiplies, and a named frame reload, plus a
// pointer-receiver method.
const asmFixture = `
p/kernels.addScaledX STEXT nosplit size=64 args=0x38 locals=0x10
	0x0000 00000 (vec.go:10)	TEXT	p/kernels.addScaledX(SB), NOSPLIT|ABIInternal, $16-56
	0x0004 00004 (vec.go:10)	FUNCDATA	$0, gclocals·x(SB)
	0x0008 00008 (vec.go:11)	XORL	CX, CX
	0x000a 00010 (vec.go:12)	JMP	40
	0x000c 00012 (vec.go:13)	MOVSD	(DI)(CX*8), X1
	0x0011 00017 (vec.go:13)	MULSD	X0, X1
	0x0015 00021 (vec.go:13)	MULSD	X0, X1
	0x0019 00025 (vec.go:14)	MOVQ	p/kernels.dst+32(FP), AX
	0x001e 00030 (vec.go:14)	CALL	p/kernels.helper(SB)
	0x0023 00035 (vec.go:15)	INCQ	CX
	0x0026 00038 (vec.go:12)	JLT	12
	0x0028 00040 (vec.go:16)	RET
	0x0029 00041 (vec.go:13)	CALL	runtime.panicIndex(SB)
	0x002e 00046 (vec.go:10)	CALL	runtime.morestack_noctxt(SB)
	0x0033 00051 (vec.go:10)	JMP	0
	0x0000 49 c7 c1 00 00 00 00 0f 57 c9 eb 1a f2 0f 10 0c	I.......W.......

p/kernels.(*OutBufThread).AddScaledX STEXT size=16 args=0x20 locals=0x0
	0x0000 00000 (outbuf.go:5)	TEXT	p/kernels.(*OutBufThread).AddScaledX(SB), ABIInternal, $0-32
	0x0004 00004 (outbuf.go:6)	MOVUPS	8(SP), X0
	0x0009 00009 (outbuf.go:7)	RET
`

func TestParseAsm(t *testing.T) {
	funcs := ParseAsm([]byte(asmFixture))
	f, ok := funcs["kernels.addScaledX"]
	if !ok {
		t.Fatalf("addScaledX not parsed; got %v", keys(funcs))
	}
	m, ok := funcs["kernels.OutBufThread.AddScaledX"]
	if !ok {
		t.Fatalf("pointer-receiver method name not normalized; got %v", keys(funcs))
	}
	// Pseudo-ops and hex dumps are dropped.
	for _, in := range f.Insns {
		if in.Op == "TEXT" || in.Op == "FUNCDATA" {
			t.Errorf("pseudo-op %s leaked into the instruction stream", in.Op)
		}
	}
	// The backward JLT 12 is a loop; the morestack JMP 0 is not.
	if len(f.loops) != 1 {
		t.Fatalf("got %d loop spans, want 1 (morestack retreat excluded): %v", len(f.loops), f.loops)
	}
	if f.loops[0].From != 12 || f.loops[0].To != 38 {
		t.Errorf("loop span [%d,%d], want [12,38]", f.loops[0].From, f.loops[0].To)
	}
	if !f.inLoop(30) || f.inLoop(40) {
		t.Error("inLoop misclassifies offsets 30 (body) / 40 (after)")
	}
	// Call classification: one real call in the loop, the panic and
	// morestack calls excluded.
	var real, loop int
	for _, in := range f.Insns {
		if isRealCall(in) {
			real++
			if f.inLoop(in.Off) {
				loop++
			}
		}
	}
	if real != 1 || loop != 1 {
		t.Errorf("real calls %d (in-loop %d), want 1/1", real, loop)
	}
	// FP multiplies and named frame loads.
	var muls, frame int
	for _, in := range f.Insns {
		if isFPMul(in.Op) {
			muls++
		}
		if isNamedFrameLoad(in) && f.inLoop(in.Off) {
			frame++
		}
	}
	if muls != 2 {
		t.Errorf("FP multiply count %d, want 2", muls)
	}
	if frame != 1 {
		t.Errorf("named in-loop frame loads %d, want 1 (the dst+32(FP) reload)", frame)
	}
	// The unnamed 8(SP) load in the method must not count.
	for _, in := range m.Insns {
		if isNamedFrameLoad(in) {
			t.Errorf("unnamed frame slot counted as named: %v", in)
		}
	}
}

func keys(m map[string]*AsmFunc) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// shapeFixtureManifest points one rule at each seeded violation in the
// shapefix module, plus a rule for a function that does not exist and one
// for the allowed function.
func shapeFixtureManifest() *Manifest {
	return &Manifest{
		Packages: []string{"shapefix"},
		Shapes: []ShapeRule{
			{Func: "shapefix.CallLoop", Note: "seeded in-loop call",
				MaxCalls: 0, MaxLoopCalls: 0, MaxBounds: Unchecked, MinFPMul: 0, MaxLoopFrameLoads: Unchecked},
			{Func: "shapefix.Reload", Note: "seeded frame reload",
				MaxCalls: Unchecked, MaxLoopCalls: Unchecked, MaxBounds: Unchecked, MinFPMul: 0, MaxLoopFrameLoads: 0},
			{Func: "shapefix.Gather", Note: "seeded bounds checks",
				MaxCalls: Unchecked, MaxLoopCalls: Unchecked, MaxBounds: 0, MinFPMul: 0, MaxLoopFrameLoads: Unchecked},
			{Func: "shapefix.AddOnly", Note: "seeded missing unroll",
				MaxCalls: Unchecked, MaxLoopCalls: Unchecked, MaxBounds: Unchecked, MinFPMul: 8, MaxLoopFrameLoads: Unchecked},
			{Func: "shapefix.DoesNotExist", Note: "seeded missing function",
				MaxCalls: Unchecked, MaxLoopCalls: Unchecked, MaxBounds: Unchecked, MinFPMul: 0, MaxLoopFrameLoads: Unchecked},
			{Func: "shapefix.Allowed", Note: "seeded call, waived",
				MaxCalls: 0, MaxLoopCalls: 0, MaxBounds: Unchecked, MinFPMul: 0, MaxLoopFrameLoads: Unchecked},
		},
	}
}

// TestCheckShapeFixture proves every shape assertion kind actually fires
// on real compiler output, that //gate:allow shape waives a function, and
// that a waiver suppressing nothing is reported stale.
func TestCheckShapeFixture(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "shapefix"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(root, shapeFixtureManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool) // "<func>/<kind>"
	for _, v := range res.ShapeViolations {
		got[v.Rule.Func+"/"+v.Kind] = true
		if v.Rule.Func == "shapefix.Allowed" {
			t.Errorf("//gate:allow shape did not waive: %v", v)
		}
	}
	for _, want := range []string{
		"shapefix.CallLoop/" + ShapeCalls,
		"shapefix.CallLoop/" + ShapeLoopCalls,
		"shapefix.Reload/" + ShapeFrameLoads,
		"shapefix.Gather/" + ShapeBounds,
		"shapefix.AddOnly/" + ShapeFPMul,
		"shapefix.DoesNotExist/" + ShapeMissing,
	} {
		if !got[want] {
			t.Errorf("seeded shape violation %s not reported; got %v", want, res.ShapeViolations)
		}
	}
	// Exactly one stale directive: the one on CleanStale. Allowed's must be
	// marked used by the suppression.
	if len(res.Stale) != 1 {
		t.Errorf("got %d stale allows, want exactly the CleanStale one: %v", len(res.Stale), res.Stale)
	}
	for _, v := range res.ShapeViolations {
		if v.Kind != ShapeMissing && !strings.Contains(v.Pos, "hot.go:") {
			t.Errorf("violation lacks a source position: %+v", v)
		}
	}
}

package gates

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseDiagnostics(t *testing.T) {
	out := strings.Join([]string{
		"./vec.go:10:2: Found IsInBounds",
		"./vec.go:11:5: Found IsSliceInBounds",
		"./root.go:20:9: make([]float64, r) escapes to heap",
		"./root.go:21:2: moved to heap: tmp",
		"./vec.go:10:2: Found IsInBounds", // inlined repeat, must dedup
		"./root.go:5:6: can inline rootGeneric",
		"./root.go:6:7: leaking param: tree",
		"./root.go:7:7: factors does not escape",
		"not a diagnostic line",
		"./weird.go:x:1: Found IsInBounds", // malformed position
	}, "\n")
	diags := ParseDiagnostics([]byte(out))
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4: %v", len(diags), diags)
	}
	wantKinds := map[string]Kind{
		"root.go:20": KindEscape,
		"root.go:21": KindEscape,
		"vec.go:10":  KindBounds,
		"vec.go:11":  KindBounds,
	}
	for _, d := range diags {
		key := d.File + ":" + itoa(d.Line)
		if wantKinds[key] != d.Kind {
			t.Errorf("%s: kind %q, want %q", key, d.Kind, wantKinds[key])
		}
	}
	// Sorted by file, then line.
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics not sorted: %v before %v", a, b)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestParseGateAllow(t *testing.T) {
	cases := []struct {
		text   string
		isDir  bool
		escape bool
		bounds bool
	}{
		{"//gate:allow bounds tail loop", true, false, true},
		{"//gate:allow escape setup once", true, true, false},
		{"//gate:allow escape,bounds setup once", true, true, true},
		{"//gate:allow data-dependent index", true, true, true}, // reason only: all kinds
		{"//gate:allow", true, true, true},
		{"//gate:allowed nothing", false, false, false}, // no word boundary
		{"// gate:allow spaced out", true, true, true},
		{"//lint:allow hotpath-alloc", false, false, false},
	}
	for _, c := range cases {
		kinds, ok := parseGateAllow(c.text)
		if ok != c.isDir {
			t.Errorf("%q: directive=%v, want %v", c.text, ok, c.isDir)
			continue
		}
		if !ok {
			continue
		}
		gotEscape := kinds == nil || kinds[KindEscape]
		gotBounds := kinds == nil || kinds[KindBounds]
		if gotEscape != c.escape || gotBounds != c.bounds {
			t.Errorf("%q: allows escape=%v bounds=%v, want %v/%v", c.text, gotEscape, gotBounds, c.escape, c.bounds)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	counts := map[string]int{
		"kernels.rootGeneric\tbounds": 3,
		"sched.NewPartition\tescape":  1,
	}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, FormatBaseline("go1.99.9", counts), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Toolchain != "go1.99.9" {
		t.Errorf("toolchain stamp %q did not round-trip", got.Toolchain)
	}
	if len(got.Counts) != len(counts) {
		t.Fatalf("round trip lost entries: %v vs %v", got.Counts, counts)
	}
	for k, v := range counts {
		if got.Counts[k] != v {
			t.Errorf("key %q: got %d, want %d", k, got.Counts[k], v)
		}
	}
}

// TestBaselineUnstampedLoads keeps pre-stamp baselines loadable: the stamp
// stays empty, which Check reports as toolchain-stale rather than a parse
// error.
func TestBaselineUnstampedLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte("# old format\nkernels.f\tbounds\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Toolchain != "" {
		t.Errorf("unstamped baseline reports toolchain %q, want empty", got.Toolchain)
	}
	if got.Counts["kernels.f\tbounds"] != 2 {
		t.Errorf("counts lost: %v", got.Counts)
	}
}

func TestLoadBaselineRejectsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte("just one field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

// fixtureManifest gates the gatesfix module with Hot as its only hot
// function.
func fixtureManifest() *Manifest {
	return &Manifest{
		Packages: []string{"gatesfix"},
		Rules:    []Rule{{Func: "gatesfix.Hot", Note: "fixture hot loop"}},
	}
}

// TestCheckFixture proves the gate actually fires: the fixture seeds one
// heap escape and one bounds check inside Hot's loop, and both must be
// reported; the identical code in Allowed is covered by //gate:allow and
// must not be; the deliberately stale directive must be flagged.
func TestCheckFixture(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "gatesfix"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(root, fixtureManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var escapes, bounds int
	for _, v := range res.Violations {
		if v.Func != "gatesfix.Hot" {
			t.Errorf("violation outside Hot: %v", v)
		}
		switch v.Diag.Kind {
		case KindEscape:
			escapes++
		case KindBounds:
			bounds++
		}
	}
	if escapes == 0 {
		t.Errorf("seeded heap escape in Hot's loop not caught; violations: %v", res.Violations)
	}
	if bounds == 0 {
		t.Errorf("seeded bounds check in Hot's loop not caught; violations: %v", res.Violations)
	}
	if len(res.Stale) != 1 {
		t.Errorf("got %d stale allows, want exactly the seeded one: %v", len(res.Stale), res.Stale)
	} else if res.Stale[0].File != "hot.go" {
		t.Errorf("stale allow reported in %s, want hot.go", res.Stale[0].File)
	}
	// Allowed has the same diagnostics under //gate:allow: none of them may
	// surface as violations or baseline counts.
	for _, v := range res.Violations {
		if v.Func == "gatesfix.Allowed" {
			t.Errorf("gate:allow-covered diagnostic reported: %v", v)
		}
	}
	for key := range res.Counts {
		if strings.HasPrefix(key, "gatesfix.Allowed\t") && strings.HasSuffix(key, string(KindBounds)) {
			t.Errorf("allowed in-loop bounds diagnostic leaked into baseline counts: %q", key)
		}
	}
}

// TestCheckFixtureBaselineRatchet runs the fixture twice: an empty baseline
// must report the out-of-loop diagnostics as regressions, and a baseline
// equal to the observed counts must be clean.
func TestCheckFixtureBaselineRatchet(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "gatesfix"))
	if err != nil {
		t.Fatal(err)
	}
	first, err := Check(root, fixtureManifest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Counts) == 0 {
		t.Fatal("fixture produced no baseline-tracked diagnostics; the ratchet test needs some")
	}
	if len(first.Regressions) == 0 {
		t.Error("non-empty counts against an empty baseline must regress")
	}
	second, err := Check(root, fixtureManifest(), &Baseline{Toolchain: first.Toolchain, Counts: first.Counts})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Regressions) != 0 {
		t.Errorf("counts == baseline must not regress: %v", second.Regressions)
	}
	if len(second.Improvements) != 0 {
		t.Errorf("counts == baseline must not improve: %v", second.Improvements)
	}
}

// TestCheckToolchainStale pins the drift behaviour: a baseline stamped by
// another compiler must flag staleness, suppress the ratchet deltas (the
// counts are incomparable), and fail OK().
func TestCheckToolchainStale(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "gatesfix"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(root, fixtureManifest(), &Baseline{Toolchain: "go0.0.0", Counts: map[string]int{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ToolchainStale() {
		t.Fatalf("baseline stamped go0.0.0 vs current %s must be stale", res.Toolchain)
	}
	if len(res.Regressions) != 0 || len(res.Improvements) != 0 {
		t.Errorf("stale toolchain must suppress ratchet deltas, got %d regressions, %d improvements",
			len(res.Regressions), len(res.Improvements))
	}
	if res.OK() {
		t.Error("toolchain-stale result must not pass OK()")
	}
}

// TestRepoGatesClean is the self-check: the repository must pass its own
// gates against the committed baseline.
func TestRepoGatesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the gated packages; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "stef" {
		t.Fatalf("module root resolution found %q, want stef", modPath)
	}
	baseline, err := LoadBaseline(filepath.Join(root, filepath.FromSlash(BaselineFile)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(root, Default(), baseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	for _, v := range res.ShapeViolations {
		t.Errorf("shape violation: %v", v)
	}
	for _, s := range res.Stale {
		t.Errorf("stale allow: %v", s)
	}
	for _, d := range res.Regressions {
		t.Errorf("regression vs baseline: %v", d)
	}
	if res.ToolchainStale() {
		t.Errorf("baseline toolchain %q does not match current %q; run `steflint -gates -write-baseline`",
			res.BaselineToolchain, res.Toolchain)
	}
	if !res.OK() {
		t.Error("repository does not pass its own gates")
	}
}

func TestFindModuleRoot(t *testing.T) {
	dir := filepath.Join("testdata", "src", "gatesfix")
	root, modPath, err := FindModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "gatesfix" {
		t.Errorf("module path %q, want gatesfix", modPath)
	}
	abs, _ := filepath.Abs(dir)
	if root != abs {
		t.Errorf("root %q, want %q", root, abs)
	}
	if _, _, err := FindModuleRoot(string(filepath.Separator)); err == nil {
		t.Error("expected an error above the filesystem root")
	}
}

// Package gatesfix is a compiler-diagnostic fixture for the gates tests:
// Hot seeds one heap escape and one bounds check inside a loop body, so the
// harness must report both as violations; Allowed carries the same seeds
// under //gate:allow directives and must stay silent.
package gatesfix

// Hot allocates and indexes data-dependently inside its loop on purpose.
func Hot(xs []int, idx []int) []*int {
	out := make([]*int, 0, len(xs))
	for i := range xs {
		v := new(int)
		*v = xs[idx[i]]
		out = append(out, v)
	}
	return out
}

// Allowed is Hot with every in-loop diagnostic justified.
func Allowed(xs []int, idx []int) []*int {
	out := make([]*int, 0, len(xs))
	for i := range xs {
		v := new(int)   //gate:allow escape fixture: per-element box is the function's contract
		*v = xs[idx[i]] //gate:allow bounds fixture: idx entries are data-dependent
		out = append(out, v)
	}
	return out
}

//gate:allow directive that suppresses nothing, for the stale test
var Unused = 0

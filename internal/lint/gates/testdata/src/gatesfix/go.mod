module gatesfix

go 1.22

// Package shapefix seeds one violation per code-shape assertion kind. The
// gates tests point ShapeRules at these functions and require each rule to
// trip: an in-loop call, excess bounds checks, a missing FP-multiply
// unroll, and in-loop reloads of named frame slots. Allowed carries the
// same seeded call under an explicit //gate:allow shape directive and must
// stay silent; the directive on CleanStale suppresses nothing and must be
// flagged stale.
package shapefix

var total float64

// sink defeats inlining so call sites stay CALL instructions.
//
//go:noinline
func sink(v []float64) float64 { return v[0] }

// CallLoop calls a non-inlinable function inside its loop: trips the
// MaxCalls and MaxLoopCalls assertions.
func CallLoop(v []float64) {
	for i := 0; i < len(v); i++ {
		total += sink(v)
	}
}

// Reload keeps v live across an in-loop call, forcing the compiler to
// spill and re-load the slice argument from its named frame slot every
// iteration: trips MaxLoopFrameLoads.
func Reload(v []float64) {
	for i := 0; i < len(v); i++ {
		total += sink(v) + v[i&1]
	}
}

// Gather indexes with data-dependent subscripts the prove pass cannot
// eliminate: trips MaxBounds.
func Gather(dst, src []float64, idx []int) {
	for _, j := range idx {
		dst[0] += src[j]
	}
}

// AddOnly contains no floating-point multiply at all: trips MinFPMul.
func AddOnly(dst, src []float64) {
	for i := 0; i < len(dst) && i < len(src); i++ {
		dst[i] += src[i]
	}
}

// Allowed repeats CallLoop's seeded violation under an explicit shape
// waiver on the declaration; the gate must stay silent.
//
//gate:allow shape fixture: waiving the machine-code certification deliberately
func Allowed(v []float64) {
	for i := 0; i < len(v); i++ {
		total += sink(v)
	}
}

// CleanStale has no shape rule, so the directive below suppresses nothing
// and must be reported stale.
//
//gate:allow shape fixture: deliberately stale
func CleanStale(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

module shapefix

go 1.22

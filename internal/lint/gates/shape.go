package gates

// Code-shape assertions: declarative per-function claims about the machine
// code the compiler emitted, checked against the -S listing (asm.go) and
// the check_bce diagnostic stream. Where the escape/bounds gates forbid
// *diagnostics*, shape rules certify *instructions*: a kernel that the
// manifest says is an unrolled, call-free, check-free multiply-add block
// must actually compile to one, or the gate trips. This is what keeps the
// R-blocked specializations emitted by internal/kernelgen honest across
// toolchain upgrades — if a future prove pass stops eliminating the checks
// or an inliner change inserts a call, the regression is a named finding,
// not a silent slowdown.

import (
	"fmt"
	"strings"
)

// Unchecked disables one bound of a ShapeRule.
const Unchecked = -1

// ShapeRule asserts the compiled shape of one function. Max* fields bound
// a count from above (Unchecked skips the assertion); MinFPMul bounds the
// floating-point multiply count from below (0 skips it).
type ShapeRule struct {
	// Func is the qualified short name, e.g. "kernels.addScaled32".
	Func string
	// Note explains what shape is being certified and why.
	Note string
	// MaxCalls bounds real CALLs anywhere in the function (panic blocks and
	// the morestack prologue excluded).
	MaxCalls int
	// MaxLoopCalls bounds real CALLs inside loop bodies only.
	MaxLoopCalls int
	// MaxBounds bounds check_bce diagnostics attributed to the function,
	// counting suppressed (//gate:allow bounds) ones too: an entry-block
	// re-slice check is tolerable, a per-element one is not, and the total
	// is what distinguishes them.
	MaxBounds int
	// MinFPMul requires at least this many FP multiply / fused multiply-add
	// instructions — the unroll-width witness for a blocked kernel.
	MinFPMul int
	// MaxLoopFrameLoads bounds in-loop loads from named stack-frame slots
	// (re-loaded slice headers or spilled bases that should stay hoisted).
	MaxLoopFrameLoads int
}

// Shape violation kinds.
const (
	ShapeMissing    = "missing"    // no compiled function matched Rule.Func
	ShapeCalls      = "calls"      // MaxCalls exceeded
	ShapeLoopCalls  = "loop-calls" // MaxLoopCalls exceeded
	ShapeBounds     = "bounds"     // MaxBounds exceeded
	ShapeFPMul      = "fpmul"      // MinFPMul not reached
	ShapeFrameLoads = "frameloads" // MaxLoopFrameLoads exceeded
)

// ShapeViolation is one failed shape assertion.
type ShapeViolation struct {
	Rule ShapeRule
	// Kind is one of the Shape* constants.
	Kind string
	// Got and Want are the observed and asserted counts (Want is the bound
	// that was violated; 0/0 for ShapeMissing).
	Got, Want int
	// Pos is "file:line" of the function declaration when known.
	Pos string
	// Detail names offenders (call targets, frame slots) for diagnosis.
	Detail string
}

func (v ShapeViolation) String() string {
	pos := v.Pos
	if pos == "" {
		pos = v.Rule.Func
	}
	var msg string
	switch v.Kind {
	case ShapeMissing:
		msg = fmt.Sprintf("function %s has a shape rule but was not found in the compiled output", v.Rule.Func)
	case ShapeCalls:
		msg = fmt.Sprintf("%s: %d CALL(s) in steady state, shape rule allows %d", v.Rule.Func, v.Got, v.Want)
	case ShapeLoopCalls:
		msg = fmt.Sprintf("%s: %d CALL(s) inside loop bodies, shape rule allows %d", v.Rule.Func, v.Got, v.Want)
	case ShapeBounds:
		msg = fmt.Sprintf("%s: %d bounds-check(s), shape rule allows %d", v.Rule.Func, v.Got, v.Want)
	case ShapeFPMul:
		msg = fmt.Sprintf("%s: %d FP multiply/FMA instruction(s), shape rule requires >= %d (unroll width lost)", v.Rule.Func, v.Got, v.Want)
	case ShapeFrameLoads:
		msg = fmt.Sprintf("%s: %d in-loop load(s) of named frame slots, shape rule allows %d (bases not hoisted)", v.Rule.Func, v.Got, v.Want)
	default:
		msg = fmt.Sprintf("%s: shape violation %s (got %d, want %d)", v.Rule.Func, v.Kind, v.Got, v.Want)
	}
	if v.Detail != "" {
		msg += " [" + v.Detail + "]"
	}
	return fmt.Sprintf("%s: [shape] %s", pos, msg)
}

// checkShapes evaluates every manifest shape rule against the parsed
// assembly and the raw diagnostic stream. A //gate:allow directive naming
// the shape kind explicitly, placed on or directly above the function
// declaration, suppresses all shape violations for that function (the
// blanket reason-only form does not cover shape: waiving a machine-code
// certification must be deliberate).
func checkShapes(m *Manifest, funcs map[string]*AsmFunc, diags []Diag, idx *index) []ShapeViolation {
	boundsByFunc := make(map[string]int)
	for _, d := range diags {
		if d.Kind != KindBounds {
			continue
		}
		if fn := idx.enclosingFunc(d); fn != "" {
			boundsByFunc[fn]++
		}
	}

	var out []ShapeViolation
	for _, rule := range m.Shapes {
		file, line, declared := idx.funcDecl(rule.Func)
		pos := ""
		if declared {
			pos = fmt.Sprintf("%s:%d", file, line)
		}
		if declared && idx.allowShape(file, line) {
			continue
		}
		f, ok := funcs[rule.Func]
		if !ok {
			out = append(out, ShapeViolation{Rule: rule, Kind: ShapeMissing, Pos: pos})
			continue
		}
		var calls, loopCalls, fpmul, frameLoads int
		var callTargets, slotNames []string
		for _, in := range f.Insns {
			switch {
			case isRealCall(in):
				calls++
				callTargets = appendCapped(callTargets, callTarget(in))
				if f.inLoop(in.Off) {
					loopCalls++
				}
			case isFPMul(in.Op):
				fpmul++
			case isNamedFrameLoad(in) && f.inLoop(in.Off):
				frameLoads++
				slotNames = appendCapped(slotNames, firstArg(in))
			}
		}
		add := func(kind string, got, want int, detail []string) {
			out = append(out, ShapeViolation{
				Rule: rule, Kind: kind, Got: got, Want: want, Pos: pos,
				Detail: strings.Join(detail, ", "),
			})
		}
		if rule.MaxCalls != Unchecked && calls > rule.MaxCalls {
			add(ShapeCalls, calls, rule.MaxCalls, callTargets)
		}
		if rule.MaxLoopCalls != Unchecked && loopCalls > rule.MaxLoopCalls {
			add(ShapeLoopCalls, loopCalls, rule.MaxLoopCalls, callTargets)
		}
		if rule.MaxBounds != Unchecked && boundsByFunc[rule.Func] > rule.MaxBounds {
			add(ShapeBounds, boundsByFunc[rule.Func], rule.MaxBounds, nil)
		}
		if rule.MinFPMul > 0 && fpmul < rule.MinFPMul {
			add(ShapeFPMul, fpmul, rule.MinFPMul, nil)
		}
		if rule.MaxLoopFrameLoads != Unchecked && frameLoads > rule.MaxLoopFrameLoads {
			add(ShapeFrameLoads, frameLoads, rule.MaxLoopFrameLoads, slotNames)
		}
	}
	return out
}

// appendCapped collects up to four distinct detail strings.
func appendCapped(list []string, s string) []string {
	if s == "" || len(list) >= 4 {
		return list
	}
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// callTarget extracts the callee symbol from a CALL's operands.
func callTarget(in Insn) string {
	arg := strings.TrimSpace(in.Args)
	if i := strings.LastIndex(arg, ","); i >= 0 {
		arg = strings.TrimSpace(arg[i+1:])
	}
	return strings.TrimSuffix(arg, "(SB)")
}

// firstArg returns a MOV's source operand.
func firstArg(in Insn) string {
	src, _, ok := strings.Cut(in.Args, ",")
	if !ok {
		return strings.TrimSpace(in.Args)
	}
	return strings.TrimSpace(src)
}

// funcDecl locates the declaration of a qualified function name in the
// parsed source index.
func (idx *index) funcDecl(name string) (file string, line int, ok bool) {
	for f, spans := range idx.funcs {
		for _, fs := range spans {
			if fs.name == name {
				return f, fs.from, true
			}
		}
	}
	return "", 0, false
}

// allowShape reports whether a //gate:allow directive explicitly naming
// the shape kind covers the function declared at (file, line), marking it
// used.
func (idx *index) allowShape(file string, line int) bool {
	hit := false
	for _, ga := range idx.allows[file][line] {
		if ga.kinds != nil && ga.kinds[KindShape] {
			ga.used = true
			hit = true
		}
	}
	return hit
}

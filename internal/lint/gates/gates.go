// Package gates enforces compiler-diagnostic performance gates over the
// hot MTTKRP packages: it rebuilds them with the Go compiler's escape
// analysis (-m=1) and bounds-check-elimination debugging (-d=ssa/check_bce)
// enabled, parses the emitted diagnostics, and checks them against a
// declarative manifest of hot functions (manifest.go) in which heap
// escapes and bounds checks inside loop bodies are forbidden.
//
// steflint's AST analyzers (internal/lint) catch allocation *patterns*;
// this package gates on what the compiler actually emits, so a regression
// that survives inlining or defeats the prove pass is caught even when the
// source looks innocent.
//
// Individual diagnostics are suppressed with escape comments mirroring
// //lint:allow:
//
//	//gate:allow <kind>[,<kind>] <reason>
//	//gate:allow <reason>
//
// placed on the offending line or the line directly above it. <kind> is
// "escape" or "bounds"; when the first word is not a kind the directive
// allows both. Directives that suppress nothing are themselves findings,
// so stale allows rot visibly rather than silently.
//
// Diagnostics outside the manifest's hot functions (or inside them but
// outside any loop) are not forbidden, only *ratcheted*: their per-function
// counts are compared against the committed baseline
// (internal/lint/gates/baseline.txt) and may only go down. Regenerate the
// baseline after an improvement with `steflint -gates -write-baseline`.
package gates

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a compiler diagnostic.
type Kind string

const (
	// KindEscape covers "escapes to heap" and "moved to heap" diagnostics.
	KindEscape Kind = "escape"
	// KindBounds covers "Found IsInBounds" / "Found IsSliceInBounds".
	KindBounds Kind = "bounds"
	// KindShape covers code-shape assertion failures (shape.go). Unlike the
	// other kinds it is only suppressible by a directive explicitly naming
	// it on the function declaration, never by a blanket reason-only allow.
	KindShape Kind = "shape"
)

// ValidKind reports whether s names a diagnostic kind a //gate:allow
// directive can suppress. The lint stale-allow analyzer uses it to flag
// misspelled kind lists, which this package's parser would otherwise
// silently read as reason text (widening the directive to all kinds).
func ValidKind(s string) bool {
	for _, k := range AllKinds() {
		if s == string(k) {
			return true
		}
	}
	return false
}

// AllKinds lists every suppressible diagnostic kind. The stale-allow
// analyzer uses it both to render error messages and to catch near-miss
// misspellings ("shap") that the directive parser would read as reason
// text.
func AllKinds() []Kind {
	return []Kind{KindEscape, KindBounds, KindShape}
}

// Diag is one parsed compiler diagnostic.
type Diag struct {
	// File is the source path relative to the module root, slash-separated.
	File string
	Line int
	Col  int
	Kind Kind
	// Text is the compiler's message, e.g. "Found IsInBounds" or
	// "make([]float64, r) escapes to heap".
	Text string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Kind, d.Text)
}

// Violation is a forbidden diagnostic: inside a loop body of a
// manifest-listed hot function, with no //gate:allow covering it.
type Violation struct {
	Diag Diag
	// Func is the qualified hot function, e.g. "kernels.rootGeneric".
	Func string
	Rule Rule
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: in hot function %s: %s in a loop body (forbidden by the gates manifest)", posOf(v.Diag), v.Func, v.Diag.Text)
}

// Delta is a baseline comparison for one (function, kind) key.
type Delta struct {
	Key  string // "<func>\t<kind>"
	Got  int
	Base int
}

func (d Delta) String() string {
	fn, kind, _ := strings.Cut(d.Key, "\t")
	return fmt.Sprintf("%s: %d %s diagnostic(s), baseline allows %d", fn, d.Got, kind, d.Base)
}

// StaleAllow is a //gate:allow directive that suppressed no diagnostic.
type StaleAllow struct {
	File string
	Line int
}

func (s StaleAllow) String() string {
	return fmt.Sprintf("%s:%d: //gate:allow suppresses no compiler diagnostic (stale)", s.File, s.Line)
}

// Result is the outcome of one gates run.
type Result struct {
	// Violations are hard failures: in-loop diagnostics in hot functions.
	Violations []Violation
	// Regressions are baseline-tracked keys whose count grew.
	Regressions []Delta
	// Improvements are baseline-tracked keys whose count shrank; the
	// baseline should be regenerated to lock them in.
	Improvements []Delta
	// Stale lists //gate:allow directives that suppressed nothing.
	Stale []StaleAllow
	// ShapeViolations are failed code-shape assertions (shape.go).
	ShapeViolations []ShapeViolation
	// Toolchain is the observed compiler version (`go env GOVERSION`).
	Toolchain string
	// BaselineToolchain is the stamp read from the baseline file ("" when
	// the baseline carries no stamp).
	BaselineToolchain string
	// Counts holds the observed baseline-tracked counts (the content a
	// -write-baseline run would commit).
	Counts map[string]int
	// Diags is every deduplicated diagnostic the compiler emitted for the
	// gated packages, for debugging and tests.
	Diags []Diag
}

// ToolchainStale reports whether the baseline was written by a different
// Go toolchain than the one that just compiled. Diagnostic and instruction
// counts are compiler-version artifacts, so on drift the ratchet deltas are
// suppressed (they would be noise) and this single distinct finding asks
// for a reviewed `steflint -gates -write-baseline` instead.
func (r *Result) ToolchainStale() bool {
	return r.BaselineToolchain != r.Toolchain
}

// OK reports whether the gate passes: no violations, no shape violations,
// no regressions, no stale allows, and a baseline stamped by the current
// toolchain. Improvements do not fail the gate.
func (r *Result) OK() bool {
	return len(r.Violations) == 0 && len(r.Regressions) == 0 && len(r.Stale) == 0 &&
		len(r.ShapeViolations) == 0 && !r.ToolchainStale()
}

func posOf(d Diag) string { return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col) }

// Check runs the compiler over the manifest's packages in the module
// rooted at root and evaluates the diagnostics and assembly against the
// manifest and the baseline. A nil baseline means "empty counts, current
// toolchain" (no drift), which is what fixture tests want.
func Check(root string, m *Manifest, baseline *Baseline) (*Result, error) {
	out, err := runCompiler(root, m.Packages)
	if err != nil {
		return nil, err
	}
	toolchain, err := CurrentToolchain(root)
	if err != nil {
		return nil, err
	}
	if baseline == nil {
		baseline = &Baseline{Toolchain: toolchain}
	}
	diags := ParseDiagnostics(out)
	idx, err := buildIndex(root, m)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Counts:            make(map[string]int),
		Diags:             diags,
		Toolchain:         toolchain,
		BaselineToolchain: baseline.Toolchain,
	}
	// Shape rules see the raw diagnostic stream (allowed bounds checks
	// still count toward MaxBounds) and may mark shape directives used, so
	// they run before the stale sweep.
	res.ShapeViolations = checkShapes(m, ParseAsm(out), diags, idx)
	for _, d := range diags {
		if idx.allow(d) {
			continue
		}
		fn := idx.enclosingFunc(d)
		if rule, ok := m.ruleFor(fn); ok && idx.inLoop(d) {
			res.Violations = append(res.Violations, Violation{Diag: d, Func: fn, Rule: rule})
			continue
		}
		if fn == "" {
			fn = d.File // file-scope diagnostics (rare) key on the file
		}
		res.Counts[fn+"\t"+string(d.Kind)]++
	}

	res.Stale = idx.stale()
	if res.ToolchainStale() {
		// Counts from a different compiler are incomparable; skip the
		// ratchet rather than reporting version skew as regressions.
		return res, nil
	}
	for key, got := range res.Counts {
		base := baseline.Counts[key]
		switch {
		case got > base:
			res.Regressions = append(res.Regressions, Delta{Key: key, Got: got, Base: base})
		case got < base:
			res.Improvements = append(res.Improvements, Delta{Key: key, Got: got, Base: base})
		}
	}
	for key, base := range baseline.Counts {
		if _, ok := res.Counts[key]; !ok && base > 0 {
			res.Improvements = append(res.Improvements, Delta{Key: key, Got: 0, Base: base})
		}
	}
	sortDeltas(res.Regressions)
	sortDeltas(res.Improvements)
	return res, nil
}

func sortDeltas(ds []Delta) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
}

// runCompiler builds the gated packages with diagnostics and the assembly
// listing enabled and returns the compiler's stderr: one compile feeds
// both ParseDiagnostics and ParseAsm. The flags are applied per package
// (not all=) so dependency output doesn't drown the gated packages'; the
// build cache replays stderr, so repeated runs stay fast and still see
// the diagnostics.
func runCompiler(root string, pkgs []string) ([]byte, error) {
	args := []string{"build"}
	for _, p := range pkgs {
		args = append(args, "-gcflags", p+"=-m=1 -d=ssa/check_bce -S")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var buf bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("gates: go build failed: %v\n%s", err, buf.Bytes())
	}
	return buf.Bytes(), nil
}

// ParseDiagnostics extracts escape and bounds-check diagnostics from
// compiler output, deduplicating repeats (the compiler re-emits a
// function's diagnostics at every inlined copy).
func ParseDiagnostics(out []byte) []Diag {
	var diags []Diag
	seen := make(map[Diag]bool)
	for _, line := range strings.Split(string(out), "\n") {
		file, ln, col, msg, ok := splitPos(strings.TrimSpace(line))
		if !ok {
			continue
		}
		var kind Kind
		switch {
		case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
			kind = KindBounds
		case strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap:"):
			kind = KindEscape
		default:
			continue
		}
		// The compiler prints module-root files as "./x.go"; clean so the
		// path matches the index's root-relative form.
		d := Diag{File: path.Clean(filepath.ToSlash(file)), Line: ln, Col: col, Kind: kind, Text: msg}
		if !seen[d] {
			seen[d] = true
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return diags
}

// splitPos parses a "file:line:col: message" diagnostic line.
func splitPos(line string) (file string, ln, col int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return parts[0], ln, col, strings.TrimSpace(parts[3]), true
}

// FindModuleRoot walks up from dir to the nearest go.mod and returns the
// module root directory and the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, found := strings.CutPrefix(strings.TrimSpace(line), "module"); found {
					if mp := strings.Trim(strings.TrimSpace(rest), `"`); mp != "" {
						return dir, mp, nil
					}
				}
			}
			return "", "", fmt.Errorf("gates: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("gates: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// gateAllow is one parsed //gate:allow directive.
type gateAllow struct {
	file  string
	line  int           // line of the comment itself
	kinds map[Kind]bool // nil means all kinds
	used  bool
}

// index maps diagnostic positions to functions, loop bodies, and
// //gate:allow directives for every non-test file of the gated packages.
type index struct {
	funcs  map[string][]funcSpan           // file -> top-level func decls
	loops  map[string][]lineSpan           // file -> loop body spans
	allows map[string]map[int][]*gateAllow // file -> line -> directives
	all    []*gateAllow
}

type funcSpan struct {
	name     string // qualified short name, e.g. "kernels.rootGeneric"
	from, to int
}

type lineSpan struct{ from, to int }

// buildIndex parses every non-test .go file of the manifest's packages.
func buildIndex(root string, m *Manifest) (*index, error) {
	_, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	idx := &index{
		funcs:  make(map[string][]funcSpan),
		loops:  make(map[string][]lineSpan),
		allows: make(map[string]map[int][]*gateAllow),
	}
	fset := token.NewFileSet()
	for _, pkgPath := range m.Packages {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modPath), "/")
		dir := filepath.Join(root, filepath.FromSlash(rel))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("gates: reading package %s: %v", pkgPath, err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			relFile := filepath.ToSlash(filepath.Join(rel, name))
			if rel == "" || rel == "." {
				relFile = name
			}
			idx.addFile(fset, relFile, f)
		}
	}
	return idx, nil
}

func (idx *index) addFile(fset *token.FileSet, relFile string, f *ast.File) {
	pkgName := f.Name.Name
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := pkgName + "." + funcName(fd)
		idx.funcs[relFile] = append(idx.funcs[relFile], funcSpan{
			name: name,
			from: fset.Position(fd.Pos()).Line,
			to:   fset.Position(fd.End()).Line,
		})
		if fd.Body != nil {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch s := n.(type) {
				case *ast.ForStmt:
					body = s.Body
				case *ast.RangeStmt:
					body = s.Body
				default:
					return true
				}
				idx.loops[relFile] = append(idx.loops[relFile], lineSpan{
					from: fset.Position(body.Lbrace).Line,
					to:   fset.Position(body.Rbrace).Line,
				})
				return true
			})
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			kinds, ok := parseGateAllow(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Slash)
			ga := &gateAllow{file: relFile, line: pos.Line, kinds: kinds}
			idx.all = append(idx.all, ga)
			byLine := idx.allows[relFile]
			if byLine == nil {
				byLine = make(map[int][]*gateAllow)
				idx.allows[relFile] = byLine
			}
			// A directive covers its own line and, when written on its own
			// line, the line below it.
			byLine[pos.Line] = append(byLine[pos.Line], ga)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], ga)
		}
	}
}

// funcName renders a FuncDecl name, prefixing methods with the base name
// of their receiver type: "Tree.NumFibers".
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// parseGateAllow reports whether text is a //gate:allow directive and, if
// so, which kinds it allows (nil = all).
func parseGateAllow(text string) (map[Kind]bool, bool) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "gate:allow")
	if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
		return nil, false
	}
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return nil, true
	}
	kinds := make(map[Kind]bool)
	for _, k := range strings.Split(fields[0], ",") {
		if ValidKind(k) {
			kinds[Kind(k)] = true
		} else {
			return nil, true // first word is reason text, not a kind list
		}
	}
	return kinds, true
}

// allow reports whether a directive covers d, marking every matching
// directive as used.
func (idx *index) allow(d Diag) bool {
	hit := false
	for _, ga := range idx.allows[d.File][d.Line] {
		if ga.kinds == nil || ga.kinds[d.Kind] {
			ga.used = true
			hit = true
		}
	}
	return hit
}

// enclosingFunc returns the qualified name of the top-level function
// containing d, or "" for file-scope positions. Function literals are
// attributed to their enclosing declaration.
func (idx *index) enclosingFunc(d Diag) string {
	for _, fs := range idx.funcs[d.File] {
		if fs.from <= d.Line && d.Line <= fs.to {
			return fs.name
		}
	}
	return ""
}

// inLoop reports whether d lies inside a for/range body.
func (idx *index) inLoop(d Diag) bool {
	for _, sp := range idx.loops[d.File] {
		if sp.from <= d.Line && d.Line <= sp.to {
			return true
		}
	}
	return false
}

// stale returns the directives that suppressed nothing, sorted by
// position.
func (idx *index) stale() []StaleAllow {
	var out []StaleAllow
	for _, ga := range idx.all {
		if !ga.used {
			out = append(out, StaleAllow{File: ga.file, Line: ga.line})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// BaselineFile is the committed baseline path, relative to the module root.
const BaselineFile = "internal/lint/gates/baseline.txt"

// toolchainKey is the baseline directive line carrying the stamp of the
// compiler that produced the counts; "!" cannot start a function name, so
// the line is unambiguous against count entries.
const toolchainKey = "!toolchain"

// Baseline is the committed gate state: the ratcheted per-(func, kind)
// diagnostic counts plus the toolchain that produced them.
type Baseline struct {
	// Toolchain is the `go env GOVERSION` stamp ("" for a pre-stamp file).
	Toolchain string
	// Counts maps "<func>\t<kind>" to the permitted diagnostic count.
	Counts map[string]int
}

// CurrentToolchain reports the Go toolchain version that `go build` in dir
// resolves to. This deliberately asks the go command rather than using
// runtime.Version(): the binary running the gate may have been built by a
// different toolchain than the one on PATH that compiles the packages.
func CurrentToolchain(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("gates: go env GOVERSION: %v", err)
	}
	v := strings.TrimSpace(string(out))
	if v == "" {
		return "", fmt.Errorf("gates: go env GOVERSION returned nothing")
	}
	return v, nil
}

// LoadBaseline reads a baseline file: an optional "!toolchain\t<version>"
// stamp plus one "<func>\t<kind>\t<count>" entry per line, with #-comments
// and blank lines ignored.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := &Baseline{Counts: make(map[string]int)}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) == 2 && parts[0] == toolchainKey {
			base.Toolchain = parts[1]
			continue
		}
		if len(parts) != 3 {
			return nil, fmt.Errorf("gates: %s:%d: want \"func\\tkind\\tcount\", got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("gates: %s:%d: bad count %q", path, i+1, parts[2])
		}
		base.Counts[parts[0]+"\t"+parts[1]] = n
	}
	return base, nil
}

// FormatBaseline renders a baseline in the committed format, sorted for
// stable diffs, with the toolchain stamp first.
func FormatBaseline(toolchain string, counts map[string]int) []byte {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString("# Baseline for `steflint -gates`: permitted compiler-diagnostic counts\n")
	b.WriteString("# outside the manifest's forbidden zones, keyed by function and kind.\n")
	b.WriteString("# Counts may only decrease; regenerate with `steflint -gates -write-baseline`.\n")
	b.WriteString("# The !toolchain stamp records the compiler that produced the counts;\n")
	b.WriteString("# on mismatch the gate reports \"baseline stale: toolchain changed\"\n")
	b.WriteString("# instead of meaningless ratchet deltas.\n")
	fmt.Fprintf(&b, "%s\t%s\n", toolchainKey, toolchain)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s\t%d\n", k, counts[k])
	}
	return b.Bytes()
}

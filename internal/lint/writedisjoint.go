package lint

import (
	"stef/internal/lint/flow"
)

// parPkgPath is the import path of the parallel-loop helpers.
const parPkgPath = "stef/internal/par"

// flowCacheKey is the Pass.Cache slot holding the shared flow.Program.
const flowCacheKey = "flow.Program"

// WriteDisjoint is the static half of the paper's Algorithm 3 correctness
// argument: every store a thread issues from a par.Do/par.Blocks callback
// must land in its own partition of the output, in thread-private scratch,
// or in a replicated boundary row. Unlike the old par-safety analyzer it
// follows the stores interprocedurally — through the kernel entry points
// (RootMTTKRPWith, ModeMTTKRPWith), Scratch accessors, and any other
// module-local call chain up to a bounded depth — by composing per-function
// summaries over a derivation lattice (see stef/internal/lint/flow).
var WriteDisjoint = &Analyzer{
	Name:      "write-disjoint",
	Doc:       "prove stores reachable from par.Do/par.Blocks callbacks are thread-disjoint (interprocedural)",
	NeedTypes: true,
	Run:       runWriteDisjoint,
}

func runWriteDisjoint(pass *Pass) {
	prog, ok := pass.Cache[flowCacheKey].(*flow.Program)
	if !ok {
		var fps []*flow.Package
		for _, pkg := range pass.All {
			if pkg.Types == nil || pkg.Info == nil {
				continue
			}
			fps = append(fps, &flow.Package{
				Path:  pkg.Path,
				Files: pkg.Files,
				Types: pkg.Types,
				Info:  pkg.Info,
			})
		}
		prog = flow.NewProgram(pass.Fset, fps, flow.Config{ParPath: parPkgPath})
		pass.Cache[flowCacheKey] = prog
	}
	for _, e := range prog.Entries(pass.PkgPath) {
		for _, f := range prog.CheckEntry(e) {
			pass.Reportf(f.Pos, "%s", f.Message)
		}
	}
}

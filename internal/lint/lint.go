// Package lint is a stdlib-only static-analysis framework enforcing the
// repo-specific invariants STeF's performance and correctness claims rest
// on: allocation-free hot loops, race-freedom of par.Blocks/par.Do
// callbacks by thread-indexed writes (the paper's no-atomics boundary-row
// scheme), panic messages prefixed with their package name, and a
// dependency-free import graph.
//
// The framework deliberately avoids golang.org/x/tools: packages are
// loaded from source with go/parser and typechecked with go/types (see
// load.go), keeping the module's zero-dependency invariant intact — which
// the no-deps analyzer in turn enforces.
//
// Findings can be suppressed with escape comments:
//
//	//lint:allow <analyzer> [reason]
//
// placed either on the offending line, on the line directly above it, or
// in the doc comment of the enclosing function declaration (which exempts
// the whole function — used for serialisation and validation helpers that
// live in hot packages but are never on the per-iteration path).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"stef/internal/lint/flow"
)

// An Analyzer checks one invariant over a single package.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow comments.
	Name string
	// Doc is a one-line description shown by `steflint -list`.
	Doc string
	// NeedTypes reports whether Run requires Pass.Pkg/Pass.Info. Analyzers
	// with NeedTypes unset run even on packages that fail to typecheck
	// (e.g. because of a forbidden import).
	NeedTypes bool
	// Run inspects the package and reports findings via Pass.Reportf.
	Run func(*Pass)
}

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// A Pass carries one (analyzer, package) run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files, typechecked when the
	// loader succeeded.
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// typechecked. Only analyzers that work purely syntactically (e.g.
	// no-deps) should look at them.
	TestFiles []*ast.File
	// PkgPath is the package's import path (e.g. "stef/internal/sched").
	PkgPath string
	// Pkg and Info are nil when typechecking failed or was skipped.
	Pkg  *types.Package
	Info *types.Info
	// All holds every package of the Run invocation, so whole-program
	// analyzers (write-disjoint) can resolve calls across packages.
	All []*Package
	// Cache is shared by all passes of one Run invocation; whole-program
	// analyzers stash their cross-package index here to build it once.
	Cache map[string]interface{}

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgName returns the package's name, falling back to the AST when type
// information is unavailable.
func (p *Pass) PkgName() string {
	if p.Pkg != nil {
		return p.Pkg.Name()
	}
	if len(p.Files) > 0 {
		return p.Files[0].Name.Name
	}
	return ""
}

// Run executes every analyzer over every package and returns the surviving
// findings sorted by position. Analyzers that need type information are
// skipped (with a loader-level finding) on packages that failed to
// typecheck.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	staleEnabled := false
	for _, a := range analyzers {
		if a.Name == StaleAllow.Name {
			staleEnabled = true
		}
	}
	cache := make(map[string]interface{})
	var all []Finding
	for _, pkg := range pkgs {
		allow := buildAllowIndex(pkg.Fset, pkg.Files, pkg.TestFiles)
		ran := make(map[string]bool)
		var skipped []string
		for _, a := range analyzers {
			if a.Name == StaleAllow.Name {
				continue // post-pass below, after usage is known
			}
			if a.NeedTypes && pkg.TypeErr != nil {
				skipped = append(skipped, a.Name)
				continue
			}
			ran[a.Name] = true
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				TestFiles: pkg.TestFiles,
				PkgPath:   pkg.Path,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				All:       pkgs,
				Cache:     cache,
			}
			a.Run(pass)
			for _, f := range pass.findings {
				if !allow.allows(f) {
					all = append(all, f)
				}
			}
		}
		if staleEnabled {
			for _, f := range staleAllowFindings(allow, ran, pkg) {
				if !allow.allows(f) {
					all = append(all, f)
				}
			}
		}
		if len(skipped) > 0 {
			all = append(all, Finding{
				Pos:      token.Position{Filename: pkg.Dir},
				Analyzer: "typecheck",
				Message:  fmt.Sprintf("package %s failed to typecheck, skipped %s: %v", pkg.Path, strings.Join(skipped, ", "), pkg.TypeErr),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return all
}

// allowDirective is the comment prefix of an escape comment.
const allowDirective = "lint:allow"

// allowRecord is one (directive, analyzer) pair with its usage state; the
// stale-allow post-pass reports records that never suppressed a finding.
type allowRecord struct {
	pos      token.Position // position of the directive comment
	analyzer string
	used     bool
}

// gateDirective is a //gate:allow comment seen by the lint loader. The
// gates harness (internal/lint/gates) owns their semantics; lint only
// checks they are placed where that harness can ever see them.
type gateDirective struct {
	pos    token.Position
	inTest bool
	// body is the directive text after "gate:allow", trimmed; stale-allow
	// checks its kind list for typos the gates parser would silently
	// swallow as reason text.
	body string
}

// idxDirective is an //idx: annotation seen by the lint loader. The flow
// package owns its semantics; stale-allow checks placement and spelling,
// which the forgiving //idx: parser would otherwise silently swallow.
type idxDirective struct {
	pos    token.Position
	inTest bool
	// body is the directive text after "idx:", trimmed.
	body string
}

// lifeDirective is a //life: annotation seen by the lint loader. The flow
// package owns its semantics; stale-allow checks placement and spelling,
// mirroring the //idx: treatment.
type lifeDirective struct {
	pos    token.Position
	inTest bool
	// body is the directive text after "life:", trimmed.
	body string
}

// allowIndex records where escape comments permit findings: individual
// (file, line) entries and whole-function spans, each backed by a record
// whose usage is tracked for staleness.
type allowIndex struct {
	fset    *token.FileSet
	lines   map[string]map[int][]*allowRecord // file -> covered line
	spans   []allowSpan
	records []*allowRecord
	gates   []gateDirective
	idxs    []idxDirective
	lifes   []lifeDirective
}

type allowSpan struct {
	file     string
	from, to int // line range, inclusive
	rec      *allowRecord
}

// parseAllow extracts the analyzer names from one comment, or nil if the
// comment is not an allow directive. `//lint:allow a,b reason...` and
// `//lint:allow a b` both allow analyzers a and b.
func parseAllow(text string) []string {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), allowDirective)
	if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
		return nil
	}
	body = strings.TrimSpace(body)
	if body == "" {
		return nil
	}
	// Analyzer names are the comma-separated list before the first
	// whitespace; everything after is free-form reason text.
	namesPart := strings.FieldsFunc(body, func(r rune) bool { return r == ' ' || r == '\t' })[0]
	var names []string
	for _, field := range strings.Split(namesPart, ",") {
		if isAnalyzerName(field) {
			names = append(names, field)
		}
	}
	return names
}

func isAnalyzerName(s string) bool {
	for _, r := range s {
		ok := r == '-' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return s != ""
}

func buildAllowIndex(fset *token.FileSet, files, testFiles []*ast.File) *allowIndex {
	idx := &allowIndex{fset: fset, lines: make(map[string]map[int][]*allowRecord)}
	idx.addFiles(files, false)
	idx.addFiles(testFiles, true)
	return idx
}

func (idx *allowIndex) addFiles(files []*ast.File, isTest bool) {
	fset := idx.fset
	for _, f := range files {
		// FuncDecl doc comments become whole-function spans, so skip them
		// in the line pass.
		inDoc := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				inDoc[c] = true
				for _, name := range parseAllow(c.Text) {
					from := fset.Position(fd.Pos())
					to := fset.Position(fd.End())
					rec := &allowRecord{pos: fset.Position(c.Slash), analyzer: name}
					idx.records = append(idx.records, rec)
					idx.spans = append(idx.spans, allowSpan{
						file: from.Filename, from: from.Line, to: to.Line, rec: rec,
					})
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if body, ok := gateAllowBody(c.Text); ok {
					idx.gates = append(idx.gates, gateDirective{pos: fset.Position(c.Slash), inTest: isTest, body: body})
					continue
				}
				if body, ok := flow.IdxDirectiveBody(c.Text); ok {
					idx.idxs = append(idx.idxs, idxDirective{pos: fset.Position(c.Slash), inTest: isTest, body: body})
					continue
				}
				if body, ok := flow.LifeDirectiveBody(c.Text); ok {
					idx.lifes = append(idx.lifes, lifeDirective{pos: fset.Position(c.Slash), inTest: isTest, body: body})
					continue
				}
				if inDoc[c] {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, name := range parseAllow(c.Text) {
					rec := &allowRecord{pos: pos, analyzer: name}
					idx.records = append(idx.records, rec)
					idx.addLine(pos.Filename, pos.Line, rec)
					// A comment on its own line allows the line below it.
					idx.addLine(pos.Filename, pos.Line+1, rec)
				}
			}
		}
	}
}

func (idx *allowIndex) addLine(file string, line int, rec *allowRecord) {
	byLine := idx.lines[file]
	if byLine == nil {
		byLine = make(map[int][]*allowRecord)
		idx.lines[file] = byLine
	}
	byLine[line] = append(byLine[line], rec)
}

// allows reports whether any directive covers f, marking every covering
// directive as used.
func (idx *allowIndex) allows(f Finding) bool {
	hit := false
	for _, rec := range idx.lines[f.Pos.Filename][f.Pos.Line] {
		if rec.analyzer == f.Analyzer {
			rec.used = true
			hit = true
		}
	}
	for _, sp := range idx.spans {
		if sp.rec.analyzer == f.Analyzer && sp.file == f.Pos.Filename && sp.from <= f.Pos.Line && f.Pos.Line <= sp.to {
			sp.rec.used = true
			hit = true
		}
	}
	return hit
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, WriteDisjoint, IdxWidth, Lifetime, EnginePurity, CSFBacking, PanicPrefix, NoDeps, StaleAllow}
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no analyzers selected")
	}
	return out, nil
}

package lint

import (
	"go/ast"
	"go/types"
)

// csfPkgPath is the one package allowed to touch csf.Tree's storage.
const csfPkgPath = "stef/internal/csf"

// CSFBacking enforces the pluggable-storage seam around csf.Tree: the level
// arrays may live on the Go heap or inside an mmap'd arena, and nothing
// outside internal/csf may depend on which. Three shapes are flagged:
//
//   - a selector that resolves to a csf.Tree struct field outside
//     internal/csf — today the fields are unexported so this cannot even
//     compile, and the analyzer keeps it that way: if a field is ever
//     re-exported, every use outside the seam is reported rather than
//     silently re-coupling consumers to the storage layout;
//   - a csf.Tree composite literal outside internal/csf — trees must come
//     from Build, ReadFrom or OpenArena, whose invariants (sorted fibers,
//     covering pointers, attached backing) the kernels rely on;
//   - inside internal/csf itself, an exported field on the Tree struct —
//     the self-check that makes the first rule vacuous by construction.
var CSFBacking = &Analyzer{
	Name:      "csf-backing",
	Doc:       "forbid direct access to csf.Tree storage outside internal/csf; the accessor layer is the only way in",
	NeedTypes: true,
	Run:       runCSFBacking,
}

func runCSFBacking(pass *Pass) {
	if pass.PkgPath == csfPkgPath {
		checkTreeUnexported(pass)
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if isCSFTree(sel.Recv()) {
					pass.Reportf(n.Sel.Pos(),
						"direct access to csf.Tree storage field %q outside internal/csf; go through the accessor layer (FidLevel, PtrLevel, ValsLevel, Dims, Perm, ...) so heap and arena backings stay interchangeable", n.Sel.Name)
				}
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[ast.Expr(n)]
				if ok && isCSFTree(tv.Type) {
					pass.Reportf(n.Pos(),
						"csf.Tree composite literal outside internal/csf; trees must come from Build, ReadFrom or OpenArena so storage invariants and the backing lifecycle hold")
				}
			}
			return true
		})
	}
}

// isCSFTree reports whether t (possibly behind pointers) is the named type
// Tree from stef/internal/csf.
func isCSFTree(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tree" && obj.Pkg() != nil && obj.Pkg().Path() == csfPkgPath
}

// checkTreeUnexported is the in-seam self-check: the Tree struct may not
// declare exported fields, so no other package can ever reach the storage
// without going through an accessor.
func checkTreeUnexported(pass *Pass) {
	obj := pass.Pkg.Scope().Lookup("Tree")
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() {
			pass.Reportf(f.Pos(),
				"csf.Tree exports storage field %q; unexport it and extend the accessor layer instead, so the heap/arena backing seam stays closed", f.Name())
		}
	}
}

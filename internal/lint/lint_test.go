package lint

import (
	"go/ast"
	"go/parser"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// Fixture tests: each analyzer runs over a seeded-violation file under
// internal/lint/testdata/src/ and its findings are matched line-by-line
// against `// want "substring"` annotations. The same files double as
// negative tests when analyzed under package paths outside the analyzer's
// scope.

var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

// sharedLoader returns a process-wide loader rooted at the module, so the
// stdlib source importer's work is shared across fixture tests.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture parses (and optionally typechecks) one fixture file as a
// single-file package with the given synthetic import path.
func loadFixture(t *testing.T, file, pkgPath string, typecheck bool) *Package {
	t.Helper()
	l := sharedLoader(t)
	abs, err := filepath.Abs(file)
	if err != nil {
		t.Fatalf("abs %s: %v", file, err)
	}
	f, err := parser.ParseFile(l.Fset, abs, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	pkg := &Package{
		Path:  pkgPath,
		Dir:   filepath.Dir(abs),
		Fset:  l.Fset,
		Files: []*ast.File{f},
	}
	if typecheck {
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: importerFunc(l.importPkg)}
		pkg.Types, pkg.TypeErr = conf.Check(pkgPath, l.Fset, pkg.Files, pkg.Info)
		if pkg.TypeErr != nil {
			t.Fatalf("typecheck %s: %v", file, pkg.TypeErr)
		}
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// collectWants maps line number -> expected finding substring for every
// `// want "..."` annotation in the fixture.
func collectWants(t *testing.T, pkg *Package) map[int]string {
	t.Helper()
	wants := make(map[int]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Slash).Line
				wants[line] = m[1]
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture has no // want annotations")
	}
	return wants
}

// checkFixture runs the given analyzers over the fixture package and
// matches their findings against the want annotations: every finding must
// land on a wanted line and contain the wanted substring, and every wanted
// line must produce at least one finding.
func checkFixture(t *testing.T, pkg *Package, as ...*Analyzer) {
	t.Helper()
	wants := collectWants(t, pkg)
	findings := Run([]*Package{pkg}, as)
	hit := make(map[int]bool)
	for _, f := range findings {
		want, ok := wants[f.Pos.Line]
		if !ok {
			t.Errorf("unexpected finding at line %d: %s", f.Pos.Line, f.Message)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("line %d: finding %q does not contain %q", f.Pos.Line, f.Message, want)
		}
		hit[f.Pos.Line] = true
	}
	for line, want := range wants {
		if !hit[line] {
			t.Errorf("line %d: expected finding containing %q, got none", line, want)
		}
	}
}

// checkSilent asserts the analyzers produce no findings on the package.
func checkSilent(t *testing.T, pkg *Package, as ...*Analyzer) {
	t.Helper()
	for _, f := range Run([]*Package{pkg}, as) {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/hotpath/hotpath.go", "stef/internal/kernels", true)
	checkFixture(t, pkg, HotPathAlloc)
}

func TestHotPathAllocColdPackage(t *testing.T) {
	// The same violations are fine outside the hot packages.
	pkg := loadFixture(t, "testdata/src/hotpath/hotpath.go", "stef/internal/frostt", true)
	checkSilent(t, pkg, HotPathAlloc)
}

func TestWriteDisjointFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/writedisjoint/writedisjoint.go", "stef/internal/wdfix", true)
	checkFixture(t, pkg, WriteDisjoint)
}

func TestEnginePurityFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/enginepurity/enginepurity.go", "stef/internal/enginefix", true)
	checkFixture(t, pkg, EnginePurity)
}

func TestPanicPrefixFixture(t *testing.T) {
	// badDynamic reproduces the internal/reorder/reorder.go:63 class of
	// bug: panic(err.Error()) with no package prefix.
	pkg := loadFixture(t, "testdata/src/panicprefix/panicprefix.go", "stef/internal/panicfix", true)
	checkFixture(t, pkg, PanicPrefix)
}

func TestPanicPrefixOutsideInternal(t *testing.T) {
	// The discipline applies to internal/... only; commands are exempt.
	pkg := loadFixture(t, "testdata/src/panicprefix/panicprefix.go", "stef/cmd/panicfix", true)
	checkSilent(t, pkg, PanicPrefix)
}

func TestNoDepsFixture(t *testing.T) {
	// Parse-only: the forbidden imports cannot typecheck, by design, and
	// no-deps must not require type information.
	pkg := loadFixture(t, "testdata/src/nodeps/nodeps.go", "stef/internal/depfix", false)
	checkFixture(t, pkg, NoDeps)
}

func TestStaleAllowFixture(t *testing.T) {
	// Under a hot, gated package path: the used directive stays silent, the
	// stale line and doc directives and the typo are flagged, the in-loop
	// //gate:allow is left to the gates harness.
	pkg := loadFixture(t, "testdata/src/staleallow/staleallow.go", "stef/internal/kernels", true)
	checkFixture(t, pkg, HotPathAlloc, StaleAllow)
}

func TestStaleAllowGateMisplaced(t *testing.T) {
	// A //gate:allow outside the gated packages can never take effect.
	pkg := loadFixture(t, "testdata/src/staleallow/gatemisplaced.go", "stef/internal/gatefix", true)
	checkFixture(t, pkg, StaleAllow)
}

func TestStaleAllowUnselectedAnalyzerNotJudged(t *testing.T) {
	// When the named analyzer did not run, stale-allow must stay quiet
	// about its directives (it cannot know whether they would suppress
	// something). The purely static checks — unknown analyzer names,
	// misspelled gate kinds, misspelled //idx: facets — do not depend on
	// any analyzer's findings, so they are always judged.
	pkg := loadFixture(t, "testdata/src/staleallow/staleallow.go", "stef/internal/kernels", true)
	findings := Run([]*Package{pkg}, []*Analyzer{StaleAllow})
	static := []string{"unknown analyzer", "unknown gate kind", "unknown scale class", "unknown facet key", "unknown //life: word"}
	for _, f := range findings {
		ok := false
		for _, s := range static {
			if strings.Contains(f.Message, s) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("directive judged without its analyzer running: %s", f)
		}
	}
	if len(findings) != 8 {
		t.Errorf("got %d findings, want the eight static ones (1 analyzer typo, 2 gate-kind typos, 3 //idx: facet typos, 2 //life: word typos): %v", len(findings), findings)
	}
}

func TestStaleAllowIdxInTestFile(t *testing.T) {
	// An //idx: annotation in a _test.go file can never bind: idx-width
	// only analyzes typechecked non-test files.
	l := sharedLoader(t)
	const src = `package kernels

//idx: nnz
var total int64
`
	f, err := parser.ParseFile(l.Fset, "idxplacement_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{Path: "stef/internal/kernels", Fset: l.Fset, TestFiles: []*ast.File{f}}
	findings := Run([]*Package{pkg}, []*Analyzer{StaleAllow})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "can never bind") {
		t.Fatalf("got %v, want exactly one never-binds finding", findings)
	}
}

func TestIdxWidthFixture(t *testing.T) {
	// One seeded violation per finding class, each next to a guarded twin
	// that must stay silent (idx.Must32, idx.Mul, 64-bit index math).
	pkg := loadFixture(t, "testdata/src/idxwidth/idxwidth.go", "stef/internal/idxfix", true)
	checkFixture(t, pkg, IdxWidth)
}

func TestLifetimeFixture(t *testing.T) {
	// One seeded violation per lifetime finding class (L1 direct, via
	// helper, via view, over the pooled vocabulary; L2 returned, global,
	// goroutine, view; L3 leak; unbound //life:), each next to a clean
	// twin that must stay silent.
	pkg := loadFixture(t, "testdata/src/lifetime/lifetime.go", "stef/internal/lifefix", true)
	checkFixture(t, pkg, Lifetime)
}

func TestStaleAllowLifeInTestFile(t *testing.T) {
	// A //life: annotation in a _test.go file can never bind: lifetime
	// only analyzes typechecked non-test files.
	l := sharedLoader(t)
	const src = `package kernels

//life: return owned
var handle int
`
	f, err := parser.ParseFile(l.Fset, "lifeplacement_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{Path: "stef/internal/kernels", Fset: l.Fset, TestFiles: []*ast.File{f}}
	findings := Run([]*Package{pkg}, []*Analyzer{StaleAllow})
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "can never bind") {
		t.Fatalf("got %v, want exactly one never-binds finding", findings)
	}
}

func TestLifeWordTypos(t *testing.T) {
	cases := []struct {
		body string
		bad  int
	}{
		{"return owned", 0},
		{"return view", 0},
		{"return pooled", 0},
		{"w releases", 0},
		{"ws releases reason text ignored", 0},
		{"return owned // callers must Close", 0},
		{"return ownd", 1},     // misspelled kind
		{"w releses", 1},       // misspelled releases
		{"retur owned", 1},     // near-miss first word (deletion)
		{"returm owned", 1},    // near-miss first word (substitution)
		{"buffer releases", 0}, // ordinary parameter name
		{"", 0},
	}
	for _, c := range cases {
		if got := lifeWordTypos(c.body); len(got) != c.bad {
			t.Errorf("lifeWordTypos(%q) = %v, want %d findings", c.body, got, c.bad)
		}
	}
}

// TestSelfCheck runs the full analyzer suite over the real repository and
// asserts zero findings — the tree must stay lint-clean.
func TestSelfCheck(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadAll found only %d packages, expected the whole module", len(pkgs))
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow hotpath-alloc", []string{"hotpath-alloc"}},
		{"//lint:allow hotpath-alloc one-time setup", []string{"hotpath-alloc"}},
		{"//lint:allow hotpath-alloc,par-safety shared buffer", []string{"hotpath-alloc", "par-safety"}},
		{"// lint:allow panic-prefix re-panic", []string{"panic-prefix"}},
		{"// regular comment", nil},
		{"//lint:allow", nil},
		{"//lint:allowhotpath-alloc", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.text)
		if len(got) != len(c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
			}
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("hotpath-alloc,no-deps")
	if err != nil || len(as) != 2 || as[0].Name != "hotpath-alloc" || as[1].Name != "no-deps" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatalf("ByName accepted unknown analyzer")
	}
	if _, err := ByName(""); err == nil {
		t.Fatalf("ByName accepted empty selection")
	}
}

func TestGateKindTypo(t *testing.T) {
	cases := []struct {
		body string
		kind string
		bad  bool
	}{
		{"bounds tail loop", "", false},
		{"escape,bounds setup", "", false},
		{"shape certified elsewhere", "", false},
		{"escape,bonds setup", "bonds", true},
		{"shap waiving certification", "shap", true},     // deletion
		{"shaped waiving certification", "shaped", true}, // insertion
		{"shope waiving certification", "shope", true},   // substitution
		{"bounds", "", false},
		{"bonds", "bonds", true},            // one-word body is never a reason
		{"data-dependent index", "", false}, // plain reason text, far from any kind
		{"", "", false},
	}
	for _, c := range cases {
		kind, bad := gateKindTypo(c.body)
		if bad != c.bad || kind != c.kind {
			t.Errorf("gateKindTypo(%q) = %q, %v; want %q, %v", c.body, kind, bad, c.kind, c.bad)
		}
	}
}

func TestEditDistanceAtMostOne(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"shape", "shape", true},
		{"shap", "shape", true},
		{"shaped", "shape", true},
		{"shope", "shape", true},
		{"shp", "shape", false},
		{"bounds", "shape", false},
		{"", "s", true},
		{"", "sh", false},
	}
	for _, c := range cases {
		if got := editDistanceAtMostOne(c.a, c.b); got != c.want {
			t.Errorf("editDistanceAtMostOne(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded module package, parsed and (when possible)
// typechecked from source.
type Package struct {
	// Path is the import path, e.g. "stef/internal/kernels".
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the non-test files (typechecked when TypeErr is nil).
	Files []*ast.File
	// TestFiles holds _test.go files, parsed only.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// TypeErr records why typechecking failed, if it did. Syntactic
	// analyzers still run on such packages.
	TypeErr error
}

// Loader loads and typechecks packages of a single module from source,
// using only the standard library: module-local imports are resolved by
// walking the module tree, everything else through go/importer's source
// importer (which compiles the standard library from $GOROOT/src).
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory (contains go.mod)
	modPath string // module path from go.mod
	std     types.ImporterFrom
	cache   map[string]*Package
	loading map[string]bool // import-cycle guard
}

// NewLoader creates a loader for the module rooted at (or above) dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     std,
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModPath returns the module path declared in go.mod.
func (l *Loader) ModPath() string { return l.modPath }

// findModule walks up from dir to the nearest go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					mp = strings.Trim(mp, `"`)
					if mp == "" {
						break
					}
					return dir, mp, nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package in the module (directories containing .go
// files), skipping testdata, hidden directories, and vendor.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in the given directory (which must be inside
// the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.root)
	}
	path := l.modPath
	if rel != "." {
		path = l.modPath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// load parses and typechecks one package by import path, caching results.
// Typecheck failures are recorded in Package.TypeErr rather than returned:
// the caller can still run syntactic analyzers.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		if !buildTagsSatisfied(f) {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) > 0 {
		pkg.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: importerFunc(l.importPkg)}
		pkg.Types, pkg.TypeErr = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
		if pkg.TypeErr != nil {
			pkg.Types, pkg.Info = nil, nil
		}
	}
	l.cache[path] = pkg
	return pkg, nil
}

// buildTagsSatisfied evaluates a file's //go:build constraint under the
// default build configuration: the host GOOS/GOARCH and every go1.* release
// tag are true, custom tags (e.g. shadowtrace) are false. Without this, a
// pair of build-tagged variant files (shadow_on.go/shadow_off.go) would
// both reach the typechecker and collide on their shared declarations.
func buildTagsSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break // constraints must precede the package clause
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "unix" || strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// importPkg resolves an import during typechecking: module-local packages
// recurse through the loader; everything else goes to the stdlib source
// importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if p.TypeErr != nil {
			return nil, p.TypeErr
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: %s has no buildable Go files", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

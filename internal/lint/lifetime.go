package lint

import (
	"stef/internal/lint/flow"
)

// lifeCacheKey is the Pass.Cache slot holding the shared
// flow.LifeProgram.
const lifeCacheKey = "flow.LifeProgram"

// Lifetime is the resource-lifetime soundness pass: releasable resources
// (module types carrying `Close() error`, pool Acquire/Release pairs, and
// zero-copy views into backed storage) are modeled via the //life:
// annotation vocabulary plus the Close intrinsic, and the analyzer flags
// (L1) any use of a resource or derived view on a path after its release
// — including releases reached through helpers summarized
// interprocedurally — (L2) pooled-workspace values escaping the
// Acquire→Release window (returned, stored in a field or global, captured
// by a goroutine), and (L3) owned resources that leak on some return path
// (neither released on that path nor covered by a defer). This is the
// static half of the contract that makes mmap-backed arenas and pooled
// workspaces safe to cache and evict; the lifetrace build tag is the
// runtime half.
var Lifetime = &Analyzer{
	Name:      "lifetime",
	Doc:       "prove resources are never used after release, never leak on error paths, and pooled values never escape (interprocedural)",
	NeedTypes: true,
	Run:       runLifetime,
}

func runLifetime(pass *Pass) {
	prog := LifeProgramFor(pass)
	for _, f := range prog.CheckPackage(pass.PkgPath) {
		pass.Reportf(f.Pos, "%s", f.Message)
	}
}

// LifeProgramFor builds (or reuses, via Pass.Cache) the cross-package
// lifetime program for one Run invocation.
func LifeProgramFor(pass *Pass) *flow.LifeProgram {
	if prog, ok := pass.Cache[lifeCacheKey].(*flow.LifeProgram); ok {
		return prog
	}
	var fps []*flow.Package
	for _, pkg := range pass.All {
		if pkg.Types == nil || pkg.Info == nil {
			continue
		}
		fps = append(fps, &flow.Package{
			Path:  pkg.Path,
			Files: pkg.Files,
			Types: pkg.Types,
			Info:  pkg.Info,
		})
	}
	prog := flow.NewLifeProgram(pass.Fset, fps, flow.LifeConfig{})
	pass.Cache[lifeCacheKey] = prog
	return prog
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parPkgPath is the import path of the parallel-loop helpers.
const parPkgPath = "stef/internal/par"

// parWrappers names module-local functions that forward a callback to
// par.Do/par.Blocks verbatim; function literals passed to them get the
// same scrutiny.
var parWrappers = map[string]bool{
	"runThreads": true,
}

// ParSafety is the static counterpart of the paper's no-atomics
// boundary-row scheme: inside a function literal passed to par.Blocks or
// par.Do, every write to captured (outer-scope) state must be indexed by a
// value derived from the callback's own parameters (the thread id or block
// bounds). A bare assignment to a captured variable, or an indexed store
// whose index is provably thread-independent, is a data race waiting for a
// schedule.
var ParSafety = &Analyzer{
	Name:      "par-safety",
	Doc:       "flag writes to captured variables in par.Blocks/par.Do callbacks not indexed by thread-local values",
	NeedTypes: true,
	Run:       runParSafety,
}

func runParSafety(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelEntry(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkParCallback(pass, lit)
				}
			}
			return true
		})
	}
}

// isParallelEntry reports whether call invokes par.Blocks, par.Do, or a
// known local wrapper around them.
func isParallelEntry(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		pkg, ok := pass.Info.Uses[identOf(fun.X)].(*types.PkgName)
		if !ok || pkg.Imported().Path() != parPkgPath {
			return false
		}
		return fun.Sel.Name == "Blocks" || fun.Sel.Name == "Do"
	case *ast.Ident:
		return parWrappers[fun.Name]
	}
	return false
}

// checkParCallback analyzes one parallel callback literal.
func checkParCallback(pass *Pass, lit *ast.FuncLit) {
	// tainted holds variables whose value is (transitively) derived from
	// the callback's parameters — the thread id and block bounds. Indexing
	// captured state by a tainted value is the sanctioned write pattern.
	tainted := make(map[types.Object]bool)
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				tainted[obj] = true
			}
		}
	}
	// Propagate taint to fixpoint: an assignment or range clause whose
	// right side mentions a tainted variable taints the locals it defines
	// or updates. Loops in the body can feed taint backwards, hence the
	// iteration.
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				rhsTainted := false
				for _, r := range n.Rhs {
					if mentionsTainted(pass, tainted, r) {
						rhsTainted = true
						break
					}
				}
				if !rhsTainted {
					return true
				}
				for _, l := range n.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok {
						if obj := objOf(pass, id); obj != nil && isLocal(lit, obj) && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if !mentionsTainted(pass, tainted, n.X) {
					return true
				}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id != nil {
						if obj := objOf(pass, id); obj != nil && isLocal(lit, obj) && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, l := range n.Lhs {
				checkParStore(pass, lit, tainted, l)
			}
		case *ast.IncDecStmt:
			checkParStore(pass, lit, tainted, n.X)
		}
		return true
	})
}

// checkParStore validates one store target inside a parallel callback.
func checkParStore(pass *Pass, lit *ast.FuncLit, tainted map[types.Object]bool, target ast.Expr) {
	root, indices := storeRoot(target)
	if root == nil {
		return // store through a call result etc.; out of scope
	}
	obj := objOf(pass, root)
	v, ok := obj.(*types.Var)
	if !ok || isLocal(lit, v) {
		return // callback-local state is private by construction
	}
	if len(indices) == 0 {
		pass.Reportf(target.Pos(), "assignment to captured variable %q inside a parallel callback races across threads; make it a per-thread slot indexed by the callback's parameters", root.Name)
		return
	}
	for _, idx := range indices {
		if mentionsTainted(pass, tainted, idx) {
			return // e.g. counts[th] = ..., out[i] with i := lo
		}
	}
	pass.Reportf(target.Pos(), "store to captured %q is not indexed by any value derived from the callback's thread/block parameters; concurrent callbacks may write the same element", root.Name)
}

// storeRoot unwraps an assignment target to its root identifier and
// collects the index expressions along the chain (a[i].f[j] -> a, [i, j]).
func storeRoot(e ast.Expr) (*ast.Ident, []ast.Expr) {
	var indices []ast.Expr
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t, indices
		case *ast.IndexExpr:
			indices = append(indices, t.Index)
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil, nil
		}
	}
}

// mentionsTainted reports whether expr references any tainted variable.
func mentionsTainted(pass *Pass, tainted map[types.Object]bool, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// objOf resolves an identifier to its object (use or definition).
func objOf(pass *Pass, id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// isLocal reports whether obj is declared inside the function literal
// (parameters included); such variables are private to one callback
// invocation.
func isLocal(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

package flow

import (
	"go/ast"
	"go/types"
)

// assignTarget is the resolved left-hand side of an assignment.
type assignTarget struct {
	skip   bool         // blank identifier
	local  types.Object // store lands in this local variable's own cell
	elemOf types.Object // container ident whose element value to track
	reg    region       // otherwise: the referenced memory being stored to
	idx    value        // index of an indexed store
	isMap  bool
	bare   bool // whole-cell store (no index): *p = v, x.f = v, captured = v
}

// lvalue resolves a store destination. Stores that never leave a local
// variable's cell — plain locals, fields of local struct values, elements
// of local array values — update the environment; everything else is a
// store into referenced memory and is judged by store().
func (a *analysis) lvalue(lhs ast.Expr) assignTarget {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return assignTarget{skip: true}
		}
		obj := a.info.Uses[e]
		if obj == nil {
			obj = a.info.Defs[e]
		}
		if obj == nil {
			return assignTarget{skip: true}
		}
		if a.isLocal(obj) {
			return assignTarget{local: obj}
		}
		// Assignment to a captured or package-level variable.
		return assignTarget{reg: sharedRegion, bare: true}
	case *ast.IndexExpr:
		xt := a.exprType(e.X)
		if _, isArr := xt.Underlying().(*types.Array); isArr {
			// Indexing an array *value* stays within its cell.
			inner := a.lvalue(e.X)
			a.eval(e.Index)
			return inner
		}
		cv := a.eval(e.X)
		idx := a.eval(e.Index)
		_, isMap := xt.Underlying().(*types.Map)
		tgt := assignTarget{reg: a.derefRegion(cv.reg), idx: idx, isMap: isMap}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && !isMap {
			if obj := a.info.Uses[id]; obj != nil && a.isLocal(obj) && cv.reg.kind == regFresh {
				tgt.elemOf = obj
			}
		}
		return tgt
	case *ast.SelectorExpr:
		xt := a.exprType(e.X)
		if _, isPtr := xt.Underlying().(*types.Pointer); !isPtr {
			if _, isStruct := xt.Underlying().(*types.Struct); isStruct {
				// Field of a struct value: the store stays within the
				// base's cell (local copy) or its region (shared cell).
				inner := a.lvalue(e.X)
				inner.bare, inner.isMap, inner.idx = true, false, value{}
				return inner
			}
			// Qualified package-level variable (pkg.Var = x).
			if obj := a.info.Uses[e.Sel]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && !a.isLocal(obj) {
					return assignTarget{reg: sharedRegion, bare: true}
				}
			}
		}
		bv := a.eval(e.X)
		return assignTarget{reg: a.derefRegion(bv.reg), bare: true}
	case *ast.StarExpr:
		pv := a.eval(e.X)
		return assignTarget{reg: a.derefRegion(pv.reg), bare: true}
	}
	// Anything else (index into call result, etc.): evaluate for effects
	// and treat the target as unknown — the analysis cannot tie it to
	// shared memory.
	a.eval(lhs)
	return assignTarget{reg: region{kind: regUnknown}}
}

// derefRegion maps a container/pointer value's region to the region of the
// memory a store through it hits. regNone means the value carried no
// region information at all (e.g. an opaque scalar path) — err toward
// unknown rather than shared.
func (a *analysis) derefRegion(r region) region {
	if r.kind == regNone {
		return region{kind: regUnknown}
	}
	return r
}

func (a *analysis) exprType(e ast.Expr) types.Type {
	if tv, ok := a.info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// eval computes the abstract value of an expression.
func (a *analysis) eval(e ast.Expr) value {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return a.eval(e.X)
	case *ast.Ident:
		return a.evalIdent(e)
	case *ast.BasicLit:
		return value{}
	case *ast.SelectorExpr:
		return a.evalSelector(e)
	case *ast.IndexExpr:
		return a.evalIndex(e)
	case *ast.SliceExpr:
		return a.evalSlice(e)
	case *ast.StarExpr:
		pv := a.eval(e.X)
		return value{
			deriv: pv.reg.offDeriv, deps: pv.reg.offDeps,
			reg: a.elemRegion(pv.reg, a.exprType(e)),
		}
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return value{reg: a.addrRegion(e.X)}
		}
		v := a.eval(e.X)
		return value{deriv: v.scalarDeriv(), deps: v.scalarDeps()}
	case *ast.BinaryExpr:
		l, r := a.eval(e.X), a.eval(e.Y)
		return value{
			deriv: l.scalarDeriv() | r.scalarDeriv(),
			deps:  l.scalarDeps() | r.scalarDeps(),
		}
	case *ast.CallExpr:
		vs := a.evalCall(e, 1)
		if len(vs) > 0 {
			return vs[0]
		}
		return value{}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				a.eval(kv.Value)
			} else {
				a.eval(el)
			}
		}
		return value{reg: region{kind: regFresh}}
	case *ast.FuncLit:
		// A literal not bound to a variable or callback position (e.g.
		// passed to an opaque call): analyze its body with unknown
		// parameters so stores inside are still judged.
		a.walkLit(e)
		return value{}
	case *ast.TypeAssertExpr:
		v := a.eval(e.X)
		return value{reg: v.reg}
	case *ast.IndexListExpr:
		return a.eval(e.X)
	}
	return value{}
}

func (a *analysis) evalIdent(e *ast.Ident) value {
	if e.Name == "_" {
		return value{}
	}
	obj := a.info.Uses[e]
	if obj == nil {
		obj = a.info.Defs[e]
	}
	switch obj := obj.(type) {
	case *types.Var:
		if v, ok := a.env[obj]; ok {
			return v
		}
		if a.isLocal(obj) {
			// Declared inside but not yet assigned on this pass.
			return value{}
		}
		if pointerLike(obj.Type()) {
			return value{reg: sharedRegion}
		}
		return value{} // captured scalar: visible to all threads, underived
	case *types.Const, *types.Nil:
		return value{}
	}
	return value{}
}

func (a *analysis) evalSelector(e *ast.SelectorExpr) value {
	// Qualified identifier (pkg.Var) or method value.
	if obj := a.info.Uses[e.Sel]; obj != nil {
		if _, isFunc := obj.(*types.Func); isFunc {
			return value{}
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
				if pointerLike(obj.Type()) {
					return value{reg: sharedRegion}
				}
				return value{}
			}
		}
	}
	base := a.eval(e.X)
	// Fields live at a fixed offset inside the base's memory: they keep
	// its region (including any disjoint-window derivation). Scalar
	// fields of a thread-disjoint cell are thread-derived data.
	fieldReg := a.elemRegion(base.reg, a.exprType(e))
	return value{deriv: base.reg.offDeriv, deps: base.reg.offDeps, reg: fieldReg}
}

// elemRegion is the region of a field/element/deref of memory with region
// r, for a result of type t.
func (a *analysis) elemRegion(r region, t types.Type) region {
	if !pointerLike(t) {
		return region{}
	}
	switch r.kind {
	case regShared:
		return sharedRegion
	case regView:
		return r
	case regFresh:
		// Elements of untracked fresh containers: contents unknown.
		return region{kind: regUnknown}
	case regUnknown:
		return region{kind: regUnknown}
	}
	return region{}
}

func (a *analysis) evalIndex(e *ast.IndexExpr) value {
	// Generic instantiation (F[T]) parses as IndexExpr too.
	if tv, ok := a.info.Types[e.Index]; ok && tv.IsType() {
		return a.eval(e.X)
	}
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
		if obj := a.info.Uses[id]; obj != nil && a.isLocal(obj) {
			if ev, tracked := a.elem[obj]; tracked {
				if cv, ok := a.env[obj]; ok && cv.reg.kind == regFresh {
					a.eval(e.Index)
					return ev
				}
			}
		}
	}
	cv := a.eval(e.X)
	idx := a.eval(e.Index)
	return a.loadElem(cv, idx)
}

// loadElem is the value of container[idx]. Loading through a disjoint
// window yields thread-private data; loading shared[th] with a derived
// index yields a partition-derived scalar — that is exactly how the
// kernels obtain sched.Partition bounds.
func (a *analysis) loadElem(cv value, idx value) value {
	d := cv.reg.offDeriv
	deps := cv.reg.offDeps
	if idx.scalarDeriv().derived() {
		d |= DerivPartition
	}
	deps |= idx.scalarDeps()
	out := value{deriv: d, deps: deps}
	switch cv.reg.kind {
	case regShared, regView:
		// An element picked out of shared memory by a derived index is
		// itself a disjoint window (distinct threads pick distinct
		// elements).
		out.reg = region{
			kind: regView, base: cv.reg.base,
			global:   cv.reg.global || cv.reg.kind == regShared,
			offDeriv: d, offDeps: deps,
		}
	case regFresh, regUnknown:
		// Contents of untracked fresh containers are unknown.
		out.reg = region{kind: regUnknown}
	}
	return out
}

func (a *analysis) evalSlice(e *ast.SliceExpr) value {
	cv := a.eval(e.X)
	evalBound := func(b ast.Expr) (value, bool) {
		if b == nil {
			return value{}, false
		}
		return a.eval(b), true
	}
	lo, hasLo := evalBound(e.Low)
	hi, hasHi := evalBound(e.High)
	if e.Max != nil {
		a.eval(e.Max)
	}
	out := cv
	out.deriv, out.deps = 0, 0
	if out.reg.kind == regShared {
		out.reg = region{kind: regView, global: true}
	}
	if out.reg.kind != regView {
		return out
	}
	// data[lo:hi] with both bounds thread-derived is a disjoint window
	// (the par.Blocks pattern). A reslice with underived or missing
	// bounds keeps whatever derivation the base window already had.
	loOK := hasLo && (lo.scalarDeriv().derived() || lo.scalarDeps() != 0)
	hiOK := hasHi && (hi.scalarDeriv().derived() || hi.scalarDeps() != 0)
	if loOK && hiOK {
		out.reg.offDeriv |= lo.scalarDeriv() | hi.scalarDeriv()
		out.reg.offDeps |= lo.scalarDeps() | hi.scalarDeps()
	}
	return out
}

// addrRegion is the region of &x: the cell x occupies.
func (a *analysis) addrRegion(x ast.Expr) region {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := a.info.Uses[e]
		if obj == nil {
			obj = a.info.Defs[e]
		}
		if a.isLocal(obj) {
			return region{kind: regFresh}
		}
		return sharedRegion
	case *ast.CompositeLit:
		a.eval(e)
		return region{kind: regFresh}
	case *ast.IndexExpr:
		cv := a.eval(e.X)
		idx := a.eval(e.Index)
		r := a.derefRegion(cv.reg)
		if r.kind == regShared || r.kind == regView {
			return region{
				kind: regView, base: cv.reg.base,
				global:   cv.reg.global || cv.reg.kind == regShared,
				offDeriv: cv.reg.offDeriv | idx.scalarDeriv(),
				offDeps:  cv.reg.offDeps | idx.scalarDeps(),
			}
		}
		return r
	case *ast.SelectorExpr:
		tgt := a.lvalue(e)
		if tgt.local != nil {
			return region{kind: regFresh}
		}
		return a.derefRegion(tgt.reg)
	case *ast.StarExpr:
		return a.eval(e.X).reg
	}
	return a.eval(x).reg
}

func (a *analysis) evalMulti(e ast.Expr, n int) []value {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		vs := a.evalCall(call, n)
		for len(vs) < n {
			vs = append(vs, value{})
		}
		return vs
	}
	out := make([]value, n)
	out[0] = a.eval(e)
	return out
}

// widthanalysis.go holds the per-function abstract interpreter of the
// idx-width analysis (see width.go): a statement walker run to fixpoint
// over an environment of width facets, then once more with checking set
// to report the violation classes.
package flow

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
)

// widthAnalysis interprets one function. summaryMode computes result
// facets for callers (no findings); entry mode checks the body.
type widthAnalysis struct {
	prog  *WidthProgram
	pkg   *Package
	info  *types.Info
	owner ast.Node

	summaryMode bool
	checking    bool
	depth       int
	iter        int

	env map[types.Object]wfacet
	// condCap clamps loop counters to their loop-condition bound, so
	// `for i := 0; i < n; i++` keeps i at n's class instead of climbing
	// one bound per fixpoint pass.
	condCap map[types.Object]wb
	walked  map[*ast.FuncLit]bool

	changed   bool
	sawOpaque bool
	retVals   []wfacet
	findings  []Finding
	observe   func(token.Pos, string, wfacet)
}

func (a *widthAnalysis) init() {
	a.env = make(map[types.Object]wfacet)
	a.condCap = make(map[types.Object]wb)
}

// widenAfter is the fixpoint iteration past which still-changing facet
// components are widened straight to unknown: unbounded counters (i++
// with no usable loop condition) stabilize at "no information" instead
// of climbing one bound per pass into a false finding.
// widthFixpointIters then only needs headroom for the widened values to
// propagate, keeping the per-function cost bounded — idx-width walks
// every function of the module, not just the parallel entries.
const (
	widenAfter         = 8
	widthFixpointIters = 16
)

func (a *widthAnalysis) setEnv(obj types.Object, f wfacet) {
	old, ok := a.env[obj]
	nf := old.join(f)
	// A *stored* beyond-int64 bound is a fixpoint-climb artifact: counters
	// saturate at boundOver and then stop changing, which would dodge the
	// iteration-count widening below. Genuine beyond-int64 results are
	// reported at the expression that produces them, so the environment
	// only ever needs "unknown" here.
	if nf.val.known() && nf.val.bits() >= boundOver {
		nf.val = wbTop
	}
	if nf.elem.known() && nf.elem.bits() >= boundOver {
		nf.elem = wbTop
	}
	if a.iter >= widenAfter {
		if nf.val != old.val {
			nf.val = wbTop
		}
		if nf.elem != old.elem {
			nf.elem = wbTop
		}
		for i := range nf.lens {
			if nf.lens[i] != old.lens[i] {
				nf.lens[i] = wbTop
			}
		}
	}
	if !ok || nf != old {
		a.env[obj] = nf
		a.changed = true
	}
}

func (a *widthAnalysis) fixpoint(body *ast.BlockStmt) {
	for a.iter = 0; a.iter < widthFixpointIters; a.iter++ {
		a.changed = false
		a.walked = make(map[*ast.FuncLit]bool)
		a.block(body)
		if !a.changed {
			break
		}
	}
	a.walked = make(map[*ast.FuncLit]bool)
}

func (a *widthAnalysis) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		a.stmt(s)
	}
}

func (a *widthAnalysis) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		a.assignStmt(s)
	case *ast.IncDecStmt:
		a.incDec(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := a.info.Defs[name]
				var f wfacet
				if i < len(vs.Values) {
					f = a.weval(vs.Values[i])
				} else {
					f = wtop()
					f.val = wbound(0) // zero value
				}
				if anno, ok := a.prog.annos[obj]; ok {
					f = f.join(anno)
				}
				if obj != nil && name.Name != "_" {
					a.setEnv(obj, f)
				}
			}
		}
	case *ast.ExprStmt:
		a.weval(s.X)
	case *ast.SendStmt:
		a.weval(s.Chan)
		a.weval(s.Value)
	case *ast.GoStmt:
		a.weval(s.Call)
	case *ast.DeferStmt:
		a.weval(s.Call)
	case *ast.ReturnStmt:
		vals := make([]wfacet, len(s.Results))
		for i, r := range s.Results {
			vals[i] = a.weval(r)
		}
		if len(s.Results) == 1 {
			if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
				if sig, ok := a.exprTypeOf(call.Fun).(*types.Signature); ok && sig.Results().Len() > 1 {
					vals = a.wevalMulti(call, sig.Results().Len())
				}
			}
		}
		a.joinRets(vals)
	case *ast.BlockStmt:
		a.block(s)
	case *ast.IfStmt:
		a.wstmtOpt(s.Init)
		a.weval(s.Cond)
		a.block(s.Body)
		a.wstmtOpt(s.Else)
	case *ast.ForStmt:
		a.wstmtOpt(s.Init)
		if s.Cond != nil {
			a.seedCond(s.Cond)
			a.weval(s.Cond)
		}
		a.block(s.Body)
		a.wstmtOpt(s.Post)
	case *ast.RangeStmt:
		a.rangeStmt(s)
	case *ast.SwitchStmt:
		a.wstmtOpt(s.Init)
		if s.Tag != nil {
			a.weval(s.Tag)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				a.weval(e)
			}
			for _, st := range cc.Body {
				a.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		a.wstmtOpt(s.Init)
		switch as := s.Assign.(type) {
		case *ast.ExprStmt:
			a.weval(as.X)
		case *ast.AssignStmt:
			if len(as.Rhs) == 1 {
				a.weval(as.Rhs[0])
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if obj := a.info.Implicits[cc]; obj != nil {
				a.setEnv(obj, wtop())
			}
			for _, st := range cc.Body {
				a.stmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			a.wstmtOpt(cc.Comm)
			for _, st := range cc.Body {
				a.stmt(st)
			}
		}
	case *ast.LabeledStmt:
		a.stmt(s.Stmt)
	}
}

func (a *widthAnalysis) wstmtOpt(s ast.Stmt) {
	if s != nil {
		a.stmt(s)
	}
}

// seedCond reads a three-clause (or while-style) loop condition
// `i < N` / `i <= N` (either operand order) and clamps the counter to
// the bound's class: the loop invariant i <= N dominates every i++.
func (a *widthAnalysis) seedCond(cond ast.Expr) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	var idExpr, bndExpr ast.Expr
	switch be.Op {
	case token.LSS, token.LEQ:
		idExpr, bndExpr = be.X, be.Y
	case token.GTR, token.GEQ:
		idExpr, bndExpr = be.Y, be.X
	default:
		return
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return
	}
	obj := a.info.Uses[id]
	if obj == nil {
		return
	}
	nb := a.weval(bndExpr).val
	if !nb.known() {
		return
	}
	a.condCap[obj] = a.condCap[obj].join(nb)
	a.setEnv(obj, wfacet{val: nb})
}

func (a *widthAnalysis) rangeStmt(s *ast.RangeStmt) {
	cf := a.weval(s.X)
	xt := a.exprTypeOf(s.X)
	var keyF, valF wfacet
	if xt != nil {
		if basic, ok := xt.Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
			// range over int: the key is bounded by the operand.
			keyF = wfacet{val: cf.val}
		} else {
			keyF = wfacet{val: cf.lens[0].use()}
			valF = cf.elemStep(isIntType(rangeElemType(xt)))
		}
	}
	bind := func(e ast.Expr, f wfacet) {
		if e == nil {
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			var obj types.Object
			if s.Tok == token.DEFINE {
				obj = a.info.Defs[id]
			} else {
				obj = a.info.Uses[id]
			}
			if obj != nil && id.Name != "_" {
				a.setEnv(obj, f)
			}
			return
		}
		a.weval(e)
	}
	bind(s.Key, keyF)
	bind(s.Value, valF)
	a.block(s.Body)
}

// rangeElemType is the element type yielded by ranging over t, or nil.
func rangeElemType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			return arr.Elem()
		}
	case *types.Map:
		return u.Elem()
	case *types.Basic: // string
		return types.Typ[types.Byte]
	}
	return nil
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

func (a *widthAnalysis) incDec(s *ast.IncDecStmt) {
	id, ok := ast.Unparen(s.X).(*ast.Ident)
	if !ok {
		a.weval(s.X)
		return
	}
	obj := a.info.Uses[id]
	if obj == nil {
		return
	}
	cur := a.env[obj]
	nv := addW(cur.val, wbound(1))
	if cc, ok := a.condCap[obj]; ok {
		nv = cc
	}
	a.setEnv(obj, wfacet{val: nv})
}

func (a *widthAnalysis) assignStmt(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// Compound assignment x op= y: update the counter like the
		// binary op would, clamped by a loop condition when one exists.
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		rf := a.weval(s.Rhs[0])
		id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
		if !ok {
			a.weval(s.Lhs[0])
			return
		}
		obj := a.info.Uses[id]
		if obj == nil {
			return
		}
		cur := a.env[obj]
		var nv wb
		switch s.Tok {
		case token.ADD_ASSIGN:
			nv = addW(cur.val, rf.val)
		case token.SUB_ASSIGN:
			nv = maxW(cur.val, rf.val)
		case token.MUL_ASSIGN:
			nv = mulW(cur.val, rf.val)
		case token.REM_ASSIGN, token.AND_ASSIGN:
			nv = minW(cur.val, rf.val)
		case token.QUO_ASSIGN, token.SHR_ASSIGN:
			nv = cur.val
		default:
			nv = wbTop
		}
		if cc, ok := a.condCap[obj]; ok {
			nv = cc
		}
		a.setEnv(obj, wfacet{val: nv})
		return
	}
	var vals []wfacet
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		vals = a.wevalMultiExpr(s.Rhs[0], len(s.Lhs))
	} else {
		vals = make([]wfacet, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = a.weval(r)
		}
	}
	for i, lhs := range s.Lhs {
		var f wfacet
		if i < len(vals) {
			f = vals[i]
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			a.weval(lhs) // index/field store: walk for checks
			continue
		}
		var obj types.Object
		if s.Tok == token.DEFINE {
			obj = a.info.Defs[id]
			if obj == nil { // x, err := with pre-declared x
				obj = a.info.Uses[id]
			}
		} else {
			obj = a.info.Uses[id]
		}
		if obj == nil || id.Name == "_" {
			continue
		}
		if anno, ok := a.prog.annos[obj]; ok {
			f = f.join(anno)
		}
		a.setEnv(obj, f)
		if a.checking && a.observe != nil {
			a.observe(id.Pos(), "assign "+id.Name, a.env[obj])
		}
	}
}

// wevalMultiExpr evaluates a 1-to-n assignment RHS.
func (a *widthAnalysis) wevalMultiExpr(e ast.Expr, want int) []wfacet {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return a.wevalMulti(call, want)
	}
	// v, ok from map/type assertion/channel.
	a.weval(e)
	out := make([]wfacet, want)
	for i := range out {
		out[i] = wtop()
	}
	if want >= 1 {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			out[0] = a.weval(x)
		}
	}
	return out
}

func (a *widthAnalysis) joinRets(vals []wfacet) {
	for len(a.retVals) < len(vals) {
		a.retVals = append(a.retVals, wfacet{})
	}
	for i, v := range vals {
		v.deps = v.deps & summaryDepsMask(a.summaryMode)
		nv := a.retVals[i].join(v)
		if nv != a.retVals[i] {
			a.retVals[i] = nv
			a.changed = true
		}
	}
}

// summaryDepsMask drops parameter dependencies outside summary mode,
// where they have no meaning.
func summaryDepsMask(summaryMode bool) paramMask {
	if summaryMode {
		return ^paramMask(0)
	}
	return 0
}

func (a *widthAnalysis) walkLit(lit *ast.FuncLit) {
	if a.walked[lit] {
		return
	}
	a.walked[lit] = true
	a.block(lit.Body)
}

func (a *widthAnalysis) exprTypeOf(e ast.Expr) types.Type {
	if tv, ok := a.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// intCapacity returns the width capacity of an integer type: the largest
// b such that every value of the type satisfies |v| < 2^b... for signed
// types the magnitude of MinIntN slightly exceeds 2^(N-1); the analysis
// models non-negative counts, so N-1 is the honest capacity for indexes.
func intCapacity(t types.Type) (int, bool) {
	if t == nil {
		return 0, false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return 0, false
	}
	switch basic.Kind() {
	case types.Int8:
		return 7, true
	case types.Int16:
		return 15, true
	case types.Int32:
		return 31, true
	case types.Int64, types.Int:
		return 63, true
	case types.Uint8:
		return 8, true
	case types.Uint16:
		return 16, true
	case types.Uint32:
		return 32, true
	case types.Uint64, types.Uint, types.Uintptr:
		return 64, true
	}
	return 0, false // untyped: constant-folded, compiler-checked
}

func constFacet(v constant.Value) wfacet {
	if v.Kind() != constant.Int {
		return wtop()
	}
	if i, ok := constant.Int64Val(v); ok {
		u := uint64(i)
		if i < 0 {
			u = uint64(-i)
		}
		return wfacet{val: wbound(bits.Len64(u))}
	}
	if u, ok := constant.Uint64Val(v); ok {
		return wfacet{val: wbound(bits.Len64(u))}
	}
	return wfacet{val: wbound(boundOver)}
}

func (a *widthAnalysis) reportf(pos token.Pos, format string, args ...interface{}) {
	if !a.checking {
		return
	}
	a.findings = append(a.findings, Finding{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// width.go implements the idx-width half of the flow package: an
// interprocedural scale-class analysis over integer magnitudes. Every
// integer expression is assigned a *width bound* — a promise |v| < 2^b —
// seeded from //idx: annotations on exported boundaries (CSF level
// arrays, serialization counts, partition offsets), from len() of
// annotated containers, and from loop bounds, then propagated through
// arithmetic, conversions and module-local calls via memoized
// per-function summaries. Three violation classes are reported:
//
//	narrowing   T(x) where the declared width of T cannot hold x's bound
//	under-width a sum/product/shift whose result bound exceeds the width
//	            of the type it is evaluated at (including results that
//	            cannot fit int64 at all)
//	unguarded   arithmetic at ≤32-bit width reaching slice-index or
//	            slice-bound position without a provable bound
//
// Like the write-disjoint analysis, unknown operands err toward silence:
// a bound only ever originates from an annotation, a loop bound, or a
// machine invariant (a value loaded from an int32 cannot exceed 2^31),
// so every finding traces back to a declared fact.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// wb is a width bound. The zero value is bottom (join identity, "no
// contribution yet"); wbTop is "no information" and absorbs every join;
// everything else encodes the bound b as b+1, with b = boundOver meaning
// "provably does not fit int64".
type wb uint8

const (
	wbTop     wb = 0xFF
	boundOver    = 64
)

// wbound constructs the bound |v| < 2^b, saturating at boundOver.
func wbound(b int) wb {
	if b > boundOver {
		b = boundOver
	}
	if b < 0 {
		b = 0
	}
	return wb(b + 1)
}

func (w wb) known() bool { return w != 0 && w != wbTop }

// bits returns the bound's exponent; only meaningful when known.
func (w wb) bits() int { return int(w) - 1 }

func (w wb) join(o wb) wb {
	if w == 0 {
		return o
	}
	if o == 0 {
		return w
	}
	if w == wbTop || o == wbTop {
		return wbTop
	}
	if w > o {
		return w
	}
	return o
}

// use resolves a bound at a consumption point: bottom means nothing was
// ever learned, which the consumer must treat as unknown.
func (w wb) use() wb {
	if w == 0 {
		return wbTop
	}
	return w
}

// addW bounds x+y: 2^a-1 + 2^b-1 < 2^(max(a,b)+1).
func addW(x, y wb) wb {
	if !x.known() || !y.known() {
		return wbTop
	}
	m := x.bits()
	if y.bits() > m {
		m = y.bits()
	}
	return wbound(m + 1)
}

// maxW bounds x-y (and min/max): the magnitude never exceeds the larger
// operand's bound.
func maxW(x, y wb) wb {
	if !x.known() || !y.known() {
		return wbTop
	}
	if x > y {
		return x
	}
	return y
}

// minW bounds x&y and x%y: for the non-negative counts this analysis
// models, the result is bounded by either operand, so one known operand
// suffices.
func minW(x, y wb) wb {
	switch {
	case !x.known():
		return y
	case !y.known():
		return x
	case x < y:
		return x
	default:
		return y
	}
}

// mulW bounds x*y: 2^a * 2^b = 2^(a+b).
func mulW(x, y wb) wb {
	if !x.known() || !y.known() {
		return wbTop
	}
	return wbound(x.bits() + y.bits())
}

func shlW(x wb, k int) wb {
	if !x.known() {
		return wbTop
	}
	return wbound(x.bits() + k)
}

func shrW(x wb, k int) wb {
	if !x.known() {
		return wbTop
	}
	return wbound(x.bits() - k)
}

// dimClassBound is the dim/fid class bound: values at or under it are
// int32-guaranteed by construction (tensor.New rejects larger dims), so
// narrowing them further is a deliberate pack, not an overflow hazard.
const dimClassBound = 31

// The named scale classes of the //idx: annotation vocabulary, each a
// width bound calibrated to the repo's construction-time invariants.
var idxClasses = []struct {
	name  string
	bound int
	doc   string
}{
	{"rank", 6, "factor-matrix rank, R <= 64"},
	{"dim", dimClassBound, "mode sizes and row indexes: int32-bounded by construction (tensor.New rejects larger dims)"},
	{"fid", dimClassBound, "fiber-id payloads; alias of dim"},
	{"nnz", 40, "nonzero and fiber counts, bounded by the csf serialization maxCount = 1<<40"},
	{"bytes", 46, "byte footprints: nnz-scale counts times element size"},
}

// classWidth resolves a class name to its bound.
func classWidth(name string) (wb, bool) {
	for _, c := range idxClasses {
		if c.name == name {
			return wbound(c.bound), true
		}
	}
	return 0, false
}

// ValidIdxClass reports whether name is a declared //idx: scale class.
func ValidIdxClass(name string) bool {
	_, ok := classWidth(name)
	return ok
}

// IdxClassNames lists the valid //idx: scale classes in lattice order.
func IdxClassNames() []string {
	out := make([]string, 0, len(idxClasses))
	for _, c := range idxClasses {
		out = append(out, c.name)
	}
	return out
}

// IdxFacetKeys lists the valid //idx: facet keys.
func IdxFacetKeys() []string { return []string{"val", "len", "elem"} }

// widthLabel renders a bound for diagnostics, naming the smallest scale
// class that covers it.
func widthLabel(w wb) string {
	if !w.known() {
		return "unknown-width"
	}
	b := w.bits()
	if b >= boundOver {
		return "beyond-int64 (bound >= 2^64)"
	}
	for _, c := range idxClasses {
		if c.name == "fid" {
			continue
		}
		if b <= c.bound {
			return fmt.Sprintf("%s-scale (bound 2^%d)", c.name, b)
		}
	}
	return fmt.Sprintf("bound 2^%d", b)
}

// maxLenDepth caps how many container nesting levels a facet tracks;
// deeper levels are simply unknown.
const maxLenDepth = 4

// wfacet is the abstract value of the width analysis: the bound of the
// value itself plus, for containers, per-nesting-level len() bounds and
// the bound of the innermost integer element. deps names parameters of
// the summarized function whose bound joins into val at the call site.
// The zero facet is bottom everywhere (join identity).
type wfacet struct {
	val  wb
	deps paramMask
	lens [maxLenDepth]wb
	elem wb
}

// wtop is the no-information facet used for unseeded locals and opaque
// results.
func wtop() wfacet {
	return wfacet{val: wbTop, lens: [maxLenDepth]wb{wbTop, wbTop, wbTop, wbTop}, elem: wbTop}
}

func (f wfacet) join(o wfacet) wfacet {
	out := wfacet{val: f.val.join(o.val), deps: f.deps | o.deps, elem: f.elem.join(o.elem)}
	for i := range out.lens {
		out.lens[i] = f.lens[i].join(o.lens[i])
	}
	return out
}

// elemStep is the facet of one indexing (or range-value) step into a
// container: len bounds shift up one level, and for integer elements the
// element bound becomes the value bound.
func (f wfacet) elemStep(elemIsInt bool) wfacet {
	var out wfacet
	for i := 0; i+1 < maxLenDepth; i++ {
		out.lens[i] = f.lens[i+1]
	}
	out.lens[maxLenDepth-1] = wbTop
	out.elem = f.elem
	if elemIsInt {
		out.val = f.elem.use()
	} else {
		out.val = wbTop
	}
	return out
}

// IdxDirectiveBody reports whether a comment is an //idx: directive and
// returns its trimmed body.
func IdxDirectiveBody(text string) (string, bool) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "idx:")
	if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// parseIdxFacets parses the facet tokens of a directive body:
//
//	<class>            value bound (shorthand for val=<class>)
//	val=<class>        value bound
//	elem=<class>       innermost integer element bound of a container
//	len=<c1>[,<c2>..]  per-nesting-level len() bounds, outermost first
//
// A token starting with "//" ends the facet list; the rest of the line is
// free-form trailing comment. Unknown classes and keys are skipped here —
// stale-allow owns spelling diagnostics — so a misspelled facet degrades
// to "no information", never to a wrong bound.
func parseIdxFacets(toks []string) (wfacet, bool) {
	var f wfacet
	any := false
	for _, t := range toks {
		if strings.HasPrefix(t, "//") {
			break
		}
		k, v, hasEq := strings.Cut(t, "=")
		if !hasEq {
			k, v = "val", t
		}
		switch k {
		case "val":
			if b, ok := classWidth(v); ok {
				f.val = f.val.join(b)
				any = true
			}
		case "elem":
			if b, ok := classWidth(v); ok {
				f.elem = f.elem.join(b)
				any = true
			}
		case "len":
			for i, p := range strings.Split(v, ",") {
				if i >= maxLenDepth {
					break
				}
				if b, ok := classWidth(p); ok {
					f.lens[i] = f.lens[i].join(b)
					any = true
				}
			}
		}
	}
	return f, any
}

// WidthConfig parameterizes a WidthProgram.
type WidthConfig struct {
	// GuardPath is the import path of the checked-narrowing helpers
	// (idx.Must32 etc.) whose results carry certified bounds. Empty
	// selects the module's own idx package.
	GuardPath string
	// MaxCallDepth bounds interprocedural summary chains; 0 selects
	// DefaultMaxCallDepth.
	MaxCallDepth int
}

const defaultGuardPath = "stef/internal/idx"

// idxDir is one //idx: comment seen in a package, with whether the
// annotation binder attached it to a declaration.
type idxDir struct {
	pos   token.Pos
	bound bool
}

// WidthProgram holds the cross-package annotation index and memoized
// width summaries for one analysis run.
type WidthProgram struct {
	fset *token.FileSet
	cfg  WidthConfig
	pkgs []*Package

	decls      map[*types.Func]*funcSource
	sums       map[*types.Func]*wsummary
	inProgress map[*types.Func]bool
	annos      map[types.Object]wfacet
	retAnnos   map[*types.Func]wfacet
	dirs       map[*Package][]idxDir
}

// NewWidthProgram indexes the given typechecked packages and their //idx:
// annotations. Packages that failed to typecheck must be omitted.
func NewWidthProgram(fset *token.FileSet, pkgs []*Package, cfg WidthConfig) *WidthProgram {
	if cfg.GuardPath == "" {
		cfg.GuardPath = defaultGuardPath
	}
	if cfg.MaxCallDepth <= 0 {
		cfg.MaxCallDepth = DefaultMaxCallDepth
	}
	p := &WidthProgram{
		fset:       fset,
		cfg:        cfg,
		pkgs:       pkgs,
		decls:      make(map[*types.Func]*funcSource),
		sums:       make(map[*types.Func]*wsummary),
		inProgress: make(map[*types.Func]bool),
		annos:      make(map[types.Object]wfacet),
		retAnnos:   make(map[*types.Func]wfacet),
		dirs:       make(map[*Package][]idxDir),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = &funcSource{decl: fd, pkg: pkg}
				}
			}
		}
	}
	p.collectAnnos()
	return p
}

// collectAnnos walks every declaration, binding //idx: directives on
// struct fields, package-level and local var/const specs, and function
// doc comments to the corresponding types.Objects. Every //idx: comment
// position is recorded so unbound directives can be reported.
func (p *WidthProgram) collectAnnos() {
	for _, pkg := range p.pkgs {
		consumed := make(map[token.Pos]bool)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					p.bindFuncDirectives(pkg, n, consumed)
				case *ast.StructType:
					for _, fld := range n.Fields.List {
						p.bindSpecDirectives(pkg, fld.Names, []*ast.CommentGroup{fld.Doc, fld.Comment}, consumed)
					}
				case *ast.GenDecl:
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						groups := []*ast.CommentGroup{vs.Doc, vs.Comment}
						if len(n.Specs) == 1 {
							groups = append(groups, n.Doc)
						}
						p.bindSpecDirectives(pkg, vs.Names, groups, consumed)
					}
				}
				return true
			})
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if _, ok := IdxDirectiveBody(c.Text); ok {
						p.dirs[pkg] = append(p.dirs[pkg], idxDir{pos: c.Slash, bound: consumed[c.Slash]})
					}
				}
			}
		}
		// The comment walk above runs after binding per file, but
		// consumed is per package: refresh the bound flags.
		for i, d := range p.dirs[pkg] {
			if consumed[d.pos] {
				p.dirs[pkg][i].bound = true
			}
		}
	}
}

// bindSpecDirectives binds facet directives in the given comment groups
// to each named object of a field or value spec.
func (p *WidthProgram) bindSpecDirectives(pkg *Package, names []*ast.Ident, groups []*ast.CommentGroup, consumed map[token.Pos]bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			body, ok := IdxDirectiveBody(c.Text)
			if !ok {
				continue
			}
			// A directive none of whose facets parse binds nothing and
			// stays unconsumed, so it is reported as unbound instead of
			// silently attaching an empty facet.
			f, any := parseIdxFacets(strings.Fields(body))
			if !any {
				continue
			}
			bound := false
			for _, name := range names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					p.annos[obj] = p.annos[obj].join(f)
					bound = true
				}
			}
			if bound {
				consumed[c.Slash] = true
			}
		}
	}
}

// bindFuncDirectives binds `//idx: <param> <facets>` and
// `//idx: return <facets>` lines in a function's doc comment.
func (p *WidthProgram) bindFuncDirectives(pkg *Package, fd *ast.FuncDecl, consumed map[token.Pos]bool) {
	if fd.Doc == nil {
		return
	}
	params := make(map[string]types.Object)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					params[name.Name] = obj
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	for _, c := range fd.Doc.List {
		body, ok := IdxDirectiveBody(c.Text)
		if !ok {
			continue
		}
		fields := strings.Fields(body)
		if len(fields) < 2 {
			continue
		}
		f, any := parseIdxFacets(fields[1:])
		if fields[0] == "return" {
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && any {
				p.retAnnos[fn] = p.retAnnos[fn].join(f)
				consumed[c.Slash] = true
			}
			continue
		}
		if obj, ok := params[fields[0]]; ok {
			p.annos[obj] = p.annos[obj].join(f)
			consumed[c.Slash] = true
		}
	}
}

// wsummary is the width-analysis result for one module-local function.
type wsummary struct {
	ret       []wfacet
	truncated bool
}

func opaqueWSummary(fn *types.Func) *wsummary {
	sig, _ := fn.Type().(*types.Signature)
	n := 0
	if sig != nil {
		n = sig.Results().Len()
	}
	s := &wsummary{truncated: true}
	for i := 0; i < n; i++ {
		s.ret = append(s.ret, wtop())
	}
	return s
}

// wsummarize computes (and memoizes, when complete) the width summary of
// a module-local function: the facets of its results, expressed over its
// own annotated seeds plus pass-through parameter dependencies.
func (p *WidthProgram) wsummarize(fn *types.Func, depth int) *wsummary {
	if s, ok := p.sums[fn]; ok {
		return s
	}
	src := p.decls[fn]
	if src == nil {
		// No source: opaque at any depth; memoize so repeated interface
		// or external calls don't mark every caller truncated.
		s := opaqueWSummary(fn)
		s.truncated = false
		p.sums[fn] = s
		return s
	}
	if depth > p.cfg.MaxCallDepth || p.inProgress[fn] {
		return opaqueWSummary(fn)
	}
	p.inProgress[fn] = true
	defer delete(p.inProgress, fn)

	a := &widthAnalysis{
		prog:        p,
		pkg:         src.pkg,
		info:        src.pkg.Info,
		owner:       src.decl,
		summaryMode: true,
		depth:       depth,
	}
	a.init()
	i := 0
	seed := func(name *ast.Ident) {
		obj := a.info.Defs[name]
		if obj != nil {
			f := wfacet{deps: pbit(i)}
			if anno, ok := p.annos[obj]; ok {
				f = f.join(anno)
			}
			a.env[obj] = f
		}
		i++
	}
	if src.decl.Recv != nil {
		for _, field := range src.decl.Recv.List {
			for _, name := range field.Names {
				seed(name)
			}
		}
		i = 1
	}
	for _, field := range src.decl.Type.Params.List {
		for _, name := range field.Names {
			seed(name)
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	a.fixpoint(src.decl.Body)

	s := &wsummary{ret: a.retVals, truncated: a.sawOpaque}
	if anno, ok := p.retAnnos[fn]; ok {
		for len(s.ret) == 0 {
			s.ret = append(s.ret, wfacet{})
		}
		s.ret[0] = s.ret[0].join(anno)
	}
	if !s.truncated {
		p.sums[fn] = s
	}
	return s
}

// CheckPackage runs the width checks over every function declared in the
// package with the given import path, plus the package's unbound //idx:
// directives, returning findings ordered by position.
func (p *WidthProgram) CheckPackage(pkgPath string) []Finding {
	pkg := p.pkg(pkgPath)
	if pkg == nil {
		return nil
	}
	var out []Finding
	for _, d := range p.dirs[pkg] {
		if !d.bound {
			out = append(out, Finding{Pos: d.pos, Message: "//idx: directive binds nothing: it is not attached to a struct field, var/const spec, or a doc-comment parameter of the function it documents, or no facet of it parses"})
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, p.checkFunc(pkg, fd, nil)...)
		}
	}
	seen := make(map[string]bool)
	uniq := out[:0]
	for _, f := range out {
		key := fmt.Sprintf("%d:%s", f.Pos, f.Message)
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, f)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Pos < uniq[j].Pos })
	return uniq
}

// Dump runs the width analysis over the named function ("Name" or
// "Recv.Name") and reports the inferred facet of each assignment target,
// index expression and conversion — the debugging view behind
// `stef-verify -idx`.
func (p *WidthProgram) Dump(pkgPath, name string) ([]Finding, error) {
	pkg := p.pkg(pkgPath)
	if pkg == nil {
		return nil, fmt.Errorf("flow: package %s not loaded", pkgPath)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || declName(fd) != name && fd.Name.Name != name {
				continue
			}
			var obs []Finding
			p.checkFunc(pkg, fd, func(pos token.Pos, what string, f wfacet) {
				obs = append(obs, Finding{Pos: pos, Message: fmt.Sprintf("%-11s %s", what, widthLabel(f.val))})
			})
			sort.SliceStable(obs, func(i, j int) bool { return obs[i].Pos < obs[j].Pos })
			return obs, nil
		}
	}
	return nil, fmt.Errorf("flow: function %s not found in %s", name, pkgPath)
}

// declName renders a FuncDecl as Name or RecvType.Name.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func (p *WidthProgram) pkg(pkgPath string) *Package {
	for _, cand := range p.pkgs {
		if cand.Path == pkgPath {
			return cand
		}
	}
	return nil
}

// checkFunc analyzes one function declaration in entry mode: parameters
// seeded only from annotations, fixpoint, then a checking pass.
func (p *WidthProgram) checkFunc(pkg *Package, fd *ast.FuncDecl, observe func(token.Pos, string, wfacet)) []Finding {
	a := &widthAnalysis{
		prog:    p,
		pkg:     pkg,
		info:    pkg.Info,
		owner:   fd,
		observe: observe,
	}
	a.init()
	seed := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := a.info.Defs[name]
				if obj == nil {
					continue
				}
				if anno, ok := p.annos[obj]; ok {
					a.env[obj] = anno
				}
			}
		}
	}
	seed(fd.Recv)
	seed(fd.Type.Params)
	a.fixpoint(fd.Body)
	a.checking = true
	a.block(fd.Body)
	return a.findings
}

package flow

import "go/types"

// Deriv is the derivation lattice of the write-disjointness analysis,
// tracked as a bitmask: a value is *derived* (safe to use as a store index
// inside a parallel callback) when any bit is set. The two bits record how
// the derivation was obtained; the empty mask covers both Shared (read from
// memory visible to every thread at a thread-independent location) and
// Unknown (constants, opaque call results) — neither makes a store index
// thread-unique, so the checker treats them alike and the split exists only
// for diagnostics.
type Deriv uint8

const (
	// DerivThread marks values computed from the callback's own
	// parameters: the thread id and the block bounds.
	DerivThread Deriv = 1 << iota
	// DerivPartition marks values read through a thread-indexed window of
	// shared state — partition bounds like sched.Partition.Start[th] and
	// everything computed from them.
	DerivPartition
)

func (d Deriv) derived() bool { return d != 0 }

// paramMask is a set of parameter indices (receiver first for methods).
// Functions with more than 32 parameters fall off the precise path; the
// high parameters are simply never seen as derivation sources, which only
// errs toward reporting.
type paramMask uint32

func pbit(i int) paramMask {
	if i < 0 || i >= 32 {
		return 0
	}
	return 1 << uint(i)
}

func (m paramMask) has(i int) bool { return m&pbit(i) != 0 }

// regionKind classifies the memory a value references (for pointers,
// slices and maps: the pointed-to memory; scalars carry regNone).
type regionKind uint8

const (
	// regNone: no referenced memory (scalars).
	regNone regionKind = iota
	// regUnknown: result of an opaque call; stores through it are not
	// judged (the analysis cannot tie them to shared state).
	regUnknown
	// regFresh: locally allocated (make/new/composite literal) — private
	// to one callback invocation, stores are always safe.
	regFresh
	// regView: a window into other memory, described by base/global plus
	// the derivation of the window offset. A view whose offset is derived
	// is *disjoint*: each thread's window is distinct, so any store inside
	// it is safe (boundary replica rows, Scratch accumulators, out.Row(i)
	// with a derived i).
	regView
	// regShared: captured or package-level memory reached at a
	// thread-independent location; stores need a derived index.
	regShared
)

// region describes referenced memory. base/offDeps are only meaningful
// while summarizing a function (they name its parameters); global marks
// memory that may alias captured or package-level state.
type region struct {
	kind     regionKind
	base     paramMask // view: parameters whose memory it may alias
	global   bool      // view/shared: may alias captured or package-level memory
	offDeriv Deriv     // derivation of the view offset, context-independent part
	offDeps  paramMask // view offset is derived if any of these params is derived at the call site
}

// disjoint reports whether storing anywhere inside the region is safe in
// the current context (entry analysis, where deps have been resolved).
func (r region) disjoint() bool { return r.kind == regView && r.offDeriv.derived() }

// unsafeTarget reports whether the region references memory a parallel
// store must justify: shared state, or a view of it whose offset is not
// (yet) known to be derived.
func (r region) unsafeTarget() bool {
	switch r.kind {
	case regShared:
		return true
	case regView:
		return !r.offDeriv.derived()
	}
	return false
}

// value is the abstract value of an expression: scalar derivation plus
// referenced region. deps names parameters whose derivation at the call
// site transfers to this value (summary mode only).
type value struct {
	deriv Deriv
	deps  paramMask
	reg   region
}

// scalarDeriv folds the region's offset derivation into the scalar bits:
// a value loaded through a derived window is itself derived (the taint
// rule the old syntactic par-safety analyzer used).
func (v value) scalarDeriv() Deriv { return v.deriv | v.reg.offDeriv }

func (v value) scalarDeps() paramMask { return v.deps | v.reg.offDeps }

// join is the lattice join. Derivation bits and dependency sets union —
// a value that is derived on any path counts as derived, matching the
// monotone taint of the old analyzer — while region kinds resolve toward
// the least safe alternative so a variable that may alias shared state is
// always checked.
func (v value) join(o value) value {
	return value{
		deriv: v.deriv | o.deriv,
		deps:  v.deps | o.deps,
		reg:   v.reg.join(o.reg),
	}
}

func (r region) join(o region) region {
	if r.kind < o.kind {
		r, o = o, r
	}
	// r.kind >= o.kind: shared > view > fresh > unknown > none. Merging a
	// view with a weaker kind keeps the view; merging two views unions
	// their descriptions.
	out := r
	out.base |= o.base
	out.global = out.global || o.global
	out.offDeriv |= o.offDeriv
	out.offDeps |= o.offDeps
	return out
}

var sharedRegion = region{kind: regShared, global: true}

// pointerLike reports whether values of type t reference memory (directly
// or through a field/element), so that a region is worth tracking for them.
func pointerLike(t types.Type) bool { return pointerLikeSeen(t, make(map[types.Type]bool)) }

func pointerLikeSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return pointerLikeSeen(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerLikeSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

package flow

import (
	"go/ast"
	"go/types"
	"strings"
)

// evalCall evaluates a call expression and returns its result values
// (at least want entries when the callee is opaque).
func (a *analysis) evalCall(call *ast.CallExpr, want int) []value {
	pad := func(vs []value) []value {
		for len(vs) < want {
			vs = append(vs, value{})
		}
		return vs
	}
	opaque := func() []value {
		out := make([]value, want)
		sig, _ := a.exprType(call.Fun).(*types.Signature)
		for i := range out {
			var rt types.Type
			if sig != nil && i < sig.Results().Len() {
				rt = sig.Results().At(i).Type()
			}
			if rt != nil && pointerLike(rt) {
				out[i].reg = region{kind: regUnknown}
			}
		}
		return out
	}

	// Conversion: T(x) passes the value through.
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return pad([]value{a.eval(call.Args[0])})
		}
		return opaque()
	}

	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := a.info.Uses[id].(*types.Builtin); isBuiltin {
			return pad(a.evalBuiltin(id.Name, call))
		}
		// Call through a local closure variable.
		if obj := a.info.Uses[id]; obj != nil {
			if lit, isLit := a.lits[obj]; isLit {
				return pad(a.callLit(lit, call))
			}
		}
	}
	// Immediately invoked literal.
	if lit, ok := fun.(*ast.FuncLit); ok {
		return pad(a.callLit(lit, call))
	}

	fn := calleeFunc(a.info, call)

	// Parallel launch (par.Do / par.Blocks / a wrapper): the callback runs
	// on other goroutines and is checked as its own entry by Entries();
	// here the call contributes nothing. Non-literal non-callback args are
	// still evaluated for effects.
	if positions := a.prog.parCallbackPos(fn); positions != 0 {
		for i, arg := range call.Args {
			if positions.has(i) {
				continue
			}
			a.eval(arg)
		}
		return opaque()
	}

	// sync/atomic read-modify-write results act as claim tokens: the
	// returned (old/new) value is unique to the winning thread, so indexes
	// derived from it are disjoint. The stores atomic ops perform are
	// synchronized by definition and not judged here.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		for _, arg := range call.Args {
			a.eval(arg)
		}
		name := fn.Name()
		if strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Swap") ||
			strings.HasPrefix(name, "CompareAndSwap") {
			out := opaque()
			if len(out) > 0 {
				out[0].deriv |= DerivThread
			}
			return out
		}
		return opaque()
	}

	// Evaluate arguments (receiver first for methods).
	var args []value
	if sel, ok := fun.(*ast.SelectorExpr); ok && fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			args = append(args, a.eval(sel.X))
		}
	}
	for _, arg := range call.Args {
		args = append(args, a.eval(arg))
	}

	if fn == nil || a.prog.decls[fn] == nil {
		// Dynamic, interface, stdlib, or external call: opaque.
		if a.summaryMode {
			a.sawOpaque = true
		}
		return pad(opaque())
	}

	s := a.prog.summarize(fn, a.depth+1)
	return pad(a.applySummary(call, fn, s, args))
}

func (a *analysis) evalBuiltin(name string, call *ast.CallExpr) []value {
	evalArgs := func() []value {
		out := make([]value, len(call.Args))
		for i, arg := range call.Args {
			out[i] = a.eval(arg)
		}
		return out
	}
	switch name {
	case "len", "cap":
		vs := evalArgs()
		if len(vs) == 1 {
			// len of a disjoint window is thread-specific data.
			return []value{{deriv: vs[0].deriv | vs[0].reg.offDeriv, deps: vs[0].deps | vs[0].reg.offDeps}}
		}
		return []value{{}}
	case "make", "new":
		for _, arg := range call.Args[1:] {
			a.eval(arg)
		}
		return []value{{reg: region{kind: regFresh}}}
	case "append":
		vs := evalArgs()
		out := value{}
		for _, v := range vs {
			out = out.join(v)
		}
		return []value{out}
	case "copy":
		vs := evalArgs()
		if len(vs) == 2 {
			// copy overwrites dst's whole window: a bare store.
			a.store(call.Pos(), a.derefRegion(vs[0].reg), value{}, false, true)
			return []value{{}}
		}
		return []value{{}}
	case "delete":
		vs := evalArgs()
		if len(vs) == 2 {
			a.store(call.Pos(), a.derefRegion(vs[0].reg), vs[1], true, false)
		}
		return []value{{}}
	case "min", "max":
		vs := evalArgs()
		out := value{}
		for _, v := range vs {
			out.deriv |= v.scalarDeriv()
			out.deps |= v.scalarDeps()
		}
		return []value{out}
	case "clear":
		vs := evalArgs()
		if len(vs) == 1 {
			a.store(call.Pos(), a.derefRegion(vs[0].reg), value{}, false, true)
		}
		return []value{{}}
	default:
		evalArgs()
		return []value{{}}
	}
}

// callLit invokes a local closure: argument values join into the
// literal's parameter objects (picked up on the next fixpoint pass — the
// body is walked at its definition site) and the accumulated return
// values come back.
func (a *analysis) callLit(lit *ast.FuncLit, call *ast.CallExpr) []value {
	i := 0
	var params []types.Object
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, a.info.Defs[name])
		}
	}
	for _, arg := range call.Args {
		v := a.eval(arg)
		if i < len(params) && params[i] != nil {
			a.setEnv(params[i], v)
		}
		i++
	}
	a.walkLit(lit)
	return a.litRets[lit]
}

// applySummary substitutes call-site argument facts into a callee summary:
// resolving store targets through argument regions, discharging stores
// whose index becomes derived, propagating the rest (as findings in entry
// mode, as composed storeRecs in summary mode), and rebuilding result
// values.
func (a *analysis) applySummary(call *ast.CallExpr, fn *types.Func, s *summary, args []value) []value {
	if s.truncated && a.summaryMode {
		a.sawOpaque = true
	}
	argv := func(p int) value {
		if p >= 0 && p < len(args) {
			return args[p]
		}
		return value{}
	}
	for _, st := range s.stores {
		global := st.global
		var base paramMask
		hit := st.global
		d := st.deriv
		var deps paramMask
		for p := 0; p < len(args) && p < 32; p++ {
			if !st.targets.has(p) {
				continue
			}
			r := argv(p).reg
			switch r.kind {
			case regView:
				if r.disjoint() {
					continue // store lands inside a thread-disjoint window
				}
				base |= r.base
				global = global || r.global
				deps |= r.offDeps // window may become disjoint one level up
				hit = hit || r.global || r.base != 0 || r.offDeps != 0
			case regShared:
				global = true
				hit = true
			}
			// fresh/unknown/none targets: the store lands in caller-local
			// or unjudgeable memory — skip.
		}
		if !hit {
			continue
		}
		for p := 0; p < len(args) && p < 32; p++ {
			if !st.deps.has(p) {
				continue
			}
			v := argv(p)
			d |= v.scalarDeriv()
			deps |= v.scalarDeps()
		}
		if d.derived() {
			continue
		}
		via := chainJoin(fn.Name(), st.via)
		if a.summaryMode {
			if base == 0 && !global {
				continue
			}
			a.stores = append(a.stores, storeRec{
				pos: st.pos, targets: base, global: global,
				deriv: d, deps: deps, isMap: st.isMap, bare: st.bare, via: via,
			})
			continue
		}
		if !a.checking {
			continue
		}
		a.reportStore(a.reportPos(st.pos, call.Pos()), st.isMap, st.bare, via)
	}

	out := make([]value, len(s.ret))
	for i, rv := range s.ret {
		nv := value{deriv: rv.deriv}
		for p := 0; p < len(args) && p < 32; p++ {
			if !rv.deps.has(p) {
				continue
			}
			v := argv(p)
			nv.deriv |= v.scalarDeriv()
			nv.deps |= v.scalarDeps()
		}
		nv.reg = substRegion(rv.reg, args)
		out[i] = nv
	}
	return out
}

// substRegion rebuilds a summarized result region in the caller's frame.
func substRegion(r region, args []value) region {
	if r.kind != regView {
		return r
	}
	out := region{kind: regView, global: r.global, offDeriv: r.offDeriv}
	for p := 0; p < len(args) && p < 32; p++ {
		if !r.offDeps.has(p) {
			continue
		}
		v := args[p]
		out.offDeriv |= v.scalarDeriv()
		out.offDeps |= v.scalarDeps()
	}
	sawUnknown := false
	for p := 0; p < len(args) && p < 32; p++ {
		if !r.base.has(p) {
			continue
		}
		ar := args[p].reg
		switch ar.kind {
		case regShared:
			out.global = true
		case regView:
			out.base |= ar.base
			out.global = out.global || ar.global
			// A window inside a thread-disjoint window is itself disjoint.
			out.offDeriv |= ar.offDeriv
			out.offDeps |= ar.offDeps
		case regUnknown:
			sawUnknown = true
		}
	}
	if out.base == 0 && !out.global {
		if sawUnknown {
			return region{kind: regUnknown}
		}
		return region{kind: regFresh}
	}
	return out
}

// widtheval.go is the expression evaluator of the idx-width analysis:
// it computes width facets bottom-up and, in the checking pass, reports
// the three violation classes at the expressions that produce them.
package flow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

func (a *widthAnalysis) weval(e ast.Expr) wfacet {
	e = ast.Unparen(e)
	if tv, ok := a.info.Types[e]; ok && tv.Value != nil {
		// Constant expressions are compiler-checked; fold them.
		return constFacet(tv.Value)
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := a.info.Uses[e]
		if obj == nil {
			obj = a.info.Defs[e]
		}
		if obj == nil {
			return wtop()
		}
		if f, ok := a.env[obj]; ok {
			return f
		}
		if f, ok := a.prog.annos[obj]; ok {
			return f
		}
		return wtop()
	case *ast.SelectorExpr:
		a.weval(e.X)
		if sel, ok := a.info.Selections[e]; ok {
			if f, ok := a.prog.annos[sel.Obj()]; ok {
				return f
			}
			return wtop()
		}
		// Qualified identifier pkg.Name.
		if obj := a.info.Uses[e.Sel]; obj != nil {
			if f, ok := a.prog.annos[obj]; ok {
				return f
			}
		}
		return wtop()
	case *ast.BinaryExpr:
		return a.binary(e)
	case *ast.UnaryExpr:
		x := a.weval(e.X)
		switch e.Op {
		case token.SUB, token.ADD:
			return wfacet{val: x.val}
		}
		return wtop()
	case *ast.StarExpr:
		return a.weval(e.X)
	case *ast.CallExpr:
		vs := a.wevalMulti(e, 1)
		return vs[0]
	case *ast.IndexExpr:
		if tv, ok := a.info.Types[e.Index]; ok && tv.IsType() {
			// Generic instantiation, not an index.
			a.weval(e.X)
			return wtop()
		}
		x := a.weval(e.X)
		idxF := a.weval(e.Index)
		a.checkIndexArith(e.Index, idxF)
		if isIntType(a.exprTypeOf(e)) {
			return wfacet{val: x.elem.use()}
		}
		return x.elemStep(false)
	case *ast.IndexListExpr:
		a.weval(e.X)
		return wtop()
	case *ast.SliceExpr:
		x := a.weval(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b != nil {
				a.checkIndexArith(b, a.weval(b))
			}
		}
		// Slicing can only shrink a window, so the len bounds survive.
		x.val = 0
		x.deps = 0
		return x
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			a.weval(elt)
		}
		return wtop()
	case *ast.KeyValueExpr:
		a.weval(e.Key)
		a.weval(e.Value)
		return wtop()
	case *ast.FuncLit:
		a.walkLit(e)
		return wtop()
	case *ast.TypeAssertExpr:
		a.weval(e.X)
		return wtop()
	}
	return wtop()
}

// binary evaluates a binary expression and applies the under-width check
// (violation class 2) to sums, products and shifts.
func (a *widthAnalysis) binary(e *ast.BinaryExpr) wfacet {
	x := a.weval(e.X)
	y := a.weval(e.Y)
	var r wb
	op := ""
	switch e.Op {
	case token.ADD:
		r, op = addW(x.val, y.val), "sum"
	case token.SUB:
		r = maxW(x.val, y.val)
	case token.MUL:
		r, op = mulW(x.val, y.val), "product"
	case token.SHL:
		op = "shift"
		r = wbTop
		if tv, ok := a.info.Types[e.Y]; ok && tv.Value != nil {
			if k, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && k >= 0 && k <= 64 {
				r = shlW(x.val, int(k))
			}
		}
	case token.SHR:
		r = x.val
	case token.QUO:
		r = x.val
	case token.REM, token.AND:
		r = minW(x.val, y.val)
	case token.OR, token.XOR, token.AND_NOT:
		r = maxW(x.val, y.val)
	default:
		return wfacet{val: wbTop}
	}
	if a.checking && op != "" && r.known() {
		if tc, ok := intCapacity(a.exprTypeOf(e)); ok && r.bits() > tc {
			if r.bits() >= boundOver {
				a.reportf(e.Pos(), "under-width %s of %s and %s operands: result cannot fit int64; restructure or guard with idx.Mul", op, widthLabel(x.val), widthLabel(y.val))
			} else {
				a.reportf(e.Pos(), "under-width %s of %s and %s operands: result (bound 2^%d) cannot fit %s", op, widthLabel(x.val), widthLabel(y.val), r.bits(), a.typeString(e))
			}
		}
	}
	return wfacet{val: r}
}

// checkIndexArith is violation class 3: arithmetic performed at <=32-bit
// width reaching slice-index or slice-bound position without a provable
// bound. Index arithmetic must either be evaluated at 64-bit width or
// pass through a checked guard (idx.Must32). f is the index expression's
// already-computed facet.
func (a *widthAnalysis) checkIndexArith(e ast.Expr, f wfacet) {
	if !a.checking {
		return
	}
	if a.observe != nil {
		a.observe(e.Pos(), "index", f)
	}
	e = ast.Unparen(e)
	be, ok := e.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.SHL:
	default:
		return
	}
	if tv, ok := a.info.Types[e]; ok && tv.Value != nil {
		return // constant-folded
	}
	tc, ok := intCapacity(a.exprTypeOf(e))
	if !ok || tc > 32 {
		return
	}
	if f.val.known() {
		return // in range, or already reported as under-width
	}
	a.reportf(e.Pos(), "32-bit index arithmetic not provably in range; compute the index at 64-bit width or guard with idx.Must32")
}

// wevalMulti evaluates a call (or conversion) yielding want results.
func (a *widthAnalysis) wevalMulti(call *ast.CallExpr, want int) []wfacet {
	pad := func(vs []wfacet) []wfacet {
		for len(vs) < want {
			vs = append(vs, wtop())
		}
		return vs
	}
	// Conversion T(x): check narrowing (violation class 1), harvest the
	// machine invariants of narrow source/target types.
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return pad(nil)
		}
		return pad([]wfacet{a.convert(call, tv.Type)})
	}

	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := a.info.Uses[id].(*types.Builtin); isBuiltin {
			return pad(a.wevalBuiltin(id.Name, call))
		}
	}
	if lit, ok := fun.(*ast.FuncLit); ok {
		for _, arg := range call.Args {
			a.weval(arg)
		}
		a.walkLit(lit)
		return pad(nil)
	}

	fn := calleeFunc(a.info, call)

	// Checked guards: their results carry certified bounds no matter
	// what went in.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == a.prog.cfg.GuardPath {
		for _, arg := range call.Args {
			a.weval(arg)
		}
		switch fn.Name() {
		case "Must32":
			return pad([]wfacet{{val: wbound(31)}})
		case "Mul", "Add":
			return pad([]wfacet{{val: wbound(63)}})
		}
		return pad(nil)
	}

	// Evaluate arguments (receiver first for methods).
	var args []wfacet
	if sel, ok := fun.(*ast.SelectorExpr); ok && fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			args = append(args, a.weval(sel.X))
		}
	}
	for _, arg := range call.Args {
		args = append(args, a.weval(arg))
	}

	if fn == nil || a.prog.decls[fn] == nil {
		// External, dynamic or stdlib call: opaque results at any depth,
		// so the enclosing summary stays memoizable.
		return pad(nil)
	}
	s := a.prog.wsummarize(fn, a.depth+1)
	if s.truncated && a.summaryMode {
		// Depth-bound or cycle truncation: a shallower caller could see
		// more, so don't bake this view into a memoized summary.
		a.sawOpaque = true
	}
	out := make([]wfacet, 0, len(s.ret))
	for _, rv := range s.ret {
		nv := wfacet{val: rv.val, lens: rv.lens, elem: rv.elem}
		for p := 0; p < len(args) && p < 32; p++ {
			if !rv.deps.has(p) {
				continue
			}
			nv.val = nv.val.join(args[p].val)
			if a.summaryMode {
				nv.deps |= args[p].deps
			}
		}
		if nv.val == 0 {
			nv.val = wbTop
		}
		out = append(out, nv)
	}
	return pad(out)
}

// convert evaluates a type conversion, reporting narrowing (violation
// class 1) when the source bound cannot fit the target width.
func (a *widthAnalysis) convert(call *ast.CallExpr, target types.Type) wfacet {
	arg := call.Args[0]
	f := a.weval(arg)
	tc, tok := intCapacity(target)
	if !tok {
		return wtop() // float/string conversion: not tracked
	}
	vb := f.val
	// Machine invariant: a value read out of a <=32-bit source type
	// cannot exceed that type's width, annotation or not.
	if sc, ok := intCapacity(a.exprTypeOf(arg)); ok && sc <= 32 {
		vb = minW(vb, wbound(sc))
	}
	if a.checking && a.observe != nil {
		a.observe(call.Pos(), "convert", wfacet{val: vb})
	}
	// Only narrowing of values *wider than the dim class* is a finding:
	// dims and fids are int32-bounded by construction, so truncating one
	// to a byte is a deliberate pack (hash mixing, key bytes), while
	// truncating an nnz- or bytes-scale value loses index bits.
	if vb.known() && vb.bits() > tc && vb.bits() > dimClassBound {
		a.reportf(call.Pos(), "narrowing conversion to %s of %s value; use a checked guard (idx.Must32) or keep the value at 64-bit width", a.typeString(call), widthLabel(vb))
		return wfacet{val: wbound(tc)}
	}
	if vb.known() {
		return wfacet{val: minW(vb, wbound(tc))}
	}
	if tc <= 32 {
		// Unknown in, but the narrow target bounds what comes out.
		return wfacet{val: wbound(tc)}
	}
	return wfacet{val: wbTop}
}

func (a *widthAnalysis) wevalBuiltin(name string, call *ast.CallExpr) []wfacet {
	evalArgs := func() []wfacet {
		out := make([]wfacet, len(call.Args))
		for i, arg := range call.Args {
			out[i] = a.weval(arg)
		}
		return out
	}
	switch name {
	case "len", "cap":
		vs := evalArgs()
		if len(vs) == 1 {
			return []wfacet{{val: vs[0].lens[0].use()}}
		}
	case "make":
		// make([]T, n): the new container's len is bounded by n.
		var out wfacet
		for i, arg := range call.Args[1:] {
			f := a.weval(arg)
			if i == 0 {
				out.lens[0] = f.val
			}
		}
		if out.lens[0] == 0 {
			out = wtop()
		}
		return []wfacet{out}
	case "append":
		vs := evalArgs()
		if len(vs) >= 1 {
			out := vs[0]
			out.lens[0] = wbTop // growth unbounded
			return []wfacet{out}
		}
	case "min", "max":
		vs := evalArgs()
		var out wfacet
		for _, v := range vs {
			out.val = out.val.join(v.val)
		}
		out.val = out.val.use()
		return []wfacet{out}
	default:
		evalArgs()
	}
	return nil
}

func (a *widthAnalysis) typeString(e ast.Expr) string {
	if t := a.exprTypeOf(e); t != nil {
		return t.String()
	}
	return "?"
}

// life.go implements the lifetime half of the flow package: an
// interprocedural use-after-release analysis over the module's releasable
// resources. A resource is a value whose lifecycle is declared by the
// small //life: annotation vocabulary (analogous to //idx:) or implied by
// a module-defined `Close() error` method:
//
//	//life: return owned     callers must Close/release the result on
//	                         every path (csf.OpenArena, csf.LoadFile)
//	//life: return pooled    the result is drawn from a pool; it must be
//	                         handed back through a releasing call and its
//	                         internals must not escape the window
//	                         (cpd.Solver.Acquire)
//	//life: return view      the result aliases the receiver's storage
//	                         and dies with it (the csf accessor layer)
//	//life: <param> releases the call releases that parameter
//	                         (cpd.Solver.Release)
//
// Three violation classes are reported by the lifetime analyzer built on
// this file (see lifeanalysis.go):
//
//	L1  use of a resource, or of a view derived from it, on a path after
//	    its release — including releases reached through module-local
//	    helpers, resolved via memoized per-function summaries
//	L2  a pooled value (or a view of its internals) escaping the
//	    Acquire→Release window: returned, stored to a field or global,
//	    or captured by a goroutine
//	L3  an owned resource leaking on a return path: neither released,
//	    deferred, nor transferred out
//
// Like the width analysis, unknown constructs err toward silence: a
// finding only ever traces back to a declared annotation or to a
// module-defined Close method, never to a guess.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lifeKind classifies what a `//life: return <word>` annotation declares
// about a function's first result.
type lifeKind uint8

const (
	lifeNone lifeKind = iota
	lifeOwned
	lifeView
	lifePooled
)

func lifeKindWord(w string) lifeKind {
	switch w {
	case "owned":
		return lifeOwned
	case "view":
		return lifeView
	case "pooled":
		return lifePooled
	}
	return lifeNone
}

// LifeWords lists the closed //life: vocabulary; stale-allow owns spelling
// diagnostics against it, mirroring the //idx: facet treatment.
func LifeWords() []string { return []string{"return", "owned", "view", "pooled", "releases"} }

// ValidLifeWord reports whether w is a declared //life: vocabulary word.
func ValidLifeWord(w string) bool {
	for _, v := range LifeWords() {
		if w == v {
			return true
		}
	}
	return false
}

// LifeDirectiveBody reports whether a comment is a //life: directive and
// returns its trimmed body.
func LifeDirectiveBody(text string) (string, bool) {
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "life:")
	if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(body), true
}

// lifeDirectiveFields splits a directive body into its tokens, dropping a
// trailing "//"-introduced free-form comment (mirroring //idx:).
func lifeDirectiveFields(body string) []string {
	toks := strings.Fields(body)
	for i, t := range toks {
		if strings.HasPrefix(t, "//") {
			return toks[:i]
		}
	}
	return toks
}

// LifeConfig parameterizes a LifeProgram.
type LifeConfig struct {
	// ModulePrefix is the import-path prefix under which a `Close() error`
	// method marks its receiver type as a releasable resource. Empty
	// selects the module's own prefix. Limiting the intrinsic to module
	// types keeps os.File-style handles (whose metadata stays valid after
	// Close) out of scope; the annotations carry everything else.
	ModulePrefix string
	// MaxCallDepth bounds interprocedural summary chains; 0 selects
	// DefaultMaxCallDepth.
	MaxCallDepth int
}

const defaultModulePrefix = "stef"

// lifeDir is one //life: comment seen in a package, with whether the
// annotation binder attached it to a function declaration.
type lifeDir struct {
	pos   token.Pos
	bound bool
}

// LifeProgram holds the cross-package //life: annotation index and
// memoized lifetime summaries for one analysis run.
type LifeProgram struct {
	fset *token.FileSet
	cfg  LifeConfig
	pkgs []*Package

	decls      map[*types.Func]*funcSource
	retKinds   map[*types.Func]lifeKind
	relMasks   map[*types.Func]paramMask
	sums       map[*types.Func]*lsummary
	inProgress map[*types.Func]bool
	dirs       map[*Package][]lifeDir
}

// NewLifeProgram indexes the given typechecked packages and their //life:
// annotations. Packages that failed to typecheck must be omitted.
func NewLifeProgram(fset *token.FileSet, pkgs []*Package, cfg LifeConfig) *LifeProgram {
	if cfg.ModulePrefix == "" {
		cfg.ModulePrefix = defaultModulePrefix
	}
	if cfg.MaxCallDepth <= 0 {
		cfg.MaxCallDepth = DefaultMaxCallDepth
	}
	p := &LifeProgram{
		fset:       fset,
		cfg:        cfg,
		pkgs:       pkgs,
		decls:      make(map[*types.Func]*funcSource),
		retKinds:   make(map[*types.Func]lifeKind),
		relMasks:   make(map[*types.Func]paramMask),
		sums:       make(map[*types.Func]*lsummary),
		inProgress: make(map[*types.Func]bool),
		dirs:       make(map[*Package][]lifeDir),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = &funcSource{decl: fd, pkg: pkg}
				}
			}
		}
	}
	p.collectLifeAnnos()
	return p
}

// inModule reports whether a package path belongs to the analyzed module.
func (p *LifeProgram) inModule(path string) bool {
	return path == p.cfg.ModulePrefix || strings.HasPrefix(path, p.cfg.ModulePrefix+"/")
}

// collectLifeAnnos binds `//life: return <kind>` and `//life: <param>
// releases` lines in function doc comments, recording every //life:
// comment position so unbound directives can be reported.
func (p *LifeProgram) collectLifeAnnos() {
	for _, pkg := range p.pkgs {
		consumed := make(map[token.Pos]bool)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					p.bindLifeFunc(pkg, fd, consumed)
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if _, ok := LifeDirectiveBody(c.Text); ok {
						p.dirs[pkg] = append(p.dirs[pkg], lifeDir{pos: c.Slash, bound: consumed[c.Slash]})
					}
				}
			}
		}
		for i, d := range p.dirs[pkg] {
			if consumed[d.pos] {
				p.dirs[pkg][i].bound = true
			}
		}
	}
}

// bindLifeFunc binds the //life: lines of one function's doc comment. The
// parameter index space matches paramMask convention: the receiver (when
// present) is index 0 and ordinary parameters follow.
func (p *LifeProgram) bindLifeFunc(pkg *Package, fd *ast.FuncDecl, consumed map[token.Pos]bool) {
	if fd.Doc == nil {
		return
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	params := make(map[string]int)
	i := 0
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				params[name.Name] = i
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	addFields(fd.Recv)
	if fd.Recv != nil {
		i = 1
	}
	addFields(fd.Type.Params)
	for _, c := range fd.Doc.List {
		body, ok := LifeDirectiveBody(c.Text)
		if !ok {
			continue
		}
		toks := lifeDirectiveFields(body)
		if len(toks) < 2 {
			continue
		}
		if toks[0] == "return" {
			if k := lifeKindWord(toks[1]); k != lifeNone {
				p.retKinds[fn] = k
				consumed[c.Slash] = true
			}
			continue
		}
		if toks[1] == "releases" {
			if j, ok := params[toks[0]]; ok {
				p.relMasks[fn] |= pbit(j)
				consumed[c.Slash] = true
			}
		}
	}
}

// lsummary is the lifetime summary of one module-local function: which
// parameters it releases on some path, and the lifecycle kind and aliasing
// of its first result.
type lsummary struct {
	releases paramMask
	retKind  lifeKind
	retView  paramMask // parameters the first result may view
}

// summarize computes (and memoizes) fn's lifetime summary. Annotations
// always win; for functions with source, release effects and returned
// lifecycle kinds additionally propagate through the body so helpers
// composed at call sites (a closeBoth(a, b), a wrapper returning
// OpenArena's result) carry their callees' obligations.
func (p *LifeProgram) summarize(fn *types.Func, depth int) *lsummary {
	if s, ok := p.sums[fn]; ok {
		return s
	}
	s := &lsummary{retKind: p.retKinds[fn], releases: p.relMasks[fn]}
	src := p.decls[fn]
	if src == nil || depth > p.cfg.MaxCallDepth || p.inProgress[fn] {
		if src == nil {
			p.sums[fn] = s
		}
		return s
	}
	p.inProgress[fn] = true
	defer delete(p.inProgress, fn)

	byObj := paramIndexMap(src.pkg.Info, src.decl)
	ast.Inspect(src.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, tgt := range p.releaseTargets(src.pkg.Info, n, depth+1) {
				if id, ok := ast.Unparen(tgt).(*ast.Ident); ok {
					if j, isParam := byObj[src.pkg.Info.Uses[id]]; isParam {
						s.releases |= pbit(j)
					}
				}
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				return true
			}
			switch r := ast.Unparen(n.Results[0]).(type) {
			case *ast.CallExpr:
				if callee := calleeFunc(src.pkg.Info, r); callee != nil && s.retKind == lifeNone {
					s.retKind = p.summarize(callee, depth+1).retKind
				}
			default:
				if id, ok := exprRootIdent(n.Results[0]); ok {
					if j, isParam := byObj[src.pkg.Info.Uses[id]]; isParam && id != ast.Unparen(n.Results[0]) {
						// A selector/index path into a parameter: the
						// result aliases that parameter's storage.
						s.retView |= pbit(j)
					}
				}
			}
		}
		return true
	})
	p.sums[fn] = s
	return s
}

// paramIndexMap maps a declaration's parameter objects (receiver first) to
// their paramMask indices.
func paramIndexMap(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	byObj := make(map[types.Object]int)
	i := 0
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					byObj[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	add(fd.Recv)
	if fd.Recv != nil {
		i = 1
	}
	add(fd.Type.Params)
	return byObj
}

// exprRootIdent unwraps selector/index/slice/star/paren chains to the
// identifier at their root, if there is one.
func exprRootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// isModuleClose reports whether fn is a `Close() error` method declared in
// a module package — the intrinsic release the analysis recognizes without
// an annotation.
func (p *LifeProgram) isModuleClose(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Close" || fn.Pkg() == nil || !p.inModule(fn.Pkg().Path()) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// releaseTargets returns the argument (or receiver) expressions a call
// releases: the receiver of a module Close method, plus every argument at
// a position the callee's annotation or summary declares released.
func (p *LifeProgram) releaseTargets(info *types.Info, call *ast.CallExpr, depth int) []ast.Expr {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	var out []ast.Expr
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if p.isModuleClose(fn) && isSel {
		out = append(out, sel.X)
	}
	mask := p.relMasks[fn] | p.summarize(fn, depth).releases
	if mask == 0 {
		return out
	}
	sig, _ := fn.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	for i := 0; i < 32; i++ {
		if !mask.has(i) {
			continue
		}
		switch {
		case hasRecv && i == 0 && isSel:
			out = append(out, sel.X)
		case hasRecv:
			if j := i - 1; j >= 0 && j < len(call.Args) {
				out = append(out, call.Args[j])
			}
		default:
			if i < len(call.Args) {
				out = append(out, call.Args[i])
			}
		}
	}
	return out
}

// retKindOf resolves the lifecycle kind of a call's first result.
func (p *LifeProgram) retKindOf(fn *types.Func, depth int) lifeKind {
	if fn == nil {
		return lifeNone
	}
	if k, ok := p.retKinds[fn]; ok && k != lifeNone {
		return k
	}
	return p.summarize(fn, depth).retKind
}

// CheckPackage runs the lifetime checks over every function declared in
// the package with the given import path, plus the package's unbound
// //life: directives, returning findings ordered by position.
func (p *LifeProgram) CheckPackage(pkgPath string) []Finding {
	pkg := p.pkg(pkgPath)
	if pkg == nil {
		return nil
	}
	var out []Finding
	for _, d := range p.dirs[pkg] {
		if !d.bound {
			out = append(out, Finding{Pos: d.pos, Message: "//life: directive binds nothing: it is not a `return owned|view|pooled` or `<param> releases` line in the doc comment of a function declaration"})
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := newLifeAnalysis(p, pkg, fd)
			a.run(fd.Body)
			out = append(out, a.findings...)
		}
	}
	seen := make(map[string]bool)
	uniq := out[:0]
	for _, f := range out {
		key := fmt.Sprintf("%d:%s", f.Pos, f.Message)
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, f)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Pos < uniq[j].Pos })
	return uniq
}

func (p *LifeProgram) pkg(pkgPath string) *Package {
	for _, cand := range p.pkgs {
		if cand.Path == pkgPath {
			return cand
		}
	}
	return nil
}

// lifeanalysis.go is the per-function walker behind LifeProgram: a
// path-sensitive (branch-cloning, merge-on-join) interpretation of one
// function body that tracks which tracked resources have been released on
// the current path (L1), which values are pooled or view-derived (L2), and
// which owned resources are still unresolved at each return (L3). Unlike
// the fixpoint interpreters of the width and write-disjoint analyses, the
// lifetime properties are about *ordering* along paths, so the walker
// clones state at branches and walks loop bodies twice to expose
// cross-iteration use-after-release; findings are deduplicated by the
// caller.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ownedRes is one owned resource pending resolution on the current path.
type ownedRes struct {
	pos token.Pos
	src string // callee name, for the message
	// errObj is the error variable assigned alongside the resource; an
	// `if errObj != nil` branch treats the resource as never acquired.
	errObj types.Object
}

// lstate is the path-sensitive half of the analysis state.
type lstate struct {
	rel   map[types.Object]token.Pos // released resource roots
	owned map[types.Object]*ownedRes // owned, not yet resolved
}

func newLstate() *lstate {
	return &lstate{rel: make(map[types.Object]token.Pos), owned: make(map[types.Object]*ownedRes)}
}

func (s *lstate) clone() *lstate {
	out := newLstate()
	for k, v := range s.rel {
		out.rel[k] = v
	}
	for k, v := range s.owned {
		out.owned[k] = v
	}
	return out
}

// mergeLstate joins two fall-through branch states: released on any path
// counts as released (L1 errs toward reporting a use that *may* follow a
// release), and owned-unresolved on any path stays owned (L3 errs toward
// reporting a path that *may* leak).
func mergeLstate(a, b *lstate) *lstate {
	out := a.clone()
	for k, v := range b.rel {
		if _, ok := out.rel[k]; !ok {
			out.rel[k] = v
		}
	}
	for k, v := range b.owned {
		if _, ok := out.owned[k]; !ok {
			out.owned[k] = v
		}
	}
	return out
}

// lifeAnalysis walks one function declaration (and, recursively with fresh
// state, the function literals inside it).
type lifeAnalysis struct {
	prog *LifeProgram
	pkg  *Package
	info *types.Info
	fn   *types.Func // nil for function literals

	// views maps a derived value to the resource root it aliases; pooled
	// marks roots drawn from an annotated pool. Both are flow-insensitive:
	// a binding is killed by reassignment but not split across branches.
	views       map[types.Object]types.Object
	pooled      map[types.Object]token.Pos
	deferredRel map[types.Object]bool

	findings []Finding
}

func newLifeAnalysis(p *LifeProgram, pkg *Package, fd *ast.FuncDecl) *lifeAnalysis {
	a := &lifeAnalysis{
		prog:        p,
		pkg:         pkg,
		info:        pkg.Info,
		views:       make(map[types.Object]types.Object),
		pooled:      make(map[types.Object]token.Pos),
		deferredRel: make(map[types.Object]bool),
	}
	if fd != nil {
		a.fn, _ = pkg.Info.Defs[fd.Name].(*types.Func)
	}
	return a
}

func (a *lifeAnalysis) reportf(pos token.Pos, format string, args ...interface{}) {
	a.findings = append(a.findings, Finding{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// run walks a body with fresh path state. A body that falls off its end
// resolves nothing, so remaining owned resources leak there.
func (a *lifeAnalysis) run(body *ast.BlockStmt) {
	s := newLstate()
	if terminated := a.block(body, s); !terminated {
		a.checkLeaks(body.End(), s, nil)
	}
}

// nested analyzes a function literal independently: it executes at an
// unknown time, so the outer path state neither constrains nor is
// affected by it.
func (a *lifeAnalysis) nested(lit *ast.FuncLit) {
	n := &lifeAnalysis{
		prog:        a.prog,
		pkg:         a.pkg,
		info:        a.info,
		views:       make(map[types.Object]types.Object),
		pooled:      make(map[types.Object]token.Pos),
		deferredRel: make(map[types.Object]bool),
	}
	n.run(lit.Body)
	a.findings = append(a.findings, n.findings...)
}

func (a *lifeAnalysis) block(b *ast.BlockStmt, s *lstate) bool {
	for _, st := range b.List {
		if a.stmt(st, s) {
			return true
		}
	}
	return false
}

// stmt interprets one statement, returning whether the path terminates
// (return, panic, or a branch out of the linear flow).
func (a *lifeAnalysis) stmt(st ast.Stmt, s *lstate) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		a.scan(st.X, s)
		return isPanicCall(st.X)
	case *ast.AssignStmt:
		a.assign(st, s)
	case *ast.DeclStmt:
		a.declStmt(st, s)
	case *ast.ReturnStmt:
		a.returnStmt(st, s)
		return true
	case *ast.IfStmt:
		return a.ifStmt(st, s)
	case *ast.BlockStmt:
		return a.block(st, s)
	case *ast.ForStmt:
		if st.Init != nil {
			a.stmt(st.Init, s)
		}
		a.scanOpt(st.Cond, s)
		a.loopBody(st.Body, st.Post, s)
	case *ast.RangeStmt:
		a.scan(st.X, s)
		a.killTargets(s, st.Key, st.Value)
		a.loopBody(st.Body, nil, s)
	case *ast.SwitchStmt:
		if st.Init != nil {
			a.stmt(st.Init, s)
		}
		a.scanOpt(st.Tag, s)
		return a.clauses(st.Body, s)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			a.stmt(st.Init, s)
		}
		a.stmt(st.Assign, s)
		return a.clauses(st.Body, s)
	case *ast.SelectStmt:
		return a.clauses(st.Body, s)
	case *ast.DeferStmt:
		a.deferStmt(st, s)
	case *ast.GoStmt:
		a.goStmt(st, s)
	case *ast.LabeledStmt:
		return a.stmt(st.Stmt, s)
	case *ast.SendStmt:
		a.scan(st.Chan, s)
		a.scan(st.Value, s)
	case *ast.IncDecStmt:
		a.scan(st.X, s)
	case *ast.BranchStmt:
		// break/continue/goto leave the linear flow; the loop's second
		// body walk approximates the back edge.
		return true
	}
	return false
}

// loopBody walks a loop body twice so a release in iteration k is visible
// to uses in iteration k+1; duplicate findings are deduplicated later.
func (a *lifeAnalysis) loopBody(body *ast.BlockStmt, post ast.Stmt, s *lstate) {
	for i := 0; i < 2; i++ {
		bs := s.clone()
		if !a.block(body, bs) && post != nil {
			a.stmt(post, bs)
		}
		*s = *mergeLstate(s, bs)
	}
}

// clauses walks each case body on a cloned state and merges the
// fall-through results; without a default the zero-case path falls
// through unchanged.
func (a *lifeAnalysis) clauses(body *ast.BlockStmt, s *lstate) bool {
	var live []*lstate
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				a.scan(e, s)
			}
			if cs.List == nil {
				hasDefault = true
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				a.stmt(cs.Comm, s)
			}
			stmts = cs.Body
		default:
			continue
		}
		bs := s.clone()
		terminated := false
		for _, st := range stmts {
			if a.stmt(st, bs) {
				terminated = true
				break
			}
		}
		if !terminated {
			live = append(live, bs)
		}
	}
	if !hasDefault {
		live = append(live, s.clone())
	}
	if len(live) == 0 {
		return true
	}
	out := live[0]
	for _, bs := range live[1:] {
		out = mergeLstate(out, bs)
	}
	*s = *out
	return false
}

func (a *lifeAnalysis) ifStmt(st *ast.IfStmt, s *lstate) bool {
	if st.Init != nil {
		a.stmt(st.Init, s)
	}
	a.scan(st.Cond, s)
	guarded, errIsNonNil := a.errGuard(st.Cond, s)

	ts := s.clone()
	if errIsNonNil {
		dropOwned(ts, guarded)
	}
	tTerm := a.block(st.Body, ts)

	es := s.clone()
	if !errIsNonNil {
		dropOwned(es, guarded)
	}
	eTerm := false
	if st.Else != nil {
		eTerm = a.stmt(st.Else, es)
	}
	switch {
	case tTerm && eTerm:
		return true
	case tTerm:
		*s = *es
	case eTerm:
		*s = *ts
	default:
		*s = *mergeLstate(ts, es)
	}
	return false
}

// errGuard recognizes `err != nil` / `err == nil` conditions over an error
// variable paired with an owned resource at its acquisition: on the branch
// where the error is non-nil the resource was never acquired, so it is
// dropped from the owned set there instead of reported as a leak.
func (a *lifeAnalysis) errGuard(cond ast.Expr, s *lstate) ([]types.Object, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	other := be.X
	if isNilExpr(be.X) {
		other = be.Y
	} else if !isNilExpr(be.Y) {
		return nil, false
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return nil, false
	}
	errObj := a.info.Uses[id]
	if errObj == nil {
		return nil, false
	}
	var guarded []types.Object
	for root, o := range s.owned {
		if o.errObj == errObj {
			guarded = append(guarded, root)
		}
	}
	return guarded, be.Op == token.NEQ
}

func dropOwned(s *lstate, roots []types.Object) {
	for _, r := range roots {
		delete(s.owned, r)
	}
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// rootOf resolves an object through the view chain to the resource root it
// aliases.
func (a *lifeAnalysis) rootOf(obj types.Object) types.Object {
	for i := 0; i < 8; i++ {
		next, ok := a.views[obj]
		if !ok {
			return obj
		}
		obj = next
	}
	return obj
}

// scan checks every identifier use in e against the released set and then
// applies the release effects of calls inside e, in that order, so the
// receiver of the releasing call itself is not a use-after-release but a
// second release of the same resource is.
func (a *lifeAnalysis) scan(e ast.Expr, s *lstate) {
	a.scanUses(e, s)
	a.applyEffects(e, s)
}

func (a *lifeAnalysis) scanOpt(e ast.Expr, s *lstate) {
	if e != nil {
		a.scan(e, s)
	}
}

func (a *lifeAnalysis) scanUses(e ast.Expr, s *lstate) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.nested(n)
			return false
		case *ast.BinaryExpr:
			// Nil comparisons observe only the header word, which stays
			// valid after release; they are how callers test lifecycle
			// state, not a use of the resource.
			if (n.Op == token.EQL || n.Op == token.NEQ) && (isNilExpr(n.X) || isNilExpr(n.Y)) {
				return false
			}
		case *ast.Ident:
			a.checkUse(n, s)
		}
		return true
	})
}

func (a *lifeAnalysis) checkUse(id *ast.Ident, s *lstate) {
	obj := a.info.Uses[id]
	if obj == nil {
		return
	}
	root := a.rootOf(obj)
	relPos, released := s.rel[root]
	if !released {
		return
	}
	at := a.prog.fset.Position(relPos)
	if obj == root {
		a.reportf(id.Pos(), "use of %s after release (released at %s:%d)", id.Name, at.Filename, at.Line)
		return
	}
	a.reportf(id.Pos(), "use of %s, a view of %s, after release of its backing (released at %s:%d)", id.Name, root.Name(), at.Filename, at.Line)
}

// applyEffects marks the targets of release calls inside e as released and
// resolves their ownership.
func (a *lifeAnalysis) applyEffects(e ast.Expr, s *lstate) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, tgt := range a.prog.releaseTargets(a.info, call, 1) {
			root := a.targetRoot(tgt)
			if root == nil {
				continue
			}
			if _, done := s.rel[root]; !done {
				s.rel[root] = call.Pos()
			}
			delete(s.owned, root)
		}
		return true
	})
}

// targetRoot resolves a release-target expression to a tracked root
// object; non-identifier targets (fields, results of other calls) are
// outside the tracked set and ignored, erring toward silence.
func (a *lifeAnalysis) targetRoot(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := a.info.Uses[id]
	if obj == nil {
		return nil
	}
	return a.rootOf(obj)
}

func (a *lifeAnalysis) declStmt(st *ast.DeclStmt, s *lstate) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			a.scan(v, s)
		}
		for i, name := range vs.Names {
			obj := a.info.Defs[name]
			if obj == nil {
				continue
			}
			a.kill(obj, s)
			if i < len(vs.Values) {
				a.bindValue(obj, vs.Values[i], nil, s)
			}
		}
	}
}

func (a *lifeAnalysis) assign(st *ast.AssignStmt, s *lstate) {
	for _, r := range st.Rhs {
		a.scan(r, s)
	}
	// Escape checks and kills on the targets.
	for _, l := range st.Lhs {
		switch l := l.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			obj := a.info.Defs[l]
			if obj == nil {
				obj = a.info.Uses[l]
			}
			if obj == nil {
				continue
			}
			if a.isPackageLevel(obj) {
				a.checkEscape(st.Rhs, "stored in package-level variable "+l.Name, st.Pos())
			}
			a.kill(obj, s)
		default:
			// A store through memory: the target expression is itself a
			// use, and a pooled value stored through it outlives the
			// window.
			a.scan(l, s)
			a.checkEscape(st.Rhs, "stored through memory", st.Pos())
		}
	}
	// Bindings: resource/view/pooled classification of the new values.
	if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
		var errObj types.Object
		if len(st.Lhs) == 2 {
			if id, ok := st.Lhs[1].(*ast.Ident); ok {
				if obj := a.objOf(id); obj != nil && isErrorType(obj.Type()) {
					errObj = obj
				}
			}
		}
		if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := a.objOf(id); obj != nil {
				a.bindValue(obj, st.Rhs[0], errObj, s)
			}
		}
		return
	}
	for i, l := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			if obj := a.objOf(id); obj != nil {
				a.bindValue(obj, st.Rhs[i], nil, s)
			}
		}
	}
}

func (a *lifeAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := a.info.Defs[id]; obj != nil {
		return obj
	}
	return a.info.Uses[id]
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func (a *lifeAnalysis) isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// kill forgets everything known about obj: a reassignment starts a new
// lifetime.
func (a *lifeAnalysis) kill(obj types.Object, s *lstate) {
	delete(s.rel, obj)
	delete(s.owned, obj)
	delete(a.views, obj)
	delete(a.pooled, obj)
}

func (a *lifeAnalysis) killTargets(s *lstate, exprs ...ast.Expr) {
	for _, e := range exprs {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := a.objOf(id); obj != nil {
				a.kill(obj, s)
			}
		}
	}
}

// bindValue classifies the value assigned to obj: owned/pooled/view from
// an annotated (or summarized) call, or a view derived by a
// selector/index/slice path from a tracked root.
func (a *lifeAnalysis) bindValue(obj types.Object, rhs ast.Expr, errObj types.Object, s *lstate) {
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		fn := calleeFunc(a.info, call)
		if fn == nil {
			return
		}
		switch a.prog.retKindOf(fn, 1) {
		case lifeOwned:
			s.owned[obj] = &ownedRes{pos: rhs.Pos(), src: fn.Name(), errObj: errObj}
		case lifePooled:
			a.pooled[obj] = rhs.Pos()
		case lifeView:
			if root := a.callViewRoot(call, fn); root != nil {
				a.views[obj] = root
			}
		}
		return
	}
	if root, ok := a.derivedRoot(rhs); ok && root != obj {
		a.views[obj] = root
	}
}

// callViewRoot resolves the storage a view-returning call aliases: the
// receiver for methods, the first summarized view parameter otherwise.
func (a *lifeAnalysis) callViewRoot(call *ast.CallExpr, fn *types.Func) types.Object {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return a.targetRoot(sel.X)
		}
		return nil
	}
	if len(call.Args) > 0 {
		return a.targetRoot(call.Args[0])
	}
	return nil
}

// derivedRoot reports the tracked root of a selector/index/slice path, if
// the path roots at a simple local identifier. Recording views liberally
// is safe: a view only matters once its root is released or pooled.
func (a *lifeAnalysis) derivedRoot(e ast.Expr) (types.Object, bool) {
	switch e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.UnaryExpr:
		id, ok := exprRootIdent(e)
		if !ok {
			return nil, false
		}
		obj := a.info.Uses[id]
		if obj == nil {
			return nil, false
		}
		if _, isVar := obj.(*types.Var); !isVar || a.isPackageLevel(obj) {
			return nil, false
		}
		return a.rootOf(obj), true
	}
	return nil, false
}

// checkEscape reports pooled values (or views of them) among the given
// expressions escaping the Acquire→Release window.
func (a *lifeAnalysis) checkEscape(exprs []ast.Expr, how string, pos token.Pos) {
	for _, e := range exprs {
		a.checkEscapeExpr(e, how, pos)
	}
}

func (a *lifeAnalysis) checkEscapeExpr(e ast.Expr, how string, pos token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.info.Uses[id]
		if obj == nil {
			return true
		}
		root := a.rootOf(obj)
		if _, isPooled := a.pooled[root]; !isPooled {
			return true
		}
		if obj == root {
			a.reportf(pos, "pooled workspace %s escapes the Acquire→Release window: %s", id.Name, how)
		} else {
			a.reportf(pos, "view %s of pooled workspace %s escapes the Acquire→Release window: %s", id.Name, root.Name(), how)
		}
		return true
	})
}

func (a *lifeAnalysis) deferStmt(st *ast.DeferStmt, s *lstate) {
	a.scanUses(st.Call, s)
	// Releases registered by the defer (directly, or inside a deferred
	// literal) resolve ownership for every return path of the function.
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, tgt := range a.prog.releaseTargets(a.info, call, 1) {
			if root := a.targetRoot(tgt); root != nil {
				a.deferredRel[root] = true
			}
		}
		return true
	})
}

func (a *lifeAnalysis) goStmt(st *ast.GoStmt, s *lstate) {
	a.scanUses(st.Call, s)
	// A goroutine runs outside the window: any pooled value it references
	// (as an argument or a capture) escapes.
	ast.Inspect(st, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.info.Uses[id]
		if obj == nil {
			return true
		}
		root := a.rootOf(obj)
		if _, isPooled := a.pooled[root]; isPooled {
			a.reportf(st.Pos(), "pooled workspace %s escapes the Acquire→Release window: captured by a goroutine", root.Name())
		}
		return true
	})
	a.applyEffects(st.Call, s)
}

func (a *lifeAnalysis) returnStmt(st *ast.ReturnStmt, s *lstate) {
	transferred := make(map[types.Object]bool)
	producerPooled := a.fn != nil && a.prog.retKinds[a.fn] == lifePooled
	for _, r := range st.Results {
		a.scan(r, s)
		if id, ok := ast.Unparen(r).(*ast.Ident); ok {
			if obj := a.info.Uses[id]; obj != nil {
				root := a.rootOf(obj)
				transferred[root] = true
				if _, isPooled := a.pooled[root]; isPooled && !producerPooled {
					if obj == root {
						a.reportf(r.Pos(), "pooled workspace %s escapes the Acquire→Release window: returned to the caller", id.Name)
					} else {
						a.reportf(r.Pos(), "view %s of pooled workspace %s escapes the Acquire→Release window: returned to the caller", id.Name, root.Name())
					}
				}
			}
		}
	}
	a.checkLeaks(st.Pos(), s, transferred)
}

// checkLeaks reports every owned resource still unresolved when a path
// leaves the function: not released, not deferred, not transferred out.
func (a *lifeAnalysis) checkLeaks(pos token.Pos, s *lstate, transferred map[types.Object]bool) {
	for root, o := range s.owned {
		if a.deferredRel[root] || transferred[root] {
			continue
		}
		at := a.prog.fset.Position(o.pos)
		a.reportf(pos, "resource %s (from %s at %s:%d) may leak: this return path neither releases it nor defers its release", root.Name(), o.src, at.Filename, at.Line)
	}
}

// Package flow implements the interprocedural dataflow behind the
// write-disjoint analyzer: the static half of the paper's Algorithm 3
// correctness argument. Starting from every function literal passed to
// par.Do/par.Blocks (or to a module-local wrapper that forwards its
// callback, detected from the callgraph), it tracks a derivation lattice —
// ThreadLocal / PartitionDerived / Shared / Unknown, see Deriv — through
// assignments, loads, reslices and calls, and reports any store to captured
// or package-level memory whose index (or window offset) is not provably
// derived from the thread id or the partition bounds.
//
// Calls to module-local functions are resolved through per-function
// summaries: the stores a callee performs, expressed as (target parameter,
// index derivation as a function of the caller's arguments), plus the
// region of its results. Summaries compose, so a store three frames below
// the callback is still attributed to the callback's arguments; the chain
// is bounded by Config.MaxCallDepth, beyond which calls are treated as
// opaque (no stores, unknown results) — the analysis errs toward silence,
// never toward noise, on truncation.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Config parameterizes a Program.
type Config struct {
	// ParPath is the import path of the parallel-loop helpers whose Do
	// and Blocks functions root the analysis. Empty selects the module's
	// own par package.
	ParPath string
	// MaxCallDepth bounds interprocedural summary chains; 0 selects
	// DefaultMaxCallDepth.
	MaxCallDepth int
}

// DefaultMaxCallDepth is deep enough for every chain in this module
// (callback → *Thread kernel → Scratch.vec/Matrix.Row) with headroom for
// one more hop, while keeping summary blowup bounded.
const DefaultMaxCallDepth = 4

const defaultParPath = "stef/internal/par"

// Package is one typechecked package the Program can see.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program holds the cross-package function index and memoized summaries
// for one analysis run.
type Program struct {
	fset *token.FileSet
	cfg  Config
	pkgs []*Package

	decls      map[*types.Func]*funcSource
	sums       map[*types.Func]*summary
	inProgress map[*types.Func]bool
	// wrappers maps a module-local function to the call-argument
	// positions at which it forwards a callback to par.Do/par.Blocks.
	wrappers map[*types.Func]paramMask
	// fileOf maps a filename to the package that owns it, for deciding
	// where an interprocedural finding can be reported.
	fileOf map[string]*Package
}

type funcSource struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// Finding is one unprovable store.
type Finding struct {
	Pos     token.Pos
	Message string
}

// Entry is one parallel callback to check: a function literal (or named
// function) passed at a callback position of par.Do/par.Blocks or a
// wrapper.
type Entry struct {
	Lit  *ast.FuncLit  // nil when a named function is passed instead
	Decl *ast.FuncDecl // set when a named function is passed
	Call *ast.CallExpr // the launching call, for reporting
	pkg  *Package
}

// NewProgram indexes the given typechecked packages. Packages that failed
// to typecheck must be omitted by the caller.
func NewProgram(fset *token.FileSet, pkgs []*Package, cfg Config) *Program {
	if cfg.ParPath == "" {
		cfg.ParPath = defaultParPath
	}
	if cfg.MaxCallDepth <= 0 {
		cfg.MaxCallDepth = DefaultMaxCallDepth
	}
	p := &Program{
		fset:       fset,
		cfg:        cfg,
		pkgs:       pkgs,
		decls:      make(map[*types.Func]*funcSource),
		sums:       make(map[*types.Func]*summary),
		inProgress: make(map[*types.Func]bool),
		wrappers:   make(map[*types.Func]paramMask),
		fileOf:     make(map[string]*Package),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			p.fileOf[fset.Position(f.Pos()).Filename] = pkg
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = &funcSource{decl: fd, pkg: pkg}
				}
			}
		}
	}
	p.findWrappers()
	return p
}

// parCallbackPos returns the callback argument positions of fn: the
// built-in roots par.Do (position 1) and par.Blocks (position 2), plus
// every wrapper discovered from the callgraph.
func (p *Program) parCallbackPos(fn *types.Func) paramMask {
	if fn == nil {
		return 0
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == p.cfg.ParPath {
		switch fn.Name() {
		case "Do":
			return pbit(1)
		case "Blocks":
			return pbit(2)
		}
	}
	return p.wrappers[fn]
}

// findWrappers derives callback-forwarding wrappers from the callgraph to
// fixpoint: g is a wrapper at parameter j when g's body passes its own
// parameter j at a callback position of par.Do/par.Blocks or of another
// wrapper. Deriving this instead of keeping a name list means renaming or
// deleting a wrapper can never silently disable the check.
func (p *Program) findWrappers() {
	// paramIndex[fn] maps each ordinary (non-receiver) parameter object
	// of fn to its call-argument position.
	type declParams struct {
		fn     *types.Func
		body   *ast.FuncDecl
		pkg    *Package
		byObj  map[types.Object]int
	}
	var all []declParams
	for fn, src := range p.decls {
		dp := declParams{fn: fn, body: src.decl, pkg: src.pkg, byObj: make(map[types.Object]int)}
		i := 0
		for _, field := range src.decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := src.pkg.Info.Defs[name]; obj != nil {
					dp.byObj[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
		all = append(all, dp)
	}
	for changed := true; changed; {
		changed = false
		for _, dp := range all {
			ast.Inspect(dp.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(dp.pkg.Info, call)
				positions := p.parCallbackPos(callee)
				if positions == 0 {
					return true
				}
				for i, arg := range call.Args {
					if !positions.has(i) {
						continue
					}
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := dp.pkg.Info.Uses[id]
					if j, isParam := dp.byObj[obj]; isParam && !p.wrappers[dp.fn].has(j) {
						p.wrappers[dp.fn] |= pbit(j)
						changed = true
					}
				}
				return true
			})
		}
	}
}

// calleeFunc resolves the *types.Func a call statically invokes, or nil
// for builtins, closures, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Entries returns the parallel callbacks launched from the package with
// the given import path, in source order.
func (p *Program) Entries(pkgPath string) []Entry {
	var pkg *Package
	for _, cand := range p.pkgs {
		if cand.Path == pkgPath {
			pkg = cand
			break
		}
	}
	if pkg == nil {
		return nil
	}
	var entries []Entry
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			positions := p.parCallbackPos(calleeFunc(pkg.Info, call))
			if positions == 0 {
				return true
			}
			for i, arg := range call.Args {
				if !positions.has(i) {
					continue
				}
				switch a := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					entries = append(entries, Entry{Lit: a, Call: call, pkg: pkg})
				case *ast.Ident:
					if fn, ok := pkg.Info.Uses[a].(*types.Func); ok {
						if src := p.decls[fn]; src != nil {
							entries = append(entries, Entry{Decl: src.decl, Call: call, pkg: pkg})
						}
					}
				}
			}
			return true
		})
	}
	return entries
}

// CheckEntry analyzes one callback and returns its unprovable stores,
// deduplicated and ordered by position.
func (p *Program) CheckEntry(e Entry) []Finding {
	a := &analysis{
		prog:  p,
		pkg:   e.pkg,
		info:  e.pkg.Info,
		entry: &e,
	}
	var typ *ast.FuncType
	var body *ast.BlockStmt
	if e.Lit != nil {
		a.owner = e.Lit
		typ, body = e.Lit.Type, e.Lit.Body
	} else {
		a.owner = e.Decl
		typ, body = e.Decl.Type, e.Decl.Body
	}
	a.init()
	// Every callback parameter is thread-derived: the thread id and the
	// block bounds are exactly the values par.Do/par.Blocks make
	// thread-unique.
	for _, field := range typ.Params.List {
		for _, name := range field.Names {
			if obj := a.info.Defs[name]; obj != nil {
				a.setEnv(obj, value{deriv: DerivThread})
			}
		}
	}
	a.fixpoint(body)
	a.checking = true
	a.block(body)

	seen := make(map[string]bool)
	var out []Finding
	for _, f := range a.findings {
		key := fmt.Sprintf("%d:%s", f.Pos, f.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// reportPos picks where a finding about a store at storePos may be
// reported: at the store itself when it lives in the entry's own package
// (so a //lint:allow next to the store can cover it), else at the
// entry-level call that reaches it.
func (a *analysis) reportPos(storePos token.Pos, fallback token.Pos) token.Pos {
	file := a.prog.fset.Position(storePos).Filename
	if a.prog.fileOf[file] == a.pkg {
		return storePos
	}
	return fallback
}

func viaSuffix(via string) string {
	if via == "" {
		return ""
	}
	return " (via " + via + ")"
}

func chainJoin(head, tail string) string {
	if tail == "" {
		return head
	}
	return head + " → " + tail
}

package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analysis is the per-function abstract interpreter. The same walker runs
// in two modes: entry mode (checking a parallel callback, emitting
// findings) and summary mode (computing a callee summary, emitting
// storeRecs relative to the parameters). Each mode runs the statement
// walker to a fixpoint on the abstract environment first, then once more
// with checking set to actually record stores — so stores are judged
// against the final (most derived) environment, not a partial one.
type analysis struct {
	prog  *Program
	pkg   *Package
	info  *types.Info
	owner ast.Node // the FuncLit or FuncDecl being analyzed
	entry *Entry   // entry mode only

	summaryMode bool
	checking    bool
	depth       int
	fname       string // summarized function name, for via chains

	env map[types.Object]value
	// elem tracks the joined element value of locally allocated
	// containers assigned through an identifier (tmp[l] = sc.vec(th, l)),
	// so later loads of tmp[l] recover the disjoint view.
	elem map[types.Object]value
	// lits binds local closure variables to their function literals;
	// litRets accumulates each literal's joined return values.
	lits    map[types.Object]*ast.FuncLit
	litRets map[*ast.FuncLit][]value
	walked  map[*ast.FuncLit]bool // literals walked this pass
	retSink *ast.FuncLit          // non-nil while walking a closure body

	changed   bool
	stores    []storeRec
	retVals   []value
	sawOpaque bool
	findings  []Finding
}

func (a *analysis) init() {
	a.env = make(map[types.Object]value)
	a.elem = make(map[types.Object]value)
	a.lits = make(map[types.Object]*ast.FuncLit)
	a.litRets = make(map[*ast.FuncLit][]value)
}

func (a *analysis) setEnv(obj types.Object, v value) {
	old, ok := a.env[obj]
	nv := old.join(v)
	if !ok || nv != old {
		a.env[obj] = nv
		a.changed = true
	}
}

func (a *analysis) setElem(obj types.Object, v value) {
	old, ok := a.elem[obj]
	nv := old.join(v)
	if !ok || nv != old {
		a.elem[obj] = nv
		a.changed = true
	}
}

// isLocal reports whether obj is declared inside the function being
// analyzed (including closure parameters and locals). Everything else —
// captured variables, package-level state — is shared from the callback's
// point of view.
func (a *analysis) isLocal(obj types.Object) bool {
	return obj != nil && a.owner.Pos() <= obj.Pos() && obj.Pos() < a.owner.End()
}

const maxFixpointIters = 50

func (a *analysis) fixpoint(body *ast.BlockStmt) {
	for i := 0; i < maxFixpointIters; i++ {
		a.changed = false
		a.walked = make(map[*ast.FuncLit]bool)
		a.block(body)
		if !a.changed {
			break
		}
	}
	a.walked = make(map[*ast.FuncLit]bool)
}

func (a *analysis) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		a.stmt(s)
	}
}

func (a *analysis) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		a.assignStmt(s)
	case *ast.IncDecStmt:
		a.assign(s.X, a.eval(s.X))
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := a.info.Defs[name]
				if obj == nil || name.Name == "_" {
					continue
				}
				var v value
				switch {
				case i < len(vs.Values):
					v = a.evalBind(obj, vs.Values[i])
				case pointerLike(obj.Type()):
					// Zero value: nil slices/maps reference nothing.
					v = value{reg: region{kind: regFresh}}
				}
				a.setEnv(obj, v)
			}
		}
	case *ast.ExprStmt:
		a.eval(s.X)
	case *ast.SendStmt:
		a.eval(s.Chan)
		a.eval(s.Value)
	case *ast.GoStmt:
		a.eval(s.Call)
	case *ast.DeferStmt:
		a.eval(s.Call)
	case *ast.ReturnStmt:
		vals := make([]value, len(s.Results))
		for i, r := range s.Results {
			vals[i] = a.eval(r)
		}
		if a.retSink != nil {
			a.joinRets(&a.litRets, a.retSink, vals)
		} else {
			a.joinTopRets(vals)
		}
	case *ast.BlockStmt:
		a.block(s)
	case *ast.IfStmt:
		a.stmtOpt(s.Init)
		a.eval(s.Cond)
		a.block(s.Body)
		a.stmtOpt(s.Else)
	case *ast.ForStmt:
		a.stmtOpt(s.Init)
		if s.Cond != nil {
			a.eval(s.Cond)
		}
		a.block(s.Body)
		a.stmtOpt(s.Post)
	case *ast.RangeStmt:
		cv := a.eval(s.X)
		bind := func(e ast.Expr, v value) {
			if e == nil {
				return
			}
			if s.Tok == token.DEFINE {
				if id, ok := e.(*ast.Ident); ok {
					if obj := a.info.Defs[id]; obj != nil && id.Name != "_" {
						a.setEnv(obj, v)
					}
					return
				}
			}
			a.assign(e, v)
		}
		// Range keys/indices are the same for every thread; they inherit
		// only the container's scalar derivation, never its window offset
		// (iterating a disjoint window still yields indices 0..n shared
		// by all threads — safe only because the window itself is).
		bind(s.Key, value{deriv: cv.deriv, deps: cv.deps})
		bind(s.Value, a.loadElem(cv, value{}))
		a.block(s.Body)
	case *ast.SwitchStmt:
		a.stmtOpt(s.Init)
		if s.Tag != nil {
			a.eval(s.Tag)
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cc.List {
				a.eval(e)
			}
			for _, st := range cc.Body {
				a.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		a.stmtOpt(s.Init)
		var subject value
		switch as := s.Assign.(type) {
		case *ast.ExprStmt:
			subject = a.eval(as.X)
		case *ast.AssignStmt:
			if len(as.Rhs) == 1 {
				subject = a.eval(as.Rhs[0])
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if obj := a.info.Implicits[cc]; obj != nil {
				a.setEnv(obj, subject)
			}
			for _, st := range cc.Body {
				a.stmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			a.stmtOpt(cc.Comm)
			for _, st := range cc.Body {
				a.stmt(st)
			}
		}
	case *ast.LabeledStmt:
		a.stmt(s.Stmt)
	}
}

func (a *analysis) stmtOpt(s ast.Stmt) {
	if s != nil {
		a.stmt(s)
	}
}

func (a *analysis) assignStmt(s *ast.AssignStmt) {
	var vals []value
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		vals = a.evalMulti(s.Rhs[0], len(s.Lhs))
	} else {
		vals = make([]value, len(s.Rhs))
		for i, r := range s.Rhs {
			var obj types.Object
			if i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if s.Tok == token.DEFINE {
						obj = a.info.Defs[id]
					} else {
						obj = a.info.Uses[id]
					}
				}
			}
			vals[i] = a.evalBind(obj, r)
		}
	}
	for i, lhs := range s.Lhs {
		var v value
		if i < len(vals) {
			v = vals[i]
		}
		if s.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := a.info.Defs[id]; obj != nil && id.Name != "_" {
					a.setEnv(obj, v)
				}
				continue
			}
		}
		a.assign(lhs, v)
	}
}

// evalBind evaluates an rvalue that is about to be bound to obj,
// registering function literals so later calls through the variable
// resolve to the closure body.
func (a *analysis) evalBind(obj types.Object, e ast.Expr) value {
	if lit, ok := ast.Unparen(e).(*ast.FuncLit); ok && obj != nil {
		a.lits[obj] = lit
		a.walkLit(lit)
		return value{}
	}
	return a.eval(e)
}

// assign performs `lhs = v` for a non-define assignment: either an
// environment update (the store stays within a local variable's own cell,
// possibly through struct/array embedding) or a store into referenced
// memory, which is judged.
func (a *analysis) assign(lhs ast.Expr, v value) {
	tgt := a.lvalue(lhs)
	if tgt.skip {
		return
	}
	if tgt.local != nil {
		a.setEnv(tgt.local, v)
		if tgt.elemOf != nil {
			a.setElem(tgt.elemOf, v)
		}
		return
	}
	if tgt.elemOf != nil {
		a.setElem(tgt.elemOf, v)
	}
	a.store(lhs.Pos(), tgt.reg, tgt.idx, tgt.isMap, tgt.bare)
}

// store judges one physical store against the derivation lattice.
func (a *analysis) store(pos token.Pos, reg region, idx value, isMap, bare bool) {
	if !a.checking {
		return
	}
	switch reg.kind {
	case regNone, regFresh, regUnknown:
		return
	}
	d := reg.offDeriv
	deps := reg.offDeps
	if !isMap && !bare {
		// An indexed store into shared memory is fine when the index is
		// thread-derived; map keys and whole-cell stores have no such out.
		d |= idx.scalarDeriv()
		deps |= idx.scalarDeps()
	}
	if d.derived() {
		return
	}
	if a.summaryMode {
		global := reg.global || reg.kind == regShared
		if reg.base == 0 && !global {
			return
		}
		a.stores = append(a.stores, storeRec{
			pos: pos, targets: reg.base, global: global,
			deriv: d, deps: deps, isMap: isMap, bare: bare,
		})
		return
	}
	a.reportStore(pos, isMap, bare, "")
}

func (a *analysis) reportStore(pos token.Pos, isMap, bare bool, via string) {
	var msg string
	switch {
	case isMap:
		msg = "store to shared map inside parallel callback"
	case bare:
		msg = "store to shared memory inside parallel callback"
	default:
		msg = "store to shared memory with index not derived from thread id or partition bounds"
	}
	a.findings = append(a.findings, Finding{Pos: pos, Message: msg + viaSuffix(via)})
}

func (a *analysis) joinTopRets(vals []value) {
	for len(a.retVals) < len(vals) {
		a.retVals = append(a.retVals, value{})
	}
	for i, v := range vals {
		nv := a.retVals[i].join(v)
		if nv != a.retVals[i] {
			a.retVals[i] = nv
			a.changed = true
		}
	}
}

func (a *analysis) joinRets(m *map[*ast.FuncLit][]value, lit *ast.FuncLit, vals []value) {
	cur := (*m)[lit]
	for len(cur) < len(vals) {
		cur = append(cur, value{})
	}
	for i, v := range vals {
		nv := cur[i].join(v)
		if nv != cur[i] {
			cur[i] = nv
			a.changed = true
		}
	}
	(*m)[lit] = cur
}

// walkLit analyzes a closure body in the enclosing environment, once per
// pass. Parameter values are joined in from call sites (previous fixpoint
// iterations); on the first pass they are simply unknown.
func (a *analysis) walkLit(lit *ast.FuncLit) {
	if a.walked[lit] {
		return
	}
	a.walked[lit] = true
	saved := a.retSink
	a.retSink = lit
	a.block(lit.Body)
	a.retSink = saved
}

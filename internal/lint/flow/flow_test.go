package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const parSrc = `package par

func Do(t int, fn func(th int)) {
	for i := 0; i < t; i++ {
		fn(i)
	}
}

func Blocks(n, t int, fn func(th, lo, hi int)) {
	fn(0, 0, n)
}
`

const testParPath = "test/par"

// loadTest typechecks a synthetic two-package program (the test source
// plus a stand-in par package) and returns a Program over it.
func loadTest(t *testing.T, src string, cfg Config) *Program {
	t.Helper()
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}
	check := func(path string, files []*ast.File, imp types.Importer) *Package {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", path, err)
		}
		return &Package{Path: path, Files: files, Types: tpkg, Info: info}
	}
	parPkg := check(testParPath, []*ast.File{parse("par.go", parSrc)}, nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == testParPath {
			return parPkg.Types, nil
		}
		return nil, &importError{path}
	})
	main := check("test/main", []*ast.File{parse("main.go", src)}, imp)
	cfg.ParPath = testParPath
	return NewProgram(fset, []*Package{main, parPkg}, cfg)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

type importError struct{ path string }

func (e *importError) Error() string { return "no such package: " + e.path }

func findings(p *Program) []Finding {
	var out []Finding
	for _, e := range p.Entries("test/main") {
		out = append(out, p.CheckEntry(e)...)
	}
	return out
}

const chainSrc = `package main

import "test/par"

func h4(dst []float64, i int) { dst[i] = 1 }
func h3(dst []float64, i int) { h4(dst, i) }
func h2(dst []float64, i int) { h3(dst, i) }
func h1(dst []float64, i int) { h2(dst, i) }

func run(t, k int, out []float64) {
	par.Do(t, func(th int) {
		h1(out, k)  // unsafe: k is thread-independent, four calls deep
		h1(out, th) // safe: thread id flows down the same chain
	})
}
`

func TestDeepChainFlagged(t *testing.T) {
	p := loadTest(t, chainSrc, Config{})
	fs := findings(p)
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Message, "h1 → h2 → h3 → h4") {
		t.Errorf("finding lacks call chain: %s", fs[0].Message)
	}
}

func TestDepthBoundTruncatesToSilence(t *testing.T) {
	// With the chain longer than MaxCallDepth the callee is opaque: the
	// analysis must go silent (err toward missing a bug), never invent a
	// finding it cannot attribute.
	p := loadTest(t, chainSrc, Config{MaxCallDepth: 2})
	if fs := findings(p); len(fs) != 0 {
		t.Fatalf("want no findings past the depth bound, got %v", fs)
	}
}

const wrapperSrc = `package main

import "test/par"

func inner(t int, fn func(th int)) { par.Do(t, fn) }
func outer(t int, fn func(th int)) { inner(t, fn) }

func run(t int, out []float64) {
	outer(t, func(th int) {
		out[0] = 1 // unsafe
		out[th] = 1
	})
}
`

func TestWrapperOfWrapperDetected(t *testing.T) {
	p := loadTest(t, wrapperSrc, Config{})
	fs := findings(p)
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding through the double wrapper, got %d: %v", len(fs), fs)
	}
}

const partitionSrc = `package main

import "test/par"

type partition struct {
	start [][]int64
}

func run(t int, p *partition, out []float64) {
	par.Do(t, func(th int) {
		lo, hi := p.start[th][0], p.start[th+1][0]
		for n := lo; n < hi; n++ {
			out[n] = 0 // safe: bounds read through a thread-indexed window
		}
	})
}
`

func TestPartitionBoundsDerived(t *testing.T) {
	p := loadTest(t, partitionSrc, Config{})
	if fs := findings(p); len(fs) != 0 {
		t.Fatalf("partition-bounded loop misflagged: %v", fs)
	}
}

package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// storeRec is one store a function performs, expressed relative to its own
// parameters so callers can substitute argument facts.
type storeRec struct {
	pos token.Pos
	// targets names the parameters whose referenced memory the store may
	// hit; global marks stores that may hit captured or package-level
	// memory regardless of the arguments.
	targets paramMask
	global  bool
	// deriv/deps describe the store index (or, for a store through a
	// view, the window offset): the index is derived at a call site when
	// deriv is non-empty or any parameter in deps is derived there.
	deriv Deriv
	deps  paramMask
	// isMap marks map stores: never disjoint by index, always reported
	// when the map is shared.
	isMap bool
	// bare marks stores with no index at all (plain assignment through a
	// pointer/captured variable): unconditionally unsafe on shared
	// targets.
	bare bool
	// via is the human-readable callee chain from the summarized function
	// down to the physical store, for diagnostics.
	via string
}

// summary is the analysis result for one module-local function.
type summary struct {
	stores []storeRec
	ret    []value
	// truncated marks summaries computed at the depth bound with opaque
	// callees inside; they are not memoized so a shallower chain can
	// still see the full picture.
	truncated bool
}

// opaqueSummary is what callers see past the depth bound or for functions
// without source: no stores, unknown results.
func opaqueSummary(fn *types.Func) *summary {
	sig, _ := fn.Type().(*types.Signature)
	n := 0
	if sig != nil {
		n = sig.Results().Len()
	}
	s := &summary{truncated: true}
	for i := 0; i < n; i++ {
		v := value{}
		if sig != nil && pointerLike(sig.Results().At(i).Type()) {
			v.reg = region{kind: regUnknown}
		}
		s.ret = append(s.ret, v)
	}
	return s
}

// summarize computes (and memoizes, when complete) the summary of a
// module-local function. depth is the current chain length; at
// cfg.MaxCallDepth the function is treated as opaque.
func (p *Program) summarize(fn *types.Func, depth int) *summary {
	if s, ok := p.sums[fn]; ok {
		return s
	}
	src := p.decls[fn]
	if src == nil || depth > p.cfg.MaxCallDepth || p.inProgress[fn] {
		return opaqueSummary(fn)
	}
	p.inProgress[fn] = true
	defer delete(p.inProgress, fn)

	a := &analysis{
		prog:        p,
		pkg:         src.pkg,
		info:        src.pkg.Info,
		owner:       src.decl,
		summaryMode: true,
		depth:       depth,
		fname:       fn.Name(),
	}
	a.init()
	seedParam := func(name *ast.Ident, i int) {
		obj := a.info.Defs[name]
		if obj == nil {
			return
		}
		v := value{deps: pbit(i)}
		if pointerLike(obj.Type()) {
			v.reg = region{kind: regView, base: pbit(i), offDeps: pbit(i)}
		}
		a.setEnv(obj, v)
	}
	i := 0
	if src.decl.Recv != nil {
		for _, field := range src.decl.Recv.List {
			for _, name := range field.Names {
				seedParam(name, i)
			}
		}
		i = 1
	}
	for _, field := range src.decl.Type.Params.List {
		for _, name := range field.Names {
			seedParam(name, i)
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	a.fixpoint(src.decl.Body)
	a.checking = true
	a.block(src.decl.Body)

	s := &summary{stores: a.stores, ret: a.retVals, truncated: a.sawOpaque}
	if !s.truncated {
		p.sums[fn] = s
	}
	return s
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicPrefix enforces the repo's panic-message convention in internal
// packages: every panic message must begin with "<package>: " so a stack
// line alone identifies the failing subsystem. Messages whose prefix
// cannot be established statically (panic(err.Error()), panic(err), ...)
// are flagged too — wrap them, e.g. panic("pkg: " + err.Error()).
var PanicPrefix = &Analyzer{
	Name:      "panic-prefix",
	Doc:       "panic messages in internal packages must start with the package name",
	NeedTypes: true,
	Run:       runPanicPrefix,
}

func runPanicPrefix(pass *Pass) {
	if !strings.Contains(pass.PkgPath, "internal/") {
		return
	}
	prefix := pass.PkgName() + ": "
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id := identOf(call.Fun)
			if id == nil {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
				return true
			}
			checkPanicArg(pass, prefix, call.Args[0])
			return true
		})
	}
}

// checkPanicArg verifies that the panic argument's message starts with the
// package prefix, reporting otherwise.
func checkPanicArg(pass *Pass, prefix string, arg ast.Expr) {
	msg, known := staticPrefix(pass, arg)
	switch {
	case !known:
		pass.Reportf(arg.Pos(), "panic message cannot be statically verified to start with %q; wrap it, e.g. panic(%q + err.Error())", prefix, prefix)
	case !strings.HasPrefix(msg, prefix):
		pass.Reportf(arg.Pos(), "panic message %q does not start with %q", truncate(msg, 40), prefix)
	}
}

// staticPrefix extracts the statically-known leading string of a panic
// argument: a constant string, the left end of a + concatenation chain, or
// the format string of fmt.Sprintf/fmt.Errorf.
func staticPrefix(pass *Pass, arg ast.Expr) (string, bool) {
	arg = ast.Unparen(arg)
	// Constant string expressions (literals, named constants, and
	// constant concatenations) are fully known.
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch e := arg.(type) {
	case *ast.BinaryExpr:
		// "pkg: " + err.Error(): only the leftmost operand must be known.
		return staticPrefix(pass, e.X)
	case *ast.CallExpr:
		if fun, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			pkg, ok := pass.Info.Uses[identOf(fun.X)].(*types.PkgName)
			if ok && pkg.Imported().Path() == "fmt" && (fun.Sel.Name == "Sprintf" || fun.Sel.Name == "Errorf" || fun.Sel.Name == "Sprint") && len(e.Args) > 0 {
				return staticPrefix(pass, e.Args[0])
			}
		}
	}
	return "", false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

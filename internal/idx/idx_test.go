package idx

import (
	"math"
	"testing"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestMust32(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt32, math.MinInt32} {
		if got := Must32(v); int64(got) != v {
			t.Fatalf("Must32(%d) = %d", v, got)
		}
	}
	mustPanic(t, "Must32 high", func() { Must32(math.MaxInt32 + 1) })
	mustPanic(t, "Must32 low", func() { Must32(math.MinInt32 - 1) })
}

func TestMul(t *testing.T) {
	cases := [][3]int64{
		{0, math.MaxInt64, 0},
		{1 << 40, 1 << 20, 1 << 60},
		{-(1 << 40), 1 << 20, -(1 << 60)},
		{math.MinInt64, 1, math.MinInt64},
	}
	for _, c := range cases {
		if got := Mul(c[0], c[1]); got != c[2] {
			t.Fatalf("Mul(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
	mustPanic(t, "Mul overflow", func() { Mul(1<<32, 1<<32) })
	mustPanic(t, "Mul negative overflow", func() { Mul(math.MinInt64, -1) })
}

func TestAdd(t *testing.T) {
	if got := Add(math.MaxInt64-1, 1); got != math.MaxInt64 {
		t.Fatalf("Add = %d", got)
	}
	if got := Add(math.MinInt64+1, -1); got != math.MinInt64 {
		t.Fatalf("Add = %d", got)
	}
	mustPanic(t, "Add overflow", func() { Add(math.MaxInt64, 1) })
	mustPanic(t, "Add underflow", func() { Add(math.MinInt64, -1) })
}

// Package idx holds the checked index-arithmetic guards of the
// index-width discipline (see docs/ARCHITECTURE.md, "Index-width
// soundness"). The idx-width analyzer treats the results of these
// helpers as certified: Must32 yields a dim-scale value, Mul and Add
// yield values proven to fit int64. Use them exactly where a narrowing
// or a wide product is intentional and the surrounding code has no
// cheaper structural proof.
package idx

import "math"

// The index-width discipline treats Go's int as 64 bits wide; this
// divides by zero at compile time on any platform where it is not.
const _ = uint64(1) / uint64((^uint(0))>>63)

// Must32 narrows v to int32, panicking if the value does not fit. The
// idx-width analyzer accepts the result anywhere a dim/fid-scale value
// is required.
func Must32(v int64) int32 {
	if v < math.MinInt32 || v > math.MaxInt32 {
		panic("idx: value out of int32 range")
	}
	return int32(v)
}

// Mul multiplies two int64 values, panicking on overflow. The idx-width
// analyzer accepts the result as fitting int64 regardless of the
// operands' scale classes.
func Mul(a, b int64) int64 {
	r := a * b
	if a != 0 && (r/a != b || (a == -1 && b == math.MinInt64)) {
		panic("idx: int64 multiply overflow")
	}
	return r
}

// Add adds two int64 values, panicking on overflow, with the same
// certified-result treatment as Mul.
func Add(a, b int64) int64 {
	r := a + b
	if (b > 0 && r < a) || (b < 0 && r > a) {
		panic("idx: int64 add overflow")
	}
	return r
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAppend(t *testing.T) {
	tt := New([]int{3, 4, 5}, 2)
	tt.Append([]int32{0, 0, 0}, 1.5)
	tt.Append([]int32{2, 3, 4}, -2.0)
	if tt.NNZ() != 2 || tt.Order() != 3 {
		t.Fatalf("nnz=%d order=%d", tt.NNZ(), tt.Order())
	}
	if c := tt.Coord(1); c[0] != 2 || c[1] != 3 || c[2] != 4 {
		t.Fatalf("coord %v", c)
	}
	if err := tt.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestAppendPanicsOutOfRange(t *testing.T) {
	tt := New([]int{2, 2}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tt.Append([]int32{0, 5}, 1)
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]int{3, 0, 2}, 1)
}

func TestSortLexAndValidate(t *testing.T) {
	tt := New([]int{5, 5}, 4)
	tt.Append([]int32{3, 1}, 1)
	tt.Append([]int32{0, 4}, 2)
	tt.Append([]int32{3, 0}, 3)
	tt.Append([]int32{0, 1}, 4)
	tt.SortLex()
	if err := tt.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tt.Vals[0] != 4 || tt.Vals[1] != 2 || tt.Vals[2] != 3 || tt.Vals[3] != 1 {
		t.Fatalf("sorted values %v", tt.Vals)
	}
}

func TestDedup(t *testing.T) {
	tt := New([]int{4, 4}, 3)
	tt.Append([]int32{1, 1}, 2)
	tt.Append([]int32{0, 0}, 5)
	tt.Append([]int32{1, 1}, 3)
	merged := tt.Dedup()
	if merged != 1 || tt.NNZ() != 2 {
		t.Fatalf("merged=%d nnz=%d", merged, tt.NNZ())
	}
	if tt.Vals[1] != 5 { // (1,1) sorts after (0,0)
		t.Fatalf("vals %v", tt.Vals)
	}
	if tt.Vals[0] != 5 && tt.Vals[1] != 5 {
		t.Fatalf("lost value 5: %v", tt.Vals)
	}
	found := false
	for k := 0; k < tt.NNZ(); k++ {
		c := tt.Coord(k)
		if c[0] == 1 && c[1] == 1 {
			if tt.Vals[k] != 5 {
				t.Fatalf("(1,1) value %g, want 5", tt.Vals[k])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("(1,1) missing after dedup")
	}
}

func TestPermuteModesRoundTrip(t *testing.T) {
	tt := Random([]int{4, 6, 8, 3}, 50, nil, 9)
	perm := []int{2, 0, 3, 1}
	inv := make([]int, 4)
	for l, m := range perm {
		inv[m] = l
	}
	back := tt.PermuteModes(perm).PermuteModes(inv)
	if back.NNZ() != tt.NNZ() {
		t.Fatal("nnz changed")
	}
	for k := 0; k < tt.NNZ(); k++ {
		a, b := tt.Coord(k), back.Coord(k)
		for m := range a {
			if a[m] != b[m] {
				t.Fatalf("coord mismatch at %d: %v vs %v", k, a, b)
			}
		}
	}
}

func TestCheckPerm(t *testing.T) {
	if err := CheckPerm([]int{2, 0, 1}, 3); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{0, 0, 1}, {0, 1}, {0, 1, 3}} {
		if err := CheckPerm(bad, 3); err == nil {
			t.Errorf("perm %v accepted", bad)
		}
	}
}

func TestNormFrobenius(t *testing.T) {
	tt := New([]int{2, 2}, 2)
	tt.Append([]int32{0, 0}, 3)
	tt.Append([]int32{1, 1}, 4)
	if got := tt.NormFrobenius(); math.Abs(got-5) > 1e-14 {
		t.Fatalf("norm %g, want 5", got)
	}
}

func TestRandomUniqueSorted(t *testing.T) {
	tt := Random([]int{10, 10, 10}, 300, nil, 4)
	if err := tt.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tt.NNZ() != 300 {
		t.Fatalf("nnz %d, want 300", tt.NNZ())
	}
}

func TestRandomSkewConcentrates(t *testing.T) {
	// Strong Zipf on mode 0 should put far more mass on its hottest index
	// than uniform would. The hot index is *not* 0: skewed modes scatter
	// their samples through a fixed bijection so popularity is decoupled
	// from index order (real tensor ids are not popularity-sorted).
	tt := Random([]int{100, 50, 50}, 2000, []float64{2.5, 0, 0}, 5)
	counts := make([]int, 100)
	for k := 0; k < tt.NNZ(); k++ {
		counts[tt.Coord(k)[0]]++
	}
	hot, max := 0, 0
	for i, c := range counts {
		if c > max {
			hot, max = i, c
		}
	}
	if max < tt.NNZ()/4 {
		t.Errorf("hottest index %d holds only %d/%d non-zeros under skew 2.5", hot, max, tt.NNZ())
	}
}

func TestProfilesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full profile generation in -short mode")
	}
	for _, p := range Profiles() {
		if len(p.Dims) != len(p.Skew) {
			t.Errorf("%s: dims/skew arity mismatch", p.Name)
		}
		if _, err := ProfileByName(p.Name); err != nil {
			t.Errorf("%s: lookup failed", p.Name)
		}
	}
	// Spot-generate two cheap profiles end to end.
	for _, name := range []string{"uber", "vast-2015-mc1-3d"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tt := p.Generate()
		if err := tt.Validate(true); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if tt.NNZ() < p.NNZ*9/10 {
			t.Errorf("%s: generated only %d of %d non-zeros", name, tt.NNZ(), p.NNZ)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("no-such-tensor"); err == nil {
		t.Fatal("expected error")
	}
}

func TestVastProfileHasTwoRootSlices(t *testing.T) {
	p, err := ProfileByName("vast-2015-mc1-3d")
	if err != nil {
		t.Fatal(err)
	}
	tt := p.Generate()
	perm := LengthSortedPerm(tt.Dims)
	if tt.Dims[perm[0]] != 2 {
		t.Fatalf("shortest mode length %d, want 2", tt.Dims[perm[0]])
	}
	// The length-2 mode must be heavily skewed (the paper's 1674%
	// imbalance case): one slice carries > 80% of the non-zeros.
	counts := [2]int{}
	for k := 0; k < tt.NNZ(); k++ {
		counts[tt.Coord(k)[perm[0]]]++
	}
	major := counts[0]
	if counts[1] > major {
		major = counts[1]
	}
	if float64(major) < 0.8*float64(tt.NNZ()) {
		t.Errorf("root slice split %v not skewed enough", counts)
	}
}

func TestModeCountsAndShares(t *testing.T) {
	tt := New([]int{3, 4}, 5)
	tt.Append([]int32{0, 0}, 1)
	tt.Append([]int32{0, 1}, 1)
	tt.Append([]int32{0, 2}, 1)
	tt.Append([]int32{2, 0}, 1)
	counts := tt.ModeCounts(0)
	if counts[0] != 3 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("mode-0 counts %v", counts)
	}
	if got := tt.ModeDensity(0); got != 2.0/3 {
		t.Errorf("mode-0 density %g", got)
	}
	if got := tt.TopSliceShare(0); got != 0.75 {
		t.Errorf("mode-0 top share %g", got)
	}
	if got := tt.TopSliceShare(1); got != 0.5 {
		t.Errorf("mode-1 top share %g", got)
	}
}

func TestVastTopSliceShare(t *testing.T) {
	p, err := ProfileByName("vast-2015-mc1-3d")
	if err != nil {
		t.Fatal(err)
	}
	tt := p.Generate()
	if share := tt.TopSliceShare(2); share < 0.85 {
		t.Errorf("vast length-2 mode top share %.3f; want the paper's ~0.94 skew", share)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Row(1)[2] != 7 {
		t.Fatal("Set/At/Row inconsistent")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMatrixRandomizeDeterministic(t *testing.T) {
	a := NewMatrix(4, 4)
	b := NewMatrix(4, 4)
	a.Randomize(rand.New(rand.NewSource(5)))
	b.Randomize(rand.New(rand.NewSource(5)))
	if a.MaxAbsDiff(b) != 0 {
		t.Fatal("same seed produced different matrices")
	}
}

func TestRandomFactorsShapes(t *testing.T) {
	fs := RandomFactors([]int{3, 7, 2}, 5, 1)
	for m, n := range []int{3, 7, 2} {
		if fs[m].Rows != n || fs[m].Cols != 5 {
			t.Fatalf("factor %d shape %dx%d", m, fs[m].Rows, fs[m].Cols)
		}
	}
}

func TestSortLexQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{1 + rng.Intn(8), 1 + rng.Intn(8), 1 + rng.Intn(8)}
		space := dims[0] * dims[1] * dims[2]
		nnz := 1 + rng.Intn(minInt(40, space))
		tt := Random(dims, nnz, nil, seed)
		sum := 0.0
		for _, v := range tt.Vals {
			sum += v
		}
		tt.SortLex()
		sum2 := 0.0
		for _, v := range tt.Vals {
			sum2 += v
		}
		return tt.Validate(true) == nil && math.Abs(sum-sum2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package tensor

// ModeCounts returns, for mode m, the number of non-zeros per index —
// the slice-size histogram that determines how partitionable the mode is.
func (t *Tensor) ModeCounts(m int) []int64 {
	if m < 0 || m >= t.Order() {
		panic("tensor: ModeCounts mode out of range")
	}
	counts := make([]int64, t.Dims[m])
	d := t.Order()
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		counts[t.Inds[k*d+m]]++
	}
	return counts
}

// ModeDensity returns the fraction of indices of mode m that hold at least
// one non-zero.
func (t *Tensor) ModeDensity(m int) float64 {
	counts := t.ModeCounts(m)
	used := 0
	for _, c := range counts {
		if c > 0 {
			used++
		}
	}
	if len(counts) == 0 {
		return 0
	}
	return float64(used) / float64(len(counts))
}

// TopSliceShare returns the fraction of all non-zeros held by the heaviest
// index of mode m — the direct cause of the root-slice imbalance the paper
// reports for the vast tensors (their length-2 mode has TopSliceShare
// ≈ 0.94).
func (t *Tensor) TopSliceShare(m int) float64 {
	counts := t.ModeCounts(m)
	var max, sum int64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / float64(sum)
}

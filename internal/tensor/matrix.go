package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix. Factor matrices in CPD are Matrix
// values with Cols equal to the decomposition rank R.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols elements, row-major.
	Data []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a subslice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Randomize fills the matrix with uniform values in [0, 1) from rng.
// CPD-ALS conventionally starts from random non-negative factors.
func (m *Matrix) Randomize(rng *rand.Rand) {
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
}

// NormFrobenius returns the Frobenius norm.
func (m *Matrix) NormFrobenius() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the maximum absolute elementwise difference between m
// and other. Shapes must match.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	d := 0.0
	for i, v := range m.Data {
		if diff := math.Abs(v - other.Data[i]); diff > d {
			d = diff
		}
	}
	return d
}

// RandomFactors returns one random factor matrix per mode of dims, each with
// rank columns, seeded deterministically from seed.
func RandomFactors(dims []int, rank int, seed int64) []*Matrix {
	rng := rand.New(rand.NewSource(seed))
	fs := make([]*Matrix, len(dims))
	for m, n := range dims {
		fs[m] = NewMatrix(n, rank)
		fs[m].Randomize(rng)
	}
	return fs
}

// Package tensor provides sparse tensors in coordinate (COO) form, dense
// factor matrices, and synthetic tensor generators used throughout STeF.
//
// A sparse tensor of order d holds its non-zero coordinates as a flat
// []int32 of length nnz*d (row-major: the k-th non-zero occupies
// Inds[k*d : (k+1)*d]) and its values as a []float64 of length nnz.
// Mode lengths are carried in Dims. Coordinates are zero-based.
package tensor

import (
	"fmt"
	"math"
	"sort"
)

// Tensor is a sparse tensor of arbitrary order in coordinate (COO) form.
// The zero value is an empty tensor of order 0; use New or the generators
// in synth.go to construct useful instances.
type Tensor struct {
	// Dims holds the length of each mode. len(Dims) is the tensor order.
	//idx: len=rank elem=dim
	Dims []int
	// Inds holds non-zero coordinates, d per non-zero, row-major.
	//idx: len=bytes elem=dim
	Inds []int32
	// Vals holds one value per non-zero.
	//idx: len=nnz
	Vals []float64
}

// New returns an empty tensor with the given mode lengths and capacity for
// nnzCap non-zeros. It panics if any dimension is non-positive or exceeds
// the int32 coordinate range.
func New(dims []int, nnzCap int) *Tensor {
	for i, n := range dims {
		if n <= 0 {
			panic(fmt.Sprintf("tensor: dimension %d is %d; must be positive", i, n))
		}
		if n > 1<<31-1 {
			panic(fmt.Sprintf("tensor: dimension %d is %d; exceeds int32 range", i, n))
		}
	}
	d := append([]int(nil), dims...)
	return &Tensor{
		Dims: d,
		Inds: make([]int32, 0, nnzCap*len(dims)),
		Vals: make([]float64, 0, nnzCap),
	}
}

// Order returns the number of modes.
func (t *Tensor) Order() int { return len(t.Dims) }

// NNZ returns the number of stored non-zeros.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Coord returns the coordinates of the k-th non-zero as a subslice of Inds.
// The slice aliases the tensor's storage and must not be retained across
// mutating calls.
func (t *Tensor) Coord(k int) []int32 {
	d := len(t.Dims)
	return t.Inds[k*d : (k+1)*d]
}

// Append adds a non-zero with the given coordinates and value. It panics if
// the coordinate arity does not match the tensor order or a coordinate is
// out of range.
func (t *Tensor) Append(coord []int32, val float64) {
	if len(coord) != len(t.Dims) {
		panic(fmt.Sprintf("tensor: coordinate arity %d does not match order %d", len(coord), len(t.Dims)))
	}
	for m, c := range coord {
		if c < 0 || int(c) >= t.Dims[m] {
			panic(fmt.Sprintf("tensor: coordinate %d out of range for mode %d (length %d)", c, m, t.Dims[m]))
		}
	}
	t.Inds = append(t.Inds, coord...)
	t.Vals = append(t.Vals, val)
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{
		Dims: append([]int(nil), t.Dims...),
		Inds: append([]int32(nil), t.Inds...),
		Vals: append([]float64(nil), t.Vals...),
	}
}

// PermuteModes returns a new tensor whose mode m is the receiver's mode
// perm[m]. Dims and every coordinate are rearranged accordingly. The
// non-zero order is preserved. It panics if perm is not a permutation of
// 0..order-1.
func (t *Tensor) PermuteModes(perm []int) *Tensor {
	d := t.Order()
	if err := CheckPerm(perm, d); err != nil {
		panic("tensor: " + err.Error())
	}
	out := &Tensor{
		Dims: make([]int, d),
		Inds: make([]int32, len(t.Inds)),
		Vals: append([]float64(nil), t.Vals...),
	}
	for m := 0; m < d; m++ {
		out.Dims[m] = t.Dims[perm[m]]
	}
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		src := t.Inds[k*d : (k+1)*d]
		dst := out.Inds[k*d : (k+1)*d]
		for m := 0; m < d; m++ {
			dst[m] = src[perm[m]]
		}
	}
	return out
}

// CheckPerm reports whether perm is a permutation of 0..n-1.
func CheckPerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
	return nil
}

// SortLex sorts the non-zeros lexicographically by coordinate (mode 0 is
// the most significant). Sorting is stable with respect to equal
// coordinates, which should not occur in a valid tensor (see Dedup).
//
// When the tensor's index space fits in 63 bits (every benchmark profile
// does), coordinates are packed into single uint64 keys and sorted by key,
// which is several times faster than comparator-based lexicographic
// sorting; otherwise a stable comparator sort is used.
func (t *Tensor) SortLex() {
	d := t.Order()
	nnz := t.NNZ()
	if nnz < 2 {
		return
	}
	if strides, ok := packStrides(t.Dims); ok {
		// pos is int64, not int32: leaf positions are nnz-scale and a
		// 100M+-nnz tensor would silently wrap a 32-bit position.
		type kv struct {
			key uint64
			pos int64
		}
		keys := make([]kv, nnz)
		for k := 0; k < nnz; k++ {
			c := t.Inds[k*d : (k+1)*d]
			key := uint64(0)
			for m := 0; m < d; m++ {
				key += strides[m] * uint64(c[m])
			}
			keys[k] = kv{key, int64(k)}
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a].key != keys[b].key {
				return keys[a].key < keys[b].key
			}
			return keys[a].pos < keys[b].pos // stability for duplicates
		})
		perm := make([]int, nnz)
		for i, e := range keys {
			perm[i] = int(e.pos)
		}
		t.applyPerm(perm)
		return
	}
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ca := t.Inds[perm[a]*d : perm[a]*d+d]
		cb := t.Inds[perm[b]*d : perm[b]*d+d]
		for m := 0; m < d; m++ {
			if ca[m] != cb[m] {
				return ca[m] < cb[m]
			}
		}
		return false
	})
	t.applyPerm(perm)
}

// packStrides returns per-mode strides packing a coordinate into a single
// uint64 key preserving lexicographic order, or ok == false if the index
// space exceeds 63 bits.
func packStrides(dims []int) ([]uint64, bool) {
	d := len(dims)
	strides := make([]uint64, d)
	s := uint64(1)
	for m := d - 1; m >= 0; m-- {
		strides[m] = s
		hi := s * uint64(dims[m])
		if dims[m] != 0 && hi/uint64(dims[m]) != s || hi >= 1<<63 {
			return nil, false
		}
		s = hi
	}
	return strides, true
}

// applyPerm reorders non-zeros so that new position i holds old position
// perm[i].
func (t *Tensor) applyPerm(perm []int) {
	d := t.Order()
	nnz := t.NNZ()
	inds := make([]int32, len(t.Inds))
	vals := make([]float64, nnz)
	for i, p := range perm {
		copy(inds[i*d:(i+1)*d], t.Inds[p*d:(p+1)*d])
		vals[i] = t.Vals[p]
	}
	t.Inds = inds
	t.Vals = vals
}

// Dedup sorts the tensor lexicographically and merges duplicate coordinates
// by summing their values. It returns the number of duplicates merged.
func (t *Tensor) Dedup() int {
	t.SortLex()
	d := t.Order()
	nnz := t.NNZ()
	if nnz == 0 {
		return 0
	}
	w := 0
	merged := 0
	for k := 1; k < nnz; k++ {
		if coordEq(t.Inds[w*d:(w+1)*d], t.Inds[k*d:(k+1)*d]) {
			t.Vals[w] += t.Vals[k]
			merged++
			continue
		}
		w++
		if w != k {
			copy(t.Inds[w*d:(w+1)*d], t.Inds[k*d:(k+1)*d])
			t.Vals[w] = t.Vals[k]
		}
	}
	t.Inds = t.Inds[:(w+1)*d]
	t.Vals = t.Vals[:w+1]
	return merged
}

func coordEq(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: coordinate ranges, arity and
// (optionally) absence of duplicates when requireSorted is set.
func (t *Tensor) Validate(requireSorted bool) error {
	d := t.Order()
	if d == 0 {
		if len(t.Inds) != 0 || len(t.Vals) != 0 {
			return fmt.Errorf("order-0 tensor with non-zeros")
		}
		return nil
	}
	if len(t.Inds) != len(t.Vals)*d {
		return fmt.Errorf("inds length %d inconsistent with nnz %d and order %d", len(t.Inds), len(t.Vals), d)
	}
	nnz := t.NNZ()
	for k := 0; k < nnz; k++ {
		c := t.Coord(k)
		for m := 0; m < d; m++ {
			if c[m] < 0 || int(c[m]) >= t.Dims[m] {
				return fmt.Errorf("nnz %d: coordinate %d out of range for mode %d (length %d)", k, c[m], m, t.Dims[m])
			}
		}
		if requireSorted && k > 0 {
			prev := t.Coord(k - 1)
			cmp := compareCoords(prev, c)
			if cmp > 0 {
				return fmt.Errorf("nnz %d: not sorted", k)
			}
			if cmp == 0 {
				return fmt.Errorf("nnz %d: duplicate coordinate", k)
			}
		}
	}
	return nil
}

func compareCoords(a, b []int32) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// NormFrobenius returns the Frobenius norm of the tensor, i.e. the square
// root of the sum of squared non-zero values.
func (t *Tensor) NormFrobenius() float64 {
	s := 0.0
	for _, v := range t.Vals {
		s += v * v
	}
	return math.Sqrt(s)
}

// String returns a short human-readable summary such as
// "tensor 100x200x300, nnz=4096".
func (t *Tensor) String() string {
	s := "tensor "
	for i, n := range t.Dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(n)
	}
	return fmt.Sprintf("%s, nnz=%d", s, t.NNZ())
}

package tensor

import (
	"fmt"
	"math/rand"
	"sort"
)

// Profile describes a synthetic benchmark tensor. Each profile mirrors one
// tensor from Table I of the paper, scaled down so that the full suite runs
// on a laptop-class machine: mode lengths keep their relative order and
// characteristic structure (e.g. vast-2015-mc1-* keeps its length-2 mode
// with a ~94/6 split, which is what produces the paper's 1674% root-slice
// imbalance), and the per-mode skew exponents control fiber-length profiles
// so the model's memoize/swap decisions face the same trade-offs.
type Profile struct {
	// Name is the tensor's name as used in the paper (Table I).
	Name string
	// Dims are the scaled mode lengths.
	Dims []int
	// NNZ is the scaled number of non-zeros to generate.
	NNZ int
	// Skew holds one Zipf exponent per mode: 0 means uniform sampling,
	// a value s > 1 samples coordinates from Zipf(s, 1, dim-1) so that a
	// few indices dominate. Large exponents on short modes concentrate
	// nearly all non-zeros in one slice.
	Skew []float64
	// Seed is the deterministic generation seed.
	Seed int64
}

// Profiles returns the full scaled benchmark suite in Table I order.
// The returned slice is freshly allocated and safe to modify.
func Profiles() []Profile {
	return []Profile{
		{Name: "chicago-crime-comm", Dims: []int{600, 24, 77, 32}, NNZ: 100_000, Skew: []float64{1.2, 0, 0, 0}, Seed: 101},
		{Name: "chicago-crime-geo", Dims: []int{600, 24, 380, 395, 32}, NNZ: 100_000, Skew: []float64{1.2, 0, 0, 0, 0}, Seed: 102},
		{Name: "delicious-3d", Dims: []int{5_330, 170_000, 20_000}, NNZ: 300_000, Skew: []float64{1.1, 0, 1.6}, Seed: 103},
		{Name: "delicious-4d", Dims: []int{5_330, 170_000, 20_000, 1_000}, NNZ: 300_000, Skew: []float64{1.1, 0, 1.6, 1.3}, Seed: 104},
		{Name: "enron", Dims: []int{600, 600, 24_400, 1_000}, NNZ: 150_000, Skew: []float64{1.3, 1.3, 0, 1.2}, Seed: 105},
		{Name: "flickr-3d", Dims: []int{3_200, 280_000, 20_000}, NNZ: 250_000, Skew: []float64{1.2, 0, 1.4}, Seed: 106},
		{Name: "flickr-4d", Dims: []int{3_200, 280_000, 20_000, 731}, NNZ: 250_000, Skew: []float64{1.2, 0, 1.4, 1.2}, Seed: 107},
		{Name: "freebase_music", Dims: []int{230_000, 230_000, 166}, NNZ: 250_000, Skew: []float64{1.1, 1.1, 1.2}, Seed: 108},
		{Name: "freebase_sampled", Dims: []int{380_000, 380_000, 533}, NNZ: 250_000, Skew: []float64{1.1, 1.1, 1.2}, Seed: 109},
		{Name: "lbnl-network", Dims: []int{500, 1_000, 500, 1_000, 8_680}, NNZ: 50_000, Skew: []float64{1.2, 1.2, 1.2, 1.2, 0}, Seed: 110},
		{Name: "nell-1", Dims: []int{30_000, 20_000, 250_000}, NNZ: 300_000, Skew: []float64{1.2, 1.2, 0}, Seed: 111},
		{Name: "nell-2", Dims: []int{1_200, 900, 2_900}, NNZ: 200_000, Skew: []float64{1.1, 1.1, 1.1}, Seed: 112},
		{Name: "nips", Dims: []int{2_000, 3_000, 14_000, 17}, NNZ: 100_000, Skew: []float64{1.2, 1.2, 0, 1.1}, Seed: 113},
		{Name: "uber", Dims: []int{183, 24, 1_000, 2_000}, NNZ: 100_000, Skew: []float64{1.1, 0, 1.2, 0}, Seed: 114},
		{Name: "vast-2015-mc1-3d", Dims: []int{16_500, 1_100, 2}, NNZ: 150_000, Skew: []float64{1.1, 1.1, 4.0}, Seed: 115},
		{Name: "vast-2015-mc1-5d", Dims: []int{16_500, 1_100, 2, 100, 89}, NNZ: 150_000, Skew: []float64{1.1, 1.1, 4.0, 1.1, 1.1}, Seed: 116},
	}
}

// ProfileByName returns the profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("tensor: unknown profile %q", name)
}

// ProfileNames returns all profile names in Table I order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Generate materialises the profile as a sparse tensor with unique,
// lexicographically sorted coordinates and uniform values in [0.5, 1.5).
func (p Profile) Generate() *Tensor {
	return Random(p.Dims, p.NNZ, p.Skew, p.Seed)
}

// Random generates a sparse tensor with nnz unique non-zeros. Coordinates
// on mode m are sampled uniformly when skew[m] == 0 and from a Zipf
// distribution with exponent skew[m] otherwise (skew may be nil for all
// uniform). If the index space is too concentrated to yield nnz unique
// coordinates within a generous attempt budget, the tensor is returned with
// as many unique non-zeros as were found.
func Random(dims []int, nnz int, skew []float64, seed int64) *Tensor {
	d := len(dims)
	if skew != nil && len(skew) != d {
		panic(fmt.Sprintf("tensor: skew length %d does not match order %d", len(skew), d))
	}
	space := 1.0
	for _, n := range dims {
		space *= float64(n)
	}
	if float64(nnz) > space {
		panic(fmt.Sprintf("tensor: requested %d non-zeros exceeds index space %.0f", nnz, space))
	}
	rng := rand.New(rand.NewSource(seed))
	samplers := make([]func() int32, d)
	for m := 0; m < d; m++ {
		n := dims[m]
		if skew == nil || skew[m] == 0 || n == 1 {
			nm := int32(n)
			samplers[m] = func() int32 { return rng.Int31n(nm) }
		} else {
			// Zipf mass concentrates on small sampled values, which would
			// leave every hot index clustered at the front of the mode — an
			// accident of the generator that no real tensor shares (ids are
			// not popularity-sorted). Scatter through a fixed random
			// bijection so hot indices land anywhere in the index space;
			// every multiset statistic (fiber counts, slice sizes, row-write
			// histograms) is preserved up to relabeling.
			z := rand.NewZipf(rng, skew[m], 1, uint64(n-1))
			scatter := rng.Perm(n)
			samplers[m] = func() int32 { return int32(scatter[z.Uint64()]) }
		}
	}
	// Coordinates are packed into a single uint64 key for dedup; every
	// profile's index-space product fits in 63 bits.
	strides := make([]uint64, d)
	s := uint64(1)
	for m := d - 1; m >= 0; m-- {
		strides[m] = s
		s *= uint64(dims[m])
	}
	seen := make(map[uint64]struct{}, nnz)
	t := New(dims, nnz)
	coord := make([]int32, d)
	budget := 60 * nnz
	for len(t.Vals) < nnz && budget > 0 {
		budget--
		key := uint64(0)
		for m := 0; m < d; m++ {
			coord[m] = samplers[m]()
			key += strides[m] * uint64(coord[m])
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		t.Append(coord, 0.5+rng.Float64())
	}
	t.SortLex()
	return t
}

// HugeDims returns the mode lengths of the int32-boundary stress tensor:
// two modes sit just under 2^31 (the largest dimensions New admits), and
// one mode stays small so the CSF root level — whose output rows are
// materialised densely — remains allocatable. The values are primes-ish
// offsets below 2^31 so off-by-one arithmetic cannot hide behind round
// numbers.
func HugeDims() []int { return []int{64, 1<<31 - 9, 1<<31 - 3} }

// HugeBoundary generates a huge-dimension/small-nnz tensor for index-width
// boundary testing: the all-low and all-high corners plus one per-mode
// high corner are always present (so fiber ids at exactly dims[m]-1 flow
// through CSF construction, serialization and the kernels), and the rest
// is uniform random fill. Coordinates are deduplicated and sorted.
//
// Unlike Random, the dedup key is the coordinate tuple itself, not a
// packed linear key: a near-2^31 dims product overflows 63 bits, which is
// the very regime this generator exists to probe.
func HugeBoundary(dims []int, nnz int, seed int64) *Tensor {
	d := len(dims)
	rng := rand.New(rand.NewSource(seed))
	t := New(dims, nnz)
	seen := make(map[string]struct{}, nnz)
	buf := make([]byte, d*4)
	add := func(coord []int32, v float64) {
		for m, c := range coord {
			buf[m*4] = byte(c)
			buf[m*4+1] = byte(c >> 8)
			buf[m*4+2] = byte(c >> 16)
			buf[m*4+3] = byte(c >> 24)
		}
		if _, dup := seen[string(buf)]; dup {
			return
		}
		seen[string(buf)] = struct{}{}
		t.Append(coord, v)
	}
	coord := make([]int32, d)
	hi := func(m int) int32 { return int32(dims[m] - 1) }
	for m := range coord {
		coord[m] = 0
	}
	add(coord, 0.5+rng.Float64()) // all-low corner
	for m := range coord {
		coord[m] = hi(m)
	}
	add(coord, 0.5+rng.Float64()) // all-high corner
	for axis := 0; axis < d; axis++ {
		for m := range coord {
			coord[m] = 0
		}
		coord[axis] = hi(axis)
		add(coord, 0.5+rng.Float64()) // one boundary coordinate per mode
	}
	budget := 60 * nnz
	for len(t.Vals) < nnz && budget > 0 {
		budget--
		for m := range coord {
			coord[m] = rng.Int31n(int32(dims[m]))
		}
		add(coord, 0.5+rng.Float64())
	}
	t.SortLex()
	return t
}

// LengthSortedPerm returns the mode permutation that sorts dims in
// increasing length (ties broken by original mode index) — the common CSF
// mode-order heuristic referenced in Section II-B of the paper. perm[m]
// gives the original mode placed at CSF level m (level 0 is the root).
func LengthSortedPerm(dims []int) []int {
	perm := make([]int, len(dims))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return dims[perm[a]] < dims[perm[b]] })
	return perm
}

//go:build !lifetrace

package cpd

// lifeAcquire and lifeRelease are the disabled forms of the workspace
// lifetime oracle; both inline to nothing. Build with -tags lifetrace for
// the registry implementation (life_on.go), which panics on
// acquire-while-in-flight and double-release and NaN-poisons released
// workspaces.
func lifeAcquire(Workspace) {}

func lifeRelease(Workspace) {}

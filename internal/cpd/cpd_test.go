package cpd

import (
	"math"
	"testing"
	"time"

	"stef/internal/tensor"
)

// rankKTensor builds a dense-ish sparse tensor that is exactly rank k, so
// CPD with rank >= k should reach fit ~1.
func rankKTensor(dims []int, k int, seed int64) *tensor.Tensor {
	factors := tensor.RandomFactors(dims, k, seed)
	t := tensor.New(dims, 0)
	d := len(dims)
	coord := make([]int32, d)
	var rec func(m int)
	rec = func(m int) {
		if m == d {
			v := 0.0
			for r := 0; r < k; r++ {
				p := 1.0
				for mm := 0; mm < d; mm++ {
					p *= factors[mm].At(int(coord[mm]), r)
				}
				v += p
			}
			t.Append(coord, v)
			return
		}
		for i := 0; i < dims[m]; i++ {
			coord[m] = int32(i)
			rec(m + 1)
		}
	}
	rec(0)
	return t
}

func TestNaiveCPDRecoversLowRank(t *testing.T) {
	tt := rankKTensor([]int{6, 5, 4}, 2, 11)
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt), Options{Rank: 3, MaxIters: 60, Tol: 1e-9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFit() < 0.999 {
		t.Fatalf("fit %.5f on an exactly rank-2 tensor; fits: %v", res.FinalFit(), res.Fits)
	}
}

func TestFitMonotoneNonDecreasing(t *testing.T) {
	tt := tensor.Random([]int{8, 9, 10}, 300, nil, 3)
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt), Options{Rank: 4, MaxIters: 15, Tol: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Fits); i++ {
		if res.Fits[i] < res.Fits[i-1]-1e-8 {
			t.Fatalf("fit decreased: %v", res.Fits)
		}
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	tt := rankKTensor([]int{5, 5, 5}, 1, 2)
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt), Options{Rank: 2, MaxIters: 100, Tol: 1e-7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("expected convergence on a rank-1 tensor")
	}
	if res.Iters >= 100 {
		t.Fatalf("did not stop early: %d iters", res.Iters)
	}
}

// badOrderEngine wraps an engine and reports a non-permutation update
// order, to exercise the driver's validation.
type badOrderEngine struct{ Engine }

func (badOrderEngine) UpdateOrder() []int { return []int{0, 0, 2} }

func TestRunRejectsBadOrder(t *testing.T) {
	tt := tensor.Random([]int{4, 4, 4}, 20, nil, 1)
	eng := badOrderEngine{NaiveEngine(tt)}
	if _, err := Run(tt.Dims, tt.NormFrobenius(), eng, Options{Rank: 2}); err == nil {
		t.Fatal("expected error for invalid update order")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.fill()
	if o.MaxIters != 50 || o.Rank != 16 || o.Tol != 1e-5 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestResultFinalFitEmpty(t *testing.T) {
	r := &Result{}
	if !math.IsNaN(r.FinalFit()) {
		t.Fatal("empty result should have NaN fit")
	}
}

func TestRegularizationStabilises(t *testing.T) {
	// Rank-3 decomposition of a rank-1 tensor makes V singular; with
	// ridge regularization the run must stay finite and still fit well.
	tt := rankKTensor([]int{5, 5, 5}, 1, 8)
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt),
		Options{Rank: 3, MaxIters: 30, Tol: -1, Seed: 1, Regularization: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range res.Factors {
		for _, v := range f.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("mode %d produced non-finite factor", m)
			}
		}
	}
	if res.FinalFit() < 0.99 {
		t.Fatalf("regularised fit %.4f", res.FinalFit())
	}
}

func TestTimeBudgetStopsEarly(t *testing.T) {
	tt := tensor.Random([]int{20, 25, 30}, 3000, nil, 9)
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt),
		Options{Rank: 8, MaxIters: 10000, Tol: -1, Seed: 1, TimeBudget: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 10000 {
		t.Fatalf("time budget ignored: %d iterations", res.Iters)
	}
	if res.Iters < 1 {
		t.Fatal("no iterations completed")
	}
}

// TestFitMatchesBruteForce validates the Gram-based fit identity against a
// dense reconstruction of the model over every cell of a small tensor.
func TestFitMatchesBruteForce(t *testing.T) {
	dims := []int{4, 5, 3}
	tt := tensor.Random(dims, 30, nil, 6)
	normX := tt.NormFrobenius()
	res, err := Run(dims, normX, NaiveEngine(tt), Options{Rank: 3, MaxIters: 7, Tol: -1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: residual² = Σ_cells (X[c] - model(c))².
	vals := map[[3]int32]float64{}
	for k := 0; k < tt.NNZ(); k++ {
		c := tt.Coord(k)
		vals[[3]int32{c[0], c[1], c[2]}] = tt.Vals[k]
	}
	resid2 := 0.0
	for i := int32(0); i < int32(dims[0]); i++ {
		for j := int32(0); j < int32(dims[1]); j++ {
			for k := int32(0); k < int32(dims[2]); k++ {
				x := vals[[3]int32{i, j, k}]
				m := res.Predict([]int32{i, j, k})
				resid2 += (x - m) * (x - m)
			}
		}
	}
	wantFit := 1 - math.Sqrt(resid2)/normX
	if got := res.FinalFit(); math.Abs(got-wantFit) > 1e-10 {
		t.Fatalf("fit identity %.12f vs brute force %.12f", got, wantFit)
	}
}

func TestWarmStart(t *testing.T) {
	tt := rankKTensor([]int{6, 5, 4}, 2, 11)
	normX := tt.NormFrobenius()
	first, err := Run(tt.Dims, normX, NaiveEngine(tt), Options{Rank: 2, MaxIters: 60, Tol: 1e-10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if first.FinalFit() < 0.999 {
		t.Skipf("cold run did not converge (fit %.4f)", first.FinalFit())
	}
	// Warm-starting from the converged factors must converge immediately.
	warm, err := Run(tt.Dims, normX, NaiveEngine(tt),
		Options{Rank: 2, MaxIters: 60, Tol: 1e-8, InitialFactors: first.Factors})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iters > 3 {
		t.Fatalf("warm start took %d iterations", warm.Iters)
	}
	if warm.FinalFit() < first.FinalFit()-1e-6 {
		t.Fatalf("warm fit %.6f below cold fit %.6f", warm.FinalFit(), first.FinalFit())
	}
}

func TestWarmStartShapeErrors(t *testing.T) {
	tt := tensor.Random([]int{4, 5, 6}, 30, nil, 1)
	bad := tensor.RandomFactors([]int{4, 5}, 2, 1)
	if _, err := Run(tt.Dims, 1, NaiveEngine(tt), Options{Rank: 2, InitialFactors: bad}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	bad2 := tensor.RandomFactors([]int{4, 5, 7}, 2, 1)
	if _, err := Run(tt.Dims, 1, NaiveEngine(tt), Options{Rank: 2, InitialFactors: bad2}); err == nil {
		t.Fatal("wrong shape accepted")
	}
}

func TestLambdaAbsorbsScale(t *testing.T) {
	// A tensor scaled by 1000 should converge to the same fit; lambda
	// absorbs the magnitude.
	tt := rankKTensor([]int{5, 4, 3}, 2, 9)
	scaled := tt.Clone()
	for i := range scaled.Vals {
		scaled.Vals[i] *= 1000
	}
	res, err := Run(scaled.Dims, scaled.NormFrobenius(), NaiveEngine(scaled), Options{Rank: 2, MaxIters: 60, Tol: 1e-10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFit() < 0.999 {
		t.Fatalf("fit %.5f on scaled rank-2 tensor", res.FinalFit())
	}
	maxL := 0.0
	for _, l := range res.Lambda {
		if l > maxL {
			maxL = l
		}
	}
	if maxL < 10 {
		t.Fatalf("lambda %v did not absorb the x1000 scale", res.Lambda)
	}
}

// Package cpd implements the CPD-ALS algorithm (Algorithm 2 of the paper)
// on top of a pluggable MTTKRP engine. STeF, STeF2 and every baseline
// implement the Engine interface; the driver supplies the dense parts of
// the iteration: V via Hadamard products of Gram matrices, the SPD solve,
// column normalisation, and fit-based convergence.
//
// Execution is split into three layers. An Engine is immutable once
// constructed — CSF trees, partitions, memo configuration — and safe to
// share across goroutines. All mutable per-solve state (memo partials,
// output buffers, per-thread scratch) lives in a Workspace the engine
// manufactures via NewWorkspace and receives explicitly on every Compute
// call. A Solver pairs an engine with a sync.Pool of workspaces so that
// repeated or concurrent solves reuse buffers instead of reallocating them.
package cpd

import (
	"fmt"
	"math"
	"time"

	"stef/internal/dense"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

// A Workspace holds the mutable per-solve state of one Engine: memo
// partials, privatised output buffers, per-thread scratch vectors. A
// workspace may be reused across solves (via Solver's pool) but must never
// be used by two Compute sequences concurrently; concurrency is achieved
// by acquiring one workspace per goroutine while sharing the engine.
type Workspace interface {
	// Reset prepares the workspace for a fresh solve sequence. Engines
	// whose buffers are unconditionally overwritten at the start of each
	// iteration may make this a no-op; engines that cache results across
	// Compute calls (e.g. dimension trees) must invalidate them here.
	Reset()
}

// Engine produces the sequence of MTTKRP results for one CPD iteration.
// Implementations must be immutable after construction: Compute may write
// only into the supplied workspace and output matrix, never into engine
// state, so one engine can serve concurrent solves that each bring their
// own workspace.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// UpdateOrder lists original mode indices in update order. The driver
	// updates factor matrices in this sequence; engines that memoize
	// partial results need the update order to match their CSF level order
	// so saved partials remain valid (a P^(l) only involves factors of
	// deeper levels, which have not yet been updated when level l is
	// processed). The returned slice must not be mutated by callers.
	UpdateOrder() []int
	// NewWorkspace allocates a workspace sized for this engine. The
	// returned workspace is ready for use without a prior Reset.
	NewWorkspace() Workspace
	// Compute fills out with the MTTKRP for UpdateOrder()[pos], given the
	// current factor matrices (indexed by original mode). out has shape
	// Dims[UpdateOrder()[pos]] × R and may contain stale data on entry.
	// ws must have been produced by this engine's NewWorkspace.
	Compute(ws Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix)
}

// Options configures a CPD run.
type Options struct {
	// Rank is the number of decomposition components R.
	Rank int
	// MaxIters bounds the number of ALS iterations (default 50).
	MaxIters int
	// Tol stops the iteration when the fit improves by less than Tol
	// (default 1e-5). Set negative to always run MaxIters.
	Tol float64
	// Seed seeds the random initial factors.
	Seed int64
	// NonNegative projects every factor update onto the non-negative
	// orthant (projected ALS), the simple multiplicative-free variant of
	// non-negative CPD. Useful for count data where negative loadings
	// are uninterpretable.
	NonNegative bool
	// Regularization adds λ_reg·I to every normal-equation matrix V
	// (ridge/Tikhonov), stabilising ill-conditioned updates at the cost
	// of slightly biased factors.
	Regularization float64
	// TimeBudget stops the iteration after the first iteration that
	// finishes past this wall-clock budget (0 = unlimited).
	TimeBudget time.Duration
	// InitialFactors warm-starts the iteration from the given factor
	// matrices (cloned, indexed by mode) instead of random ones —
	// e.g. to resume a checkpointed decomposition (see LoadKruskal).
	InitialFactors []*tensor.Matrix
}

func (o *Options) fill() {
	if o.MaxIters == 0 {
		o.MaxIters = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.Rank <= 0 {
		o.Rank = 16
	}
}

// Result holds a completed decomposition.
type Result struct {
	// Factors are the final factor matrices with unit-normalised
	// columns, indexed by original mode.
	Factors []*tensor.Matrix
	// Lambda holds the component weights absorbed during normalisation.
	Lambda []float64
	// Fits records the model fit (1 - relative residual) after each
	// iteration.
	Fits []float64
	// Iters is the number of completed iterations.
	Iters int
	// Converged reports whether the fit tolerance was met before
	// MaxIters.
	Converged bool
	// MTTKRPTime accumulates wall time spent inside Engine.Compute.
	MTTKRPTime time.Duration
	// ModeTime accumulates Engine.Compute wall time per original mode,
	// across all iterations — the per-mode breakdown that exposes which
	// MTTKRP dominates (e.g. the leaf-mode MTTV that motivates STeF2).
	ModeTime []time.Duration
}

// FinalFit returns the fit after the last iteration (NaN if none ran).
func (r *Result) FinalFit() float64 {
	if len(r.Fits) == 0 {
		return math.NaN()
	}
	return r.Fits[len(r.Fits)-1]
}

// Run executes CPD-ALS with the given engine using a freshly allocated
// workspace. dims are the tensor's mode lengths and normX its Frobenius
// norm (used for the fit). Callers that solve repeatedly should pool
// workspaces through a Solver instead.
func Run(dims []int, normX float64, eng Engine, opts Options) (*Result, error) {
	return RunWith(dims, normX, eng, eng.NewWorkspace(), opts)
}

// RunWith executes CPD-ALS with the given engine and workspace. The
// workspace is Reset before use and remains owned by the caller, which
// makes repeated solves on a pooled workspace allocation-free in steady
// state: every buffer the iteration needs is either part of the workspace
// or hoisted out of the ALS loop below.
func RunWith(dims []int, normX float64, eng Engine, ws Workspace, opts Options) (*Result, error) {
	opts.fill()
	d := len(dims)
	order := eng.UpdateOrder()
	if err := tensor.CheckPerm(order, d); err != nil {
		return nil, fmt.Errorf("cpd: engine %q: %w", eng.Name(), err)
	}
	r := opts.Rank
	var factors []*tensor.Matrix
	if opts.InitialFactors != nil {
		if len(opts.InitialFactors) != d {
			return nil, fmt.Errorf("cpd: %d initial factors for order-%d tensor", len(opts.InitialFactors), d)
		}
		factors = make([]*tensor.Matrix, d)
		for m, f := range opts.InitialFactors {
			if f.Rows != dims[m] || f.Cols != r {
				//lint:allow hotpath-alloc one-time input validation, cold error path
				return nil, fmt.Errorf("cpd: initial factor %d has shape %dx%d, want %dx%d", m, f.Rows, f.Cols, dims[m], r)
			}
			factors[m] = f.Clone()
		}
	} else {
		factors = tensor.RandomFactors(dims, r, opts.Seed)
	}
	grams := make([]*tensor.Matrix, d)
	for m := 0; m < d; m++ {
		grams[m] = dense.Gram(factors[m], nil)
	}
	mttkrp := make([]*tensor.Matrix, d)
	for m := 0; m < d; m++ {
		mttkrp[m] = tensor.NewMatrix(dims[m], r)
	}
	lambda := make([]float64, r)
	res := &Result{Factors: factors, Lambda: lambda, ModeTime: make([]time.Duration, d)}
	res.Fits = make([]float64, 0, opts.MaxIters)
	lastMode := order[d-1]
	prevFit := math.Inf(-1)
	deadline := time.Time{}
	if opts.TimeBudget > 0 {
		deadline = time.Now().Add(opts.TimeBudget)
	}

	// Everything the per-mode update needs is allocated once here; the
	// iteration below reuses these buffers so a pooled workspace's solve
	// does no per-iteration heap allocation.
	v := tensor.NewMatrix(r, r)
	fitG := tensor.NewMatrix(r, r)
	norms := make([]float64, r)
	var chol dense.Cholesky
	ws.Reset()

	for it := 0; it < opts.MaxIters; it++ {
		for pos := 0; pos < d; pos++ {
			m := order[pos]
			start := time.Now()
			eng.Compute(ws, pos, factors, mttkrp[m])
			el := time.Since(start)
			res.MTTKRPTime += el
			res.ModeTime[m] += el

			// V = Hadamard product of the other modes' Grams.
			dense.OnesInto(v)
			for mm := 0; mm < d; mm++ {
				if mm != m {
					dense.HadamardInto(v, grams[mm])
				}
			}
			if opts.Regularization > 0 {
				for p := 0; p < r; p++ {
					v.Set(p, p, v.At(p, p)+opts.Regularization)
				}
			}
			if err := chol.Refactor(v); err != nil {
				//lint:allow hotpath-alloc cold error path, aborts the iteration
				return nil, fmt.Errorf("cpd: engine %q iteration %d mode %d: %w", eng.Name(), it, m, err)
			}
			factors[m].CopyFrom(mttkrp[m])
			chol.SolveRowsInPlace(factors[m])
			if opts.NonNegative {
				for i, v := range factors[m].Data {
					if v < 0 {
						factors[m].Data[i] = 0
					}
				}
			}

			if it == 0 {
				dense.NormalizeColumnsInto(factors[m], norms)
			} else {
				dense.NormalizeColumnsMaxInto(factors[m], norms)
			}
			copy(lambda, norms)
			dense.Gram(factors[m], grams[m])
		}

		fit := computeFit(normX, factors, grams, lambda, mttkrp[lastMode], lastMode, fitG)
		//lint:allow hotpath-alloc append stays within the MaxIters capacity reserved above
		res.Fits = append(res.Fits, fit)
		res.Iters = it + 1
		if math.Abs(fit-prevFit) < opts.Tol {
			res.Converged = true
			break
		}
		prevFit = fit
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
	}
	return res, nil
}

// computeFit evaluates 1 - ||X - model||_F / ||X||_F using the standard
// identity: ||X - M||² = ||X||² + ||M||² - 2<X, M>, where <X, M> is
// recovered from the last MTTKRP result (already available) and ||M||² from
// the Gram matrices and lambda. g is an R×R scratch matrix overwritten here.
func computeFit(normX float64, factors []*tensor.Matrix, grams []*tensor.Matrix, lambda []float64, lastMTTKRP *tensor.Matrix, lastMode int, g *tensor.Matrix) float64 {
	r := len(lambda)
	// ||M||² = λᵀ (G_0 ⊙ G_1 ⊙ ... ⊙ G_{d-1}) λ
	dense.OnesInto(g)
	for _, gm := range grams {
		dense.HadamardInto(g, gm)
	}
	normM2 := 0.0
	for p := 0; p < r; p++ {
		row := g.Row(p)
		for q := 0; q < r; q++ {
			normM2 += lambda[p] * lambda[q] * row[q]
		}
	}
	// <X, M> = Σ_{i,p} MTTKRP_last[i,p] · A_last[i,p] · λ[p]
	inner := 0.0
	a := factors[lastMode]
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		mr := lastMTTKRP.Row(i)
		for p := 0; p < r; p++ {
			inner += mr[p] * ar[p] * lambda[p]
		}
	}
	resid2 := normX*normX + normM2 - 2*inner
	if resid2 < 0 {
		resid2 = 0
	}
	if normX == 0 {
		return 1
	}
	return 1 - math.Sqrt(resid2)/normX
}

// naiveEngine computes every MTTKRP straight from the COO tensor (no CSF,
// no memoization, no parallelism). Its workspace is empty: Reference
// allocates per call, which is fine for a ground-truth engine.
type naiveEngine struct {
	t     *tensor.Tensor
	order []int
}

// naiveWorkspace is the empty workspace of the naive engine.
type naiveWorkspace struct{}

// Reset is a no-op: the naive engine keeps no state between calls.
func (naiveWorkspace) Reset() {}

func (e *naiveEngine) Name() string { return "naive" }

func (e *naiveEngine) UpdateOrder() []int { return e.order }

func (e *naiveEngine) NewWorkspace() Workspace { return naiveWorkspace{} }

func (e *naiveEngine) Compute(_ Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	ref := kernels.Reference(e.t, factors, pos)
	out.CopyFrom(ref)
}

// NaiveEngine returns a correctness-first engine that computes every MTTKRP
// straight from the COO tensor (no CSF, no memoization, no parallelism).
// It is the ground truth for engine equivalence tests.
func NaiveEngine(t *tensor.Tensor) Engine {
	d := t.Order()
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	return &naiveEngine{t: t, order: order}
}

package cpd

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"stef/internal/tensor"
)

func sampleResult() *Result {
	factors := tensor.RandomFactors([]int{4, 5, 3}, 2, 7)
	return &Result{Factors: factors, Lambda: []float64{2.5, 0.5}}
}

func TestPredictMatchesExplicitSum(t *testing.T) {
	r := sampleResult()
	coord := []int32{3, 1, 2}
	want := 0.0
	for p := 0; p < 2; p++ {
		want += r.Lambda[p] * r.Factors[0].At(3, p) * r.Factors[1].At(1, p) * r.Factors[2].At(2, p)
	}
	if got := r.Predict(coord); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Predict = %g, want %g", got, want)
	}
}

func TestPredictArityPanics(t *testing.T) {
	r := sampleResult()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Predict([]int32{0, 0})
}

func TestKruskalRoundTrip(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := WriteKruskal(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadKruskal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Lambda) != 2 || back.Lambda[0] != 2.5 {
		t.Fatalf("lambda %v", back.Lambda)
	}
	for m := range r.Factors {
		if d := back.Factors[m].MaxAbsDiff(r.Factors[m]); d != 0 {
			t.Fatalf("mode %d differs by %g", m, d)
		}
	}
}

func TestKruskalFileRoundTrip(t *testing.T) {
	r := sampleResult()
	path := filepath.Join(t.TempDir(), "k.txt")
	if err := SaveKruskal(path, r); err != nil {
		t.Fatal(err)
	}
	back, err := LoadKruskal(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Predict([]int32{0, 0, 0}) != r.Predict([]int32{0, 0, 0}) {
		t.Fatal("prediction changed after round trip")
	}
}

func TestReadKruskalErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "nonsense 3 2\n",
		"short lambda": "ktensor 2 3\n1 2\n",
		"bad mode":     "ktensor 1 1\n1\nmode 9 2\n1\n1\n",
		"missing rows": "ktensor 1 2\n1 1\nmode 0 3\n1 2\n",
		"bad value":    "ktensor 1 1\nx\nmode 0 1\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadKruskal(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRMSE(t *testing.T) {
	r := sampleResult()
	tt := tensor.New([]int{4, 5, 3}, 2)
	tt.Append([]int32{0, 0, 0}, r.Predict([]int32{0, 0, 0}))
	tt.Append([]int32{1, 2, 1}, r.Predict([]int32{1, 2, 1})+3)
	// One exact entry, one off by 3: RMSE = 3/sqrt(2).
	if got, want := r.RMSE(tt), 3/math.Sqrt2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
	empty := tensor.New([]int{4, 5, 3}, 0)
	if r.RMSE(empty) != 0 {
		t.Fatal("empty-tensor RMSE not 0")
	}
}

func TestNonNegativeCPD(t *testing.T) {
	tt := rankKTensor([]int{6, 5, 4}, 2, 31) // built from positive factors
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt),
		Options{Rank: 3, MaxIters: 40, Tol: 1e-8, Seed: 3, NonNegative: true})
	if err != nil {
		t.Fatal(err)
	}
	for m, f := range res.Factors {
		for _, v := range f.Data {
			if v < 0 {
				t.Fatalf("mode %d has negative loading %g", m, v)
			}
		}
	}
	if res.FinalFit() < 0.95 {
		t.Fatalf("non-negative fit %.4f too low on a non-negative rank-2 tensor", res.FinalFit())
	}
}

// TestPredictAfterDecompose: decomposing an exactly low-rank tensor must
// predict held-in entries accurately.
func TestPredictAfterDecompose(t *testing.T) {
	tt := rankKTensor([]int{6, 5, 4}, 2, 21)
	res, err := Run(tt.Dims, tt.NormFrobenius(), NaiveEngine(tt), Options{Rank: 2, MaxIters: 80, Tol: 1e-11, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFit() < 0.999 {
		t.Skipf("ALS landed in a poor local optimum (fit %.4f); prediction check not meaningful", res.FinalFit())
	}
	worst := 0.0
	for k := 0; k < tt.NNZ(); k++ {
		got := res.Predict(tt.Coord(k))
		if diff := math.Abs(got - tt.Vals[k]); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-2*tt.NormFrobenius() {
		t.Fatalf("worst prediction error %g too large", worst)
	}
}

package cpd

import "sync"

// A Solver pairs an immutable Engine with a pool of its workspaces, giving
// compile-once/solve-many callers allocation-free repeated solves and safe
// concurrent solves: the engine is shared, each in-flight solve draws its
// own workspace from the pool.
type Solver struct {
	eng  Engine
	pool sync.Pool
}

// NewSolver wraps eng in a workspace-pooling solver.
func NewSolver(eng Engine) *Solver {
	s := &Solver{eng: eng}
	s.pool.New = func() interface{} { return s.eng.NewWorkspace() }
	return s
}

// Engine returns the wrapped engine.
func (s *Solver) Engine() Engine { return s.eng }

// Acquire returns a Reset workspace from the pool. Callers must Release it
// when the solve completes; each workspace may serve only one solve at a
// time, and nothing reachable from it may outlive the Release.
//
// life: return pooled
func (s *Solver) Acquire() Workspace {
	ws := s.pool.Get().(Workspace)
	lifeAcquire(ws)
	ws.Reset()
	return ws
}

// Release returns a workspace to the pool for reuse. The workspace and
// everything reachable from it (memo partials, output buffers, scratch)
// must not be touched afterwards.
//
// life: ws releases
func (s *Solver) Release(ws Workspace) {
	lifeRelease(ws)
	s.pool.Put(ws)
}

// Run executes one CPD-ALS solve on a pooled workspace. It is safe to call
// concurrently: parallel calls share the engine's immutable plan and each
// use their own workspace.
func (s *Solver) Run(dims []int, normX float64, opts Options) (*Result, error) {
	ws := s.Acquire()
	defer s.Release(ws)
	return RunWith(dims, normX, s.eng, ws, opts)
}

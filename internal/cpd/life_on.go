//go:build lifetrace

package cpd

import "sync"

// The lifetrace workspace registry: every pooled workspace carries a
// lifecycle state, transitions are checked under a process-wide lock, and
// released workspaces are NaN-poisoned through the lifePoisonable hooks
// (implemented by core.Workspace under the same build tag). Together with
// the kernel-entry stamp checks this guarantees that (a) no workspace ever
// serves two in-flight solves, (b) a read after Release either panics at
// the next kernel entry or surfaces as NaN in results — never as silently
// wrong factors.

type lifeState uint8

const (
	lifeInFlight lifeState = iota + 1
	lifeReleased
)

// lifePoisonable is implemented by workspaces that can poison and revive
// their internal buffers; workspaces without the hooks are still
// state-checked, just not poisoned.
type lifePoisonable interface {
	LifePoison()
	LifeUnpoison()
}

var (
	lifeMu sync.Mutex
	lifeWS = make(map[Workspace]lifeState)
)

func lifeAcquire(ws Workspace) {
	lifeMu.Lock()
	defer lifeMu.Unlock()
	if lifeWS[ws] == lifeInFlight {
		panic("cpd: lifetrace: workspace acquired while serving an in-flight solve")
	}
	if lifeWS[ws] == lifeReleased {
		if p, ok := ws.(lifePoisonable); ok {
			p.LifeUnpoison()
		}
	}
	lifeWS[ws] = lifeInFlight
}

func lifeRelease(ws Workspace) {
	lifeMu.Lock()
	defer lifeMu.Unlock()
	if lifeWS[ws] == lifeReleased {
		panic("cpd: lifetrace: workspace released twice")
	}
	lifeWS[ws] = lifeReleased
	if p, ok := ws.(lifePoisonable); ok {
		p.LifePoison()
	}
}

package cpd

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"stef/internal/tensor"
)

// Predict evaluates the Kruskal model at one coordinate:
// Σ_r λ_r · Π_m A^(m)[coord[m], r].
func (r *Result) Predict(coord []int32) float64 {
	if len(coord) != len(r.Factors) {
		panic(fmt.Sprintf("cpd: coordinate arity %d, want %d", len(coord), len(r.Factors)))
	}
	rank := len(r.Lambda)
	v := 0.0
	for p := 0; p < rank; p++ {
		term := r.Lambda[p]
		for m, f := range r.Factors {
			term *= f.At(int(coord[m]), p)
		}
		v += term
	}
	return v
}

// RMSE returns the root-mean-square prediction error of the model over the
// tensor's stored non-zeros. Note that for sparse CPD the zeros are part of
// the objective too; RMSE over non-zeros is the conventional held-in
// recommendation-quality metric, not the ALS loss.
func (r *Result) RMSE(t *tensor.Tensor) float64 {
	nnz := t.NNZ()
	if nnz == 0 {
		return 0
	}
	sum := 0.0
	for k := 0; k < nnz; k++ {
		diff := r.Predict(t.Coord(k)) - t.Vals[k]
		sum += diff * diff
	}
	return sqrtf(sum / float64(nnz))
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// WriteKruskal serialises the decomposition in a simple text format:
//
//	ktensor <d> <R>
//	lambda: R values
//	mode <m> <rows> followed by rows lines of R values each
//
// It round-trips with ReadKruskal.
//
//lint:allow hotpath-alloc checkpoint serialisation, never on the iteration path
func WriteKruskal(w io.Writer, r *Result) error {
	bw := bufio.NewWriter(w)
	d := len(r.Factors)
	rank := len(r.Lambda)
	fmt.Fprintf(bw, "ktensor %d %d\n", d, rank)
	for p, l := range r.Lambda {
		if p > 0 {
			fmt.Fprint(bw, " ")
		}
		fmt.Fprintf(bw, "%.17g", l)
	}
	fmt.Fprintln(bw)
	for m, f := range r.Factors {
		fmt.Fprintf(bw, "mode %d %d\n", m, f.Rows)
		for i := 0; i < f.Rows; i++ {
			row := f.Row(i)
			for j, v := range row {
				if j > 0 {
					fmt.Fprint(bw, " ")
				}
				fmt.Fprintf(bw, "%.17g", v)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

// ReadKruskal parses the format written by WriteKruskal.
//
//lint:allow hotpath-alloc checkpoint deserialisation, never on the iteration path
func ReadKruskal(r io.Reader) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	readLine := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				return line, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	header, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("cpd: read header: %w", err)
	}
	var d, rank int
	if _, err := fmt.Sscanf(header, "ktensor %d %d", &d, &rank); err != nil {
		return nil, fmt.Errorf("cpd: bad header %q", header)
	}
	if d < 1 || rank < 1 {
		return nil, fmt.Errorf("cpd: invalid shape %dx%d", d, rank)
	}
	parseRow := func(line string, want int) ([]float64, error) {
		fields := strings.Fields(line)
		if len(fields) != want {
			return nil, fmt.Errorf("cpd: row has %d values, want %d", len(fields), want)
		}
		out := make([]float64, want)
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("cpd: bad value %q", f)
			}
			out[i] = v
		}
		return out, nil
	}
	lline, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("cpd: read lambda: %w", err)
	}
	lambda, err := parseRow(lline, rank)
	if err != nil {
		return nil, err
	}
	res := &Result{Lambda: lambda, Factors: make([]*tensor.Matrix, d)}
	for m := 0; m < d; m++ {
		mh, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("cpd: read mode %d header: %w", m, err)
		}
		var gotM, rows int
		if _, err := fmt.Sscanf(mh, "mode %d %d", &gotM, &rows); err != nil || gotM != m {
			return nil, fmt.Errorf("cpd: bad mode header %q", mh)
		}
		f := tensor.NewMatrix(rows, rank)
		for i := 0; i < rows; i++ {
			line, err := readLine()
			if err != nil {
				return nil, fmt.Errorf("cpd: read mode %d row %d: %w", m, i, err)
			}
			row, err := parseRow(line, rank)
			if err != nil {
				return nil, err
			}
			copy(f.Row(i), row)
		}
		res.Factors[m] = f
	}
	return res, nil
}

// SaveKruskal writes the decomposition to a file.
func SaveKruskal(path string, r *Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteKruskal(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadKruskal reads a decomposition from a file.
func LoadKruskal(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadKruskal(bufio.NewReader(f))
}

//go:build lifetrace

package core

import (
	"math"

	"stef/internal/kernels"
)

// LifePoison and LifeUnpoison implement the cpd lifetrace poisoning
// protocol (cpd.lifePoisonable): Solver.Release NaN-fills everything the
// workspace owns — memoized partials, accumulation buffers, scratch — so
// any read of a released workspace either trips the kernel-entry stamp
// check or propagates NaN into results; re-acquiring from the pool
// restores the zeroed, freshly-constructed state the kernels assume.
//
// The lf/lf2 level-factor slices are deliberately only cleared, never
// filled: they alias the caller's factor matrices, not workspace storage,
// and Compute rebinds them via LevelFactorsInto before every launch.

func (w *Workspace) LifePoison() { w.lifeFill(math.NaN(), true) }

func (w *Workspace) LifeUnpoison() { w.lifeFill(0, false) }

func (w *Workspace) lifeFill(v float64, poisoned bool) {
	lifeFillPartials(w.partials, v)
	lifeFillPartials(w.partials2, v)
	for _, b := range w.bufs {
		if b != nil {
			b.LifeFill(v)
		}
	}
	w.scratch.LifeSetPoisoned(poisoned)
	for i := range w.lf {
		w.lf[i] = nil
	}
	for i := range w.lf2 {
		w.lf2[i] = nil
	}
}

func lifeFillPartials(p *kernels.Partials, v float64) {
	if p == nil {
		return
	}
	for _, m := range p.P {
		if m == nil {
			continue
		}
		for i := range m.Data {
			m.Data[i] = v
		}
	}
}

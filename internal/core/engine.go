package core

import (
	"stef/internal/cpd"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

// NewEngine builds a CPD engine executing the plan. The engine's update
// order is the CSF level order, which keeps memoized partial results valid
// across the iteration (P^(l) depends only on deeper levels' factors).
func NewEngine(plan *Plan) *cpd.Engine {
	tree := plan.Tree
	d := tree.Order()
	r := plan.Opts.Rank
	t := plan.Part.T

	partials := kernels.NewPartials(tree, r, plan.Config.Save)
	bufs := make([]*kernels.OutBuf, d)
	for u := 1; u < d; u++ {
		bufs[u] = kernels.NewOutBuf(tree.Dims[u], r, t, plan.Opts.MaxPrivElems)
	}
	var partials2 *kernels.Partials
	if plan.Tree2 != nil {
		partials2 = kernels.NoPartials(d)
	}

	name := "stef"
	if plan.Tree2 != nil {
		name = "stef2"
	}
	if plan.Opts.SliceSched {
		name += "-slicesched"
	}

	return &cpd.Engine{
		Name:        name,
		UpdateOrder: append([]int(nil), tree.Perm...),
		Compute: func(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
			lf := kernels.LevelFactors(factors, tree.Perm)
			switch {
			case pos == 0:
				kernels.RootMTTKRP(tree, lf, out, partials, plan.Part)
			case pos == d-1 && plan.Tree2 != nil:
				// STeF2: the base leaf mode runs as the root of
				// the auxiliary CSF, avoiding the scatter-heavy
				// leaf-mode MTTV kernel.
				lf2 := kernels.LevelFactors(factors, plan.Tree2.Perm)
				kernels.RootMTTKRP(plan.Tree2, lf2, out, partials2, plan.Part2)
			default:
				buf := bufs[pos]
				buf.Reset()
				kernels.ModeMTTKRP(tree, lf, pos, partials, buf, plan.Part)
				buf.Reduce(out)
			}
		},
	}
}

// NewEngineFor is a convenience wrapper: plan and build in one call.
func NewEngineFor(t *tensor.Tensor, opts Options) (*cpd.Engine, *Plan, error) {
	plan, err := NewPlan(t, opts)
	if err != nil {
		return nil, nil, err
	}
	return NewEngine(plan), plan, nil
}

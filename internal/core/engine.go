package core

import (
	"fmt"

	"stef/internal/cpd"
	"stef/internal/kernels"
	"stef/internal/model"
	"stef/internal/tensor"
)

// Engine executes a Plan. It is immutable after construction — the plan's
// CSF trees, partitions and memo configuration are shared, read-only —
// which makes one engine safe to drive from many goroutines as long as
// each solve brings its own Workspace.
type Engine struct {
	plan  *Plan
	name  string
	order []int
}

// Workspace holds the mutable per-solve state of a STeF engine: the
// memoized partials of both CSF trees, the non-root output buffers, the
// releveled factor slices and the per-thread kernel scratch.
type Workspace struct {
	partials  *kernels.Partials
	partials2 *kernels.Partials // non-nil iff the plan has a second tree
	bufs      []*kernels.OutBuf
	lf        []*tensor.Matrix
	lf2       []*tensor.Matrix
	packed    []*tensor.Matrix // per remapped level: the factor in packed row order
	scratch   *kernels.Scratch
}

// Reset implements cpd.Workspace. It is a no-op by design: the ALS update
// order matches the CSF level order, so every solve's first Compute call
// (pos 0) rewrites the memoized partials before any later mode reads them,
// and output buffers are Reset inside Compute. Nothing survives from a
// previous solve that a fresh solve could observe.
func (w *Workspace) Reset() {}

// Name identifies the engine ("stef", "stef2", plus ablation suffixes).
func (e *Engine) Name() string { return e.name }

// UpdateOrder is the CSF level order, which keeps memoized partial results
// valid across the iteration (P^(l) depends only on deeper levels'
// factors).
func (e *Engine) UpdateOrder() []int { return e.order }

// Plan returns the immutable plan the engine executes, with its Table II
// accounting, configuration search trace and preprocessing times.
func (e *Engine) Plan() *Plan { return e.plan }

// NewWorkspace allocates the mutable buffers one concurrent solve needs.
func (e *Engine) NewWorkspace() cpd.Workspace {
	plan := e.plan
	tree := plan.Tree
	d := tree.Order()
	r := plan.Opts.Rank
	t := plan.Part.T

	w := &Workspace{
		partials: kernels.NewPartials(tree, r, plan.Config.Save),
		bufs:     make([]*kernels.OutBuf, d),
		lf:       make([]*tensor.Matrix, d),
		scratch:  kernels.NewScratch(d, r, t),
	}
	for u := 1; u < d; u++ {
		var ap *kernels.AccumPlan
		if u < len(plan.Accum) {
			ap = plan.Accum[u]
		}
		if ap != nil {
			w.bufs[u] = kernels.NewOutBufPlanned(ap)
		} else if !(u == d-1 && plan.Tree2 != nil) {
			// Plans predating buildAccum (tests constructing Plan by hand)
			// fall back to the legacy footprint rule.
			w.bufs[u] = kernels.NewOutBuf(tree.Dim(u), r, t, plan.Opts.MaxPrivElems)
		}
	}
	if plan.Tree2 != nil {
		w.partials2 = kernels.NoPartials(d)
		w.lf2 = make([]*tensor.Matrix, d)
	}
	if plan.Remap != nil {
		// One packed copy per remapped level, allocated once: Compute
		// re-packs into these before each kernel launch, so the steady
		// state stays allocation-free.
		w.packed = make([]*tensor.Matrix, d)
		for l := 1; l < d; l++ {
			if l < len(plan.Remap) && plan.Remap[l] != nil {
				w.packed[l] = tensor.NewMatrix(tree.Dim(l), r)
			}
		}
	}
	return w
}

// packFactors substitutes the packed copy for every remapped level the
// pos-mode kernel reads: the caller's factors stay in original row order,
// the kernels — whose exec-tree fiber ids are already packed — see the
// packed layout. Mode pos's own factor is the output, not an input, and
// levels above the memoized source are never read.
func (w *Workspace) packFactors(plan *Plan, pos int) {
	if w.packed == nil {
		return
	}
	d := len(w.lf)
	src := d - 1
	if pos > 0 {
		src = model.SourceLevel(plan.Config.Save, pos)
	}
	t := plan.Part.T
	for l := 1; l < d; l++ {
		m := plan.Remap[l]
		if m == nil || l == pos || l > src {
			continue
		}
		m.Pack(w.packed[l], w.lf[l], t)
		w.lf[l] = w.packed[l]
	}
}

// Compute implements cpd.Engine, writing only into ws and out.
func (e *Engine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*Workspace)
	if !ok {
		panic(fmt.Sprintf("core: Compute got workspace type %T, want one from Engine.NewWorkspace", ws))
	}
	plan := e.plan
	tree := plan.ExecTree
	if tree == nil {
		tree = plan.Tree // hand-built plans predating buildAccum
	}
	d := tree.Order()
	kernels.LevelFactorsInto(w.lf, factors, tree.Perm())
	switch {
	case pos == 0:
		w.packFactors(plan, pos)
		kernels.RootMTTKRPWith(tree, w.lf, out, w.partials, plan.Part, w.scratch)
	case pos == d-1 && plan.Tree2 != nil:
		// STeF2: the base leaf mode runs as the root of the auxiliary
		// CSF, avoiding the scatter-heavy leaf-mode MTTV kernel. The
		// scratch is shared with the base tree: both trees have order d
		// and boundary rows are dead once a root call returns.
		tree2 := plan.ExecTree2
		if tree2 == nil {
			tree2 = plan.Tree2
		}
		kernels.LevelFactorsInto(w.lf2, factors, tree2.Perm())
		if w.packed != nil {
			// tree2 level v stores the mode at base level v-1
			// (leafRootedPerm); substitute the packed copies to match the
			// view's remapped fiber ids. The root itself — the base leaf —
			// is never remapped, so the output stays in original order.
			t := plan.Part.T
			for l := 1; l <= d-2; l++ {
				if m := plan.Remap[l]; m != nil {
					m.Pack(w.packed[l], w.lf2[l+1], t)
					w.lf2[l+1] = w.packed[l]
				}
			}
		}
		kernels.RootMTTKRPWith(tree2, w.lf2, out, w.partials2, plan.Part2, w.scratch)
	default:
		w.packFactors(plan, pos)
		buf := w.bufs[pos]
		buf.Reset()
		kernels.ModeMTTKRPWith(tree, w.lf, pos, w.partials, buf, plan.Part, w.scratch)
		buf.Reduce(out)
	}
}

// NewEngine builds a CPD engine executing the plan.
func NewEngine(plan *Plan) *Engine {
	name := "stef"
	if plan.Tree2 != nil {
		name = "stef2"
	}
	if plan.Opts.SliceSched {
		name += "-slicesched"
	}
	return &Engine{
		plan:  plan,
		name:  name,
		order: append([]int(nil), plan.Tree.Perm()...),
	}
}

// NewEngineFor is a convenience wrapper: plan and build in one call.
func NewEngineFor(t *tensor.Tensor, opts Options) (*Engine, *Plan, error) {
	plan, err := NewPlan(t, opts)
	if err != nil {
		return nil, nil, err
	}
	return NewEngine(plan), plan, nil
}

//go:build lifetrace

package core_test

import (
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"stef/internal/core"
	"stef/internal/cpd"
	"stef/internal/csf"
	"stef/internal/tensor"
)

// These tests pin the lifetrace oracle's behaviour on deliberately
// corrupted lifecycles: each violation the lifetime analyzer proves absent
// from the repo must, when manufactured here, fail deterministically with
// a diagnosis instead of corrupting results.

const lifeRank = 4

func mustPanicContaining(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

// arenaEngine builds a small tensor, round-trips it through an arena file,
// and compiles an engine over the opened (backed) tree.
func arenaEngine(t *testing.T) (*core.Engine, *csf.Tree, []int) {
	t.Helper()
	tt := tensor.Random([]int{10, 12, 14}, 400, nil, 3)
	path := filepath.Join(t.TempDir(), "life.stef")
	if err := csf.Build(tt, nil).WriteArena(path); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	tree, err := csf.OpenArena(path)
	if err != nil {
		t.Fatalf("OpenArena: %v", err)
	}
	plan, err := core.NewPlanFromTree(tree, core.Options{Rank: lifeRank, Threads: 2})
	if err != nil {
		t.Fatalf("NewPlanFromTree: %v", err)
	}
	return core.NewEngine(plan), tree, tt.Dims
}

// TestLifetraceComputeAfterClosePanics: a kernel launch against a closed
// arena tree must die at the entry check, before any view is touched.
func TestLifetraceComputeAfterClosePanics(t *testing.T) {
	eng, tree, dims := arenaEngine(t)
	factors := tensor.RandomFactors(dims, lifeRank, 7)
	order := eng.UpdateOrder()
	out := tensor.NewMatrix(dims[order[0]], lifeRank)
	ws := eng.NewWorkspace()
	ws.Reset()
	eng.Compute(ws, 0, factors, out) // the open tree computes fine
	if err := tree.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mustPanicContaining(t, "lifetrace", func() {
		eng.Compute(ws, 0, factors, out)
	})
}

// TestLifetraceComputeAfterReleasePanics: touching a pooled workspace
// after Solver.Release must die at the entry check (the scratch is
// stamped), and its buffers are NaN until re-acquired.
func TestLifetraceComputeAfterReleasePanics(t *testing.T) {
	tt := tensor.Random([]int{10, 12, 14}, 400, nil, 5)
	eng, _, err := core.NewEngineFor(tt, core.Options{Rank: lifeRank, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	solver := cpd.NewSolver(eng)
	factors := tensor.RandomFactors(tt.Dims, lifeRank, 9)
	order := eng.UpdateOrder()
	out := tensor.NewMatrix(tt.Dims[order[0]], lifeRank)
	ws := solver.Acquire()
	eng.Compute(ws, 0, factors, out) // in-flight use is fine
	solver.Release(ws)
	mustPanicContaining(t, "lifetrace", func() {
		eng.Compute(ws, 0, factors, out)
	})
}

// TestLifetraceDoubleReleasePanics: handing the same workspace back twice
// is a lifecycle violation the registry must catch.
func TestLifetraceDoubleReleasePanics(t *testing.T) {
	tt := tensor.Random([]int{8, 9, 10}, 200, nil, 11)
	eng, _, err := core.NewEngineFor(tt, core.Options{Rank: lifeRank, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	solver := cpd.NewSolver(eng)
	ws := solver.Acquire()
	solver.Release(ws)
	mustPanicContaining(t, "released twice", func() {
		solver.Release(ws)
	})
}

// TestLifetraceSharedSolverStress: N goroutines Acquire/solve/Release
// against one Solver. The registry panics if any workspace ever serves two
// in-flight solves; NaN-free results prove no solve read a poisoned
// (released) buffer, since Release NaN-fills everything workspace-owned.
func TestLifetraceSharedSolverStress(t *testing.T) {
	tt := tensor.Random([]int{12, 15, 18}, 900, nil, 13)
	eng, _, err := core.NewEngineFor(tt, core.Options{Rank: lifeRank, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	solver := cpd.NewSolver(eng)
	var sq float64
	for _, v := range tt.Vals {
		sq += v * v
	}
	normX := math.Sqrt(sq)

	const goroutines, solves = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*solves)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < solves; i++ {
				res, err := solver.Run(tt.Dims, normX, cpd.Options{
					Rank: lifeRank, MaxIters: 3, Tol: -1, Seed: int64(g*solves + i + 1),
				})
				if err != nil {
					errs <- err
					continue
				}
				for m, f := range res.Factors {
					for _, v := range f.Data {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Errorf("goroutine %d solve %d: non-finite entry in factor %d: poisoned buffer reached a result", g, i, m)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("solve failed: %v", err)
	}
}

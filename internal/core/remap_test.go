package core

import (
	"testing"

	"stef/internal/tensor"
)

// remapIterate runs one full MTTKRP sequence through eng with the
// deterministic shared factors and returns one output matrix per update
// position.
func remapIterate(eng *Engine, tt *tensor.Tensor, rank int) []*tensor.Matrix {
	d := tt.Order()
	factors := tensor.RandomFactors(tt.Dims, rank, 7)
	order := eng.UpdateOrder()
	ws := eng.NewWorkspace()
	ws.Reset()
	outs := make([]*tensor.Matrix, d)
	for pos := 0; pos < d; pos++ {
		outs[pos] = tensor.NewMatrix(tt.Dims[order[pos]], rank)
		eng.Compute(ws, pos, factors, outs[pos])
	}
	return outs
}

// TestRemapSolveBitIdentical is the correctness contract of the factor-row
// remap: for every engine and both rank-primitive dispatch paths, a
// remapped solve must be bit-identical to the unremapped one — the view
// relabels rows, never reorders summation. Thread counts above one pin the
// privatized accumulation so the baseline itself is deterministic (hybrid
// CAS ordering is not, remap or no remap).
func TestRemapSolveBitIdentical(t *testing.T) {
	t3 := tensor.Random([]int{12, 60, 200}, 3000, []float64{0, 1.5, 2}, 11)
	t4 := tensor.Random([]int{6, 20, 60, 120}, 2500, []float64{0, 0, 1.5, 2}, 12)
	cases := []struct {
		name string
		tt   *tensor.Tensor
		opts Options
	}{
		{"stef-R32-T1", t3, Options{Rank: 32, Threads: 1}},
		{"stef-R32-T4-priv", t3, Options{Rank: 32, Threads: 4, AccumRule: AccumPriv}},
		{"stef-R7-T4-priv", t3, Options{Rank: 7, Threads: 4, AccumRule: AccumPriv}},
		{"stef2-R32-T4-priv", t4, Options{Rank: 32, Threads: 4, AccumRule: AccumPriv, SecondCSF: true}},
		{"stef2-R7-T1", t4, Options{Rank: 7, Threads: 1, SecondCSF: true}},
	}
	for _, cs := range cases {
		t.Run(cs.name, func(t *testing.T) {
			offOpts := cs.opts
			offOpts.RemapRule = RemapOff
			offEng, offPlan, err := NewEngineFor(cs.tt, offOpts)
			if err != nil {
				t.Fatal(err)
			}
			for l, m := range offPlan.Remap {
				if m != nil {
					t.Fatalf("RemapOff plan remapped level %d", l)
				}
			}
			onOpts := cs.opts
			onOpts.RemapRule = RemapOn
			onEng, onPlan, err := NewEngineFor(cs.tt, onOpts)
			if err != nil {
				t.Fatal(err)
			}
			remapped := false
			for l, m := range onPlan.Remap {
				if (m != nil) != onPlan.Config.Remap[l] {
					t.Errorf("Config.Remap[%d]=%v disagrees with plan remap %v", l, onPlan.Config.Remap[l], m)
				}
				if m != nil {
					remapped = true
				}
			}
			if !remapped {
				t.Fatal("RemapOn produced no remapped level; the comparison is vacuous")
			}
			off := remapIterate(offEng, cs.tt, cs.opts.Rank)
			on := remapIterate(onEng, cs.tt, cs.opts.Rank)
			for pos := range off {
				if d := off[pos].MaxAbsDiff(on[pos]); d != 0 {
					t.Errorf("update position %d: remapped output differs by %g", pos, d)
				}
			}
		})
	}
}

// TestRemapOnEdgeShapes drives RemapOn through degenerate censuses: a
// single-row level (dim 1), an all-hot level (dense tiny cube, every row
// multi-written) and a near-all-cold level (nnz below the row count). The
// plan must build — declining the remap where the census is degenerate —
// and stay bit-identical to RemapOff.
func TestRemapOnEdgeShapes(t *testing.T) {
	cases := []struct {
		name string
		tt   *tensor.Tensor
	}{
		{"single-row-mode", tensor.Random([]int{1, 1, 50}, 40, nil, 13)},
		{"all-hot", tensor.Random([]int{2, 2, 2}, 8, nil, 14)},
		{"all-cold", tensor.Random([]int{40, 50, 60}, 30, nil, 15)},
	}
	for _, cs := range cases {
		t.Run(cs.name, func(t *testing.T) {
			offEng, _, err := NewEngineFor(cs.tt, Options{Rank: 4, Threads: 2, AccumRule: AccumPriv, RemapRule: RemapOff})
			if err != nil {
				t.Fatal(err)
			}
			onEng, onPlan, err := NewEngineFor(cs.tt, Options{Rank: 4, Threads: 2, AccumRule: AccumPriv, RemapRule: RemapOn})
			if err != nil {
				t.Fatal(err)
			}
			for l, m := range onPlan.Remap {
				if m != nil && m.Hot == 0 {
					t.Errorf("level %d remap with empty hot prefix", l)
				}
			}
			off := remapIterate(offEng, cs.tt, 4)
			on := remapIterate(onEng, cs.tt, 4)
			for pos := range off {
				if d := off[pos].MaxAbsDiff(on[pos]); d != 0 {
					t.Errorf("update position %d: outputs differ by %g", pos, d)
				}
			}
		})
	}
}

package core

import (
	"fmt"
	"io"

	"stef/internal/model"
)

// Describe writes a human-readable summary of every decision in the plan:
// the chosen layout and memoization set with their modeled cost, the
// runner-up configurations, the work-distribution mode, and the Table II
// byte accounting. tensorinfo and the examples use it; it is also handy in
// bug reports.
func (p *Plan) Describe(w io.Writer) {
	tree := p.Tree
	d := tree.Order()
	fmt.Fprintf(w, "STeF plan (R=%d, T=%d, cache=%d bytes)\n", p.Opts.Rank, p.Opts.Threads, p.Opts.CacheBytes)
	fmt.Fprintf(w, "  CSF level order (original modes): %v%s\n", tree.Perm(), map[bool]string{true: "  [last two modes swapped]", false: ""}[p.Config.Swap])
	fmt.Fprintf(w, "  memoized levels: ")
	any := false
	for l := 1; l <= d-2; l++ {
		if p.Config.Save[l] {
			if any {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "P^(%d) [%d fibers]", l, tree.NumFibers(l))
			any = true
		}
	}
	if !any {
		fmt.Fprint(w, "none")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  modeled cost: %v (best of %d configurations)\n", p.Config.Cost, len(p.AllConfigs))
	if runnerUp, ok := p.runnerUp(); ok {
		fmt.Fprintf(w, "  runner-up: swap=%v save=%v cost=%v\n", runnerUp.Swap, runnerUp.Save, runnerUp.Cost)
	}
	sched := "nnz-balanced (Alg. 3)"
	if p.Opts.SliceSched {
		sched = "slice-granular (baseline)"
	}
	fmt.Fprintf(w, "  work distribution: %s\n", sched)
	if len(p.Accum) > 0 {
		fmt.Fprintf(w, "  output accumulation:")
		for u := 1; u < d; u++ {
			if u >= len(p.Accum) || p.Accum[u] == nil {
				continue
			}
			fmt.Fprintf(w, " L%d=%v", u, p.Accum[u])
		}
		fmt.Fprintln(w)
	}
	if p.Remap != nil {
		anyRemap := false
		for _, m := range p.Remap {
			if m != nil {
				anyRemap = true
				break
			}
		}
		if anyRemap {
			fmt.Fprintf(w, "  factor-row remap:")
			for l := 1; l < d; l++ {
				if l >= len(p.Remap) || p.Remap[l] == nil {
					continue
				}
				fmt.Fprintf(w, " L%d=%v", l, p.Remap[l])
			}
			fmt.Fprintln(w)
		}
	}
	if p.Tree2 != nil {
		fmt.Fprintf(w, "  STeF2 auxiliary CSF rooted at original mode %d\n", p.Tree2.PermLevel(0))
	}
	fmt.Fprintf(w, "  storage: memo %.2f MB, CSF %.2f MB, factors %.2f MB (ratio %.2f)\n",
		mb(p.MemoBytes), mb(p.CSFBytes), mb(p.FactorBytes), p.Ratio())
	fmt.Fprintf(w, "  preprocessing: %v (Alg. 9 + search), build: %v\n", p.PreprocessTime, p.BuildTime)
}

// runnerUp returns the cheapest evaluated configuration other than the one
// chosen (by cost; ties resolved by enumeration order).
func (p *Plan) runnerUp() (model.Config, bool) {
	var best model.Config
	found := false
	for _, c := range p.AllConfigs {
		if c.Swap == p.Config.Swap && saveEqual(c.Save, p.Config.Save) {
			continue
		}
		if !found || c.Cost.Total() < best.Cost.Total() {
			best = c
			found = true
		}
	}
	return best, found
}

func saveEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

package core_test

import (
	"sync"
	"testing"

	"stef/internal/core"
	"stef/internal/csf"
	"stef/internal/tensor"
)

// TestCloseWhileSolvingHeapTree races Tree.Close against in-flight solves
// on a heap-built tree under -race: Close on an unbacked tree is a no-op
// by contract, so concurrent solves must proceed untouched and the tree
// must never report closed. (Closing a *backed* tree mid-solve is the
// lifecycle violation the lifetime analyzer forbids statically and the
// lifetrace entry checks catch at runtime.)
func TestCloseWhileSolvingHeapTree(t *testing.T) {
	const rank = 4
	tt := tensor.Random([]int{10, 12, 14}, 500, nil, 17)
	tree := csf.Build(tt, nil)
	plan, err := core.NewPlanFromTree(tree, core.Options{Rank: rank, Threads: 2})
	if err != nil {
		t.Fatalf("NewPlanFromTree: %v", err)
	}
	eng := core.NewEngine(plan)
	factors := tensor.RandomFactors(tt.Dims, rank, 19)
	order := eng.UpdateOrder()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := eng.NewWorkspace()
			ws.Reset()
			out := tensor.NewMatrix(tt.Dims[order[0]], rank)
			for i := 0; i < 3; i++ {
				eng.Compute(ws, 0, factors, out)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tree.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if tree.Closed() {
		t.Error("heap-built tree reports Closed() = true")
	}
}

package core_test

import (
	"testing"

	"stef/internal/core"
	"stef/internal/cpd"
	"stef/internal/tensor"
)

// TestSweepZeroAllocs pins the pooled-workspace contract: once a workspace
// exists, a full MTTKRP sweep (every mode in update order) on one thread
// performs no heap allocation. This is what makes compile-once/solve-many
// cheap in steady state — and it guards the kernel refactors (per-thread
// scratch, closure-free T==1 dispatch) against regressions.
func TestSweepZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		dims []int
		opts core.Options
	}{
		{"stef-d3", []int{15, 20, 25}, core.Options{Rank: 8, Threads: 1}},
		{"stef-d4", []int{8, 10, 12, 14}, core.Options{Rank: 8, Threads: 1}},
		{"stef2-d3", []int{15, 20, 25}, core.Options{Rank: 8, Threads: 1, SecondCSF: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tt := tensor.Random(tc.dims, 900, nil, 21)
			eng, _, err := core.NewEngineFor(tt, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			d := tt.Order()
			order := eng.UpdateOrder()
			factors := tensor.RandomFactors(tt.Dims, tc.opts.Rank, 3)
			outs := make([]*tensor.Matrix, d)
			for pos := 0; pos < d; pos++ {
				outs[pos] = tensor.NewMatrix(tt.Dims[order[pos]], tc.opts.Rank)
			}
			ws := eng.NewWorkspace()
			ws.Reset()
			sweep := func() {
				for pos := 0; pos < d; pos++ {
					eng.Compute(ws, pos, factors, outs[pos])
				}
			}
			sweep() // warm up
			if allocs := testing.AllocsPerRun(10, sweep); allocs != 0 {
				t.Fatalf("steady-state sweep allocates %.1f objects per run, want 0", allocs)
			}
		})
	}
}

// TestSolveIterationsDoNotAllocate compares whole-solve allocation counts at
// two iteration budgets: the delta must be zero, i.e. every allocation in
// cpd.RunWith happens in per-solve setup, none inside the iteration loop.
func TestSolveIterationsDoNotAllocate(t *testing.T) {
	tt := tensor.Random([]int{12, 16, 20}, 800, nil, 5)
	eng, _, err := core.NewEngineFor(tt, core.Options{Rank: 6, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws := eng.NewWorkspace()
	dims, normX := tt.Dims, tt.NormFrobenius()
	solve := func(iters int) float64 {
		return testing.AllocsPerRun(3, func() {
			ws.Reset()
			if _, err := cpd.RunWith(dims, normX, eng, ws, cpd.Options{Rank: 6, MaxIters: iters, Tol: -1, Seed: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := solve(4)
	long := solve(12)
	if long != short {
		t.Fatalf("12-iteration solve allocates %.1f objects vs %.1f for 4 iterations; the extra 8 iterations must not allocate", long, short)
	}
}

// TestWorkspaceTypeMismatchPanics pins the diagnostic for handing an engine
// a workspace it did not create.
func TestWorkspaceTypeMismatchPanics(t *testing.T) {
	tt := tensor.Random([]int{6, 7, 8}, 100, nil, 1)
	eng, _, err := core.NewEngineFor(tt, core.Options{Rank: 3, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	naive := cpd.NaiveEngine(tt)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign workspace accepted")
		}
	}()
	out := tensor.NewMatrix(tt.Dims[eng.UpdateOrder()[0]], 3)
	eng.Compute(naive.NewWorkspace(), 0, tensor.RandomFactors(tt.Dims, 3, 1), out)
}

package core

import (
	"strings"
	"testing"

	"stef/internal/model"
	"stef/internal/tensor"
)

func TestPlanBasics(t *testing.T) {
	tt := tensor.Random([]int{8, 30, 50}, 600, nil, 1)
	plan, err := NewPlan(tt, Options{Rank: 8, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tree == nil || plan.Part == nil {
		t.Fatal("plan missing tree or partition")
	}
	if plan.Tree2 != nil {
		t.Fatal("unexpected second CSF")
	}
	if len(plan.AllConfigs) != 2*2 { // d=3: 2 save subsets × 2 layouts
		t.Fatalf("%d configs, want 4", len(plan.AllConfigs))
	}
	for _, c := range plan.AllConfigs {
		if c.Cost.Total() < plan.Config.Cost.Total() && c.Swap == plan.Config.Swap {
			// Only comparable when the layout matches a forced rule;
			// with SwapModel the global best must win outright.
			t.Errorf("config %+v beats chosen %+v", c, plan.Config)
		}
	}
	if plan.CSFBytes <= 0 || plan.FactorBytes <= 0 {
		t.Fatal("byte accounting missing")
	}
}

func TestPlanRejectsLowOrder(t *testing.T) {
	tt := tensor.Random([]int{5, 5}, 10, nil, 1)
	if _, err := NewPlan(tt, Options{Rank: 4}); err == nil {
		t.Fatal("expected error for order-2 tensor")
	}
}

func TestPlanSaveRules(t *testing.T) {
	tt := tensor.Random([]int{6, 20, 30, 10}, 800, nil, 2)
	all, err := NewPlan(tt, Options{Rank: 4, SaveRule: SaveAll})
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= 2; l++ {
		if !all.Config.Save[l] {
			t.Errorf("SaveAll did not save level %d", l)
		}
	}
	if all.MemoBytes == 0 {
		t.Error("SaveAll reports zero memo bytes")
	}
	none, err := NewPlan(tt, Options{Rank: 4, SaveRule: SaveNone})
	if err != nil {
		t.Fatal(err)
	}
	for l := range none.Config.Save {
		if none.Config.Save[l] {
			t.Errorf("SaveNone saved level %d", l)
		}
	}
	if none.MemoBytes != 0 {
		t.Errorf("SaveNone memo bytes %d", none.MemoBytes)
	}
	if none.Ratio() != 0 {
		t.Errorf("SaveNone ratio %g", none.Ratio())
	}
}

func TestPlanSwapRules(t *testing.T) {
	tt := tensor.Random([]int{6, 20, 30}, 700, nil, 3)
	always, err := NewPlan(tt, Options{Rank: 4, SwapRule: SwapAlways})
	if err != nil {
		t.Fatal(err)
	}
	never, err := NewPlan(tt, Options{Rank: 4, SwapRule: SwapNever})
	if err != nil {
		t.Fatal(err)
	}
	basePerm := tensor.LengthSortedPerm(tt.Dims)
	if never.Tree.PermLevel(2) != basePerm[2] || never.Tree.PermLevel(1) != basePerm[1] {
		t.Errorf("SwapNever perm %v, want %v", never.Tree.Perm(), basePerm)
	}
	if always.Tree.PermLevel(1) != basePerm[2] || always.Tree.PermLevel(2) != basePerm[1] {
		t.Errorf("SwapAlways perm %v does not swap %v", always.Tree.Perm(), basePerm)
	}
	modelPlan, err := NewPlan(tt, Options{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	opp, err := NewPlan(tt, Options{Rank: 4, SwapRule: SwapOpposite})
	if err != nil {
		t.Fatal(err)
	}
	if opp.Config.Swap == modelPlan.Config.Swap {
		t.Errorf("SwapOpposite chose the model layout")
	}
}

func TestPlanSecondCSF(t *testing.T) {
	tt := tensor.Random([]int{6, 20, 30, 8}, 500, nil, 4)
	plan, err := NewPlan(tt, Options{Rank: 4, SecondCSF: true, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tree2 == nil || plan.Part2 == nil {
		t.Fatal("SecondCSF not built")
	}
	// Tree2's root must be Tree's leaf mode.
	if plan.Tree2.PermLevel(0) != plan.Tree.PermLevel(3) {
		t.Errorf("tree2 root mode %d, want %d", plan.Tree2.PermLevel(0), plan.Tree.PermLevel(3))
	}
	if plan.CSFBytes <= plan.Tree.Bytes() {
		t.Error("CSF bytes do not include the second tree")
	}
}

func TestPlanPreprocessTimeRecorded(t *testing.T) {
	tt := tensor.Random([]int{10, 40, 60}, 2000, nil, 5)
	plan, err := NewPlan(tt, Options{Rank: 8, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan.PreprocessTime <= 0 {
		t.Error("preprocess time not recorded")
	}
	if plan.BuildTime <= 0 {
		t.Error("build time not recorded")
	}
}

func TestPlanChosenConfigIsBestForLayout(t *testing.T) {
	// Under the model rule with free layout, the chosen config must be
	// the global minimum of all evaluated configs.
	tt := tensor.Random([]int{5, 25, 80, 7}, 900, []float64{1.3, 0, 1.5, 0}, 6)
	plan, err := NewPlan(tt, Options{Rank: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.AllConfigs {
		if c.Cost.Total() < plan.Config.Cost.Total() {
			t.Errorf("config %+v cheaper than chosen %+v", c, plan.Config)
		}
	}
}

func TestSliceSchedOption(t *testing.T) {
	tt := tensor.Random([]int{4, 30, 40}, 500, []float64{2, 0, 0}, 7)
	plan, err := NewPlan(tt, Options{Rank: 4, Threads: 4, SliceSched: true})
	if err != nil {
		t.Fatal(err)
	}
	// Slice partitions are aligned: no shared starts anywhere.
	for th := 1; th < 4; th++ {
		for l := 0; l < plan.Tree.Order(); l++ {
			if plan.Part.SharedStart(th, l) {
				t.Fatalf("slice partition has shared start at th=%d l=%d", th, l)
			}
		}
	}
	eng := NewEngine(plan)
	if eng.Name() != "stef-slicesched" {
		t.Errorf("engine name %q", eng.Name())
	}
}

func TestDescribe(t *testing.T) {
	tt := tensor.Random([]int{6, 40, 50, 7}, 900, nil, 8)
	plan, err := NewPlan(tt, Options{Rank: 8, Threads: 2, SecondCSF: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	plan.Describe(&sb)
	out := sb.String()
	for _, want := range []string{"STeF plan", "memoized levels", "work distribution", "STeF2 auxiliary", "preprocessing"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	if _, ok := plan.runnerUp(); !ok {
		t.Error("no runner-up configuration found")
	}
}

func TestLeafRootedPerm(t *testing.T) {
	got := leafRootedPerm([]int{2, 0, 3, 1})
	want := []int{1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leafRootedPerm = %v, want %v", got, want)
		}
	}
}

func TestBestSaveForMatchesExhaustive(t *testing.T) {
	params := model.ParamsForCache([]int{10, 200, 3000, 4000}, []int64{10, 1500, 40000, 90000}, 32, 1<<18)
	best := bestSaveFor(params)
	bestCost := params.IterationCost(best).Total()
	for _, save := range model.EnumerateSaves(4) {
		if c := params.IterationCost(save).Total(); c < bestCost {
			t.Fatalf("save %v (cost %d) beats bestSaveFor %v (cost %d)", save, c, best, bestCost)
		}
	}
}

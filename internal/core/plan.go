// Package core assembles the paper's contribution: STeF, the sparsity-aware
// memoized MTTKRP engine. The Planner builds the CSF, runs Algorithm 9 to
// obtain the swapped-layout fiber count, searches the configuration space
// with the data-movement model (Section IV), and selects memoization and
// layout; the Engine executes one CPD iteration's MTTKRP sequence with the
// load-balanced work distribution of Section III-A.
package core

import (
	"fmt"
	"time"

	"stef/internal/csf"
	"stef/internal/model"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// SaveRule selects how the memoization vector is chosen; Fig. 6's ablation
// compares the model choice against the two extremes.
type SaveRule int

const (
	// SaveModel uses the data-movement model's choice (STeF default).
	SaveModel SaveRule = iota
	// SaveAll memoizes every level 1..d-2.
	SaveAll
	// SaveNone memoizes nothing.
	SaveNone
)

// SwapRule selects how the last-two-mode layout is chosen.
type SwapRule int

const (
	// SwapModel uses the data-movement model's choice (STeF default).
	SwapModel SwapRule = iota
	// SwapNever keeps the length-sorted order.
	SwapNever
	// SwapAlways always swaps the last two modes.
	SwapAlways
	// SwapOpposite takes the opposite of the model's choice (the
	// Fig. 6 "switching mode order" ablation).
	SwapOpposite
)

// Options configures the planner and engine.
type Options struct {
	// Rank is the decomposition rank R.
	Rank int
	// Threads is the worker count (default 1).
	Threads int
	// CacheBytes parameterises the data-movement model (default
	// model.DefaultCacheBytes).
	CacheBytes int64
	// SaveRule and SwapRule override the model's decisions for
	// ablations.
	SaveRule SaveRule
	SwapRule SwapRule
	// SliceSched replaces the non-zero-balanced work distribution with
	// slice-granular partitioning (the Fig. 6 work-distribution
	// ablation).
	SliceSched bool
	// SecondCSF enables the STeF2 variant: a second CSF rooted at the
	// base CSF's leaf mode handles that mode's MTTKRP.
	SecondCSF bool
	// MaxPrivElems bounds output privatization (see kernels.OutBuf).
	MaxPrivElems int64
}

func (o Options) withDefaults() Options {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.Rank <= 0 {
		o.Rank = 16
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = model.DefaultCacheBytes
	}
	return o
}

// Plan records every decision the planner made for a tensor, plus the
// byte-level accounting behind Table II.
type Plan struct {
	// Opts echoes the options the plan was built with (post-defaults).
	Opts Options
	// Tree is the CSF in the chosen layout.
	Tree *csf.Tree
	// Tree2 is the STeF2 auxiliary CSF (nil unless Opts.SecondCSF).
	Tree2 *csf.Tree
	// Part is the chosen work distribution over Tree.
	Part *sched.Partition
	// Part2 partitions Tree2 when present.
	Part2 *sched.Partition
	// Config is the chosen memoization/layout configuration with its
	// modeled cost.
	Config model.Config
	// AllConfigs lists every evaluated configuration (diagnostics).
	AllConfigs []model.Config
	// PreprocessTime is the time spent in the Algorithm 9 counting pass
	// plus the model search — the quantity of Figure 5.
	PreprocessTime time.Duration
	// BuildTime is the CSF construction time (not part of Fig. 5, which
	// every engine pays).
	BuildTime time.Duration
	// MemoBytes, CSFBytes and FactorBytes give Table II's accounting.
	MemoBytes, CSFBytes, FactorBytes int64
}

// Ratio returns Table II's ratio: memoized partial-result storage relative
// to the CSF structure plus factor matrices.
func (p *Plan) Ratio() float64 {
	den := p.CSFBytes + p.FactorBytes
	if den == 0 {
		return 0
	}
	return float64(p.MemoBytes) / float64(den)
}

// NewPlan builds the CSF for t, runs the model search and fixes every
// execution decision.
func NewPlan(t *tensor.Tensor, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	d := t.Order()
	if d < 3 {
		return nil, fmt.Errorf("core: order-%d tensor; STeF needs at least 3 modes", d)
	}
	p := &Plan{Opts: opts}

	buildStart := time.Now()
	basePerm := tensor.LengthSortedPerm(t.Dims)
	baseTree := csf.Build(t, basePerm)
	p.BuildTime = time.Since(buildStart)

	// Preprocessing (Fig. 5): Algorithm 9 + exhaustive model search.
	preStart := time.Now()
	baseParams := model.ParamsForCache(baseTree.Dims, baseTree.FiberCounts(), opts.Rank, opts.CacheBytes)
	var swappedParams model.Params
	if opts.SwapRule != SwapNever {
		swappedFibers := baseTree.CountSwappedFibers(opts.Threads)
		swappedParams = model.SwappedParams(baseParams, swappedFibers)
	}
	best, all := model.Search(baseParams, swappedParams)
	p.AllConfigs = all
	p.Config = best
	p.PreprocessTime = time.Since(preStart)

	// Apply the swap rule.
	swap := best.Swap
	switch opts.SwapRule {
	case SwapNever:
		swap = false
	case SwapAlways:
		swap = true
	case SwapOpposite:
		swap = !best.Swap
	}
	chosenParams := baseParams
	if swap != best.Swap || opts.SaveRule != SaveModel {
		// Re-derive the save vector for the layout actually used.
		if swap {
			chosenParams = swappedParams
		}
		bestForLayout := bestSaveFor(chosenParams)
		p.Config = model.Config{Swap: swap, Save: bestForLayout, Cost: chosenParams.IterationCost(bestForLayout)}
	} else if swap {
		chosenParams = swappedParams
	}

	// Apply the save rule.
	switch opts.SaveRule {
	case SaveAll:
		save := make([]bool, d)
		for l := 1; l <= d-2; l++ {
			save[l] = true
		}
		p.Config.Save = save
		p.Config.Cost = chosenParams.IterationCost(save)
	case SaveNone:
		p.Config.Save = make([]bool, d)
		p.Config.Cost = chosenParams.IterationCost(p.Config.Save)
	}

	// Materialise the chosen layout.
	if swap {
		start := time.Now()
		baseTree = csf.Build(t, baseTree.SwappedPerm())
		p.BuildTime += time.Since(start)
	}
	p.Tree = baseTree
	if opts.SliceSched {
		p.Part = sched.NewSlicePartitionNNZ(p.Tree, opts.Threads).ToPartition(p.Tree)
	} else {
		p.Part = sched.NewPartition(p.Tree, opts.Threads)
	}

	if opts.SecondCSF {
		start := time.Now()
		perm2 := leafRootedPerm(p.Tree.Perm)
		p.Tree2 = csf.Build(t, perm2)
		if opts.SliceSched {
			p.Part2 = sched.NewSlicePartitionNNZ(p.Tree2, opts.Threads).ToPartition(p.Tree2)
		} else {
			p.Part2 = sched.NewPartition(p.Tree2, opts.Threads)
		}
		p.BuildTime += time.Since(start)
	}

	// Table II accounting.
	fibers := p.Tree.FiberCounts()
	params := model.ParamsForCache(p.Tree.Dims, fibers, opts.Rank, opts.CacheBytes)
	p.MemoBytes = params.MemoBytes(p.Config.Save)
	p.CSFBytes = p.Tree.Bytes()
	if p.Tree2 != nil {
		p.CSFBytes += p.Tree2.Bytes()
	}
	for _, n := range t.Dims {
		p.FactorBytes += int64(n) * int64(opts.Rank) * 8
	}
	return p, nil
}

// bestSaveFor returns the cheapest memoization vector for a fixed layout.
func bestSaveFor(params model.Params) []bool {
	var best []bool
	var bestCost int64
	for i, save := range model.EnumerateSaves(len(params.Dims)) {
		c := params.IterationCost(save).Total()
		if i == 0 || c < bestCost {
			best, bestCost = save, c
		}
	}
	return best
}

// leafRootedPerm builds STeF2's second layout: the base leaf mode becomes
// the root; the remaining modes keep their base relative order.
func leafRootedPerm(basePerm []int) []int {
	d := len(basePerm)
	perm := make([]int, 0, d)
	perm = append(perm, basePerm[d-1])
	perm = append(perm, basePerm[:d-1]...)
	return perm
}

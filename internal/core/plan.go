// Package core assembles the paper's contribution: STeF, the sparsity-aware
// memoized MTTKRP engine. The Planner builds the CSF, runs Algorithm 9 to
// obtain the swapped-layout fiber count, searches the configuration space
// with the data-movement model (Section IV), and selects memoization and
// layout; the Engine executes one CPD iteration's MTTKRP sequence with the
// load-balanced work distribution of Section III-A.
package core

import (
	"fmt"
	"time"

	"stef/internal/csf"
	"stef/internal/kernels"
	"stef/internal/model"
	"stef/internal/sched"
	"stef/internal/tensor"
)

// SaveRule selects how the memoization vector is chosen; Fig. 6's ablation
// compares the model choice against the two extremes.
type SaveRule int

const (
	// SaveModel uses the data-movement model's choice (STeF default).
	SaveModel SaveRule = iota
	// SaveAll memoizes every level 1..d-2.
	SaveAll
	// SaveNone memoizes nothing.
	SaveNone
)

// SwapRule selects how the last-two-mode layout is chosen.
type SwapRule int

const (
	// SwapModel uses the data-movement model's choice (STeF default).
	SwapModel SwapRule = iota
	// SwapNever keeps the length-sorted order.
	SwapNever
	// SwapAlways always swaps the last two modes.
	SwapAlways
	// SwapOpposite takes the opposite of the model's choice (the
	// Fig. 6 "switching mode order" ablation).
	SwapOpposite
)

// AccumRule selects how non-root MTTKRP outputs are accumulated.
type AccumRule int

const (
	// AccumModel uses the data-movement model's per-mode choice among
	// {priv, hybrid, atomic} (STeF default).
	AccumModel AccumRule = iota
	// AccumPriv forces full per-thread privatization on every mode.
	AccumPriv
	// AccumHybrid forces the hybrid hot-row strategy on every mode.
	AccumHybrid
	// AccumAtomic forces the shared CAS buffer on every mode.
	AccumAtomic
)

// RemapRule selects how the factor-row locality remap (Dynasor-style hot
// row packing, ROADMAP item 2b) is chosen.
type RemapRule int

const (
	// RemapModel uses the data-movement model's per-level choice: remap
	// exactly the levels where the packed layout's modeled volume beats
	// streaming (STeF default).
	RemapModel RemapRule = iota
	// RemapOff disables the remap everywhere (the baseline layout).
	RemapOff
	// RemapOn forces the remap on every level with a write census,
	// sizing the hot prefix by the footprint budget alone.
	RemapOn
)

// Options configures the planner and engine.
type Options struct {
	// Rank is the decomposition rank R.
	Rank int
	// Threads is the worker count (default 1).
	Threads int
	// CacheBytes parameterises the data-movement model (default
	// model.DefaultCacheBytes).
	CacheBytes int64
	// SaveRule and SwapRule override the model's decisions for
	// ablations.
	SaveRule SaveRule
	SwapRule SwapRule
	// SliceSched replaces the non-zero-balanced work distribution with
	// slice-granular partitioning (the Fig. 6 work-distribution
	// ablation).
	SliceSched bool
	// SecondCSF enables the STeF2 variant: a second CSF rooted at the
	// base CSF's leaf mode handles that mode's MTTKRP.
	SecondCSF bool
	// MaxPrivElems bounds output privatization (see kernels.OutBuf).
	MaxPrivElems int64
	// AccumRule overrides the model's accumulation-strategy choice for
	// ablations and the bench's -accum forcing flag.
	AccumRule AccumRule
	// RemapRule overrides the model's factor-row remap choice (the CLI's
	// -remap {auto,on,off}). Callers that pair a plan's raw kernels with
	// original-order factors (the accum/vec benches) must pass RemapOff:
	// a remapped plan's Accum lives in packed row space.
	RemapRule RemapRule
}

func (o Options) withDefaults() Options {
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.Rank <= 0 {
		o.Rank = 16
	}
	if o.CacheBytes <= 0 {
		o.CacheBytes = model.DefaultCacheBytes
	}
	return o
}

// Plan records every decision the planner made for a tensor, plus the
// byte-level accounting behind Table II.
type Plan struct {
	// Opts echoes the options the plan was built with (post-defaults).
	Opts Options
	// Tree is the CSF in the chosen layout.
	Tree *csf.Tree
	// Tree2 is the STeF2 auxiliary CSF (nil unless Opts.SecondCSF).
	Tree2 *csf.Tree
	// Part is the chosen work distribution over Tree.
	Part *sched.Partition
	// Part2 partitions Tree2 when present.
	Part2 *sched.Partition
	// Config is the chosen memoization/layout configuration with its
	// modeled cost.
	Config model.Config
	// AllConfigs lists every evaluated configuration (diagnostics).
	AllConfigs []model.Config
	// PreprocessTime is the time spent in the Algorithm 9 counting pass
	// plus the model search — the quantity of Figure 5.
	PreprocessTime time.Duration
	// BuildTime is the CSF construction time (not part of Fig. 5, which
	// every engine pays).
	BuildTime time.Duration
	// MemoBytes, CSFBytes and FactorBytes give Table II's accounting.
	MemoBytes, CSFBytes, FactorBytes int64
	// Params is the model parameterisation of the chosen layout with
	// row-write stats attached, so AccumCost is callable on it
	// (diagnostics, model-accuracy checks).
	Params model.Params
	// Accum[u] is the accumulation plan for the level-u MTTKRP output.
	// Accum[0] is always nil (the root accumulates through boundary
	// replicas), as is Accum[d-1] under STeF2 (the auxiliary CSF handles
	// the leaf mode as a root). When Remap[u] is set, Accum[u] lives in
	// packed row space and carries the remap as its Layout.
	Accum []*kernels.AccumPlan
	// Remap[l] is the factor-row locality remap for base CSF level l
	// (nil when the level keeps its original row order). Level 0 is never
	// remapped — the root kernel writes its output by fiber id directly —
	// and neither is the base leaf under STeF2, whose auxiliary root does
	// the same.
	Remap []*kernels.RowRemap
	// ExecTree is the tree the engine executes: Tree itself when no level
	// is remapped, otherwise a csf view with the remapped levels' fiber
	// ids rewritten into packed space (node order unchanged, so Part
	// clamps it identically and summation order is preserved). Tree stays
	// in original order for callers that pair raw kernels with
	// original-order factors.
	ExecTree *csf.Tree
	// ExecTree2 is the STeF2 twin of ExecTree (nil unless Tree2 is set).
	ExecTree2 *csf.Tree
}

// Ratio returns Table II's ratio: memoized partial-result storage relative
// to the CSF structure plus factor matrices.
func (p *Plan) Ratio() float64 {
	den := p.CSFBytes + p.FactorBytes
	if den == 0 {
		return 0
	}
	return float64(p.MemoBytes) / float64(den)
}

// NewPlan builds the CSF for t, runs the model search and fixes every
// execution decision.
func NewPlan(t *tensor.Tensor, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	d := t.Order()
	if d < 3 {
		return nil, fmt.Errorf("core: order-%d tensor; STeF needs at least 3 modes", d)
	}
	p := &Plan{Opts: opts}

	buildStart := time.Now()
	basePerm := tensor.LengthSortedPerm(t.Dims)
	baseTree := csf.Build(t, basePerm)
	p.BuildTime = time.Since(buildStart)

	// Preprocessing (Fig. 5): Algorithm 9, the row-write census for the
	// accumulation-cost term, and the exhaustive model search.
	preStart := time.Now()
	baseParams := model.ParamsForCache(baseTree.Dims(), baseTree.FiberCounts(), opts.Rank, opts.CacheBytes)
	baseParams.AttachAccum(levelRowStats(baseTree), opts.Threads, opts.MaxPrivElems)
	if opts.RemapRule != RemapOff {
		baseParams.AttachRemap()
	}
	var swappedParams model.Params
	if opts.SwapRule != SwapNever {
		swappedFibers := baseTree.CountSwappedFibers(opts.Threads)
		swappedParams = model.SwappedParams(baseParams, swappedFibers)
		swappedParams.AttachAccum(swappedRowStats(baseTree, baseParams.Accum, opts.Threads), opts.Threads, opts.MaxPrivElems)
		if opts.RemapRule != RemapOff {
			swappedParams.AttachRemap()
		}
	}
	best, all := model.Search(baseParams, swappedParams)
	p.AllConfigs = all
	p.Config = best
	p.PreprocessTime = time.Since(preStart)

	// Apply the swap rule.
	swap := best.Swap
	switch opts.SwapRule {
	case SwapNever:
		swap = false
	case SwapAlways:
		swap = true
	case SwapOpposite:
		swap = !best.Swap
	}
	chosenParams := baseParams
	if swap != best.Swap || opts.SaveRule != SaveModel {
		// Re-derive the save vector for the layout actually used.
		if swap {
			chosenParams = swappedParams
		}
		bestForLayout := bestSaveFor(chosenParams)
		p.Config = model.Config{Swap: swap, Save: bestForLayout, Cost: chosenParams.IterationCost(bestForLayout), Accum: chosenParams.AccumChoices(), Remap: chosenParams.RemapChoices()}
	} else if swap {
		chosenParams = swappedParams
	}

	// Apply the save rule.
	switch opts.SaveRule {
	case SaveAll:
		save := make([]bool, d)
		for l := 1; l <= d-2; l++ {
			save[l] = true
		}
		p.Config.Save = save
		p.Config.Cost = chosenParams.IterationCost(save)
	case SaveNone:
		p.Config.Save = make([]bool, d)
		p.Config.Cost = chosenParams.IterationCost(p.Config.Save)
	}

	// Materialise the chosen layout.
	if swap {
		start := time.Now()
		baseTree = csf.Build(t, baseTree.SwappedPerm())
		p.BuildTime += time.Since(start)
	}
	p.Tree = baseTree
	if opts.SliceSched {
		p.Part = sched.NewSlicePartitionNNZ(p.Tree, opts.Threads).ToPartition(p.Tree)
	} else {
		p.Part = sched.NewPartition(p.Tree, opts.Threads)
	}

	if opts.SecondCSF {
		start := time.Now()
		perm2 := leafRootedPerm(p.Tree.Perm())
		p.Tree2 = csf.Build(t, perm2)
		if opts.SliceSched {
			p.Part2 = sched.NewSlicePartitionNNZ(p.Tree2, opts.Threads).ToPartition(p.Tree2)
		} else {
			p.Part2 = sched.NewPartition(p.Tree2, opts.Threads)
		}
		p.BuildTime += time.Since(start)
	}

	// Resolve the accumulation plans for the final layout and partition:
	// the write census walks the same clamped spans as the kernels, so its
	// single-writer proofs hold for exactly this execution. Part of the
	// Fig. 5 preprocessing cost.
	accumStart := time.Now()
	p.buildAccum()
	p.PreprocessTime += time.Since(accumStart)

	// Table II accounting.
	p.MemoBytes = p.Params.MemoBytes(p.Config.Save)
	p.CSFBytes = p.Tree.Bytes()
	if p.Tree2 != nil {
		p.CSFBytes += p.Tree2.Bytes()
	}
	for _, n := range t.Dims {
		p.FactorBytes += int64(n) * int64(opts.Rank) * 8
	}
	return p, nil
}

// NewPlanFromTree fixes every execution decision for a pre-built CSF tree
// — typically one opened zero-copy from an arena file (csf.OpenArena) —
// without the COO tensor. The tree's layout is taken as-is: no reorder, no
// CSF build, and no layout swap (the swap would require rebuilding the
// tree from non-zeros the caller no longer has), so planning reduces to
// the memoization search, the partition, and the row-write census for the
// accumulation plans. SwapAlways/SwapOpposite and SecondCSF are rejected
// for the same reason: both need the COO to build an alternative tree.
//
// The caller keeps ownership of the tree's backing: closing an arena while
// the returned plan is in use invalidates every kernel's view of it.
func NewPlanFromTree(tree *csf.Tree, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	d := tree.Order()
	if d < 3 {
		return nil, fmt.Errorf("core: order-%d tree; STeF needs at least 3 modes", d)
	}
	if opts.SecondCSF {
		return nil, fmt.Errorf("core: SecondCSF needs the COO tensor to build the auxiliary tree; plan from the tensor instead")
	}
	if opts.SwapRule == SwapAlways || opts.SwapRule == SwapOpposite {
		return nil, fmt.Errorf("core: swap rules need the COO tensor to rebuild the tree; a pre-built tree keeps its layout")
	}
	p := &Plan{Opts: opts}

	// Memoization search over the fixed layout (the Fig. 5 preprocessing,
	// minus Algorithm 9 — with no swap on the table the swapped layout is
	// never costed).
	preStart := time.Now()
	params := model.ParamsForCache(tree.Dims(), tree.FiberCounts(), opts.Rank, opts.CacheBytes)
	params.AttachAccum(levelRowStats(tree), opts.Threads, opts.MaxPrivElems)
	if opts.RemapRule != RemapOff {
		params.AttachRemap()
	}
	save := bestSaveFor(params)
	switch opts.SaveRule {
	case SaveAll:
		save = make([]bool, d)
		for l := 1; l <= d-2; l++ {
			save[l] = true
		}
	case SaveNone:
		save = make([]bool, d)
	}
	p.Config = model.Config{Save: save, Cost: params.IterationCost(save), Accum: params.AccumChoices(), Remap: params.RemapChoices()}
	p.AllConfigs = []model.Config{p.Config}
	p.PreprocessTime = time.Since(preStart)

	p.Tree = tree
	if opts.SliceSched {
		p.Part = sched.NewSlicePartitionNNZ(p.Tree, opts.Threads).ToPartition(p.Tree)
	} else {
		p.Part = sched.NewPartition(p.Tree, opts.Threads)
	}

	accumStart := time.Now()
	p.buildAccum()
	p.PreprocessTime += time.Since(accumStart)

	p.MemoBytes = p.Params.MemoBytes(p.Config.Save)
	p.CSFBytes = p.Tree.Bytes()
	for _, n := range tree.Dims() {
		p.FactorBytes += int64(n) * int64(opts.Rank) * 8
	}
	return p, nil
}

// levelRowStats condenses every level's row-write histogram for the
// model's accumulation-cost term.
func levelRowStats(tree *csf.Tree) []model.RowStats {
	d := tree.Order()
	stats := make([]model.RowStats, d)
	for u := 1; u < d; u++ {
		stats[u] = model.NewRowStats(tree.LevelRowCounts(u))
	}
	return stats
}

// swappedRowStats derives the swapped layout's row stats without building
// the swapped tree: levels 1..d-3 are unchanged, the last two come from
// the extended Algorithm 9 scan (csf.SwappedRowCounts).
func swappedRowStats(baseTree *csf.Tree, baseStats []model.RowStats, threads int) []model.RowStats {
	d := baseTree.Order()
	stats := make([]model.RowStats, d)
	copy(stats[:d-2], baseStats[:d-2])
	d2, leaf := baseTree.SwappedRowCounts(threads)
	stats[d-2] = model.NewRowStats(d2)
	stats[d-1] = model.NewRowStats(leaf)
	return stats
}

// buildAccum fixes the accumulation plan for every non-root mode. The
// exact row-write census over the final tree and partition runs first; its
// counts and single/multi-writer classification replace the search-time
// histogram estimates before the strategy choice is re-resolved, so the
// executed choice reflects the partition actually used. The census-backed
// Params are stored on the plan for diagnostics.
//
// The same census drives the factor-row remap (ROADMAP 2b): a remapped
// level's census transports into packed space before its accumulation plan
// is resolved, so the plan's remap table, journals and hot set all address
// packed rows, and the plan carries the layout for Reduce to invert. The
// exec views the engine runs against are derived last.
func (p *Plan) buildAccum() {
	opts := p.Opts
	d := p.Tree.Order()
	params := model.ParamsForCache(p.Tree.Dims(), p.Tree.FiberCounts(), opts.Rank, opts.CacheBytes)
	stats := levelRowStats(p.Tree)
	rws := make([]*kernels.RowWrites, d)
	for u := 1; u < d; u++ {
		if u == d-1 && p.Tree2 != nil {
			continue // STeF2 runs the leaf mode as the auxiliary CSF's root
		}
		src := model.SourceLevel(p.Config.Save, u)
		rws[u] = kernels.CountRowWrites(p.Tree, p.Part, u, src)
		st := model.NewRowStats(rws[u].Counts)
		st.MultiMass = rws[u].MultiWriterMass()
		st.MultiExact = true
		stats[u] = st
	}
	params.AttachAccum(stats, opts.Threads, opts.MaxPrivElems)
	params.AttachRemap()
	if p.Tree2 != nil {
		// The auxiliary root writes its output by base-leaf fiber id; that
		// level has no census here and must keep original order.
		params.DisableRemap(d - 1)
	}
	if opts.RemapRule == RemapOff {
		for l := 1; l < d; l++ {
			params.DisableRemap(l)
		}
	}
	p.Params = params
	p.Config.Accum = params.AccumChoices()
	p.Accum = make([]*kernels.AccumPlan, d)
	p.Remap = make([]*kernels.RowRemap, d)
	hotBudget := (opts.CacheBytes / 8) / 2
	for u := 1; u < d; u++ {
		if rws[u] == nil {
			continue
		}
		wantRemap := params.RemapChoices()[u]
		maxHot := int(params.RemapHot(u))
		if opts.RemapRule == RemapOn {
			wantRemap = true
			maxHot = int(hotBudget / int64(opts.Rank))
		}
		census := rws[u]
		if wantRemap {
			if m := kernels.BuildRowRemap(census.Counts, maxHot); m != nil {
				p.Remap[u] = m
				census = census.Remapped(m)
			} else {
				params.DisableRemap(u) // degenerate census: nothing hot to pack
			}
		}
		strat := kernelStrategy(params.AccumChoice(u))
		switch opts.AccumRule {
		case AccumPriv:
			strat = kernels.AccumPriv
		case AccumHybrid:
			strat = kernels.AccumHybrid
		case AccumAtomic:
			strat = kernels.AccumAtomic
		}
		p.Accum[u] = kernels.PlanAccum(census, opts.Rank, opts.Threads, strat, hotBudget)
		p.Accum[u].Layout = p.Remap[u]
	}
	// Config.Remap records what is actually executed (the rule may have
	// forced levels the model declined, or a degenerate census may have
	// dropped levels the model wanted).
	remapOn := make([]bool, d)
	for l, m := range p.Remap {
		remapOn[l] = m != nil
	}
	p.Config.Remap = remapOn
	p.buildExecTrees()
}

// buildExecTrees derives the remapped views the engine executes. With no
// remapped level both views alias the original trees. The STeF2 view
// shifts each base level's map down one level: tree2 level v stores the
// mode at base level v-1 (leafRootedPerm), and tree2's root — the base
// leaf — is never remapped.
func (p *Plan) buildExecTrees() {
	d := p.Tree.Order()
	fwd := make([][]int32, d)
	any := false
	for l, m := range p.Remap {
		if m != nil {
			fwd[l] = m.Fwd
			any = true
		}
	}
	p.ExecTree = p.Tree
	p.ExecTree2 = p.Tree2
	if !any {
		return
	}
	p.ExecTree = p.Tree.RemapFids(fwd)
	if p.Tree2 != nil {
		fwd2 := make([][]int32, d)
		any2 := false
		for l := 1; l <= d-2; l++ {
			if fwd[l] != nil {
				fwd2[l+1] = fwd[l]
				any2 = true
			}
		}
		if any2 {
			p.ExecTree2 = p.Tree2.RemapFids(fwd2)
		}
	}
}

// kernelStrategy maps the model's strategy enum onto the executable one.
func kernelStrategy(s model.AccumStrategy) kernels.AccumStrategy {
	switch s {
	case model.AccumHybrid:
		return kernels.AccumHybrid
	case model.AccumAtomic:
		return kernels.AccumAtomic
	default:
		return kernels.AccumPriv
	}
}

// bestSaveFor returns the cheapest memoization vector for a fixed layout.
func bestSaveFor(params model.Params) []bool {
	var best []bool
	var bestCost int64
	for i, save := range model.EnumerateSaves(len(params.Dims)) {
		c := params.IterationCost(save).Total()
		if i == 0 || c < bestCost {
			best, bestCost = save, c
		}
	}
	return best
}

// leafRootedPerm builds STeF2's second layout: the base leaf mode becomes
// the root; the remaining modes keep their base relative order.
func leafRootedPerm(basePerm []int) []int {
	d := len(basePerm)
	perm := make([]int, 0, d)
	perm = append(perm, basePerm[d-1])
	perm = append(perm, basePerm[:d-1]...)
	return perm
}

package par

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBlocksEdgeCases drives Blocks through the degenerate shapes the
// kernels rely on — n == 0, n < T, T < 1, T == n — and asserts the block
// invariants: every index in [0, n) is covered exactly once, bounds are
// within range, thread ids are distinct, and blocks are contiguous and
// monotone in th. Run under -race this also checks the callbacks are
// properly joined before Blocks returns.
func TestBlocksEdgeCases(t *testing.T) {
	type block struct{ th, lo, hi int }
	cases := []struct{ n, threads int }{
		{0, 1}, {0, 8}, {1, 8}, {2, 2}, {3, 8}, {7, 16},
		{5, 5}, {6, 4}, {10, -3}, {10, 0}, {100, 7}, {101, 8},
	}
	for _, c := range cases {
		seen := make([]int32, c.n)
		var mu sync.Mutex
		var got []block
		Blocks(c.n, c.threads, func(th, lo, hi int) {
			if lo < 0 || hi < lo || hi > c.n {
				t.Errorf("n=%d T=%d: bad block th=%d [%d,%d)", c.n, c.threads, th, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
			mu.Lock()
			got = append(got, block{th, lo, hi})
			mu.Unlock()
		})
		for i, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("n=%d T=%d: index %d visited %d times", c.n, c.threads, i, cnt)
			}
		}
		// Effective invocation count: T < 1 clamps to 1; tiny n collapses
		// to a single call.
		want := c.threads
		if want < 1 {
			want = 1
		}
		if want == 1 || c.n <= 1 {
			want = 1
		}
		if len(got) != want {
			t.Fatalf("n=%d T=%d: %d callbacks, want %d", c.n, c.threads, len(got), want)
		}
		sort.Slice(got, func(i, j int) bool { return got[i].th < got[j].th })
		prevHi := 0
		for i, b := range got {
			if b.th != i {
				t.Fatalf("n=%d T=%d: thread ids not distinct 0..%d: %v", c.n, c.threads, want-1, got)
			}
			if b.lo != prevHi {
				t.Fatalf("n=%d T=%d: block %d starts at %d, want %d (contiguous)", c.n, c.threads, i, b.lo, prevHi)
			}
			prevHi = b.hi
		}
		if prevHi != c.n {
			t.Fatalf("n=%d T=%d: blocks end at %d, want %d", c.n, c.threads, prevHi, c.n)
		}
	}
}

// TestBlocksEmptyBoundaryBlocks pins the n < T behaviour the scheduler's
// boundary handling depends on: surplus threads get empty [lo, lo) blocks
// rather than being skipped, so per-thread buffers stay indexable by th.
func TestBlocksEmptyBoundaryBlocks(t *testing.T) {
	const n, threads = 3, 8
	var empty, calls int32
	Blocks(n, threads, func(th, lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo == hi {
			atomic.AddInt32(&empty, 1)
		}
	})
	if calls != threads {
		t.Fatalf("ran %d callbacks, want %d", calls, threads)
	}
	if empty != threads-n {
		t.Fatalf("%d empty blocks, want %d", empty, threads-n)
	}
}

// TestDoEdgeCases checks the T clamping of Do: non-positive T runs the
// callback exactly once with th == 0; positive T runs th = 0..T-1 each
// exactly once.
func TestDoEdgeCases(t *testing.T) {
	for _, threads := range []int{-5, 0, 1, 2, 7} {
		want := threads
		if want < 1 {
			want = 1
		}
		counts := make([]int32, want)
		Do(threads, func(th int) {
			if th < 0 || th >= want {
				t.Errorf("T=%d: thread id %d out of range", threads, th)
				return
			}
			atomic.AddInt32(&counts[th], 1)
		})
		for th, c := range counts {
			if c != 1 {
				t.Fatalf("T=%d: thread %d ran %d times, want 1", threads, th, c)
			}
		}
	}
}

// Package par provides minimal shared-memory parallel loop helpers built on
// goroutines. All STeF kernels parameterise their thread count explicitly
// (the paper's experiments sweep machine sizes), so helpers take T rather
// than consulting GOMAXPROCS.
package par

import "sync"

// Blocks runs fn(th, lo, hi) for T contiguous, nearly equal blocks of
// [0, n), one goroutine per block, and waits for all of them. Block th
// covers [lo, hi). Blocks may be empty when n < T. T < 1 is treated as 1.
func Blocks(n, t int, fn func(th, lo, hi int)) {
	if t < 1 {
		t = 1
	}
	if t == 1 || n <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for th := 0; th < t; th++ {
		lo := th * n / t
		hi := (th + 1) * n / t
		//gate:allow escape goroutine closure, one allocation per thread launch, not per-nnz
		go func(th, lo, hi int) {
			defer wg.Done()
			fn(th, lo, hi)
		}(th, lo, hi)
	}
	wg.Wait()
}

// Do runs fn(th) for th in [0, T) concurrently and waits.
func Do(t int, fn func(th int)) {
	if t < 1 {
		t = 1
	}
	if t == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t)
	for th := 0; th < t; th++ {
		//gate:allow escape goroutine closure, one allocation per thread launch, not per-nnz
		go func(th int) {
			defer wg.Done()
			fn(th)
		}(th)
	}
	wg.Wait()
}

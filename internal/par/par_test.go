package par

import (
	"sync/atomic"
	"testing"
)

func TestBlocksCoversRangeExactly(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, threads := range []int{1, 2, 3, 8, 200} {
			seen := make([]int32, n)
			Blocks(n, threads, func(th, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d T=%d: index %d visited %d times", n, threads, i, c)
				}
			}
		}
	}
}

func TestBlocksThreadIDsDistinct(t *testing.T) {
	const threads = 6
	var mask int64
	Blocks(600, threads, func(th, lo, hi int) {
		atomic.AddInt64(&mask, 1<<th)
	})
	if mask != (1<<threads)-1 {
		t.Fatalf("thread mask %b", mask)
	}
}

func TestBlocksZeroThreads(t *testing.T) {
	ran := false
	Blocks(5, 0, func(th, lo, hi int) {
		if th != 0 || lo != 0 || hi != 5 {
			t.Errorf("th=%d lo=%d hi=%d", th, lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("callback not invoked")
	}
}

func TestDoRunsAll(t *testing.T) {
	var count int64
	Do(9, func(th int) { atomic.AddInt64(&count, 1) })
	if count != 9 {
		t.Fatalf("ran %d, want 9", count)
	}
	count = 0
	Do(0, func(th int) { atomic.AddInt64(&count, 1) })
	if count != 1 {
		t.Fatalf("Do(0) ran %d, want 1", count)
	}
}

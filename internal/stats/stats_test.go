package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g", got)
	}
	if got := GeoMean([]float64{5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("GeoMean(5) = %g", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{-1, 0, 4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(-1,0,4) = %g", got)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 3 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) = %g", Mean(nil))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max not infinite")
	}
}

func TestKendallTau(t *testing.T) {
	if got := KendallTau([]float64{1, 2, 3}, []float64{10, 20, 30}); got != 1 {
		t.Errorf("identical order tau %g", got)
	}
	if got := KendallTau([]float64{1, 2, 3}, []float64{30, 20, 10}); got != -1 {
		t.Errorf("reversed order tau %g", got)
	}
	if got := KendallTau([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("single pair tau %g", got)
	}
	if got := KendallTau([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("mismatched length tau %g", got)
	}
	// One discordant pair out of three: tau = (2-1)/3.
	got := KendallTau([]float64{1, 2, 3}, []float64{1, 3, 2})
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("partial order tau %g, want 1/3", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("short", 1)
	tab.AddRow("a-much-longer-name", 2.5)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator line %q", lines[1])
	}
	if !strings.Contains(lines[3], "2.500") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "value")
	for _, l := range lines[2:] {
		if len(l) <= idx {
			t.Errorf("row %q shorter than header column offset", l)
		}
	}
}

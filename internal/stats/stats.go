// Package stats provides the small numeric and formatting helpers the
// benchmark harness uses: geometric means, load-imbalance summaries and
// aligned text tables.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// GeoMean returns the geometric mean of xs, ignoring non-positive entries
// (they cannot be folded into a geometric mean); it returns 0 when no
// positive entries exist.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// KendallTau returns the Kendall rank-correlation coefficient between two
// paired samples: +1 for identical orderings, -1 for reversed, 0 for
// unrelated. Ties count as discordant-neutral (tau-a). It returns 0 for
// fewer than two pairs.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if len(b) != n || n < 2 {
		return 0
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs)
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

package dtree

import (
	"fmt"
	"math"
	"testing"

	"stef/internal/cpd"
	"stef/internal/kernels"
	"stef/internal/tensor"
)

func TestDTreeMatchesReferenceStatic(t *testing.T) {
	for _, dims := range [][]int{{7, 9, 11}, {6, 5, 9, 8}, {3, 4, 5, 6, 4}, {4, 6}} {
		nnz := 300
		if space := product(dims); nnz > space {
			nnz = space / 2
		}
		tt := tensor.Random(dims, nnz, nil, 5)
		const rank = 4
		factors := tensor.RandomFactors(tt.Dims, rank, 2)
		for _, threads := range []int{1, 3} {
			eng, err := NewEngine(tt, Options{Rank: rank, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			ws := eng.NewWorkspace()
			ws.Reset()
			order := eng.UpdateOrder()
			for pos := 0; pos < tt.Order(); pos++ {
				m := order[pos]
				got := tensor.NewMatrix(tt.Dims[m], rank)
				eng.Compute(ws, pos, factors, got)
				want := kernels.Reference(tt, factors, m)
				if diff := got.MaxAbsDiff(want); diff > 1e-9*(1+want.NormFrobenius()) {
					t.Errorf("dims=%v T=%d mode %d: diff %g", dims, threads, m, diff)
				}
			}
		}
	}
}

// TestDTreeWithFactorUpdates is the critical cache-invalidation test: the
// engine must track which factors each cached partial used, across two full
// ALS-style iterations with updates after every mode.
func TestDTreeWithFactorUpdates(t *testing.T) {
	tt := tensor.Random([]int{8, 10, 12, 6}, 400, nil, 13)
	const rank = 3
	d := tt.Order()
	eng, err := NewEngine(tt, Options{Rank: rank, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	factors := tensor.RandomFactors(tt.Dims, rank, 99)
	ws := eng.NewWorkspace()
	ws.Reset()
	order := eng.UpdateOrder()
	for iter := 0; iter < 2; iter++ {
		for pos := 0; pos < d; pos++ {
			m := order[pos]
			got := tensor.NewMatrix(tt.Dims[m], rank)
			eng.Compute(ws, pos, factors, got)
			want := kernels.Reference(tt, factors, m)
			if diff := got.MaxAbsDiff(want); diff > 1e-9*(1+want.NormFrobenius()) {
				t.Fatalf("iter %d mode %d: diff %g (stale cached partial?)", iter, m, diff)
			}
			for i := range factors[m].Data {
				factors[m].Data[i] = math.Mod(factors[m].Data[i]*1.7+0.3, 1.0)
			}
		}
	}
}

func TestDTreeFullCPD(t *testing.T) {
	tt := tensor.Random([]int{10, 15, 20}, 500, nil, 3)
	normX := tt.NormFrobenius()
	opts := cpd.Options{Rank: 4, MaxIters: 8, Tol: -1, Seed: 42}
	naive, err := cpd.Run(tt.Dims, normX, cpd.NaiveEngine(tt), opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(tt, Options{Rank: 4, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpd.Run(tt.Dims, normX, eng, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Identical update order and seed: trajectories must match closely.
	if math.Abs(res.FinalFit()-naive.FinalFit()) > 1e-9 {
		t.Fatalf("dtree fit %.8f vs naive %.8f", res.FinalFit(), naive.FinalFit())
	}
}

// TestDTreeReuseCount checks the engine actually reuses cached partials:
// a second iteration must not recompute everything from the raw tensor.
func TestDTreeReuseCount(t *testing.T) {
	tt := tensor.Random([]int{6, 7, 8, 9}, 300, nil, 4)
	eng, err := NewEngine(tt, Options{Rank: 3, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	factors := tensor.RandomFactors(tt.Dims, 3, 1)
	outs := make([]*tensor.Matrix, 4)
	for m := range outs {
		outs[m] = tensor.NewMatrix(tt.Dims[m], 3)
	}
	ws := eng.NewWorkspace()
	ws.Reset()
	// First sweep without factor updates...
	for pos := 0; pos < 4; pos++ {
		eng.Compute(ws, pos, factors, outs[pos])
	}
	first := make([]*tensor.Matrix, 4)
	for m := range first {
		first[m] = outs[m].Clone()
	}
	// ...and a second sweep, still without updates: identical results.
	for pos := 0; pos < 4; pos++ {
		eng.Compute(ws, pos, factors, outs[pos])
		if diff := outs[pos].MaxAbsDiff(first[pos]); diff != 0 {
			t.Fatalf("pos %d changed across idempotent sweeps by %g", pos, diff)
		}
	}
}

func product(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

func TestDTreeRejectsOrder1(t *testing.T) {
	tt := tensor.New([]int{5}, 1)
	tt.Append([]int32{2}, 1)
	if _, err := NewEngine(tt, Options{Rank: 2}); err == nil {
		t.Fatal("order-1 tensor accepted")
	}
}

func ExampleNewEngine() {
	tt := tensor.Random([]int{5, 6, 7}, 50, nil, 1)
	eng, _ := NewEngine(tt, Options{Rank: 3, Threads: 1})
	fmt.Println(eng.Name(), eng.UpdateOrder())
	// Output: dtree [0 1 2]
}

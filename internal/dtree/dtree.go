// Package dtree implements CPD-ALS MTTKRP via a balanced dimension tree
// (Kaya & Uçar, "Parallel CP decomposition of sparse tensors using
// dimension trees", 2016). The paper reproduced in this repository cites
// the scheme but could not compare against it empirically because the
// authors' HyperTensor implementation was never released; this package
// provides that missing comparison point.
//
// The tree recursively halves the mode set. Every node stores the tensor
// partially contracted with the factor matrices of all modes OUTSIDE the
// node's set: a semi-sparse tensor whose coordinates range over the node's
// modes and whose values are rank-R vectors. A leaf {m} is exactly the
// mode-m MTTKRP result. Consecutive MTTKRPs share all internal nodes on
// their common root paths; nodes are recomputed lazily when a factor they
// contracted has been updated (tracked with version counters), which
// reproduces the dimension-tree reuse schedule without hard-coding it.
//
// Unlike the other engines, the dimension tree's cached partials ARE the
// algorithm, so they live in the workspace: each workspace owns a private
// tree whose node caches persist across Compute calls (that persistence is
// the reuse schedule) and are dropped by Reset when a workspace is recycled
// for an unrelated solve.
package dtree

import (
	"fmt"
	"sort"

	"stef/internal/cpd"
	"stef/internal/par"
	"stef/internal/tensor"
)

// Options configures the dimension-tree engine.
type Options struct {
	// Rank is the decomposition rank.
	Rank int
	// Threads parallelises the contraction passes.
	Threads int
}

// node is one vertex of the dimension tree.
type node struct {
	modes       []int // sorted original mode ids covered by this subtree
	parent      *node
	left, right *node
	// Semi-sparse partial tensor: coords is n×len(modes), vecs is n×R.
	coords []int32
	vecs   []float64
	n      int
	// usedVer[m] records the version of factor m this partial was
	// contracted with; valid reports whether the node holds data at all.
	usedVer map[int]int64
	valid   bool
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// dtreeEngine is the immutable engine: the tensor, rank and thread count.
type dtreeEngine struct {
	t       *tensor.Tensor
	rank    int
	threads int
	order   []int
}

// workspace owns one solve's dimension tree and factor version counters.
type workspace struct {
	e      *dtreeEngine
	root   *node
	leaves []*node // leaves[m] is the leaf for original mode m
	ver    map[int]int64
	calls  int
}

// Reset drops all cached partials (keeping node buffer capacity) and the
// version counters, so a recycled workspace cannot serve stale contractions
// to a solve with different factors.
func (w *workspace) Reset() {
	w.calls = 0
	for m := range w.ver {
		delete(w.ver, m)
	}
	var clear func(nd *node)
	clear = func(nd *node) {
		if nd == nil {
			return
		}
		nd.valid = false
		for m := range nd.usedVer {
			delete(nd.usedVer, m)
		}
		clear(nd.left)
		clear(nd.right)
	}
	clear(w.root)
}

// build constructs the balanced tree over modes lo..hi-1.
func build(lo, hi int, parent *node) *node {
	modes := make([]int, 0, hi-lo)
	for m := lo; m < hi; m++ {
		modes = append(modes, m)
	}
	nd := &node{modes: modes, parent: parent, usedVer: map[int]int64{}}
	if hi-lo > 1 {
		mid := (lo + hi) / 2
		nd.left = build(lo, mid, nd)
		nd.right = build(mid, hi, nd)
	}
	return nd
}

func (e *dtreeEngine) Name() string { return "dtree" }

func (e *dtreeEngine) UpdateOrder() []int { return e.order }

func (e *dtreeEngine) NewWorkspace() cpd.Workspace {
	d := e.t.Order()
	w := &workspace{e: e, ver: map[int]int64{}}
	w.root = build(0, d, nil)
	w.leaves = make([]*node, d)
	var collect func(nd *node)
	collect = func(nd *node) {
		if nd.isLeaf() {
			w.leaves[nd.modes[0]] = nd
			return
		}
		collect(nd.left)
		collect(nd.right)
	}
	collect(w.root)
	return w
}

func (e *dtreeEngine) Compute(ws cpd.Workspace, pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	w, ok := ws.(*workspace)
	if !ok {
		panic(fmt.Sprintf("dtree: Compute got workspace type %T", ws))
	}
	w.compute(pos, factors, out)
}

// NewEngine builds the dimension-tree MTTKRP engine.
func NewEngine(t *tensor.Tensor, opts Options) (cpd.Engine, error) {
	d := t.Order()
	if d < 2 {
		return nil, fmt.Errorf("dtree: order-%d tensor", d)
	}
	if opts.Rank <= 0 {
		opts.Rank = 16
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	return &dtreeEngine{t: t, rank: opts.Rank, threads: opts.Threads, order: order}, nil
}

// compute produces the MTTKRP for update position pos.
func (w *workspace) compute(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	d := w.e.t.Order()
	// ALS semantics: when Compute(pos) runs, the factor updated most
	// recently is the previous position's (or the last mode of the
	// previous iteration for pos 0). Bump its version so dependent
	// cached partials are recomputed on demand.
	if w.calls > 0 {
		prev := pos - 1
		if prev < 0 {
			prev = d - 1
		}
		w.ver[prev]++
	}
	w.calls++

	m := pos // UpdateOrder is the identity
	leaf := w.leaves[m]
	w.ensure(leaf, factors)
	out.Zero()
	r := w.e.rank
	for i := 0; i < leaf.n; i++ {
		copy(out.Row(int(leaf.coords[i])), leaf.vecs[i*r:(i+1)*r])
	}
}

// deps returns the modes contracted into nd's partial (everything outside
// its subtree).
func (w *workspace) deps(nd *node) []int {
	inSet := map[int]bool{}
	for _, m := range nd.modes {
		inSet[m] = true
	}
	var out []int
	for m := 0; m < w.e.t.Order(); m++ {
		if !inSet[m] {
			out = append(out, m)
		}
	}
	return out
}

// ensure (re)computes nd's partial if any contracted factor changed.
func (w *workspace) ensure(nd *node, factors []*tensor.Matrix) {
	if nd == w.root {
		return // the root is the tensor itself
	}
	if nd.valid {
		fresh := true
		for _, m := range w.deps(nd) {
			if nd.usedVer[m] != w.ver[m] {
				fresh = false
				break
			}
		}
		if fresh {
			return
		}
	}
	w.ensure(nd.parent, factors)
	w.contractFromParent(nd, factors)
	nd.valid = true
	for _, m := range w.deps(nd) {
		nd.usedVer[m] = w.ver[m]
	}
}

// contractFromParent recomputes nd's partial from its parent (or from the
// raw tensor when the parent is the root): entries are projected onto nd's
// modes, multiplied by the Hadamard product of the removed modes' factor
// rows, and reduced by coordinate.
func (w *workspace) contractFromParent(nd *node, factors []*tensor.Matrix) {
	t := w.e.t
	r := w.e.rank
	parent := nd.parent
	fromTensor := parent == w.root

	var (
		pn      int     // parent entry count
		pModes  []int   // parent coordinate layout
		pCoords []int32 // parent coordinates
	)
	if fromTensor {
		pn = t.NNZ()
		pModes = make([]int, t.Order())
		for i := range pModes {
			pModes[i] = i
		}
		pCoords = t.Inds
	} else {
		pn = parent.n
		pModes = parent.modes
		pCoords = parent.coords
	}
	// Positions of kept and removed modes within the parent layout.
	keepPos := make([]int, len(nd.modes))
	for i, m := range nd.modes {
		keepPos[i] = indexOf(pModes, m)
	}
	removed := diff(pModes, nd.modes)
	remPos := make([]int, len(removed))
	for i, m := range removed {
		remPos[i] = indexOf(pModes, m)
	}

	// Pack child coordinates into sortable keys.
	strides := make([]uint64, len(nd.modes))
	s := uint64(1)
	for i := len(nd.modes) - 1; i >= 0; i-- {
		strides[i] = s
		s *= uint64(t.Dims[nd.modes[i]])
	}
	pw := len(pModes)
	keys := make([]uint64, pn)
	par.Blocks(pn, w.e.threads, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			c := pCoords[j*pw : (j+1)*pw]
			key := uint64(0)
			for i, kp := range keepPos {
				key += strides[i] * uint64(c[kp])
			}
			keys[j] = key
		}
	})
	perm := make([]int32, pn)
	for j := range perm {
		perm[j] = int32(j)
	}
	sort.Slice(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })

	// Single reduction pass: contiguous equal keys accumulate into one
	// output entry.
	nd.coords = nd.coords[:0]
	nd.vecs = nd.vecs[:0]
	nd.n = 0
	vec := make([]float64, r)
	flush := func(key uint64) {
		// Decode the key back into coordinates.
		for i := range nd.modes {
			nd.coords = append(nd.coords, int32(key/strides[i]%uint64(t.Dims[nd.modes[i]])))
		}
		nd.vecs = append(nd.vecs, vec...)
		nd.n++
	}
	var curKey uint64
	started := false
	for _, pj := range perm {
		j := int(pj)
		key := keys[j]
		if !started || key != curKey {
			if started {
				flush(curKey)
			}
			for i := range vec {
				vec[i] = 0
			}
			curKey = key
			started = true
		}
		c := pCoords[j*pw : (j+1)*pw]
		if fromTensor {
			v := t.Vals[j]
			if len(remPos) == 0 {
				for i := 0; i < r; i++ {
					vec[i] += v
				}
			} else {
				f0 := factors[removed[0]].Row(int(c[remPos[0]]))
				switch len(remPos) {
				case 1:
					for i := 0; i < r; i++ {
						vec[i] += v * f0[i]
					}
				default:
					tmp := make([]float64, r)
					for i := 0; i < r; i++ {
						tmp[i] = v * f0[i]
					}
					for q := 1; q < len(remPos); q++ {
						fq := factors[removed[q]].Row(int(c[remPos[q]]))
						for i := 0; i < r; i++ {
							tmp[i] *= fq[i]
						}
					}
					for i := 0; i < r; i++ {
						vec[i] += tmp[i]
					}
				}
			}
		} else {
			pv := parent.vecs[j*r : (j+1)*r]
			switch len(remPos) {
			case 0:
				for i := 0; i < r; i++ {
					vec[i] += pv[i]
				}
			case 1:
				f0 := factors[removed[0]].Row(int(c[remPos[0]]))
				for i := 0; i < r; i++ {
					vec[i] += pv[i] * f0[i]
				}
			default:
				tmp := make([]float64, r)
				copy(tmp, pv)
				for q := 0; q < len(remPos); q++ {
					fq := factors[removed[q]].Row(int(c[remPos[q]]))
					for i := 0; i < r; i++ {
						tmp[i] *= fq[i]
					}
				}
				for i := 0; i < r; i++ {
					vec[i] += tmp[i]
				}
			}
		}
	}
	if started {
		flush(curKey)
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	panic(fmt.Sprintf("dtree: mode %d not in %v", v, xs))
}

func diff(all, sub []int) []int {
	inSub := map[int]bool{}
	for _, m := range sub {
		inSub[m] = true
	}
	var out []int
	for _, m := range all {
		if !inSub[m] {
			out = append(out, m)
		}
	}
	return out
}

// Package dtree implements CPD-ALS MTTKRP via a balanced dimension tree
// (Kaya & Uçar, "Parallel CP decomposition of sparse tensors using
// dimension trees", 2016). The paper reproduced in this repository cites
// the scheme but could not compare against it empirically because the
// authors' HyperTensor implementation was never released; this package
// provides that missing comparison point.
//
// The tree recursively halves the mode set. Every node stores the tensor
// partially contracted with the factor matrices of all modes OUTSIDE the
// node's set: a semi-sparse tensor whose coordinates range over the node's
// modes and whose values are rank-R vectors. A leaf {m} is exactly the
// mode-m MTTKRP result. Consecutive MTTKRPs share all internal nodes on
// their common root paths; nodes are recomputed lazily when a factor they
// contracted has been updated (tracked with version counters), which
// reproduces the dimension-tree reuse schedule without hard-coding it.
package dtree

import (
	"fmt"
	"sort"

	"stef/internal/cpd"
	"stef/internal/par"
	"stef/internal/tensor"
)

// Options configures the dimension-tree engine.
type Options struct {
	// Rank is the decomposition rank.
	Rank int
	// Threads parallelises the contraction passes.
	Threads int
}

// node is one vertex of the dimension tree.
type node struct {
	modes       []int // sorted original mode ids covered by this subtree
	parent      *node
	left, right *node
	// Semi-sparse partial tensor: coords is n×len(modes), vecs is n×R.
	coords []int32
	vecs   []float64
	n      int
	// usedVer[m] records the version of factor m this partial was
	// contracted with; valid reports whether the node holds data at all.
	usedVer map[int]int64
	valid   bool
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// engineState holds the tree plus factor version counters.
type engineState struct {
	t       *tensor.Tensor
	rank    int
	threads int
	root    *node
	leaves  []*node // leaves[m] is the leaf for original mode m
	ver     map[int]int64
	calls   int
}

// build constructs the balanced tree over modes lo..hi-1.
func build(lo, hi int, parent *node) *node {
	modes := make([]int, 0, hi-lo)
	for m := lo; m < hi; m++ {
		modes = append(modes, m)
	}
	nd := &node{modes: modes, parent: parent, usedVer: map[int]int64{}}
	if hi-lo > 1 {
		mid := (lo + hi) / 2
		nd.left = build(lo, mid, nd)
		nd.right = build(mid, hi, nd)
	}
	return nd
}

// NewEngine builds the dimension-tree MTTKRP engine.
func NewEngine(t *tensor.Tensor, opts Options) (*cpd.Engine, error) {
	d := t.Order()
	if d < 2 {
		return nil, fmt.Errorf("dtree: order-%d tensor", d)
	}
	if opts.Rank <= 0 {
		opts.Rank = 16
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	st := &engineState{t: t, rank: opts.Rank, threads: opts.Threads, ver: map[int]int64{}}
	st.root = build(0, d, nil)
	st.leaves = make([]*node, d)
	var collect func(nd *node)
	collect = func(nd *node) {
		if nd.isLeaf() {
			st.leaves[nd.modes[0]] = nd
			return
		}
		collect(nd.left)
		collect(nd.right)
	}
	collect(st.root)

	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	return &cpd.Engine{
		Name:        "dtree",
		UpdateOrder: order,
		Compute: func(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
			st.compute(pos, factors, out)
		},
	}, nil
}

// compute produces the MTTKRP for update position pos.
func (st *engineState) compute(pos int, factors []*tensor.Matrix, out *tensor.Matrix) {
	d := st.t.Order()
	// ALS semantics: when Compute(pos) runs, the factor updated most
	// recently is the previous position's (or the last mode of the
	// previous iteration for pos 0). Bump its version so dependent
	// cached partials are recomputed on demand.
	if st.calls > 0 {
		prev := pos - 1
		if prev < 0 {
			prev = d - 1
		}
		st.ver[prev]++
	}
	st.calls++

	m := pos // UpdateOrder is the identity
	leaf := st.leaves[m]
	st.ensure(leaf, factors)
	out.Zero()
	r := st.rank
	for i := 0; i < leaf.n; i++ {
		copy(out.Row(int(leaf.coords[i])), leaf.vecs[i*r:(i+1)*r])
	}
}

// deps returns the modes contracted into nd's partial (everything outside
// its subtree).
func (st *engineState) deps(nd *node) []int {
	inSet := map[int]bool{}
	for _, m := range nd.modes {
		inSet[m] = true
	}
	var out []int
	for m := 0; m < st.t.Order(); m++ {
		if !inSet[m] {
			out = append(out, m)
		}
	}
	return out
}

// ensure (re)computes nd's partial if any contracted factor changed.
func (st *engineState) ensure(nd *node, factors []*tensor.Matrix) {
	if nd == st.root {
		return // the root is the tensor itself
	}
	if nd.valid {
		fresh := true
		for _, m := range st.deps(nd) {
			if nd.usedVer[m] != st.ver[m] {
				fresh = false
				break
			}
		}
		if fresh {
			return
		}
	}
	st.ensure(nd.parent, factors)
	st.contractFromParent(nd, factors)
	nd.valid = true
	for _, m := range st.deps(nd) {
		nd.usedVer[m] = st.ver[m]
	}
}

// contractFromParent recomputes nd's partial from its parent (or from the
// raw tensor when the parent is the root): entries are projected onto nd's
// modes, multiplied by the Hadamard product of the removed modes' factor
// rows, and reduced by coordinate.
func (st *engineState) contractFromParent(nd *node, factors []*tensor.Matrix) {
	r := st.rank
	parent := nd.parent
	fromTensor := parent == st.root

	var (
		pn      int     // parent entry count
		pModes  []int   // parent coordinate layout
		pCoords []int32 // parent coordinates
	)
	if fromTensor {
		pn = st.t.NNZ()
		pModes = make([]int, st.t.Order())
		for i := range pModes {
			pModes[i] = i
		}
		pCoords = st.t.Inds
	} else {
		pn = parent.n
		pModes = parent.modes
		pCoords = parent.coords
	}
	// Positions of kept and removed modes within the parent layout.
	keepPos := make([]int, len(nd.modes))
	for i, m := range nd.modes {
		keepPos[i] = indexOf(pModes, m)
	}
	removed := diff(pModes, nd.modes)
	remPos := make([]int, len(removed))
	for i, m := range removed {
		remPos[i] = indexOf(pModes, m)
	}

	// Pack child coordinates into sortable keys.
	strides := make([]uint64, len(nd.modes))
	s := uint64(1)
	for i := len(nd.modes) - 1; i >= 0; i-- {
		strides[i] = s
		s *= uint64(st.t.Dims[nd.modes[i]])
	}
	pw := len(pModes)
	keys := make([]uint64, pn)
	par.Blocks(pn, st.threads, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			c := pCoords[j*pw : (j+1)*pw]
			key := uint64(0)
			for i, kp := range keepPos {
				key += strides[i] * uint64(c[kp])
			}
			keys[j] = key
		}
	})
	perm := make([]int32, pn)
	for j := range perm {
		perm[j] = int32(j)
	}
	sort.Slice(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })

	// Single reduction pass: contiguous equal keys accumulate into one
	// output entry.
	nd.coords = nd.coords[:0]
	nd.vecs = nd.vecs[:0]
	nd.n = 0
	vec := make([]float64, r)
	flush := func(key uint64) {
		// Decode the key back into coordinates.
		for i := range nd.modes {
			nd.coords = append(nd.coords, int32(key/strides[i]%uint64(st.t.Dims[nd.modes[i]])))
		}
		nd.vecs = append(nd.vecs, vec...)
		nd.n++
	}
	var curKey uint64
	started := false
	for _, pj := range perm {
		j := int(pj)
		key := keys[j]
		if !started || key != curKey {
			if started {
				flush(curKey)
			}
			for i := range vec {
				vec[i] = 0
			}
			curKey = key
			started = true
		}
		c := pCoords[j*pw : (j+1)*pw]
		if fromTensor {
			v := st.t.Vals[j]
			if len(remPos) == 0 {
				for i := 0; i < r; i++ {
					vec[i] += v
				}
			} else {
				f0 := factors[removed[0]].Row(int(c[remPos[0]]))
				switch len(remPos) {
				case 1:
					for i := 0; i < r; i++ {
						vec[i] += v * f0[i]
					}
				default:
					tmp := make([]float64, r)
					for i := 0; i < r; i++ {
						tmp[i] = v * f0[i]
					}
					for q := 1; q < len(remPos); q++ {
						fq := factors[removed[q]].Row(int(c[remPos[q]]))
						for i := 0; i < r; i++ {
							tmp[i] *= fq[i]
						}
					}
					for i := 0; i < r; i++ {
						vec[i] += tmp[i]
					}
				}
			}
		} else {
			pv := parent.vecs[j*r : (j+1)*r]
			switch len(remPos) {
			case 0:
				for i := 0; i < r; i++ {
					vec[i] += pv[i]
				}
			case 1:
				f0 := factors[removed[0]].Row(int(c[remPos[0]]))
				for i := 0; i < r; i++ {
					vec[i] += pv[i] * f0[i]
				}
			default:
				tmp := make([]float64, r)
				copy(tmp, pv)
				for q := 0; q < len(remPos); q++ {
					fq := factors[removed[q]].Row(int(c[remPos[q]]))
					for i := 0; i < r; i++ {
						tmp[i] *= fq[i]
					}
				}
				for i := 0; i < r; i++ {
					vec[i] += tmp[i]
				}
			}
		}
	}
	if started {
		flush(curKey)
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	panic(fmt.Sprintf("dtree: mode %d not in %v", v, xs))
}

func diff(all, sub []int) []int {
	inSub := map[int]bool{}
	for _, m := range sub {
		inSub[m] = true
	}
	var out []int
	for _, m := range all {
		if !inSub[m] {
			out = append(out, m)
		}
	}
	return out
}

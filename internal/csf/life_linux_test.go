//go:build lifetrace && linux

package csf

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLifetraceCloseQuarantinesMapping pins that under lifetrace Close
// routes the mapping into the PROT_NONE quarantine instead of unmapping,
// and that the sync.Once idempotence guard quarantines it exactly once.
func TestLifetraceCloseQuarantinesMapping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.stef")
	if err := mustTree([]int{6, 7, 8}, 100, 1).WriteArena(path); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	before := QuarantinedMappings()
	tree, err := OpenArena(path)
	if err != nil {
		t.Fatalf("OpenArena: %v", err)
	}
	if err := tree.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := QuarantinedMappings(); got != before+1 {
		t.Fatalf("QuarantinedMappings = %d after Close, want %d", got, before+1)
	}
	if err := tree.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := QuarantinedMappings(); got != before+1 {
		t.Fatalf("QuarantinedMappings = %d after double Close, want %d (once-guarded)", got, before+1)
	}
}

// TestLifetraceUseAfterCloseFaults proves the quarantine makes
// use-after-close deterministic: a child process reads a level view after
// Close and must die on a fault (the mapping is PROT_NONE), never read
// recycled bytes. The test re-execs itself; the env var selects the
// child branch.
func TestLifetraceUseAfterCloseFaults(t *testing.T) {
	if path := os.Getenv("STEF_LIFETRACE_CHILD_ARENA"); path != "" {
		tree, err := OpenArena(path)
		if err != nil {
			os.Exit(3)
		}
		vals := tree.ValsLevel()
		_ = tree.Close()
		if vals[0] > 0 { // must fault here: the mapping is PROT_NONE
			os.Exit(4)
		}
		os.Exit(0) // unreachable if the oracle works
	}
	path := filepath.Join(t.TempDir(), "fault.stef")
	if err := mustTree([]int{6, 7, 8}, 100, 2).WriteArena(path); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestLifetraceUseAfterCloseFaults$")
	cmd.Env = append(os.Environ(), "STEF_LIFETRACE_CHILD_ARENA="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child survived a read through a closed mapping; output:\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "unexpected fault address") && !strings.Contains(text, "SIGSEGV") {
		t.Fatalf("child died without a fault diagnosis (err %v); output:\n%s", err, text)
	}
}

//go:build linux && lifetrace

package csf

import (
	"sync"
	"syscall"
)

// Under -tags lifetrace a closed arena mapping is never unmapped: it is
// re-protected PROT_NONE and held quarantined until process exit. The
// address range therefore can never be recycled by a later allocation or
// mapping, so a use-after-Close through any stale accessor view faults
// deterministically (SIGSEGV on the first touch) instead of silently
// reading whatever the kernel placed there next — the failure mode the
// lifetime analyzer proves absent and this oracle makes loud when a path
// escapes the proof.

var (
	quarantineMu sync.Mutex
	quarantined  [][]byte
)

func releaseMapping(data []byte) error {
	if err := syscall.Mprotect(data, syscall.PROT_NONE); err != nil {
		return err
	}
	quarantineMu.Lock()
	quarantined = append(quarantined, data)
	quarantineMu.Unlock()
	return nil
}

// QuarantinedMappings reports how many closed mappings are held in
// quarantine. Test-facing: it pins that Close actually routed through the
// quarantine rather than unmapping.
func QuarantinedMappings() int {
	quarantineMu.Lock()
	defer quarantineMu.Unlock()
	return len(quarantined)
}

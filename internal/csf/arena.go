package csf

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"stef/internal/tensor"
)

// CSF arena files: a single flat on-disk image of a Tree with a fixed
// header and 8-byte-aligned sections, designed to be opened zero-copy.
// Where the CSF1 stream (serialize.go) is decoded element by element into
// heap slices — an O(nnz) copy that made the paper's 100M+-nnz tensors
// need 128 GB hosts — an arena is mapped read-only into the address space
// (OpenArena, mmap_linux.go) and the level arrays become views into the
// mapping: the open costs O(rank) page touches regardless of nnz, and the
// OS pages the tensor in and out on demand. On platforms without mmap
// support the same file is read into heap slices (mmap_other.go), so the
// API and the resulting Tree are identical either way.
//
// Layout (all integers little-endian; every section offset 8-byte aligned):
//
//	offset 0   magic  "STEFARN1" (8 bytes)
//	offset 8   uint32 version (currently 1)
//	offset 12  uint32 endianness mark 0x0A0B0C0D, written in the file's
//	           byte order — a big-endian writer would be read back as
//	           0x0D0C0B0A and rejected
//	offset 16  uint32 order d (2..64)
//	offset 20  uint32 reserved (must be 0)
//	offset 24  section table: (2d+2) entries of {offset int64, count int64},
//	           count in elements, in file order:
//	             section 0        dims  (d × int64)
//	             section 1        perm  (d × int64)
//	             section 2+l      fids[l] (count × int32), l = 0..d-1
//	             section 2+d+l    ptr[l]  (count × int64), l = 0..d-2
//	             section 2d+1     vals  (count × float64)
//	data sections follow in table order, zero-padded to 8-byte alignment.
const (
	arenaMagic      = "STEFARN1"
	arenaVersion    = 1
	arenaEndianMark = 0x0A0B0C0D
	// arenaFixedHeader is the byte size of the fixed part of the header,
	// before the section table.
	arenaFixedHeader = 24
	// arenaMaxOrder mirrors the CSF1 stream's plausibility bound on d.
	arenaMaxOrder = 64
)

// arenaSections returns the number of table entries for order d.
//
// idx: return rank
func arenaSections(d int) int { return 2*d + 2 }

// arenaHeaderSize returns the byte size of the full header for order d:
// 24 fixed bytes plus 16 per section. Already 8-byte aligned.
//
// idx: return bytes
func arenaHeaderSize(d int) int64 { return arenaFixedHeader + 16*int64(arenaSections(d)) }

// arenaSection is one parsed section-table entry.
type arenaSection struct {
	//idx: bytes
	off int64
	//idx: nnz
	count int64
}

// arenaGeometry is the validated header of an arena file: the order plus
// every section's location, cross-checked against the file size and
// against each other before anything is mapped or allocated.
type arenaGeometry struct {
	//idx: rank
	d int
	// sections is indexed as the layout comment describes: 0 dims, 1 perm,
	// 2+l fids, 2+d+l ptr, 2d+1 vals.
	sections []arenaSection
}

func (g *arenaGeometry) dimsSec() arenaSection { return g.sections[0] }
func (g *arenaGeometry) permSec() arenaSection { return g.sections[1] }
func (g *arenaGeometry) fidsSec(l int) arenaSection {
	return g.sections[2+l]
}
func (g *arenaGeometry) ptrSec(l int) arenaSection {
	return g.sections[2+g.d+l]
}
func (g *arenaGeometry) valsSec() arenaSection { return g.sections[2*g.d+1] }

// arenaElemSize returns the element byte width of section i for order d.
//
// idx: return rank // element widths are 4 or 8
func arenaElemSize(i, d int) int64 {
	if i >= 2 && i < 2+d {
		return 4 // fids are int32
	}
	return 8 // dims, perm, ptr, vals
}

// parseArenaGeometry validates the header bytes of an arena file against
// the file size and returns the section geometry. hdr must hold at least
// arenaFixedHeader bytes; the caller extends it to the full table once the
// order is known. Every check here is O(rank): nothing sized by a
// file-supplied count is allocated or touched, so a corrupt or adversarial
// header fails before it can commit memory or fault the mapping.
func parseArenaGeometry(hdr []byte, fileSize int64) (*arenaGeometry, error) {
	if int64(len(hdr)) < arenaFixedHeader {
		return nil, fmt.Errorf("csf: arena header truncated (%d bytes)", len(hdr))
	}
	if string(hdr[:8]) != arenaMagic {
		return nil, fmt.Errorf("csf: bad arena magic %q", hdr[:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(hdr[8:12]); v != arenaVersion {
		return nil, fmt.Errorf("csf: unsupported arena version %d", v)
	}
	if m := le.Uint32(hdr[12:16]); m != arenaEndianMark {
		return nil, fmt.Errorf("csf: arena endianness mark %#08x, want %#08x (file written on an incompatible byte order)", m, arenaEndianMark)
	}
	d := int(le.Uint32(hdr[16:20]))
	if d < 2 || d > arenaMaxOrder {
		return nil, fmt.Errorf("csf: implausible arena order %d", d)
	}
	if r := le.Uint32(hdr[20:24]); r != 0 {
		return nil, fmt.Errorf("csf: arena reserved field %#x, want 0", r)
	}
	headerSize := arenaHeaderSize(d)
	if fileSize < headerSize {
		return nil, fmt.Errorf("csf: arena file size %d below header size %d for order %d", fileSize, headerSize, d)
	}
	if int64(len(hdr)) < headerSize {
		return nil, fmt.Errorf("csf: arena header truncated (%d bytes, want %d)", len(hdr), headerSize)
	}
	nsec := arenaSections(d)
	g := &arenaGeometry{d: d, sections: make([]arenaSection, nsec)}
	// prevEnd enforces that sections are laid out in table order without
	// overlap; it starts at the end of the header.
	//idx: bytes
	var prevEnd = headerSize
	for i := 0; i < nsec; i++ {
		base := arenaFixedHeader + 16*i
		off := int64(le.Uint64(hdr[base : base+8]))
		count := int64(le.Uint64(hdr[base+8 : base+16]))
		if count < 0 || count > maxCount {
			return nil, fmt.Errorf("csf: arena section %d count %d implausible", i, count)
		}
		if off < headerSize || off%8 != 0 {
			return nil, fmt.Errorf("csf: arena section %d offset %d misaligned or inside the header", i, off)
		}
		if off < prevEnd {
			return nil, fmt.Errorf("csf: arena section %d offset %d overlaps the previous section (ends at %d)", i, off, prevEnd)
		}
		// count <= maxCount and elem <= 8 keep the product well under
		// int64 overflow.
		byteLen := count * arenaElemSize(i, d)
		if off > fileSize || byteLen > fileSize-off {
			return nil, fmt.Errorf("csf: arena section %d (%d bytes at %d) exceeds file size %d", i, byteLen, off, fileSize)
		}
		prevEnd = off + byteLen
		g.sections[i] = arenaSection{off: off, count: count}
	}
	// Cross-section count invariants, all O(rank): the dims and perm
	// sections carry exactly d entries, every pointer level has one more
	// entry than its fiber level, and the value section is leaf-aligned.
	if g.dimsSec().count != int64(d) || g.permSec().count != int64(d) {
		return nil, fmt.Errorf("csf: arena dims/perm section counts (%d, %d) want %d", g.dimsSec().count, g.permSec().count, d)
	}
	for l := 0; l < d-1; l++ {
		if g.ptrSec(l).count != g.fidsSec(l).count+1 {
			return nil, fmt.Errorf("csf: arena level %d ptr count %d, want fiber count %d + 1", l, g.ptrSec(l).count, g.fidsSec(l).count)
		}
	}
	if g.valsSec().count != g.fidsSec(d-1).count {
		return nil, fmt.Errorf("csf: arena value count %d does not match leaf count %d", g.valsSec().count, g.fidsSec(d-1).count)
	}
	return g, nil
}

// decodeArenaMeta converts the raw dims and perm section payloads into the
// tree's []int form, rejecting out-of-range dims (fiber ids are int32, so a
// mode length beyond int32 can never be addressed) and non-permutations.
func decodeArenaMeta(d int, rawDims, rawPerm []int64) (dims, perm []int, err error) {
	dims = make([]int, d)
	perm = make([]int, d)
	for l := 0; l < d; l++ {
		if rawDims[l] < 1 || rawDims[l] > int64(1)<<31-1 {
			return nil, nil, fmt.Errorf("csf: arena level %d dim %d out of range", l, rawDims[l])
		}
		dims[l] = int(rawDims[l])
		if rawPerm[l] < 0 || rawPerm[l] >= int64(d) {
			return nil, nil, fmt.Errorf("csf: arena perm entry %d out of range", rawPerm[l])
		}
		perm[l] = int(rawPerm[l])
	}
	if err := tensor.CheckPerm(perm, d); err != nil {
		return nil, nil, fmt.Errorf("csf: arena perm invalid: %w", err)
	}
	return dims, perm, nil
}

// checkArenaEndpoints verifies the O(rank) structural endpoints of a tree
// assembled from arena sections: every internal level's pointer array must
// start at 0 and its last entry must cover the next level exactly. On the
// mmap path this touches only the first and last page of each pointer
// section, keeping the open independent of nnz; interior pointer
// monotonicity and fiber-id ranges are the body of the file and are
// deliberately not scanned here — Validate() performs the full O(nnz)
// check for callers that do not trust the file's producer.
func checkArenaEndpoints(t *Tree) error {
	d := t.Order()
	for l := 0; l < d-1; l++ {
		p := t.ptr[l]
		if len(p) == 0 {
			if len(t.fids[l+1]) != 0 {
				return fmt.Errorf("csf: arena level %d has no pointers but level %d has %d nodes", l, l+1, len(t.fids[l+1]))
			}
			continue
		}
		if p[0] != 0 {
			return fmt.Errorf("csf: arena level %d ptr[0] = %d", l, p[0])
		}
		if last := p[len(p)-1]; last != int64(len(t.fids[l+1])) {
			return fmt.Errorf("csf: arena level %d last ptr %d does not cover level %d (%d nodes)", l, last, l+1, len(t.fids[l+1]))
		}
	}
	return nil
}

// WriteArena writes the tree as an arena file at path, crash-safely: the
// image is built in a temp file in the target directory, fsynced, and
// atomically renamed onto path (the same discipline as SaveFile). The
// resulting file opens zero-copy with OpenArena.
func (t *Tree) WriteArena(path string) error {
	return writeFileAtomic(path, t.writeArenaTo)
}

// writeArenaTo streams the arena image to f. Section offsets are computed
// up front so the header can be written first in one pass.
func (t *Tree) writeArenaTo(f *os.File) error {
	d := t.Order()
	if d > arenaMaxOrder {
		return fmt.Errorf("csf: order %d exceeds arena maximum %d", d, arenaMaxOrder)
	}
	nsec := arenaSections(d)
	counts := make([]int64, nsec)
	counts[0] = int64(d)
	counts[1] = int64(d)
	for l := 0; l < d; l++ {
		counts[2+l] = int64(len(t.fids[l]))
	}
	for l := 0; l < d-1; l++ {
		counts[2+d+l] = int64(len(t.ptr[l]))
	}
	counts[nsec-1] = int64(len(t.vals))

	offs := make([]int64, nsec)
	//idx: bytes
	var at = arenaHeaderSize(d)
	for i := 0; i < nsec; i++ {
		offs[i] = at
		at += align8(counts[i] * arenaElemSize(i, d))
	}

	hdr := make([]byte, arenaHeaderSize(d))
	le := binary.LittleEndian
	copy(hdr[:8], arenaMagic)
	le.PutUint32(hdr[8:12], arenaVersion)
	le.PutUint32(hdr[12:16], arenaEndianMark)
	le.PutUint32(hdr[16:20], uint32(d))
	le.PutUint32(hdr[20:24], 0)
	for i := 0; i < nsec; i++ {
		base := arenaFixedHeader + 16*i
		le.PutUint64(hdr[base:base+8], uint64(offs[i]))
		le.PutUint64(hdr[base+8:base+16], uint64(counts[i]))
	}
	if _, err := f.Write(hdr); err != nil {
		return err
	}

	w := newArenaWriter(f)
	for l := 0; l < d; l++ {
		w.int64s(int64(t.dims[l]))
	}
	for l := 0; l < d; l++ {
		w.int64s(int64(t.perm[l]))
	}
	for l := 0; l < d; l++ {
		w.int32Slice(t.fids[l])
		w.pad()
	}
	for l := 0; l < d-1; l++ {
		w.int64Slice(t.ptr[l])
	}
	w.float64Slice(t.vals)
	return w.flush()
}

// align8 rounds n up to the next multiple of 8.
//
// idx: return bytes
func align8(n int64) int64 { return (n + 7) &^ 7 }

// arenaWriter batches little-endian section writes through one buffer and
// tracks alignment padding.
type arenaWriter struct {
	f   *os.File
	buf []byte
	err error
	// written counts payload bytes since the last pad, to size the
	// alignment padding.
	//idx: bytes
	written int64
}

func newArenaWriter(f *os.File) *arenaWriter {
	return &arenaWriter{f: f, buf: make([]byte, 0, 1<<20)}
}

func (w *arenaWriter) flushBuf() {
	if w.err == nil && len(w.buf) > 0 {
		_, w.err = w.f.Write(w.buf)
	}
	w.buf = w.buf[:0]
}

func (w *arenaWriter) room(n int) {
	if len(w.buf)+n > cap(w.buf) {
		w.flushBuf()
	}
}

func (w *arenaWriter) int64s(v int64) {
	w.room(8)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
	w.written += 8
}

func (w *arenaWriter) int32Slice(s []int32) {
	for _, v := range s {
		w.room(4)
		w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(v))
	}
	w.written += 4 * int64(len(s))
}

func (w *arenaWriter) int64Slice(s []int64) {
	for _, v := range s {
		w.int64s(v)
	}
}

func (w *arenaWriter) float64Slice(s []float64) {
	for _, v := range s {
		w.room(8)
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
	}
	w.written += 8 * int64(len(s))
}

// pad zero-fills to the next 8-byte boundary after an int32 section.
func (w *arenaWriter) pad() {
	for w.written%8 != 0 {
		w.room(1)
		w.buf = append(w.buf, 0)
		w.written++
	}
}

func (w *arenaWriter) flush() error {
	w.flushBuf()
	return w.err
}

// OpenArena opens an arena file written by WriteArena. On linux the file
// is mapped read-only into the address space and the returned tree's level
// arrays are zero-copy views into the mapping: the open performs O(rank)
// work and page touches however large the tensor is, and the OS pages the
// data on demand. On other platforms the sections are read into heap
// slices so the API is uniform. Either way the returned tree carries a
// Backing that must be Closed when the tree is no longer in use; all
// slices taken through the accessor layer are invalid after Close on the
// mmap path.
//
// OpenArena validates the header geometry and the O(rank) structural
// endpoints but, by design, does not scan the body of the file (that would
// defeat the zero-copy open); arena files are trusted artifacts. Call
// Validate() on the returned tree to run the full O(nnz) structural check
// when the producer is not trusted.
//
// life: return owned
func OpenArena(path string) (*Tree, error) {
	return openArenaPlatform(path)
}

// readArenaGeometry reads and validates the header of an opened arena
// file. Shared by the mmap and fallback open paths.
func readArenaGeometry(f *os.File) (*arenaGeometry, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	fixed := make([]byte, arenaFixedHeader)
	if _, err := f.ReadAt(fixed, 0); err != nil {
		return nil, 0, fmt.Errorf("csf: read arena header: %w", err)
	}
	// Parse the fixed part first to learn the order, then re-read the full
	// table. parseArenaGeometry re-checks the fixed fields on the second
	// pass; the first pass exists only to size the table read, so its only
	// job is to fail fast on files shorter than any valid header.
	if string(fixed[:8]) != arenaMagic {
		return nil, 0, fmt.Errorf("csf: bad arena magic %q", fixed[:8])
	}
	d := int(binary.LittleEndian.Uint32(fixed[16:20]))
	if d < 2 || d > arenaMaxOrder {
		return nil, 0, fmt.Errorf("csf: implausible arena order %d", d)
	}
	hdr := make([]byte, arenaHeaderSize(d))
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, 0, fmt.Errorf("csf: read arena section table: %w", err)
	}
	g, err := parseArenaGeometry(hdr, size)
	if err != nil {
		return nil, 0, err
	}
	return g, size, nil
}

// sectionLoader materialises section payloads for one open path: the mmap
// loader returns zero-copy views into the mapping, the heap fallback reads
// the bytes into fresh slices. Either way the caller has already validated
// the geometry, so count and offset are trustworthy.
type sectionLoader interface {
	int32s(sec arenaSection) ([]int32, error)
	int64s(sec arenaSection) ([]int64, error)
	float64s(sec arenaSection) ([]float64, error)
}

// treeFromArena assembles a Tree from validated arena geometry using the
// given loader, then runs the O(rank) endpoint checks. The caller attaches
// the backing.
func treeFromArena(g *arenaGeometry, load sectionLoader) (*Tree, error) {
	d := g.d
	rawDims, err := load.int64s(g.dimsSec())
	if err != nil {
		return nil, fmt.Errorf("csf: arena dims: %w", err)
	}
	rawPerm, err := load.int64s(g.permSec())
	if err != nil {
		return nil, fmt.Errorf("csf: arena perm: %w", err)
	}
	dims, perm, err := decodeArenaMeta(d, rawDims, rawPerm)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		dims: dims,
		perm: perm,
		fids: make([][]int32, d),
		ptr:  make([][]int64, d),
	}
	for l := 0; l < d; l++ {
		if t.fids[l], err = load.int32s(g.fidsSec(l)); err != nil {
			return nil, fmt.Errorf("csf: arena level %d fids: %w", l, err)
		}
	}
	for l := 0; l < d-1; l++ {
		if t.ptr[l], err = load.int64s(g.ptrSec(l)); err != nil {
			return nil, fmt.Errorf("csf: arena level %d ptr: %w", l, err)
		}
	}
	if t.vals, err = load.float64s(g.valsSec()); err != nil {
		return nil, fmt.Errorf("csf: arena vals: %w", err)
	}
	if err := checkArenaEndpoints(t); err != nil {
		return nil, err
	}
	return t, nil
}

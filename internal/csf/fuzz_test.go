package csf

import (
	"bytes"
	"encoding/binary"
	"testing"

	"stef/internal/tensor"
)

// serializedSeed returns the bytes of a valid small tree.
func serializedSeed(dims []int, nnz int, seed int64) []byte {
	tt := tensor.Random(dims, nnz, nil, seed)
	var buf bytes.Buffer
	if _, err := Build(tt, nil).WriteTo(&buf); err != nil {
		panic("csf: seed serialisation failed: " + err.Error())
	}
	return buf.Bytes()
}

// hugeCountHeader crafts a header whose level-0 fiber count claims 2^39
// elements and then ends. Before ReadFrom switched to chunked reads this
// made a terabyte-scale allocation before noticing EOF.
func hugeCountHeader() []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, uint32(3))
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, int64(10)) // dims
	}
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, int64(i)) // perm
	}
	binary.Write(&buf, binary.LittleEndian, int64(1)<<39) // level-0 count
	return buf.Bytes()
}

// FuzzReadFrom feeds arbitrary bytes to the CSF deserialiser; it must
// never panic or allocate unboundedly, and whatever it accepts must
// survive a write/read round trip.
func FuzzReadFrom(f *testing.F) {
	valid := serializedSeed([]int{5, 6, 7}, 60, 2)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	f.Add(valid[:len(magic)+2]) // truncated in the order field
	f.Add([]byte{})
	f.Add([]byte("NOPE0000000000000000"))
	f.Add(hugeCountHeader())
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	f.Add(serializedSeed([]int{4, 5, 6, 7}, 40, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted tree fails validation: %v", err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("write of accepted tree failed: %v", err)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted tree failed: %v", err)
		}
		if back.Order() != tr.Order() || back.NNZ() != tr.NNZ() {
			t.Fatalf("round trip changed shape: order %d->%d nnz %d->%d",
				tr.Order(), back.Order(), tr.NNZ(), back.NNZ())
		}
	})
}

// TestReadFromHugeCount pins the chunked-read hardening: a corrupt header
// claiming 2^39 fibers must fail fast with an error, not allocate.
func TestReadFromHugeCount(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader(hugeCountHeader())); err == nil {
		t.Fatal("expected error for truncated huge-count input")
	}
}

package csf

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stef/internal/tensor"
)

// serializedSeed returns the bytes of a valid small tree.
func serializedSeed(dims []int, nnz int, seed int64) []byte {
	tt := tensor.Random(dims, nnz, nil, seed)
	var buf bytes.Buffer
	if _, err := Build(tt, nil).WriteTo(&buf); err != nil {
		panic("csf: seed serialisation failed: " + err.Error())
	}
	return buf.Bytes()
}

// hugeCountHeader crafts a header whose level-0 fiber count claims 2^39
// elements and then ends. Before ReadFrom switched to chunked reads this
// made a terabyte-scale allocation before noticing EOF.
func hugeCountHeader() []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, uint32(3))
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, int64(10)) // dims
	}
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, int64(i)) // perm
	}
	binary.Write(&buf, binary.LittleEndian, int64(1)<<39) // level-0 count
	return buf.Bytes()
}

// boundaryCountHeader crafts a header whose level-0 count sits at
// maxCount + delta: delta 0 probes the largest admissible count (rejected
// later, at EOF or by the cross-level checks), +1 the first implausible one.
func boundaryCountHeader(delta int64) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	binary.Write(&buf, binary.LittleEndian, uint32(3))
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, int64(10)) // dims
	}
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, int64(i)) // perm
	}
	binary.Write(&buf, binary.LittleEndian, int64(1)<<40+delta) // level-0 count
	return buf.Bytes()
}

// level1CountOffset returns the byte offset of level 1's count field in
// the serialization of tr (order d, header magic+order+dims+perm).
func level1CountOffset(tr *Tree) int {
	d := tr.Order()
	off := len(magic) + 4 + d*8 + d*8
	c0 := len(tr.fids[0])
	return off + 8 + c0*4 + (c0+1)*8
}

// corrupt64 returns data with the int64 at off overwritten by v.
func corrupt64(data []byte, off int, v int64) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(out[off:], uint64(v))
	return out
}

// FuzzReadFrom feeds arbitrary bytes to the CSF deserialiser; it must
// never panic or allocate unboundedly, and whatever it accepts must
// survive a write/read round trip.
func FuzzReadFrom(f *testing.F) {
	valid := serializedSeed([]int{5, 6, 7}, 60, 2)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-payload
	f.Add(valid[:len(magic)+2]) // truncated in the order field
	f.Add([]byte{})
	f.Add([]byte("NOPE0000000000000000"))
	f.Add(hugeCountHeader())
	f.Add(boundaryCountHeader(0))  // count == maxCount exactly
	f.Add(boundaryCountHeader(1))  // first implausible count
	f.Add(boundaryCountHeader(-1)) // last count inside the bound
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	// A structurally plausible stream whose level-1 count disagrees with
	// level 0's pointer coverage: the cross-level check must refuse it
	// before sizing level 1.
	tr := mustTree([]int{5, 6, 7}, 60, 2)
	f.Add(corrupt64(valid, level1CountOffset(tr), int64(len(tr.fids[1]))+1))
	f.Add(serializedSeed([]int{4, 5, 6, 7}, 40, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted tree fails validation: %v", err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("write of accepted tree failed: %v", err)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted tree failed: %v", err)
		}
		if back.Order() != tr.Order() || back.NNZ() != tr.NNZ() {
			t.Fatalf("round trip changed shape: order %d->%d nnz %d->%d",
				tr.Order(), back.Order(), tr.NNZ(), back.NNZ())
		}
	})
}

// TestReadFromHugeCount pins the chunked-read hardening: a corrupt header
// claiming 2^39 fibers must fail fast with an error, not allocate.
func TestReadFromHugeCount(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader(hugeCountHeader())); err == nil {
		t.Fatal("expected error for truncated huge-count input")
	}
}

// mustTree builds the tree whose serialization serializedSeed returns.
func mustTree(dims []int, nnz int, seed int64) *Tree {
	return Build(tensor.Random(dims, nnz, nil, seed), nil)
}

// TestReadFromCountHardening pins the pre-allocation count checks: each
// corruption must be refused with a structural error, not deferred to the
// post-read Validate.
func TestReadFromCountHardening(t *testing.T) {
	valid := serializedSeed([]int{5, 6, 7}, 60, 2)
	tr := mustTree([]int{5, 6, 7}, 60, 2)
	d := tr.Order()
	hdr := len(magic) + 4 + d*8 + d*8
	c0 := len(tr.fids[0])

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{
			"cross-level count mismatch",
			corrupt64(valid, level1CountOffset(tr), int64(len(tr.fids[1]))+1),
			"does not match parent pointer coverage",
		},
		{
			"non-monotone ptr",
			// ptr[1] := ptr[0] = 0: empty first child range.
			corrupt64(valid, hdr+8+c0*4+8, 0),
			"not strictly increasing",
		},
		{
			"negative count",
			corrupt64(valid, hdr, -1),
			"implausible level 0 count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrom(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// nnz field inflated: refused by the leaf-count cross-check.
	nnzOff := len(valid) - 8 - tr.NNZ()*8
	data := corrupt64(valid, nnzOff, int64(tr.NNZ())+1)
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "does not match leaf count") {
		t.Fatalf("inflated nnz: got %v, want leaf-count mismatch", err)
	}
}

// TestLoadFileSizeBound pins the size-aware path: a small file claiming a
// 2^39-element level is refused against the file's own length before any
// read loop runs.
func TestLoadFileSizeBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "huge.csf")
	if err := os.WriteFile(path, hugeCountHeader(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil || !strings.Contains(err.Error(), "exceeds source size") {
		t.Fatalf("got %v, want size-bound error", err)
	}
}

package csf

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"stef/internal/tensor"
)

// testTensor returns a small random tensor of the given order.
func testTensor(t *testing.T, dims []int, nnz int, seed int64) *tensor.Tensor {
	t.Helper()
	tt := tensor.Random(dims, nnz, nil, seed)
	if err := tt.Validate(true); err != nil {
		t.Fatalf("generator produced invalid tensor: %v", err)
	}
	return tt
}

func TestBuildValidate(t *testing.T) {
	cases := []struct {
		dims []int
		nnz  int
	}{
		{[]int{5, 7, 9}, 60},
		{[]int{20, 3, 11, 8}, 200},
		{[]int{4, 4, 4, 4, 4}, 100},
		{[]int{100, 1, 50}, 80},
		{[]int{2, 1000, 3}, 500},
	}
	for _, c := range cases {
		tt := testTensor(t, c.dims, c.nnz, 42)
		tr := Build(tt, nil)
		if err := tr.Validate(); err != nil {
			t.Errorf("dims %v: %v", c.dims, err)
		}
		if tr.NNZ() != tt.NNZ() {
			t.Errorf("dims %v: nnz %d, want %d", c.dims, tr.NNZ(), tt.NNZ())
		}
	}
}

func TestBuildIdentityPerm(t *testing.T) {
	tt := testTensor(t, []int{6, 5, 4}, 40, 7)
	tr := Build(tt, []int{0, 1, 2})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for l, want := range tt.Dims {
		if tr.dims[l] != want {
			t.Errorf("level %d dim %d, want %d", l, tr.dims[l], want)
		}
	}
}

func TestRoundTripCOO(t *testing.T) {
	for _, dims := range [][]int{{5, 9, 7}, {12, 3, 6, 10}, {3, 3, 3, 3, 3}} {
		tt := testTensor(t, dims, 70, int64(len(dims)))
		for trial := 0; trial < 3; trial++ {
			perm := rand.New(rand.NewSource(int64(trial))).Perm(len(dims))
			tr := Build(tt, perm)
			back := tr.ToCOO(tt.Dims)
			back.SortLex()
			orig := tt.Clone()
			orig.SortLex()
			if back.NNZ() != orig.NNZ() {
				t.Fatalf("perm %v: nnz %d, want %d", perm, back.NNZ(), orig.NNZ())
			}
			for k := 0; k < orig.NNZ(); k++ {
				oc, bc := orig.Coord(k), back.Coord(k)
				for m := range oc {
					if oc[m] != bc[m] {
						t.Fatalf("perm %v nnz %d: coord %v, want %v", perm, k, bc, oc)
					}
				}
				if orig.Vals[k] != back.Vals[k] {
					t.Fatalf("perm %v nnz %d: val %g, want %g", perm, k, back.Vals[k], orig.Vals[k])
				}
			}
		}
	}
}

// bruteFiberCount counts distinct prefixes of length l+1 among the permuted
// coordinates — the definitive fiber count at level l.
func bruteFiberCount(tt *tensor.Tensor, perm []int, l int) int64 {
	seen := map[string]struct{}{}
	buf := make([]byte, 0, 4*(l+1))
	for k := 0; k < tt.NNZ(); k++ {
		c := tt.Coord(k)
		buf = buf[:0]
		for m := 0; m <= l; m++ {
			v := c[perm[m]]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		seen[string(buf)] = struct{}{}
	}
	return int64(len(seen))
}

func TestFiberCounts(t *testing.T) {
	tt := testTensor(t, []int{8, 15, 6, 11}, 300, 99)
	perm := tensor.LengthSortedPerm(tt.Dims)
	tr := Build(tt, perm)
	counts := tr.FiberCounts()
	for l := 0; l < tt.Order(); l++ {
		want := bruteFiberCount(tt, perm, l)
		if counts[l] != want {
			t.Errorf("level %d: %d fibers, want %d", l, counts[l], want)
		}
	}
	if counts[tt.Order()-1] != int64(tt.NNZ()) {
		t.Errorf("leaf count %d, want nnz %d", counts[tt.Order()-1], tt.NNZ())
	}
}

func TestCountSwappedFibers(t *testing.T) {
	for _, dims := range [][]int{{7, 9, 11}, {5, 6, 7, 8}, {3, 4, 5, 6, 7}, {2, 400, 3}} {
		for seed := int64(0); seed < 4; seed++ {
			tt := testTensor(t, dims, 150, seed+10)
			tr := Build(tr2Perm(tt), nil)
			_ = tr
			tree := Build(tt, nil)
			swapped := Build(tt, tree.SwappedPerm())
			want := int64(swapped.NumFibers(len(dims) - 2))
			for _, threads := range []int{1, 2, 3, 7} {
				got := tree.CountSwappedFibers(threads)
				if got != want {
					t.Errorf("dims %v seed %d T=%d: swapped fibers %d, want %d", dims, seed, threads, got, want)
				}
			}
		}
	}
}

// tr2Perm is a no-op helper kept trivial; it exists to exercise Build on an
// already-cloned tensor value.
func tr2Perm(tt *tensor.Tensor) *tensor.Tensor { return tt.Clone() }

func TestSwappedFiberCountsSharesPrefixLevels(t *testing.T) {
	tt := testTensor(t, []int{6, 7, 8, 9}, 250, 5)
	tree := Build(tt, nil)
	sc := tree.SwappedFiberCounts(3)
	fc := tree.FiberCounts()
	d := tree.Order()
	for l := 0; l < d-2; l++ {
		if sc[l] != fc[l] {
			t.Errorf("level %d: swapped count %d != original %d", l, sc[l], fc[l])
		}
	}
	if sc[d-1] != int64(tree.NNZ()) {
		t.Errorf("leaf level count %d, want %d", sc[d-1], tree.NNZ())
	}
}

func TestAvgFiberLen(t *testing.T) {
	tt := testTensor(t, []int{4, 5, 6}, 80, 3)
	tr := Build(tt, nil)
	for l := 0; l < 2; l++ {
		want := float64(tr.NumFibers(l+1)) / float64(tr.NumFibers(l))
		if got := tr.AvgFiberLen(l); got != want {
			t.Errorf("level %d: avg fiber len %g, want %g", l, got, want)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	tt := testTensor(t, []int{5, 6, 7}, 50, 1)
	tr := Build(tt, nil)
	want := int64(0)
	for l := 0; l < 3; l++ {
		want += int64(len(tr.fids[l])) * 4
		if tr.ptr[l] != nil {
			want += int64(len(tr.ptr[l])) * 8
		}
	}
	want += int64(len(tr.vals)) * 8
	if got := tr.Bytes(); got != want {
		t.Errorf("Bytes() = %d, want %d", got, want)
	}
}

func TestWalkLeavesOrder(t *testing.T) {
	tt := testTensor(t, []int{5, 5, 5, 5}, 60, 8)
	tr := Build(tt, nil)
	prev := -1
	n := 0
	tr.WalkLeaves(func(path []int64, k int) {
		if k != prev+1 {
			t.Fatalf("leaf order broken: got %d after %d", k, prev)
		}
		prev = k
		n++
		for l := 0; l < tr.Order()-1; l++ {
			lo, hi := tr.ptr[l][path[l]], tr.ptr[l][path[l]+1]
			if path[l+1] < lo || path[l+1] >= hi {
				t.Fatalf("leaf %d: path level %d node %d outside parent range [%d,%d)", k, l+1, path[l+1], lo, hi)
			}
		}
	})
	if n != tr.NNZ() {
		t.Fatalf("walked %d leaves, want %d", n, tr.NNZ())
	}
}

// TestBuildRandomizedQuick property-tests CSF construction: for random
// small tensors and random permutations, the tree validates and round-trips.
func TestBuildRandomizedQuick(t *testing.T) {
	f := func(seed int64, d8, nnz16 uint8) bool {
		d := 3 + int(d8)%3 // order 3..5
		dims := make([]int, d)
		rng := rand.New(rand.NewSource(seed))
		for i := range dims {
			dims[i] = 1 + rng.Intn(12)
		}
		space := 1
		for _, n := range dims {
			space *= n
		}
		nnz := 1 + int(nnz16)%minInt(64, space)
		tt := tensor.Random(dims, nnz, nil, seed)
		perm := rng.Perm(d)
		tr := Build(tt, perm)
		if tr.Validate() != nil {
			return false
		}
		back := tr.ToCOO(tt.Dims)
		back.SortLex()
		orig := tt.Clone()
		orig.SortLex()
		if back.NNZ() != orig.NNZ() {
			return false
		}
		for k := 0; k < orig.NNZ(); k++ {
			if orig.Vals[k] != back.Vals[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestStats(t *testing.T) {
	tt := testTensor(t, []int{4, 9, 16}, 120, 6)
	tr := Build(tt, nil)
	st := tr.Stats()
	if len(st) != 3 {
		t.Fatalf("%d levels", len(st))
	}
	for l, s := range st {
		if s.Level != l || s.Mode != tr.perm[l] || s.Fibers != tr.NumFibers(l) {
			t.Errorf("level %d stats inconsistent: %+v", l, s)
		}
		if l < 2 {
			if s.MaxFiberLen < 1 {
				t.Errorf("level %d max fiber length %d", l, s.MaxFiberLen)
			}
			if s.AvgFiberLen > float64(s.MaxFiberLen) {
				t.Errorf("level %d avg %g exceeds max %d", l, s.AvgFiberLen, s.MaxFiberLen)
			}
		}
	}
	var sb strings.Builder
	tr.WriteStats(&sb)
	if !strings.Contains(sb.String(), "fibers") {
		t.Error("WriteStats missing header")
	}
}

func TestLengthSortedPermIsSorted(t *testing.T) {
	dims := []int{50, 3, 20, 3, 7}
	perm := tensor.LengthSortedPerm(dims)
	got := make([]int, len(dims))
	for l, m := range perm {
		got[l] = dims[m]
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("length-sorted perm %v yields lengths %v", perm, got)
	}
}

//go:build linux

package csf

import (
	"fmt"
	"math"
	"os"
	"sync"
	"syscall"
	"unsafe"
)

// Zero-copy arena opening on linux: the whole file is mapped read-only
// with MAP_SHARED and the tree's level arrays are unsafe.Slice views into
// the mapping. Opening touches only the header pages and the pointer-
// section endpoints (checkArenaEndpoints), so the latency is O(rank)
// regardless of nnz; the kernel pages the body in on first access and can
// evict it under memory pressure, which is what lets a 100M+-nnz tensor
// open in milliseconds on a host that could never hold a heap copy.

// mmapBacking owns one read-only file mapping. Close unmaps it; after
// Close every slice viewing the mapping is invalid (use-after-close faults
// rather than silently reading freed heap memory, which is the safer
// failure mode).
type mmapBacking struct {
	once sync.Once
	data []byte
	err  error
}

func (b *mmapBacking) Kind() string { return "arena-mmap" }

func (b *mmapBacking) Close() error {
	b.once.Do(func() {
		if b.data != nil {
			b.err = releaseMapping(b.data)
			b.data = nil
		}
	})
	return b.err
}

// view returns sec's payload as a []T aliasing the mapping. The geometry
// has already bounds-checked off+count*sizeof(T) against the file size and
// 8-byte alignment, so the unsafe.Slice is within the mapping and aligned
// for T.
func view[T int32 | int64 | float64](data []byte, sec arenaSection) []T {
	if sec.count == 0 {
		// An empty view must not alias the mapping: unsafe.Slice with
		// len 0 is fine, but a nil slice keeps Equal and reflect-free
		// comparisons simple.
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[sec.off])), sec.count)
}

// mmapLoader materialises sections as zero-copy views; it can never fail,
// the error returns exist only to satisfy sectionLoader.
type mmapLoader struct{ data []byte }

func (m mmapLoader) int32s(sec arenaSection) ([]int32, error) {
	return view[int32](m.data, sec), nil
}
func (m mmapLoader) int64s(sec arenaSection) ([]int64, error) {
	return view[int64](m.data, sec), nil
}
func (m mmapLoader) float64s(sec arenaSection) ([]float64, error) {
	return view[float64](m.data, sec), nil
}

// openArenaPlatform maps path and assembles a Tree whose storage aliases
// the mapping.
func openArenaPlatform(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, size, err := readArenaGeometry(f)
	if err != nil {
		return nil, err
	}
	if uint64(size) > math.MaxInt {
		return nil, fmt.Errorf("csf: arena file size %d exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("csf: mmap arena: %w", err)
	}
	backing := &mmapBacking{data: data}
	t, err := treeFromArena(g, mmapLoader{data: data})
	if err != nil {
		backing.Close()
		return nil, err
	}
	t.backing = backing
	return t, nil
}

package csf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Binary serialisation of CSF trees. Building a CSF costs a full sort of
// the non-zeros; production runs over large tensors cache the built tree on
// disk and reload it per experiment. The format is little-endian:
//
//	magic "CSF1" | uint32 d | d×int64 dims | d×int64 perm
//	per level l: int64 count, count×int32 fids,
//	             (l < d-1) (count+1)×int64 ptr
//	int64 nnz, nnz×float64 vals
const magic = "CSF1"

// WriteTo serialises the tree. It returns the number of bytes written.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(magic); err != nil {
		return n, err
	}
	n += int64(len(magic))
	d := t.Order()
	if err := write(uint32(d)); err != nil {
		return n, err
	}
	for _, x := range t.dims {
		if err := write(int64(x)); err != nil {
			return n, err
		}
	}
	for _, x := range t.perm {
		if err := write(int64(x)); err != nil {
			return n, err
		}
	}
	for l := 0; l < d; l++ {
		if err := write(int64(len(t.fids[l]))); err != nil {
			return n, err
		}
		if err := write(t.fids[l]); err != nil {
			return n, err
		}
		if l < d-1 {
			if err := write(t.ptr[l]); err != nil {
				return n, err
			}
		}
	}
	if err := write(int64(len(t.vals))); err != nil {
		return n, err
	}
	if err := write(t.vals); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// maxCount is the sanity bound on any node, non-zero or pointer count a
// serialized tree (CSF1 stream or arena file) may claim; it also calibrates
// the idx-width analyzer's nnz scale class (2^40).
const maxCount = 1 << 40

// readChunk bounds single allocations while deserialising: a corrupt
// header claiming a huge element count hits EOF after at most one chunk
// instead of attempting a terabyte-sized make up front.
const readChunk = 1 << 16

// readSlice reads count little-endian elements in bounded chunks.
func readSlice[T int32 | int64 | float64](r io.Reader, count int64) ([]T, error) {
	out := make([]T, 0, int(min(count, readChunk)))
	for int64(len(out)) < count {
		n := min(count-int64(len(out)), readChunk)
		start := len(out)
		out = append(out, make([]T, int(n))...)
		if err := binary.Read(r, binary.LittleEndian, out[start:]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadFrom deserialises a tree written by WriteTo and validates it.
//
// Counts are cross-checked between levels *before* any allocation sized by
// them: level l+1 must hold exactly the nodes level l's last pointer
// covers, pointers must start at zero and be strictly increasing, and the
// leaf count must equal nnz. A corrupt or adversarial header therefore
// fails on the first inconsistent count instead of committing memory to a
// fabricated level.
func ReadFrom(r io.Reader) (*Tree, error) {
	return readFrom(r, -1)
}

// readFrom implements ReadFrom with an optional size hint: when byteSize
// is non-negative (reading from a file of known length), any level count
// whose fids alone could not fit in the source is rejected up front.
func readFrom(r io.Reader, byteSize int64) (*Tree, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("csf: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("csf: bad magic %q", head)
	}
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	var d32 uint32
	if err := read(&d32); err != nil {
		return nil, fmt.Errorf("csf: read order: %w", err)
	}
	d := int(d32)
	if d < 2 || d > 64 {
		return nil, fmt.Errorf("csf: implausible order %d", d)
	}
	t := &Tree{
		dims: make([]int, d),
		perm: make([]int, d),
		fids: make([][]int32, d),
		ptr:  make([][]int64, d),
	}
	readInt := func(dst *int) error {
		var x int64
		if err := read(&x); err != nil {
			return err
		}
		*dst = int(x)
		return nil
	}
	for l := 0; l < d; l++ {
		if err := readInt(&t.dims[l]); err != nil {
			return nil, fmt.Errorf("csf: read dims: %w", err)
		}
	}
	for l := 0; l < d; l++ {
		if err := readInt(&t.perm[l]); err != nil {
			return nil, fmt.Errorf("csf: read perm: %w", err)
		}
	}
	// expect is the node count level l must have, derived from level l-1's
	// last pointer; -1 before any pointer level has been read.
	expect := int64(-1)
	for l := 0; l < d; l++ {
		//idx: nnz
		var count int64
		if err := read(&count); err != nil {
			return nil, fmt.Errorf("csf: read level %d count: %w", l, err)
		}
		if count < 0 || count > maxCount {
			return nil, fmt.Errorf("csf: implausible level %d count %d", l, count)
		}
		if expect >= 0 && count != expect {
			return nil, fmt.Errorf("csf: level %d count %d does not match parent pointer coverage %d", l, count, expect)
		}
		if byteSize >= 0 && count*4 > byteSize {
			return nil, fmt.Errorf("csf: level %d count %d exceeds source size %d", l, count, byteSize)
		}
		var err error
		if t.fids[l], err = readSlice[int32](br, count); err != nil {
			return nil, fmt.Errorf("csf: read level %d fids: %w", l, err)
		}
		if l < d-1 {
			if t.ptr[l], err = readSlice[int64](br, count+1); err != nil {
				return nil, fmt.Errorf("csf: read level %d ptr: %w", l, err)
			}
			p := t.ptr[l]
			if p[0] != 0 {
				return nil, fmt.Errorf("csf: level %d ptr[0] = %d", l, p[0])
			}
			for n := int64(0); n < count; n++ {
				if p[n+1] <= p[n] {
					return nil, fmt.Errorf("csf: level %d ptr not strictly increasing at node %d", l, n)
				}
			}
			if p[count] > maxCount {
				return nil, fmt.Errorf("csf: level %d pointers cover %d children, beyond maxCount", l, p[count])
			}
			expect = p[count]
		}
	}
	//idx: nnz
	var nnz int64
	if err := read(&nnz); err != nil {
		return nil, fmt.Errorf("csf: read nnz: %w", err)
	}
	if nnz < 0 || nnz > maxCount {
		return nil, fmt.Errorf("csf: implausible nnz %d", nnz)
	}
	if nnz != int64(len(t.fids[d-1])) {
		return nil, fmt.Errorf("csf: nnz %d does not match leaf count %d", nnz, len(t.fids[d-1]))
	}
	vals, err := readSlice[float64](br, nnz)
	if err != nil {
		return nil, fmt.Errorf("csf: read vals: %w", err)
	}
	t.vals = vals
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("csf: deserialised tree invalid: %w", err)
	}
	return t, nil
}

// SaveFile writes the tree to a file crash-safely: the bytes land in a
// temporary file in the target directory, are fsynced, and only then
// atomically renamed onto path. A crash mid-write therefore leaves either
// the old file or no file — never a truncated stream that ReadFrom rejects
// but cannot distinguish from corruption.
func (t *Tree) SaveFile(path string) error {
	return writeFileAtomic(path, func(f *os.File) error {
		_, err := t.WriteTo(f)
		return err
	})
}

// writeFileAtomic writes a file via the temp-fsync-rename discipline:
// write() streams into an O_RDWR temp file created in path's directory
// (same filesystem, so the rename is atomic), the file is fsynced before
// the rename, and the directory is fsynced after it so the new directory
// entry itself is durable. On any error the temp file is removed and path
// is untouched.
func writeFileAtomic(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename itself durable. Directory fsync is unsupported on
	// some filesystems; the rename has already happened, so a failure here
	// only weakens durability, not atomicity.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads a tree from a file. The file's size bounds the level
// counts the header may claim, so a corrupt header cannot commit memory
// beyond what the file could possibly back.
//
// life: return owned
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	return readFrom(f, size)
}

package csf

import (
	"bytes"
	"path/filepath"
	"testing"

	"stef/internal/tensor"
)

func TestSerializeRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{7, 9, 11}, {5, 6, 7, 8}, {3, 4, 5, 6, 7}} {
		tt := tensor.Random(dims, 200, nil, 3)
		orig := Build(tt, nil)
		var buf bytes.Buffer
		n, err := orig.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Order() != orig.Order() || back.NNZ() != orig.NNZ() {
			t.Fatal("shape changed")
		}
		for l := 0; l < orig.Order(); l++ {
			if back.dims[l] != orig.dims[l] || back.perm[l] != orig.perm[l] {
				t.Fatalf("level %d metadata changed", l)
			}
			for i, f := range orig.fids[l] {
				if back.fids[l][i] != f {
					t.Fatalf("level %d fid %d changed", l, i)
				}
			}
			if l < orig.Order()-1 {
				for i, p := range orig.ptr[l] {
					if back.ptr[l][i] != p {
						t.Fatalf("level %d ptr %d changed", l, i)
					}
				}
			}
		}
		for i, v := range orig.vals {
			if back.vals[i] != v {
				t.Fatalf("value %d changed", i)
			}
		}
	}
}

func TestSerializeFileRoundTrip(t *testing.T) {
	tt := tensor.Random([]int{6, 7, 8}, 100, nil, 1)
	orig := Build(tt, nil)
	path := filepath.Join(t.TempDir(), "t.csf")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatal("nnz changed")
	}
}

func TestDeserializeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE0000000000000000"),
		"truncated": append([]byte("CSF1"), 3, 0, 0, 0),
	}
	for name, in := range cases {
		if _, err := ReadFrom(bytes.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Corrupt the body of a valid serialisation: validation must catch it.
	tt := tensor.Random([]int{5, 6, 7}, 60, nil, 2)
	var buf bytes.Buffer
	if _, err := Build(tt, nil).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xff
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Log("corruption in value payload is not structurally detectable; acceptable")
	}
}

package csf

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"stef/internal/tensor"
)

// arenaBytes returns the arena image of a small built tree.
func arenaBytes(t *testing.T, dims []int, nnz int, seed int64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seed.stef")
	if err := mustTree(dims, nnz, seed).WriteArena(path); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// openArenaBytes writes data to a temp file and opens it as an arena.
func openArenaBytes(t *testing.T, data []byte) (*Tree, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "case.stef")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return OpenArena(path)
}

func TestArenaRoundTrip(t *testing.T) {
	cases := []struct {
		dims []int
		nnz  int
	}{
		{[]int{5, 7, 9}, 60},
		{[]int{20, 3, 11, 8}, 200},
		{[]int{4, 4, 4, 4, 4}, 100},
		{[]int{2, 1000, 3}, 500},
		{[]int{100, 1, 50}, 80},
	}
	dir := t.TempDir()
	for _, c := range cases {
		tr := mustTree(c.dims, c.nnz, 11)
		path := filepath.Join(dir, "t.stef")
		if err := tr.WriteArena(path); err != nil {
			t.Fatalf("dims %v: WriteArena: %v", c.dims, err)
		}
		back, err := OpenArena(path)
		if err != nil {
			t.Fatalf("dims %v: OpenArena: %v", c.dims, err)
		}
		if back.Backing() == nil {
			t.Fatalf("dims %v: arena tree has no backing", c.dims)
		}
		if k := back.Backing().Kind(); runtime.GOOS == "linux" && k != "arena-mmap" {
			t.Fatalf("dims %v: backing kind %q on linux, want arena-mmap", c.dims, k)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("dims %v: opened tree invalid: %v", c.dims, err)
		}
		if !Equal(back, tr) {
			t.Fatalf("dims %v: arena round trip changed the tree", c.dims)
		}
		if err := back.Close(); err != nil {
			t.Fatalf("dims %v: Close: %v", c.dims, err)
		}
		if err := back.Close(); err != nil {
			t.Fatalf("dims %v: second Close: %v", c.dims, err)
		}
	}
}

// TestArenaHeapTreeLifecycle pins that heap trees take the no-op branch of
// the shared lifecycle: nil backing, Close returns nil.
func TestArenaHeapTreeLifecycle(t *testing.T) {
	tr := mustTree([]int{5, 6, 7}, 60, 2)
	if tr.Backing() != nil {
		t.Fatal("heap-built tree has a backing")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("heap tree Close: %v", err)
	}
}

// TestArenaCorruptHeaders drives targeted header corruptions through
// OpenArena; each must be refused with a structural error before any
// allocation or mapping sized by the lie.
func TestArenaCorruptHeaders(t *testing.T) {
	valid := arenaBytes(t, []int{5, 6, 7}, 60, 2)

	put32 := func(data []byte, off int, v uint32) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(out[off:], v)
		return out
	}
	put64 := func(data []byte, off int, v uint64) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(out[off:], v)
		return out
	}
	// Section table entry i lives at 24+16i (offset) and 24+16i+8 (count).
	secOff := func(i int) int { return arenaFixedHeader + 16*i }

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", append([]byte("NOTANARN"), valid[8:]...), "bad arena magic"},
		{"bad version", put32(valid, 8, 99), "unsupported arena version"},
		{"byte-swapped endian mark", put32(valid, 12, 0x0D0C0B0A), "endianness mark"},
		{"order zero", put32(valid, 16, 0), "implausible arena order"},
		{"order huge", put32(valid, 16, 1000), "implausible arena order"},
		{"reserved set", put32(valid, 20, 1), "reserved"},
		{"truncated fixed header", valid[:20], "read arena header"},
		{"truncated section table", valid[:32], "read arena section table"},
		{"empty file", nil, "read arena header"},
		{"misaligned section offset", put64(valid, secOff(2), uint64(binary.LittleEndian.Uint64(valid[secOff(2):]))+4), "misaligned"},
		{"offset inside header", put64(valid, secOff(0), 8), "misaligned or inside the header"},
		{"overlapping sections", put64(valid, secOff(3), uint64(binary.LittleEndian.Uint64(valid[secOff(2):]))), "overlaps"},
		{"lying length", put64(valid, secOff(2)+8, 1 << 30), "exceeds file size"},
		{"count beyond maxCount", put64(valid, secOff(2)+8, uint64(maxCount)+1), "implausible"},
		{"dims count wrong", put64(valid, secOff(0)+8, 2), "dims/perm section counts"},
		// Deflating (not inflating) the ptr count keeps the geometry inside
		// the file, so the failure is the cross-count invariant itself.
		{"ptr count off by one", put64(valid, secOff(5)+8, uint64(binary.LittleEndian.Uint64(valid[secOff(5)+8:]))-1), "want fiber count"},
		{"truncated body", valid[:len(valid)-8], "exceeds file size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := openArenaBytes(t, tc.data)
			if err == nil {
				tr.Close()
				t.Fatal("corrupt arena accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestArenaMetaHardening corrupts the dims/perm payloads (legal geometry,
// lying metadata): both must be refused at decode time.
func TestArenaMetaHardening(t *testing.T) {
	valid := arenaBytes(t, []int{5, 6, 7}, 60, 2)
	g, err := parseArenaGeometry(valid, int64(len(valid)))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int64, v int64) []byte {
		out := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(out[off:], uint64(v))
		return out
	}

	if tr, err := openArenaBytes(t, corrupt(g.dimsSec().off, -5)); err == nil {
		tr.Close()
		t.Fatal("negative dim accepted")
	} else if !strings.Contains(err.Error(), "dim") {
		t.Fatalf("negative dim: %v", err)
	}
	if tr, err := openArenaBytes(t, corrupt(g.permSec().off, 7)); err == nil {
		tr.Close()
		t.Fatal("out-of-range perm accepted")
	} else if !strings.Contains(err.Error(), "perm") {
		t.Fatalf("bad perm: %v", err)
	}
	// Duplicate perm entry: in range, but not a permutation.
	dupe := corrupt(g.permSec().off, int64(binary.LittleEndian.Uint64(valid[g.permSec().off+8:])))
	if tr, err := openArenaBytes(t, dupe); err == nil {
		tr.Close()
		t.Fatal("duplicate perm accepted")
	}
}

// TestArenaEndpointHardening corrupts pointer endpoints — the only part of
// the body OpenArena inspects: ptr[0] != 0 and a last pointer that fails
// to cover the next level must both be refused.
func TestArenaEndpointHardening(t *testing.T) {
	valid := arenaBytes(t, []int{5, 6, 7}, 60, 2)
	g, err := parseArenaGeometry(valid, int64(len(valid)))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int64, v int64) []byte {
		out := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(out[off:], uint64(v))
		return out
	}
	p0 := g.ptrSec(0)
	if tr, err := openArenaBytes(t, corrupt(p0.off, 1)); err == nil {
		tr.Close()
		t.Fatal("ptr[0] != 0 accepted")
	} else if !strings.Contains(err.Error(), "ptr[0]") {
		t.Fatalf("ptr[0]: %v", err)
	}
	last := p0.off + (p0.count-1)*8
	if tr, err := openArenaBytes(t, corrupt(last, 1)); err == nil {
		tr.Close()
		t.Fatal("non-covering last pointer accepted")
	} else if !strings.Contains(err.Error(), "does not cover") {
		t.Fatalf("last ptr: %v", err)
	}
}

// TestWriteArenaAtomic pins the crash-safe write discipline shared with
// SaveFile: a failed write must leave the previous file intact and no temp
// files behind.
func TestWriteArenaAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.stef")
	tr := mustTree([]int{5, 6, 7}, 60, 2)
	if err := tr.WriteArena(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// An over-order tree fails writeArenaTo after the temp file exists; the
	// target and directory must be untouched.
	deep := &Tree{dims: make([]int, arenaMaxOrder+1), perm: make([]int, arenaMaxOrder+1),
		fids: make([][]int32, arenaMaxOrder+1), ptr: make([][]int64, arenaMaxOrder+1)}
	if err := deep.WriteArena(path); err == nil {
		t.Fatal("over-order arena write succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatal("failed write modified the target file")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

// TestOpenArenaAllocIndependentOfNNZ pins the zero-copy property: on the
// mmap path, opening an arena allocates only the O(rank) Tree scaffolding
// (header decode, dims/perm, slice headers), never per-nnz copies of the
// level arrays, so the allocation count cannot grow with tensor size.
func TestOpenArenaAllocIndependentOfNNZ(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("zero-copy open is the linux mmap path; the fallback reads sections to the heap")
	}
	measure := func(dims []int, nnz int) float64 {
		path := filepath.Join(t.TempDir(), "pin.stef")
		if err := mustTree(dims, nnz, 11).WriteArena(path); err != nil {
			t.Fatalf("WriteArena: %v", err)
		}
		return testing.AllocsPerRun(20, func() {
			tr, err := OpenArena(path)
			if err != nil {
				t.Fatalf("OpenArena: %v", err)
			}
			tr.Close()
		})
	}
	small := measure([]int{10, 12, 14}, 200)
	large := measure([]int{60, 70, 80}, 50000)
	if small != large {
		t.Fatalf("OpenArena allocations scale with nnz: %.0f at 200 nnz vs %.0f at 50000 nnz", small, large)
	}
}

// FuzzOpenArena feeds arbitrary bytes to the arena opener via a temp file;
// it must never panic or allocate beyond what the file size can back, and
// whatever it accepts must survive Validate-or-error plus a write/reopen
// round trip.
func FuzzOpenArena(f *testing.F) {
	seedTree := Build(tensor.Random([]int{5, 6, 7}, 60, nil, 2), nil)
	dir, err := os.MkdirTemp("", "arena-fuzz-seed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.stef")
	if err := seedTree.WriteArena(seedPath); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}

	put32 := func(data []byte, off int, v uint32) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint32(out[off:], v)
		return out
	}
	put64 := func(data []byte, off int, v uint64) []byte {
		out := append([]byte(nil), data...)
		binary.LittleEndian.PutUint64(out[off:], v)
		return out
	}

	f.Add(valid)
	f.Add(valid[:len(valid)/2])       // truncated mid-body
	f.Add(valid[:arenaFixedHeader-1]) // truncated inside the fixed header
	f.Add([]byte{})
	f.Add([]byte("NOTANARN-and-then-some-padding-bytes"))
	f.Add(put32(valid, 12, 0x0D0C0B0A))                    // wrong endianness
	f.Add(put32(valid, 16, 65))                            // order beyond bound
	f.Add(put64(valid, arenaFixedHeader+16*2, 28))         // misaligned fids offset
	f.Add(put64(valid, arenaFixedHeader+16*2+8, 1<<35))    // lying length
	f.Add(put64(valid, arenaFixedHeader+16*2+8, maxCount)) // boundary count exactly at the cap
	f.Add(put64(valid, arenaFixedHeader+16*2+8, maxCount+1))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.stef")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		tr, err := OpenArena(path)
		if err != nil {
			return
		}
		defer tr.Close()
		// OpenArena checks geometry and endpoints only; the body may still
		// be structurally invalid. Validate must return an error or succeed
		// — never panic.
		if err := tr.Validate(); err != nil {
			return
		}
		// A fully valid accepted tree must survive a write/reopen cycle.
		rt := filepath.Join(t.TempDir(), "rt.stef")
		if err := tr.WriteArena(rt); err != nil {
			t.Fatalf("re-write of accepted arena failed: %v", err)
		}
		back, err := OpenArena(rt)
		if err != nil {
			t.Fatalf("re-open of accepted arena failed: %v", err)
		}
		defer back.Close()
		if !Equal(back, tr) {
			t.Fatal("arena round trip changed the tree")
		}
	})
}

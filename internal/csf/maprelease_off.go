//go:build linux && !lifetrace

package csf

import "syscall"

// releaseMapping returns a closed arena mapping to the kernel. Build with
// -tags lifetrace for the quarantining implementation (maprelease_on.go),
// which re-protects the mapping PROT_NONE instead so any dangling view
// faults deterministically.
func releaseMapping(data []byte) error { return syscall.Munmap(data) }

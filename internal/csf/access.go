package csf

// Level accessors. Kernels and schedulers that walk a Tree hold on to
// per-level slices; taking them through these accessors (rather than
// indexing the exported fields directly) keeps the //idx: scale classes
// attached to the values they yield, so the idx-width analyzer can follow
// fiber ids and child offsets from the tree into loop bodies and index
// arithmetic. The accessors are trivially inlinable and cost nothing over
// a direct field read.

// FidLevel returns the fiber-id array of level l: FidLevel(l)[n] is the
// mode index of node n, an int32-bounded value by construction.
//
// idx: return len=nnz elem=fid
// life: return view
func (t *Tree) FidLevel(l int) []int32 { return t.fids[l] }

// PtrLevel returns the child-offset array of level l (nil at the leaf
// level): offsets are node positions within level l+1 and are nnz-scale —
// they need 64-bit arithmetic, never int32.
//
// idx: return len=nnz elem=nnz
// life: return view
func (t *Tree) PtrLevel(l int) []int64 { return t.ptr[l] }

// NNZ64 returns the number of non-zeros at the width the count actually
// has: nnz-scale, bounded by the serialization maxCount (1<<40), not by
// int32.
//
// idx: return nnz
func (t *Tree) NNZ64() int64 { return int64(len(t.vals)) }

// NumFibers64 returns the node count of level l at 64-bit width; interior
// levels of a 100M+-nnz tensor routinely exceed int32.
//
// idx: return nnz
func (t *Tree) NumFibers64(l int) int64 { return int64(len(t.fids[l])) }

// ValsLevel returns the non-zero value array, aligned with the leaf level's
// fiber ids (FidLevel(Order()-1)).
//
// idx: return len=nnz
// life: return view
func (t *Tree) ValsLevel() []float64 { return t.vals }

// Dims returns the per-level mode lengths. The slice is the tree's own
// storage and must not be mutated.
//
// idx: return len=rank elem=dim
func (t *Tree) Dims() []int { return t.dims }

// Dim returns the length of the mode stored at level l.
//
// idx: return dim
func (t *Tree) Dim(l int) int { return t.dims[l] }

// Perm returns the tree's mode permutation: level l stores original tensor
// mode Perm()[l]. The slice is the tree's own storage and must not be
// mutated; SwappedPerm returns a fresh copy when a derived permutation is
// needed.
//
// idx: return len=rank elem=rank
func (t *Tree) Perm() []int { return t.perm }

// PermLevel returns the original tensor mode stored at level l.
//
// idx: return rank
func (t *Tree) PermLevel(l int) int { return t.perm[l] }

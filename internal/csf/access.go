package csf

// Level accessors. Kernels and schedulers that walk a Tree hold on to
// per-level slices; taking them through these accessors (rather than
// indexing the exported fields directly) keeps the //idx: scale classes
// attached to the values they yield, so the idx-width analyzer can follow
// fiber ids and child offsets from the tree into loop bodies and index
// arithmetic. The accessors are trivially inlinable and cost nothing over
// a direct field read.

// FidLevel returns the fiber-id array of level l: FidLevel(l)[n] is the
// mode index of node n, an int32-bounded value by construction.
//
//idx: return len=nnz elem=fid
func (t *Tree) FidLevel(l int) []int32 { return t.Fids[l] }

// PtrLevel returns the child-offset array of level l (nil at the leaf
// level): offsets are node positions within level l+1 and are nnz-scale —
// they need 64-bit arithmetic, never int32.
//
//idx: return len=nnz elem=nnz
func (t *Tree) PtrLevel(l int) []int64 { return t.Ptr[l] }

// NNZ64 returns the number of non-zeros at the width the count actually
// has: nnz-scale, bounded by the serialization maxCount (1<<40), not by
// int32.
//
//idx: return nnz
func (t *Tree) NNZ64() int64 { return int64(len(t.Vals)) }

// NumFibers64 returns the node count of level l at 64-bit width; interior
// levels of a 100M+-nnz tensor routinely exceed int32.
//
//idx: return nnz
func (t *Tree) NumFibers64(l int) int64 { return int64(len(t.Fids[l])) }

package csf

import (
	"fmt"
	"io"
	"strings"
)

// LevelStats summarises one CSF level for diagnostics and tooling.
type LevelStats struct {
	// Level is the depth (0 = root).
	Level int
	// Mode is the original tensor mode stored at this level.
	Mode int
	// Dim is the mode length.
	Dim int
	// Fibers is the node count m_l.
	Fibers int
	// AvgFiberLen is Fibers(level+1)/Fibers(level); 0 at the leaf.
	AvgFiberLen float64
	// MaxFiberLen is the largest child count of any node (0 at the leaf).
	MaxFiberLen int64
}

// Stats returns per-level statistics, root to leaf.
func (t *Tree) Stats() []LevelStats {
	d := t.Order()
	out := make([]LevelStats, d)
	for l := 0; l < d; l++ {
		s := LevelStats{Level: l, Mode: t.perm[l], Dim: t.dims[l], Fibers: t.NumFibers(l)}
		if l < d-1 {
			s.AvgFiberLen = t.AvgFiberLen(l)
			for n := 0; n < t.NumFibers(l); n++ {
				if c := t.ptr[l][n+1] - t.ptr[l][n]; c > s.MaxFiberLen {
					s.MaxFiberLen = c
				}
			}
		}
		out[l] = s
	}
	return out
}

// WriteStats renders the per-level statistics as a small table.
func (t *Tree) WriteStats(w io.Writer) {
	fmt.Fprintf(w, "%-6s %-5s %-10s %-10s %-10s %-10s\n", "level", "mode", "dim", "fibers", "avglen", "maxlen")
	fmt.Fprintln(w, strings.Repeat("-", 56))
	for _, s := range t.Stats() {
		fmt.Fprintf(w, "%-6d %-5d %-10d %-10d %-10.2f %-10d\n", s.Level, s.Mode, s.Dim, s.Fibers, s.AvgFiberLen, s.MaxFiberLen)
	}
}

package csf_test

import (
	"fmt"

	"stef/internal/csf"
	"stef/internal/tensor"
)

// ExampleBuild constructs a CSF tree for a tiny tensor and prints its
// per-level fiber counts.
func ExampleBuild() {
	t := tensor.New([]int{2, 3, 4}, 4)
	t.Append([]int32{0, 0, 0}, 1)
	t.Append([]int32{0, 0, 3}, 2)
	t.Append([]int32{0, 2, 1}, 3)
	t.Append([]int32{1, 1, 1}, 4)
	tree := csf.Build(t, []int{0, 1, 2})
	fmt.Println("fibers per level:", tree.FiberCounts())
	fmt.Println("nnz:", tree.NNZ())
	// Output:
	// fibers per level: [2 3 4]
	// nnz: 4
}

// ExampleTree_CountSwappedFibers shows Algorithm 9: counting the fibers the
// swapped layout would have, without building it.
func ExampleTree_CountSwappedFibers() {
	t := tensor.New([]int{2, 2, 3}, 4)
	t.Append([]int32{0, 0, 0}, 1)
	t.Append([]int32{0, 0, 1}, 1)
	t.Append([]int32{0, 1, 0}, 1)
	t.Append([]int32{1, 1, 2}, 1)
	tree := csf.Build(t, []int{0, 1, 2})
	// Original level-1 fibers: (0,0), (0,1), (1,1) → 3.
	// Swapped (i, k) pairs: (0,0), (0,1), (1,2) → 3.
	fmt.Println(tree.NumFibers(1), tree.CountSwappedFibers(2))
	// Output: 3 3
}

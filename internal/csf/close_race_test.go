package csf

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestCloseConcurrentIdempotent pins the Close doc promise under -race:
// racing double-Close on an arena-backed tree is safe (the backing's
// sync.Once serializes the release) and every call observes the same nil
// error.
func TestCloseConcurrentIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.stef")
	if err := mustTree([]int{8, 9, 10}, 300, 4).WriteArena(path); err != nil {
		t.Fatalf("WriteArena: %v", err)
	}
	tree, err := OpenArena(path)
	if err != nil {
		t.Fatalf("OpenArena: %v", err)
	}
	const closers = 8
	var wg sync.WaitGroup
	errs := make([]error, closers)
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tree.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("closer %d: %v", i, err)
		}
	}
	if !tree.Closed() {
		t.Error("Closed() = false after concurrent Close on a backed tree")
	}
}

// TestCloseConcurrentHeapTree: heap-built trees have no backing; racing
// Closes are no-ops that never mark the tree closed (its storage is
// GC-owned and stays valid).
func TestCloseConcurrentHeapTree(t *testing.T) {
	tree := mustTree([]int{5, 6, 7}, 80, 5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tree.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if tree.Closed() {
		t.Error("heap-built tree reports Closed() = true")
	}
}

// Package csf implements the Compressed Sparse Fiber representation of a
// sparse tensor (Smith et al., SPLATT), the mode-ordering heuristics used
// by STeF, and the last-two-mode fiber-counting pass of Algorithm 9.
//
// A CSF tree of depth d stores one level per tensor mode. Level 0 holds the
// root slices; level d-1 holds one node per non-zero, aligned with the
// value array. FidLevel(l)[n] is the tensor index (in the CSF's own level
// order) of node n at level l; PtrLevel(l)[n] .. PtrLevel(l)[n+1] delimit
// n's children at level l+1.
package csf

import (
	"fmt"
	"sync/atomic"

	"stef/internal/tensor"
)

// Tree is a CSF representation of a sparse tensor under a fixed mode
// permutation. The storage is read-only after construction and reachable
// only through the accessor layer (access.go); the level arrays may live
// on the Go heap (Build, ReadFrom) or inside an arena backing (OpenArena),
// and nothing outside this package may depend on which — the csf-backing
// steflint analyzer enforces the seam.
type Tree struct {
	// dims[l] is the length of the mode stored at level l.
	//idx: len=rank elem=dim
	dims []int
	// perm maps CSF level to original tensor mode: level l stores
	// original mode perm[l].
	//idx: len=rank elem=rank
	perm []int
	// fids[l] holds the index of each node at level l.
	//idx: len=rank,nnz elem=fid
	fids [][]int32
	// ptr[l] (for l in 0..d-2) holds len(fids[l])+1 offsets into level
	// l+1. ptr[d-1] is nil.
	//idx: len=rank,nnz elem=nnz
	ptr [][]int64
	// vals holds the non-zero values, aligned with fids[d-1].
	//idx: len=nnz
	vals []float64
	// backing owns the memory behind the level slices when they are views
	// into an arena (nil for heap-backed trees, whose storage the GC owns).
	backing Backing
	// closed is set (atomically) by the first Close on a backed tree; the
	// lifetrace kernel-entry checks read it so a solve against a closed
	// arena fails loudly instead of faulting mid-kernel.
	closed uint32
	// base is the tree a RemapFids view was derived from (nil for trees
	// that own their storage). A view shares the base's ptr/vals/backing,
	// so Close delegates upward and Closed follows the base: closing the
	// base must fail kernels running against the view too.
	base *Tree
}

// Backing owns the storage behind a Tree's level arrays. Heap-backed trees
// have no backing (Backing() returns nil); arena-backed trees hold one that
// must be closed when the tree is no longer in use.
type Backing interface {
	// Kind names the backing for diagnostics: "arena-mmap" for a zero-copy
	// file mapping, "arena-heap" for the portable fallback that reads the
	// arena sections into heap slices.
	Kind() string
	// Close releases the resources the backing owns. For an mmap backing
	// every slice taken from the tree is invalid after Close; for heap
	// backings Close is a no-op. Close is idempotent.
	Close() error
}

// Backing returns the tree's storage backing, or nil for heap-backed trees.
func (t *Tree) Backing() Backing { return t.backing }

// Close releases the tree's storage backing. It is a no-op (and returns
// nil) for heap-backed trees, so callers can defer Close unconditionally.
// After Close on an arena-backed tree, no slice previously taken through
// the accessor layer may be used.
func (t *Tree) Close() error {
	if t.base != nil {
		// A RemapFids view does not own the backing; closing it closes the
		// base (and, through the base's stamp, every sibling view).
		return t.base.Close()
	}
	if t.backing == nil {
		return nil
	}
	atomic.StoreUint32(&t.closed, 1)
	return t.backing.Close()
}

// Closed reports whether Close has released this tree's backing. Heap
// trees (nil backing) never report closed: their storage is GC-owned and
// stays valid for as long as the tree is reachable. A RemapFids view
// reports closed as soon as its base does — the shared ptr/vals storage
// is gone either way.
func (t *Tree) Closed() bool {
	if t.base != nil && t.base.Closed() {
		return true
	}
	return atomic.LoadUint32(&t.closed) != 0
}

// Build constructs a CSF tree from t using the given mode permutation
// (perm[l] is the original mode placed at level l; nil means the
// length-sorted heuristic order). The input tensor is not modified.
func Build(t *tensor.Tensor, perm []int) *Tree {
	d := t.Order()
	if d < 2 {
		panic(fmt.Sprintf("csf: order-%d tensor; need at least 2 modes", d))
	}
	if perm == nil {
		perm = tensor.LengthSortedPerm(t.Dims)
	}
	if err := tensor.CheckPerm(perm, d); err != nil {
		panic("csf: " + err.Error())
	}
	pt := t.PermuteModes(perm)
	pt.SortLex()

	nnz := pt.NNZ()
	tr := &Tree{
		dims: pt.Dims,
		perm: append([]int(nil), perm...),
		fids: make([][]int32, d),
		ptr:  make([][]int64, d),
		vals: pt.Vals,
	}
	// chg[k] is the shallowest level whose coordinate differs between
	// non-zeros k-1 and k. A new fiber starts at level l exactly when
	// chg[k] <= l (new-fiber starts are monotone down the tree). chg[0]
	// is defined as 0 so the first non-zero opens a fiber at every level.
	chg := make([]int, nnz)
	for k := 1; k < nnz; k++ {
		a := pt.Inds[(k-1)*d:]
		b := pt.Inds[k*d:]
		c := d - 1
		for m := 0; m < d-1; m++ {
			if a[m] != b[m] {
				c = m
				break
			}
		}
		chg[k] = c
	}
	// Leaf level: one node per non-zero.
	leaf := make([]int32, nnz)
	for k := 0; k < nnz; k++ {
		leaf[k] = pt.Inds[k*d+d-1]
	}
	tr.fids[d-1] = leaf

	for l := 0; l < d-1; l++ {
		var fids []int32
		ptr := []int64{0}
		children := int64(0)
		for k := 0; k < nnz; k++ {
			if chg[k] <= l { // new fiber at this level
				if k > 0 {
					ptr = append(ptr, ptr[len(ptr)-1]+children)
					children = 0
				}
				fids = append(fids, pt.Inds[k*d+l])
			}
			if l+1 == d-1 || chg[k] <= l+1 { // new child below
				children++
			}
		}
		if nnz > 0 {
			ptr = append(ptr, ptr[len(ptr)-1]+children)
		}
		tr.fids[l] = fids
		tr.ptr[l] = ptr
	}
	return tr
}

// Order returns the tree depth (tensor order).
func (t *Tree) Order() int { return len(t.dims) }

// NNZ returns the number of non-zeros.
func (t *Tree) NNZ() int { return len(t.vals) }

// NumFibers returns the number of nodes at level l — the paper's m_l.
func (t *Tree) NumFibers(l int) int { return len(t.fids[l]) }

// FiberCounts returns the node count of every level, root to leaf.
func (t *Tree) FiberCounts() []int64 {
	c := make([]int64, t.Order())
	for l := range c {
		c[l] = int64(len(t.fids[l]))
	}
	return c
}

// AvgFiberLen returns the average number of children per node at level l
// (for l < d-1): NumFibers(l+1)/NumFibers(l).
func (t *Tree) AvgFiberLen(l int) float64 {
	if l >= t.Order()-1 {
		panic("csf: AvgFiberLen on leaf level")
	}
	if len(t.fids[l]) == 0 {
		return 0
	}
	return float64(len(t.fids[l+1])) / float64(len(t.fids[l]))
}

// Bytes returns the in-memory footprint of the CSF structure: 4 bytes per
// fiber id, 8 per pointer and 8 per value. Used for Table II accounting.
func (t *Tree) Bytes() int64 {
	b := int64(0)
	for l := 0; l < t.Order(); l++ {
		b += int64(len(t.fids[l])) * 4
		if t.ptr[l] != nil {
			b += int64(len(t.ptr[l])) * 8
		}
	}
	b += int64(len(t.vals)) * 8
	return b
}

// ToCOO reconstructs the tensor in its original mode order. Used by
// round-trip tests and by engines that need a re-ordered copy.
func (t *Tree) ToCOO(origDims []int) *tensor.Tensor {
	d := t.Order()
	nnz := t.NNZ()
	out := tensor.New(origDims, nnz)
	coordCSF := make([]int32, d)
	coordOrig := make([]int32, d)
	t.WalkLeaves(func(path []int64, k int) {
		for l := 0; l < d; l++ {
			coordCSF[l] = t.fids[l][path[l]]
		}
		for l := 0; l < d; l++ {
			coordOrig[t.perm[l]] = coordCSF[l]
		}
		out.Append(coordOrig, t.vals[k])
	})
	return out
}

// WalkLeaves visits every non-zero in storage order, passing the node index
// at each level (path[l] is the node position within level l) and the leaf
// position k. Intended for tests and tools, not hot kernels.
func (t *Tree) WalkLeaves(fn func(path []int64, k int)) {
	d := t.Order()
	path := make([]int64, d)
	var rec func(l int, node int64)
	rec = func(l int, node int64) {
		path[l] = node
		if l == d-1 {
			fn(path, int(node))
			return
		}
		for c := t.ptr[l][node]; c < t.ptr[l][node+1]; c++ {
			rec(l+1, c)
		}
	}
	for n := int64(0); n < int64(len(t.fids[0])); n++ {
		rec(0, n)
	}
}

// Validate checks structural invariants of the tree: pointer monotonicity,
// full coverage of each level by its parent level, and index ranges.
func (t *Tree) Validate() error {
	d := t.Order()
	for l := 0; l < d; l++ {
		for _, f := range t.fids[l] {
			if f < 0 || int(f) >= t.dims[l] {
				return fmt.Errorf("csf: level %d fiber id %d out of range (dim %d)", l, f, t.dims[l])
			}
		}
		if l == d-1 {
			continue
		}
		p := t.ptr[l]
		if len(p) != len(t.fids[l])+1 {
			return fmt.Errorf("csf: level %d ptr length %d, want %d", l, len(p), len(t.fids[l])+1)
		}
		if p[0] != 0 {
			return fmt.Errorf("csf: level %d ptr[0] = %d", l, p[0])
		}
		for n := 0; n < len(p)-1; n++ {
			if p[n+1] <= p[n] {
				return fmt.Errorf("csf: level %d node %d has empty or negative child range", l, n)
			}
		}
		if p[len(p)-1] != int64(len(t.fids[l+1])) {
			return fmt.Errorf("csf: level %d last ptr %d does not cover level %d (%d nodes)", l, p[len(p)-1], l+1, len(t.fids[l+1]))
		}
	}
	if len(t.fids[d-1]) != len(t.vals) {
		return fmt.Errorf("csf: leaf count %d != value count %d", len(t.fids[d-1]), len(t.vals))
	}
	return nil
}

// Equal reports whether two trees have identical structure and values:
// same dims, perm, per-level fiber ids and pointers, and bit-identical
// non-zero values. Backings are not compared — a heap tree and an arena
// view of the same tensor are equal. Intended for tests and tools.
func Equal(a, b *Tree) bool {
	if a.Order() != b.Order() || a.NNZ() != b.NNZ() {
		return false
	}
	d := a.Order()
	for l := 0; l < d; l++ {
		if a.dims[l] != b.dims[l] || a.perm[l] != b.perm[l] {
			return false
		}
		if len(a.fids[l]) != len(b.fids[l]) {
			return false
		}
		for n, f := range a.fids[l] {
			if b.fids[l][n] != f {
				return false
			}
		}
		if (a.ptr[l] == nil) != (b.ptr[l] == nil) || len(a.ptr[l]) != len(b.ptr[l]) {
			return false
		}
		for n, p := range a.ptr[l] {
			if b.ptr[l][n] != p {
				return false
			}
		}
	}
	for k, v := range a.vals {
		if b.vals[k] != v {
			return false
		}
	}
	return true
}

// SwappedPerm returns the tree's mode permutation with the last two levels
// exchanged — the alternative layout considered in Section II-E.
func (t *Tree) SwappedPerm() []int {
	d := t.Order()
	p := append([]int(nil), t.perm...)
	p[d-2], p[d-1] = p[d-1], p[d-2]
	return p
}

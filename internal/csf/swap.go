package csf

import (
	"stef/internal/par"
)

// CountSwappedFibers implements Algorithm 9 of the paper: it computes the
// number of level-(d-2) fibers the CSF would have if its last two modes
// were swapped, without building the swapped tree. That count is the only
// quantity the data-movement model needs that the existing CSF does not
// already contain (levels 0..d-3 are unchanged by the swap).
//
// A fiber in the swapped order is a distinct (prefix, leaf-index) pair,
// where prefix is the path through levels 0..d-3. The pass runs with t
// threads, each owning a contiguous block of level-(d-3) nodes; since a
// pair's prefix node is owned by exactly one thread, no pair is counted
// twice. Each thread keeps an observed[last-mode-length] stamp array, as in
// the paper's pseudocode, trading memory for a single O(nnz) scan.
func (tr *Tree) CountSwappedFibers(t int) int64 {
	d := tr.Order()
	if d < 3 {
		panic("csf: CountSwappedFibers needs order >= 3")
	}
	gLevel := d - 3 // grandparents of leaves
	numG := len(tr.fids[gLevel])
	counts := make([]int64, maxInt(t, 1))
	par.Blocks(numG, t, func(th, lo, hi int) {
		observed := make([]int64, tr.dims[d-1])
		for i := range observed {
			observed[i] = -1
		}
		var c int64
		for g := lo; g < hi; g++ {
			for p := tr.ptr[gLevel][g]; p < tr.ptr[gLevel][g+1]; p++ {
				for k := tr.ptr[d-2][p]; k < tr.ptr[d-2][p+1]; k++ {
					leaf := tr.fids[d-1][k]
					if observed[leaf] != int64(g) {
						observed[leaf] = int64(g)
						c++
					}
				}
			}
		}
		counts[th] = c
	})
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	return total
}

// SwappedFiberCounts returns the per-level fiber counts the tree would have
// under the swapped last-two-mode order: identical to FiberCounts for
// levels 0..d-3, CountSwappedFibers at level d-2, and nnz at the leaf.
func (tr *Tree) SwappedFiberCounts(t int) []int64 {
	d := tr.Order()
	c := tr.FiberCounts()
	c[d-2] = tr.CountSwappedFibers(t)
	return c
}

// LevelRowCounts returns the per-row write histogram of the level-l MTTKRP
// output: counts[r] = number of level-l nodes whose fiber id is r (for the
// leaf level, the number of non-zeros in mode-(d-1) slice r). This is the
// input of the data-movement model's accumulation-cost term.
func (tr *Tree) LevelRowCounts(l int) []int64 {
	counts := make([]int64, tr.dims[l])
	for _, f := range tr.fids[l] {
		counts[f]++
	}
	return counts
}

// SwappedRowCounts extends the Algorithm 9 scan to the row-write
// histograms of the swapped layout's last two levels, again without
// building the swapped tree: d2[r] counts the swapped level-(d-2) fibers
// with fiber id r (one per distinct (prefix, r) pair — the original leaf
// mode becomes level d-2), and leaf[r] counts the swapped non-zeros with
// leaf id r (the original level-(d-2) fiber ids; the swap permutes
// coordinates within paths, so slice r keeps its nnz). Levels 0..d-3 are
// unchanged by the swap — LevelRowCounts on the base tree covers them.
// The d2 histogram's total equals CountSwappedFibers.
func (tr *Tree) SwappedRowCounts(t int) (d2, leaf []int64) {
	d := tr.Order()
	if d < 3 {
		panic("csf: SwappedRowCounts needs order >= 3")
	}
	leaf = make([]int64, tr.dims[d-2])
	for n, f := range tr.fids[d-2] {
		leaf[f] += tr.ptr[d-2][n+1] - tr.ptr[d-2][n]
	}
	gLevel := d - 3
	numG := len(tr.fids[gLevel])
	nT := maxInt(t, 1)
	slabs := make([][]int64, nT)
	par.Blocks(numG, t, func(th, lo, hi int) {
		observed := make([]int64, tr.dims[d-1])
		for i := range observed {
			observed[i] = -1
		}
		local := make([]int64, tr.dims[d-1])
		for g := lo; g < hi; g++ {
			for p := tr.ptr[gLevel][g]; p < tr.ptr[gLevel][g+1]; p++ {
				for k := tr.ptr[d-2][p]; k < tr.ptr[d-2][p+1]; k++ {
					lf := tr.fids[d-1][k]
					if observed[lf] != int64(g) {
						observed[lf] = int64(g)
						local[lf]++
					}
				}
			}
		}
		slabs[th] = local
	})
	d2 = make([]int64, tr.dims[d-1])
	for _, local := range slabs {
		if local == nil {
			continue
		}
		for r, c := range local {
			d2[r] += c
		}
	}
	return d2, leaf
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
